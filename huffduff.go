// Package huffduff is a from-scratch reproduction of "HuffDuff: Stealing
// Pruned DNNs from Sparse Accelerators" (Yang, Nair, Lis — ASPLOS 2023).
//
// It bundles everything the paper's evaluation needs, all in pure Go with
// only the standard library:
//
//   - a CNN library with training (internal/nn, internal/train) and a model
//     zoo of the paper's victims and baselines (internal/models);
//   - unstructured pruning, including lottery-ticket iterative pruning
//     (internal/prune);
//   - a simulated Eyeriss-v2-class two-sided sparse accelerator with
//     compressed DRAM transfers and an on-the-fly psum-encoding pipeline
//     (internal/accel, internal/sparse, internal/dram);
//   - the attacker-side trace analysis, boundary-effect prober, symbolic
//     convolution engine, timing side channel, and solution-space
//     finalization (internal/trace, internal/probe, internal/symconv,
//     internal/huffduff);
//   - the prior dense-accelerator attack and its naïve sparse extension for
//     Table 1 (internal/reversecnn), and targeted adversarial-transfer
//     evaluation for Figs. 5–6 (internal/adv).
//
// This package is the public facade: it re-exports the types and entry
// points a downstream user needs to deploy a victim on the simulated
// accelerator and steal it back.
//
// Quick start:
//
//	arch := huffduff.SmallCNN()
//	bind, _ := arch.Build(rand.New(rand.NewSource(1)))
//	victim := huffduff.NewMachine(huffduff.DefaultAccelConfig(), arch, bind)
//	res, _ := huffduff.Attack(victim, huffduff.DefaultAttackConfig())
//	fmt.Println(res.Space.Count(), "candidate architectures")
package huffduff

import (
	"context"
	"math/rand"

	"github.com/huffduff/huffduff/internal/accel"
	"github.com/huffduff/huffduff/internal/adv"
	"github.com/huffduff/huffduff/internal/chaos"
	"github.com/huffduff/huffduff/internal/converge"
	"github.com/huffduff/huffduff/internal/dataset"
	"github.com/huffduff/huffduff/internal/dram"
	"github.com/huffduff/huffduff/internal/faults"
	attack "github.com/huffduff/huffduff/internal/huffduff"
	"github.com/huffduff/huffduff/internal/models"
	"github.com/huffduff/huffduff/internal/nn"
	"github.com/huffduff/huffduff/internal/obs"
	"github.com/huffduff/huffduff/internal/prune"
	"github.com/huffduff/huffduff/internal/reversecnn"
	"github.com/huffduff/huffduff/internal/store"
	"github.com/huffduff/huffduff/internal/trace"
	"github.com/huffduff/huffduff/internal/train"
)

// Architecture IR and model zoo.
type (
	// Arch describes a CNN at accelerator-execution granularity.
	Arch = models.Arch
	// Unit is one layerwise execution pass of an Arch.
	Unit = models.Unit
	// Binding is a built, runnable network bound to its Arch.
	Binding = models.Binding
	// Network is the runnable DAG of layers.
	Network = nn.Network
)

// Model zoo constructors. scale divides channel widths (1 = paper-size).
var (
	// VGGS is the paper's VGG-S victim (VGG-16-style CIFAR network).
	VGGS = models.VGGS
	// ResNet18 is the paper's ResNet-18 victim (CIFAR variant).
	ResNet18 = models.ResNet18
	// AlexNet is the prior-generation accuracy baseline of Fig. 4.
	AlexNet = models.AlexNet
	// MobileNetV2 is a random-surrogate baseline of Figs. 5–6.
	MobileNetV2 = models.MobileNetV2
	// SmallCNN is a tiny victim for demos and tests.
	SmallCNN = models.SmallCNN
)

// Victim device simulation.
type (
	// Machine is a model deployed on the simulated sparse accelerator.
	Machine = accel.Machine
	// AccelConfig describes the accelerator and its DRAM.
	AccelConfig = accel.Config
	// DRAMSpec is an LPDDR memory configuration.
	DRAMSpec = dram.Spec
	// Trace is the DRAM access trace an inference leaves behind.
	Trace = trace.Trace
	// LayerStats is one layer's device telemetry for a single inference.
	LayerStats = accel.LayerStats
	// CampaignStats is per-layer device telemetry accumulated across every
	// inference a campaign ran (simulated device time, never host clock).
	CampaignStats = accel.CampaignStats
)

// NewMachine deploys a built model on the simulated accelerator.
func NewMachine(cfg AccelConfig, arch *Arch, bind *Binding) *Machine {
	return accel.NewMachine(cfg, arch, bind)
}

// DefaultAccelConfig returns an Eyeriss-v2-like device with single-channel
// LPDDR4.
func DefaultAccelConfig() AccelConfig { return accel.DefaultConfig() }

// LPDDR memory constructors (channels: 1 or 2).
var (
	LPDDR3  = dram.LPDDR3
	LPDDR4  = dram.LPDDR4
	LPDDR4X = dram.LPDDR4X
)

// The attack.
type (
	// AttackConfig configures the end-to-end HuffDuff attack.
	AttackConfig = attack.Config
	// AttackResult carries everything the attack recovers.
	AttackResult = attack.Result
	// Solution is one candidate architecture from the finalized space.
	Solution = attack.Solution
	// SolutionSpace is the finalized candidate set (§8.2).
	SolutionSpace = attack.SolutionSpace
	// Victim is the attacker's handle on a device: feed inputs, observe
	// DRAM traces.
	Victim = attack.Victim
)

// DefaultAttackConfig matches the paper's evaluation setup.
func DefaultAttackConfig() AttackConfig { return attack.DefaultConfig() }

// DefaultRobustAttackConfig is DefaultAttackConfig hardened for noisy or
// faulty observation channels: bounded retry on transient victim failures,
// min-over-repeats probe aggregation, trial-escalation until two consecutive
// solves agree, and graceful degradation to a timing-free solution space
// when the encoding intervals are too jittery to trust.
func DefaultRobustAttackConfig() AttackConfig { return attack.DefaultRobustConfig() }

// Attack runs the full HuffDuff pipeline against a victim device.
func Attack(victim Victim, cfg AttackConfig) (*AttackResult, error) {
	return attack.Attack(victim, cfg)
}

// AttackWithContext is Attack with a caller-supplied context; an
// ObsRecorder attached to the context (or set on cfg.Obs) receives the
// campaign's spans and metrics.
func AttackWithContext(ctx context.Context, victim Victim, cfg AttackConfig) (*AttackResult, error) {
	return attack.AttackContext(ctx, victim, cfg)
}

// Observability: spans, metrics, and export.
type (
	// ObsRecorder receives spans and metrics from an instrumented campaign.
	// AttackConfig.Obs, AccelConfig.Obs, and ChaosConfig.Obs all accept one;
	// nil disables instrumentation at the cost of a nil-check per site.
	ObsRecorder = obs.Recorder
	// ObsCollector is the in-memory Recorder with Chrome-trace/Perfetto and
	// metrics-JSON export (WriteTrace, WriteMetrics, Tree, Metrics).
	ObsCollector = obs.Collector
	// ObsSpan is one recorded wall-clock interval; End closes it.
	ObsSpan = obs.Span
)

// NewObsCollector builds an empty in-memory span and metrics collector.
func NewObsCollector() *ObsCollector { return obs.NewCollector() }

// WithObsRecorder attaches a recorder to a context for AttackWithContext.
func WithObsRecorder(ctx context.Context, rec ObsRecorder) context.Context {
	return obs.WithRecorder(ctx, rec)
}

// StartSpan opens a child span on the context's recorder (no-op without one).
func StartSpan(ctx context.Context, name string) (context.Context, *ObsSpan) {
	return obs.Start(ctx, name)
}

// Fault injection and error taxonomy.
type (
	// ChaosConfig sets per-fault-class injection intensities.
	ChaosConfig = chaos.Config
	// ChaosStats counts the faults a FaultyVictim injected.
	ChaosStats = chaos.Stats
	// FaultyVictim is a victim wrapped with seeded fault injection.
	FaultyVictim = chaos.FaultyVictim
)

// DefaultChaosConfig enables every fault class at its default intensity.
func DefaultChaosConfig() ChaosConfig { return chaos.DefaultConfig() }

// WrapChaos builds a fault-injecting view of a victim device.
func WrapChaos(v Victim, cfg ChaosConfig) *FaultyVictim { return chaos.Wrap(v, cfg) }

// Error classification sentinels; test with errors.Is.
var (
	// ErrTransient marks a momentary victim failure; retry.
	ErrTransient = faults.ErrTransient
	// ErrTraceCorrupt marks an observation that violates trace invariants;
	// re-run the inference.
	ErrTraceCorrupt = faults.ErrTraceCorrupt
	// ErrTimingUnusable marks timing measurements too noisy for K-ratio
	// recovery; the attack degrades to a timing-free solution space.
	ErrTimingUnusable = faults.ErrTimingUnusable
	// ErrBadConfig marks an invalid configuration; do not retry.
	ErrBadConfig = faults.ErrBadConfig
	// ErrSymBudget marks a solve aborted by the symbolic-expression budget
	// (AttackConfig.Probe.SymMaxExprs/SymMaxBytes); the attack returns a
	// Degraded partial solution space instead of exhausting memory. Do not
	// retry without raising the budget.
	ErrSymBudget = faults.ErrSymBudget
)

// Convergence observability: the solution-space collapse as a snapshot
// stream.
type (
	// ConvergeLedger records one ConvergeSnapshot per query batch and
	// solver stage; set it on AttackConfig.Ledger, then read the history
	// (Snapshots, Latest, Summary), stream it (Subscribe), or export it
	// (WriteJSONL). A nil ledger disables convergence tracking.
	ConvergeLedger = converge.Ledger
	// ConvergeSnapshot is one observation of the remaining solution space:
	// pipeline stage, cumulative victim queries, log10 volume, per-layer
	// candidate state, bits eliminated since the previous snapshot.
	ConvergeSnapshot = converge.Snapshot
	// ConvergeSummary condenses a finished ledger into the headline
	// convergence metrics (final volume, queries to 90% collapse, peak
	// interner size).
	ConvergeSummary = converge.Summary
)

// NewConvergeLedger builds an empty convergence ledger; rec (optional,
// may be nil) additionally receives each snapshot's headline numbers as
// converge.* gauges.
func NewConvergeLedger(rec ObsRecorder) *ConvergeLedger { return converge.NewLedger(rec) }

// AttackStage extracts the pipeline stage ("calibration", "probe", "solve",
// "geometry", "timing", "finalize") an attack error originated in.
func AttackStage(err error) (string, bool) { return faults.StageOf(err) }

// Durable campaign history: the embedded store behind huffduffd's
// queryable /campaigns surface, usable standalone for longitudinal
// experiment datasets (per-model aggregates over many runs).
type (
	// CampaignStore is the history interface: put/lookup/scan terminal
	// campaign records, per-campaign event batches, and per-model
	// aggregates. NewMemoryCampaignStore and OpenCampaignStore return the
	// two implementations, which serve identical results.
	CampaignStore = store.Store
	// StoredCampaign is one terminal campaign: indexed columns (model,
	// state, finish time, wall seconds, queries) plus an opaque payload.
	StoredCampaign = store.CampaignRecord
	// CampaignQuery filters and paginates a campaign scan.
	CampaignQuery = store.Query
	// ModelAggregate is one model's cross-campaign rollup: counts,
	// p50/p95 wall seconds, total victim queries, degraded-rate.
	ModelAggregate = store.ModelAggregate
	// CampaignStoreConfig tunes the segment-log store (segment size,
	// fsync, compaction trigger, obs recorder).
	CampaignStoreConfig = store.SegmentConfig
)

// NewMemoryCampaignStore builds the in-memory CampaignStore.
func NewMemoryCampaignStore() CampaignStore { return store.NewMemory() }

// OpenCampaignStore opens (or creates) the crash-safe segment-log
// CampaignStore in dir.
func OpenCampaignStore(dir string, cfg CampaignStoreConfig) (CampaignStore, error) {
	return store.Open(dir, cfg)
}

// SampleSolutions draws n distinct candidates uniformly from the solution
// space.
func SampleSolutions(space *SolutionSpace, n int, rng *rand.Rand) []Solution {
	return attack.SampleSolutions(space, n, rng)
}

// Training, data, and pruning.
type (
	// Dataset is a labelled image set.
	Dataset = dataset.Dataset
	// TrainConfig controls an SGD training run.
	TrainConfig = train.Config
)

// Synthetic generates the deterministic CIFAR-10-shaped synthetic dataset
// (see DESIGN.md "Substitutions").
var Synthetic = dataset.Synthetic

// DefaultTrainConfig suits the width-scaled models used in the evaluation.
func DefaultTrainConfig() TrainConfig { return train.DefaultConfig() }

// Fit trains a network; Accuracy evaluates top-1 accuracy.
var (
	Fit      = train.Fit
	Accuracy = train.Accuracy
)

// Pruning entry points.
var (
	// PruneGlobal prunes the smallest-magnitude weights network-wide.
	PruneGlobal = prune.GlobalMagnitude
	// PruneLayerwise prunes each layer independently.
	PruneLayerwise = prune.LayerwiseMagnitude
	// LotteryTicket runs iterative magnitude pruning with weight rewind.
	LotteryTicket = prune.LotteryTicket
	// OverallSparsity reports the pruned fraction of prunable weights.
	OverallSparsity = prune.OverallSparsity
)

// Adversarial transfer (Figs. 5–6).
type (
	// BIMConfig controls the iterative targeted attack.
	BIMConfig = adv.BIMConfig
	// TransferResult summarizes a targeted transfer evaluation.
	TransferResult = adv.TransferResult
)

var (
	// DefaultBIM returns the evaluation BIM config for a 0–255-scale ε.
	DefaultBIM = adv.DefaultBIM
	// EvaluateTransfer runs the §8.3 least-likely-label transfer protocol.
	EvaluateTransfer = adv.EvaluateTransfer
)

// Prior-work baseline (Table 1).
type (
	// LayerObs is a per-layer footprint observation for ReverseCNN.
	LayerObs = reversecnn.LayerObs
)

var (
	// SolveDense is the ReverseCNN dense-accelerator solver.
	SolveDense = reversecnn.SolveDense
	// SparseCount sizes the naïve sparse solution space.
	SparseCount = reversecnn.SparseCount
)
