package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"github.com/huffduff/huffduff/internal/faults"
	"github.com/huffduff/huffduff/internal/obs"
)

// DaemonFaultsConfig sets daemon-level fault intensities. Where the trace
// fault model (Config) corrupts what the attacker observes, this one breaks
// the campaign daemon itself: workers that panic mid-attack, device runs
// that stall past the job deadline, and journal writes that fail. The zero
// value injects nothing.
type DaemonFaultsConfig struct {
	// Seed drives all injection randomness.
	Seed int64
	// PanicProb is the per-victim-Run probability of panicking inside the
	// worker goroutine, exercising the daemon's supervisor (recover +
	// faults.ErrWorkerPanic + retry).
	PanicProb float64
	// StallProb is the per-victim-Run probability of blocking until the
	// job context is done — a device run that hangs past its deadline.
	StallProb float64
	// JournalErrProb is the per-append probability of failing a journal
	// write, exercising the degraded-but-running path.
	JournalErrProb float64
	// Obs, when set, receives per-class `chaos.daemon_faults` counters.
	Obs obs.Recorder
}

// DaemonStats counts injected daemon-level faults.
type DaemonStats struct {
	Runs, Panics, Stalls, JournalCalls, JournalErrs int
}

// DaemonFaults injects daemon-level failures per a seeded schedule. Safe
// for concurrent use.
type DaemonFaults struct {
	cfg DaemonFaultsConfig

	mu    sync.Mutex
	rng   *rand.Rand
	stats DaemonStats
}

// NewDaemonFaults builds a daemon-level fault injector.
func NewDaemonFaults(cfg DaemonFaultsConfig) *DaemonFaults {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &DaemonFaults{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns the injected-fault counters so far.
func (f *DaemonFaults) Stats() DaemonStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// countFault mirrors one injected fault to the configured recorder.
// Callers hold f.mu.
func (f *DaemonFaults) countFault(class string) {
	if f.cfg.Obs != nil {
		f.cfg.Obs.Count("chaos.daemon_faults", "class="+class, 1)
	}
}

// BeforeRun injects worker-level faults ahead of one victim inference: it
// may panic (a worker bug the daemon's supervisor must recover) or block
// until ctx is done (a stalled run that only the per-job deadline or a
// daemon shutdown unwedges), in which case it returns the wrapped context
// error. A nil return means the run may proceed.
func (f *DaemonFaults) BeforeRun(ctx context.Context) error {
	f.mu.Lock()
	f.stats.Runs++
	doPanic := f.cfg.PanicProb > 0 && f.rng.Float64() < f.cfg.PanicProb
	doStall := !doPanic && f.cfg.StallProb > 0 && f.rng.Float64() < f.cfg.StallProb
	if doPanic {
		f.stats.Panics++
		f.countFault("panic")
	}
	if doStall {
		f.stats.Stalls++
		f.countFault("stall")
	}
	f.mu.Unlock()
	if doPanic {
		panic("chaos: injected worker panic")
	}
	if doStall {
		<-ctx.Done()
		return fmt.Errorf("chaos: stalled run unwedged by context: %w", ctx.Err())
	}
	return nil
}

// JournalFault is the journal's fault hook (telemetry.JournalConfig.Fault):
// it returns an injected write error with probability JournalErrProb.
func (f *DaemonFaults) JournalFault() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.JournalCalls++
	if f.cfg.JournalErrProb > 0 && f.rng.Float64() < f.cfg.JournalErrProb {
		f.stats.JournalErrs++
		f.countFault("journal")
		return fmt.Errorf("chaos: injected journal write failure: %w", faults.ErrTransient)
	}
	return nil
}
