// Package chaos is the fault-injection layer: it wraps a victim device and
// corrupts what the attacker observes, per a seeded, per-fault-class
// configuration. The wrapper models every noise source the hardened attack
// pipeline claims to survive:
//
//   - transient Run failures (a flaky probe rig or a busy device);
//   - Gaussian timing jitter on DRAM event cycles (measurement clock noise);
//   - dropped, duplicated, and reordered DRAM events (bus-sniffer losses);
//   - burst-truncated traces (capture buffer overruns);
//   - §9.1-style randomized-padding volume inflation, applied consistently
//     to a tensor's producing write and its consuming reads — the only
//     fault class that survives trace-consistency checks and must be
//     defeated statistically.
//
// All randomness flows from Config.Seed, so a faulty campaign is exactly
// reproducible. The wrapper never mutates the inner victim's trace.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/huffduff/huffduff/internal/faults"
	"github.com/huffduff/huffduff/internal/obs"
	"github.com/huffduff/huffduff/internal/tensor"
	"github.com/huffduff/huffduff/internal/trace"
)

// Victim is the device handle chaos wraps; it is structurally identical to
// the attack package's Victim interface, so accel.Machine and FaultyVictim
// both satisfy either.
type Victim interface {
	Run(img *tensor.Tensor) (*trace.Trace, error)
}

// Config sets per-fault-class intensities. The zero value injects nothing.
type Config struct {
	// Seed drives all injection randomness.
	Seed int64
	// TransientProb is the probability that a Run call fails outright with
	// faults.ErrTransient before touching the device.
	TransientProb float64
	// JitterStd is the standard deviation of the Gaussian perturbation
	// applied to every event timestamp, expressed as a fraction of the
	// trace's mean inter-event gap. Perturbed times are re-clamped to be
	// non-decreasing, so jitter warps intervals without reordering events.
	JitterStd float64
	// DropProb / DupProb / SwapProb are per-event probabilities of deleting
	// an event, emitting it twice, or swapping its payload (op, address,
	// size) with the next event's while keeping timestamps in place.
	DropProb, DupProb, SwapProb float64
	// TruncateProb is the per-trace probability of a capture overrun that
	// discards a uniform fraction (at most TruncateFracMax) of the tail.
	TruncateProb    float64
	TruncateFracMax float64
	// PadProb is the per-write-event probability of inflating that block by
	// 1..PadMaxBytes extra bytes. Reads of the same address are inflated
	// identically, mirroring a device that stores the tensor padded (§9.1's
	// randomized-padding defence as seen on the bus).
	PadProb     float64
	PadMaxBytes int
	// Obs, when set, receives `chaos.runs` and per-class `chaos.faults`
	// counters as faults are injected, so a campaign's metrics expose the
	// ground-truth fault load alongside the attack's retry counters.
	Obs obs.Recorder
}

// DefaultConfig enables every fault class at its default intensity: heavy
// enough that a fail-fast pipeline dies almost immediately, light enough
// that the hardened pipeline recovers the exact geometry (see the
// internal/huffduff robustness tests).
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		TransientProb:   0.03,
		JitterStd:       0.5,
		DropProb:        0.0002,
		DupProb:         0.0002,
		SwapProb:        0.0002,
		TruncateProb:    0.02,
		TruncateFracMax: 0.5,
		PadProb:         0.001,
		PadMaxBytes:     48,
	}
}

// Stats counts injected faults, per class.
type Stats struct {
	Runs, Transients, Jittered, Dropped, Duplicated, Swapped, Truncated, Padded int
}

// FaultyVictim wraps a victim device with fault injection. It is safe for
// concurrent use (a single rng guarded by a mutex keeps runs reproducible
// only under sequential calls, which is how the attack drives it).
type FaultyVictim struct {
	inner Victim
	cfg   Config

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
}

// Wrap builds a fault-injecting view of a victim.
func Wrap(v Victim, cfg Config) *FaultyVictim {
	return &FaultyVictim{inner: v, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns the injected-fault counters so far.
func (f *FaultyVictim) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// inject bumps one fault class's counter and mirrors it to the configured
// Recorder. Callers hold f.mu.
func (f *FaultyVictim) inject(counter *int, class string) {
	*counter++
	if f.cfg.Obs != nil {
		f.cfg.Obs.Count("chaos.faults", "class="+class, 1)
	}
}

// Run executes one inference on the inner victim and corrupts the observed
// trace per the configured fault model.
func (f *FaultyVictim) Run(img *tensor.Tensor) (*trace.Trace, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stats.Runs++
	if f.cfg.Obs != nil {
		f.cfg.Obs.Count("chaos.runs", "", 1)
	}
	if f.cfg.TransientProb > 0 && f.rng.Float64() < f.cfg.TransientProb {
		f.inject(&f.stats.Transients, "transient")
		return nil, fmt.Errorf("chaos: injected device failure: %w", faults.ErrTransient)
	}
	tr, err := f.inner.Run(img)
	if err != nil {
		return nil, err
	}
	acc := append([]trace.Access(nil), tr.Accesses...)
	acc = f.pad(acc)
	acc = f.jitter(acc)
	acc = f.mangle(acc)
	acc = f.truncate(acc)
	return &trace.Trace{Accesses: acc}, nil
}

// pad inflates randomly chosen write blocks and, to stay consistent with a
// device that stores the tensor padded, every later read of the same block
// address by the same amount.
func (f *FaultyVictim) pad(acc []trace.Access) []trace.Access {
	if f.cfg.PadProb <= 0 || f.cfg.PadMaxBytes < 1 {
		return acc
	}
	extra := map[uint64]int{}
	for i := range acc {
		if acc[i].Op != trace.Write {
			continue
		}
		if f.rng.Float64() < f.cfg.PadProb {
			extra[acc[i].Addr] += 1 + f.rng.Intn(f.cfg.PadMaxBytes)
			f.inject(&f.stats.Padded, "padded")
		}
	}
	if len(extra) == 0 {
		return acc
	}
	for i := range acc {
		if e, ok := extra[acc[i].Addr]; ok {
			acc[i].Bytes += e
		}
	}
	return acc
}

// jitter perturbs each timestamp with Gaussian noise scaled to the mean
// inter-event gap, then clamps the sequence back to non-decreasing order.
func (f *FaultyVictim) jitter(acc []trace.Access) []trace.Access {
	if f.cfg.JitterStd <= 0 || len(acc) < 2 {
		return acc
	}
	gap := (acc[len(acc)-1].Time - acc[0].Time) / float64(len(acc)-1)
	if gap <= 0 {
		return acc
	}
	sigma := f.cfg.JitterStd * gap
	for i := range acc {
		acc[i].Time += f.rng.NormFloat64() * sigma
		if i > 0 && acc[i].Time < acc[i-1].Time {
			acc[i].Time = acc[i-1].Time
		}
	}
	f.inject(&f.stats.Jittered, "jittered")
	return acc
}

// mangle applies per-event drop, duplicate, and payload-swap faults.
func (f *FaultyVictim) mangle(acc []trace.Access) []trace.Access {
	if f.cfg.DropProb <= 0 && f.cfg.DupProb <= 0 && f.cfg.SwapProb <= 0 {
		return acc
	}
	out := make([]trace.Access, 0, len(acc))
	for i := 0; i < len(acc); i++ {
		if f.cfg.SwapProb > 0 && i+1 < len(acc) && f.rng.Float64() < f.cfg.SwapProb {
			// Swap payloads, keep the timeline: the sniffer attributed two
			// bus transactions to each other's slots.
			acc[i].Op, acc[i+1].Op = acc[i+1].Op, acc[i].Op
			acc[i].Addr, acc[i+1].Addr = acc[i+1].Addr, acc[i].Addr
			acc[i].Bytes, acc[i+1].Bytes = acc[i+1].Bytes, acc[i].Bytes
			f.inject(&f.stats.Swapped, "swapped")
		}
		if f.cfg.DropProb > 0 && f.rng.Float64() < f.cfg.DropProb {
			f.inject(&f.stats.Dropped, "dropped")
			continue
		}
		out = append(out, acc[i])
		if f.cfg.DupProb > 0 && f.rng.Float64() < f.cfg.DupProb {
			out = append(out, acc[i])
			f.inject(&f.stats.Duplicated, "duplicated")
		}
	}
	return out
}

// truncate models a capture-buffer overrun: the tail of the trace is lost.
func (f *FaultyVictim) truncate(acc []trace.Access) []trace.Access {
	if f.cfg.TruncateProb <= 0 || f.cfg.TruncateFracMax <= 0 {
		return acc
	}
	if f.rng.Float64() >= f.cfg.TruncateProb {
		return acc
	}
	cut := int(float64(len(acc)) * f.rng.Float64() * f.cfg.TruncateFracMax)
	if cut < 1 {
		cut = 1
	}
	if cut >= len(acc) {
		cut = len(acc) - 1
	}
	f.inject(&f.stats.Truncated, "truncated")
	return acc[:len(acc)-cut]
}
