package chaos

import (
	"errors"
	"testing"

	"github.com/huffduff/huffduff/internal/faults"
	"github.com/huffduff/huffduff/internal/tensor"
	"github.com/huffduff/huffduff/internal/trace"
)

// fakeVictim replays a fixed clean 3-segment trace: input DMA → conv
// (weights + input, two write blocks) → head. Enough events for the
// per-event fault classes to land.
type fakeVictim struct{}

func (fakeVictim) Run(*tensor.Tensor) (*trace.Trace, error) {
	tr := &trace.Trace{}
	add := func(tm float64, op trace.Op, addr uint64, bytes int) {
		tr.Accesses = append(tr.Accesses, trace.Access{Time: tm, Op: op, Addr: addr, Bytes: bytes})
	}
	tm := 0.0
	next := func() float64 { tm += 0.001; return tm }
	// Segment 0: input DMA, 4 write blocks.
	for i := 0; i < 4; i++ {
		add(next(), trace.Write, 0x1000+uint64(i)*64, 64)
	}
	// Segment 1: read input + weights, write 4 blocks.
	for i := 0; i < 4; i++ {
		add(next(), trace.Read, 0x1000+uint64(i)*64, 64)
	}
	for i := 0; i < 6; i++ {
		add(next(), trace.Read, 0x8000+uint64(i)*64, 64) // weights, never written
	}
	for i := 0; i < 4; i++ {
		add(next(), trace.Write, 0x2000+uint64(i)*64, 64)
	}
	// Segment 2: read segment 1's output, write the logits.
	for i := 0; i < 4; i++ {
		add(next(), trace.Read, 0x2000+uint64(i)*64, 64)
	}
	add(next(), trace.Read, 0x9000, 64) // head weights
	add(next(), trace.Write, 0x3000, 64)
	return tr, nil
}

func run(t *testing.T, fv *FaultyVictim) *trace.Trace {
	t.Helper()
	tr, err := fv.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	clean, _ := fakeVictim{}.Run(nil)
	fv := Wrap(fakeVictim{}, Config{Seed: 1})
	tr := run(t, fv)
	if len(tr.Accesses) != len(clean.Accesses) {
		t.Fatalf("event count changed: %d vs %d", len(tr.Accesses), len(clean.Accesses))
	}
	for i := range tr.Accesses {
		if tr.Accesses[i] != clean.Accesses[i] {
			t.Fatalf("event %d mutated: %+v vs %+v", i, tr.Accesses[i], clean.Accesses[i])
		}
	}
}

func TestTransientFailure(t *testing.T) {
	fv := Wrap(fakeVictim{}, Config{Seed: 1, TransientProb: 1})
	_, err := fv.Run(nil)
	if !errors.Is(err, faults.ErrTransient) {
		t.Fatalf("error %v does not wrap ErrTransient", err)
	}
	if s := fv.Stats(); s.Transients != 1 || s.Runs != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSeedReproducibility(t *testing.T) {
	cfg := DefaultConfig()
	a := Wrap(fakeVictim{}, cfg)
	b := Wrap(fakeVictim{}, cfg)
	for i := 0; i < 20; i++ {
		ta, ea := a.Run(nil)
		tb, eb := b.Run(nil)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("run %d: error divergence (%v vs %v)", i, ea, eb)
		}
		if ea != nil {
			continue
		}
		if len(ta.Accesses) != len(tb.Accesses) {
			t.Fatalf("run %d: %d vs %d events", i, len(ta.Accesses), len(tb.Accesses))
		}
		for j := range ta.Accesses {
			if ta.Accesses[j] != tb.Accesses[j] {
				t.Fatalf("run %d event %d: %+v vs %+v", i, j, ta.Accesses[j], tb.Accesses[j])
			}
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestJitterPreservesOrder(t *testing.T) {
	fv := Wrap(fakeVictim{}, Config{Seed: 3, JitterStd: 2})
	for i := 0; i < 10; i++ {
		tr := run(t, fv)
		for j := 1; j < len(tr.Accesses); j++ {
			if tr.Accesses[j].Time < tr.Accesses[j-1].Time {
				t.Fatalf("run %d: event %d reordered by jitter", i, j)
			}
		}
	}
	if fv.Stats().Jittered == 0 {
		t.Fatal("jitter never applied")
	}
}

// Padding must inflate the producing write and every read of the same block
// identically, so the corrupted trace still satisfies the byte-accounting
// invariants — it models the §9.1 defence, not sniffer corruption.
func TestPadStaysConsistent(t *testing.T) {
	fv := Wrap(fakeVictim{}, Config{Seed: 5, PadProb: 0.5, PadMaxBytes: 16})
	padded := false
	for i := 0; i < 10; i++ {
		tr := run(t, fv)
		obs, err := trace.Analyze(tr)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if err := trace.Validate(obs); err != nil {
			t.Fatalf("run %d: padded trace failed validation: %v", i, err)
		}
	}
	padded = fv.Stats().Padded > 0
	if !padded {
		t.Fatal("padding never applied")
	}
}

// Dropped and duplicated events break the byte-accounting invariant in
// (almost) every case on this trace, so Validate must catch at least some
// corrupted observations — that detection is what drives the attack's
// retry loop.
func TestMangleIsDetectable(t *testing.T) {
	fv := Wrap(fakeVictim{}, Config{Seed: 7, DropProb: 0.1, DupProb: 0.1})
	detected, injected := 0, 0
	for i := 0; i < 30; i++ {
		before := fv.Stats()
		tr := run(t, fv)
		after := fv.Stats()
		if after.Dropped+after.Duplicated == before.Dropped+before.Duplicated {
			continue
		}
		injected++
		obs, err := trace.Analyze(tr)
		if err == nil {
			err = trace.Validate(obs)
		}
		if err != nil {
			if !errors.Is(err, faults.ErrTraceCorrupt) {
				t.Fatalf("run %d: error %v does not wrap ErrTraceCorrupt", i, err)
			}
			detected++
		}
	}
	if injected == 0 {
		t.Fatal("no mangle faults injected in 30 runs")
	}
	if detected == 0 {
		t.Fatalf("none of %d corrupted traces detected", injected)
	}
}

func TestTruncateShortensTrace(t *testing.T) {
	clean, _ := fakeVictim{}.Run(nil)
	fv := Wrap(fakeVictim{}, Config{Seed: 9, TruncateProb: 1, TruncateFracMax: 0.5})
	tr := run(t, fv)
	if len(tr.Accesses) >= len(clean.Accesses) {
		t.Fatalf("truncation did not shorten trace (%d vs %d)", len(tr.Accesses), len(clean.Accesses))
	}
	if fv.Stats().Truncated != 1 {
		t.Fatalf("stats = %+v", fv.Stats())
	}
}

// The wrapper must never mutate the inner victim's trace in place.
func TestInnerTraceUntouched(t *testing.T) {
	inner := &recordingVictim{}
	fv := Wrap(inner, DefaultConfig())
	for i := 0; i < 10; i++ {
		fv.Run(nil)
	}
	clean, _ := fakeVictim{}.Run(nil)
	for _, tr := range inner.emitted {
		if len(tr.Accesses) != len(clean.Accesses) {
			t.Fatal("inner trace length mutated")
		}
		for j := range tr.Accesses {
			if tr.Accesses[j] != clean.Accesses[j] {
				t.Fatalf("inner trace event %d mutated", j)
			}
		}
	}
}

type recordingVictim struct {
	emitted []*trace.Trace
}

func (r *recordingVictim) Run(img *tensor.Tensor) (*trace.Trace, error) {
	tr, err := fakeVictim{}.Run(img)
	if err == nil {
		r.emitted = append(r.emitted, tr)
	}
	return tr, err
}
