package chaos

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/huffduff/huffduff/internal/faults"
)

func TestDaemonFaultsPanic(t *testing.T) {
	f := NewDaemonFaults(DaemonFaultsConfig{PanicProb: 1})
	recovered := func() (r any) {
		defer func() { r = recover() }()
		_ = f.BeforeRun(context.Background())
		return nil
	}()
	if recovered == nil {
		t.Fatal("PanicProb=1 BeforeRun did not panic")
	}
	if st := f.Stats(); st.Runs != 1 || st.Panics != 1 {
		t.Errorf("stats after panic = %+v", st)
	}
}

func TestDaemonFaultsStallUnwedgedByDeadline(t *testing.T) {
	f := NewDaemonFaults(DaemonFaultsConfig{StallProb: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := f.BeforeRun(ctx)
	if err == nil {
		t.Fatal("StallProb=1 BeforeRun returned nil")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stall error = %v, want wrapped DeadlineExceeded", err)
	}
	if got := faults.Class(err); got != faults.ClassDeadline {
		t.Errorf("faults.Class(stall) = %q, want %q", got, faults.ClassDeadline)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("stall returned after %v, before the deadline", elapsed)
	}
	if st := f.Stats(); st.Stalls != 1 {
		t.Errorf("stats after stall = %+v", st)
	}
}

func TestDaemonFaultsJournal(t *testing.T) {
	f := NewDaemonFaults(DaemonFaultsConfig{JournalErrProb: 1})
	err := f.JournalFault()
	if err == nil {
		t.Fatal("JournalErrProb=1 JournalFault returned nil")
	}
	if !errors.Is(err, faults.ErrTransient) {
		t.Errorf("journal fault = %v, want wrapped ErrTransient", err)
	}
	if st := f.Stats(); st.JournalCalls != 1 || st.JournalErrs != 1 {
		t.Errorf("stats = %+v", st)
	}

	// Probability zero never injects.
	quiet := NewDaemonFaults(DaemonFaultsConfig{})
	for i := 0; i < 100; i++ {
		if err := quiet.JournalFault(); err != nil {
			t.Fatalf("zero-probability injector returned %v", err)
		}
		if err := quiet.BeforeRun(context.Background()); err != nil {
			t.Fatalf("zero-probability BeforeRun returned %v", err)
		}
	}
}

func TestDaemonFaultsReproducible(t *testing.T) {
	schedule := func() []bool {
		f := NewDaemonFaults(DaemonFaultsConfig{Seed: 42, JournalErrProb: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = f.JournalFault() != nil
		}
		return out
	}
	a, b := schedule(), schedule()
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault schedule diverged at call %d", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Errorf("p=0.5 schedule injected %d/%d — not probabilistic", hits, len(a))
	}
}
