package models

import "fmt"

// scaleC divides a channel count by scale, keeping a floor of 4 and rounding
// to a multiple of 2 so grouped convolutions stay valid.
func scaleC(c, scale int) int {
	if scale <= 1 {
		return c
	}
	s := c / scale
	if s < 4 {
		s = 4
	}
	if s%2 == 1 {
		s++
	}
	return s
}

// VGGS returns the VGG-S victim architecture used in the paper's evaluation:
// a VGG-16-style CIFAR network (conv5_3 is 512×512×3×3, matching the weight
// count quoted in §4.2). scale divides all channel widths (1 = full size) so
// tests and CPU training stay tractable.
func VGGS(scale int) *Arch {
	a := &Arch{Name: fmt.Sprintf("vgg-s/%d", scale), InC: 3, InH: 32, InW: 32, NumClasses: 10}
	prev := InputID
	stage := func(name string, outC, n int, pool bool) {
		for i := 0; i < n; i++ {
			p := 1
			if pool && i == n-1 {
				p = 2
			}
			a.Units = append(a.Units, Unit{
				Kind: UnitConv, Name: fmt.Sprintf("%s_%d", name, i+1), In: []int{prev},
				OutC: scaleC(outC, scale), Kernel: 3, Stride: 1, Pool: p, BN: true, ReLU: true,
			})
			prev = len(a.Units) - 1
		}
	}
	stage("conv1", 64, 2, true)
	stage("conv2", 128, 2, true)
	stage("conv3", 256, 3, true)
	stage("conv4", 512, 3, true)
	stage("conv5", 512, 3, true)
	a.Units = append(a.Units, Unit{Kind: UnitLinear, Name: "fc", In: []int{prev}, OutC: a.NumClasses})
	return a
}

// ResNet18 returns the CIFAR-style ResNet-18 victim: 3×3 stem with 64
// channels (the paper's first-layer k range [30,73] centres on 64), four
// stages of two basic blocks, global average pool, and a linear classifier.
func ResNet18(scale int) *Arch {
	a := &Arch{Name: fmt.Sprintf("resnet18/%d", scale), InC: 3, InH: 32, InW: 32, NumClasses: 10}
	add := func(u Unit) int {
		a.Units = append(a.Units, u)
		return len(a.Units) - 1
	}
	stem := add(Unit{Kind: UnitConv, Name: "stem", In: []int{InputID},
		OutC: scaleC(64, scale), Kernel: 3, Stride: 1, Pool: 1, BN: true, ReLU: true})
	prev := stem
	inC := scaleC(64, scale)
	basicBlock := func(name string, outC, stride int) {
		c1 := add(Unit{Kind: UnitConv, Name: name + "a", In: []int{prev},
			OutC: outC, Kernel: 3, Stride: stride, Pool: 1, BN: true, ReLU: true})
		c2 := add(Unit{Kind: UnitConv, Name: name + "b", In: []int{c1},
			OutC: outC, Kernel: 3, Stride: 1, Pool: 1, BN: true, ReLU: false})
		shortcut := prev
		if stride != 1 || inC != outC {
			shortcut = add(Unit{Kind: UnitConv, Name: name + "s", In: []int{prev},
				OutC: outC, Kernel: 1, Stride: stride, Pool: 1, BN: true, ReLU: false})
		}
		prev = add(Unit{Kind: UnitAdd, Name: name + "+", In: []int{c2, shortcut}, ReLU: true})
		inC = outC
	}
	for i, cfg := range []struct {
		c, s int
	}{{64, 1}, {64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1}, {512, 2}, {512, 1}} {
		basicBlock(fmt.Sprintf("b%d", i+1), scaleC(cfg.c, scale), cfg.s)
	}
	pool := add(Unit{Kind: UnitAvgPool, Name: "gap", In: []int{prev}, Pool: 4})
	add(Unit{Kind: UnitLinear, Name: "fc", In: []int{pool}, OutC: a.NumClasses})
	return a
}

// AlexNet returns a CIFAR-adapted AlexNet, the prior-generation baseline the
// paper compares VGG-S candidates against in Fig. 4.
func AlexNet(scale int) *Arch {
	a := &Arch{Name: fmt.Sprintf("alexnet/%d", scale), InC: 3, InH: 32, InW: 32, NumClasses: 10}
	prev := InputID
	conv := func(name string, outC, k, pool int) {
		a.Units = append(a.Units, Unit{Kind: UnitConv, Name: name, In: []int{prev},
			OutC: scaleC(outC, scale), Kernel: k, Stride: 1, Pool: pool, BN: true, ReLU: true})
		prev = len(a.Units) - 1
	}
	conv("conv1", 64, 5, 2)
	conv("conv2", 192, 5, 2)
	conv("conv3", 384, 3, 1)
	conv("conv4", 256, 3, 1)
	conv("conv5", 256, 3, 2)
	a.Units = append(a.Units, Unit{Kind: UnitLinear, Name: "fc", In: []int{prev}, OutC: a.NumClasses})
	return a
}

// MobileNetV2 returns a CIFAR-adapted MobileNetV2 (inverted residual blocks
// with depthwise convolutions), one of the Fig. 5/6 random-surrogate
// baselines.
func MobileNetV2(scale int) *Arch {
	a := &Arch{Name: fmt.Sprintf("mobilenetv2/%d", scale), InC: 3, InH: 32, InW: 32, NumClasses: 10}
	add := func(u Unit) int {
		a.Units = append(a.Units, u)
		return len(a.Units) - 1
	}
	prev := add(Unit{Kind: UnitConv, Name: "stem", In: []int{InputID},
		OutC: scaleC(32, scale), Kernel: 3, Stride: 1, Pool: 1, BN: true, ReLU: true})
	inC := scaleC(32, scale)
	block := func(name string, outC, stride, expand int) {
		hidden := inC * expand
		in := prev
		x := in
		if expand != 1 {
			x = add(Unit{Kind: UnitConv, Name: name + "e", In: []int{x},
				OutC: hidden, Kernel: 1, Stride: 1, Pool: 1, BN: true, ReLU: true})
		}
		x = add(Unit{Kind: UnitConv, Name: name + "d", In: []int{x},
			OutC: hidden, Kernel: 3, Stride: stride, Pool: 1, Groups: hidden, BN: true, ReLU: true})
		x = add(Unit{Kind: UnitConv, Name: name + "p", In: []int{x},
			OutC: outC, Kernel: 1, Stride: 1, Pool: 1, BN: true, ReLU: false})
		if stride == 1 && inC == outC {
			x = add(Unit{Kind: UnitAdd, Name: name + "+", In: []int{x, in}, ReLU: false})
		}
		prev = x
		inC = outC
	}
	// (expansion, outC, repeats, stride) per the MobileNetV2 paper, CIFAR strides.
	for i, cfg := range []struct{ t, c, n, s int }{
		{1, 16, 1, 1}, {6, 24, 2, 1}, {6, 32, 3, 2}, {6, 64, 2, 2}, {6, 96, 2, 1}, {6, 160, 2, 2},
	} {
		for j := 0; j < cfg.n; j++ {
			s := cfg.s
			if j > 0 {
				s = 1
			}
			block(fmt.Sprintf("ir%d_%d", i+1, j+1), scaleC(cfg.c, scale), s, cfg.t)
		}
	}
	head := add(Unit{Kind: UnitConv, Name: "head", In: []int{prev},
		OutC: scaleC(320, scale), Kernel: 1, Stride: 1, Pool: 1, BN: true, ReLU: true})
	pool := add(Unit{Kind: UnitAvgPool, Name: "gap", In: []int{head}, Pool: 4})
	add(Unit{Kind: UnitLinear, Name: "fc", In: []int{pool}, OutC: a.NumClasses})
	return a
}

// SmallCNN returns a deliberately tiny sequential CNN used by tests and the
// quickstart example: 3 conv units with mixed kernels/strides/pools plus a
// classifier. It exercises every geometry feature the prober must recover.
func SmallCNN() *Arch {
	a := &Arch{Name: "smallcnn", InC: 3, InH: 32, InW: 32, NumClasses: 10}
	a.Units = []Unit{
		{Kind: UnitConv, Name: "c1", In: []int{InputID}, OutC: 8, Kernel: 5, Stride: 1, Pool: 1, BN: true, ReLU: true},
		{Kind: UnitConv, Name: "c2", In: []int{0}, OutC: 16, Kernel: 3, Stride: 1, Pool: 2, BN: true, ReLU: true},
		{Kind: UnitConv, Name: "c3", In: []int{1}, OutC: 16, Kernel: 3, Stride: 2, Pool: 1, BN: true, ReLU: true},
		{Kind: UnitLinear, Name: "fc", In: []int{2}, OutC: 10},
	}
	return a
}
