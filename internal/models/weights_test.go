package models

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/huffduff/huffduff/internal/tensor"
)

func TestSaveLoadWeightsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	arch := ResNet18(16)
	src, err := arch.Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	// Give the source distinctive state: random BN stats and a mask.
	for _, l := range src.bnLayers() {
		l.RunningMean.Randn(rng, 1)
		l.RunningVar.Uniform(rng, 0.5, 2)
	}
	p0 := src.Net.Params()[0]
	p0.Mask = tensor.New(p0.W.Shape()...)
	p0.Mask.Fill(1)
	p0.Mask.Data[0] = 0
	p0.ApplyMask()

	var buf bytes.Buffer
	if err := src.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}

	dst, err := arch.Build(rand.New(rand.NewSource(999)))
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.LoadWeights(&buf); err != nil {
		t.Fatal(err)
	}

	// Outputs must match exactly on an arbitrary input.
	x := tensor.New(2, 3, 32, 32)
	x.Randn(rng, 1)
	a := src.Net.Forward(x, false)
	b := dst.Net.Forward(x, false)
	if !tensor.ApproxEqual(a, b, 0) {
		t.Fatal("loaded model diverges from saved model")
	}
	// The mask must have survived.
	if dst.Net.Params()[0].Mask == nil || dst.Net.Params()[0].Mask.Data[0] != 0 {
		t.Fatal("mask not restored")
	}
}

func TestLoadWeightsWrongArch(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	a, err := SmallCNN().Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := ResNet18(16).Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.LoadWeights(&buf); err == nil {
		t.Fatal("expected error loading into a different architecture")
	}
}

func TestLoadWeightsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	a, err := SmallCNN().Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.LoadWeights(bytes.NewBufferString("not a checkpoint")); err == nil {
		t.Fatal("expected decode error")
	}
}
