package models

import (
	"fmt"
	"sort"
	"strings"
)

// zoo is the canonical name → constructor registry. Every constructor takes
// the channel-width divisor; fixed-size architectures ignore it. Adding a
// model here is the single step that makes it reachable from every CLI flag,
// daemon job spec, and help string.
var zoo = map[string]func(scale int) *Arch{
	"smallcnn":    func(int) *Arch { return SmallCNN() },
	"vggs":        VGGS,
	"resnet18":    ResNet18,
	"alexnet":     AlexNet,
	"mobilenetv2": MobileNetV2,
}

// Names returns every registered model name, sorted.
func Names() []string {
	names := make([]string, 0, len(zoo))
	for name := range zoo {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ByName resolves a registered model name to a victim architecture at the
// given channel-width divisor.
func ByName(name string, scale int) (*Arch, error) {
	mk, ok := zoo[name]
	if !ok {
		return nil, fmt.Errorf("unknown model %q (want %s)", name, strings.Join(Names(), "|"))
	}
	return mk(scale), nil
}
