// Package models defines an architecture IR for the CNNs the paper attacks
// (VGG-S, ResNet-18) and its baselines (AlexNet, MobileNetV2), plus builders
// that turn an Arch into a runnable nn.Network.
//
// The Arch IR is the ground truth the attacker tries to recover: each Unit
// corresponds to one accelerator execution step (one layerwise pass whose
// tensors all visit DRAM), which is exactly the granularity the DRAM trace
// exposes.
package models

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/huffduff/huffduff/internal/nn"
	"github.com/huffduff/huffduff/internal/tensor"
)

// UnitKind is the type of an accelerator execution unit.
type UnitKind int

// Unit kinds.
const (
	// UnitConv is conv (+BN) (+ReLU) (+maxpool) executed as one layerwise
	// pass; BN/ReLU/pool live in the post-processing module.
	UnitConv UnitKind = iota
	// UnitAdd is an elementwise residual sum (+ReLU).
	UnitAdd
	// UnitAvgPool is an average-pool pass (ResNet's global pool).
	UnitAvgPool
	// UnitLinear is a fully connected pass (input flattened implicitly).
	UnitLinear
)

// InputID is the pseudo-unit index denoting the network input.
const InputID = -1

// Unit describes one execution unit. In refers to producing units by index
// (InputID for the network input).
type Unit struct {
	Kind UnitKind
	Name string
	In   []int

	// Conv fields.
	OutC   int
	Kernel int
	Stride int
	Pool   int // maxpool window fused into post-processing; 1 = none
	Groups int // 0 or 1 = dense conv; OutC = depthwise
	BN     bool
	ReLU   bool
	Bias   bool
}

// Arch is a complete architecture description.
type Arch struct {
	Name       string
	InC        int
	InH, InW   int
	NumClasses int
	Units      []Unit
}

// Validate checks structural invariants: topological in-order references and
// consistent channel counts. It returns the inferred per-unit output channel
// count (or flattened feature count for linear units).
func (a *Arch) Validate() error {
	if a.InC <= 0 || a.InH <= 0 || a.InW <= 0 {
		return fmt.Errorf("models: %s: invalid input dims %dx%dx%d", a.Name, a.InC, a.InH, a.InW)
	}
	for i, u := range a.Units {
		if len(u.In) == 0 {
			return fmt.Errorf("models: %s unit %d (%s): no inputs", a.Name, i, u.Name)
		}
		for _, in := range u.In {
			if in != InputID && (in < 0 || in >= i) {
				return fmt.Errorf("models: %s unit %d (%s): bad input ref %d", a.Name, i, u.Name, in)
			}
		}
		switch u.Kind {
		case UnitConv:
			if u.Kernel < 1 || u.Stride < 1 || u.Pool < 1 || u.OutC < 1 {
				return fmt.Errorf("models: %s unit %d (%s): bad conv geometry %+v", a.Name, i, u.Name, u)
			}
			if len(u.In) != 1 {
				return fmt.Errorf("models: %s unit %d (%s): conv takes one input", a.Name, i, u.Name)
			}
		case UnitAdd:
			if len(u.In) != 2 {
				return fmt.Errorf("models: %s unit %d (%s): add takes two inputs", a.Name, i, u.Name)
			}
		case UnitAvgPool:
			if u.Pool < 1 || len(u.In) != 1 {
				return fmt.Errorf("models: %s unit %d (%s): bad avgpool", a.Name, i, u.Name)
			}
		case UnitLinear:
			if u.OutC < 1 || len(u.In) != 1 {
				return fmt.Errorf("models: %s unit %d (%s): bad linear", a.Name, i, u.Name)
			}
		}
	}
	return nil
}

// UnitShape is the output tensor geometry of a unit.
type UnitShape struct {
	C, H, W int  // spatial output (after pool) for conv/add/avgpool
	Flat    bool // true for linear outputs (C = features, H = W = 1)
}

// Shapes infers every unit's output shape by propagating the input geometry.
func (a *Arch) Shapes() ([]UnitShape, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	shapes := make([]UnitShape, len(a.Units))
	get := func(id int) UnitShape {
		if id == InputID {
			return UnitShape{C: a.InC, H: a.InH, W: a.InW}
		}
		return shapes[id]
	}
	for i, u := range a.Units {
		in := get(u.In[0])
		switch u.Kind {
		case UnitConv:
			pad := nn.SamePad(u.Kernel)
			h := (in.H+2*pad-u.Kernel)/u.Stride + 1
			w := (in.W+2*pad-u.Kernel)/u.Stride + 1
			h /= u.Pool
			w /= u.Pool
			if h < 1 || w < 1 {
				return nil, fmt.Errorf("models: %s unit %d (%s): geometry collapses to %dx%d", a.Name, i, u.Name, h, w)
			}
			shapes[i] = UnitShape{C: u.OutC, H: h, W: w}
		case UnitAdd:
			other := get(u.In[1])
			if in != other {
				return nil, fmt.Errorf("models: %s unit %d (%s): add shape mismatch %+v vs %+v", a.Name, i, u.Name, in, other)
			}
			shapes[i] = in
		case UnitAvgPool:
			shapes[i] = UnitShape{C: in.C, H: in.H / u.Pool, W: in.W / u.Pool}
		case UnitLinear:
			shapes[i] = UnitShape{C: u.OutC, H: 1, W: 1, Flat: true}
		}
	}
	return shapes, nil
}

// groups returns the effective group count of a conv unit.
func (u Unit) groups() int {
	if u.Groups <= 1 {
		return 1
	}
	return u.Groups
}

// Binding maps Arch units to nodes of the built nn.Network so the
// accelerator simulator can fetch per-unit tensors.
type Binding struct {
	Net *nn.Network
	// UnitOut[i] is the network node whose Out() is unit i's tensor as
	// written to DRAM (post BN/ReLU/pool for conv units).
	UnitOut []int
	// PsumNode[i] is the node holding the dense partial sums of unit i
	// (the raw conv / linear output before post-processing); -1 for units
	// without psums (add, avgpool).
	PsumNode []int
	// Conv[i] is the conv layer of unit i (nil for non-conv units) and
	// FC[i] the linear layer (nil otherwise), for weight access.
	Conv []*nn.Conv2D
	FC   []*nn.Linear
}

// Build constructs a runnable network with freshly initialized weights.
func (a *Arch) Build(rng *rand.Rand) (*Binding, error) {
	shapes, err := a.Shapes()
	if err != nil {
		return nil, err
	}
	b := nn.NewBuilder()
	input := b.Input()
	bind := &Binding{
		UnitOut:  make([]int, len(a.Units)),
		PsumNode: make([]int, len(a.Units)),
		Conv:     make([]*nn.Conv2D, len(a.Units)),
		FC:       make([]*nn.Linear, len(a.Units)),
	}
	node := func(id int) int {
		if id == InputID {
			return input
		}
		return bind.UnitOut[id]
	}
	chanOf := func(id int) int {
		if id == InputID {
			return a.InC
		}
		return shapes[id].C
	}
	for i, u := range a.Units {
		switch u.Kind {
		case UnitConv:
			inC := chanOf(u.In[0])
			conv := nn.NewConv2D(rng, inC, u.OutC, u.Kernel, u.Stride, nn.SamePad(u.Kernel), u.groups(), u.Bias)
			bind.Conv[i] = conv
			id := b.Layer(node(u.In[0]), conv)
			bind.PsumNode[i] = id
			if u.BN {
				id = b.Layer(id, nn.NewBatchNorm2D(u.OutC))
			}
			if u.ReLU {
				id = b.Layer(id, nn.NewReLU())
			}
			if u.Pool > 1 {
				id = b.Layer(id, nn.NewMaxPool2D(u.Pool))
			}
			bind.UnitOut[i] = id
		case UnitAdd:
			bind.PsumNode[i] = -1
			bind.UnitOut[i] = b.Add(node(u.In[0]), node(u.In[1]), u.ReLU)
		case UnitAvgPool:
			bind.PsumNode[i] = -1
			bind.UnitOut[i] = b.Layer(node(u.In[0]), nn.NewAvgPool2D(u.Pool))
		case UnitLinear:
			inShape := UnitShape{C: a.InC, H: a.InH, W: a.InW}
			if u.In[0] != InputID {
				inShape = shapes[u.In[0]]
			}
			id := node(u.In[0])
			features := inShape.C
			if !inShape.Flat {
				features = inShape.C * inShape.H * inShape.W
				id = b.Layer(id, nn.NewFlatten())
			}
			fc := nn.NewLinear(rng, features, u.OutC)
			bind.FC[i] = fc
			id = b.Layer(id, fc)
			bind.PsumNode[i] = id
			if u.ReLU {
				id = b.Layer(id, nn.NewReLU())
			}
			bind.UnitOut[i] = id
		}
	}
	bind.Net = b.Build(bind.UnitOut[len(a.Units)-1])
	return bind, nil
}

// PsumOut returns the dense partial-sum tensor of unit i from the last
// forward pass, or nil if the unit has no psums.
func (bd *Binding) PsumOut(i int) *tensor.Tensor {
	if bd.PsumNode[i] < 0 {
		return nil
	}
	return bd.Net.Nodes[bd.PsumNode[i]].Out()
}

// UnitTensor returns unit i's output tensor as written to DRAM in the last
// forward pass.
func (bd *Binding) UnitTensor(i int) *tensor.Tensor {
	return bd.Net.Nodes[bd.UnitOut[i]].Out()
}

// InputTensorOf returns the tensor read by unit i's j-th input edge.
func (bd *Binding) InputTensorOf(a *Arch, i, j int) *tensor.Tensor {
	src := a.Units[i].In[j]
	if src == InputID {
		return bd.Net.Nodes[0].Out()
	}
	return bd.UnitTensor(src)
}

// ConvUnits returns the indices of conv units in execution order.
func (a *Arch) ConvUnits() []int {
	var ids []int
	for i, u := range a.Units {
		if u.Kind == UnitConv {
			ids = append(ids, i)
		}
	}
	return ids
}

// WeightCount returns the total number of weight elements in conv and
// linear units (excluding BN affine and biases), the quantity pruning
// factors are quoted against.
func (a *Arch) WeightCount() (int, error) {
	shapes, err := a.Shapes()
	if err != nil {
		return 0, err
	}
	total := 0
	for i, u := range a.Units {
		inC := a.InC
		if u.In[0] != InputID {
			inC = shapes[u.In[0]].C
		}
		switch u.Kind {
		case UnitConv:
			total += u.OutC * (inC / u.groups()) * u.Kernel * u.Kernel
		case UnitLinear:
			f := a.InC * a.InH * a.InW
			if u.In[0] != InputID {
				in := shapes[u.In[0]]
				f = in.C
				if !in.Flat {
					f = in.C * in.H * in.W
				}
			}
			total += u.OutC * f
		}
		_ = i
	}
	return total, nil
}

// String renders a one-line-per-unit summary.
func (a *Arch) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%dx%dx%d -> %d classes)\n", a.Name, a.InC, a.InH, a.InW, a.NumClasses)
	for i, u := range a.Units {
		switch u.Kind {
		case UnitConv:
			fmt.Fprintf(&sb, "  %2d %-10s conv k=%d s=%d pool=%d outC=%d g=%d in=%v\n", i, u.Name, u.Kernel, u.Stride, u.Pool, u.OutC, u.groups(), u.In)
		case UnitAdd:
			fmt.Fprintf(&sb, "  %2d %-10s add relu=%v in=%v\n", i, u.Name, u.ReLU, u.In)
		case UnitAvgPool:
			fmt.Fprintf(&sb, "  %2d %-10s avgpool %d in=%v\n", i, u.Name, u.Pool, u.In)
		case UnitLinear:
			fmt.Fprintf(&sb, "  %2d %-10s fc out=%d in=%v\n", i, u.Name, u.OutC, u.In)
		}
	}
	return sb.String()
}
