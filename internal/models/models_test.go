package models

import (
	"math/rand"
	"testing"

	"github.com/huffduff/huffduff/internal/tensor"
)

func allArchs(scale int) []*Arch {
	return []*Arch{VGGS(scale), ResNet18(scale), AlexNet(scale), MobileNetV2(scale), SmallCNN()}
}

func TestArchValidation(t *testing.T) {
	for _, a := range allArchs(8) {
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if _, err := a.Shapes(); err != nil {
			t.Fatalf("%s shapes: %v", a.Name, err)
		}
	}
}

func TestFullSizeArchWeightCounts(t *testing.T) {
	// VGG-16-style conv5_3 is 512*512*3*3 = 2,359,296 (quoted in paper §4.2).
	a := VGGS(1)
	shapes, err := a.Shapes()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i, u := range a.Units {
		if u.Name == "conv5_3" {
			inC := shapes[u.In[0]].C
			if got := u.OutC * inC * 9; got != 2359296 {
				t.Fatalf("conv5_3 weights = %d, want 2359296", got)
			}
			found = true
		}
		_ = i
	}
	if !found {
		t.Fatal("conv5_3 not found")
	}
	// ResNet-18 stem has 64 output channels (paper k-range centres there).
	r := ResNet18(1)
	if r.Units[0].OutC != 64 {
		t.Fatalf("resnet stem outC = %d, want 64", r.Units[0].OutC)
	}
	// ResNet-18 has 17 convs on the main path + 3 shortcut convs.
	if got := len(r.ConvUnits()); got != 20 {
		t.Fatalf("resnet18 conv units = %d, want 20", got)
	}
}

func TestBuildAndForwardAllArchs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, a := range allArchs(16) {
		bind, err := a.Build(rng)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		x := tensor.New(2, a.InC, a.InH, a.InW)
		x.Randn(rng, 1)
		out := bind.Net.Forward(x, false)
		if out.Dim(0) != 2 || out.Dim(1) != a.NumClasses {
			t.Fatalf("%s: output shape %v", a.Name, out.Shape())
		}
		// Every unit output and psum must be populated consistently.
		shapes, _ := a.Shapes()
		for i, u := range a.Units {
			got := bind.UnitTensor(i)
			if got == nil {
				t.Fatalf("%s unit %d: nil output", a.Name, i)
			}
			if u.Kind != UnitLinear {
				s := shapes[i]
				if got.Dim(1) != s.C || got.Dim(2) != s.H || got.Dim(3) != s.W {
					t.Fatalf("%s unit %d (%s): shape %v, want CHW %d %d %d", a.Name, i, u.Name, got.Shape(), s.C, s.H, s.W)
				}
			}
			if u.Kind == UnitConv && bind.PsumOut(i) == nil {
				t.Fatalf("%s unit %d: conv unit without psum", a.Name, i)
			}
			if u.Kind == UnitAdd && bind.PsumOut(i) != nil {
				t.Fatalf("%s unit %d: add unit with psum", a.Name, i)
			}
		}
	}
}

func TestPsumShapeIsPrePool(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := SmallCNN()
	bind, err := a.Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 3, 32, 32)
	x.Randn(rng, 1)
	bind.Net.Forward(x, false)
	// Unit 1 (c2) pools by 2: psum is 32x32, written output is 16x16.
	psum := bind.PsumOut(1)
	out := bind.UnitTensor(1)
	if psum.Dim(2) != 32 || out.Dim(2) != 16 {
		t.Fatalf("psum H=%d out H=%d, want 32/16", psum.Dim(2), out.Dim(2))
	}
}

func TestInputTensorOfFollowsEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := ResNet18(16)
	bind, err := a.Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 3, 32, 32)
	x.Randn(rng, 1)
	bind.Net.Forward(x, false)
	// Find the first add unit and check both inputs resolve to tensors of
	// the same shape.
	for i, u := range a.Units {
		if u.Kind == UnitAdd {
			t0 := bind.InputTensorOf(a, i, 0)
			t1 := bind.InputTensorOf(a, i, 1)
			if t0 == nil || t1 == nil || !tensor.SameShape(t0, t1) {
				t.Fatalf("add unit %d: input tensors mismatch", i)
			}
			return
		}
	}
	t.Fatal("no add unit found")
}

func TestWeightCountMatchesBuiltNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for _, a := range allArchs(16) {
		want, err := a.WeightCount()
		if err != nil {
			t.Fatal(err)
		}
		bind, err := a.Build(rng)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for _, p := range bind.Net.Params() {
			if p.Decay { // conv + linear weights carry decay; BN/bias do not
				got += p.W.Size()
			}
		}
		if got != want {
			t.Fatalf("%s: WeightCount %d, built %d", a.Name, want, got)
		}
	}
}

func TestScaleCFloorAndParity(t *testing.T) {
	if scaleC(64, 1) != 64 {
		t.Fatal("scale 1 must be identity")
	}
	if scaleC(64, 16) != 4 {
		t.Fatalf("scaleC(64,16) = %d", scaleC(64, 16))
	}
	if scaleC(8, 16) != 4 {
		t.Fatalf("floor violated: %d", scaleC(8, 16))
	}
	if scaleC(96, 16)%2 != 0 {
		t.Fatal("parity violated")
	}
}

func TestValidateCatchesBadArch(t *testing.T) {
	bad := &Arch{Name: "bad", InC: 3, InH: 32, InW: 32, NumClasses: 10,
		Units: []Unit{{Kind: UnitConv, Name: "c", In: []int{5}, OutC: 4, Kernel: 3, Stride: 1, Pool: 1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected forward-reference error")
	}
	bad2 := &Arch{Name: "bad2", InC: 3, InH: 32, InW: 32, NumClasses: 10,
		Units: []Unit{{Kind: UnitConv, Name: "c", In: []int{InputID}, OutC: 0, Kernel: 3, Stride: 1, Pool: 1}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected bad-geometry error")
	}
	bad3 := &Arch{Name: "bad3", InC: 0, InH: 32, InW: 32}
	if err := bad3.Validate(); err == nil {
		t.Fatal("expected bad-input error")
	}
}

func TestArchString(t *testing.T) {
	s := ResNet18(8).String()
	if s == "" {
		t.Fatal("empty String")
	}
}
