package models

import (
	"encoding/gob"
	"fmt"
	"io"

	"github.com/huffduff/huffduff/internal/nn"
	"github.com/huffduff/huffduff/internal/tensor"
)

// checkpoint is the serialized form of a model's mutable state: parameter
// values, pruning masks, and batch-norm running statistics, in the network's
// deterministic construction order.
type checkpoint struct {
	Params [][]float64
	Masks  [][]float64 // nil entry = dense parameter
	BNMean [][]float64
	BNVar  [][]float64
}

// bnLayers returns the network's batch-norm layers in graph order.
func (bd *Binding) bnLayers() []*nn.BatchNorm2D {
	var bns []*nn.BatchNorm2D
	for _, l := range bd.Net.Layers() {
		if bn, ok := l.(*nn.BatchNorm2D); ok {
			bns = append(bns, bn)
		}
	}
	return bns
}

// SaveWeights serializes the model's trained state. The architecture itself
// is not stored; load into a Binding built from the same Arch.
func (bd *Binding) SaveWeights(w io.Writer) error {
	var cp checkpoint
	for _, p := range bd.Net.Params() {
		cp.Params = append(cp.Params, p.W.Data)
		if p.Mask != nil {
			cp.Masks = append(cp.Masks, p.Mask.Data)
		} else {
			cp.Masks = append(cp.Masks, nil)
		}
	}
	for _, bn := range bd.bnLayers() {
		cp.BNMean = append(cp.BNMean, bn.RunningMean.Data)
		cp.BNVar = append(cp.BNVar, bn.RunningVar.Data)
	}
	return gob.NewEncoder(w).Encode(&cp)
}

// LoadWeights restores state saved by SaveWeights into a binding with the
// same architecture.
func (bd *Binding) LoadWeights(r io.Reader) error {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return fmt.Errorf("models: decoding checkpoint: %w", err)
	}
	params := bd.Net.Params()
	if len(cp.Params) != len(params) {
		return fmt.Errorf("models: checkpoint has %d parameters, model has %d", len(cp.Params), len(params))
	}
	bns := bd.bnLayers()
	if len(cp.BNMean) != len(bns) || len(cp.BNVar) != len(bns) {
		return fmt.Errorf("models: checkpoint has %d batch norms, model has %d", len(cp.BNMean), len(bns))
	}
	for i, p := range params {
		if len(cp.Params[i]) != p.W.Size() {
			return fmt.Errorf("models: parameter %d size %d, want %d", i, len(cp.Params[i]), p.W.Size())
		}
		copy(p.W.Data, cp.Params[i])
		if cp.Masks[i] != nil {
			if p.Mask == nil {
				p.Mask = tensor.New(p.W.Shape()...)
			}
			if len(cp.Masks[i]) != p.Mask.Size() {
				return fmt.Errorf("models: mask %d size mismatch", i)
			}
			copy(p.Mask.Data, cp.Masks[i])
		} else {
			p.Mask = nil
		}
	}
	for i, bn := range bns {
		if len(cp.BNMean[i]) != bn.RunningMean.Size() {
			return fmt.Errorf("models: batch norm %d stat size mismatch", i)
		}
		copy(bn.RunningMean.Data, cp.BNMean[i])
		copy(bn.RunningVar.Data, cp.BNVar[i])
	}
	return nil
}
