package dram

import (
	"math"
	"testing"
)

func TestBandwidthFormula(t *testing.T) {
	s := Spec{Name: "x", MTps: 1000, BusBytes: 2, Channels: 1, Efficiency: 0.5}
	if got := s.Bandwidth(); got != 1e9 {
		t.Fatalf("Bandwidth = %g, want 1e9", got)
	}
}

func TestGenerationOrdering(t *testing.T) {
	if !(LPDDR3(1).Bandwidth() < LPDDR4(1).Bandwidth() && LPDDR4(1).Bandwidth() < LPDDR4X(1).Bandwidth()) {
		t.Fatal("LPDDR generations must increase in bandwidth")
	}
}

func TestDualChannelDoubles(t *testing.T) {
	for _, mk := range []func(int) Spec{LPDDR3, LPDDR4, LPDDR4X} {
		s, d := mk(1), mk(2)
		if math.Abs(d.Bandwidth()-2*s.Bandwidth()) > 1e-6 {
			t.Fatalf("%s: dual channel != 2x single", s.Name)
		}
	}
}

func TestEvaluatedSpecsOrder(t *testing.T) {
	specs := EvaluatedSpecs()
	if len(specs) != 6 {
		t.Fatalf("got %d specs", len(specs))
	}
	wantNames := []string{"LPDDR3-2133", "LPDDR3-2133", "LPDDR4-3200", "LPDDR4-3200", "LPDDR4X-4266", "LPDDR4X-4266"}
	for i, s := range specs {
		if s.Name != wantNames[i] {
			t.Fatalf("spec %d = %s, want %s", i, s.Name, wantNames[i])
		}
		wantCh := 1 + i%2
		if s.Channels != wantCh {
			t.Fatalf("spec %d channels = %d, want %d", i, s.Channels, wantCh)
		}
	}
}

func TestString(t *testing.T) {
	if LPDDR4(1).String() == "" {
		t.Fatal("empty String")
	}
}
