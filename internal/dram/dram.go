// Package dram models the off-chip LPDDR memories the paper evaluates
// (JESD209-3C LPDDR3, JESD209-4D LPDDR4, JESD209-4-1A LPDDR4X) at the level
// the timing side channel needs: sustained write bandwidth per channel
// configuration.
package dram

import "fmt"

// Spec describes one DRAM configuration.
type Spec struct {
	Name string
	// MTps is the data rate in mega-transfers per second.
	MTps int
	// BusBytes is the channel width in bytes (x16 = 2).
	BusBytes int
	// Channels is the channel count (1 = single, 2 = dual).
	Channels int
	// Efficiency derates the peak for protocol overhead (bank conflicts,
	// refresh, read/write turnaround).
	Efficiency float64
}

// Bandwidth returns sustained bandwidth in bytes per second.
func (s Spec) Bandwidth() float64 {
	return float64(s.MTps) * 1e6 * float64(s.BusBytes) * float64(s.Channels) * s.Efficiency
}

// String implements fmt.Stringer.
func (s Spec) String() string {
	return fmt.Sprintf("%s (%d ch, %.2f GB/s)", s.Name, s.Channels, s.Bandwidth()/1e9)
}

func lp(name string, mtps, channels int) Spec {
	return Spec{Name: name, MTps: mtps, BusBytes: 2, Channels: channels, Efficiency: 0.8}
}

// LPDDR3 returns an LPDDR3-2133 x16 spec with the given channel count.
func LPDDR3(channels int) Spec { return lp("LPDDR3-2133", 2133, channels) }

// LPDDR4 returns an LPDDR4-3200 x16 spec with the given channel count.
func LPDDR4(channels int) Spec { return lp("LPDDR4-3200", 3200, channels) }

// LPDDR4X returns an LPDDR4X-4266 x16 spec with the given channel count.
func LPDDR4X(channels int) Spec { return lp("LPDDR4X-4266", 4266, channels) }

// EvaluatedSpecs returns the six configurations of the paper's §8.2 table:
// LPDDR3/4/4X in single- and dual-channel form, in the paper's column order.
func EvaluatedSpecs() []Spec {
	return []Spec{
		LPDDR3(1), LPDDR3(2),
		LPDDR4(1), LPDDR4(2),
		LPDDR4X(1), LPDDR4X(2),
	}
}
