package prof

import (
	"context"
	"testing"
	"time"

	"github.com/huffduff/huffduff/internal/obs"
)

// stageWork is a stand-in pipeline stage: a few hundred microseconds of
// deterministic arithmetic — still orders of magnitude below the attack's
// real stages, which run milliseconds to seconds. It deliberately allocates
// almost nothing, so the comparison below measures Stage's own cost (two
// runtime/metrics reads, two label swaps, one histogram insert — a few
// microseconds) rather than GC jitter.
func stageWork() float64 {
	acc := 0.0
	buf := make([]float64, 1024)
	for i := 0; i < 2000; i++ {
		for j := range buf {
			buf[j] = float64(i ^ j)
			acc += buf[j]
		}
	}
	return acc
}

// BenchmarkProfOverhead compares one instrumented stage against the same
// work under a no-op recorder. The acceptance budget is <5% overhead; run
// with -bench ProfOverhead and compare the two sub-benchmarks.
func BenchmarkProfOverhead(b *testing.B) {
	b.Run("noop", func(b *testing.B) {
		ctx := context.Background() // no recorder: Stage is one nil check
		sink := 0.0
		for i := 0; i < b.N; i++ {
			_, end := Stage(ctx, "bench")
			sink += stageWork()
			end()
		}
		_ = sink
	})
	b.Run("profiled", func(b *testing.B) {
		col := obs.NewCollector()
		ctx := obs.WithRecorder(context.Background(), col)
		sink := 0.0
		for i := 0; i < b.N; i++ {
			_, end := Stage(ctx, "bench")
			sink += stageWork()
			end()
		}
		_ = sink
	})
}

// TestProfOverheadBudget enforces the <5% acceptance budget directly:
// profiled stages must cost no more than 1.05x the no-op path. Timing a
// timer is inherently noisy, so each side takes the minimum of several
// attempts (minimums converge on the true cost; means absorb scheduler
// noise) and the test skips under -short.
func TestProfOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive budget test")
	}
	const (
		iters    = 50
		attempts = 7
	)
	attempt := func(ctx context.Context) time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			_, end := Stage(ctx, "bench")
			stageWork()
			end()
		}
		return time.Since(start)
	}
	// Warm both paths once so first-use costs (metric map growth, code
	// paging) do not land inside a measurement, then interleave attempts so
	// frequency drift and background load hit both paths alike. Each side
	// keeps its minimum.
	noopCtx := context.Background()
	profCtx := obs.WithRecorder(context.Background(), obs.NewCollector())
	attempt(noopCtx)
	attempt(profCtx)
	measure := func() float64 {
		base, profiled := time.Duration(1<<63-1), time.Duration(1<<63-1)
		for a := 0; a < attempts; a++ {
			if d := attempt(noopCtx); d < base {
				base = d
			}
			if d := attempt(profCtx); d < profiled {
				profiled = d
			}
		}
		ratio := float64(profiled) / float64(base)
		t.Logf("noop %v, profiled %v, ratio %.3f", base, profiled, ratio)
		return ratio
	}
	// One retry: a single background-load spike on a shared CI machine can
	// push an honest ~2% overhead over the line; a true budget violation
	// fails both rounds.
	ratio := measure()
	if ratio > 1.05 {
		ratio = measure()
	}
	if ratio > 1.05 {
		t.Errorf("profiling overhead %.1f%% exceeds the 5%% budget", 100*(ratio-1))
	}
}
