// Package prof is the cost-attribution layer on top of internal/obs: it
// answers *which stage, layer, and loop* of the attack pipeline the host's
// wall-seconds, allocated bytes, and GC time went to.
//
// Three mechanisms compose:
//
//   - Stage opens an obs span AND tags the goroutine with a runtime/pprof
//     label ("stage=<name>"), so any CPU profile captured while the pipeline
//     runs can be sliced per stage with `pprof -tagfocus`. The simulator adds
//     a second label dimension ("layer=<unit>") around each unit's
//     simulation, giving stage×layer attribution for free.
//   - Stage samples runtime/metrics at both span boundaries and publishes the
//     deltas as `prof.stage.*` counters: bytes allocated, GC cycles entered,
//     and estimated GC CPU seconds while the stage ran.
//   - RuntimeSampler (runtime.go) publishes point-in-time Go runtime gauges
//     and the GC pause histogram for long-running services' /metrics.
//
// Attribution caveat: the runtime counters are process-global. The attack
// pipeline runs its stages sequentially on one goroutine, so per-stage deltas
// are faithful there; under concurrent campaigns (the daemon) the per-stage
// deltas of overlapping stages overlap too, and only the totals are exact.
//
// This package intentionally reads the host clock: it measures the
// *attacker's* cost, never the victim's. Device time stays in the cycle
// model (`accel.` metrics); see DESIGN.md "Cost attribution".
package prof

import (
	"context"
	"runtime/metrics"
	"runtime/pprof"
	"time"

	"github.com/huffduff/huffduff/internal/obs"
)

// Runtime metric names sampled at stage boundaries. All three exist since
// Go 1.20; readBoundary degrades per-metric (KindBad reads as zero) so a
// future rename cannot break the pipeline.
const (
	allocBytesMetric = "/gc/heap/allocs:bytes"
	gcCyclesMetric   = "/gc/cycles/total:gc-cycles"
	gcCPUMetric      = "/cpu/classes/gc/total:cpu-seconds"
)

// boundary is one runtime snapshot taken at a span edge.
type boundary struct {
	allocBytes uint64
	gcCycles   uint64
	gcCPU      float64
}

// readBoundary fills b from runtime/metrics. The three-sample read costs on
// the order of a microsecond and never stops the world.
func readBoundary(b *boundary) {
	samples := [3]metrics.Sample{
		{Name: allocBytesMetric},
		{Name: gcCyclesMetric},
		{Name: gcCPUMetric},
	}
	metrics.Read(samples[:])
	if samples[0].Value.Kind() == metrics.KindUint64 {
		b.allocBytes = samples[0].Value.Uint64()
	}
	if samples[1].Value.Kind() == metrics.KindUint64 {
		b.gcCycles = samples[1].Value.Uint64()
	}
	if samples[2].Value.Kind() == metrics.KindFloat64 {
		b.gcCPU = samples[2].Value.Float64()
	}
}

// Stage opens a cost-attributed pipeline-stage region: an obs span named
// name, a goroutine pprof label stage=<name> (so CPU profile samples taken
// inside the stage carry it), and a runtime snapshot. The returned closer
// ends the span, restores the caller's label set, and publishes the stage's
// deltas:
//
//	stage.seconds{stage=<name>}              histogram, host wall time
//	prof.stage.alloc_bytes{stage=<name>}     counter, bytes allocated
//	prof.stage.gc_cycles{stage=<name>}       counter, GC cycles entered
//	prof.stage.gc_cpu_seconds{stage=<name>}  counter, estimated GC CPU time
//
// Without a Recorder in ctx the whole thing degrades to a single nil check,
// so unobserved runs pay nothing.
func Stage(ctx context.Context, name string) (context.Context, func()) {
	rec := obs.RecorderFrom(ctx)
	if rec == nil {
		return ctx, func() {}
	}
	sctx, sp := obs.Start(ctx, name)
	lctx := pprof.WithLabels(sctx, pprof.Labels("stage", name))
	pprof.SetGoroutineLabels(lctx)
	var open boundary
	readBoundary(&open)
	start := time.Now() //lint:ignore hosttime the profiler prices host cost by design; this clock never feeds a device-time channel
	return lctx, func() {
		wall := time.Since(start).Seconds() //lint:ignore hosttime host-cost measurement, see package doc
		var closeB boundary
		readBoundary(&closeB)
		sp.End()
		// Restore whatever label set the caller's context carried, so
		// sequential stages never inherit a finished stage's label.
		pprof.SetGoroutineLabels(ctx)
		label := "stage=" + name
		rec.Observe("stage.seconds", label, wall)
		rec.Count("prof.stage.alloc_bytes", label, float64(closeB.allocBytes-open.allocBytes))
		rec.Count("prof.stage.gc_cycles", label, float64(closeB.gcCycles-open.gcCycles))
		rec.Count("prof.stage.gc_cpu_seconds", label, closeB.gcCPU-open.gcCPU)
	}
}
