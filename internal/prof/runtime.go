package prof

import (
	"math"
	"runtime/metrics"
	"sync"

	"github.com/huffduff/huffduff/internal/obs"
)

// Gauge metric names sampled by RuntimeSampler. heap_alloc_bytes is live
// heap (objects currently reachable or not yet swept), matching what an
// operator means by "how big is the heap right now".
const (
	goroutinesMetric = "/sched/goroutines:goroutines"
	heapBytesMetric  = "/memory/classes/heap/objects:bytes"
	totalAllocMetric = "/gc/heap/allocs:bytes"
	gcCycleCountName = "/gc/cycles/total:gc-cycles"
)

// gcPauseCandidates are the stop-the-world pause histograms in preference
// order; the first one this runtime supports is used. /sched/pauses is the
// Go 1.22+ name, /gc/pauses the pre-1.22 alias.
var gcPauseCandidates = []string{
	"/sched/pauses/total/gc:seconds",
	"/gc/pauses:seconds",
}

// RuntimeSampler publishes Go runtime health gauges and the GC pause
// histogram to an obs.Recorder. It is pull-oriented: call Sample on every
// /metrics scrape (or on whatever cadence suits the consumer); each call
// emits the current gauges and feeds only the *new* GC pauses since the
// previous call into the `runtime.gc_pause_seconds` histogram, so scraping
// twice never double-counts a pause. Safe for concurrent use.
type RuntimeSampler struct {
	mu        sync.Mutex
	pauseName string   // supported pause-histogram metric, "" if none
	prevPause []uint64 // cumulative bucket counts at the previous sample
}

// NewRuntimeSampler probes the running runtime for the supported metric set
// and returns a ready sampler.
func NewRuntimeSampler() *RuntimeSampler {
	s := &RuntimeSampler{}
	for _, name := range gcPauseCandidates {
		probe := []metrics.Sample{{Name: name}}
		metrics.Read(probe)
		if probe[0].Value.Kind() == metrics.KindFloat64Histogram {
			s.pauseName = name
			break
		}
	}
	return s
}

// Sample reads the runtime and publishes to rec:
//
//	runtime.goroutines            gauge
//	runtime.heap_alloc_bytes      gauge, live heap bytes
//	runtime.total_alloc_bytes     gauge, cumulative allocated bytes
//	runtime.gc_cycles             gauge, completed GC cycles
//	runtime.gc_pause_seconds      histogram, one observation per new pause
//
// A nil rec is a no-op.
func (s *RuntimeSampler) Sample(rec obs.Recorder) {
	if rec == nil {
		return
	}
	samples := []metrics.Sample{
		{Name: goroutinesMetric},
		{Name: heapBytesMetric},
		{Name: totalAllocMetric},
		{Name: gcCycleCountName},
	}
	if s.pauseName != "" {
		samples = append(samples, metrics.Sample{Name: s.pauseName})
	}
	metrics.Read(samples)
	gaugeNames := []string{
		"runtime.goroutines",
		"runtime.heap_alloc_bytes",
		"runtime.total_alloc_bytes",
		"runtime.gc_cycles",
	}
	for i, out := range gaugeNames {
		if samples[i].Value.Kind() == metrics.KindUint64 {
			rec.Gauge(out, "", float64(samples[i].Value.Uint64()))
		}
	}
	if s.pauseName == "" {
		return
	}
	h := samples[len(samples)-1].Value.Float64Histogram()
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, count := range h.Counts {
		prev := uint64(0)
		if i < len(s.prevPause) {
			prev = s.prevPause[i]
		}
		fresh := count - prev
		if fresh == 0 {
			continue
		}
		// Observe each new pause at its bucket's representative value. The
		// runtime histogram brackets bucket i as [Buckets[i], Buckets[i+1});
		// edges can be ±Inf, so fall back to whichever bound is finite.
		v := pauseBucketValue(h.Buckets, i)
		// A scrape gap can accumulate many pauses; cap the per-call fan-out
		// so a long gap cannot stall a scrape. The remainder lands as one
		// summed observation, keeping the histogram's _sum faithful.
		const maxObs = 256
		if fresh > maxObs {
			rec.Observe("runtime.gc_pause_seconds", "", v*float64(fresh-maxObs+1))
			fresh = maxObs - 1
		}
		for j := uint64(0); j < fresh; j++ {
			rec.Observe("runtime.gc_pause_seconds", "", v)
		}
	}
	s.prevPause = append(s.prevPause[:0], h.Counts...)
}

// pauseBucketValue picks a finite representative value for bucket i of a
// runtime Float64Histogram.
func pauseBucketValue(buckets []float64, i int) float64 {
	lo, hi := buckets[i], buckets[i+1]
	switch {
	case !math.IsInf(lo, 0) && !math.IsInf(hi, 0):
		return (lo + hi) / 2
	case math.IsInf(lo, 0):
		return hi
	default:
		return lo
	}
}
