package prof

import (
	"fmt"
	"sort"
	"strings"

	"github.com/huffduff/huffduff/internal/obs"
)

// StageCost is one pipeline stage's attributed resource bill.
type StageCost struct {
	Stage        string  `json:"stage"`
	WallSeconds  float64 `json:"wall_seconds"`
	Spans        uint64  `json:"spans"`
	AllocBytes   float64 `json:"alloc_bytes"`
	GCCycles     float64 `json:"gc_cycles"`
	GCCPUSeconds float64 `json:"gc_cpu_seconds"`
}

// CounterCost is one counter series in the top-N list.
type CounterCost struct {
	Series string  `json:"series"`
	Value  float64 `json:"value"`
}

// Report is the top-N attributed cost breakdown of one instrumented run:
// where the wall-seconds went stage by stage, how the host/device clocks
// relate, what the hot loops did, and which counters dominated.
type Report struct {
	// WallSeconds is the caller-measured end-to-end host wall time.
	WallSeconds float64 `json:"wall_seconds"`
	// StageWallSeconds sums the per-stage wall times (the attribution
	// coverage: close to WallSeconds when the stages account for the run).
	StageWallSeconds float64 `json:"stage_wall_seconds"`
	// DeviceSeconds is the simulated device time (accel.simulated_seconds).
	DeviceSeconds float64 `json:"device_seconds"`
	// WallPerDeviceSecond is the simulator slowdown: host seconds burned per
	// simulated device second (the ratio the 10x fast-path work must cut).
	WallPerDeviceSecond float64 `json:"wall_per_device_second"`
	// TraceEvents counts simulated DRAM events; EventsPerSecond is the
	// host-side simulation rate.
	TraceEvents     float64 `json:"trace_events"`
	EventsPerSecond float64 `json:"events_per_second"`
	// VictimRuns / VictimRunSeconds / VictimRunMaxSeconds summarize the
	// victim-query cost histogram.
	VictimRuns          uint64  `json:"victim_runs"`
	VictimRunSeconds    float64 `json:"victim_run_seconds"`
	VictimRunMaxSeconds float64 `json:"victim_run_max_seconds"`
	// SymExprs / SymHitRate snapshot the symbolic interner after the last
	// solve (0 when no solve ran).
	SymExprs   float64 `json:"sym_exprs"`
	SymHitRate float64 `json:"sym_hit_rate"`
	// Stages is the per-stage bill, descending by wall time.
	Stages []StageCost `json:"stages"`
	// TopCounters is the N largest counter series, descending by value.
	TopCounters []CounterCost `json:"top_counters"`
}

// seriesName splits a snapshot key of the form name{label} into its parts.
func seriesName(key string) (name, label string) {
	if i := strings.IndexByte(key, '{'); i >= 0 && strings.HasSuffix(key, "}") {
		return key[:i], key[i+1 : len(key)-1]
	}
	return key, ""
}

// labelValue extracts v from a "k=v" label whose key matches k.
func labelValue(label, k string) (string, bool) {
	for _, part := range strings.Split(label, ",") {
		if key, v, ok := strings.Cut(part, "="); ok && key == k {
			return v, true
		}
	}
	return "", false
}

// BuildReport assembles the attributed cost report from a metrics snapshot
// and the caller's end-to-end wall measurement. topN bounds the counter
// list (<=0 selects 10). The snapshot is the one obs.Collector.Metrics()
// returns; every derived quantity degrades to zero when its series is
// absent, so the report works on partially instrumented runs.
func BuildReport(snap obs.MetricsSnapshot, wallSeconds float64, topN int) *Report {
	if topN <= 0 {
		topN = 10
	}
	r := &Report{WallSeconds: wallSeconds}

	// Per-stage bill: wall from the stage.seconds histograms, resources from
	// the prof.stage.* counters.
	byStage := map[string]*StageCost{}
	stageOf := func(label string) *StageCost {
		v, ok := labelValue(label, "stage")
		if !ok {
			return nil
		}
		sc := byStage[v]
		if sc == nil {
			sc = &StageCost{Stage: v}
			byStage[v] = sc
		}
		return sc
	}
	for key, h := range snap.Histograms {
		name, label := seriesName(key)
		switch name {
		case "stage.seconds":
			if sc := stageOf(label); sc != nil {
				sc.WallSeconds += h.Sum
				sc.Spans += h.Count
			}
		case "victim.run_seconds":
			r.VictimRuns += h.Count
			r.VictimRunSeconds += h.Sum
			if h.Max > r.VictimRunMaxSeconds {
				r.VictimRunMaxSeconds = h.Max
			}
		}
	}
	for key, v := range snap.Counters {
		name, label := seriesName(key)
		switch name {
		case "prof.stage.alloc_bytes":
			if sc := stageOf(label); sc != nil {
				sc.AllocBytes += v
			}
		case "prof.stage.gc_cycles":
			if sc := stageOf(label); sc != nil {
				sc.GCCycles += v
			}
		case "prof.stage.gc_cpu_seconds":
			if sc := stageOf(label); sc != nil {
				sc.GCCPUSeconds += v
			}
		case "accel.simulated_seconds":
			r.DeviceSeconds += v
		case "accel.trace_events":
			r.TraceEvents += v
		}
	}
	for _, sc := range byStage {
		r.StageWallSeconds += sc.WallSeconds
		r.Stages = append(r.Stages, *sc)
	}
	sort.Slice(r.Stages, func(i, j int) bool {
		if r.Stages[i].WallSeconds != r.Stages[j].WallSeconds {
			return r.Stages[i].WallSeconds > r.Stages[j].WallSeconds
		}
		return r.Stages[i].Stage < r.Stages[j].Stage
	})
	if r.DeviceSeconds > 0 {
		r.WallPerDeviceSecond = r.WallSeconds / r.DeviceSeconds
	}
	if r.WallSeconds > 0 {
		r.EventsPerSecond = r.TraceEvents / r.WallSeconds
	}

	// Interner snapshot: the gauges are labelled per solve schedule step
	// (trials=N); report the largest, which is the full-trial solve.
	for key, v := range snap.Gauges {
		name, _ := seriesName(key)
		switch name {
		case "sym.interned_exprs":
			if v > r.SymExprs {
				r.SymExprs = v
			}
		case "sym.intern_hit_rate":
			if v > r.SymHitRate {
				r.SymHitRate = v
			}
		}
	}

	// Top-N counters by value.
	counters := make([]CounterCost, 0, len(snap.Counters))
	for key, v := range snap.Counters {
		counters = append(counters, CounterCost{Series: key, Value: v})
	}
	sort.Slice(counters, func(i, j int) bool {
		if counters[i].Value != counters[j].Value {
			return counters[i].Value > counters[j].Value
		}
		return counters[i].Series < counters[j].Series
	})
	if len(counters) > topN {
		counters = counters[:topN]
	}
	r.TopCounters = counters
	return r
}

// Text renders the report as a fixed-width table for humans and CI
// artifacts. Output order is deterministic.
func (r *Report) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "attributed cost report: %.2fs wall", r.WallSeconds)
	if r.WallSeconds > 0 {
		fmt.Fprintf(&sb, " (stages cover %.1f%%)", 100*r.StageWallSeconds/r.WallSeconds)
	}
	sb.WriteByte('\n')
	if r.DeviceSeconds > 0 {
		fmt.Fprintf(&sb, "simulator: %.4fs device time, %.0fx wall/device, %.0f trace events (%.0f events/s)\n",
			r.DeviceSeconds, r.WallPerDeviceSecond, r.TraceEvents, r.EventsPerSecond)
	}
	if r.VictimRuns > 0 {
		fmt.Fprintf(&sb, "victim queries: %d runs, %.2fs total (avg %.2fms, max %.2fms)\n",
			r.VictimRuns, r.VictimRunSeconds,
			1e3*r.VictimRunSeconds/float64(r.VictimRuns), 1e3*r.VictimRunMaxSeconds)
	}
	if r.SymExprs > 0 {
		fmt.Fprintf(&sb, "sym interner: %.0f exprs, %.1f%% intern hit rate\n", r.SymExprs, 100*r.SymHitRate)
	}
	if len(r.Stages) > 0 {
		fmt.Fprintf(&sb, "%-12s %10s %7s %12s %9s %9s\n",
			"stage", "wall (s)", "% wall", "alloc (MB)", "gc cycles", "gc cpu(s)")
		for _, s := range r.Stages {
			pct := 0.0
			if r.WallSeconds > 0 {
				pct = 100 * s.WallSeconds / r.WallSeconds
			}
			fmt.Fprintf(&sb, "%-12s %10.3f %6.1f%% %12.1f %9.0f %9.3f\n",
				s.Stage, s.WallSeconds, pct, s.AllocBytes/(1<<20), s.GCCycles, s.GCCPUSeconds)
		}
	}
	if len(r.TopCounters) > 0 {
		fmt.Fprintf(&sb, "top counters:\n")
		for _, c := range r.TopCounters {
			fmt.Fprintf(&sb, "  %-48s %16.6g\n", c.Series, c.Value)
		}
	}
	return sb.String()
}
