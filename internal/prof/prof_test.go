package prof

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"

	"github.com/huffduff/huffduff/internal/obs"
)

func TestStageWithoutRecorderIsNoop(t *testing.T) {
	ctx := context.Background()
	sctx, end := Stage(ctx, "probe")
	if sctx != ctx {
		t.Fatal("unobserved Stage should return the caller's context unchanged")
	}
	end() // must not panic
	if v, ok := pprof.Label(sctx, "stage"); ok {
		t.Fatalf("unobserved Stage set a pprof label: %q", v)
	}
}

func TestStageEmitsAttributedMetrics(t *testing.T) {
	col := obs.NewCollector()
	ctx := obs.WithRecorder(context.Background(), col)

	sctx, end := Stage(ctx, "solve")
	if v, ok := pprof.Label(sctx, "stage"); !ok || v != "solve" {
		t.Fatalf("stage label = %q, %v; want solve", v, ok)
	}
	// Allocate enough that the alloc counter must move even if the runtime
	// batches per-P allocation accounting.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 64<<10))
	}
	runtime.KeepAlive(sink)
	end()

	snap := col.Metrics()
	h, ok := snap.Histograms["stage.seconds{stage=solve}"]
	if !ok || h.Count != 1 || h.Sum <= 0 {
		t.Fatalf("stage.seconds missing or empty: %+v (have %v)", h, keys(snap.Histograms))
	}
	if alloc := snap.Counters["prof.stage.alloc_bytes{stage=solve}"]; alloc < 64*(64<<10) {
		t.Errorf("alloc_bytes = %v, want >= %v", alloc, 64*(64<<10))
	}
	for _, c := range []string{"prof.stage.gc_cycles{stage=solve}", "prof.stage.gc_cpu_seconds{stage=solve}"} {
		if _, ok := snap.Counters[c]; !ok {
			t.Errorf("counter %s not recorded", c)
		}
	}
}

func TestStageRestoresCallerLabels(t *testing.T) {
	col := obs.NewCollector()
	ctx := obs.WithRecorder(context.Background(), col)
	outer := pprof.WithLabels(ctx, pprof.Labels("stage", "outer"))
	pprof.SetGoroutineLabels(outer)
	defer pprof.SetGoroutineLabels(context.Background())

	_, end := Stage(outer, "inner")
	end()

	// After the inner stage closes, a fresh child of `outer` still sees the
	// outer label (the goroutine label set was restored from outer).
	got := map[string]string{}
	pprof.ForLabels(outer, func(k, v string) bool {
		got[k] = v
		return true
	})
	if got["stage"] != "outer" {
		t.Fatalf("outer ctx labels corrupted: %v", got)
	}
}

func TestNestedStagesMergeLabels(t *testing.T) {
	col := obs.NewCollector()
	ctx := obs.WithRecorder(context.Background(), col)
	sctx, endOuter := Stage(ctx, "probe")
	lctx := pprof.WithLabels(sctx, pprof.Labels("layer", "conv1"))
	if v, _ := pprof.Label(lctx, "stage"); v != "probe" {
		t.Fatalf("stage label lost under layer label: %q", v)
	}
	if v, _ := pprof.Label(lctx, "layer"); v != "conv1" {
		t.Fatalf("layer label missing: %q", v)
	}
	endOuter()
}

func TestRuntimeSamplerGauges(t *testing.T) {
	col := obs.NewCollector()
	s := NewRuntimeSampler()
	s.Sample(col)
	snap := col.Metrics()
	for _, g := range []string{
		"runtime.goroutines",
		"runtime.heap_alloc_bytes",
		"runtime.total_alloc_bytes",
		"runtime.gc_cycles",
	} {
		if snap.Gauges[g] <= 0 {
			t.Errorf("%s = %v, want > 0", g, snap.Gauges[g])
		}
	}
	s.Sample(nil) // nil recorder must be a no-op, not a panic
}

func TestRuntimeSamplerPausesDoNotDoubleCount(t *testing.T) {
	col := obs.NewCollector()
	s := NewRuntimeSampler()
	if s.pauseName == "" {
		t.Skip("runtime exposes no GC pause histogram")
	}
	runtime.GC()
	s.Sample(col)
	first := col.Metrics().Histograms["runtime.gc_pause_seconds"]
	// No GC between scrapes: the second sample must add zero observations.
	s.Sample(col)
	second := col.Metrics().Histograms["runtime.gc_pause_seconds"]
	if second.Count != first.Count {
		t.Fatalf("pause observations grew without a GC: %d -> %d", first.Count, second.Count)
	}
	runtime.GC()
	s.Sample(col)
	third := col.Metrics().Histograms["runtime.gc_pause_seconds"]
	if third.Count <= second.Count {
		t.Fatalf("GC cycle produced no pause observations: %d -> %d", second.Count, third.Count)
	}
}

func TestBuildReportAttributesStages(t *testing.T) {
	col := obs.NewCollector()
	col.Observe("stage.seconds", "stage=probe", 3.0)
	col.Observe("stage.seconds", "stage=solve", 1.0)
	col.Observe("victim.run_seconds", "", 0.5)
	col.Observe("victim.run_seconds", "", 0.7)
	col.Count("prof.stage.alloc_bytes", "stage=probe", 1<<20)
	col.Count("accel.simulated_seconds", "", 0.02)
	col.Count("accel.trace_events", "op=read", 600)
	col.Count("accel.trace_events", "op=write", 400)
	col.Gauge("sym.interned_exprs", "trials=2", 100)
	col.Gauge("sym.interned_exprs", "trials=6", 5000)

	r := BuildReport(col.Metrics(), 5.0, 3)
	if r.StageWallSeconds != 4.0 {
		t.Errorf("StageWallSeconds = %v, want 4", r.StageWallSeconds)
	}
	if len(r.Stages) != 2 || r.Stages[0].Stage != "probe" || r.Stages[1].Stage != "solve" {
		t.Fatalf("stages not sorted by wall time: %+v", r.Stages)
	}
	if r.Stages[0].AllocBytes != 1<<20 {
		t.Errorf("probe alloc = %v", r.Stages[0].AllocBytes)
	}
	if r.TraceEvents != 1000 || r.EventsPerSecond != 200 {
		t.Errorf("trace events %v at %v/s, want 1000 at 200", r.TraceEvents, r.EventsPerSecond)
	}
	if r.WallPerDeviceSecond != 5.0/0.02 {
		t.Errorf("wall/device = %v", r.WallPerDeviceSecond)
	}
	if r.VictimRuns != 2 || r.VictimRunSeconds != 1.2 || r.VictimRunMaxSeconds != 0.7 {
		t.Errorf("victim summary: %d runs %v s max %v", r.VictimRuns, r.VictimRunSeconds, r.VictimRunMaxSeconds)
	}
	if r.SymExprs != 5000 {
		t.Errorf("SymExprs = %v, want the largest solve step (5000)", r.SymExprs)
	}
	if len(r.TopCounters) != 3 {
		t.Errorf("topN not applied: %d counters", len(r.TopCounters))
	}

	// Rendering is deterministic and mentions every stage.
	a, b := r.Text(), r.Text()
	if a != b {
		t.Error("Text() not deterministic")
	}
	for _, want := range []string{"probe", "solve", "victim queries", "sym interner"} {
		if !strings.Contains(a, want) {
			t.Errorf("report text missing %q:\n%s", want, a)
		}
	}
}

func TestBuildReportEmptySnapshot(t *testing.T) {
	r := BuildReport(obs.NewCollector().Metrics(), 0, 0)
	if len(r.Stages) != 0 || r.WallSeconds != 0 {
		t.Fatalf("empty snapshot produced %+v", r)
	}
	if r.Text() == "" {
		t.Fatal("even an empty report renders a header")
	}
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
