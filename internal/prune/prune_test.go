package prune

import (
	"math"
	"math/rand"
	"testing"

	"github.com/huffduff/huffduff/internal/dataset"
	"github.com/huffduff/huffduff/internal/models"
	"github.com/huffduff/huffduff/internal/nn"
	"github.com/huffduff/huffduff/internal/tensor"
)

func makeParam(name string, vals []float64, decay bool) *nn.Param {
	return &nn.Param{
		Name:  name,
		W:     tensor.FromSlice(append([]float64(nil), vals...), len(vals)),
		Grad:  tensor.New(len(vals)),
		Decay: decay,
	}
}

func TestGlobalMagnitudeKeepsLargest(t *testing.T) {
	p1 := makeParam("a", []float64{0.1, -5, 0.2, 4}, true)
	p2 := makeParam("b", []float64{3, -0.05, 0.3, -2}, true)
	GlobalMagnitude([]*nn.Param{p1, p2}, 0.5)
	// 8 weights, keep 4: the largest magnitudes are 5, 4, 3, 2.
	wantAlive := map[string][]float64{
		"a": {0, -5, 0, 4},
		"b": {3, 0, 0, -2},
	}
	for _, p := range []*nn.Param{p1, p2} {
		for i, v := range p.W.Data {
			if v != wantAlive[p.Name][i] {
				t.Fatalf("%s after prune = %v", p.Name, p.W.Data)
			}
		}
	}
}

func TestGlobalMagnitudeSkipsNonDecayParams(t *testing.T) {
	w := makeParam("w", []float64{0.001, 0.002}, true)
	bn := makeParam("bn", []float64{0.0001, 0.0001}, false)
	GlobalMagnitude([]*nn.Param{w, bn}, 0.5)
	if bn.Mask != nil {
		t.Fatal("non-decay param was masked")
	}
	if bn.W.Data[0] == 0 {
		t.Fatal("non-decay param was pruned")
	}
}

func TestGlobalMagnitudeMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := makeParam("w", make([]float64, 1000), true)
	p.W.Randn(rng, 1)
	GlobalMagnitude([]*nn.Param{p}, 0.5)
	s1 := OverallSparsity([]*nn.Param{p})
	// Pruning again to a smaller keep must only remove more.
	GlobalMagnitude([]*nn.Param{p}, 0.25)
	s2 := OverallSparsity([]*nn.Param{p})
	if s2 <= s1 {
		t.Fatalf("sparsity did not increase: %g -> %g", s1, s2)
	}
	if math.Abs(s2-0.75) > 0.01 {
		t.Fatalf("sparsity = %g, want ~0.75", s2)
	}
}

func TestGlobalMagnitudeBadKeepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GlobalMagnitude(nil, 0)
}

func TestLayerwiseMagnitude(t *testing.T) {
	p1 := makeParam("a", []float64{1, 2, 3, 4}, true)
	p2 := makeParam("b", []float64{100, 200, 300, 400}, true)
	LayerwiseMagnitude([]*nn.Param{p1, p2}, 0.5)
	// Each layer keeps its own top half, so a keeps 3,4 even though b's
	// values dominate globally.
	if p1.W.Data[2] != 3 || p1.W.Data[3] != 4 || p1.W.Data[0] != 0 {
		t.Fatalf("a = %v", p1.W.Data)
	}
	if p2.W.Data[0] != 0 || p2.W.Data[3] != 400 {
		t.Fatalf("b = %v", p2.W.Data)
	}
}

func TestReportAndOverallSparsity(t *testing.T) {
	p := makeParam("w", []float64{1, 0, 2, 0}, true)
	stats := Report([]*nn.Param{p})
	if len(stats) != 1 || stats[0].Alive != 2 || stats[0].Total != 4 {
		t.Fatalf("stats = %+v", stats)
	}
	if got := OverallSparsity([]*nn.Param{p}); got != 0.5 {
		t.Fatalf("overall = %g", got)
	}
	if OverallSparsity(nil) != 0 {
		t.Fatal("empty params should give 0")
	}
}

func TestSnapshotRewindRespectsMask(t *testing.T) {
	p := makeParam("w", []float64{1, 2, 3, 4}, true)
	snap := Capture([]*nn.Param{p})
	p.W.Data[0] = 99
	GlobalMagnitude([]*nn.Param{p}, 0.5) // prunes 2 smallest of current values
	snap.Rewind([]*nn.Param{p})
	// Rewound to initial values but with mask applied.
	alive := p.W.NNZ(0)
	if alive != 2 {
		t.Fatalf("alive after rewind = %d", alive)
	}
	for i, v := range p.W.Data {
		if v != 0 && v != []float64{1, 2, 3, 4}[i] {
			t.Fatalf("rewind gave %v", p.W.Data)
		}
	}
}

func TestRewindUnknownParamPanics(t *testing.T) {
	p := makeParam("w", []float64{1}, true)
	snap := Capture([]*nn.Param{p})
	other := makeParam("x", []float64{1}, true)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	snap.Rewind([]*nn.Param{other})
}

func TestLotteryTicketReachesTargetSparsity(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	rng := rand.New(rand.NewSource(5))
	bind, err := models.SmallCNN().Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := dataset.Synthetic(7, 60, 10, 0.05)
	steps := 0
	trainFn := func(net *nn.Network, ds *dataset.Dataset) {
		steps++
		// Cheap surrogate training: a couple of tiny gradient steps is
		// enough to give magnitudes structure for this test.
		x, y := ds.Batch(0, 20)
		net.ZeroGrads()
		logits := net.Forward(x, true)
		_, grad := gradOf(logits, y)
		net.Backward(grad)
		for _, p := range net.Params() {
			p.W.AxpyInPlace(-0.01, p.Grad)
			p.ApplyMask()
		}
	}
	sp := LotteryTicket(bind.Net, tr, 3, 0.5, trainFn)
	if steps != 4 {
		t.Fatalf("train called %d times, want 4", steps)
	}
	if math.Abs(sp-0.875) > 0.02 {
		t.Fatalf("final sparsity %g, want ~0.875 (0.5^3 kept)", sp)
	}
}

// gradOf is a minimal cross-entropy gradient to avoid importing train
// (which would create an import cycle in tests).
func gradOf(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n, k := logits.Dim(0), logits.Dim(1)
	grad := tensor.New(n, k)
	loss := 0.0
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		max := row[0]
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		sum := 0.0
		exps := make([]float64, k)
		for j, v := range row {
			exps[j] = math.Exp(v - max)
			sum += exps[j]
		}
		for j := 0; j < k; j++ {
			p := exps[j] / sum
			g := p
			if j == labels[i] {
				g -= 1
				loss -= math.Log(math.Max(p, 1e-12))
			}
			grad.Data[i*k+j] = g / float64(n)
		}
	}
	return loss / float64(n), grad
}

func TestChannelMagnitude(t *testing.T) {
	p := &nn.Param{
		Name:  "conv.weight",
		W:     tensor.FromSlice([]float64{0.1, 0.1, 5, 5, 0.2, 0.2, 3, 3}, 4, 2),
		Grad:  tensor.New(8),
		Decay: true,
	}
	p.Grad = tensor.New(4, 2)
	ChannelMagnitude([]*nn.Param{p}, 0.5)
	// Channels 1 (norm 50) and 3 (norm 18) survive; 0 and 2 are zeroed.
	want := []float64{0, 0, 5, 5, 0, 0, 3, 3}
	for i, v := range want {
		if p.W.Data[i] != v {
			t.Fatalf("after channel prune: %v", p.W.Data)
		}
	}
	if got := AliveChannels(p); got != 2 {
		t.Fatalf("AliveChannels = %d", got)
	}
}

func TestChannelMagnitudeKeepsAtLeastOne(t *testing.T) {
	p := &nn.Param{Name: "w", W: tensor.FromSlice([]float64{1, 2, 3, 4}, 4, 1), Grad: tensor.New(4, 1), Decay: true}
	ChannelMagnitude([]*nn.Param{p}, 0.01)
	if AliveChannels(p) != 1 {
		t.Fatalf("alive = %d, want 1", AliveChannels(p))
	}
}

func TestChannelMagnitudeBadKeepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ChannelMagnitude(nil, 2)
}
