// Package prune implements unstructured weight pruning: one-shot global
// magnitude pruning and Lottery-Ticket-style iterative pruning with weight
// rewinding (Frankle & Carbin, the method the paper uses to produce its 10×
// compressed victims).
package prune

import (
	"fmt"
	"math"
	"sort"

	"github.com/huffduff/huffduff/internal/dataset"
	"github.com/huffduff/huffduff/internal/nn"
	"github.com/huffduff/huffduff/internal/tensor"
)

// prunable selects the parameters pruning applies to: conv and linear
// weights (the ones marked for weight decay), never biases or BN affine
// terms. This matches standard practice and the paper's setup.
func prunable(params []*nn.Param) []*nn.Param {
	var ps []*nn.Param
	for _, p := range params {
		if p.Decay {
			ps = append(ps, p)
		}
	}
	return ps
}

// GlobalMagnitude prunes the smallest-magnitude weights across all prunable
// parameters until the surviving (unmasked) fraction is keep. Existing masks
// are respected: already-pruned weights stay pruned. It installs/updates
// masks in place.
func GlobalMagnitude(params []*nn.Param, keep float64) {
	if keep <= 0 || keep > 1 {
		panic(fmt.Sprintf("prune: keep fraction %g out of (0,1]", keep))
	}
	ps := prunable(params)
	type entry struct {
		p   *nn.Param
		idx int
		mag float64
	}
	var alive []entry
	total := 0
	for _, p := range ps {
		total += p.W.Size()
		for i, v := range p.W.Data {
			if p.Mask != nil && p.Mask.Data[i] == 0 {
				continue
			}
			alive = append(alive, entry{p, i, math.Abs(v)})
		}
	}
	target := int(float64(total) * keep)
	if target >= len(alive) {
		ensureMasks(ps)
		return
	}
	sort.Slice(alive, func(i, j int) bool { return alive[i].mag < alive[j].mag })
	ensureMasks(ps)
	for _, e := range alive[:len(alive)-target] {
		e.p.Mask.Data[e.idx] = 0
	}
	for _, p := range ps {
		p.ApplyMask()
	}
}

// LayerwiseMagnitude prunes each prunable parameter independently to the
// given keep fraction. Used for pruning baseline surrogates to a target
// sparsity (Fig. 5/6 baselines B1–B4).
func LayerwiseMagnitude(params []*nn.Param, keep float64) {
	if keep <= 0 || keep > 1 {
		panic(fmt.Sprintf("prune: keep fraction %g out of (0,1]", keep))
	}
	ps := prunable(params)
	ensureMasks(ps)
	for _, p := range ps {
		var alive []int
		for i := range p.W.Data {
			if p.Mask.Data[i] != 0 {
				alive = append(alive, i)
			}
		}
		target := int(float64(p.W.Size()) * keep)
		if target >= len(alive) {
			continue
		}
		sort.Slice(alive, func(a, b int) bool {
			return math.Abs(p.W.Data[alive[a]]) < math.Abs(p.W.Data[alive[b]])
		})
		for _, idx := range alive[:len(alive)-target] {
			p.Mask.Data[idx] = 0
		}
		p.ApplyMask()
	}
}

func ensureMasks(ps []*nn.Param) {
	for _, p := range ps {
		if p.Mask == nil {
			p.Mask = tensor.New(p.W.Shape()...)
			p.Mask.Fill(1)
		}
	}
}

// Stats summarizes sparsity for one parameter.
type Stats struct {
	Name     string
	Total    int
	Alive    int
	Sparsity float64
}

// Report returns per-parameter sparsity stats for prunable parameters.
func Report(params []*nn.Param) []Stats {
	var out []Stats
	for _, p := range prunable(params) {
		alive := p.W.NNZ(0)
		out = append(out, Stats{
			Name:     p.Name,
			Total:    p.W.Size(),
			Alive:    alive,
			Sparsity: 1 - float64(alive)/float64(p.W.Size()),
		})
	}
	return out
}

// OverallSparsity returns the fraction of pruned weights across prunable
// parameters.
func OverallSparsity(params []*nn.Param) float64 {
	total, alive := 0, 0
	for _, p := range prunable(params) {
		total += p.W.Size()
		alive += p.W.NNZ(0)
	}
	if total == 0 {
		return 0
	}
	return 1 - float64(alive)/float64(total)
}

// Snapshot captures weights for lottery-ticket rewinding.
type Snapshot struct {
	values map[*nn.Param]*tensor.Tensor
}

// Capture saves a copy of every parameter's current weights.
func Capture(params []*nn.Param) *Snapshot {
	s := &Snapshot{values: make(map[*nn.Param]*tensor.Tensor)}
	for _, p := range params {
		s.values[p] = p.W.Clone()
	}
	return s
}

// Rewind restores captured weights, then re-applies current masks (the
// lottery-ticket reset: initial weights, surviving structure).
func (s *Snapshot) Rewind(params []*nn.Param) {
	for _, p := range params {
		saved, ok := s.values[p]
		if !ok {
			panic(fmt.Sprintf("prune: parameter %s not in snapshot", p.Name))
		}
		copy(p.W.Data, saved.Data)
		p.ApplyMask()
	}
}

// TrainFunc trains the network in place (injected so prune does not depend
// on a specific training loop).
type TrainFunc func(net *nn.Network, ds *dataset.Dataset)

// LotteryTicket performs iterative magnitude pruning with weight rewinding:
// rounds of (train → prune keepPerRound of surviving weights → rewind to
// initial weights), ending with a final training run. After r rounds overall
// keep = keepPerRound^r. Returns the final overall sparsity.
func LotteryTicket(net *nn.Network, ds *dataset.Dataset, rounds int, keepPerRound float64, trainFn TrainFunc) float64 {
	params := net.Params()
	initial := Capture(params)
	for round := 0; round < rounds; round++ {
		trainFn(net, ds)
		keep := math.Pow(keepPerRound, float64(round+1))
		GlobalMagnitude(params, keep)
		initial.Rewind(params)
	}
	trainFn(net, ds)
	return OverallSparsity(params)
}

// ChannelMagnitude performs structured pruning: for every prunable
// parameter it ranks output channels (rows of the first dimension) by L2
// norm and zeroes whole channels until the keep fraction survives, always
// retaining at least one channel. Structured sparsity is the easy case for
// the attacker (§2): a structured-sparse accelerator's transfer sizes do not
// depend on data content, so dense-era attacks apply unchanged.
func ChannelMagnitude(params []*nn.Param, keep float64) {
	if keep <= 0 || keep > 1 {
		panic(fmt.Sprintf("prune: keep fraction %g out of (0,1]", keep))
	}
	ps := prunable(params)
	ensureMasks(ps)
	for _, p := range ps {
		outC := p.W.Dim(0)
		per := p.W.Size() / outC
		norms := make([]float64, outC)
		for c := 0; c < outC; c++ {
			s := 0.0
			for _, v := range p.W.Data[c*per : (c+1)*per] {
				s += v * v
			}
			norms[c] = s
		}
		order := make([]int, outC)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return norms[order[a]] < norms[order[b]] })
		target := int(float64(outC) * keep)
		if target < 1 {
			target = 1
		}
		for _, c := range order[:outC-target] {
			for i := c * per; i < (c+1)*per; i++ {
				p.Mask.Data[i] = 0
			}
		}
		p.ApplyMask()
	}
}

// AliveChannels returns how many output channels of a parameter retain at
// least one nonzero weight.
func AliveChannels(p *nn.Param) int {
	outC := p.W.Dim(0)
	per := p.W.Size() / outC
	alive := 0
	for c := 0; c < outC; c++ {
		for _, v := range p.W.Data[c*per : (c+1)*per] {
			if v != 0 {
				alive++
				break
			}
		}
	}
	return alive
}
