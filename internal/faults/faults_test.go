package faults

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestSentinelClassification(t *testing.T) {
	err := fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", ErrTransient))
	if !errors.Is(err, ErrTransient) {
		t.Fatal("nested wrap lost the sentinel")
	}
	if errors.Is(err, ErrTraceCorrupt) {
		t.Fatal("cross-class match")
	}
}

func TestRetryable(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{fmt.Errorf("x: %w", ErrTransient), true},
		{fmt.Errorf("x: %w", ErrTraceCorrupt), true},
		{fmt.Errorf("x: %w", ErrTimingUnusable), false},
		{fmt.Errorf("x: %w", ErrBadConfig), false},
		{errors.New("plain"), false},
	} {
		if got := Retryable(tc.err); got != tc.want {
			t.Fatalf("Retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestClass(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want string
	}{
		{nil, ""},
		{fmt.Errorf("x: %w", ErrTransient), ClassTransient},
		{fmt.Errorf("x: %w", ErrTraceCorrupt), ClassTrace},
		{fmt.Errorf("x: %w", ErrTimingUnusable), ClassTiming},
		{fmt.Errorf("x: %w", ErrBadConfig), ClassConfig},
		{fmt.Errorf("x: %w", ErrWorkerPanic), ClassPanic},
		{fmt.Errorf("x: %w", ErrDeadline), ClassDeadline},
		// Context errors classify without the explicit sentinels, so a
		// deadline surfacing straight from context.Context still reads as
		// a deadline fault.
		{fmt.Errorf("x: %w", context.DeadlineExceeded), ClassDeadline},
		{fmt.Errorf("x: %w", context.Canceled), ClassCanceled},
		{errors.New("plain"), ClassUnknown},
		// Classification survives stage attribution.
		{Stage("probe", fmt.Errorf("x: %w", ErrWorkerPanic)), ClassPanic},
	} {
		if got := Class(tc.err); got != tc.want {
			t.Errorf("Class(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

func TestStageWrapping(t *testing.T) {
	if Stage("probe", nil) != nil {
		t.Fatal("nil must stay nil")
	}
	err := Stage("probe", fmt.Errorf("boom: %w", ErrTransient))
	if s, ok := StageOf(err); !ok || s != "probe" {
		t.Fatalf("StageOf = %q, %v", s, ok)
	}
	if !errors.Is(err, ErrTransient) {
		t.Fatal("stage wrap lost the sentinel")
	}
	// The innermost stage wins: attribution points at the failure site.
	outer := Stage("finalize", err)
	if s, _ := StageOf(outer); s != "probe" {
		t.Fatalf("re-wrap changed stage to %q", s)
	}
	if _, ok := StageOf(errors.New("plain")); ok {
		t.Fatal("plain error has no stage")
	}
}
