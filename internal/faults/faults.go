// Package faults defines the error taxonomy shared by the victim simulator,
// the trace analyzer, and the attack pipeline. Every failure an attack can
// hit falls into one of a few classes with very different handling:
//
//   - transient device failures are retried with bounded backoff;
//   - corrupt traces (dropped, duplicated, reordered, or truncated DRAM
//     events) are discarded and the inference is re-run;
//   - an unusable timing channel degrades the attack to the sparse-bound-only
//     solution space instead of failing it;
//   - configuration errors are permanent and surface immediately.
//
// Callers classify with errors.Is against the sentinels below and locate the
// failing pipeline stage with StageOf.
package faults

import (
	"context"
	"errors"
	"fmt"
)

// Sentinel error classes. Wrap with fmt.Errorf("...: %w", ...) so errors.Is
// classification survives arbitrary nesting.
var (
	// ErrTransient marks a temporary victim-device failure; the operation
	// may succeed if retried.
	ErrTransient = errors.New("transient device failure")
	// ErrTraceCorrupt marks a DRAM trace that violates structural
	// invariants (byte accounting, ordering, segmentation); the trace is
	// unusable but a fresh inference may produce a clean one.
	ErrTraceCorrupt = errors.New("trace corrupt")
	// ErrTimingUnusable marks encoding-interval measurements too
	// inconsistent to pin channel ratios; the attack can still degrade to
	// the sparse-bound-only solution space.
	ErrTimingUnusable = errors.New("timing channel unusable")
	// ErrBadConfig marks an invalid configuration; retrying cannot help.
	ErrBadConfig = errors.New("invalid configuration")
	// ErrWorkerPanic marks a campaign worker that panicked mid-attack and
	// was recovered by the daemon's supervisor; the campaign is retryable
	// under the daemon's per-campaign retry policy.
	ErrWorkerPanic = errors.New("worker panic")
	// ErrDeadline marks a campaign that exceeded its per-job deadline (a
	// stalled device run or a pathologically slow solve); a retry gets a
	// fresh deadline.
	ErrDeadline = errors.New("job deadline exceeded")
	// ErrSymBudget marks a solve aborted by the symbolic interner's growth
	// watchdog (expression/byte budget). The attack degrades to a partial
	// solution space; retrying with the same budget reproduces the abort,
	// so the class is not retryable.
	ErrSymBudget = errors.New("symbolic expression budget exceeded")
)

// Fault classes as short metric-label-safe strings, returned by Class.
const (
	ClassTransient = "transient"
	ClassTrace     = "trace"
	ClassTiming    = "timing"
	ClassConfig    = "config"
	ClassPanic     = "panic"
	ClassDeadline  = "deadline"
	ClassCanceled  = "canceled"
	ClassBudget    = "budget"
	ClassUnknown   = "unknown"
)

// Class maps an error to its fault class, for metric labels, journal
// records, and daemon retry decisions. Context deadline/cancel errors
// classify the same as the explicit sentinels, so a deadline that surfaced
// straight from context.Context still reads as ClassDeadline.
func Class(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrWorkerPanic):
		return ClassPanic
	case errors.Is(err, ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		return ClassDeadline
	case errors.Is(err, context.Canceled):
		return ClassCanceled
	case errors.Is(err, ErrBadConfig):
		return ClassConfig
	case errors.Is(err, ErrTransient):
		return ClassTransient
	case errors.Is(err, ErrTraceCorrupt):
		return ClassTrace
	case errors.Is(err, ErrTimingUnusable):
		return ClassTiming
	case errors.Is(err, ErrSymBudget):
		return ClassBudget
	default:
		return ClassUnknown
	}
}

// Retryable reports whether err is worth retrying: a transient device
// failure or a corrupt trace that a fresh inference may replace.
func Retryable(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrTraceCorrupt)
}

// StageError attributes an error to a named attack-pipeline stage.
type StageError struct {
	// Stage names the pipeline stage that failed (e.g. "calibration").
	Stage string
	Err   error
}

// Error implements the error interface.
func (e *StageError) Error() string {
	return fmt.Sprintf("huffduff: stage %s: %v", e.Stage, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *StageError) Unwrap() error { return e.Err }

// Stage wraps err with the pipeline stage it occurred in; a nil err stays
// nil. Re-wrapping keeps the innermost stage (closest to the failure).
func Stage(stage string, err error) error {
	if err == nil {
		return nil
	}
	var se *StageError
	if errors.As(err, &se) {
		return err
	}
	return &StageError{Stage: stage, Err: err}
}

// StageOf returns the pipeline stage an error was attributed to, if any.
func StageOf(err error) (string, bool) {
	var se *StageError
	if errors.As(err, &se) {
		return se.Stage, true
	}
	return "", false
}
