// Package faults defines the error taxonomy shared by the victim simulator,
// the trace analyzer, and the attack pipeline. Every failure an attack can
// hit falls into one of a few classes with very different handling:
//
//   - transient device failures are retried with bounded backoff;
//   - corrupt traces (dropped, duplicated, reordered, or truncated DRAM
//     events) are discarded and the inference is re-run;
//   - an unusable timing channel degrades the attack to the sparse-bound-only
//     solution space instead of failing it;
//   - configuration errors are permanent and surface immediately.
//
// Callers classify with errors.Is against the sentinels below and locate the
// failing pipeline stage with StageOf.
package faults

import (
	"errors"
	"fmt"
)

// Sentinel error classes. Wrap with fmt.Errorf("...: %w", ...) so errors.Is
// classification survives arbitrary nesting.
var (
	// ErrTransient marks a temporary victim-device failure; the operation
	// may succeed if retried.
	ErrTransient = errors.New("transient device failure")
	// ErrTraceCorrupt marks a DRAM trace that violates structural
	// invariants (byte accounting, ordering, segmentation); the trace is
	// unusable but a fresh inference may produce a clean one.
	ErrTraceCorrupt = errors.New("trace corrupt")
	// ErrTimingUnusable marks encoding-interval measurements too
	// inconsistent to pin channel ratios; the attack can still degrade to
	// the sparse-bound-only solution space.
	ErrTimingUnusable = errors.New("timing channel unusable")
	// ErrBadConfig marks an invalid configuration; retrying cannot help.
	ErrBadConfig = errors.New("invalid configuration")
)

// Retryable reports whether err is worth retrying: a transient device
// failure or a corrupt trace that a fresh inference may replace.
func Retryable(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrTraceCorrupt)
}

// StageError attributes an error to a named attack-pipeline stage.
type StageError struct {
	// Stage names the pipeline stage that failed (e.g. "calibration").
	Stage string
	Err   error
}

// Error implements the error interface.
func (e *StageError) Error() string {
	return fmt.Sprintf("huffduff: stage %s: %v", e.Stage, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *StageError) Unwrap() error { return e.Err }

// Stage wraps err with the pipeline stage it occurred in; a nil err stays
// nil. Re-wrapping keeps the innermost stage (closest to the failure).
func Stage(stage string, err error) error {
	if err == nil {
		return nil
	}
	var se *StageError
	if errors.As(err, &se) {
		return err
	}
	return &StageError{Stage: stage, Err: err}
}

// StageOf returns the pipeline stage an error was attributed to, if any.
func StageOf(err error) (string, bool) {
	var se *StageError
	if errors.As(err, &se) {
		return se.Stage, true
	}
	return "", false
}
