package train

import (
	"math"
	"math/rand"
	"testing"

	"github.com/huffduff/huffduff/internal/dataset"
	"github.com/huffduff/huffduff/internal/models"
	"github.com/huffduff/huffduff/internal/nn"
	"github.com/huffduff/huffduff/internal/tensor"
)

func TestSoftmaxRowsSumToOne(t *testing.T) {
	logits := tensor.FromSlice([]float64{1, 2, 3, -1000, 0, 1000}, 2, 3)
	p := Softmax(logits)
	for i := 0; i < 2; i++ {
		s := 0.0
		for j := 0; j < 3; j++ {
			v := p.At(i, j)
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("bad prob %g", v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d sums to %g", i, s)
		}
	}
	// Extreme logits must not overflow.
	if p.At(1, 2) < 0.999 {
		t.Fatalf("softmax(1000) = %g", p.At(1, 2))
	}
}

func TestCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln(4).
	logits := tensor.New(1, 4)
	loss, grad := CrossEntropy(logits, []int{2})
	if math.Abs(loss-math.Log(4)) > 1e-9 {
		t.Fatalf("loss = %g, want ln4", loss)
	}
	// grad: p - onehot = 0.25 everywhere except 0.25-1 at label.
	if math.Abs(grad.At(0, 2)-(-0.75)) > 1e-9 || math.Abs(grad.At(0, 0)-0.25) > 1e-9 {
		t.Fatalf("grad = %v", grad.Data)
	}
}

func TestCrossEntropyGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	logits := tensor.New(3, 5)
	logits.Randn(rng, 1)
	labels := []int{1, 4, 0}
	_, grad := CrossEntropy(logits, labels)
	const eps = 1e-6
	for i := 0; i < logits.Size(); i += 2 {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		up, _ := CrossEntropy(logits, labels)
		logits.Data[i] = orig - eps
		down, _ := CrossEntropy(logits, labels)
		logits.Data[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-grad.Data[i]) > 1e-5 {
			t.Fatalf("grad[%d]: %g vs numeric %g", i, grad.Data[i], num)
		}
	}
}

func TestCrossEntropyLabelMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CrossEntropy(tensor.New(2, 3), []int{0})
}

func TestSGDMomentumAndDecay(t *testing.T) {
	p := &nn.Param{Name: "w", W: tensor.FromSlice([]float64{1}, 1), Grad: tensor.FromSlice([]float64{0.5}, 1), Decay: true}
	opt := NewSGD(0.1, 0.9, 0.01)
	opt.Step([]*nn.Param{p})
	// g = 0.5 + 0.01*1 = 0.51; v = 0.51; w = 1 - 0.051 = 0.949
	if math.Abs(p.W.Data[0]-0.949) > 1e-12 {
		t.Fatalf("w = %g", p.W.Data[0])
	}
	p.Grad.Data[0] = 0
	opt.Step([]*nn.Param{p})
	// g = 0.01*0.949 = 0.00949; v = 0.9*0.51+0.00949 = 0.46849
	want := 0.949 - 0.1*(0.9*0.51+0.00949)
	if math.Abs(p.W.Data[0]-want) > 1e-12 {
		t.Fatalf("w after momentum step = %g, want %g", p.W.Data[0], want)
	}
}

func TestSGDRespectsMask(t *testing.T) {
	p := &nn.Param{Name: "w", W: tensor.FromSlice([]float64{0, 2}, 2), Grad: tensor.FromSlice([]float64{1, 1}, 2), Decay: true}
	p.Mask = tensor.FromSlice([]float64{0, 1}, 2)
	opt := NewSGD(0.1, 0, 0)
	opt.Step([]*nn.Param{p})
	if p.W.Data[0] != 0 {
		t.Fatalf("masked weight moved to %g", p.W.Data[0])
	}
	if p.W.Data[1] != 1.9 {
		t.Fatalf("unmasked weight = %g", p.W.Data[1])
	}
}

func TestFitLearnsSyntheticTask(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	rng := rand.New(rand.NewSource(10))
	bind, err := models.SmallCNN().Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	tr, te := dataset.Synthetic(123, 300, 100, 0.05)
	cfg := DefaultConfig()
	cfg.Epochs = 3
	before := Accuracy(bind.Net, te, 50)
	loss := Fit(bind.Net, tr, cfg)
	after := Accuracy(bind.Net, te, 50)
	if math.IsNaN(loss) {
		t.Fatal("loss is NaN")
	}
	// The synthetic task is deliberately hard for small models (classes
	// share a base pattern); clearing 2.5x chance in three epochs on 300
	// samples demonstrates the training loop works.
	if after < 0.25 {
		t.Fatalf("accuracy after training %.2f (before %.2f); model failed to learn", after, before)
	}
	if after <= before {
		t.Fatalf("training did not improve accuracy: %.2f -> %.2f", before, after)
	}
}
