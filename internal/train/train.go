// Package train provides the SGD training loop, loss functions, and
// evaluation used to train victim models and retrain the attacker's
// reverse-engineered candidates (paper §8.3).
package train

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/huffduff/huffduff/internal/dataset"
	"github.com/huffduff/huffduff/internal/nn"
	"github.com/huffduff/huffduff/internal/tensor"
)

// SGD is stochastic gradient descent with momentum and decoupled weight
// decay. It respects parameter pruning masks: masked entries never move.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*nn.Param]*tensor.Tensor
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*nn.Param]*tensor.Tensor)}
}

// Step applies one update to every parameter from its accumulated gradient.
func (s *SGD) Step(params []*nn.Param) {
	for _, p := range params {
		v := s.velocity[p]
		if v == nil {
			v = tensor.New(p.W.Shape()...)
			s.velocity[p] = v
		}
		for i := range p.W.Data {
			g := p.Grad.Data[i]
			if p.Decay {
				g += s.WeightDecay * p.W.Data[i]
			}
			v.Data[i] = s.Momentum*v.Data[i] + g
			p.W.Data[i] -= s.LR * v.Data[i]
		}
		p.ApplyMask()
	}
}

// Softmax writes row-wise softmax of logits [N, K] into a new tensor.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	n, k := logits.Dim(0), logits.Dim(1)
	out := tensor.New(n, k)
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		sum := 0.0
		dst := out.Data[i*k : (i+1)*k]
		for j, v := range row {
			e := math.Exp(v - max)
			dst[j] = e
			sum += e
		}
		for j := range dst {
			dst[j] /= sum
		}
	}
	return out
}

// CrossEntropy returns the mean cross-entropy loss over the batch and the
// gradient w.r.t. the logits (already divided by batch size).
func CrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("train: %d labels for batch of %d", len(labels), n))
	}
	probs := Softmax(logits)
	grad := tensor.New(n, k)
	loss := 0.0
	for i := 0; i < n; i++ {
		p := probs.Data[i*k+labels[i]]
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		for j := 0; j < k; j++ {
			g := probs.Data[i*k+j]
			if j == labels[i] {
				g -= 1
			}
			grad.Data[i*k+j] = g / float64(n)
		}
	}
	return loss / float64(n), grad
}

// Config controls a training run.
type Config struct {
	Epochs      int
	BatchSize   int
	LR          float64
	Momentum    float64
	WeightDecay float64
	// LRDropEvery halves the learning rate every this many epochs (0 = never).
	LRDropEvery int
	// Silent suppresses per-epoch logging via Logf.
	Logf func(format string, args ...any)
	// Seed controls shuffling.
	Seed int64
}

// DefaultConfig returns a configuration suitable for the width-scaled models
// used in tests and benches.
func DefaultConfig() Config {
	return Config{Epochs: 4, BatchSize: 32, LR: 0.05, Momentum: 0.9, WeightDecay: 5e-4, LRDropEvery: 3, Seed: 1}
}

// Fit trains the network on ds and returns the final training loss.
func Fit(net *nn.Network, ds *dataset.Dataset, cfg Config) float64 {
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	params := net.Params()
	lastLoss := math.NaN()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.LRDropEvery > 0 && epoch > 0 && epoch%cfg.LRDropEvery == 0 {
			opt.LR /= 2
		}
		ds.Shuffle(rng)
		totalLoss, batches := 0.0, 0
		for lo := 0; lo+cfg.BatchSize <= ds.Len(); lo += cfg.BatchSize {
			x, y := ds.Batch(lo, lo+cfg.BatchSize)
			net.ZeroGrads()
			logits := net.Forward(x, true)
			loss, grad := CrossEntropy(logits, y)
			net.Backward(grad)
			opt.Step(params)
			totalLoss += loss
			batches++
		}
		lastLoss = totalLoss / float64(batches)
		if cfg.Logf != nil {
			cfg.Logf("epoch %d/%d: loss %.4f (lr %.4f)", epoch+1, cfg.Epochs, lastLoss, opt.LR)
		}
	}
	return lastLoss
}

// Accuracy evaluates top-1 accuracy on ds in eval mode.
func Accuracy(net *nn.Network, ds *dataset.Dataset, batchSize int) float64 {
	if batchSize < 1 {
		batchSize = 64
	}
	correct := 0
	for lo := 0; lo < ds.Len(); lo += batchSize {
		hi := lo + batchSize
		if hi > ds.Len() {
			hi = ds.Len()
		}
		x, y := ds.Batch(lo, hi)
		logits := net.Forward(x, false)
		k := logits.Dim(1)
		for i := range y {
			row := logits.Data[i*k : (i+1)*k]
			best, bi := row[0], 0
			for j, v := range row {
				if v > best {
					best, bi = v, j
				}
			}
			if bi == y[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(ds.Len())
}
