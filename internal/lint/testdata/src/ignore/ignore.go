// Package ignore exercises the suppression directive machinery.
package ignore

import "math/rand"

// Suppressed is silenced by a well-formed directive on the line above.
func Suppressed() int {
	//lint:ignore globalrand exercising the preceding-comment form
	return rand.Intn(3)
}

// Trailing is silenced by a directive at the end of the line.
func Trailing() int {
	return rand.Intn(3) //lint:ignore globalrand exercising the trailing form
}

// WrongAnalyzer is NOT silenced: the directive names another analyzer.
func WrongAnalyzer() int {
	//lint:ignore hosttime names the wrong analyzer, so the finding stands
	return rand.Intn(3)
}

// MissingReason carries a malformed directive, itself a diagnostic.
func MissingReason() int {
	//lint:ignore globalrand
	return rand.Intn(3)
}
