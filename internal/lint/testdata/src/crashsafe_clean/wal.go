// Package store is the crashsafe clean twin: the same durability shapes
// done right — the analyzer must stay silent here.
package store

import "os"

// Config carries the test-only fsync bypass.
type Config struct {
	NoSync bool
}

// Log is the WAL-like appender with disciplined error paths.
type Log struct {
	f   *os.File
	off int64
	cfg Config
}

// Append seals the handle on a failed write before returning.
func (l *Log) Append(frame []byte) error {
	if _, err := l.f.Write(frame); err != nil {
		l.f.Close()
		return err
	}
	l.off += int64(len(frame))
	return nil
}

// Flush truncates back to the known-good offset when fsync fails.
func (l *Log) Flush() error {
	if err := l.f.Sync(); err != nil {
		l.f.Truncate(l.off)
		return err
	}
	return nil
}

// Publish syncs before renaming. The NoSync branch is pruned to its
// production value (false), so the bypass does not poison the path.
func (l *Log) Publish(dir string) error {
	f, err := os.Create(dir + "/staging")
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		f.Close()
		return err
	}
	if !l.cfg.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(dir+"/staging", dir+"/final")
}

// Scratch writes through an abandoned temp file: torn bytes are never
// renamed into place, so a bare error return is fine.
func Scratch(dir string, data []byte) error {
	f, err := os.OpenFile(dir+"/scratch.tmp", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}
