// Package telemetry is goroleak analyzer testdata: pumps nothing can stop.
package telemetry

// Metrics accumulates samples pushed by a background pump.
type Metrics struct {
	samples []float64
}

// StartPump spawns a goroutine that loops forever with no termination
// signal: nothing can stop it once started.
func (m *Metrics) StartPump() {
	go func() {
		for {
			m.samples = append(m.samples, 1.0)
		}
	}()
}

// drain loops over a counter with no shutdown path.
func drain(m *Metrics) {
	for i := 0; ; i++ {
		m.samples = append(m.samples, float64(i))
	}
}

// StartDrain spawns the named loop: the analyzer resolves the callee and
// finds no signal there either.
func StartDrain(m *Metrics) {
	go drain(m)
}
