// Package converge is lockguard analyzer testdata: mutex-discipline bugs.
package converge

import "sync"

// Ledger guards its state with mu.
type Ledger struct {
	mu sync.Mutex
	// count is guarded by mu.
	count int
	// seen is guarded by mu.
	seen map[string]bool
	hits int
}

// Add updates count without taking the lock.
func (l *Ledger) Add(n int) {
	l.count += n
}

// Get reads under the lock but leaks it on the early-return path.
func (l *Ledger) Get(key string) bool {
	l.mu.Lock()
	if !l.seen[key] {
		return false
	}
	v := l.seen[key]
	l.mu.Unlock()
	return v
}

// Reset stacks a second Lock (deadlock) and a second Unlock (panic).
func (l *Ledger) Reset() {
	l.mu.Lock()
	l.mu.Lock()
	l.count = 0
	l.mu.Unlock()
	l.mu.Unlock()
}

// Stats receives the struct by value: the copy forks the lock.
func Stats(l Ledger) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Touch updates the unannotated hits field under the lock.
func (l *Ledger) Touch() {
	l.mu.Lock()
	l.hits++
	l.mu.Unlock()
}

// TouchAgain also updates hits under the lock.
func (l *Ledger) TouchAgain() {
	l.mu.Lock()
	l.hits++
	l.count++
	l.mu.Unlock()
}

// TouchFast is the drift: the same write without the lock, the minority
// access the inference pass reports.
func (l *Ledger) TouchFast() {
	l.hits++
}
