// Package staleignore exercises the stale-suppression detector: a
// directive whose analyzer ran but found nothing to suppress is itself
// reported, so dead ignores cannot accumulate.
package staleignore

import "math/rand"

// Draw is genuinely noisy; its directive is used and stays silent.
func Draw() int {
	//lint:ignore globalrand exercising a live suppression
	return rand.Intn(6)
}

// Fixed no longer draws from the global source but kept its directive:
// the suppression is stale and reported.
func Fixed(rng *rand.Rand) int {
	//lint:ignore globalrand stale: the global draw was removed
	return rng.Intn(6)
}
