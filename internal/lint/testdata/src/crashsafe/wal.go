// Package store is crashsafe analyzer testdata: durability bugs, including
// the failed-fsync shape PR 9's review caught in the telemetry journal.
package store

import "os"

// Log is a WAL-like appender whose handle caches an offset.
type Log struct {
	f   *os.File
	off int64
}

// Append encodes the PR 9 bug shape: a failed Write returns with the
// handle still open and the cached offset about to drift from the bytes
// actually on disk.
func (l *Log) Append(frame []byte) error {
	if _, err := l.f.Write(frame); err != nil {
		return err
	}
	l.off += int64(len(frame))
	return nil
}

// Flush is the failed-fsync variant: the error path falls through with the
// handle appendable over torn bytes.
func (l *Log) Flush() error {
	err := l.f.Sync()
	if err != nil {
		return err
	}
	return nil
}

// Publish renames a written-but-unsynced file into place: Close flushes to
// the page cache, not the platter, so a crash can tear the final name.
func Publish(dir string) error {
	f, err := os.Create(dir + "/staging")
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(dir+"/staging", dir+"/final")
}

// Snapshot publishes an os.WriteFile target, which is never synced.
func Snapshot(dir string, data []byte) error {
	if err := os.WriteFile(dir+"/manifest.new", data, 0o644); err != nil {
		return err
	}
	return os.Rename(dir+"/manifest.new", dir+"/manifest")
}
