// Package numeric is floateq analyzer testdata, loaded under a
// numeric-core import path.
package numeric

// BadEqual compares floats exactly.
func BadEqual(a, b float64) bool {
	return a == b
}

// BadZero compares a float32 against a literal.
func BadZero(x float32) bool {
	return x != 0
}

// OKNaN uses the self-inequality NaN idiom.
func OKNaN(x float64) bool {
	return x != x
}

// OKInts compares integers.
func OKInts(a, b int) bool {
	return a == b
}

// OKTolerance is the expected pattern.
func OKTolerance(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// OKSuppressed documents a deliberate exact-sentinel comparison.
func OKSuppressed(w float64) bool {
	//lint:ignore floateq pruned weights are exact zeros by construction
	return w == 0
}
