// Package device is hosttime analyzer testdata, loaded under a
// simulated-device import path.
package device

import "time"

// Cycles is the cycle-model clock: the only legitimate notion of time here.
var Cycles int64

// BadNow samples the host clock.
func BadNow() time.Time {
	return time.Now()
}

// BadLatency measures host wall time for a device operation.
func BadLatency(start time.Time) time.Duration {
	return time.Since(start)
}

// BadStall blocks on the host clock.
func BadStall() {
	time.Sleep(time.Millisecond)
}

// BadChannel waits on a host-clock channel.
func BadChannel() <-chan time.Time {
	return time.After(time.Second)
}

// OKDuration does pure duration arithmetic; no clock is sampled.
func OKDuration(cycles int64, hz int64) time.Duration {
	return time.Duration(cycles) * time.Second / time.Duration(hz)
}

// OKSuppressed documents a tolerated exception.
func OKSuppressed() time.Time {
	//lint:ignore hosttime testdata exercises the suppression path
	return time.Now()
}
