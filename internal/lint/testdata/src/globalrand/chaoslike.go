// Package chaoslike is globalrand analyzer testdata.
package chaoslike

import "math/rand"

// BadDraw draws from the process-global source.
func BadDraw() int {
	return rand.Intn(10)
}

// BadFloat draws a float from the global source.
func BadFloat() float64 {
	return rand.Float64()
}

// BadShuffle permutes with the global source.
func BadShuffle(s []int) {
	rand.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}

// OKInjected threads an explicit seeded generator.
func OKInjected(rng *rand.Rand) int {
	return rng.Intn(10)
}

// OKConstruct builds a seeded generator; constructors are allowed.
func OKConstruct(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
