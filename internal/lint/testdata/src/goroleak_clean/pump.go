// Package telemetry is the goroleak clean twin: every spawned loop can
// observe a shutdown signal.
package telemetry

import (
	"context"
	"sync"
)

// Metrics drains a sample channel until shutdown.
type Metrics struct {
	samples chan float64
	quit    chan struct{}
	wg      sync.WaitGroup
}

// StartCtx spawns a loop that observes ctx.Done.
func (m *Metrics) StartCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case s := <-m.samples:
				_ = s
			}
		}
	}()
}

// StartQuit spawns a loop a closed quit channel unblocks.
func (m *Metrics) StartQuit() {
	go func() {
		for {
			select {
			case <-m.quit:
				return
			case s := <-m.samples:
				_ = s
			}
		}
	}()
}

// StartRange spawns a range-over-channel loop tracked by a WaitGroup: it
// ends when the channel closes, and the owner can await it.
func (m *Metrics) StartRange() {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for s := range m.samples {
			_ = s
		}
	}()
}

// FireOnce spawns a straight-line goroutine: it finishes on its own.
func (m *Metrics) FireOnce() {
	go func() {
		m.samples <- 1.0
	}()
}
