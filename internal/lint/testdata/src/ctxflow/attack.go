// Package huffduff is ctxflow analyzer testdata: severed cancellation.
package huffduff

import "context"

// Result is a placeholder attack result.
type Result struct{ Layers int }

// RunContext is the context-aware form of Run.
func RunContext(ctx context.Context, budget int) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Result{Layers: budget}, nil
}

// Run severs the chain with a fresh root context.
func Run(budget int) (*Result, error) {
	return RunContext(context.Background(), budget)
}

// Drive holds a ctx but calls the plain form, dropping cancellation.
func Drive(ctx context.Context, budget int) (*Result, error) {
	return Run(budget)
}

// Stash parks work under a fresh TODO context.
func Stash() error {
	_, err := RunContext(context.TODO(), 1)
	return err
}
