// Package export is maporder analyzer testdata.
package export

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/huffduff/huffduff/internal/converge"
)

// BadKeys leaks iteration order into a slice that is never sorted.
func BadKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// BadWrite serializes iteration order straight into a writer.
func BadWrite(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// BadBuilder streams iteration order into a strings.Builder.
func BadBuilder(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k)
	}
	return sb.String()
}

// OKSortedKeys collects then sorts before use.
func OKSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// OKReduction computes an order-independent aggregate.
func OKReduction(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// OKMapToMap builds another map; insertion order cannot leak.
func OKMapToMap(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v
	}
	return out
}

// BadLedgerAppend streams map iteration order into the convergence ledger,
// randomizing the snapshot JSONL between identical runs.
func BadLedgerAppend(led *converge.Ledger, m map[int]int) {
	for node, amb := range m {
		led.Append(converge.Snapshot{Stage: "solve", GeomAmbiguity: node + amb})
	}
}

// OKLedgerAppendSorted appends in sorted node order.
func OKLedgerAppendSorted(led *converge.Ledger, m map[int]int) {
	nodes := make([]int, 0, len(m))
	for n := range m {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		led.Append(converge.Snapshot{Stage: "solve", GeomAmbiguity: m[n]})
	}
}
