// Package export is maporder analyzer testdata.
package export

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/huffduff/huffduff/internal/converge"
)

// BadKeys leaks iteration order into a slice that is never sorted.
func BadKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// BadWrite serializes iteration order straight into a writer.
func BadWrite(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// BadBuilder streams iteration order into a strings.Builder.
func BadBuilder(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k)
	}
	return sb.String()
}

// OKSortedKeys collects then sorts before use.
func OKSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// OKReduction computes an order-independent aggregate.
func OKReduction(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// OKMapToMap builds another map; insertion order cannot leak.
func OKMapToMap(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v
	}
	return out
}

// BadLedgerAppend streams map iteration order into the convergence ledger,
// randomizing the snapshot JSONL between identical runs.
func BadLedgerAppend(led *converge.Ledger, m map[int]int) {
	for node, amb := range m {
		led.Append(converge.Snapshot{Stage: "solve", GeomAmbiguity: node + amb})
	}
}

// OKLedgerAppendSorted appends in sorted node order.
func OKLedgerAppendSorted(led *converge.Ledger, m map[int]int) {
	nodes := make([]int, 0, len(m))
	for n := range m {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		led.Append(converge.Snapshot{Stage: "solve", GeomAmbiguity: m[n]})
	}
}

// campaignRow stands in for a per-model aggregate row in the store's
// listing/aggregate path.
type campaignRow struct {
	Model string
	Count int
}

// BadAggregateListing mirrors the campaign-store aggregate read path gone
// wrong: per-model rows collected straight out of a map and returned as an
// HTTP-serialized listing, so response byte order varies between identical
// requests.
func BadAggregateListing(byModel map[string]int) []campaignRow {
	var rows []campaignRow
	for model, n := range byModel {
		rows = append(rows, campaignRow{Model: model, Count: n})
	}
	return rows
}

// OKAggregateListingSorted is the correct shape: collect, then sort by the
// model key before the rows reach any encoder.
func OKAggregateListingSorted(byModel map[string]int) []campaignRow {
	rows := make([]campaignRow, 0, len(byModel))
	for model, n := range byModel {
		rows = append(rows, campaignRow{Model: model, Count: n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Model < rows[j].Model })
	return rows
}
