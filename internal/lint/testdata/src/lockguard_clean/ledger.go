// Package converge is the lockguard clean twin: disciplined locking the
// analyzer must stay silent on.
package converge

import "sync"

// Ledger guards its state with mu.
type Ledger struct {
	mu sync.Mutex
	// count is guarded by mu.
	count int
	hits  int
}

// Add locks around the writes.
func (l *Ledger) Add(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.count += n
	l.hits++
}

// Snapshot reads with the lock held and an explicit unlock on every path.
func (l *Ledger) Snapshot() (int, int) {
	l.mu.Lock()
	c, h := l.count, l.hits
	l.mu.Unlock()
	return c, h
}

// resetLocked declares the caller-holds-lock contract by name.
func (l *Ledger) resetLocked() {
	l.count = 0
	l.hits = 0
}

// Clear takes the lock and delegates to the Locked helper.
func (l *Ledger) Clear() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.resetLocked()
}

// NewLedger touches fields of a value it just allocated: the value is not
// shared yet, so no lock is needed.
func NewLedger(seed int) *Ledger {
	l := &Ledger{}
	l.count = seed
	return l
}
