// Package pipeline is wrapcheck analyzer testdata, loaded under an
// attack-pipeline import path.
package pipeline

import (
	"errors"
	"fmt"
	"os"
	"strconv"

	"github.com/huffduff/huffduff/internal/faults"
)

// BadTailCall forwards a foreign error as a direct tail call, with no
// chance to add context.
func BadTailCall(path string) error {
	return os.Remove(path)
}

// OKTailLocal tail-calls a same-package error source.
func OKTailLocal(n int) error {
	return localCheck(n)
}

// BadForward returns a foreign error with no context.
func BadForward(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// BadReassigned forwards after an intermediate use.
func BadReassigned(s string) error {
	_, err := strconv.ParseFloat(s, 64)
	return err
}

// OKWrapped adds context with %w.
func OKWrapped(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("pipeline: parsing %q: %w", s, err)
	}
	return n, nil
}

// OKStaged classifies through the faults constructor.
func OKStaged(s string) error {
	_, err := strconv.Atoi(s)
	if err != nil {
		err = faults.Stage("parse", err)
		return err
	}
	return nil
}

// OKNew returns a locally created error.
func OKNew() error {
	err := errors.New("pipeline: invalid input")
	return err
}

// localCheck is a same-package error source.
func localCheck(n int) error {
	if n < 0 {
		return errors.New("pipeline: negative")
	}
	return nil
}

// OKLocal forwards a same-package error; context is already attributed.
func OKLocal(n int) error {
	err := localCheck(n)
	return err
}

// OKSuppressed documents a tolerated forward.
func OKSuppressed(s string) error {
	_, err := strconv.Atoi(s)
	//lint:ignore wrapcheck testdata exercises the suppression path
	return err
}
