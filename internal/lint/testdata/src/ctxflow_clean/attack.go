// Package huffduff is the ctxflow clean twin: cancellation threads through
// end to end, and the one deliberate root carries an explanatory directive.
package huffduff

import "context"

// Result is a placeholder attack result.
type Result struct{ Layers int }

// RunContext is the context-aware entry point.
func RunContext(ctx context.Context, budget int) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Result{Layers: budget}, nil
}

// Run is the compatibility wrapper, suppressed with an explanation.
func Run(budget int) (*Result, error) {
	//lint:ignore ctxflow compatibility wrapper: context-aware callers use RunContext
	return RunContext(context.Background(), budget)
}

// Drive threads its ctx into the Context-suffixed sibling.
func Drive(ctx context.Context, budget int) (*Result, error) {
	return RunContext(ctx, budget)
}
