package lint

// ctxflow enforces cancellation plumbing through the attack pipeline and
// the daemon internals. Two rules:
//
// Rule 1 — no fresh root contexts. context.Background() and context.TODO()
// inside the scoped packages sever the caller's cancellation chain: work
// started under them survives client disconnects and daemon shutdown. The
// daemon's own root (created once at construction) is the deliberate
// exception, suppressed with an explanatory directive.
//
// Rule 2 — thread the context you were given. A function that receives a
// context.Context and calls a module function F for which a context-aware
// sibling FContext(ctx, ...) exists must call the sibling: calling the
// plain form from a context-carrying function silently drops cancellation
// on the floor.

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow is the context-propagation analyzer.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "No context.Background()/TODO() inside the attack pipeline or " +
		"daemon internals, and functions holding a ctx must call the " +
		"Context-suffixed sibling of any module function that has one.",
	Paths: []string{"internal/huffduff", "internal/probe", "internal/telemetry"},
	Run:   runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if path, fn, ok := pkgCall(info, call); ok && path == "context" &&
				(fn == "Background" || fn == "TODO") {
				pass.Reportf(call.Pos(), "context.%s severs the caller's cancellation chain; "+
					"accept and thread a context.Context instead", fn)
			}
			return true
		})
	}
	eachFuncDecl(pass.Pkg.Files, func(fd *ast.FuncDecl) {
		if !hasCtxParam(info, fd) {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, ok := calleeObject(info, call).(*types.Func)
			if !ok || strings.HasSuffix(callee.Name(), "Context") {
				return true
			}
			if pass.Calls == nil || pass.Calls.Decls[callee] == nil {
				return true // only module functions have siblings worth enforcing
			}
			if sibling := contextSibling(callee); sibling != nil {
				pass.Reportf(call.Pos(), "this function holds a ctx but calls %s, which drops it; "+
					"call %s(ctx, ...) so cancellation propagates", callee.Name(), sibling.Name())
			}
			return true
		})
	})
}

// eachFuncDecl visits every function declaration with a body.
func eachFuncDecl(files []*ast.File, fn func(*ast.FuncDecl)) {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// hasCtxParam reports whether the function receives a context.Context.
func hasCtxParam(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, p := range fd.Type.Params.List {
		if tv, ok := info.Types[p.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// contextSibling finds a function named <callee>Context in the callee's
// package whose first parameter is a context.Context — the context-aware
// form the caller should be using.
func contextSibling(callee *types.Func) *types.Func {
	pkg := callee.Pkg()
	if pkg == nil {
		return nil
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return nil // methods resolve their sibling through the receiver type; keep to functions
	}
	obj := pkg.Scope().Lookup(callee.Name() + "Context")
	sibling, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	ssig, ok := sibling.Type().(*types.Signature)
	if !ok || ssig.Params().Len() == 0 || !isContextType(ssig.Params().At(0).Type()) {
		return nil
	}
	return sibling
}
