package lint

import (
	"go/ast"
)

// globalRandAllowed are the math/rand package-level functions that do NOT
// touch the shared global source: constructors for an explicit, seedable
// generator.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// GlobalRand flags calls to math/rand top-level functions, which draw from
// the process-global source. Every probe campaign, victim build, and chaos
// fault schedule in this module must be reproducible from a recorded seed —
// the regression gate diffs BENCH_pipeline.json bit-for-bit — so randomness
// must come from an injected seeded *rand.Rand, never from global state
// another goroutine can perturb.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc: "forbid math/rand top-level functions; randomness must come from an " +
		"injected seeded *rand.Rand",
	Run: runGlobalRand,
}

func runGlobalRand(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, fn, ok := pkgCall(pass.Pkg.Info, call)
			if !ok || !isGlobalRandPkg(pkg) || globalRandAllowed[fn] {
				return true
			}
			pass.Reportf(call.Pos(),
				"rand.%s draws from the process-global source; use an injected seeded *rand.Rand so runs replay from their seed", fn)
			return true
		})
	}
}

// isGlobalRandPkg matches both math/rand generations.
func isGlobalRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}
