package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder flags range-over-map loops whose iteration order leaks into
// ordered output: appending map keys or values to a slice that is never
// sorted afterwards, or writing to an encoder/writer/recorder from inside
// the loop. Go randomizes map iteration per run, so any such leak makes
// BENCH_pipeline.json, the Prometheus exposition, and the exported trace
// documents differ between identical runs — exactly what the benchmark
// regression gate and the paper's reproducibility claims cannot tolerate.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "range over a map must not feed ordered output (slices without a " +
		"subsequent sort, writers, encoders, metric recorders)",
	Run: runMapOrder,
}

// writeMethodNames are method names that emit ordered output; calling one
// inside a map-range body serializes the randomized iteration order.
var writeMethodNames = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Encode":      true,
}

// obsMethodNames are the internal/obs Recorder entry points; emitting
// metrics while ranging a map randomizes event-stream order.
var obsMethodNames = map[string]bool{
	"Count":   true,
	"Gauge":   true,
	"Observe": true,
}

// convergeMethodNames are the internal/converge Ledger entry points that
// feed the ordered snapshot stream (JSONL artifacts, the progress endpoints,
// and the converge.* metric family); appending from inside a map-range loop
// randomizes the stream between identical runs.
var convergeMethodNames = map[string]bool{
	"Append": true,
}

// writePkgFuncs are package-level functions that emit ordered output.
var writePkgFuncs = map[string]bool{
	"fmt.Fprint":     true,
	"fmt.Fprintf":    true,
	"fmt.Fprintln":   true,
	"fmt.Print":      true,
	"fmt.Printf":     true,
	"fmt.Println":    true,
	"io.WriteString": true,
}

func runMapOrder(pass *Pass) {
	eachFuncBody(pass.Pkg.Files, func(body *ast.BlockStmt) {
		mapOrderBody(pass, body)
	})
}

// mapOrderBody checks every map-range loop of one function body.
func mapOrderBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	var loops []*ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			return lit.Body == body
		}
		if rs, ok := n.(*ast.RangeStmt); ok {
			if _, isMap := typeUnder(info, rs.X).(*types.Map); isMap {
				loops = append(loops, rs)
			}
		}
		return true
	})
	for _, rs := range loops {
		checkMapRange(pass, body, rs)
	}
}

// checkMapRange applies the two leak rules to one map-range loop.
func checkMapRange(pass *Pass, body *ast.BlockStmt, rs *ast.RangeStmt) {
	info := pass.Pkg.Info
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// keys = append(keys, k) onto a slice declared outside the loop.
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(info, call) || i >= len(n.Lhs) {
					continue
				}
				target, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Uses[target]
				if obj == nil {
					obj = info.Defs[target]
				}
				if obj == nil || obj.Pos() > rs.Pos() {
					continue // loop-local accumulation; scope too small to leak
				}
				if sortedAfter(info, body, rs, obj) {
					continue
				}
				pass.Reportf(call.Pos(),
					"map iteration order escapes into %q, which is never sorted afterwards; sort it before use", target.Name)
			}
		case *ast.CallExpr:
			if name, ok := orderedWriteCall(info, n); ok {
				pass.Reportf(n.Pos(),
					"%s emits ordered output while ranging over a map; iterate sorted keys instead", name)
			}
		}
		return true
	})
}

// isBuiltinAppend reports whether the call is the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// orderedWriteCall reports whether the call emits ordered output, returning
// a printable callee name.
func orderedWriteCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if pkg, fn, ok := pkgCall(info, call); ok {
		short := pkg[strings.LastIndex(pkg, "/")+1:] + "." + fn
		return short, writePkgFuncs[short]
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return "", false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	name := obj.Name()
	if writeMethodNames[name] {
		return name, true
	}
	if obsMethodNames[name] && strings.HasSuffix(obj.Pkg().Path(), "internal/obs") {
		return "obs." + name, true
	}
	if convergeMethodNames[name] && strings.HasSuffix(obj.Pkg().Path(), "internal/converge") {
		return "converge." + name, true
	}
	return "", false
}

// sortedAfter reports whether, later in the same function body, a sorting
// call (package sort or slices, or any callee whose name mentions sort)
// takes the accumulated slice as an argument.
func sortedAfter(info *types.Info, body *ast.BlockStmt, rs *ast.RangeStmt, target types.Object) bool {
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || !isSortCall(info, call) {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == target {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// isSortCall recognizes sorting callees: anything in package sort or
// slices, or any function whose name contains "sort".
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	if pkg, _, ok := pkgCall(info, call); ok && (pkg == "sort" || pkg == "slices") {
		return true
	}
	if obj := calleeObject(info, call); obj != nil {
		return strings.Contains(strings.ToLower(obj.Name()), "sort")
	}
	return false
}

// typeUnder returns the underlying type of an expression, nil-safe.
func typeUnder(info *types.Info, e ast.Expr) types.Type {
	t := info.TypeOf(e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}
