package lint

import "fmt"

// All returns every registered analyzer, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		CrashSafe,
		CtxFlow,
		FloatEq,
		GlobalRand,
		GoroLeak,
		HostTime,
		LockGuard,
		MapOrder,
		WrapCheck,
	}
}

// ByName resolves a comma-free analyzer name against the registry.
func ByName(name string) (*Analyzer, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("lint: unknown analyzer %q", name)
}
