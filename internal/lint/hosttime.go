package lint

import (
	"go/ast"
)

// hostTimeFuncs are the package time entry points that read or block on the
// host clock. Constructors like time.Duration arithmetic are fine — the
// invariant is about *sampling* wall-clock time, which would contaminate
// the encoding-interval side channel (§7 of the paper) with host noise.
var hostTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// HostTime flags host-clock use inside the simulated-device packages. All
// device latency — DRAM transactions, MAC issue, Huffman encoding stalls —
// must flow through the cycle model (accel.Machine's cycle accounting), so
// the timing side channel the attack measures is a property of the modeled
// hardware, never of the machine running the simulation.
var HostTime = &Analyzer{
	Name: "hosttime",
	Doc: "forbid time.Now/Since/Sleep and friends in simulated-device packages; " +
		"device latency must come from the cycle model",
	Paths: []string{
		"internal/accel",
		"internal/dram",
		"internal/sparse",
		"internal/trace",
		// internal/prof is in scope deliberately: it is the host-cost
		// profiler, so it *must* read the host clock — but each such read
		// has to carry a reasoned //lint:ignore hosttime directive, keeping
		// the host/device clock boundary auditable in one grep.
		"internal/prof",
	},
	Run: runHostTime,
}

func runHostTime(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, fn, ok := pkgCall(pass.Pkg.Info, call)
			if !ok || pkg != "time" || !hostTimeFuncs[fn] {
				return true
			}
			pass.Reportf(call.Pos(),
				"time.%s reads the host clock inside a simulated-device package; device latency must come from the cycle model", fn)
			return true
		})
	}
}
