package lint

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory the package was loaded from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-check failures; analyzers still run on what
	// checked, but the driver surfaces these and fails the run.
	TypeErrors []error

	ignores    map[string][]*ignoreDirective
	directives []*ignoreDirective
	malformed  []Diagnostic
	cfgs       map[*ast.BlockStmt]*Graph
}

// suppressed reports whether an //lint:ignore directive covers the analyzer
// at the given position, marking the directive used so unused ones surface
// as stale.
func (p *Package) suppressed(analyzer string, pos token.Position) bool {
	for _, d := range p.ignores[lineKey(pos.Filename, pos.Line)] {
		if d.covers(analyzer) {
			d.used[analyzer] = true
			return true
		}
	}
	return false
}

// CFG returns the control-flow graph of one function body of this package,
// memoized so analyzers sharing a body share the graph.
func (p *Package) CFG(body *ast.BlockStmt) *Graph {
	if g, ok := p.cfgs[body]; ok {
		return g
	}
	if p.cfgs == nil {
		p.cfgs = map[*ast.BlockStmt]*Graph{}
	}
	g := BuildCFG(body)
	p.cfgs[body] = g
	return g
}

// Loader loads and type-checks packages of one module. The standard
// library resolves through the offline source importer (GOROOT source), so
// loading needs no network, no export data, and no dependencies beyond the
// standard library itself.
type Loader struct {
	// ModuleDir is the module root (the directory holding go.mod).
	ModuleDir string
	// ModulePath is the module's declared import path.
	ModulePath string
	Fset       *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader prepares a loader for the module rooted at dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  abs,
		ModulePath: modPath,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading module file: %w", err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// Load expands the given package patterns ("./...", "./internal/accel",
// "internal/accel/...") and returns the matching packages, loaded and
// type-checked, sorted by import path. With no patterns it loads the whole
// module.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		expanded, err := l.expand(pat)
		if err != nil {
			return nil, err
		}
		for _, d := range expanded {
			dirs[d] = true
		}
	}
	var pkgs []*Package
	for dir := range dirs {
		rel, err := filepath.Rel(l.ModuleDir, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// expand resolves one pattern to package directories.
func (l *Loader) expand(pat string) ([]string, error) {
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive, pat = true, rest
	} else if pat == "..." {
		recursive, pat = true, "."
	}
	root := filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
	if !recursive {
		if !hasGoFiles(root) {
			return nil, fmt.Errorf("lint: no Go files in %s", root)
		}
		return []string{root}, nil
	}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

// hasGoFiles reports whether dir directly contains at least one buildable
// non-test Go file. A directory holding only _test.go files (or only files
// excluded by build tags) is not a package from the analyzers' point of
// view and is skipped, not failed.
func hasGoFiles(dir string) bool {
	return len(goFilesIn(dir)) > 0
}

// goFilesIn returns the names of dir's buildable non-test Go files: the
// filename filter of buildableGoFile plus the //go:build constraint in each
// file's header, evaluated for this process's platform.
func goFilesIn(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !buildableGoFile(e.Name()) {
			continue
		}
		if !buildConstraintOK(filepath.Join(dir, e.Name())) {
			continue
		}
		names = append(names, e.Name())
	}
	return names
}

// buildableGoFile mirrors the go tool's file selection: .go files that are
// not tests and not ignored by an underscore or dot prefix. The analyzers
// deliberately cover production code only — tests are free to use the host
// clock for deadlines.
func buildableGoFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, "_") &&
		!strings.HasPrefix(name, ".")
}

// buildConstraintOK evaluates the file's //go:build line, if any, the way
// the go tool would: against the running GOOS/GOARCH, the gc compiler, and
// every go1.N release tag (the module floor is whatever toolchain runs the
// analysis). Files the constraint excludes would not compile into the
// binary under test, so analyzing them would report on dead code.
func buildConstraintOK(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "package ") {
			break // constraints must precede the package clause
		}
		if !constraint.IsGoBuild(line) {
			continue
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			return true // let the parser produce the real error
		}
		return expr.Eval(func(tag string) bool {
			return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" ||
				strings.HasPrefix(tag, "go1.")
		})
	}
	return true
}

// load type-checks the package at the given module-local import path,
// memoized so shared dependencies check once.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
	return l.loadDir(dir, path)
}

// LoadDir loads the package in dir under an explicit import path. The test
// harness uses this to check testdata packages under the import paths the
// path-scoped analyzers expect.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	return l.loadDir(dir, path)
}

// loadDir parses and type-checks one directory as one package.
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	if _, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	pkg := &Package{
		Path:    path,
		Dir:     dir,
		Fset:    l.Fset,
		ignores: map[string][]*ignoreDirective{},
	}
	for _, name := range goFilesIn(dir) {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			// A syntax error in one file must not abort the module run:
			// record it where the driver reports type-check failures and
			// keep analyzing everything that parses.
			pkg.TypeErrors = append(pkg.TypeErrors, err)
			continue
		}
		pkg.Files = append(pkg.Files, f)
		byLine, all, malformed := parseDirectives(l.Fset, f)
		for k, v := range byLine {
			pkg.ignores[k] = v
		}
		pkg.directives = append(pkg.directives, all...)
		pkg.malformed = append(pkg.malformed, malformed...)
	}
	if len(pkg.Files) == 0 {
		if len(pkg.TypeErrors) > 0 {
			// Nothing parsed; report the collected errors instead of
			// pretending the directory is empty.
			l.pkgs[path] = pkg
			return pkg, nil
		}
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: &moduleImporter{l: l},
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check reports the first error as its return value; every error is
	// already collected through the hook above, so the return is redundant.
	pkg.Types, _ = conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	l.pkgs[path] = pkg
	return pkg, nil
}

// moduleImporter resolves module-local imports through the loader and
// everything else through the offline standard-library source importer.
type moduleImporter struct {
	l *Loader
}

// Import implements types.Importer.
func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == m.l.ModulePath || strings.HasPrefix(path, m.l.ModulePath+"/") {
		pkg, err := m.l.load(path)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: %s failed to type-check", path)
		}
		return pkg.Types, nil
	}
	return m.l.std.Import(path)
}
