package lint

// A small forward dataflow solver over the CFGs of cfg.go. Each analyzer
// supplies its own lattice through the FlowProblem interface: an entry fact,
// a transfer function applied node-by-node inside a block, a merge at join
// points, and (optionally) an edge filter that refines or kills facts along
// branch edges — how crashsafe prunes the NoSync-conditional fsync branches
// that would otherwise make every production write look unsynced.
//
// The solver is a plain worklist iteration to fixpoint. Lattices in this
// package are tiny (a handful of keys with three-valued states), so
// termination never needs widening; Equal bounds the iteration.

import "go/ast"

// FlowProblem describes one forward dataflow analysis with fact type F.
type FlowProblem[F any] interface {
	// Entry is the fact at function entry.
	Entry() F
	// Transfer applies one leaf node to a fact, returning the fact after it.
	// Implementations must not mutate the input fact in place.
	Transfer(f F, n ast.Node) F
	// Merge combines facts arriving at a join point.
	Merge(a, b F) F
	// Equal reports whether two facts are equivalent (fixpoint test).
	Equal(a, b F) bool
}

// EdgeFilter is implemented by problems that refine facts along branch
// edges. Returning ok=false kills the edge: the fact does not propagate
// (the branch is infeasible under the current fact).
type EdgeFilter[F any] interface {
	Edge(f F, e *Edge) (F, bool)
}

// FlowResult holds the solved facts: the fact on entry to each block.
type FlowResult[F any] struct {
	In      map[*Block]F
	problem FlowProblem[F]
}

// Solve runs the worklist iteration to fixpoint and returns the per-block
// entry facts.
func Solve[F any](g *Graph, p FlowProblem[F]) *FlowResult[F] {
	res := &FlowResult[F]{In: make(map[*Block]F, len(g.Blocks)), problem: p}
	filter, _ := p.(EdgeFilter[F])
	res.In[g.Entry] = p.Entry()
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := res.In[blk]
		for _, n := range blk.Nodes {
			out = p.Transfer(out, n)
		}
		for _, e := range blk.Succs {
			f := out
			if filter != nil {
				var ok bool
				if f, ok = filter.Edge(f, e); !ok {
					continue
				}
			}
			prev, seen := res.In[e.To]
			next := f
			if seen {
				next = p.Merge(prev, f)
				if p.Equal(prev, next) {
					continue
				}
			}
			res.In[e.To] = next
			if !queued[e.To] {
				queued[e.To] = true
				work = append(work, e.To)
			}
		}
	}
	return res
}

// Walk replays the transfer function over every reachable block, calling
// visit with the fact in force immediately before each node. This is how
// analyzers report: the solved entry facts position each block, and the
// replay recovers the exact fact at each statement.
func (r *FlowResult[F]) Walk(g *Graph, visit func(f F, n ast.Node)) {
	for _, blk := range g.Blocks {
		f, ok := r.In[blk]
		if !ok {
			continue // unreachable
		}
		for _, n := range blk.Nodes {
			visit(f, n)
			f = r.problem.Transfer(f, n)
		}
	}
}

// ExitFacts returns the facts flowing into Exit along each of its incoming
// edges, after the source block's transfers and the problem's edge filter.
// Analyzers that check a property "at every return" (lockguard's lock-leak)
// consume this.
func (r *FlowResult[F]) ExitFacts(g *Graph) []F {
	filter, _ := r.problem.(EdgeFilter[F])
	var out []F
	for _, e := range g.Exit.Preds {
		f, ok := r.In[e.From]
		if !ok {
			continue
		}
		for _, n := range e.From.Nodes {
			f = r.problem.Transfer(f, n)
		}
		if filter != nil {
			var keep bool
			if f, keep = filter.Edge(f, e); !keep {
				continue
			}
		}
		out = append(out, f)
	}
	return out
}
