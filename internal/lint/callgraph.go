package lint

// A module-level call-graph approximation shared by the flow-aware
// analyzers. Resolution is purely static: a call site contributes an edge
// only when the callee resolves to a concrete *types.Func declared in one of
// the loaded packages (direct calls and method calls on concrete receivers).
// Interface dispatch and function values stay unresolved — the analyzers
// that consume the graph (crashsafe's recovery-call search, goroleak's
// termination-signal search, lockguard's caller-side exemption) treat an
// unresolved callee conservatively at their own layer.

import (
	"go/ast"
	"go/types"
)

// CallGraph maps the module's declared functions to their bodies and their
// statically resolvable callees.
type CallGraph struct {
	// Decls maps each declared function or method to its declaration.
	Decls map[*types.Func]*ast.FuncDecl
	// DeclPkg maps each declared function to the package declaring it.
	DeclPkg map[*types.Func]*Package
	// Callees lists the module-internal functions each function calls
	// directly (deduplicated, declaration order).
	Callees map[*types.Func][]*types.Func
	// Callers is the reverse of Callees.
	Callers map[*types.Func][]*types.Func
}

// BuildCallGraph indexes every function declaration across the loaded
// packages and resolves the direct call edges between them.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	cg := &CallGraph{
		Decls:   map[*types.Func]*ast.FuncDecl{},
		DeclPkg: map[*types.Func]*Package{},
		Callees: map[*types.Func][]*types.Func{},
		Callers: map[*types.Func][]*types.Func{},
	}
	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue // nothing parsed in this package
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				cg.Decls[fn] = fd
				cg.DeclPkg[fn] = pkg
			}
		}
	}
	for fn, fd := range cg.Decls {
		if fd.Body == nil {
			continue
		}
		pkg := cg.DeclPkg[fn]
		seen := map[*types.Func]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, ok := calleeObject(pkg.Info, call).(*types.Func)
			if !ok || seen[callee] {
				return true
			}
			if _, declared := cg.Decls[callee]; !declared {
				return true
			}
			seen[callee] = true
			cg.Callees[fn] = append(cg.Callees[fn], callee)
			cg.Callers[callee] = append(cg.Callers[callee], fn)
			return true
		})
	}
	return cg
}

// Walk visits fn and its transitive callees breadth-first up to the given
// depth (depth 0 visits fn alone). Visiting stops early when visit returns
// false. It reports whether the walk ran to completion.
func (cg *CallGraph) Walk(fn *types.Func, depth int, visit func(fn *types.Func, decl *ast.FuncDecl) bool) bool {
	type item struct {
		fn *types.Func
		d  int
	}
	seen := map[*types.Func]bool{fn: true}
	queue := []item{{fn, 0}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		decl := cg.Decls[it.fn]
		if decl == nil {
			continue
		}
		if !visit(it.fn, decl) {
			return false
		}
		if it.d >= depth {
			continue
		}
		for _, callee := range cg.Callees[it.fn] {
			if !seen[callee] {
				seen[callee] = true
				queue = append(queue, item{callee, it.d + 1})
			}
		}
	}
	return true
}
