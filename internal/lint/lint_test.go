package lint_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/huffduff/huffduff/internal/lint"
)

var update = flag.Bool("update", false, "rewrite testdata expect.txt golden files")

// sharedLoader memoizes one loader across subtests so the standard library
// sources parse once.
var (
	loaderOnce sync.Once
	loaderInst *lint.Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *lint.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loaderInst, loaderErr = lint.NewLoader(filepath.Join("..", ".."))
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loaderInst
}

// loadCase loads one testdata package under an explicit import path so the
// path-scoped analyzers treat it as the package they guard.
func loadCase(t *testing.T, dir, importPath string) *lint.Package {
	t.Helper()
	pkg, err := sharedLoader(t).LoadDir(filepath.Join("testdata", "src", dir), importPath)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("testdata package %s has type errors: %v", dir, pkg.TypeErrors)
	}
	return pkg
}

// render formats diagnostics with basenamed files, the shape the golden
// files store.
func render(diags []lint.Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		d.File = filepath.Base(d.File)
		fmt.Fprintln(&sb, d.String())
	}
	return sb.String()
}

// TestGolden runs each analyzer against its testdata package and compares
// the diagnostics against the committed expect.txt. Every analyzer must
// demonstrate at least one caught violation.
func TestGolden(t *testing.T) {
	cases := []struct {
		dir        string
		importPath string
		analyzer   string
		wantSome   bool
	}{
		{"hosttime", "test/internal/accel", "hosttime", true},
		{"globalrand", "test/internal/chaos", "globalrand", true},
		{"floateq", "test/internal/tensor", "floateq", true},
		{"wrapcheck", "test/internal/huffduff", "wrapcheck", true},
		{"maporder", "test/pkg/export", "maporder", true},
		{"ignore", "test/pkg/ignore", "globalrand", true},
		// Flow-aware analyzers: each dirty package is loaded under an import
		// path inside the analyzer's scope, and its clean twin (same shapes,
		// done right) must produce an empty golden.
		{"crashsafe", "test2/internal/store", "crashsafe", true},
		{"crashsafe_clean", "test3/internal/store", "crashsafe", false},
		{"lockguard", "test2/internal/converge", "lockguard", true},
		{"lockguard_clean", "test3/internal/converge", "lockguard", false},
		{"goroleak", "test2/internal/telemetry", "goroleak", true},
		{"goroleak_clean", "test3/internal/telemetry", "goroleak", false},
		{"ctxflow", "test2/internal/huffduff", "ctxflow", true},
		{"ctxflow_clean", "test3/internal/huffduff", "ctxflow", false},
		{"staleignore", "test/pkg/staleignore", "globalrand", true},
	}
	for _, c := range cases {
		t.Run(c.dir, func(t *testing.T) {
			pkg := loadCase(t, c.dir, c.importPath)
			a, err := lint.ByName(c.analyzer)
			if err != nil {
				t.Fatal(err)
			}
			got := render(lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a}))
			golden := filepath.Join("testdata", "src", c.dir, "expect.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
			if c.wantSome && strings.TrimSpace(got) == "" {
				t.Errorf("expected at least one caught violation, got none")
			}
		})
	}
}

// TestPathScoping checks that a path-restricted analyzer stays silent on a
// package outside its scope: the hosttime testdata, loaded under a
// non-device import path, must produce no findings.
func TestPathScoping(t *testing.T) {
	pkg := loadCase(t, "hosttime", "test/pkg/notadevice")
	diags := lint.RunAnalyzers([]*lint.Package{pkg}, lint.All())
	for _, d := range diags {
		if d.Analyzer == "hosttime" {
			t.Errorf("hosttime fired outside its package scope: %s", d)
		}
	}
}

// TestSuppressionScope checks a directive covers only its own and the next
// line: the wrong-analyzer and malformed directives in the ignore testdata
// must leave their findings standing (already pinned by the golden file),
// while well-formed ones silence theirs.
func TestSuppressionScope(t *testing.T) {
	pkg := loadCase(t, "ignore", "test/pkg/ignore2")
	a, err := lint.ByName("globalrand")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.RunAnalyzers([]*lint.Package{pkg}, []*lint.Analyzer{a})
	var kinds []string
	for _, d := range diags {
		kinds = append(kinds, d.Analyzer)
	}
	// Two surviving globalrand findings (wrong analyzer named, malformed
	// directive) plus the malformed-directive report itself.
	wantGlobal, wantIgnore := 2, 1
	var nGlobal, nIgnore int
	for _, k := range kinds {
		switch k {
		case "globalrand":
			nGlobal++
		case "ignore":
			nIgnore++
		}
	}
	if nGlobal != wantGlobal || nIgnore != wantIgnore {
		t.Errorf("got %d globalrand + %d ignore diagnostics (want %d + %d): %v",
			nGlobal, nIgnore, wantGlobal, wantIgnore, diags)
	}
}

// TestByName covers registry lookups.
func TestByName(t *testing.T) {
	for _, a := range lint.All() {
		got, err := lint.ByName(a.Name)
		if err != nil || got != a {
			t.Errorf("ByName(%q) = %v, %v", a.Name, got, err)
		}
	}
	if _, err := lint.ByName("nosuch"); err == nil {
		t.Error("ByName(nosuch) succeeded")
	}
}

// TestModuleClean enforces the repo-wide invariant directly: the analyzers
// must report nothing on this module. Skipped in -short runs (full-module
// loading parses the standard library from source).
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module analysis is slow; run without -short")
	}
	pkgs, err := sharedLoader(t).Load("./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("%s: type errors: %v", pkg.Path, pkg.TypeErrors)
		}
	}
	for _, d := range lint.RunAnalyzers(pkgs, lint.All()) {
		t.Errorf("unsuppressed diagnostic: %s", d)
	}
}

// BenchmarkHuffvet measures one full-module analysis pass — load,
// type-check against the source importer, run every analyzer — the cost CI
// pays per huffvet invocation. EXPERIMENTS.md records the baseline; keep it
// under ~10s.
func BenchmarkHuffvet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		loader, err := lint.NewLoader(filepath.Join("..", ".."))
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := loader.Load("./...")
		if err != nil {
			b.Fatal(err)
		}
		if diags := lint.RunAnalyzers(pkgs, lint.All()); len(diags) != 0 {
			b.Fatalf("module not clean: %v", diags)
		}
	}
}
