package lint

// crashsafe enforces the durability discipline of the persistence layers
// (internal/store, internal/telemetry): data reaches disk before the
// operations that publish it, and failed writes never leave a handle whose
// in-memory bookkeeping has drifted from the bytes on disk.
//
// Two rules, both over the CFG/dataflow core:
//
// Rule A — unsynced rename. A forward dataflow tracks, per *os.File
// expression, whether it carries written-but-unsynced data. Write-family
// calls mark the handle dirty, Sync clears it; Close does NOT clear it
// (close flushes to the page cache, not to the platter — the exact torn-
// sidecar shape PR 9's review caught). os.WriteFile never syncs, so its
// target path stays permanently dirty. Reaching an os.Rename while any
// handle is dirty on a feasible path is reported: rename is the publish
// point, and publishing unsynced bytes means a crash can expose a torn
// file under the final name. Branches on a cfg `NoSync` flag are pruned to
// the production value (false), so the test-only fsync bypass does not
// poison every path.
//
// Rule B — failed write/fsync falling through. When `err != nil` guards
// the result of a Write/Sync on a durable (non-scratch) *os.File, the
// error path must do something that re-establishes a known state: close,
// truncate, stat-reconcile, reopen, remove, or crash — directly or through
// a module function within two calls. An error path that just returns
// leaves the handle appendable with torn bytes and stale cached offsets;
// the next append concatenates onto garbage (the PR 9 failed-fsync bug,
// encoded). Scratch files (opened under a *.tmp path and abandoned on
// error) are exempt: their torn bytes are never renamed into place.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CrashSafe is the durability-discipline analyzer.
var CrashSafe = &Analyzer{
	Name: "crashsafe",
	Doc: "Durability files must be fsynced before rename, and write/fsync " +
		"error paths must seal or reopen the handle instead of falling " +
		"through with stale in-memory state.",
	Paths: []string{"internal/store", "internal/telemetry"},
	Run:   runCrashSafe,
}

func runCrashSafe(pass *Pass) {
	eachFuncBody(pass.Pkg.Files, func(body *ast.BlockStmt) {
		crashSafeRuleA(pass, body)
		crashSafeRuleB(pass, body)
	})
}

// dirtyFacts is Rule A's lattice value: the set of handle expressions (by
// source text) carrying written-but-unsynced data.
type dirtyFacts map[string]bool

type crashProblem struct {
	info *types.Info
}

func (p *crashProblem) Entry() dirtyFacts { return dirtyFacts{} }

func (p *crashProblem) Transfer(f dirtyFacts, n ast.Node) dirtyFacts {
	var dirty, clean []string
	inspectCalls(n, func(call *ast.CallExpr) {
		if recv, name, ok := osFileMethod(p.info, call); ok {
			key := types.ExprString(recv)
			switch name {
			case "Write", "WriteString", "WriteAt", "ReadFrom":
				dirty = append(dirty, key)
			case "Sync":
				clean = append(clean, key)
			}
			return
		}
		if path, fn, ok := pkgCall(p.info, call); ok && path == "os" &&
			fn == "WriteFile" && len(call.Args) > 0 {
			// os.WriteFile closes without syncing: the written path can
			// stay dirty in the page cache indefinitely.
			dirty = append(dirty, "os.WriteFile("+types.ExprString(call.Args[0])+")")
		}
	})
	if len(dirty) == 0 && len(clean) == 0 {
		return f
	}
	out := make(dirtyFacts, len(f)+len(dirty))
	for k := range f {
		out[k] = true
	}
	for _, k := range clean {
		delete(out, k)
	}
	for _, k := range dirty {
		out[k] = true
	}
	return out
}

func (p *crashProblem) Merge(a, b dirtyFacts) dirtyFacts {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make(dirtyFacts, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func (p *crashProblem) Equal(a, b dirtyFacts) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// Edge prunes branches on a NoSync config flag to its production value
// (false): the fsync-bypass paths exist for tests only.
func (p *crashProblem) Edge(f dirtyFacts, e *Edge) (dirtyFacts, bool) {
	if e.Cond == nil {
		return f, true
	}
	if match, negated := noSyncCond(e.Cond); match {
		return f, e.Branch == negated
	}
	return f, true
}

// noSyncCond matches the conditions `x.NoSync` and `!x.NoSync`.
func noSyncCond(cond ast.Expr) (match, negated bool) {
	cond = ast.Unparen(cond)
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		m, _ := noSyncCond(u.X)
		return m, true
	}
	if sel, ok := cond.(*ast.SelectorExpr); ok && sel.Sel.Name == "NoSync" {
		return true, false
	}
	return false, false
}

func crashSafeRuleA(pass *Pass, body *ast.BlockStmt) {
	prob := &crashProblem{info: pass.Pkg.Info}
	g := pass.Pkg.CFG(body)
	res := Solve[dirtyFacts](g, prob)
	res.Walk(g, func(f dirtyFacts, n ast.Node) {
		inspectCalls(n, func(call *ast.CallExpr) {
			path, fn, ok := pkgCall(pass.Pkg.Info, call)
			if !ok || path != "os" || fn != "Rename" || len(f) == 0 {
				return
			}
			keys := make([]string, 0, len(f))
			for k := range f {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			pass.Reportf(call.Pos(), "os.Rename while %s is written but not fsynced; "+
				"a crash after the rename can publish a torn file under the final name",
				strings.Join(keys, ", "))
		})
	})
}

// crashSafeRuleB walks every `if err != nil` guarding a Write/Sync on a
// durable handle and demands a recovery action on the error path.
func crashSafeRuleB(pass *Pass, body *ast.BlockStmt) {
	scratch := scratchLocals(pass.Pkg.Info, body)
	eachStmtList(body, func(list []ast.Stmt) {
		for i, st := range list {
			ifSt, ok := st.(*ast.IfStmt)
			if !ok {
				continue
			}
			var prev ast.Stmt
			if i > 0 {
				prev = list[i-1]
			}
			checkErrGuard(pass, ifSt, prev, scratch)
		}
	})
}

func checkErrGuard(pass *Pass, ifSt *ast.IfStmt, prev ast.Stmt, scratch map[types.Object]bool) {
	errIdent := errNilCond(pass.Pkg.Info, ifSt.Cond)
	if errIdent == nil {
		return
	}
	origin := originCall(pass.Pkg.Info, ifSt, prev, errIdent)
	if origin == nil {
		return
	}
	recv, name, ok := osFileMethod(pass.Pkg.Info, origin)
	if !ok {
		return
	}
	switch name {
	case "Write", "WriteString", "WriteAt", "ReadFrom", "Sync":
	default:
		return
	}
	if id, ok := ast.Unparen(recv).(*ast.Ident); ok {
		if obj := pass.Pkg.Info.Uses[id]; obj != nil && scratch[obj] {
			return // abandoned *.tmp scratch file: torn bytes are never published
		}
	}
	if hasRecovery(pass, ifSt.Body, 2) {
		return
	}
	pass.Reportf(origin.Pos(), "a failed %s on %s leaves torn bytes and stale cached state behind; "+
		"the error path must seal, truncate, or reopen the handle (or crash) before returning",
		name, types.ExprString(recv))
}

// errNilCond matches `x != nil` where x is an identifier of type error,
// returning the identifier.
func errNilCond(info *types.Info, cond ast.Expr) *ast.Ident {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return nil
	}
	id, ok := ast.Unparen(bin.X).(*ast.Ident)
	if !ok {
		return nil
	}
	if nilID, ok := ast.Unparen(bin.Y).(*ast.Ident); !ok || nilID.Name != "nil" {
		return nil
	}
	if tv, ok := info.Types[bin.X]; !ok || !isErrorType(tv.Type) {
		return nil
	}
	return id
}

// originCall finds the call whose error the if statement guards: the init
// clause (`if _, err := f.Write(b); err != nil`) or the immediately
// preceding assignment (`err := f.Sync(); if err != nil`).
func originCall(info *types.Info, ifSt *ast.IfStmt, prev ast.Stmt, errIdent *ast.Ident) *ast.CallExpr {
	if call := assignedCall(info, ifSt.Init, errIdent); call != nil {
		return call
	}
	if ifSt.Init == nil {
		return assignedCall(info, prev, errIdent)
	}
	return nil
}

// assignedCall returns the call expression st assigns to errIdent, if any.
func assignedCall(info *types.Info, st ast.Stmt, errIdent *ast.Ident) *ast.CallExpr {
	as, ok := st.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	errObj := info.Uses[errIdent]
	if errObj == nil {
		errObj = info.Defs[errIdent]
	}
	for _, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil && obj == errObj {
			return call
		}
	}
	return nil
}

// hasRecovery reports whether the error path re-establishes a known handle
// state: a close/truncate/stat/seek on a file, a filesystem operation that
// replaces or removes state, a crash, or a module function that does one of
// those within depth calls.
func hasRecovery(pass *Pass, body ast.Node, depth int) bool {
	found := false
	inspectCalls(body, func(call *ast.CallExpr) {
		if found {
			return
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			found = true
			return
		}
		if _, name, ok := osFileMethod(pass.Pkg.Info, call); ok {
			switch name {
			case "Close", "Truncate", "Stat", "Seek":
				found = true
			}
			return
		}
		if path, fn, ok := pkgCall(pass.Pkg.Info, call); ok {
			if path == "os" {
				switch fn {
				case "OpenFile", "Open", "Create", "Remove", "Rename", "Truncate", "Exit":
					found = true
				}
			}
			if path == "log" && strings.HasPrefix(fn, "Fatal") {
				found = true
			}
			return
		}
		if depth > 0 && pass.Calls != nil {
			if callee, ok := calleeObject(pass.Pkg.Info, call).(*types.Func); ok {
				if decl := pass.Calls.Decls[callee]; decl != nil && decl.Body != nil {
					calleePass := pass
					if declPkg := pass.Calls.DeclPkg[callee]; declPkg != nil {
						calleePass = &Pass{Analyzer: pass.Analyzer, Pkg: declPkg, Calls: pass.Calls, diags: pass.diags}
					}
					if hasRecovery(calleePass, decl.Body, depth-1) {
						found = true
					}
				}
			}
		}
	})
	return found
}

// scratchLocals collects local variables opened on a *.tmp path: scratch
// files whose torn bytes are abandoned, not published.
func scratchLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		path, fn, ok := pkgCall(info, call)
		if !ok || path != "os" {
			return true
		}
		switch fn {
		case "CreateTemp":
		case "OpenFile", "Create":
			if len(call.Args) == 0 || !mentionsTmp(call.Args[0]) {
				return true
			}
		default:
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// mentionsTmp reports whether a path expression references a temporary
// name: a ".tmp" string literal or an identifier named after one.
func mentionsTmp(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BasicLit:
			if v.Kind == token.STRING && strings.Contains(v.Value, ".tmp") {
				found = true
			}
		case *ast.Ident:
			if strings.Contains(strings.ToLower(v.Name), "tmp") {
				found = true
			}
		}
		return true
	})
	return found
}

// inspectCalls visits every call expression under n, without descending
// into function literals (their bodies are separate functions).
func inspectCalls(n ast.Node, fn func(*ast.CallExpr)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			fn(call)
		}
		return true
	})
}

// osFileMethod matches a method call on an *os.File-typed receiver,
// returning the receiver expression and the method name.
func osFileMethod(info *types.Info, call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return nil, "", false
	}
	tv, okT := info.Types[sel.X]
	if !okT || !isOSFile(tv.Type) {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// isOSFile reports whether t is *os.File.
func isOSFile(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}

// eachStmtList visits every statement list (block bodies, case bodies)
// under body, including body itself.
func eachStmtList(body *ast.BlockStmt, fn func([]ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			fn(v.List)
		case *ast.CaseClause:
			fn(v.Body)
		case *ast.CommClause:
			fn(v.Body)
		}
		return true
	})
}
