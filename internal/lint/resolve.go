package lint

import (
	"go/ast"
	"go/types"
)

// pkgCall resolves a call of the form pkg.Fn(...) where pkg is an imported
// package name, returning the package's import path and the function name.
// Method calls and local calls return ok=false.
func pkgCall(info *types.Info, call *ast.CallExpr) (pkgPath, fn string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	id, okID := sel.X.(*ast.Ident)
	if !okID {
		return "", "", false
	}
	pn, okPkg := info.Uses[id].(*types.PkgName)
	if !okPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// calleeObject resolves the object a call invokes: a package-level function,
// a method, or nil when the callee is dynamic (a function value, a
// conversion, or a builtin).
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Func); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return obj
		}
	}
	return nil
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// eachFuncBody visits every function body of the package — declarations,
// methods, and function literals — calling fn with the enclosing body.
func eachFuncBody(files []*ast.File, fn func(body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d.Body)
				}
			case *ast.FuncLit:
				fn(d.Body)
			}
			return true
		})
	}
}
