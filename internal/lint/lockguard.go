package lint

// lockguard enforces the mutex discipline of the concurrent subsystems. A
// struct field annotated
//
//	// guarded by mu
//
// (where mu names a sibling sync.Mutex or sync.RWMutex field) must be
// accessed with that mutex held on every path, checked by running the lock
// lattice {unknown, held, free} over each function's CFG. The analyzer also
// flags the classic mechanical mutex bugs: a second Lock on a path that
// already holds the lock (deadlock), an Unlock on a path that already
// released it (runtime panic), a lock released on some return paths but not
// all (the unlock-on-error-path-only shape), and mutex-bearing structs
// passed by value (the copy silently forks the lock).
//
// Functions legitimately run without the lock in three situations, all
// recognized so the rule stays annotation-cheap:
//
//   - names ending in "Locked" declare the caller-holds-lock contract;
//   - accesses through a value the function itself allocated (&T{}, T{},
//     new(T)) predate any sharing;
//   - a function whose every callsite either holds the receiver's mutex,
//     passes a locally allocated receiver, or sits in an exempt caller is
//     itself exempt (computed to fixpoint over the module call graph —
//     this is how pre-publication helpers like restore paths stay quiet).
//
// Unannotated fields of an annotated struct are inferred guarded when they
// see at least one locked write and a locked majority outside exempt
// contexts; minority unlocked accesses are then reported. This catches the
// "every path locks except the one someone added last month" drift without
// requiring annotations on every field.

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// LockGuard is the mutex-discipline analyzer.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc: "Fields annotated `// guarded by mu` must be accessed with the " +
		"mutex held on every path; also flags double-lock, double-unlock, " +
		"unlock-on-some-paths-only, and by-value mutex copies.",
	Paths: []string{"internal/store", "internal/telemetry", "internal/converge", "internal/obs"},
	Run:   runLockGuard,
}

var guardedByRE = regexp.MustCompile(`(?i)guarded by (\w+)`)

// lockState is the per-mutex lattice value.
type lockState int8

const (
	lockHeld lockState = iota + 1
	lockFree
)

// lockFacts maps mutex keys (receiver expression + mutex field, e.g.
// "s.mu") to their state; absent means unknown. defers records mutexes
// with a pending deferred unlock, so held-at-exit with a defer is clean.
type lockFacts struct {
	state  map[string]lockState
	defers map[string]bool
}

type lockProblem struct {
	info *types.Info
}

func (p *lockProblem) Entry() lockFacts {
	return lockFacts{state: map[string]lockState{}, defers: map[string]bool{}}
}

func (p *lockProblem) Transfer(f lockFacts, n ast.Node) lockFacts {
	type op struct {
		key     string
		state   lockState
		isDefer bool
	}
	var ops []op
	if def, ok := n.(*ast.DeferStmt); ok {
		for _, key := range deferredUnlocks(p.info, def) {
			ops = append(ops, op{key: key, isDefer: true})
		}
	} else {
		inspectCalls(n, func(call *ast.CallExpr) {
			key, name, ok := mutexMethod(p.info, call)
			if !ok {
				return
			}
			switch name {
			case "Lock", "RLock":
				ops = append(ops, op{key: key, state: lockHeld})
			case "Unlock", "RUnlock":
				ops = append(ops, op{key: key, state: lockFree})
			}
		})
	}
	if len(ops) == 0 {
		return f
	}
	out := lockFacts{
		state:  make(map[string]lockState, len(f.state)+len(ops)),
		defers: make(map[string]bool, len(f.defers)),
	}
	for k, v := range f.state {
		out.state[k] = v
	}
	for k := range f.defers {
		out.defers[k] = true
	}
	for _, o := range ops {
		if o.isDefer {
			out.defers[o.key] = true
		} else {
			out.state[o.key] = o.state
		}
	}
	return out
}

func (p *lockProblem) Merge(a, b lockFacts) lockFacts {
	out := lockFacts{state: map[string]lockState{}, defers: map[string]bool{}}
	for k, v := range a.state {
		if b.state[k] == v {
			out.state[k] = v
		}
	}
	for k := range a.defers {
		if b.defers[k] {
			out.defers[k] = true
		}
	}
	return out
}

func (p *lockProblem) Equal(a, b lockFacts) bool {
	if len(a.state) != len(b.state) || len(a.defers) != len(b.defers) {
		return false
	}
	for k, v := range a.state {
		if b.state[k] != v {
			return false
		}
	}
	for k := range a.defers {
		if !b.defers[k] {
			return false
		}
	}
	return true
}

// deferredUnlocks returns the mutex keys a defer statement unlocks, either
// directly (`defer mu.Unlock()`) or through a literal body.
func deferredUnlocks(info *types.Info, def *ast.DeferStmt) []string {
	if key, name, ok := mutexMethod(info, def.Call); ok {
		if name == "Unlock" || name == "RUnlock" {
			return []string{key}
		}
		return nil
	}
	lit, ok := def.Call.Fun.(*ast.FuncLit)
	if !ok {
		return nil
	}
	var keys []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if key, name, ok := mutexMethod(info, call); ok && (name == "Unlock" || name == "RUnlock") {
				keys = append(keys, key)
			}
		}
		return true
	})
	return keys
}

// mutexMethod matches a method call on a sync.Mutex / sync.RWMutex valued
// expression, returning the lock key (the receiver's source text) and the
// method name.
func mutexMethod(info *types.Info, call *ast.CallExpr) (key, name string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	tv, okT := info.Types[sel.X]
	if !okT || !isMutexType(tv.Type) {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// guardInfo describes one annotated (or inference-candidate) field.
type guardInfo struct {
	mu         string // sibling mutex field name
	structName string
	annotated  bool
}

// lockUnit is one analyzed function body: a declaration or a function
// literal (which inherits its enclosing declaration's exemption and local
// allocations).
type lockUnit struct {
	decl *ast.FuncDecl // enclosing declaration
	body *ast.BlockStmt
	pos  token.Pos
}

// candStat accumulates inference evidence for one candidate field.
type candStat struct {
	lockedR, lockedW     int
	unlockedR, unlockedW int
	unlockedPos          []token.Pos
}

func runLockGuard(pass *Pass) {
	info := pass.Pkg.Info
	guards := collectGuards(pass)
	lockCopyCheck(pass)

	var units []lockUnit
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			units = append(units, lockUnit{decl: fd, body: fd.Body, pos: fd.Name.Pos()})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					units = append(units, lockUnit{decl: fd, body: lit.Body, pos: lit.Pos()})
				}
				return true
			})
		}
	}

	prob := &lockProblem{info: info}
	results := make([]*FlowResult[lockFacts], len(units))
	graphs := make([]*Graph, len(units))
	for i, u := range units {
		graphs[i] = pass.Pkg.CFG(u.body)
		results[i] = Solve[lockFacts](graphs[i], prob)
	}

	allocs := map[*ast.FuncDecl]map[types.Object]bool{}
	allocTypes := map[*ast.FuncDecl]map[*types.Named]bool{}
	for _, u := range units {
		if allocs[u.decl] == nil {
			objs, named := localAllocs(info, u.decl.Body)
			allocs[u.decl] = objs
			allocTypes[u.decl] = named
		}
	}
	exempt := lockExemptions(pass, units, graphs, results, guards, allocs, allocTypes)

	stats := map[*types.Var]*candStat{}
	for i, u := range units {
		checkUnit(pass, u, graphs[i], results[i], guards, allocs[u.decl], exempt[u.decl], stats)
	}

	// Inference: candidate fields with a locked write and a locked majority
	// are treated as guarded; the minority unlocked accesses are the drift.
	fields := make([]*types.Var, 0, len(stats))
	for f := range stats {
		fields = append(fields, f)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })
	for _, f := range fields {
		st := stats[f]
		gi := guards[f]
		if st.lockedW == 0 || st.lockedR+st.lockedW <= st.unlockedR+st.unlockedW {
			continue
		}
		for _, pos := range st.unlockedPos {
			pass.Reportf(pos, "%s.%s is accessed under %s on most paths; this access misses the lock — hold %s here or annotate the field `// guarded by %s`",
				gi.structName, f.Name(), gi.mu, gi.mu, gi.mu)
		}
	}
}

// collectGuards indexes the package's annotated fields and, for structs
// with at least one annotation, the unannotated sibling fields eligible
// for inference.
func collectGuards(pass *Pass) map[*types.Var]guardInfo {
	info := pass.Pkg.Info
	out := map[*types.Var]guardInfo{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			mutexFields := map[string]bool{}
			for _, fld := range st.Fields.List {
				if tv, ok := info.Types[fld.Type]; ok && isMutexType(tv.Type) {
					for _, name := range fld.Names {
						mutexFields[name.Name] = true
					}
				}
			}
			if len(mutexFields) == 0 {
				return true
			}
			type annotated struct {
				fld *ast.Field
				mu  string
			}
			var anns []annotated
			for _, fld := range st.Fields.List {
				text := fld.Doc.Text() + " " + fld.Comment.Text()
				m := guardedByRE.FindStringSubmatch(text)
				if m == nil || !mutexFields[m[1]] {
					continue // unannotated, or names a non-sibling (qualified forms ignored)
				}
				anns = append(anns, annotated{fld, m[1]})
			}
			if len(anns) == 0 {
				return true
			}
			for _, a := range anns {
				for _, name := range a.fld.Names {
					if obj, ok := info.Defs[name].(*types.Var); ok {
						out[obj] = guardInfo{mu: a.mu, structName: ts.Name.Name, annotated: true}
					}
				}
			}
			// Inference candidates: the remaining fields, minus the mutexes
			// themselves and self-synchronized types.
			inferMu := anns[0].mu
			for _, fld := range st.Fields.List {
				tv, ok := info.Types[fld.Type]
				if !ok || isMutexType(tv.Type) || selfSynchronized(tv.Type) {
					continue
				}
				for _, name := range fld.Names {
					obj, ok := info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if _, done := out[obj]; done {
						continue
					}
					out[obj] = guardInfo{mu: inferMu, structName: ts.Name.Name}
				}
			}
			return true
		})
	}
	return out
}

// selfSynchronized reports types that need no external lock: channels,
// sync.* primitives, and atomic values.
func selfSynchronized(t types.Type) bool {
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == "sync" || pkg.Path() == "sync/atomic"
}

// localAllocs collects the variables a body allocates itself (x := &T{...},
// x := T{...}, x := new(T)) and the named struct types so allocated:
// accesses through them predate sharing and need no lock.
func localAllocs(info *types.Info, body *ast.BlockStmt) (map[types.Object]bool, map[*types.Named]bool) {
	objs := map[types.Object]bool{}
	named := map[*types.Named]bool{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		switch v := ast.Unparen(rhs).(type) {
		case *ast.UnaryExpr:
			if v.Op != token.AND {
				return
			}
			if _, ok := ast.Unparen(v.X).(*ast.CompositeLit); !ok {
				return
			}
		case *ast.CompositeLit:
		case *ast.CallExpr:
			if fn, ok := v.Fun.(*ast.Ident); !ok || fn.Name != "new" {
				return
			}
		default:
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		objs[obj] = true
		if n, ok := derefNamed(obj.Type()); ok {
			named[n] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					record(st.Lhs[i], st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == len(st.Values) {
				for i := range st.Names {
					record(st.Names[i], st.Values[i])
				}
			}
		}
		return true
	})
	return objs, named
}

// derefNamed unwraps pointers to a named type.
func derefNamed(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// structMutexes returns the mutex field names that guard annotated fields
// of the given named type, per the guards index.
func structMutexes(guards map[*types.Var]guardInfo, n *types.Named) []string {
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	seen := map[string]bool{}
	var mus []string
	for i := 0; i < st.NumFields(); i++ {
		gi, ok := guards[st.Field(i)]
		if !ok || !gi.annotated || seen[gi.mu] {
			continue
		}
		seen[gi.mu] = true
		mus = append(mus, gi.mu)
	}
	return mus
}

// lockExemptions computes, to fixpoint, which declarations run in contexts
// that legitimately hold no lock: the "Locked" naming contract, plus
// functions whose every callsite holds the receiver's mutex, passes a
// locally allocated receiver, or sits in an already-exempt caller.
func lockExemptions(pass *Pass, units []lockUnit, graphs []*Graph, results []*FlowResult[lockFacts],
	guards map[*types.Var]guardInfo, allocs map[*ast.FuncDecl]map[types.Object]bool,
	allocTypes map[*ast.FuncDecl]map[*types.Named]bool) map[*ast.FuncDecl]bool {

	info := pass.Pkg.Info
	exempt := map[*ast.FuncDecl]bool{}
	declOf := map[*types.Func]*ast.FuncDecl{}
	for _, u := range units {
		if fn, ok := info.Defs[u.decl.Name].(*types.Func); ok {
			declOf[fn] = u.decl
		}
		if strings.HasSuffix(u.decl.Name.Name, "Locked") {
			exempt[u.decl] = true
		}
	}

	// One record per module-internal callsite inside this package: was the
	// callee's receiver mutex held, or the receiver locally allocated?
	type site struct {
		callee    *types.Func
		caller    *ast.FuncDecl
		satisfied bool // lock held or receiver locally allocated
	}
	var sites []site
	for i, u := range units {
		u := u
		results[i].Walk(graphs[i], func(f lockFacts, n ast.Node) {
			inspectCalls(n, func(call *ast.CallExpr) {
				callee, ok := calleeObject(info, call).(*types.Func)
				if !ok || declOf[callee] == nil {
					return
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					sites = append(sites, site{callee, u.decl, false})
					return
				}
				recvType := receiverNamed(callee)
				satisfied := false
				if recvType != nil {
					if mus := structMutexes(guards, recvType); len(mus) > 0 {
						satisfied = true
						for _, mu := range mus {
							if f.state[types.ExprString(sel.X)+"."+mu] != lockHeld {
								satisfied = false
								break
							}
						}
					}
				}
				if !satisfied {
					if obj := rootObject(info, sel.X); obj != nil && allocs[u.decl][obj] {
						satisfied = true
					}
				}
				sites = append(sites, site{callee, u.decl, satisfied})
			})
		})
	}

	sitesOf := map[*ast.FuncDecl][]site{}
	for _, s := range sites {
		d := declOf[s.callee]
		sitesOf[d] = append(sitesOf[d], s)
	}

	for changed := true; changed; {
		changed = false
		for _, u := range units {
			if exempt[u.decl] {
				continue
			}
			fn, ok := info.Defs[u.decl.Name].(*types.Func)
			if !ok {
				continue
			}
			callers := pass.Calls.Callers[fn]
			if len(callers) == 0 {
				continue
			}
			ok = true
			for _, caller := range callers {
				cd := declOf[caller]
				if cd == nil {
					ok = false // called from outside this package: assume shared
					break
				}
				if exempt[cd] || allocTypes[cd][receiverNamed(fn)] {
					continue
				}
				ok = false
				break
			}
			if !ok {
				continue
			}
			// Every caller is exempt or allocates the receiver; additionally
			// accept mixed cases where individual callsites hold the lock.
			for _, s := range sitesOf[u.decl] {
				if !(s.satisfied || exempt[s.caller] || allocTypes[s.caller][receiverNamed(fn)]) {
					ok = false
					break
				}
			}
			if ok {
				exempt[u.decl] = true
				changed = true
			}
		}
	}

	// Second form: functions whose callers are not all exempt, but whose
	// every individual callsite is satisfied (lock held or local receiver).
	for changed := true; changed; {
		changed = false
		for _, u := range units {
			if exempt[u.decl] {
				continue
			}
			fn, ok := info.Defs[u.decl.Name].(*types.Func)
			if !ok {
				continue
			}
			callers := pass.Calls.Callers[fn]
			ss := sitesOf[u.decl]
			if len(callers) == 0 || len(ss) == 0 {
				continue
			}
			allIn := true
			for _, caller := range callers {
				if declOf[caller] == nil {
					allIn = false
					break
				}
			}
			if !allIn {
				continue
			}
			ok = true
			for _, s := range ss {
				if !(s.satisfied || exempt[s.caller]) {
					ok = false
					break
				}
			}
			if ok {
				exempt[u.decl] = true
				changed = true
			}
		}
	}
	return exempt
}

// receiverNamed returns the named struct type of a method's receiver.
func receiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	n, _ := derefNamed(sig.Recv().Type())
	return n
}

// rootObject returns the object of the leftmost identifier of an access
// chain (x in x.a.b[i].c).
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil {
				return obj
			}
			return info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// checkUnit reports the per-path mutex violations of one function body and
// accumulates inference evidence.
func checkUnit(pass *Pass, u lockUnit, g *Graph, res *FlowResult[lockFacts],
	guards map[*types.Var]guardInfo, localObjs map[types.Object]bool,
	exempt bool, stats map[*types.Var]*candStat) {

	info := pass.Pkg.Info
	unlockKeys := map[string]bool{}
	ast.Inspect(u.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if _, ok := n.(*ast.DeferStmt); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if key, name, ok := mutexMethod(info, call); ok && (name == "Unlock" || name == "RUnlock") {
				unlockKeys[key] = true
			}
		}
		return true
	})

	res.Walk(g, func(f lockFacts, n ast.Node) {
		if _, ok := n.(*ast.DeferStmt); ok {
			return // deferred calls run at return, not here
		}
		inspectCalls(n, func(call *ast.CallExpr) {
			key, name, ok := mutexMethod(info, call)
			if !ok {
				return
			}
			switch name {
			case "Lock":
				if f.state[key] == lockHeld {
					pass.Reportf(call.Pos(), "second %s.Lock on a path where the lock is already held; this deadlocks", key)
				}
			case "Unlock", "RUnlock":
				if f.state[key] == lockFree {
					pass.Reportf(call.Pos(), "%s.%s on a path where the lock is already released; this panics at run time", key, name)
				}
			}
		})
		eachFieldAccess(info, n, func(sel *ast.SelectorExpr, write bool) {
			obj, ok := info.Uses[sel.Sel].(*types.Var)
			if !ok {
				return
			}
			gi, ok := guards[obj]
			if !ok {
				return
			}
			if exempt {
				return
			}
			if root := rootObject(info, sel.X); root != nil && localObjs[root] {
				return
			}
			key := types.ExprString(sel.X) + "." + gi.mu
			locked := f.state[key] == lockHeld
			if gi.annotated {
				if !locked {
					pass.Reportf(sel.Sel.Pos(), "%s.%s is guarded by %s but accessed on a path where the lock is not held",
						gi.structName, obj.Name(), gi.mu)
				}
				return
			}
			st := stats[obj]
			if st == nil {
				st = &candStat{}
				stats[obj] = st
			}
			switch {
			case locked && write:
				st.lockedW++
			case locked:
				st.lockedR++
			case write:
				st.unlockedW++
				st.unlockedPos = append(st.unlockedPos, sel.Sel.Pos())
			default:
				st.unlockedR++
				st.unlockedPos = append(st.unlockedPos, sel.Sel.Pos())
			}
		})
	})

	if exempt {
		return
	}
	leaked := map[string]bool{}
	for _, f := range res.ExitFacts(g) {
		for key, st := range f.state {
			if st == lockHeld && !f.defers[key] && unlockKeys[key] {
				leaked[key] = true
			}
		}
	}
	keys := make([]string, 0, len(leaked))
	for k := range leaked {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pass.Reportf(u.pos, "%s is released on some return paths but still held on others; unlock on every path or defer the unlock", k)
	}
}

// eachFieldAccess visits every selector expression under a leaf node with
// its read/write classification, skipping function literal interiors.
func eachFieldAccess(info *types.Info, n ast.Node, visit func(sel *ast.SelectorExpr, write bool)) {
	writes := map[ast.Expr]bool{}
	switch st := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range st.Lhs {
			writes[ast.Unparen(lhs)] = true
		}
	case *ast.IncDecStmt:
		writes[ast.Unparen(st.X)] = true
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if sel, ok := m.(*ast.SelectorExpr); ok {
			visit(sel, writes[sel])
		}
		return true
	})
}

// lockCopyCheck flags mutex-bearing structs passed (or received) by value:
// the copy forks the lock and the two halves synchronize nothing.
func lockCopyCheck(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			var fields []*ast.Field
			if fd.Recv != nil {
				fields = append(fields, fd.Recv.List...)
			}
			if fd.Type.Params != nil {
				fields = append(fields, fd.Type.Params.List...)
			}
			for _, fld := range fields {
				tv, ok := info.Types[fld.Type]
				if !ok {
					continue
				}
				if _, isPtr := tv.Type.(*types.Pointer); isPtr {
					continue
				}
				if !containsMutex(tv.Type, map[types.Type]bool{}) {
					continue
				}
				pass.Reportf(fld.Type.Pos(), "%s is passed by value and contains a sync.Mutex; the copy forks the lock — pass a pointer",
					types.TypeString(tv.Type, types.RelativeTo(pass.Pkg.Types)))
			}
		}
	}
}

// containsMutex reports whether a value of type t embeds a mutex by value
// (directly or through nested structs and arrays).
func containsMutex(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if isMutexType(t) {
		return true
	}
	switch v := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < v.NumFields(); i++ {
			if containsMutex(v.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutex(v.Elem(), seen)
	}
	return false
}
