// Package lint is a from-scratch static-analysis engine for this module,
// built on the standard library's go/parser and go/types only. It exists to
// turn the simulation's correctness invariants — device time comes from the
// cycle model, results are bit-for-bit deterministic, errors stay
// classifiable — from conventions into machine-checked rules that run in CI
// on every change (see cmd/huffvet).
//
// The engine loads every package of the module (load.go), type-checks it
// against an offline source importer, and runs a registry of project-
// specific analyzers over the typed syntax trees. Diagnostics carry exact
// file/line/column positions and can be suppressed, one site at a time, with
// an explanatory directive:
//
//	//lint:ignore <analyzer> <reason>
//
// placed either at the end of the offending line or on the line directly
// above it. The reason is mandatory: a suppression without one is itself a
// diagnostic, so every tolerated violation documents why it is safe.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at an exact source position.
type Diagnostic struct {
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string `json:"analyzer"`
	// File is the file path as the loader saw it.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Message states the violated invariant and the expected fix.
	Message string `json:"message"`
}

// String renders the diagnostic in the conventional path:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named, self-contained invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ignore
	// directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Paths, when non-empty, restricts the analyzer to packages whose
	// import path ends in one of these module-relative suffixes (e.g.
	// "internal/accel"). An empty list applies the analyzer everywhere.
	Paths []string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// applies reports whether the analyzer covers the given import path.
func (a *Analyzer) applies(pkgPath string) bool {
	if len(a.Paths) == 0 {
		return true
	}
	for _, p := range a.Paths {
		if pkgPath == p || strings.HasSuffix(pkgPath, "/"+p) {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Calls is the module-level call graph over every package of the run,
	// for analyzers that chase facts across function boundaries. Nil when
	// the driver runs without one (unit harnesses).
	Calls *CallGraph

	diags *[]Diagnostic
}

// Reportf records a finding at pos unless a //lint:ignore directive covers
// it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers []string // analyzer names, comma-separated in the source
	reason    string
	pos       token.Position
	// used records, per analyzer name, whether the directive actually
	// silenced a finding during the run. A directive naming an analyzer
	// that ran but never fired at the site is stale, and reported.
	used map[string]bool
}

// covers reports whether the directive silences the named analyzer.
func (d *ignoreDirective) covers(analyzer string) bool {
	for _, a := range d.analyzers {
		if a == analyzer || a == "*" {
			return true
		}
	}
	return false
}

// directivePrefix introduces a suppression comment.
const directivePrefix = "//lint:ignore"

// parseDirectives extracts every //lint:ignore directive of a file, keyed by
// the line the directive covers: its own line (trailing-comment form) and
// the line below it (preceding-comment form). The flat list holds each
// directive once (the line map double-keys them) for staleness reporting.
// Malformed directives — no analyzer name, or no reason — are returned
// separately so the engine can report them: an unexplained suppression is
// itself a violation.
func parseDirectives(fset *token.FileSet, f *ast.File) (byLine map[string][]*ignoreDirective, all []*ignoreDirective, malformed []Diagnostic) {
	byLine = map[string][]*ignoreDirective{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				malformed = append(malformed, Diagnostic{
					Analyzer: "ignore",
					File:     pos.Filename,
					Line:     pos.Line,
					Col:      pos.Column,
					Message:  "malformed directive: want //lint:ignore <analyzer> <reason>",
				})
				continue
			}
			d := &ignoreDirective{
				analyzers: strings.Split(fields[0], ","),
				reason:    strings.Join(fields[1:], " "),
				pos:       pos,
				used:      map[string]bool{},
			}
			all = append(all, d)
			for _, line := range []int{pos.Line, pos.Line + 1} {
				key := lineKey(pos.Filename, line)
				byLine[key] = append(byLine[key], d)
			}
		}
	}
	return byLine, all, malformed
}

// lineKey keys the suppression map by file and line.
func lineKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

// RunAnalyzers applies every applicable analyzer to every package and
// returns the surviving diagnostics sorted by file, line, and column.
// Malformed suppression directives are reported alongside analyzer
// findings, as are stale ones: a directive naming an analyzer that ran over
// its package but silenced nothing documents a violation that no longer
// exists, and must be pruned so suppressions stay an accurate audit trail.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	cg := BuildCallGraph(pkgs)
	ran := map[string]bool{}
	for _, pkg := range pkgs {
		diags = append(diags, pkg.malformed...)
		if pkg.Types == nil {
			continue // nothing parsed; the driver reports pkg.TypeErrors
		}
		for _, a := range analyzers {
			if !a.applies(pkg.Path) {
				continue
			}
			ran[a.Name] = true
			pass := &Pass{Analyzer: a, Pkg: pkg, Calls: cg, diags: &diags}
			a.Run(pass)
		}
	}
	for _, pkg := range pkgs {
		for _, d := range pkg.directives {
			for _, name := range d.analyzers {
				if name == "*" || !ran[name] || d.used[name] {
					continue
				}
				diags = append(diags, Diagnostic{
					Analyzer: "ignore",
					File:     d.pos.Filename,
					Line:     d.pos.Line,
					Col:      d.pos.Column,
					Message:  fmt.Sprintf("stale directive: %s does not fire here; remove the suppression", name),
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Col != diags[j].Col {
			return diags[i].Col < diags[j].Col
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}
