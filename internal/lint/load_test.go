package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/huffduff/huffduff/internal/lint"
)

// writeTree lays out a throwaway module for loader edge-case tests.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func loadAll(t *testing.T, dir string) []*lint.Package {
	t.Helper()
	loader, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return pkgs
}

func pkgByDir(pkgs []*lint.Package, base string) *lint.Package {
	for _, p := range pkgs {
		if filepath.Base(p.Dir) == base {
			return p
		}
	}
	return nil
}

// TestLoadSkipsTestOnlyPackage: a directory holding only _test.go files is
// not a package from the analyzers' point of view and must be skipped, not
// failed.
func TestLoadSkipsTestOnlyPackage(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":             "module example.com/m\n\ngo 1.21\n",
		"ok/ok.go":           "package ok\n\nfunc Fine() int { return 1 }\n",
		"onlytest/x_test.go": "package onlytest\n\nimport \"testing\"\n\nfunc TestX(t *testing.T) {}\n",
		"onlytest/note.txt":  "not a go file\n",
	})
	pkgs := loadAll(t, dir)
	if got := pkgByDir(pkgs, "onlytest"); got != nil {
		t.Errorf("test-only directory loaded as package %s", got.Path)
	}
	if pkgByDir(pkgs, "ok") == nil {
		t.Errorf("sibling package missing from load: %v", pkgs)
	}
}

// TestLoadBuildTagExclusion: a file excluded by its //go:build line would
// not compile into the binary under test, so the loader must not parse or
// type-check it. The excluded file references an undefined symbol — if it
// slipped in, the package would carry type errors.
func TestLoadBuildTagExclusion(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":         "module example.com/m\n\ngo 1.21\n",
		"tagged/keep.go": "package tagged\n\nfunc Keep() int { return 1 }\n",
		"tagged/skip.go": "//go:build neverever\n\npackage tagged\n\nvar X = undefinedSymbol\n",
		// A package whose every file is excluded is skipped entirely.
		"ghost/all.go": "//go:build neverever\n\npackage ghost\n",
	})
	pkgs := loadAll(t, dir)
	tagged := pkgByDir(pkgs, "tagged")
	if tagged == nil {
		t.Fatalf("tagged package missing from load: %v", pkgs)
	}
	if len(tagged.Files) != 1 {
		t.Errorf("tagged package parsed %d files, want 1 (skip.go excluded)", len(tagged.Files))
	}
	if len(tagged.TypeErrors) != 0 {
		t.Errorf("tagged package has type errors, so the excluded file was checked: %v", tagged.TypeErrors)
	}
	if got := pkgByDir(pkgs, "ghost"); got != nil {
		t.Errorf("fully excluded directory loaded as package %s", got.Path)
	}
}

// TestLoadSurvivesBrokenPackage: a syntax or type-check failure mid-module
// must be reported on the failing package, not abort the run — the rest of
// the module still loads and the analyzers still run without panicking.
func TestLoadSurvivesBrokenPackage(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":            "module example.com/m\n\ngo 1.21\n",
		"ok/ok.go":          "package ok\n\nfunc Fine() int { return 1 }\n",
		"broken/broken.go":  "package broken\n\nfunc Oops( {\n",
		"broken/fine.go":    "package broken\n\nfunc Fine() int { return 2 }\n",
		"typebad/t.go":      "package typebad\n\nvar X = undefinedIdent\n",
		"allbroken/only.go": "package allbroken\n\nfunc (\n",
	})
	pkgs := loadAll(t, dir)

	broken := pkgByDir(pkgs, "broken")
	if broken == nil {
		t.Fatal("broken package missing: a syntax error aborted the load")
	}
	if len(broken.TypeErrors) == 0 {
		t.Error("broken package reports no errors for its unparseable file")
	}
	if len(broken.Files) != 1 {
		t.Errorf("broken package parsed %d files, want 1 (the file that parses)", len(broken.Files))
	}

	typebad := pkgByDir(pkgs, "typebad")
	if typebad == nil {
		t.Fatal("typebad package missing: a type error aborted the load")
	}
	if len(typebad.TypeErrors) == 0 {
		t.Error("typebad package reports no type errors")
	}

	allbroken := pkgByDir(pkgs, "allbroken")
	if allbroken == nil {
		t.Fatal("allbroken package missing: it must surface its errors, not vanish")
	}
	if len(allbroken.TypeErrors) == 0 || len(allbroken.Files) != 0 {
		t.Errorf("allbroken: %d files, errors %v; want 0 files and recorded errors",
			len(allbroken.Files), allbroken.TypeErrors)
	}

	if pkgByDir(pkgs, "ok") == nil {
		t.Fatal("healthy sibling package missing from load")
	}

	// The analyzers run over the mix — including the file-less package with
	// nil type info — without panicking or inventing findings.
	if diags := lint.RunAnalyzers(pkgs, lint.All()); len(diags) != 0 {
		t.Errorf("unexpected diagnostics on the broken module: %v", diags)
	}
}
