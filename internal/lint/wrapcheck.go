package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WrapCheck flags errors that cross a package boundary in the attack
// pipeline without gaining context: a bare `return err` where err's last
// assignment came from a call into another package, returned without
// fmt.Errorf("...: %w") wrapping or a faults constructor. The PR-1 error
// taxonomy (internal/faults) is only classifiable — Retryable, StageOf,
// errors.Is against the sentinels — if every hop preserves the chain and
// adds where it happened; a naked forward loses the stage attribution that
// retry and degradation decisions key on.
var WrapCheck = &Analyzer{
	Name: "wrapcheck",
	Doc: "errors crossing package boundaries in the attack pipeline must wrap " +
		"with %w or a faults constructor",
	Paths: []string{
		"internal/huffduff",
		"internal/probe",
		"internal/chaos",
		"internal/telemetry",
	},
	Run: runWrapCheck,
}

// wrapExemptPkgs are packages whose returned errors need no further
// wrapping: errors and fmt *create* errors (with the caller's own context),
// and the faults constructors already attribute stage and class.
func wrapExempt(pkgPath, fn string) bool {
	switch pkgPath {
	case "errors":
		return true
	case "fmt":
		return fn == "Errorf"
	}
	return strings.HasSuffix(pkgPath, "internal/faults")
}

func runWrapCheck(pass *Pass) {
	eachFuncBody(pass.Pkg.Files, func(body *ast.BlockStmt) {
		wrapCheckBody(pass, body)
	})
}

// wrapCheckBody analyzes one function body. It tracks, in source order, the
// call each error-typed variable was last assigned from; a return of a bare
// error variable whose origin is a call into a foreign package is a
// finding. Assignments from non-call expressions (fields, channel receives,
// parameters) clear the origin — the analyzer only reports what it can
// prove.
func wrapCheckBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	origin := map[types.Object]*ast.CallExpr{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Nested literals are separate bodies with their own scopes;
			// eachFuncBody visits them independently.
			return n.Body == body
		case *ast.AssignStmt:
			trackErrAssign(info, origin, n)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				switch res := ast.Unparen(res).(type) {
				case *ast.Ident:
					// Bare variable: trace it to its origin call.
					if !isErrorType(info.TypeOf(res)) {
						continue
					}
					call, ok := origin[info.Uses[res]]
					if !ok {
						continue
					}
					reportForeignError(pass, res.Pos(), call)
				case *ast.CallExpr:
					// Direct tail call: return pkg.Fn(...) forwarding the
					// foreign error with no chance to add context. Only
					// single-value error results count — a tuple forward
					// would need restructuring, which the variable form of
					// the fix produces anyway.
					if isErrorType(info.TypeOf(res)) {
						reportForeignError(pass, res.Pos(), res)
					}
				}
			}
		}
		return true
	})
}

// reportForeignError reports a finding when the call's callee lives in a
// foreign, non-exempt package.
func reportForeignError(pass *Pass, pos token.Pos, call *ast.CallExpr) {
	callee := calleeObject(pass.Pkg.Info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg() == pass.Pkg.Types {
		return
	}
	path := callee.Pkg().Path()
	if wrapExempt(path, callee.Name()) {
		return
	}
	pass.Reportf(pos,
		"error from %s.%s returned across the package boundary unwrapped; add context with fmt.Errorf(\"...: %%w\", err) or a faults constructor",
		path, callee.Name())
}

// trackErrAssign updates the origin map for one assignment statement.
func trackErrAssign(info *types.Info, origin map[types.Object]*ast.CallExpr, a *ast.AssignStmt) {
	// Tuple form: a, err := f(...). Every error-typed LHS ident shares the
	// single call as its origin.
	if len(a.Rhs) == 1 {
		call, isCall := ast.Unparen(a.Rhs[0]).(*ast.CallExpr)
		for _, lhs := range a.Lhs {
			setErrOrigin(info, origin, lhs, call, isCall)
		}
		return
	}
	// Parallel form: x, y = f(), g(). Positions pair up.
	for i, lhs := range a.Lhs {
		if i >= len(a.Rhs) {
			break
		}
		call, isCall := ast.Unparen(a.Rhs[i]).(*ast.CallExpr)
		setErrOrigin(info, origin, lhs, call, isCall)
	}
}

// setErrOrigin records (or clears) the origin call of one assigned ident.
func setErrOrigin(info *types.Info, origin map[types.Object]*ast.CallExpr, lhs ast.Expr, call *ast.CallExpr, isCall bool) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" || !isErrorType(info.TypeOf(id)) {
		return
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil {
		return
	}
	if isCall {
		origin[obj] = call
	} else {
		delete(origin, obj)
	}
}
