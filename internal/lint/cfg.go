package lint

// Intra-procedural control-flow graphs over go/ast, built from scratch on
// the standard library only. The flow-aware analyzers (crashsafe, lockguard)
// need to reason about *paths* — "is the lock held on every route to this
// field access", "does the failed-fsync edge fall through to offset reuse" —
// which the purely syntactic walks of the first-generation analyzers cannot
// express. A Graph decomposes one function body into basic blocks joined by
// edges; branch edges carry the controlling condition and its value, so a
// dataflow pass (dataflow.go) can prune paths a config flag makes
// infeasible (e.g. the NoSync test-only branches).
//
// The builder covers the statement forms this module uses: if/else, for,
// range, switch, type switch, select, labeled statements, break/continue/
// goto/fallthrough, return, and panic-like terminators. Function literals
// are treated as opaque values — each literal body gets its own Graph.

import (
	"go/ast"
)

// Block is one basic block: a maximal run of straight-line code. Nodes holds
// the leaf statements executed in order, plus the condition expressions
// evaluated at the block's end (an if or for condition); compound statements
// never appear — their pieces are distributed across blocks.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Edge
	Preds []*Edge
}

// Edge is one control-flow edge. Cond is non-nil on the two branch edges of
// an if or for condition; Branch is the value Cond takes along the edge.
type Edge struct {
	From, To *Block
	Cond     ast.Expr
	Branch   bool
}

// Graph is the CFG of one function body. Entry has no predecessors; every
// return, panic, and fall-off-the-end path edges into Exit.
type Graph struct {
	Entry, Exit *Block
	Blocks      []*Block
}

// BuildCFG constructs the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *Graph {
	b := &cfgBuilder{g: &Graph{}, labels: map[string]*labelInfo{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmts(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.g.Exit, nil, false)
	}
	return b.g
}

// loopFrame tracks the jump targets a break or continue resolves to.
type loopFrame struct {
	label     string
	breakTo   *Block
	contTo    *Block // nil inside switch/select frames
	isLoop    bool
	nextCase  *Block // fallthrough target inside a switch case
	savedNext *Block
}

// labelInfo is a goto/labeled-statement target, created on first reference
// so forward gotos resolve.
type labelInfo struct {
	block *Block
}

type cfgBuilder struct {
	g      *Graph
	cur    *Block // nil while the current position is unreachable
	frames []*loopFrame
	labels map[string]*labelInfo
	// pendingLabel names the label attached to the next loop/switch, so
	// labeled break/continue resolve to the right frame.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block, cond ast.Expr, branch bool) {
	e := &Edge{From: from, To: to, Cond: cond, Branch: branch}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// add appends a leaf node to the current block (no-op while unreachable).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// start makes blk current, linking from the previous block when reachable.
func (b *cfgBuilder) start(blk *Block) {
	if b.cur != nil {
		b.edge(b.cur, blk, nil, false)
	}
	b.cur = blk
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// terminates reports whether a call expression never returns (panic and the
// handful of process-exit calls this module could plausibly grow).
func terminates(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return (id.Name == "os" && fun.Sel.Name == "Exit") ||
				(id.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf"))
		}
	}
	return false
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmts(st.List)
	case *ast.IfStmt:
		b.ifStmt(st)
	case *ast.ForStmt:
		b.forStmt(st, label)
	case *ast.RangeStmt:
		b.rangeStmt(st, label)
	case *ast.SwitchStmt:
		b.switchStmt(st, label)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(st, label)
	case *ast.SelectStmt:
		b.selectStmt(st, label)
	case *ast.LabeledStmt:
		b.labeledStmt(st)
	case *ast.ReturnStmt:
		b.add(st)
		if b.cur != nil {
			b.edge(b.cur, b.g.Exit, nil, false)
		}
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(st)
	case *ast.ExprStmt:
		b.add(st)
		if call, ok := st.X.(*ast.CallExpr); ok && terminates(call) {
			if b.cur != nil {
				b.edge(b.cur, b.g.Exit, nil, false)
			}
			b.cur = nil
		}
	default:
		// Leaf statements: assignments, declarations, defer, go, send,
		// inc/dec, empty.
		b.add(st)
	}
}

func (b *cfgBuilder) ifStmt(st *ast.IfStmt) {
	if st.Init != nil {
		b.add(st.Init)
	}
	b.add(st.Cond)
	cond := b.cur
	join := b.newBlock()
	then := b.newBlock()
	if cond != nil {
		b.edge(cond, then, st.Cond, true)
	}
	b.cur = then
	b.stmts(st.Body.List)
	if b.cur != nil {
		b.edge(b.cur, join, nil, false)
	}
	if st.Else != nil {
		els := b.newBlock()
		if cond != nil {
			b.edge(cond, els, st.Cond, false)
		}
		b.cur = els
		b.stmt(st.Else)
		if b.cur != nil {
			b.edge(b.cur, join, nil, false)
		}
	} else if cond != nil {
		b.edge(cond, join, st.Cond, false)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(st *ast.ForStmt, label string) {
	if st.Init != nil {
		b.add(st.Init)
	}
	head := b.newBlock()
	b.start(head)
	after := b.newBlock()
	body := b.newBlock()
	if st.Cond != nil {
		b.add(st.Cond)
		b.edge(head, body, st.Cond, true)
		b.edge(head, after, st.Cond, false)
	} else {
		// for {}: after is reachable only through break.
		b.edge(head, body, nil, false)
	}
	post := head
	if st.Post != nil {
		post = b.newBlock()
		b.cur = post
		b.add(st.Post)
		b.edge(post, head, nil, false)
	}
	b.frames = append(b.frames, &loopFrame{label: label, breakTo: after, contTo: post, isLoop: true})
	b.cur = body
	b.stmts(st.Body.List)
	if b.cur != nil {
		b.edge(b.cur, post, nil, false)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(st *ast.RangeStmt, label string) {
	head := b.newBlock()
	b.start(head)
	head.Nodes = append(head.Nodes, st) // the range clause itself (X, Key, Value)
	after := b.newBlock()
	body := b.newBlock()
	b.edge(head, body, nil, false)
	b.edge(head, after, nil, false)
	b.frames = append(b.frames, &loopFrame{label: label, breakTo: after, contTo: head, isLoop: true})
	b.cur = body
	b.stmts(st.Body.List)
	if b.cur != nil {
		b.edge(b.cur, head, nil, false)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

func (b *cfgBuilder) switchStmt(st *ast.SwitchStmt, label string) {
	if st.Init != nil {
		b.add(st.Init)
	}
	if st.Tag != nil {
		b.add(st.Tag)
	}
	b.caseClauses(st.Body.List, label, func(cc *ast.CaseClause) []ast.Node {
		nodes := make([]ast.Node, len(cc.List))
		for i, e := range cc.List {
			nodes[i] = e
		}
		return nodes
	})
}

func (b *cfgBuilder) typeSwitchStmt(st *ast.TypeSwitchStmt, label string) {
	if st.Init != nil {
		b.add(st.Init)
	}
	b.add(st.Assign)
	b.caseClauses(st.Body.List, label, func(cc *ast.CaseClause) []ast.Node { return nil })
}

// caseClauses builds the shared shape of switch and type-switch bodies.
func (b *cfgBuilder) caseClauses(clauses []ast.Stmt, label string, caseNodes func(*ast.CaseClause) []ast.Node) {
	head := b.cur
	join := b.newBlock()
	frame := &loopFrame{label: label, breakTo: join}
	b.frames = append(b.frames, frame)
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cs := range clauses {
		cc := cs.(*ast.CaseClause)
		bodies[i] = b.newBlock()
		if len(cc.List) == 0 {
			hasDefault = true
		}
		bodies[i].Nodes = append(bodies[i].Nodes, caseNodes(cc)...)
		if head != nil {
			b.edge(head, bodies[i], nil, false)
		}
	}
	for i, cs := range clauses {
		cc := cs.(*ast.CaseClause)
		frame.nextCase = nil
		if i+1 < len(bodies) {
			frame.nextCase = bodies[i+1]
		}
		b.cur = bodies[i]
		b.stmts(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, join, nil, false)
		}
	}
	if !hasDefault && head != nil {
		b.edge(head, join, nil, false)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = join
}

func (b *cfgBuilder) selectStmt(st *ast.SelectStmt, label string) {
	head := b.cur
	join := b.newBlock()
	frame := &loopFrame{label: label, breakTo: join}
	b.frames = append(b.frames, frame)
	for _, cs := range st.Body.List {
		cc := cs.(*ast.CommClause)
		body := b.newBlock()
		if cc.Comm != nil {
			body.Nodes = append(body.Nodes, cc.Comm)
		}
		if head != nil {
			b.edge(head, body, nil, false)
		}
		b.cur = body
		b.stmts(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, join, nil, false)
		}
	}
	if len(st.Body.List) == 0 && head != nil {
		// select {} blocks forever: no edge to join.
		b.cur = nil
		b.frames = b.frames[:len(b.frames)-1]
		return
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = join
}

func (b *cfgBuilder) labeledStmt(st *ast.LabeledStmt) {
	li := b.label(st.Label.Name)
	b.start(li.block)
	b.pendingLabel = st.Label.Name
	b.stmt(st.Stmt)
}

func (b *cfgBuilder) label(name string) *labelInfo {
	if li, ok := b.labels[name]; ok {
		return li
	}
	li := &labelInfo{block: b.newBlock()}
	b.labels[name] = li
	return li
}

func (b *cfgBuilder) branchStmt(st *ast.BranchStmt) {
	if b.cur == nil {
		return
	}
	name := ""
	if st.Label != nil {
		name = st.Label.Name
	}
	switch st.Tok.String() {
	case "break":
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if name == "" || f.label == name {
				b.edge(b.cur, f.breakTo, nil, false)
				break
			}
		}
	case "continue":
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.isLoop && (name == "" || f.label == name) {
				b.edge(b.cur, f.contTo, nil, false)
				break
			}
		}
	case "goto":
		b.edge(b.cur, b.label(name).block, nil, false)
	case "fallthrough":
		for i := len(b.frames) - 1; i >= 0; i-- {
			if b.frames[i].nextCase != nil {
				b.edge(b.cur, b.frames[i].nextCase, nil, false)
				break
			}
		}
	}
	b.cur = nil
}
