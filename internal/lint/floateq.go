package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands in the numeric
// core. Accumulated rounding makes exact equality a latent heisenbug — a
// solve that agrees on one machine and disagrees on another — so
// comparisons must go through tensor.ApproxEqual or an explicit tolerance.
// Exact-sentinel checks (pruned weights are exactly zero by construction)
// are legitimate but rare enough to earn a //lint:ignore with the reason
// spelled out. The NaN idiom x != x is recognized and allowed.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "forbid ==/!= on floating-point operands; use tensor.ApproxEqual or " +
		"an explicit tolerance",
	Paths: []string{
		"internal/tensor",
		"internal/nn",
		"internal/huffduff",
	},
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(info, bin.X) && !isFloat(info, bin.Y) {
				return true
			}
			// x != x / x == x is the portable NaN test.
			if sameIdent(bin.X, bin.Y) {
				return true
			}
			pass.Reportf(bin.Pos(),
				"%s compares floating-point values exactly; use tensor.ApproxEqual or an explicit tolerance", bin.Op)
			return true
		})
	}
}

// isFloat reports whether the expression's type is (or aliases) a float.
func isFloat(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sameIdent reports whether both expressions are the same identifier.
func sameIdent(x, y ast.Expr) bool {
	xi, okX := ast.Unparen(x).(*ast.Ident)
	yi, okY := ast.Unparen(y).(*ast.Ident)
	return okX && okY && xi.Name == yi.Name
}
