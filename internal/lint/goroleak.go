package lint

// goroleak enforces goroutine lifecycle discipline in the long-lived
// subsystems (store, daemon, convergence ledger): every `go` statement
// whose body loops must be able to observe a termination signal, or the
// goroutine outlives its owner — the subscriber/stream leak class the
// ROADMAP's fleet work would otherwise multiply.
//
// A spawned body passes if it contains no loop (it runs to completion on
// its own), or if the body — or a module function it calls within three
// hops — reaches any of: a ctx.Done() receive, a channel receive (a closed
// quit channel unblocks it), a range over a channel (terminates when the
// channel closes), or sync.WaitGroup tracking (Done/Wait — the owner
// awaits it). Dynamically dispatched spawns (function values) are skipped:
// the callee cannot be resolved statically, and guessing would make the
// analyzer cry wolf.

import (
	"go/ast"
	"go/types"
)

// GoroLeak is the goroutine-termination analyzer.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "Every goroutine spawned in the daemon/store/converge packages " +
		"must reach a termination signal: ctx.Done(), a closed quit " +
		"channel, or a tracked sync.WaitGroup.",
	Paths: []string{"internal/store", "internal/telemetry", "internal/converge"},
	Run:   runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			goSt, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, callee := spawnedBody(pass, goSt.Call)
			if body == nil {
				return true // dynamic spawn: unresolvable, skip
			}
			if !containsLoop(body) {
				return true // straight-line goroutine: finishes on its own
			}
			if terminationSignal(pass, body, callee, 3) {
				return true
			}
			pass.Reportf(goSt.Pos(), "goroutine loops with no reachable termination signal "+
				"(ctx.Done, channel receive, or WaitGroup tracking); it outlives its owner — "+
				"thread a quit channel or context through it")
			return true
		})
	}
}

// spawnedBody resolves the body a go statement runs: a function literal
// directly, or the declaration of a statically resolvable callee.
func spawnedBody(pass *Pass, call *ast.CallExpr) (*ast.BlockStmt, *types.Func) {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return lit.Body, nil
	}
	callee, ok := calleeObject(pass.Pkg.Info, call).(*types.Func)
	if !ok || pass.Calls == nil {
		return nil, nil
	}
	decl := pass.Calls.Decls[callee]
	if decl == nil {
		return nil, nil
	}
	return decl.Body, callee
}

// containsLoop reports whether the body has any for/range statement,
// including inside nested literals (a looping closure the goroutine calls
// still loops on the goroutine's stack).
func containsLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// terminationSignal searches the body, and the bodies of module functions
// it calls up to depth hops away, for an observable shutdown signal.
func terminationSignal(pass *Pass, body *ast.BlockStmt, fn *types.Func, depth int) bool {
	if hasSignal(pass.Pkg.Info, body) {
		return true
	}
	if depth == 0 || pass.Calls == nil {
		return false
	}
	// Collect module callees of the body and recurse into their packages'
	// type info through the call graph.
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, ok := calleeObject(pass.Pkg.Info, call).(*types.Func)
		if !ok || callee == fn {
			return true
		}
		decl := pass.Calls.Decls[callee]
		if decl == nil || decl.Body == nil {
			return true
		}
		calleePass := pass
		if declPkg := pass.Calls.DeclPkg[callee]; declPkg != nil && declPkg != pass.Pkg {
			calleePass = &Pass{Analyzer: pass.Analyzer, Pkg: declPkg, Calls: pass.Calls, diags: pass.diags}
		}
		if terminationSignal(calleePass, decl.Body, callee, depth-1) {
			found = true
		}
		return true
	})
	return found
}

// hasSignal reports whether the body itself observes a termination signal.
func hasSignal(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.UnaryExpr:
			// <-ch: a receive; a closed quit channel unblocks it.
			if v.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			// range over a channel terminates when the channel closes.
			if tv, ok := info.Types[v.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
				if tv, ok := info.Types[sel.X]; ok {
					if isContextType(tv.Type) && sel.Sel.Name == "Done" {
						found = true
					}
					if isWaitGroup(tv.Type) && (sel.Sel.Name == "Done" || sel.Sel.Name == "Wait") {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isWaitGroup reports whether t is sync.WaitGroup (possibly a pointer).
func isWaitGroup(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
