// Package telemetry turns the post-hoc observability of internal/obs into a
// live service: a campaign daemon that runs attack jobs on a supervised,
// bounded worker pool — with a durable write-ahead journal, crash-resume,
// per-campaign retries, and real backpressure — and an HTTP server exposing
// Prometheus metrics, live campaign progress (including per-layer
// accelerator telemetry), a JSONL event stream, and pprof — what an
// operator watches while campaigns run, instead of what a post-mortem
// reads after they end.
package telemetry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/huffduff/huffduff/internal/accel"
	"github.com/huffduff/huffduff/internal/chaos"
	"github.com/huffduff/huffduff/internal/converge"
	"github.com/huffduff/huffduff/internal/faults"
	attack "github.com/huffduff/huffduff/internal/huffduff"
	"github.com/huffduff/huffduff/internal/models"
	"github.com/huffduff/huffduff/internal/obs"
	"github.com/huffduff/huffduff/internal/prune"
	"github.com/huffduff/huffduff/internal/store"
	"github.com/huffduff/huffduff/internal/tensor"
	"github.com/huffduff/huffduff/internal/trace"
)

// JobSpec is one campaign job as submitted over HTTP POST. Zero fields take
// the defaults below, so `{"model": "smallcnn"}` is a complete job.
type JobSpec struct {
	// Model is a registered model name (models.Names()).
	Model string `json:"model"`
	// Scale is the channel-width divisor (default 16).
	Scale int `json:"scale,omitempty"`
	// Keep is the fraction of weights kept after pruning (default 0.5).
	Keep float64 `json:"keep,omitempty"`
	// Trials and Q shape the probing campaign (defaults 16 and 16).
	Trials int `json:"trials,omitempty"`
	Q      int `json:"q,omitempty"`
	// Seed drives victim construction and probing (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Robust selects the fault-hardened pipeline configuration.
	Robust bool `json:"robust,omitempty"`
	// Chaos wraps the victim in the fault-injection layer with ChaosSeed.
	Chaos     bool  `json:"chaos,omitempty"`
	ChaosSeed int64 `json:"chaos_seed,omitempty"`
	// TimeoutSeconds is the per-job deadline, propagated to the attack via
	// context; 0 uses the daemon's default (DaemonConfig.JobTimeout).
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// withDefaults fills zero fields with the daemon defaults.
func (s JobSpec) withDefaults() JobSpec {
	if s.Scale == 0 {
		s.Scale = 16
	}
	if s.Keep == 0 {
		s.Keep = 0.5
	}
	if s.Trials == 0 {
		s.Trials = 16
	}
	if s.Q == 0 {
		s.Q = 16
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.ChaosSeed == 0 {
		s.ChaosSeed = 1
	}
	return s
}

// Validate rejects specs the daemon could not run.
func (s JobSpec) Validate() error {
	if _, err := models.ByName(s.Model, s.Scale); err != nil {
		return fmt.Errorf("telemetry: spec: %w", err)
	}
	if s.Keep < 0 || s.Keep > 1 {
		return fmt.Errorf("telemetry: keep = %g, want (0, 1]", s.Keep)
	}
	if s.Trials < 1 || s.Q < 2 {
		return fmt.Errorf("telemetry: trials = %d, q = %d, want trials >= 1 and q >= 2", s.Trials, s.Q)
	}
	if s.TimeoutSeconds < 0 {
		return fmt.Errorf("telemetry: timeout_seconds = %g is negative", s.TimeoutSeconds)
	}
	return nil
}

// Campaign states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateRetrying = "retrying"
	StateDone     = "done"
	StateFailed   = "failed"
)

// CampaignSnapshot is the JSON view of one campaign that /campaigns serves:
// its spec, lifecycle timestamps, live pipeline progress, and — live while
// running, final once finished — the per-layer device telemetry the victim
// accelerator accumulated.
type CampaignSnapshot struct {
	ID        int        `json:"id"`
	Spec      JobSpec    `json:"spec"`
	State     string     `json:"state"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	// Attempts counts run attempts so far (1 on the first run); Resumed
	// marks a campaign reconstructed from the journal after a restart.
	Attempts int  `json:"attempts,omitempty"`
	Resumed  bool `json:"resumed,omitempty"`
	// Stage is the pipeline stage most recently entered; ProbeDone/Total
	// track per-position probe progress within the probing stage.
	Stage      string `json:"stage,omitempty"`
	ProbeDone  int    `json:"probe_done,omitempty"`
	ProbeTotal int    `json:"probe_total,omitempty"`
	Error      string `json:"error,omitempty"`
	// ErrorClass is the faults classification of Error (transient, panic,
	// deadline, config, ...), for failed and retrying campaigns.
	ErrorClass string `json:"error_class,omitempty"`
	// Outcome of a finished campaign.
	VictimQueries int  `json:"victim_queries,omitempty"`
	VictimRetries int  `json:"victim_retries,omitempty"`
	SolutionCount int  `json:"solution_count,omitempty"`
	Degraded      bool `json:"degraded,omitempty"`
	// Device is the victim-side telemetry (simulated device time, per-layer
	// DRAM/MAC/encode breakdown), snapshotted live from the machine. It dies
	// with the process unless a campaign store persists the terminal
	// snapshot, in which case a restart restores it from there.
	Device *accel.CampaignStats `json:"device,omitempty"`
	// Converge is the convergence-ledger summary, attached when the campaign
	// reaches a terminal state (the §8.2 collapse endpoints and
	// queries-to-90% numbers, condensed for the stored history).
	Converge *converge.Summary `json:"converge,omitempty"`
}

// campaign is the daemon-internal mutable record behind a snapshot.
type campaign struct {
	mu sync.Mutex
	// snap is guarded by mu.
	snap CampaignSnapshot
	// machine is guarded by mu; set once running. Its own stats are
	// internally lock-protected (accel.statsMu).
	machine *accel.Machine
	// ledger is the campaign's convergence ledger, created at submission
	// (or restore) and closed when the campaign reaches a terminal state —
	// it stays open across retries, so a retried campaign's stream shows
	// the full history. The Ledger type is internally synchronized; the
	// pointer itself is written once before the campaign is published.
	ledger *converge.Ledger
	// queuedSlot marks a campaign occupying an externally-submitted queue
	// slot (backpressure accounting); requeues and retries do not count
	// against QueueDepth. Guarded by Daemon.mu.
	queuedSlot bool
}

// update mutates the record under its lock.
func (c *campaign) update(f func(*CampaignSnapshot)) {
	c.mu.Lock()
	f(&c.snap)
	c.mu.Unlock()
}

// snapshot returns a consistent copy, with live device telemetry attached.
func (c *campaign) snapshot() CampaignSnapshot {
	c.mu.Lock()
	out := c.snap
	m := c.machine
	c.mu.Unlock()
	if m != nil {
		dev := m.Campaign() // concurrency-safe snapshot (accel.statsMu)
		out.Device = &dev
		out.VictimQueries = dev.Runs
	}
	return out
}

// RetryPolicy is the daemon's per-campaign retry policy: exponential
// backoff with jitter, capped attempts. Config errors and daemon-initiated
// cancellations are never retried.
type RetryPolicy struct {
	// MaxAttempts caps total run attempts per campaign, including the
	// first (default 3).
	MaxAttempts int
	// BaseDelay is the backoff before attempt 2; it doubles per attempt up
	// to MaxDelay (defaults 1s and 30s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter spreads each delay uniformly in ±Jitter fraction (default
	// 0.2), so a burst of same-class failures does not retry in lockstep.
	Jitter float64
	// Seed drives the jitter randomness (default 1), keeping retry
	// schedules reproducible.
	Seed int64
}

// withDefaults fills zero fields with the default policy.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Second
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 30 * time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// DaemonConfig sizes the campaign daemon.
type DaemonConfig struct {
	// Workers is the worker-pool size (default 2).
	Workers int
	// QueueDepth bounds the submitted-but-unstarted backlog (default 16);
	// submissions beyond it are rejected (HTTP 429 with Retry-After)
	// rather than buffered without bound. Journal requeues and retries are
	// internal and exempt.
	QueueDepth int
	// Recorder receives every campaign's spans and metrics — typically an
	// obs.Fanout of the serving Collector, a FlightRecorder, and an
	// optional JSONL file sink. Nil runs campaigns uninstrumented.
	Recorder obs.Recorder
	// Journal, when set, makes the daemon crash-safe: submissions and
	// state transitions are journaled durably, and campaigns replayed from
	// the journal at construction are requeued. Nil keeps the daemon
	// ephemeral.
	Journal *Journal
	// Store is the campaign-history store terminal campaigns are persisted
	// into and the queryable read path (/campaigns filters, /campaigns/
	// aggregate) is served from. Nil defaults to an in-memory store, so the
	// query surface behaves identically with and without a data directory;
	// a segment store additionally survives restarts. The daemon does not
	// close the store — the owner that opened it does.
	Store store.Store
	// Flight, when set alongside Store, is the flight recorder whose event
	// tail is captured into the store (the events of the campaign's final
	// attempt window) when a campaign reaches a terminal state.
	Flight *obs.FlightRecorder
	// Retry is the per-campaign retry policy.
	Retry RetryPolicy
	// JobTimeout is the default per-job deadline propagated to the attack
	// via context; 0 means no deadline. JobSpec.TimeoutSeconds overrides
	// it per job.
	JobTimeout time.Duration
	// Faults, when set, injects daemon-level failures (worker panics,
	// stalled runs, journal write errors) for chaos testing.
	Faults *chaos.DaemonFaults
	// RetryAfter is the backoff hint returned with queue-full rejections
	// (default 5s).
	RetryAfter time.Duration
}

// Daemon runs campaign jobs on a supervised bounded worker pool and retains
// every campaign record for /campaigns. It implements the server's
// CampaignSource, Submitter, and HealthSource.
type Daemon struct {
	cfg    DaemonConfig
	jobs   chan *campaign
	wg     sync.WaitGroup
	ctx    context.Context // canceled by Kill and by Shutdown deadline expiry
	cancel context.CancelFunc

	mu sync.Mutex
	// closed is guarded by mu; draining: no new submissions.
	closed bool
	// killed is guarded by mu; crash simulation: no state updates, no
	// journal writes.
	killed bool
	// queued is guarded by mu; externally-submitted jobs awaiting a worker.
	queued int
	// nextID is guarded by mu.
	nextID int
	// byID is guarded by mu.
	byID map[int]*campaign
	// campaigns is guarded by mu; ascending ID.
	campaigns []*campaign
	// retryRng is guarded by mu.
	retryRng *rand.Rand
}

// ErrQueueFull rejects submissions beyond the configured backlog.
var ErrQueueFull = errors.New("telemetry: job queue full")

// ErrShuttingDown rejects submissions after Shutdown began.
var ErrShuttingDown = errors.New("telemetry: daemon shutting down")

// NewDaemon starts the worker pool and returns the running daemon. With a
// journal configured, campaigns replayed from it are restored first:
// terminal ones keep their IDs and results, and the rest are requeued
// (ahead of any new submission) with a journaled requeue marker.
func NewDaemon(cfg DaemonConfig) *Daemon {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 5 * time.Second
	}
	cfg.Retry = cfg.Retry.withDefaults()
	if cfg.Store == nil {
		cfg.Store = store.NewMemory()
	}
	//lint:ignore ctxflow the daemon owns the process-lifetime root context; Kill/Shutdown cancel it
	ctx, cancel := context.WithCancel(context.Background())
	d := &Daemon{
		cfg:      cfg,
		ctx:      ctx,
		cancel:   cancel,
		nextID:   1,
		byID:     map[int]*campaign{},
		retryRng: rand.New(rand.NewSource(cfg.Retry.Seed)),
	}
	var requeue []*campaign
	if cfg.Journal != nil {
		requeue = d.restore(cfg.Journal.Replayed())
	}
	// Reconcile with the campaign store: stored history the journal no
	// longer covers is restored, and journal-terminal campaigns the store
	// missed (a crash between journal append and store append) are persisted
	// now — after this the two are replay-equivalent.
	d.restoreFromStore()
	// Extra capacity beyond QueueDepth absorbs journal requeues and retry
	// re-enqueues, which bypass submission backpressure; retries that
	// still find the channel full simply reschedule their timer.
	d.jobs = make(chan *campaign, cfg.QueueDepth+len(requeue)+cfg.Workers+16)
	for _, c := range requeue {
		d.jobs <- c
	}
	for i := 0; i < cfg.Workers; i++ {
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for c := range d.jobs {
				d.dequeued(c)
				d.run(c)
			}
		}()
	}
	return d
}

// restore rebuilds the campaign table from journal replay and returns the
// non-terminal campaigns to requeue, journaling the requeue transition.
func (d *Daemon) restore(replayed []ReplayedCampaign) []*campaign {
	var requeue []*campaign
	for _, rc := range replayed {
		c := &campaign{snap: CampaignSnapshot{
			ID:        rc.ID,
			Spec:      rc.Spec,
			State:     rc.State,
			Submitted: rc.Submitted,
			Started:   rc.Started,
			Finished:  rc.Finished,
			Attempts:  rc.Attempts,
			Resumed:   true,
		}}
		c.ledger = converge.NewLedger(d.cfg.Recorder)
		if rc.Terminal() {
			// The in-memory convergence history died with the old process;
			// a restored terminal campaign serves an empty, closed ledger.
			c.ledger.Close()
			if rc.State == StateFailed {
				c.snap.Error, c.snap.ErrorClass = rc.Error, rc.Class
			} else {
				c.snap.SolutionCount = rc.Solutions
				c.snap.VictimQueries = rc.Queries
				c.snap.VictimRetries = rc.Retries
				c.snap.Degraded = rc.Degraded
			}
		} else {
			c.snap.State = StateQueued
			c.snap.Started = nil
			requeue = append(requeue, c)
			d.journalState(c.snap.ID, StateChange{State: StateQueued, Attempt: rc.Attempts})
		}
		d.byID[rc.ID] = c
		d.campaigns = append(d.campaigns, c)
		if rc.ID >= d.nextID {
			d.nextID = rc.ID + 1
		}
	}
	if len(requeue) > 0 {
		d.count("daemon.requeues", "", float64(len(requeue)))
	}
	return requeue
}

// Submit validates, journals, and enqueues a job, returning its queued
// snapshot. The job runs as soon as a worker frees up. Beyond QueueDepth
// unstarted jobs, Submit rejects with ErrQueueFull — the backpressure the
// HTTP layer translates to 429 + Retry-After.
func (d *Daemon) Submit(spec JobSpec) (CampaignSnapshot, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return CampaignSnapshot{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return CampaignSnapshot{}, ErrShuttingDown
	}
	if d.queued >= d.cfg.QueueDepth {
		d.count("daemon.queue_rejections", "", 1)
		return CampaignSnapshot{}, ErrQueueFull
	}
	now := time.Now()
	c := &campaign{
		snap: CampaignSnapshot{
			ID:        d.nextID,
			Spec:      spec,
			State:     StateQueued,
			Submitted: now,
		},
		ledger:     converge.NewLedger(d.cfg.Recorder),
		queuedSlot: true,
	}
	select {
	case d.jobs <- c:
	default:
		// The channel has slack beyond QueueDepth, so this is unreachable
		// in practice; guard anyway rather than block under d.mu.
		d.count("daemon.queue_rejections", "", 1)
		return CampaignSnapshot{}, ErrQueueFull
	}
	// Journal before acknowledging: once the caller sees 202 the job
	// survives a crash. A failing journal degrades durability, not
	// availability — the append error is counted and /healthz reports
	// degraded, but the job still runs.
	if d.cfg.Journal != nil {
		_ = d.cfg.Journal.AppendSubmit(c.snap.ID, now, spec)
	}
	d.nextID++
	d.queued++
	d.byID[c.snap.ID] = c
	d.campaigns = append(d.campaigns, c)
	d.count("daemon.jobs_submitted", "", 1)
	d.gauge("daemon.queue_depth", float64(d.queued))
	return c.snapshot(), nil
}

// RetryAfterHint is the backoff the HTTP layer advertises on queue-full
// and draining rejections.
func (d *Daemon) RetryAfterHint() time.Duration { return d.cfg.RetryAfter }

// dequeued releases c's backpressure slot as a worker picks it up.
func (d *Daemon) dequeued(c *campaign) {
	d.mu.Lock()
	if c.queuedSlot {
		c.queuedSlot = false
		d.queued--
		d.gauge("daemon.queue_depth", float64(d.queued))
	}
	d.mu.Unlock()
}

// Campaigns returns a snapshot of every campaign, oldest first.
func (d *Daemon) Campaigns() []CampaignSnapshot {
	d.mu.Lock()
	list := append([]*campaign(nil), d.campaigns...)
	d.mu.Unlock()
	out := make([]CampaignSnapshot, len(list))
	for i, c := range list {
		out[i] = c.snapshot()
	}
	return out
}

// CampaignByID returns one campaign's snapshot.
func (d *Daemon) CampaignByID(id int) (CampaignSnapshot, bool) {
	d.mu.Lock()
	c, ok := d.byID[id]
	d.mu.Unlock()
	if !ok {
		return CampaignSnapshot{}, false
	}
	return c.snapshot(), true
}

// ProgressLedger returns a campaign's convergence ledger for the progress
// endpoints. The ledger exists from submission (empty until the attack's
// first snapshot) and is closed — ending any streams — when the campaign
// reaches a terminal state.
func (d *Daemon) ProgressLedger(id int) (*converge.Ledger, bool) {
	d.mu.Lock()
	c, ok := d.byID[id]
	d.mu.Unlock()
	if !ok || c.ledger == nil {
		return nil, false
	}
	return c.ledger, true
}

// Health is the liveness/readiness view /healthz serves.
type Health struct {
	// Status is "ok", "degraded" (journal failing — still serving, with
	// durability at risk), or "draining" (Shutdown has begun; served with
	// 503 so load-balancers stop routing here).
	Status string `json:"status"`
	// Queued is the unstarted external backlog against QueueDepth.
	Queued     int `json:"queued"`
	QueueDepth int `json:"queue_depth"`
	Workers    int `json:"workers"`
	Campaigns  int `json:"campaigns"`
	// Journal state, present when a journal is configured.
	JournalErrors uint64 `json:"journal_errors,omitempty"`
	JournalBytes  uint64 `json:"journal_bytes,omitempty"`
}

// Health reports the daemon's current health classification.
func (d *Daemon) Health() Health {
	d.mu.Lock()
	h := Health{
		Status:     "ok",
		Queued:     d.queued,
		QueueDepth: d.cfg.QueueDepth,
		Workers:    d.cfg.Workers,
		Campaigns:  len(d.campaigns),
	}
	closed := d.closed
	d.mu.Unlock()
	if j := d.cfg.Journal; j != nil {
		st := j.Stats()
		h.JournalErrors = st.Errors
		h.JournalBytes = st.Bytes
		if j.Failing() {
			h.Status = "degraded"
		}
	}
	if closed {
		h.Status = "draining"
	}
	return h
}

// Shutdown stops accepting jobs and lets the workers drain the queue and
// finish running campaigns — in-flight work is journaled at every
// transition, so anything still unfinished when ctx expires is requeueable
// on the next start rather than lost. On ctx expiry the per-job contexts
// are canceled so workers abandon their campaigns promptly (the campaigns
// stay non-terminal in the journal), and Shutdown returns ctx's error.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.mu.Lock()
	if !d.closed {
		d.closed = true
		close(d.jobs)
	}
	d.mu.Unlock()
	done := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Drain deadline expired: abort running campaigns. Their run() sees a
	// canceled context during drain and parks them back to queued without
	// a terminal journal record, so a restart resumes them.
	d.cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		// A worker stuck in non-preemptible compute is abandoned to the
		// process exit, exactly as before.
	}
	return fmt.Errorf("telemetry: shutdown: %w", ctx.Err())
}

// Kill simulates a crash, for restart testing: the journal stops
// persisting immediately (as if the process died mid-write), worker
// contexts are canceled, and workers are torn down without journaling any
// further transitions. The daemon is unusable afterwards; start a new one
// on the same journal directory to resume.
func (d *Daemon) Kill() {
	d.mu.Lock()
	d.killed = true
	if !d.closed {
		d.closed = true
		close(d.jobs)
	}
	d.mu.Unlock()
	if d.cfg.Journal != nil {
		d.cfg.Journal.Disable()
	}
	d.cancel()
	d.wg.Wait()
}

// isKilled reports whether Kill has begun.
func (d *Daemon) isKilled() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.killed
}

// isDraining reports whether Shutdown has begun.
func (d *Daemon) isDraining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.closed
}

// count publishes a daemon-level counter when a recorder is configured.
func (d *Daemon) count(name, label string, v float64) {
	if d.cfg.Recorder != nil {
		d.cfg.Recorder.Count(name, label, v)
	}
}

// gauge publishes a daemon-level gauge when a recorder is configured.
func (d *Daemon) gauge(name string, v float64) {
	if d.cfg.Recorder != nil {
		d.cfg.Recorder.Gauge(name, "", v)
	}
}

// journalState appends a state transition when a journal is configured.
// Append failures are counted by the journal itself and surface through
// /healthz as degraded; the daemon keeps running.
func (d *Daemon) journalState(id int, ch StateChange) {
	if d.cfg.Journal == nil || id == 0 {
		return
	}
	_ = d.cfg.Journal.AppendState(id, time.Now(), ch)
}

// run executes one attempt of a campaign end to end, publishing progress
// into the record, transitions into the journal, and spans/metrics into
// the shared recorder; on a retryable failure it schedules the next
// attempt with exponential backoff.
func (d *Daemon) run(c *campaign) {
	if d.isKilled() {
		return
	}
	started := time.Now()
	var attempt int
	c.update(func(s *CampaignSnapshot) {
		s.Attempts++
		attempt = s.Attempts
		s.State = StateRunning
		s.Started = &started
		s.Error, s.ErrorClass = "", ""
	})
	spec := c.snapshot().Spec
	d.journalState(c.snapshot().ID, StateChange{State: StateRunning, Attempt: attempt})
	d.count("daemon.jobs_started", "model="+spec.Model, 1)

	res, err := d.execute(c, spec)
	if d.isKilled() {
		// Crash simulation: the process is "dead"; nothing more happened.
		return
	}
	if err != nil && d.isDraining() && errors.Is(err, context.Canceled) {
		// Aborted by the shutdown drain deadline, not failed: park the
		// campaign back to queued. The journal's last record for it is
		// non-terminal, so the next start requeues it.
		c.update(func(s *CampaignSnapshot) { s.State = StateQueued })
		return
	}
	finished := time.Now()
	if err == nil {
		d.finishDone(c, res, started, finished, spec)
		return
	}
	class := faults.Class(err)
	if d.retryable(class) && attempt < d.cfg.Retry.MaxAttempts {
		d.scheduleRetry(c, attempt, err, class)
		return
	}
	d.finishFailed(c, err, class, started, finished, spec)
}

// retryable reports whether a failure class is worth another attempt:
// everything but configuration errors (retrying cannot help) and
// cancellations (the daemon itself initiated them).
func (d *Daemon) retryable(class string) bool {
	return class != faults.ClassConfig && class != faults.ClassCanceled
}

// finishDone records a successful campaign.
func (d *Daemon) finishDone(c *campaign, res *attack.Result, started, finished time.Time, spec JobSpec) {
	c.update(func(s *CampaignSnapshot) {
		s.Finished = &finished
		s.State = StateDone
		s.SolutionCount = res.Space.Count()
		s.Degraded = res.Degraded
		s.VictimRetries = res.VictimRetries
	})
	c.ledger.Close()
	sum := c.ledger.Summary()
	c.update(func(s *CampaignSnapshot) { s.Converge = &sum })
	snap := c.snapshot()
	d.persistTerminal(snap, started, finished)
	d.journalState(snap.ID, StateChange{
		State:     StateDone,
		Attempt:   snap.Attempts,
		Solutions: snap.SolutionCount,
		Queries:   snap.VictimQueries,
		Retries:   snap.VictimRetries,
		Degraded:  snap.Degraded,
	})
	d.count("daemon.campaigns", "state=done", 1)
	if d.cfg.Recorder != nil {
		d.cfg.Recorder.Observe("daemon.campaign.seconds", "model="+spec.Model, finished.Sub(started).Seconds())
	}
}

// finishFailed records a permanently failed campaign.
func (d *Daemon) finishFailed(c *campaign, err error, class string, started, finished time.Time, spec JobSpec) {
	c.update(func(s *CampaignSnapshot) {
		s.Finished = &finished
		s.State = StateFailed
		s.Error = err.Error()
		s.ErrorClass = class
	})
	c.ledger.Close()
	sum := c.ledger.Summary()
	c.update(func(s *CampaignSnapshot) { s.Converge = &sum })
	snap := c.snapshot()
	d.persistTerminal(snap, started, finished)
	d.journalState(snap.ID, StateChange{
		State: StateFailed, Attempt: snap.Attempts, Error: snap.Error, Class: class,
	})
	d.count("daemon.campaigns", "state=failed", 1)
	d.count("daemon.failures", "class="+class, 1)
	if d.cfg.Recorder != nil {
		d.cfg.Recorder.Observe("daemon.campaign.seconds", "model="+spec.Model, finished.Sub(started).Seconds())
	}
}

// scheduleRetry journals the retrying state and re-enqueues the campaign
// after an exponential-backoff delay with jitter.
func (d *Daemon) scheduleRetry(c *campaign, attempt int, err error, class string) {
	c.update(func(s *CampaignSnapshot) {
		s.State = StateRetrying
		s.Error = err.Error()
		s.ErrorClass = class
	})
	d.journalState(c.snapshot().ID, StateChange{
		State: StateRetrying, Attempt: attempt, Error: err.Error(), Class: class,
	})
	d.count("daemon.retries", "class="+class, 1)
	time.AfterFunc(d.backoff(attempt), func() { d.requeue(c) })
}

// backoff computes the delay before the attempt following `attempt`:
// BaseDelay doubled per completed attempt, capped at MaxDelay, spread by
// ±Jitter from the daemon's seeded rng.
func (d *Daemon) backoff(attempt int) time.Duration {
	p := d.cfg.Retry
	delay := p.BaseDelay
	for i := 1; i < attempt && delay < p.MaxDelay; i++ {
		delay *= 2
	}
	if delay > p.MaxDelay {
		delay = p.MaxDelay
	}
	d.mu.Lock()
	jitter := 1 + p.Jitter*(2*d.retryRng.Float64()-1)
	d.mu.Unlock()
	if jitter < 0 {
		jitter = 0
	}
	return time.Duration(float64(delay) * jitter)
}

// requeue re-enqueues a retrying campaign. After shutdown began the
// campaign stays journaled as retrying — requeueable on the next start. A
// full channel (transient, retries bypass backpressure accounting but not
// channel capacity) reschedules the attempt.
func (d *Daemon) requeue(c *campaign) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	select {
	case d.jobs <- c:
		d.mu.Unlock()
	default:
		d.mu.Unlock()
		time.AfterFunc(d.cfg.Retry.BaseDelay, func() { d.requeue(c) })
	}
}

// execute runs one attempt under supervision: a per-job deadline flows
// through context into every victim run, chaos daemon faults are injected
// when configured, and a panicking worker is recovered into a typed
// faults.ErrWorkerPanic instead of crashing the daemon.
func (d *Daemon) execute(c *campaign, spec JobSpec) (res *attack.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			d.count("daemon.worker_panics", "", 1)
			err = fmt.Errorf("telemetry: recovered worker panic: %v: %w", r, faults.ErrWorkerPanic)
		}
	}()
	ctx := d.ctx
	timeout := d.cfg.JobTimeout
	if spec.TimeoutSeconds > 0 {
		timeout = time.Duration(spec.TimeoutSeconds * float64(time.Second))
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return d.attack(ctx, c, spec)
}

// attack deploys the victim and runs the pipeline for one campaign attempt.
func (d *Daemon) attack(ctx context.Context, c *campaign, spec JobSpec) (*attack.Result, error) {
	arch, err := models.ByName(spec.Model, spec.Scale)
	if err != nil {
		return nil, fmt.Errorf("telemetry: campaign model: %w", err)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	bind, err := arch.Build(rng)
	if err != nil {
		return nil, fmt.Errorf("telemetry: building victim %s: %w", spec.Model, err)
	}
	if spec.Keep < 1 {
		prune.GlobalMagnitude(bind.Net.Params(), spec.Keep)
	}

	acfg := accel.DefaultConfig()
	acfg.Seed = spec.Seed
	acfg.Obs = d.cfg.Recorder
	machine := accel.NewMachine(acfg, arch, bind)
	c.mu.Lock()
	c.machine = machine
	c.mu.Unlock()

	var victim attack.Victim = machine
	if spec.Chaos {
		ccfg := chaos.DefaultConfig()
		ccfg.Seed = spec.ChaosSeed
		ccfg.Obs = d.cfg.Recorder
		victim = chaos.Wrap(victim, ccfg)
	}
	victim = &supervisedVictim{ctx: ctx, inner: victim, faults: d.cfg.Faults}

	cfg := attack.DefaultConfig()
	if spec.Robust {
		cfg = attack.DefaultRobustConfig()
	}
	cfg.Probe.Trials = spec.Trials
	cfg.Probe.Q = spec.Q
	cfg.Probe.Seed = spec.Seed
	cfg.Obs = d.cfg.Recorder
	cfg.Ledger = c.ledger
	cfg.Progress = func(stage string, done, total int) {
		c.update(func(s *CampaignSnapshot) {
			s.Stage = stage
			if total > 0 {
				s.ProbeDone, s.ProbeTotal = done, total
			}
		})
	}
	return attack.AttackContext(ctx, victim, cfg)
}

// supervisedVictim gates every victim run on the job context — so a
// deadline or a daemon teardown stops a campaign at the next inference —
// and injects daemon-level chaos faults (panics, stalls) when configured.
type supervisedVictim struct {
	ctx    context.Context
	inner  attack.Victim
	faults *chaos.DaemonFaults
}

// Run checks the job deadline, applies injected faults, and forwards to
// the wrapped victim.
func (v *supervisedVictim) Run(img *tensor.Tensor) (*trace.Trace, error) {
	if err := v.ctx.Err(); err != nil {
		return nil, classifyCtx(err)
	}
	if v.faults != nil {
		if err := v.faults.BeforeRun(v.ctx); err != nil {
			return nil, fmt.Errorf("telemetry: injected daemon fault: %w", err)
		}
	}
	tr, err := v.inner.Run(img)
	if err != nil {
		return nil, fmt.Errorf("telemetry: victim run: %w", err)
	}
	return tr, nil
}

// classifyCtx converts a context error into the faults taxonomy: deadline
// expiry becomes the typed ErrDeadline (retryable with a fresh deadline),
// cancellation stays context.Canceled (the daemon initiated it; never
// retried).
func classifyCtx(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("telemetry: job deadline exceeded: %w", faults.ErrDeadline)
	}
	return fmt.Errorf("telemetry: job canceled: %w", err)
}
