// Package telemetry turns the post-hoc observability of internal/obs into a
// live service: a campaign daemon that runs attack jobs on a bounded worker
// pool, and an HTTP server exposing Prometheus metrics, live campaign
// progress (including per-layer accelerator telemetry), a JSONL event
// stream, and pprof — what an operator watches while campaigns run, instead
// of what a post-mortem reads after they end.
package telemetry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/huffduff/huffduff/internal/accel"
	"github.com/huffduff/huffduff/internal/chaos"
	attack "github.com/huffduff/huffduff/internal/huffduff"
	"github.com/huffduff/huffduff/internal/models"
	"github.com/huffduff/huffduff/internal/obs"
	"github.com/huffduff/huffduff/internal/prune"
)

// JobSpec is one campaign job as submitted over HTTP POST. Zero fields take
// the defaults below, so `{"model": "smallcnn"}` is a complete job.
type JobSpec struct {
	// Model is a registered model name (models.Names()).
	Model string `json:"model"`
	// Scale is the channel-width divisor (default 16).
	Scale int `json:"scale,omitempty"`
	// Keep is the fraction of weights kept after pruning (default 0.5).
	Keep float64 `json:"keep,omitempty"`
	// Trials and Q shape the probing campaign (defaults 16 and 16).
	Trials int `json:"trials,omitempty"`
	Q      int `json:"q,omitempty"`
	// Seed drives victim construction and probing (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Robust selects the fault-hardened pipeline configuration.
	Robust bool `json:"robust,omitempty"`
	// Chaos wraps the victim in the fault-injection layer with ChaosSeed.
	Chaos     bool  `json:"chaos,omitempty"`
	ChaosSeed int64 `json:"chaos_seed,omitempty"`
}

// withDefaults fills zero fields with the daemon defaults.
func (s JobSpec) withDefaults() JobSpec {
	if s.Scale == 0 {
		s.Scale = 16
	}
	if s.Keep == 0 {
		s.Keep = 0.5
	}
	if s.Trials == 0 {
		s.Trials = 16
	}
	if s.Q == 0 {
		s.Q = 16
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.ChaosSeed == 0 {
		s.ChaosSeed = 1
	}
	return s
}

// Validate rejects specs the daemon could not run.
func (s JobSpec) Validate() error {
	if _, err := models.ByName(s.Model, s.Scale); err != nil {
		return fmt.Errorf("telemetry: spec: %w", err)
	}
	if s.Keep < 0 || s.Keep > 1 {
		return fmt.Errorf("telemetry: keep = %g, want (0, 1]", s.Keep)
	}
	if s.Trials < 1 || s.Q < 2 {
		return fmt.Errorf("telemetry: trials = %d, q = %d, want trials >= 1 and q >= 2", s.Trials, s.Q)
	}
	return nil
}

// Campaign states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// CampaignSnapshot is the JSON view of one campaign that /campaigns serves:
// its spec, lifecycle timestamps, live pipeline progress, and — live while
// running, final once finished — the per-layer device telemetry the victim
// accelerator accumulated.
type CampaignSnapshot struct {
	ID        int        `json:"id"`
	Spec      JobSpec    `json:"spec"`
	State     string     `json:"state"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	// Stage is the pipeline stage most recently entered; ProbeDone/Total
	// track per-position probe progress within the probing stage.
	Stage      string `json:"stage,omitempty"`
	ProbeDone  int    `json:"probe_done,omitempty"`
	ProbeTotal int    `json:"probe_total,omitempty"`
	Error      string `json:"error,omitempty"`
	// Outcome of a finished campaign.
	VictimQueries int  `json:"victim_queries,omitempty"`
	VictimRetries int  `json:"victim_retries,omitempty"`
	SolutionCount int  `json:"solution_count,omitempty"`
	Degraded      bool `json:"degraded,omitempty"`
	// Device is the victim-side telemetry (simulated device time, per-layer
	// DRAM/MAC/encode breakdown), snapshotted live from the machine.
	Device *accel.CampaignStats `json:"device,omitempty"`
}

// campaign is the daemon-internal mutable record behind a snapshot.
type campaign struct {
	mu      sync.Mutex
	snap    CampaignSnapshot
	machine *accel.Machine // set once running; its stats are lock-protected
}

// update mutates the record under its lock.
func (c *campaign) update(f func(*CampaignSnapshot)) {
	c.mu.Lock()
	f(&c.snap)
	c.mu.Unlock()
}

// snapshot returns a consistent copy, with live device telemetry attached.
func (c *campaign) snapshot() CampaignSnapshot {
	c.mu.Lock()
	out := c.snap
	m := c.machine
	c.mu.Unlock()
	if m != nil {
		dev := m.Campaign() // concurrency-safe snapshot (accel.statsMu)
		out.Device = &dev
		out.VictimQueries = dev.Runs
	}
	return out
}

// DaemonConfig sizes the campaign daemon.
type DaemonConfig struct {
	// Workers is the worker-pool size (default 2).
	Workers int
	// QueueDepth bounds the submitted-but-unstarted backlog (default 16);
	// submissions beyond it are rejected rather than buffered without
	// bound.
	QueueDepth int
	// Recorder receives every campaign's spans and metrics — typically an
	// obs.Fanout of the serving Collector, a FlightRecorder, and an
	// optional JSONL file sink. Nil runs campaigns uninstrumented.
	Recorder obs.Recorder
}

// Daemon runs campaign jobs on a bounded worker pool and retains every
// campaign record for /campaigns. It implements the server's CampaignSource
// and Submitter.
type Daemon struct {
	cfg  DaemonConfig
	jobs chan *campaign
	wg   sync.WaitGroup

	mu        sync.Mutex
	closed    bool
	campaigns []*campaign
}

// ErrQueueFull rejects submissions beyond the configured backlog.
var ErrQueueFull = errors.New("telemetry: job queue full")

// ErrShuttingDown rejects submissions after Shutdown began.
var ErrShuttingDown = errors.New("telemetry: daemon shutting down")

// NewDaemon starts the worker pool and returns the running daemon.
func NewDaemon(cfg DaemonConfig) *Daemon {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	d := &Daemon{cfg: cfg, jobs: make(chan *campaign, cfg.QueueDepth)}
	for i := 0; i < cfg.Workers; i++ {
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for c := range d.jobs {
				d.run(c)
			}
		}()
	}
	return d
}

// Submit validates and enqueues a job, returning its queued snapshot. The
// job runs as soon as a worker frees up.
func (d *Daemon) Submit(spec JobSpec) (CampaignSnapshot, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return CampaignSnapshot{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return CampaignSnapshot{}, ErrShuttingDown
	}
	c := &campaign{snap: CampaignSnapshot{
		ID:        len(d.campaigns) + 1,
		Spec:      spec,
		State:     StateQueued,
		Submitted: time.Now(),
	}}
	select {
	case d.jobs <- c:
	default:
		return CampaignSnapshot{}, ErrQueueFull
	}
	d.campaigns = append(d.campaigns, c)
	d.count("daemon.jobs_submitted", "", 1)
	return c.snapshot(), nil
}

// Campaigns returns a snapshot of every campaign, oldest first.
func (d *Daemon) Campaigns() []CampaignSnapshot {
	d.mu.Lock()
	list := append([]*campaign(nil), d.campaigns...)
	d.mu.Unlock()
	out := make([]CampaignSnapshot, len(list))
	for i, c := range list {
		out[i] = c.snapshot()
	}
	return out
}

// CampaignByID returns one campaign's snapshot.
func (d *Daemon) CampaignByID(id int) (CampaignSnapshot, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id < 1 || id > len(d.campaigns) {
		return CampaignSnapshot{}, false
	}
	return d.campaigns[id-1].snapshot(), true
}

// Shutdown stops accepting jobs, lets the workers drain the queue and
// finish running campaigns, and returns once the pool is idle or ctx
// expires (in which case campaigns still running are abandoned to the
// process exit).
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.mu.Lock()
	if !d.closed {
		d.closed = true
		close(d.jobs)
	}
	d.mu.Unlock()
	done := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("telemetry: shutdown: %w", ctx.Err())
	}
}

// count publishes a daemon-level counter when a recorder is configured.
func (d *Daemon) count(name, label string, v float64) {
	if d.cfg.Recorder != nil {
		d.cfg.Recorder.Count(name, label, v)
	}
}

// run executes one campaign end to end, publishing progress into the record
// and spans/metrics into the shared recorder.
func (d *Daemon) run(c *campaign) {
	started := time.Now()
	c.update(func(s *CampaignSnapshot) {
		s.State = StateRunning
		s.Started = &started
	})
	spec := c.snapshot().Spec
	d.count("daemon.jobs_started", "model="+spec.Model, 1)

	res, err := d.attack(c, spec)
	finished := time.Now()
	c.update(func(s *CampaignSnapshot) {
		s.Finished = &finished
		if err != nil {
			s.State = StateFailed
			s.Error = err.Error()
		} else {
			s.State = StateDone
			s.SolutionCount = res.Space.Count()
			s.Degraded = res.Degraded
			s.VictimRetries = res.VictimRetries
		}
	})
	outcome := "done"
	if err != nil {
		outcome = "failed"
	}
	d.count("daemon.campaigns", "state="+outcome, 1)
	if d.cfg.Recorder != nil {
		d.cfg.Recorder.Observe("daemon.campaign.seconds", "model="+spec.Model, finished.Sub(started).Seconds())
	}
}

// attack deploys the victim and runs the pipeline for one campaign.
func (d *Daemon) attack(c *campaign, spec JobSpec) (*attack.Result, error) {
	arch, err := models.ByName(spec.Model, spec.Scale)
	if err != nil {
		return nil, fmt.Errorf("telemetry: campaign model: %w", err)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	bind, err := arch.Build(rng)
	if err != nil {
		return nil, fmt.Errorf("telemetry: building victim %s: %w", spec.Model, err)
	}
	if spec.Keep < 1 {
		prune.GlobalMagnitude(bind.Net.Params(), spec.Keep)
	}

	acfg := accel.DefaultConfig()
	acfg.Seed = spec.Seed
	acfg.Obs = d.cfg.Recorder
	machine := accel.NewMachine(acfg, arch, bind)
	c.mu.Lock()
	c.machine = machine
	c.mu.Unlock()

	var victim attack.Victim = machine
	if spec.Chaos {
		ccfg := chaos.DefaultConfig()
		ccfg.Seed = spec.ChaosSeed
		ccfg.Obs = d.cfg.Recorder
		victim = chaos.Wrap(victim, ccfg)
	}

	cfg := attack.DefaultConfig()
	if spec.Robust {
		cfg = attack.DefaultRobustConfig()
	}
	cfg.Probe.Trials = spec.Trials
	cfg.Probe.Q = spec.Q
	cfg.Probe.Seed = spec.Seed
	cfg.Obs = d.cfg.Recorder
	cfg.Progress = func(stage string, done, total int) {
		c.update(func(s *CampaignSnapshot) {
			s.Stage = stage
			if total > 0 {
				s.ProbeDone, s.ProbeTotal = done, total
			}
		})
	}
	return attack.Attack(victim, cfg)
}
