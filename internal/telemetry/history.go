package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"github.com/huffduff/huffduff/internal/converge"
	"github.com/huffduff/huffduff/internal/obs"
	"github.com/huffduff/huffduff/internal/store"
)

// This file is the daemon's bridge to the campaign store: terminal
// snapshots (and their flight-recorder tails) are persisted on the way down,
// the filtered/paginated /campaigns listing and the per-model aggregate are
// served back out of it, and at construction the store and the journal are
// reconciled so either one alone can rebuild the served history.

// terminalState reports whether a campaign state is terminal.
func terminalState(state string) bool {
	return state == StateDone || state == StateFailed
}

// persistTerminal writes a terminal campaign into the store: the full
// snapshot as the record payload, plus the flight-recorder events of the
// final attempt window as the campaign's event batch. Store failures are
// counted (daemon.store_errors) and never fail the campaign.
func (d *Daemon) persistTerminal(snap CampaignSnapshot, started, finished time.Time) {
	rec, err := recordFromSnapshot(snap)
	if err != nil {
		d.count("daemon.store_errors", "op=encode", 1)
		return
	}
	if !started.IsZero() && !finished.IsZero() {
		// Only override the snapshot-derived value when both endpoints are
		// real: the restore path can reach here with a zero started (journal
		// snapshot missing Started), and finished.Sub(zero) would record ~54
		// years of wall time and skew the per-model percentiles.
		rec.WallSeconds = finished.Sub(started).Seconds()
	}
	if err := d.cfg.Store.PutCampaign(rec); err != nil {
		d.count("daemon.store_errors", "op=put_campaign", 1)
	}
	if d.cfg.Flight == nil {
		return
	}
	var tail []obs.Event
	startNS, endNS := started.UnixNano(), finished.UnixNano()
	for _, ev := range d.cfg.Flight.Events() {
		if ev.TS >= startNS && ev.TS <= endNS {
			tail = append(tail, ev)
		}
	}
	if len(tail) == 0 {
		return
	}
	raw, err := json.Marshal(tail)
	if err != nil {
		d.count("daemon.store_errors", "op=encode", 1)
		return
	}
	batch := store.EventBatch{
		CampaignID: snap.ID,
		FirstNS:    tail[0].TS,
		LastNS:     tail[len(tail)-1].TS,
		Events:     raw,
	}
	if err := d.cfg.Store.PutEvents(batch); err != nil {
		d.count("daemon.store_errors", "op=put_events", 1)
	}
}

// recordFromSnapshot extracts the store's indexed columns from a terminal
// snapshot and embeds the snapshot itself as the payload.
func recordFromSnapshot(snap CampaignSnapshot) (store.CampaignRecord, error) {
	payload, err := json.Marshal(snap)
	if err != nil {
		return store.CampaignRecord{}, fmt.Errorf("encode campaign %d: %w", snap.ID, err)
	}
	rec := store.CampaignRecord{
		ID:       snap.ID,
		Model:    snap.Spec.Model,
		State:    snap.State,
		Queries:  int64(snap.VictimQueries),
		Degraded: snap.Degraded,
		Payload:  payload,
	}
	if snap.Finished != nil {
		rec.FinishedNS = snap.Finished.UnixNano()
		if snap.Started != nil {
			rec.WallSeconds = snap.Finished.Sub(*snap.Started).Seconds()
		}
	}
	return rec, nil
}

// snapshotFromRecord decodes a stored record back into the snapshot the
// daemon serves.
func snapshotFromRecord(rec store.CampaignRecord) (CampaignSnapshot, error) {
	var snap CampaignSnapshot
	if err := json.Unmarshal(rec.Payload, &snap); err != nil {
		return CampaignSnapshot{}, fmt.Errorf("decode stored campaign %d: %w", rec.ID, err)
	}
	return snap, nil
}

// restoreFromStore reconciles the construction-time campaign table with the
// store, in both directions: stored terminal campaigns the journal replay
// did not produce are restored into the table (full payload — device stats
// and convergence summary included, which the journal never had), journal
// replay already in the table gets its snapshot enriched from the stored
// payload, and journal-terminal campaigns missing from the store are
// persisted now. Runs before the worker pool starts, so no locking.
func (d *Daemon) restoreFromStore() {
	recs, err := d.cfg.Store.Campaigns(store.Query{})
	if err != nil {
		d.count("daemon.store_errors", "op=restore", 1)
		return
	}
	inStore := make(map[int]bool, len(recs))
	merged := false
	for _, rec := range recs {
		inStore[rec.ID] = true
		if c, ok := d.byID[rec.ID]; ok {
			// The journal replayed this campaign. If it is terminal, the
			// stored payload is a superset of the journal's view — overlay it.
			if terminalState(c.snap.State) {
				if snap, err := snapshotFromRecord(rec); err == nil {
					snap.Resumed = true
					c.snap = snap
				}
			}
			continue
		}
		snap, err := snapshotFromRecord(rec)
		if err != nil {
			d.count("daemon.store_errors", "op=restore", 1)
			continue
		}
		snap.Resumed = true
		c := &campaign{snap: snap, ledger: converge.NewLedger(d.cfg.Recorder)}
		c.ledger.Close()
		d.byID[snap.ID] = c
		d.campaigns = append(d.campaigns, c)
		if snap.ID >= d.nextID {
			d.nextID = snap.ID + 1
		}
		merged = true
	}
	if merged {
		sort.Slice(d.campaigns, func(i, j int) bool {
			return d.campaigns[i].snap.ID < d.campaigns[j].snap.ID
		})
	}
	// Reverse direction: journal-terminal campaigns the store never saw
	// (e.g. a crash after the journal append but before the store append).
	for _, c := range d.campaigns {
		if !terminalState(c.snap.State) || inStore[c.snap.ID] {
			continue
		}
		var started, finished time.Time
		if c.snap.Started != nil {
			started = *c.snap.Started
		}
		if c.snap.Finished != nil {
			finished = *c.snap.Finished
		}
		d.persistTerminal(c.snap, started, finished)
	}
}

// matchSnapshot applies a store query's filters to a live snapshot, with the
// same semantics the store applies to its records: a SinceNS filter only
// ever matches finished campaigns.
func matchSnapshot(q store.Query, s CampaignSnapshot) bool {
	if q.State != "" && s.State != q.State {
		return false
	}
	if q.Model != "" && s.Spec.Model != q.Model {
		return false
	}
	if q.SinceNS != 0 && (s.Finished == nil || s.Finished.UnixNano() < q.SinceNS) {
		return false
	}
	return true
}

// CampaignsQuery serves the filtered, paginated campaign listing: live (and
// this process's terminal) campaigns from the in-memory table, merged with
// stored history this process never ran, ascending ID. This is the read
// path behind GET /campaigns?state=&model=&since=&limit=&offset=.
func (d *Daemon) CampaignsQuery(q store.Query) ([]CampaignSnapshot, error) {
	snaps := d.Campaigns() // ascending ID already
	out := make([]CampaignSnapshot, 0, len(snaps))
	have := make(map[int]bool, len(snaps))
	for _, s := range snaps {
		have[s.ID] = true
		if matchSnapshot(q, s) {
			out = append(out, s)
		}
	}
	// The in-memory table covers everything after restoreFromStore, but the
	// store may have gained records since (another writer on a shared
	// store); merge defensively. Pagination happens after the merge — the
	// window is over the combined history.
	recs, err := d.cfg.Store.Campaigns(store.Query{State: q.State, Model: q.Model, SinceNS: q.SinceNS})
	if err != nil {
		return nil, fmt.Errorf("campaign store scan: %w", err)
	}
	mergedAny := false
	for _, rec := range recs {
		if have[rec.ID] {
			continue
		}
		snap, err := snapshotFromRecord(rec)
		if err != nil {
			continue
		}
		out = append(out, snap)
		mergedAny = true
	}
	if mergedAny {
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	}
	if q.Offset > 0 {
		if q.Offset >= len(out) {
			out = out[:0]
		} else {
			out = out[q.Offset:]
		}
	}
	if q.Limit > 0 && q.Limit < len(out) {
		out = out[:q.Limit]
	}
	return out, nil
}

// AggregateByModel serves the per-model aggregate over the stored terminal
// history — the read path behind GET /campaigns/aggregate?by=model.
func (d *Daemon) AggregateByModel() ([]store.ModelAggregate, error) {
	aggs, err := d.cfg.Store.AggregateByModel()
	if err != nil {
		return nil, fmt.Errorf("campaign store aggregate: %w", err)
	}
	return aggs, nil
}

// CampaignEvents returns the stored flight-recorder tail of one terminal
// campaign — the read path behind GET /campaigns/{id}/events.
func (d *Daemon) CampaignEvents(id int) (store.EventBatch, bool, error) {
	return d.cfg.Store.Events(id)
}

// StoreStats exposes the store's counters (for tests and health surfaces).
func (d *Daemon) StoreStats() store.Stats {
	return d.cfg.Store.Stats()
}
