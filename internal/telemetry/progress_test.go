package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strconv"
	"testing"
	"time"

	"github.com/huffduff/huffduff/internal/converge"
	"github.com/huffduff/huffduff/internal/obs"
)

// TestProgressStream is the convergence-observability integration test: it
// runs a real campaign through the daemon, subscribes to its progress
// stream over loopback HTTP *while the attack runs*, and checks that the
// stream delivers incremental snapshots (monotone Seq, non-increasing
// solution-space volume, terminal Done snapshot) and terminates when the
// campaign finishes. The latest-snapshot endpoint is checked afterwards.
func TestProgressStream(t *testing.T) {
	col := obs.NewCollector()
	d := NewDaemon(DaemonConfig{Workers: 1, QueueDepth: 4, Recorder: col})
	srv := NewServer(ServerOptions{Campaigns: d, Submitter: d, Health: d, Progress: d})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()

	snap := postJob(t, base, tinySpec())

	// Unknown campaigns 404 on both endpoints.
	for _, path := range []string{"/campaigns/99/progress", "/campaigns/99/progress/stream"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: got %d, want 404", path, resp.StatusCode)
		}
	}

	// Open the stream immediately — before the attack has necessarily
	// produced a snapshot — and read it to EOF. The server must replay
	// whatever exists, then deliver live snapshots, then close the stream
	// when the campaign reaches a terminal state.
	resp, err := http.Get(base + "/campaigns/" + strconv.Itoa(snap.ID) + "/progress/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: got status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q", ct)
	}

	type result struct {
		snaps []converge.Snapshot
		err   error
	}
	done := make(chan result, 1)
	go func() {
		var r result
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
		for sc.Scan() {
			var s converge.Snapshot
			if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
				r.err = err
				break
			}
			r.snaps = append(r.snaps, s)
		}
		if r.err == nil {
			r.err = sc.Err()
		}
		done <- r
	}()

	var streamed []converge.Snapshot
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("reading stream: %v", r.err)
		}
		streamed = r.snaps
	case <-time.After(4 * time.Minute):
		t.Fatal("stream did not terminate after campaign completion")
	}

	if len(streamed) < 3 {
		t.Fatalf("stream delivered %d snapshots, want at least calibrate+probe+finalize", len(streamed))
	}
	for i, s := range streamed {
		if s.Seq != i {
			t.Fatalf("snapshot %d: Seq = %d, want %d (monotone, gap-free)", i, s.Seq, i)
		}
	}
	if streamed[0].Stage != "calibrate" {
		t.Fatalf("first snapshot stage = %q, want calibrate", streamed[0].Stage)
	}
	last := streamed[len(streamed)-1]
	if !last.Done {
		t.Fatalf("last streamed snapshot not Done: %+v", last)
	}
	// The whole point: the solution space collapses. The final volume must
	// be well below the initial (pre-solve) volume.
	first := streamed[0]
	if !first.VolumeKnown || !last.VolumeKnown {
		t.Fatal("snapshots missing volume accounting")
	}
	if last.Log10Volume >= first.Log10Volume {
		t.Fatalf("no collapse observed: initial log10 volume %.2f, final %.2f",
			first.Log10Volume, last.Log10Volume)
	}
	for i := 1; i < len(streamed); i++ {
		if streamed[i].Queries < streamed[i-1].Queries {
			t.Fatalf("victim query counter went backwards at snapshot %d", i)
		}
	}

	// After the campaign is terminal, /progress serves the final snapshot.
	final := waitState(t, d, snap.ID, 4*time.Minute, StateDone)
	if final.State != StateDone {
		t.Fatalf("campaign state = %q", final.State)
	}
	resp2, err := http.Get(base + "/campaigns/" + strconv.Itoa(snap.ID) + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("GET /progress after completion: %d: %s", resp2.StatusCode, body)
	}
	var latest converge.Snapshot
	if err := json.Unmarshal(body, &latest); err != nil {
		t.Fatalf("decoding latest snapshot: %v", err)
	}
	if latest.Seq != last.Seq || !latest.Done {
		t.Fatalf("latest snapshot = seq %d done=%v, want seq %d done=true",
			latest.Seq, latest.Done, last.Seq)
	}

	// A second subscriber connecting after close gets the full replay and
	// immediate EOF (closed ledger), not a hang.
	resp3, err := http.Get(base + "/campaigns/" + strconv.Itoa(snap.ID) + "/progress/stream")
	if err != nil {
		t.Fatal(err)
	}
	replay, err := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if err != nil {
		t.Fatalf("replay read: %v", err)
	}
	var replayCount int
	for sc := bufio.NewScanner(bytes.NewReader(replay)); sc.Scan(); {
		replayCount++
	}
	if replayCount != len(streamed) {
		t.Fatalf("post-close replay delivered %d snapshots, live stream saw %d", replayCount, len(streamed))
	}

	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("server shutdown: %v", err)
	}
	<-serveDone
}

// ledgerProgress serves one live ledger as campaign 1, standing in for the
// daemon so the disconnect test needs no real attack.
type ledgerProgress struct{ led *converge.Ledger }

func (p ledgerProgress) ProgressLedger(id int) (*converge.Ledger, bool) {
	if id != 1 {
		return nil, false
	}
	return p.led, true
}

// TestProgressStreamClientDisconnect is the goroutine-leak regression test
// for the stream handler: a client that walks away mid-stream (campaign
// still running, ledger still open) must tear down its subscription — the
// handler goroutine exits via the request context and unsubscribes. Without
// that cleanup each abandoned watcher pins a subscriber channel until the
// campaign ends. Named to ride the CI race-instrumented TestProgressStream
// run.
func TestProgressStreamClientDisconnect(t *testing.T) {
	led := converge.NewLedger(nil)
	defer led.Close()
	led.Append(converge.Snapshot{Stage: "calibrate"})
	led.Append(converge.Snapshot{Stage: "probe"})

	srv := NewServer(ServerOptions{Progress: ledgerProgress{led}})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()

	ctx, cancelReq := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/campaigns/1/progress/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: got status %d", resp.StatusCode)
	}

	// Read the replayed history so the stream is demonstrably live before
	// the client walks away.
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 2; i++ {
		if !sc.Scan() {
			t.Fatalf("stream ended after %d replayed snapshots: %v", i, sc.Err())
		}
	}
	if got := led.Subscribers(); got != 1 {
		t.Fatalf("live stream holds %d subscriptions, want 1", got)
	}

	cancelReq()

	deadline := time.Now().Add(10 * time.Second)
	for led.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscription leaked: %d subscribers remain after client disconnect", led.Subscribers())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The ledger is still open: appends after the disconnect must not block
	// or panic on the departed subscriber's channel.
	led.Append(converge.Snapshot{Stage: "finalize"})

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("server shutdown: %v", err)
	}
	<-serveDone
}
