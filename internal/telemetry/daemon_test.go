package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/huffduff/huffduff/internal/chaos"
	"github.com/huffduff/huffduff/internal/obs"
)

// tinySpec is a smallcnn campaign small enough that two of them finish in a
// few seconds (tens of seconds under -race) yet still exercise the full
// pipeline: probe, solve, geometry, timing, finalize.
func tinySpec() JobSpec {
	return JobSpec{Model: "smallcnn", Trials: 2, Q: 6}
}

// TestDaemonEndToEnd is the live-telemetry integration test: it starts the
// daemon and HTTP server on a loopback port, submits two concurrent
// campaigns, and watches them through the same endpoints an operator would
// use — /metrics (Prometheus text with advancing counters), /campaigns
// (per-layer device telemetry), /events (JSONL), and pprof — then shuts the
// daemon down and checks that the workers drained cleanly.
func TestDaemonEndToEnd(t *testing.T) {
	col := obs.NewCollector()
	flight := obs.NewFlightRecorder(obs.DefaultFlightEvents)
	rec := obs.Fanout(col, flight)

	d := NewDaemon(DaemonConfig{Workers: 2, QueueDepth: 8, Recorder: rec})
	srv := NewServer(ServerOptions{
		Collector: col,
		Flight:    flight,
		Campaigns: d,
		Submitter: d,
		Health:    d,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	base := "http://" + l.Addr().String()

	// First scrape: before any campaign runs.
	before := scrapeProm(t, base)

	// Submit two concurrent campaigns over HTTP, as a client would.
	for i := 0; i < 2; i++ {
		snap := postJob(t, base, tinySpec())
		if snap.ID != i+1 || snap.State != StateQueued {
			t.Fatalf("submitted campaign %d: got id=%d state=%q", i+1, snap.ID, snap.State)
		}
	}

	// Poll /campaigns until both finish.
	deadline := time.Now().Add(4 * time.Minute)
	var finished []CampaignSnapshot
	for {
		finished = finished[:0]
		for _, c := range getCampaigns(t, base) {
			if c.State == StateDone || c.State == StateFailed {
				finished = append(finished, c)
			}
		}
		if len(finished) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaigns did not finish in time: %+v", getCampaigns(t, base))
		}
		time.Sleep(50 * time.Millisecond)
	}
	for _, c := range finished {
		if c.State != StateDone {
			t.Fatalf("campaign %d failed: %s", c.ID, c.Error)
		}
		if c.Started == nil || c.Finished == nil {
			t.Fatalf("campaign %d missing lifecycle timestamps: %+v", c.ID, c)
		}
		if c.Stage != "finalize" {
			t.Errorf("campaign %d final stage = %q, want finalize", c.ID, c.Stage)
		}
		if c.ProbeTotal == 0 || c.ProbeDone != c.ProbeTotal {
			t.Errorf("campaign %d probe progress %d/%d, want complete", c.ID, c.ProbeDone, c.ProbeTotal)
		}
		if c.SolutionCount < 1 {
			t.Errorf("campaign %d has no solutions", c.ID)
		}
		// Per-layer device telemetry must be attached to a finished campaign.
		if c.Device == nil || c.Device.Runs == 0 || len(c.Device.Layers) == 0 {
			t.Fatalf("campaign %d missing device telemetry: %+v", c.ID, c.Device)
		}
		if c.VictimQueries != c.Device.Runs {
			t.Errorf("campaign %d victim_queries = %d, device runs = %d", c.ID, c.VictimQueries, c.Device.Runs)
		}
		for _, l := range c.Device.Layers {
			if l.Name == "" {
				t.Errorf("campaign %d has an unnamed device layer: %+v", c.ID, l)
			}
		}
	}

	// /campaigns/{id} serves the same snapshot individually.
	one := getCampaign(t, base, 1)
	if one.ID != 1 || one.State != StateDone {
		t.Fatalf("/campaigns/1 = %+v", one)
	}
	if resp, err := http.Get(base + "/campaigns/99"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/campaigns/99: %v %v", resp.Status, err)
	} else {
		resp.Body.Close()
	}

	// Second scrape: counters must have advanced while staying parseable.
	after := scrapeProm(t, base)
	advanced := false
	for _, name := range []string{"victim_inferences", "daemon_jobs_submitted"} {
		b, a := before[name], after[name]
		if a > b {
			advanced = true
		}
		if a < b {
			t.Errorf("counter %s regressed between scrapes: %v -> %v", name, b, a)
		}
	}
	if !advanced {
		t.Fatalf("no counter advanced between scrapes:\nbefore=%v\nafter=%v", before, after)
	}
	for _, name := range []string{
		"daemon_jobs_submitted", "daemon_jobs_started", "daemon_campaigns",
		"victim_inferences", "stage_seconds_bucket", "daemon_campaign_seconds_count",
	} {
		if _, ok := after[name]; !ok {
			t.Errorf("metric %s missing from /metrics after campaigns ran", name)
		}
	}

	// /events yields the retained event tail as parseable JSONL.
	resp, err := http.Get(base + "/events")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("/events Content-Type = %q", ct)
	}
	events := 0
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("/events line %q: %v", sc.Text(), err)
		}
		if ev.Kind == "" || ev.TS == 0 {
			t.Fatalf("/events malformed event: %+v", ev)
		}
		events++
	}
	if events == 0 {
		t.Fatal("/events returned no events after two campaigns")
	}

	// pprof answers on the same mux.
	resp, err = http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: %s", resp.Status)
	}

	// /healthz serves the structured health view while healthy.
	if h, code := getHealth(t, base); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("/healthz = %d %+v, want 200 ok", code, h)
	}

	// Graceful shutdown: workers drain, late submissions are refused, and
	// /healthz flips to draining with 503 so load-balancers stop routing
	// to the dying node.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("daemon shutdown: %v", err)
	}
	if _, err := d.Submit(tinySpec()); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Submit after shutdown = %v, want ErrShuttingDown", err)
	}
	if h, code := getHealth(t, base); code != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("/healthz during drain = %d %+v, want 503 draining", code, h)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("server shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	d := NewDaemon(DaemonConfig{Workers: 1})
	defer d.Shutdown(context.Background())
	for _, spec := range []JobSpec{
		{Model: "nonesuch"},
		{Model: "smallcnn", Keep: 2},
		{Model: "smallcnn", Trials: -1},
		{Model: "smallcnn", Q: 1},
	} {
		if _, err := d.Submit(spec); err == nil {
			t.Errorf("Submit(%+v) accepted an invalid spec", spec)
		}
	}
}

func TestQueueFull(t *testing.T) {
	// One worker, wedged forever on its first job by a chaos stall, and a
	// queue of depth 1: the third submission must be rejected. Over HTTP
	// the rejection is 429 with both a Retry-After header and a structured
	// JSON body, so clients can back off programmatically.
	stall := chaos.NewDaemonFaults(chaos.DaemonFaultsConfig{StallProb: 1})
	d := NewDaemon(DaemonConfig{Workers: 1, QueueDepth: 1, Faults: stall, RetryAfter: 7 * time.Second})
	defer d.Kill()
	srv := NewServer(ServerOptions{Campaigns: d, Submitter: d, Health: d, DisablePprof: true})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Shutdown(context.Background())
	base := "http://" + l.Addr().String()

	body, _ := json.Marshal(tinySpec())
	var resp *http.Response
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err = http.Post(base+"/campaigns", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST /campaigns = %s, want 202 or 429", resp.Status)
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("queue of depth 1 never returned 429")
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After header = %q, want %q", got, "7")
	}
	var apiErr APIError
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatalf("429 body is not structured JSON: %v", err)
	}
	if !strings.Contains(apiErr.Error, "queue full") {
		t.Errorf("429 body error = %q, want a queue-full message", apiErr.Error)
	}
	if apiErr.RetryAfterSeconds != 7 {
		t.Errorf("429 body retry_after_seconds = %d, want 7", apiErr.RetryAfterSeconds)
	}

	// The daemon-level sentinel backs the HTTP translation.
	if _, err := d.Submit(tinySpec()); !errors.Is(err, ErrQueueFull) {
		t.Errorf("Submit on full queue = %v, want ErrQueueFull", err)
	}
}

func TestServerWithoutSources(t *testing.T) {
	srv := NewServer(ServerOptions{DisablePprof: true})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Shutdown(context.Background())
	base := "http://" + l.Addr().String()

	for path, want := range map[string]int{
		"/metrics":             http.StatusNotFound,
		"/events":              http.StatusNotFound,
		"/campaigns":           http.StatusOK, // empty list, not an error
		"/debug/pprof/cmdline": http.StatusNotFound,
		"/healthz":             http.StatusOK,
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
	resp, err := http.Post(base+"/campaigns", "application/json", strings.NewReader(`{"model":"smallcnn"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /campaigns without submitter = %d, want 405", resp.StatusCode)
	}
}

// scrapeProm fetches /metrics and returns every sample's value by bare
// metric name (labels stripped, label variants summed), failing the test on
// anything that is not valid Prometheus text exposition.
func scrapeProm(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed metrics line %q", line)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		var v float64
		if _, err := fmt.Sscanf(line[sp+1:], "%g", &v); err != nil {
			t.Fatalf("malformed metrics value in %q: %v", line, err)
		}
		out[name] += v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func postJob(t *testing.T, base string, spec JobSpec) CampaignSnapshot {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /campaigns: %s: %s", resp.Status, msg)
	}
	var snap CampaignSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

func getCampaigns(t *testing.T, base string) []CampaignSnapshot {
	t.Helper()
	resp, err := http.Get(base + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []CampaignSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// getHealth fetches /healthz and returns the parsed body plus status code.
func getHealth(t *testing.T, base string) (Health, int) {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("/healthz body: %v", err)
	}
	return h, resp.StatusCode
}

func getCampaign(t *testing.T, base string, id int) CampaignSnapshot {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/campaigns/%d", base, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out CampaignSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}
