package telemetry

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/huffduff/huffduff/internal/chaos"
	"github.com/huffduff/huffduff/internal/faults"
	"github.com/huffduff/huffduff/internal/obs"
)

// startServer binds a loopback server for d and returns its base URL plus a
// teardown func.
func startServer(t *testing.T, d *Daemon, col *obs.Collector) (string, func()) {
	t.Helper()
	srv := NewServer(ServerOptions{Collector: col, Campaigns: d, Submitter: d, Health: d, DisablePprof: true})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	return "http://" + l.Addr().String(), func() { srv.Shutdown(context.Background()) }
}

// waitState polls campaign id until its state matches one of want.
func waitState(t *testing.T, d *Daemon, id int, timeout time.Duration, want ...string) CampaignSnapshot {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		snap, ok := d.CampaignByID(id)
		if ok {
			for _, w := range want {
				if snap.State == w {
					return snap
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %d stuck in %q, want one of %v", id, snap.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonKillRestart is the crash-safety integration test: a daemon with
// one running (chaos-stalled) and two queued campaigns is killed mid-run,
// a second daemon restarts on the same journal directory, and every
// campaign finishes with its original ID — no duplicates, no losses — while
// the journal/requeue metrics appear on /metrics.
func TestDaemonKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full smallcnn campaigns; skipped in -short (CI runs it in a dedicated race step)")
	}
	dir := t.TempDir()

	// Phase 1: every victim run stalls, so campaign 1 wedges mid-attack
	// while 2 and 3 wait in the queue. Then the process "dies".
	j1, err := OpenJournal(dir, JournalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	stall := chaos.NewDaemonFaults(chaos.DaemonFaultsConfig{StallProb: 1})
	d1 := NewDaemon(DaemonConfig{Workers: 1, QueueDepth: 8, Journal: j1, Faults: stall})
	base1, stop1 := startServer(t, d1, nil)
	for i := 0; i < 3; i++ {
		snap := postJob(t, base1, tinySpec())
		if snap.ID != i+1 {
			t.Fatalf("submitted campaign got ID %d, want %d", snap.ID, i+1)
		}
	}
	waitState(t, d1, 1, 30*time.Second, StateRunning)
	if st := j1.Stats(); st.Appends == 0 || st.Fsyncs == 0 || st.Bytes == 0 {
		t.Fatalf("journal recorded nothing before the crash: %+v", st)
	}
	d1.Kill()
	stop1()

	// Phase 2: restart on the same data dir, no fault injection. Replay
	// must restore all three campaigns, requeue them, and run them to
	// completion under their original IDs.
	col := obs.NewCollector()
	j2, err := OpenJournal(dir, JournalConfig{Obs: col})
	if err != nil {
		t.Fatal(err)
	}
	d2 := NewDaemon(DaemonConfig{Workers: 2, QueueDepth: 8, Journal: j2, Recorder: col})
	base2, stop2 := startServer(t, d2, col)
	defer stop2()

	restored := getCampaigns(t, base2)
	if len(restored) != 3 {
		t.Fatalf("restart restored %d campaigns, want 3: %+v", len(restored), restored)
	}
	for _, c := range restored {
		if !c.Resumed {
			t.Errorf("campaign %d not marked resumed", c.ID)
		}
		if c.State == StateDone || c.State == StateFailed {
			t.Errorf("campaign %d terminal at restore: %q", c.ID, c.State)
		}
	}

	deadline := time.Now().Add(4 * time.Minute)
	for {
		done := 0
		seen := map[int]int{}
		for _, c := range getCampaigns(t, base2) {
			seen[c.ID]++
			if c.State == StateDone || c.State == StateFailed {
				done++
			}
		}
		for id, n := range seen {
			if n > 1 {
				t.Fatalf("campaign ID %d appears %d times after restart", id, n)
			}
		}
		if len(seen) != 3 {
			t.Fatalf("campaign set changed after restart: %v", seen)
		}
		if done == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed campaigns did not finish: %+v", getCampaigns(t, base2))
		}
		time.Sleep(50 * time.Millisecond)
	}
	for id := 1; id <= 3; id++ {
		c := getCampaign(t, base2, id)
		if c.State != StateDone {
			t.Fatalf("resumed campaign %d = %q (%s), want done", id, c.State, c.Error)
		}
		if c.SolutionCount < 1 {
			t.Errorf("resumed campaign %d has no solutions", id)
		}
		if !c.Resumed {
			t.Errorf("finished campaign %d lost its resumed mark", id)
		}
	}

	// IDs keep growing from the replayed high-water mark.
	snap := postJob(t, base2, tinySpec())
	if snap.ID != 4 {
		t.Fatalf("post-restart submission got ID %d, want 4", snap.ID)
	}
	waitState(t, d2, 4, 4*time.Minute, StateDone, StateFailed)

	// The new durability metrics are live on /metrics.
	metrics := scrapeProm(t, base2)
	if v := metrics["daemon_requeues"]; v < 3 {
		t.Errorf("daemon_requeues = %v, want >= 3", v)
	}
	for _, name := range []string{"journal_appends", "journal_fsyncs", "journal_bytes"} {
		if metrics[name] <= 0 {
			t.Errorf("metric %s missing or zero after restart: %v", name, metrics[name])
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := d2.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown after drain: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerPanicSupervision proves a panicking worker never crashes the
// daemon: the panic is recovered into faults.ErrWorkerPanic, retried per
// policy, and the campaign fails typed once attempts are exhausted.
func TestWorkerPanicSupervision(t *testing.T) {
	col := obs.NewCollector()
	boom := chaos.NewDaemonFaults(chaos.DaemonFaultsConfig{PanicProb: 1})
	d := NewDaemon(DaemonConfig{
		Workers:  1,
		Recorder: col,
		Faults:   boom,
		Retry:    RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond},
	})
	defer d.Kill()

	snap, err := d.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, d, snap.ID, 30*time.Second, StateFailed)
	if final.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (one retry)", final.Attempts)
	}
	if final.ErrorClass != faults.ClassPanic {
		t.Errorf("error class = %q, want %q", final.ErrorClass, faults.ClassPanic)
	}
	if !strings.Contains(final.Error, "panic") {
		t.Errorf("error %q does not mention the recovered panic", final.Error)
	}
	if got := boom.Stats().Panics; got != 2 {
		t.Errorf("injected panics = %d, want 2", got)
	}
	// The daemon survived: health is fine and the retry metrics landed.
	if h := d.Health(); h.Status != "ok" {
		t.Errorf("health after recovered panics = %q, want ok", h.Status)
	}
	prom := col.PromText()
	for _, want := range []string{`daemon_retries{class="panic"}`, "daemon_worker_panics"} {
		if !strings.Contains(prom, want) {
			t.Errorf("metrics missing %s:\n%s", want, prom)
		}
	}
}

// TestJobDeadline proves per-job deadlines propagate via context into the
// victim loop: a stalled run is unwedged by the deadline, classified as a
// deadline fault, retried, and finally failed.
func TestJobDeadline(t *testing.T) {
	stall := chaos.NewDaemonFaults(chaos.DaemonFaultsConfig{StallProb: 1})
	d := NewDaemon(DaemonConfig{
		Workers: 1,
		Faults:  stall,
		Retry:   RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond},
	})
	defer d.Kill()

	spec := tinySpec()
	spec.TimeoutSeconds = 0.1
	snap, err := d.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, d, snap.ID, 30*time.Second, StateFailed)
	if final.ErrorClass != faults.ClassDeadline {
		t.Errorf("error class = %q, want %q (%s)", final.ErrorClass, faults.ClassDeadline, final.Error)
	}
	if final.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", final.Attempts)
	}
}

// TestJournalFailureDegradesHealth proves journal write faults never take
// the daemon down: submissions still run, but /healthz reports degraded
// while the journal cannot persist.
func TestJournalFailureDegradesHealth(t *testing.T) {
	faulty := chaos.NewDaemonFaults(chaos.DaemonFaultsConfig{JournalErrProb: 1, StallProb: 1})
	j, err := OpenJournal(t.TempDir(), JournalConfig{NoSync: true, Fault: faulty.JournalFault})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	d := NewDaemon(DaemonConfig{Workers: 1, Journal: j, Faults: faulty})
	defer d.Kill()

	if _, err := d.Submit(tinySpec()); err != nil {
		t.Fatalf("submit with failing journal = %v, want accepted (degraded, not down)", err)
	}
	if h := d.Health(); h.Status != "degraded" || h.JournalErrors == 0 {
		t.Fatalf("health with failing journal = %+v, want degraded with errors counted", h)
	}
	if st := j.Stats(); st.Errors == 0 || st.Appends != 0 {
		t.Errorf("journal stats under total write failure = %+v", st)
	}
}

// TestShutdownUnderLoad races concurrent submissions against Shutdown with
// an aggressive drain deadline: every accepted job must either complete or
// be journaled as requeueable — never silently lost — and every rejected
// submit must return a typed error.
func TestShutdownUnderLoad(t *testing.T) {
	dir := t.TempDir()
	stall := chaos.NewDaemonFaults(chaos.DaemonFaultsConfig{StallProb: 1})
	j, err := OpenJournal(dir, JournalConfig{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDaemon(DaemonConfig{Workers: 2, QueueDepth: 64, Journal: j, Faults: stall})

	var mu sync.Mutex
	accepted := map[int]bool{}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				snap, err := d.Submit(tinySpec())
				switch {
				case err == nil:
					mu.Lock()
					accepted[snap.ID] = true
					mu.Unlock()
				case errors.Is(err, ErrShuttingDown), errors.Is(err, ErrQueueFull):
					// Typed rejection: the caller knows the job was not taken.
				default:
					t.Errorf("Submit returned untyped error %v", err)
				}
			}
		}()
	}
	// Let some submissions land, then drain with a deadline far too short
	// for the stalled workers.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	shutdownErr := d.Shutdown(ctx)
	wg.Wait()
	if len(accepted) == 0 {
		t.Fatal("no submission landed before shutdown; test proves nothing")
	}
	if shutdownErr == nil {
		t.Fatal("shutdown with stalled workers returned nil, want deadline error")
	}
	// Finish "crashing" so the journal is quiesced, then replay it.
	d.Kill()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir, JournalConfig{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	replayed := map[int]ReplayedCampaign{}
	for _, rc := range j2.Replayed() {
		replayed[rc.ID] = rc
	}
	for id := range accepted {
		rc, ok := replayed[id]
		if !ok {
			t.Errorf("accepted campaign %d lost: not in journal replay", id)
			continue
		}
		if rc.Terminal() {
			t.Errorf("stalled campaign %d replayed terminal: %+v", id, rc)
		}
	}
	for id := range replayed {
		if !accepted[id] {
			t.Errorf("journal replayed campaign %d that no submit acknowledged", id)
		}
	}
}
