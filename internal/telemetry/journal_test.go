package telemetry

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// openTestJournal opens a journal with fsync off (tmpfs tests do not need
// the durability, only the record semantics).
func openTestJournal(t *testing.T, dir string, cfg JournalConfig) *Journal {
	t.Helper()
	cfg.NoSync = true
	j, err := OpenJournal(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir, JournalConfig{})
	if got := j.Replayed(); len(got) != 0 {
		t.Fatalf("fresh journal replayed %d campaigns", len(got))
	}

	t0 := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	spec := JobSpec{Model: "smallcnn", Trials: 2, Q: 6}.withDefaults()
	// Campaign 1 finished, 2 failed after a retry, 3 was mid-run at crash,
	// 4 was still queued.
	for id := 1; id <= 4; id++ {
		if err := j.AppendSubmit(id, t0, spec); err != nil {
			t.Fatal(err)
		}
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(j.AppendState(1, t0.Add(time.Second), StateChange{State: StateRunning, Attempt: 1}))
	must(j.AppendState(1, t0.Add(2*time.Second), StateChange{
		State: StateDone, Attempt: 1, Solutions: 4, Queries: 250, Retries: 3, Degraded: true,
	}))
	must(j.AppendState(2, t0.Add(time.Second), StateChange{State: StateRunning, Attempt: 1}))
	must(j.AppendState(2, t0.Add(2*time.Second), StateChange{State: StateRetrying, Attempt: 1, Error: "boom", Class: "panic"}))
	must(j.AppendState(2, t0.Add(3*time.Second), StateChange{State: StateRunning, Attempt: 2}))
	must(j.AppendState(2, t0.Add(4*time.Second), StateChange{State: StateFailed, Attempt: 2, Error: "boom again", Class: "panic"}))
	must(j.AppendState(3, t0.Add(time.Second), StateChange{State: StateRunning, Attempt: 1}))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openTestJournal(t, dir, JournalConfig{})
	defer j2.Close()
	got := j2.Replayed()
	if len(got) != 4 {
		t.Fatalf("replayed %d campaigns, want 4: %+v", len(got), got)
	}
	for i, rc := range got {
		if rc.ID != i+1 {
			t.Fatalf("replay order: got ID %d at index %d", rc.ID, i)
		}
		if rc.Spec.Model != "smallcnn" || rc.Spec.Trials != 2 {
			t.Errorf("campaign %d spec not preserved: %+v", rc.ID, rc.Spec)
		}
		if !rc.Submitted.Equal(t0) {
			t.Errorf("campaign %d submitted = %v, want %v", rc.ID, rc.Submitted, t0)
		}
	}
	if c := got[0]; !c.Terminal() || c.State != StateDone || c.Solutions != 4 || c.Queries != 250 || c.Retries != 3 || !c.Degraded {
		t.Errorf("campaign 1 outcome not preserved: %+v", c)
	}
	if c := got[0]; c.Finished == nil || !c.Finished.Equal(t0.Add(2*time.Second)) {
		t.Errorf("campaign 1 finished timestamp: %+v", c.Finished)
	}
	if c := got[1]; !c.Terminal() || c.State != StateFailed || c.Error != "boom again" || c.Class != "panic" || c.Attempts != 2 {
		t.Errorf("campaign 2 failure not preserved: %+v", c)
	}
	if c := got[2]; c.Terminal() || c.State != StateRunning || c.Attempts != 1 {
		t.Errorf("campaign 3 should be requeueable running: %+v", c)
	}
	if c := got[3]; c.Terminal() || c.State != StateQueued {
		t.Errorf("campaign 4 should be requeueable queued: %+v", c)
	}
}

func TestJournalTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir, JournalConfig{})
	spec := JobSpec{Model: "smallcnn"}.withDefaults()
	if err := j.AppendSubmit(1, time.Now(), spec); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, unparseable trailing line.
	seg := filepath.Join(dir, "journal-000001.jsonl")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"state","id":1,"sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2 := openTestJournal(t, dir, JournalConfig{})
	defer j2.Close()
	got := j2.Replayed()
	if len(got) != 1 || got[0].State != StateQueued {
		t.Fatalf("replay with torn tail = %+v, want campaign 1 queued", got)
	}
	if st := j2.Stats(); st.ReplaySkipped != 1 {
		t.Errorf("ReplaySkipped = %d, want 1", st.ReplaySkipped)
	}
}

func TestJournalSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir, JournalConfig{SegmentBytes: 256})
	spec := JobSpec{Model: "smallcnn"}.withDefaults()
	for id := 1; id <= 20; id++ {
		if err := j.AppendSubmit(id, time.Now(), spec); err != nil {
			t.Fatal(err)
		}
	}
	if st := j.Stats(); st.Segments < 3 {
		t.Fatalf("256-byte segments after 20 submits: %d segments, want rotation", st.Segments)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "journal-*.jsonl"))
	if len(segs) < 3 {
		t.Fatalf("on-disk segments = %d, want >= 3", len(segs))
	}

	j2 := openTestJournal(t, dir, JournalConfig{})
	defer j2.Close()
	if got := j2.Replayed(); len(got) != 20 {
		t.Fatalf("replay across segments = %d campaigns, want 20", len(got))
	}
}

func TestJournalWriteFaults(t *testing.T) {
	dir := t.TempDir()
	injected := errors.New("disk on fire")
	failing := true
	j := openTestJournal(t, dir, JournalConfig{Fault: func() error {
		if failing {
			return injected
		}
		return nil
	}})
	defer j.Close()
	spec := JobSpec{Model: "smallcnn"}.withDefaults()

	if err := j.AppendSubmit(1, time.Now(), spec); !errors.Is(err, injected) {
		t.Fatalf("append under fault = %v, want injected error", err)
	}
	if !j.Failing() {
		t.Error("journal not failing after injected write error")
	}
	if st := j.Stats(); st.Errors != 1 || st.Appends != 0 {
		t.Errorf("stats after fault = %+v", st)
	}

	// Recovery: the next successful append clears the failing latch.
	failing = false
	if err := j.AppendSubmit(2, time.Now(), spec); err != nil {
		t.Fatal(err)
	}
	if j.Failing() {
		t.Error("journal still failing after successful append")
	}
	if st := j.Stats(); st.Appends != 1 || st.Bytes == 0 {
		t.Errorf("stats after recovery = %+v", st)
	}
}

func TestJournalDisable(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir, JournalConfig{})
	spec := JobSpec{Model: "smallcnn"}.withDefaults()
	if err := j.AppendSubmit(1, time.Now(), spec); err != nil {
		t.Fatal(err)
	}
	j.Disable()
	if err := j.AppendState(1, time.Now(), StateChange{State: StateDone, Attempt: 1}); err != nil {
		t.Fatalf("append after Disable = %v, want silent no-op", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openTestJournal(t, dir, JournalConfig{})
	defer j2.Close()
	got := j2.Replayed()
	if len(got) != 1 || got[0].Terminal() {
		t.Fatalf("post-Disable appends reached disk: %+v", got)
	}
}
