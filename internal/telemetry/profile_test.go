package telemetry

import (
	"archive/zip"
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/huffduff/huffduff/internal/obs"
	"github.com/huffduff/huffduff/internal/prof"
)

// TestMetricsIncludesRuntimeGauges wires a RuntimeSampler into the server
// and checks a /metrics scrape carries the Go runtime health gauges next to
// the application series.
func TestMetricsIncludesRuntimeGauges(t *testing.T) {
	col := obs.NewCollector()
	col.Count("daemon.jobs_submitted", "", 3)
	srv := NewServer(ServerOptions{
		Collector:    col,
		Runtime:      prof.NewRuntimeSampler(),
		DisablePprof: true,
	})

	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rr.Code)
	}
	body := rr.Body.String()
	for _, want := range []string{
		"runtime_goroutines",
		"runtime_heap_alloc_bytes",
		"runtime_gc_cycles",
		"daemon_jobs_submitted 3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestDebugProfileBundle captures a short on-demand profile bundle and
// checks the zip holds the CPU profile, the capture-window flight events,
// and a metrics snapshot — and that the capture is counted.
func TestDebugProfileBundle(t *testing.T) {
	col := obs.NewCollector()
	flight := obs.NewFlightRecorder(256)
	// One event before the capture window: it must NOT appear in the bundle.
	flight.Count("before.capture", "", 1)
	srv := NewServer(ServerOptions{
		Collector:    col,
		Flight:       flight,
		Runtime:      prof.NewRuntimeSampler(),
		DisablePprof: true,
	})

	done := make(chan struct{})
	go func() {
		// Record during the capture window so flight.jsonl has content.
		for i := 0; i < 50; i++ {
			flight.Count("during.capture", "", 1)
		}
		close(done)
	}()

	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/profile?seconds=1", nil))
	<-done
	if rr.Code != http.StatusOK {
		t.Fatalf("/debug/profile: %d: %s", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/zip" {
		t.Fatalf("content type %q", ct)
	}

	zr, err := zip.NewReader(bytes.NewReader(rr.Body.Bytes()), int64(rr.Body.Len()))
	if err != nil {
		t.Fatalf("bundle is not a zip: %v", err)
	}
	files := map[string][]byte{}
	for _, f := range zr.File {
		rc, err := f.Open()
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			t.Fatal(err)
		}
		files[f.Name] = data
	}
	if len(files["cpu.pprof"]) == 0 {
		t.Error("bundle missing cpu.pprof")
	}
	fl := string(files["flight.jsonl"])
	if !strings.Contains(fl, "during.capture") {
		t.Errorf("flight.jsonl missing capture-window events:\n%s", fl)
	}
	if strings.Contains(fl, "before.capture") {
		t.Errorf("flight.jsonl leaked pre-capture events:\n%s", fl)
	}
	if !strings.Contains(string(files["metrics.prom"]), "runtime_goroutines") {
		t.Error("metrics.prom missing runtime gauges")
	}
	if got := col.CounterValue("daemon.profile_captures", ""); got != 1 {
		t.Errorf("daemon.profile_captures = %v, want 1", got)
	}
}

// TestDebugProfileRejectsBadAndConcurrent pins the guard rails: malformed
// seconds get 400, and a second capture while one runs gets 409.
func TestDebugProfileRejectsBadAndConcurrent(t *testing.T) {
	srv := NewServer(ServerOptions{DisablePprof: true})
	for _, q := range []string{"seconds=0", "seconds=-3", "seconds=soon"} {
		rr := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/profile?"+q, nil))
		if rr.Code != http.StatusBadRequest {
			t.Errorf("?%s: got %d, want 400", q, rr.Code)
		}
	}

	// Simulate an in-flight capture; the busy guard must answer 409 without
	// touching the profiler.
	srv.profiling.Store(true)
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/profile?seconds=1", nil))
	if rr.Code != http.StatusConflict {
		t.Errorf("concurrent capture: got %d, want 409", rr.Code)
	}
	srv.profiling.Store(false)
}
