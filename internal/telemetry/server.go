package telemetry

import (
	"archive/zip"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	rtpprof "runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/huffduff/huffduff/internal/converge"
	"github.com/huffduff/huffduff/internal/obs"
	"github.com/huffduff/huffduff/internal/prof"
	"github.com/huffduff/huffduff/internal/store"
)

// CampaignSource lists campaigns for /campaigns. *Daemon implements it.
type CampaignSource interface {
	Campaigns() []CampaignSnapshot
	CampaignByID(id int) (CampaignSnapshot, bool)
}

// CampaignQuerier is the filtered, paginated listing path behind GET
// /campaigns?state=&model=&since=&limit=&offset=. *Daemon implements it; a
// CampaignSource without it gets the same filters applied server-side over
// its full listing, so both paths serve identical responses.
type CampaignQuerier interface {
	CampaignsQuery(q store.Query) ([]CampaignSnapshot, error)
}

// AggregateSource serves GET /campaigns/aggregate?by=model. *Daemon
// implements it (from the campaign store).
type AggregateSource interface {
	AggregateByModel() ([]store.ModelAggregate, error)
}

// CampaignEventsSource serves GET /campaigns/{id}/events — the persisted
// flight-recorder tail of a terminal campaign. *Daemon implements it.
type CampaignEventsSource interface {
	CampaignEvents(id int) (store.EventBatch, bool, error)
}

// Submitter accepts campaign jobs for POST /campaigns. *Daemon implements
// it; a nil Submitter makes the endpoint read-only.
type Submitter interface {
	Submit(JobSpec) (CampaignSnapshot, error)
}

// HealthSource reports daemon health for /healthz. *Daemon implements it;
// without one the endpoint degrades to a bare 200 "ok".
type HealthSource interface {
	Health() Health
}

// ProgressSource resolves a campaign's convergence ledger for the
// /campaigns/{id}/progress endpoints. *Daemon implements it.
type ProgressSource interface {
	ProgressLedger(id int) (*converge.Ledger, bool)
}

// ServerOptions wires the telemetry server to its data sources. Every field
// is optional: a missing source turns the corresponding endpoint into a
// 404/empty response rather than a crash.
type ServerOptions struct {
	// Collector backs /metrics (Prometheus text format).
	Collector *obs.Collector
	// Flight backs /events (JSONL dump of the retained event tail).
	Flight *obs.FlightRecorder
	// Campaigns backs GET /campaigns and /campaigns/{id}.
	Campaigns CampaignSource
	// Submitter enables POST /campaigns.
	Submitter Submitter
	// Health backs /healthz: "ok" (200), "degraded" (200, journal failing),
	// or "draining" (503, so load-balancers stop routing to a dying node).
	Health HealthSource
	// Progress backs GET /campaigns/{id}/progress (latest convergence
	// snapshot) and /campaigns/{id}/progress/stream (incremental JSONL).
	Progress ProgressSource
	// Runtime, when set alongside Collector, refreshes Go runtime gauges
	// (goroutines, heap bytes, GC cycles, GC pause histogram) into the
	// Collector on every /metrics scrape.
	Runtime *prof.RuntimeSampler
	// DisablePprof removes the net/http/pprof handlers (on by default:
	// on-demand CPU/heap profiles are half the point of a live daemon).
	DisablePprof bool
}

// Server is the live telemetry HTTP server: /metrics, /healthz, /campaigns,
// /events, and /debug/pprof on one mux.
type Server struct {
	opts ServerOptions
	mux  *http.ServeMux
	http *http.Server
	// profiling guards /debug/profile: the runtime allows one CPU profile
	// at a time process-wide, so concurrent captures get 409.
	profiling atomic.Bool
}

// NewServer builds the server; call Serve or ListenAndServe to start it.
func NewServer(opts ServerOptions) *Server {
	s := &Server{opts: opts, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/campaigns", s.handleCampaigns)
	s.mux.HandleFunc("/campaigns/", s.handleCampaignByID)
	s.mux.HandleFunc("/events", s.handleEvents)
	s.mux.HandleFunc("/debug/profile", s.handleProfile)
	if !opts.DisablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.http = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	return s
}

// Handler exposes the mux (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.http.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("telemetry: serve: %w", err)
	}
	return nil
}

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	s.http.Addr = addr
	err := s.http.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("telemetry: listen on %s: %w", addr, err)
	}
	return nil
}

// Shutdown gracefully stops the HTTP server (in-flight requests finish).
func (s *Server) Shutdown(ctx context.Context) error {
	if err := s.http.Shutdown(ctx); err != nil {
		return fmt.Errorf("telemetry: http shutdown: %w", err)
	}
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.opts.Health == nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		return
	}
	h := s.opts.Health.Health()
	status := http.StatusOK
	if h.Status == "draining" {
		// A draining daemon finishes what it has but must receive no new
		// work: 503 tells fleet load-balancers to route elsewhere.
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.opts.Collector == nil {
		http.Error(w, "no collector configured", http.StatusNotFound)
		return
	}
	if s.opts.Runtime != nil {
		// Pull-driven runtime health: gauges reflect the moment of the
		// scrape, and GC pauses land exactly once across scrapes.
		s.opts.Runtime.Sample(s.opts.Collector)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.opts.Collector.WriteProm(w)
}

// profileSecondsMax caps the /debug/profile capture window so a stray query
// parameter cannot pin the profiler (and its capture slot) for minutes.
const profileSecondsMax = 60

// handleProfile captures an on-demand diagnostic bundle: a CPU profile over
// ?seconds (default 5, max 60) zipped together with the flight-recorder
// events that happened *during the capture window* and a metrics snapshot —
// the three artifacts a post-mortem wants, correlated in time. One capture
// runs at a time (409 otherwise). Captures are counted as
// daemon.profile_captures.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	secs := 5
	if q := r.URL.Query().Get("seconds"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			http.Error(w, "seconds must be a positive integer", http.StatusBadRequest)
			return
		}
		secs = n
	}
	if secs > profileSecondsMax {
		secs = profileSecondsMax
	}
	if !s.profiling.CompareAndSwap(false, true) {
		http.Error(w, "a profile capture is already in progress", http.StatusConflict)
		return
	}
	defer s.profiling.Store(false)

	var cpu bytes.Buffer
	startNS := time.Now().UnixNano()
	if err := rtpprof.StartCPUProfile(&cpu); err != nil {
		// Something else (net/http/pprof, a local tool) holds the profiler.
		http.Error(w, "cpu profiler busy: "+err.Error(), http.StatusConflict)
		return
	}
	select {
	case <-time.After(time.Duration(secs) * time.Second):
	case <-r.Context().Done():
		// Client gave up: stop early and discard, freeing the profiler.
		rtpprof.StopCPUProfile()
		return
	}
	rtpprof.StopCPUProfile()

	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	if f, err := zw.Create("cpu.pprof"); err == nil {
		_, _ = f.Write(cpu.Bytes())
	}
	if s.opts.Flight != nil {
		if f, err := zw.Create("flight.jsonl"); err == nil {
			enc := json.NewEncoder(f)
			for _, ev := range s.opts.Flight.Events() {
				if ev.TS >= startNS {
					_ = enc.Encode(ev)
				}
			}
		}
	}
	if s.opts.Collector != nil {
		if s.opts.Runtime != nil {
			s.opts.Runtime.Sample(s.opts.Collector)
		}
		if f, err := zw.Create("metrics.prom"); err == nil {
			_, _ = f.Write([]byte(s.opts.Collector.PromText()))
		}
		s.opts.Collector.Count("daemon.profile_captures", "", 1)
	}
	if err := zw.Close(); err != nil {
		http.Error(w, "assembling bundle: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/zip")
	w.Header().Set("Content-Disposition", `attachment; filename="profile-bundle.zip"`)
	_, _ = w.Write(buf.Bytes())
}

// handleEvents serves the flight-recorder tail as JSONL, oldest first.
// ?since= (unix nanos) keeps only events with TS >= since; ?n= keeps only
// the newest n of what remains — so combined they mean "the last n events
// since T".
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.opts.Flight == nil {
		http.Error(w, "no flight recorder configured", http.StatusNotFound)
		return
	}
	since, okSince := parseIntParam(r, "since", 64)
	n, okN := parseIntParam(r, "n", 0)
	if !okSince || !okN {
		http.Error(w, "n and since must be non-negative integers", http.StatusBadRequest)
		return
	}
	events := s.opts.Flight.Events()
	if since > 0 {
		kept := events[:0]
		for _, ev := range events {
			if ev.TS >= since {
				kept = append(kept, ev)
			}
		}
		events = kept
	}
	if n > 0 && int64(len(events)) > n {
		events = events[int64(len(events))-n:]
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return
		}
	}
}

// parseIntParam reads a non-negative integer query parameter; ok is false
// only when the parameter is present and malformed. bits 0 means int-sized.
func parseIntParam(r *http.Request, name string, bits int) (int64, bool) {
	q := r.URL.Query().Get(name)
	if q == "" {
		return 0, true
	}
	v, err := strconv.ParseInt(q, 10, max(bits, strconv.IntSize))
	if err != nil || v < 0 {
		return 0, false
	}
	return v, true
}

// parseCampaignQuery builds the store query from GET /campaigns parameters.
func parseCampaignQuery(r *http.Request) (store.Query, string, bool) {
	var q store.Query
	q.State = r.URL.Query().Get("state")
	switch q.State {
	case "", StateQueued, StateRunning, StateRetrying, StateDone, StateFailed:
	default:
		return q, "unknown state " + strconv.Quote(q.State), false
	}
	q.Model = r.URL.Query().Get("model")
	since, ok := parseIntParam(r, "since", 64)
	if !ok {
		return q, "since must be unix nanoseconds", false
	}
	q.SinceNS = since
	limit, ok := parseIntParam(r, "limit", 0)
	if !ok {
		return q, "limit must be a non-negative integer", false
	}
	q.Limit = int(limit)
	offset, ok := parseIntParam(r, "offset", 0)
	if !ok {
		return q, "offset must be a non-negative integer", false
	}
	q.Offset = int(offset)
	return q, "", true
}

// queryCampaigns serves the filtered listing: through the source's own
// querier when it has one (the daemon's store-backed path), otherwise by
// applying identical filter/sort/window semantics over the plain listing.
func queryCampaigns(src CampaignSource, q store.Query) ([]CampaignSnapshot, error) {
	if querier, ok := src.(CampaignQuerier); ok {
		return querier.CampaignsQuery(q)
	}
	all := src.Campaigns()
	out := make([]CampaignSnapshot, 0, len(all))
	for _, snap := range all {
		if matchSnapshot(q, snap) {
			out = append(out, snap)
		}
	}
	// The listing contract is deterministic ascending-ID order regardless of
	// how the source enumerates.
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	if q.Offset > 0 {
		if q.Offset >= len(out) {
			out = out[:0]
		} else {
			out = out[q.Offset:]
		}
	}
	if q.Limit > 0 && q.Limit < len(out) {
		out = out[:q.Limit]
	}
	return out, nil
}

func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		if s.opts.Campaigns == nil {
			writeJSON(w, http.StatusOK, []CampaignSnapshot{})
			return
		}
		q, msg, ok := parseCampaignQuery(r)
		if !ok {
			http.Error(w, msg, http.StatusBadRequest)
			return
		}
		snaps, err := queryCampaigns(s.opts.Campaigns, q)
		if err != nil {
			http.Error(w, "listing campaigns: "+err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, http.StatusOK, snaps)
	case http.MethodPost:
		if s.opts.Submitter == nil {
			http.Error(w, "read-only server: no submitter configured", http.StatusMethodNotAllowed)
			return
		}
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(w, "bad job spec: "+err.Error(), http.StatusBadRequest)
			return
		}
		snap, err := s.opts.Submitter.Submit(spec)
		switch {
		case errors.Is(err, ErrQueueFull):
			// Real backpressure: the bounded queue is full. 429 plus a
			// Retry-After hint and a structured body, so clients can back
			// off programmatically instead of parsing prose.
			s.writeAPIError(w, http.StatusTooManyRequests, err, true)
		case errors.Is(err, ErrShuttingDown):
			s.writeAPIError(w, http.StatusServiceUnavailable, err, true)
		case err != nil:
			s.writeAPIError(w, http.StatusBadRequest, err, false)
		default:
			writeJSON(w, http.StatusAccepted, snap)
		}
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleCampaignByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/campaigns/")
	idPart, sub, _ := strings.Cut(rest, "/")
	if idPart == "aggregate" && sub == "" {
		s.handleAggregate(w, r)
		return
	}
	id, err := strconv.Atoi(idPart)
	if err != nil {
		http.Error(w, "campaign IDs are integers", http.StatusBadRequest)
		return
	}
	switch sub {
	case "":
		if s.opts.Campaigns == nil {
			http.NotFound(w, r)
			return
		}
		snap, ok := s.opts.Campaigns.CampaignByID(id)
		if !ok {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, http.StatusOK, snap)
	case "progress":
		s.handleProgress(w, r, id)
	case "progress/stream":
		s.handleProgressStream(w, r, id)
	case "events":
		s.handleCampaignEvents(w, r, id)
	default:
		http.NotFound(w, r)
	}
}

// handleAggregate serves GET /campaigns/aggregate?by=model: the per-model
// fold of the stored campaign history.
func (s *Server) handleAggregate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	src, ok := s.opts.Campaigns.(AggregateSource)
	if !ok {
		http.Error(w, "no aggregate source configured", http.StatusNotFound)
		return
	}
	if by := r.URL.Query().Get("by"); by != "" && by != "model" {
		http.Error(w, "unsupported aggregation "+strconv.Quote(by)+"; only by=model", http.StatusBadRequest)
		return
	}
	aggs, err := src.AggregateByModel()
	if err != nil {
		http.Error(w, "aggregating campaigns: "+err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, aggs)
}

// handleCampaignEvents serves GET /campaigns/{id}/events: the persisted
// flight-recorder tail of a terminal campaign, 404 until one is stored.
func (s *Server) handleCampaignEvents(w http.ResponseWriter, r *http.Request, id int) {
	src, ok := s.opts.Campaigns.(CampaignEventsSource)
	if !ok {
		http.NotFound(w, r)
		return
	}
	batch, found, err := src.CampaignEvents(id)
	if err != nil {
		http.Error(w, "reading stored events: "+err.Error(), http.StatusInternalServerError)
		return
	}
	if !found {
		http.Error(w, "no stored events for campaign "+strconv.Itoa(id), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, batch)
}

// handleProgress serves the latest convergence snapshot for one campaign.
// A campaign whose attack has not yet produced a snapshot returns 404 with
// a distinct message, so clients can tell "not started" from "no campaign".
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request, id int) {
	if s.opts.Progress == nil {
		http.NotFound(w, r)
		return
	}
	led, ok := s.opts.Progress.ProgressLedger(id)
	if !ok {
		http.NotFound(w, r)
		return
	}
	snap, ok := led.Latest()
	if !ok {
		http.Error(w, "no convergence snapshots yet", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleProgressStream streams convergence snapshots as JSONL: full replay
// of the history so far, then live snapshots as the attack appends them.
// The stream ends when the campaign's ledger closes (terminal state) or the
// client disconnects. Each line is flushed immediately so a watcher sees
// the collapse as it happens, not when a buffer fills.
func (s *Server) handleProgressStream(w http.ResponseWriter, r *http.Request, id int) {
	if s.opts.Progress == nil {
		http.NotFound(w, r)
		return
	}
	led, ok := s.opts.Progress.ProgressLedger(id)
	if !ok {
		http.NotFound(w, r)
		return
	}
	ch, cancel := led.Subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		select {
		case snap, open := <-ch:
			if !open {
				return
			}
			if err := enc.Encode(snap); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// APIError is the structured error body of every non-2xx /campaigns
// response. RetryAfterSeconds mirrors the Retry-After header on
// backpressure rejections (429 queue-full, 503 draining).
type APIError struct {
	Error             string `json:"error"`
	RetryAfterSeconds int    `json:"retry_after_seconds,omitempty"`
}

// writeAPIError writes a structured error response; withRetry adds the
// Retry-After header and body field from the submitter's hint.
func (s *Server) writeAPIError(w http.ResponseWriter, status int, err error, withRetry bool) {
	body := APIError{Error: err.Error()}
	if withRetry {
		retry := 5 * time.Second
		if h, ok := s.opts.Submitter.(interface{ RetryAfterHint() time.Duration }); ok {
			retry = h.RetryAfterHint()
		}
		secs := int(retry.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		body.RetryAfterSeconds = secs
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, status, body)
}

// writeJSON writes v as an indented JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
