package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"github.com/huffduff/huffduff/internal/obs"
)

// CampaignSource lists campaigns for /campaigns. *Daemon implements it.
type CampaignSource interface {
	Campaigns() []CampaignSnapshot
	CampaignByID(id int) (CampaignSnapshot, bool)
}

// Submitter accepts campaign jobs for POST /campaigns. *Daemon implements
// it; a nil Submitter makes the endpoint read-only.
type Submitter interface {
	Submit(JobSpec) (CampaignSnapshot, error)
}

// HealthSource reports daemon health for /healthz. *Daemon implements it;
// without one the endpoint degrades to a bare 200 "ok".
type HealthSource interface {
	Health() Health
}

// ServerOptions wires the telemetry server to its data sources. Every field
// is optional: a missing source turns the corresponding endpoint into a
// 404/empty response rather than a crash.
type ServerOptions struct {
	// Collector backs /metrics (Prometheus text format).
	Collector *obs.Collector
	// Flight backs /events (JSONL dump of the retained event tail).
	Flight *obs.FlightRecorder
	// Campaigns backs GET /campaigns and /campaigns/{id}.
	Campaigns CampaignSource
	// Submitter enables POST /campaigns.
	Submitter Submitter
	// Health backs /healthz: "ok" (200), "degraded" (200, journal failing),
	// or "draining" (503, so load-balancers stop routing to a dying node).
	Health HealthSource
	// DisablePprof removes the net/http/pprof handlers (on by default:
	// on-demand CPU/heap profiles are half the point of a live daemon).
	DisablePprof bool
}

// Server is the live telemetry HTTP server: /metrics, /healthz, /campaigns,
// /events, and /debug/pprof on one mux.
type Server struct {
	opts ServerOptions
	mux  *http.ServeMux
	http *http.Server
}

// NewServer builds the server; call Serve or ListenAndServe to start it.
func NewServer(opts ServerOptions) *Server {
	s := &Server{opts: opts, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/campaigns", s.handleCampaigns)
	s.mux.HandleFunc("/campaigns/", s.handleCampaignByID)
	s.mux.HandleFunc("/events", s.handleEvents)
	if !opts.DisablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.http = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	return s
}

// Handler exposes the mux (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.http.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("telemetry: serve: %w", err)
	}
	return nil
}

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	s.http.Addr = addr
	err := s.http.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("telemetry: listen on %s: %w", addr, err)
	}
	return nil
}

// Shutdown gracefully stops the HTTP server (in-flight requests finish).
func (s *Server) Shutdown(ctx context.Context) error {
	if err := s.http.Shutdown(ctx); err != nil {
		return fmt.Errorf("telemetry: http shutdown: %w", err)
	}
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.opts.Health == nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		return
	}
	h := s.opts.Health.Health()
	status := http.StatusOK
	if h.Status == "draining" {
		// A draining daemon finishes what it has but must receive no new
		// work: 503 tells fleet load-balancers to route elsewhere.
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.opts.Collector == nil {
		http.Error(w, "no collector configured", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.opts.Collector.WriteProm(w)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.opts.Flight == nil {
		http.Error(w, "no flight recorder configured", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = s.opts.Flight.WriteJSONL(w)
}

func (s *Server) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		if s.opts.Campaigns == nil {
			writeJSON(w, http.StatusOK, []CampaignSnapshot{})
			return
		}
		writeJSON(w, http.StatusOK, s.opts.Campaigns.Campaigns())
	case http.MethodPost:
		if s.opts.Submitter == nil {
			http.Error(w, "read-only server: no submitter configured", http.StatusMethodNotAllowed)
			return
		}
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			http.Error(w, "bad job spec: "+err.Error(), http.StatusBadRequest)
			return
		}
		snap, err := s.opts.Submitter.Submit(spec)
		switch {
		case errors.Is(err, ErrQueueFull):
			// Real backpressure: the bounded queue is full. 429 plus a
			// Retry-After hint and a structured body, so clients can back
			// off programmatically instead of parsing prose.
			s.writeAPIError(w, http.StatusTooManyRequests, err, true)
		case errors.Is(err, ErrShuttingDown):
			s.writeAPIError(w, http.StatusServiceUnavailable, err, true)
		case err != nil:
			s.writeAPIError(w, http.StatusBadRequest, err, false)
		default:
			writeJSON(w, http.StatusAccepted, snap)
		}
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleCampaignByID(w http.ResponseWriter, r *http.Request) {
	if s.opts.Campaigns == nil {
		http.NotFound(w, r)
		return
	}
	id, err := strconv.Atoi(strings.TrimPrefix(r.URL.Path, "/campaigns/"))
	if err != nil {
		http.Error(w, "campaign IDs are integers", http.StatusBadRequest)
		return
	}
	snap, ok := s.opts.Campaigns.CampaignByID(id)
	if !ok {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// APIError is the structured error body of every non-2xx /campaigns
// response. RetryAfterSeconds mirrors the Retry-After header on
// backpressure rejections (429 queue-full, 503 draining).
type APIError struct {
	Error             string `json:"error"`
	RetryAfterSeconds int    `json:"retry_after_seconds,omitempty"`
}

// writeAPIError writes a structured error response; withRetry adds the
// Retry-After header and body field from the submitter's hint.
func (s *Server) writeAPIError(w http.ResponseWriter, status int, err error, withRetry bool) {
	body := APIError{Error: err.Error()}
	if withRetry {
		retry := 5 * time.Second
		if h, ok := s.opts.Submitter.(interface{ RetryAfterHint() time.Duration }); ok {
			retry = h.RetryAfterHint()
		}
		secs := int(retry.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		body.RetryAfterSeconds = secs
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, status, body)
}

// writeJSON writes v as an indented JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}
