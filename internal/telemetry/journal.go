package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/huffduff/huffduff/internal/obs"
)

// The journal is the daemon's write-ahead log: every JobSpec is recorded at
// submit time and every state transition (queued, running, retrying, done,
// failed) is appended — and fsync'd — before the daemon acts on it. A
// restarted daemon replays the journal to rebuild its campaign table:
// terminal campaigns keep their IDs and results, and campaigns that were
// queued, running, or waiting on a retry at crash time are requeued. The
// format is JSONL segments under one directory, rotated by size; a new
// segment is started on every open so a torn tail from a crash is never
// appended after. See DESIGN.md "Durable job journal".

// Journal record kinds.
const (
	journalKindSubmit = "submit"
	journalKindState  = "state"
)

// journalRecord is one JSONL line. Submit records carry the spec; state
// records carry the transition plus — for terminal states — the campaign's
// outcome.
type journalRecord struct {
	Kind string    `json:"kind"`
	ID   int       `json:"id"`
	TS   time.Time `json:"ts"`
	// Submit payload.
	Spec *JobSpec `json:"spec,omitempty"`
	// State payload.
	State   string `json:"state,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Error   string `json:"error,omitempty"`
	Class   string `json:"class,omitempty"`
	// Terminal outcome (state = done).
	Solutions int  `json:"solutions,omitempty"`
	Queries   int  `json:"queries,omitempty"`
	Retries   int  `json:"retries,omitempty"`
	Degraded  bool `json:"degraded,omitempty"`
}

// JournalConfig tunes the write-ahead journal.
type JournalConfig struct {
	// SegmentBytes rotates to a fresh segment file once the current one
	// exceeds this size (default 4 MiB).
	SegmentBytes int64
	// NoSync skips the per-append fsync. Only tests should set it: without
	// the fsync a crash can lose acknowledged submissions.
	NoSync bool
	// Fault, when set, is consulted before every append; a non-nil return
	// is treated as a write failure. It is the chaos hook for journal
	// fault injection (chaos.DaemonFaults.JournalFault).
	Fault func() error
	// Obs receives journal counters: journal.appends, journal.bytes,
	// journal.fsyncs, journal.errors, journal.replay_skipped.
	Obs obs.Recorder
}

// JournalStats counts journal activity since open.
type JournalStats struct {
	Appends, Bytes, Fsyncs, Errors, ReplaySkipped uint64
	Segments                                      int
}

// ReplayedCampaign is one campaign reconstructed from the journal.
type ReplayedCampaign struct {
	ID        int
	Spec      JobSpec
	Submitted time.Time
	Started   *time.Time
	Finished  *time.Time
	// State is the last journaled state; non-terminal states mean the
	// campaign must be requeued.
	State    string
	Attempts int
	Error    string
	Class    string
	// Terminal outcome, valid when State is done.
	Solutions, Queries, Retries int
	Degraded                    bool
}

// Terminal reports whether the campaign finished before the crash; a
// non-terminal replayed campaign is requeued on restart.
func (rc ReplayedCampaign) Terminal() bool {
	return rc.State == StateDone || rc.State == StateFailed
}

// Journal is the daemon's fsync'd JSONL write-ahead log. All methods are
// safe for concurrent use.
type Journal struct {
	dir string
	cfg JournalConfig

	mu sync.Mutex
	// f is guarded by mu; nil once the journal is closed or sealed.
	f *os.File
	// segIndex is guarded by mu.
	segIndex int
	// segSize is guarded by mu.
	segSize int64
	// disabled is guarded by mu.
	disabled bool
	// sealed is guarded by mu; set when a failed write left no usable
	// segment, so later appends report the failure instead of silently
	// dropping records.
	sealed bool
	// failing is guarded by mu.
	failing bool
	// stats is guarded by mu.
	stats JournalStats
	// replayed is guarded by mu.
	replayed []ReplayedCampaign
}

// OpenJournal opens (creating if needed) the journal directory, replays
// every existing segment into a campaign table (Replayed), and starts a
// fresh segment for this process's appends — never appending to a segment
// that may end in a torn write from the previous crash.
func OpenJournal(dir string, cfg JournalConfig) (*Journal, error) {
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: journal dir: %w", err)
	}
	j := &Journal{dir: dir, cfg: cfg}
	segs, err := filepath.Glob(filepath.Join(dir, "journal-*.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("telemetry: journal glob: %w", err)
	}
	sort.Strings(segs)
	byID := map[int]*ReplayedCampaign{}
	for _, seg := range segs {
		if err := j.replaySegment(seg, byID); err != nil {
			return nil, err
		}
	}
	ids := make([]int, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	j.replayed = make([]ReplayedCampaign, 0, len(ids))
	for _, id := range ids {
		j.replayed = append(j.replayed, *byID[id])
	}
	j.segIndex = len(segs) + 1
	if err := j.openSegmentLocked(); err != nil {
		return nil, err
	}
	return j, nil
}

// replaySegment folds one segment's records into the campaign table.
// Unparseable lines — a torn tail from the crash that ended the segment —
// are counted and skipped, not fatal: losing the final unacknowledged
// record is exactly the durability contract of a write-ahead log.
func (j *Journal) replaySegment(path string, byID map[int]*ReplayedCampaign) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("telemetry: journal segment %s: %w", path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var rec journalRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			j.stats.ReplaySkipped++
			continue
		}
		j.applyReplay(rec, byID)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("telemetry: journal segment %s: %w", path, err)
	}
	return nil
}

// applyReplay folds one record into the table. State records for IDs whose
// submit record is missing (e.g. manually pruned segments) are skipped.
func (j *Journal) applyReplay(rec journalRecord, byID map[int]*ReplayedCampaign) {
	switch rec.Kind {
	case journalKindSubmit:
		if rec.Spec == nil {
			j.stats.ReplaySkipped++
			return
		}
		byID[rec.ID] = &ReplayedCampaign{
			ID:        rec.ID,
			Spec:      *rec.Spec,
			Submitted: rec.TS,
			State:     StateQueued,
		}
	case journalKindState:
		rc, ok := byID[rec.ID]
		if !ok {
			j.stats.ReplaySkipped++
			return
		}
		rc.State = rec.State
		if rec.Attempt > rc.Attempts {
			rc.Attempts = rec.Attempt
		}
		switch rec.State {
		case StateRunning:
			ts := rec.TS
			rc.Started = &ts
		case StateRetrying, StateFailed:
			rc.Error, rc.Class = rec.Error, rec.Class
		case StateDone:
			rc.Solutions = rec.Solutions
			rc.Queries = rec.Queries
			rc.Retries = rec.Retries
			rc.Degraded = rec.Degraded
			rc.Error, rc.Class = "", ""
		}
		if rec.State == StateDone || rec.State == StateFailed {
			ts := rec.TS
			rc.Finished = &ts
		}
	default:
		j.stats.ReplaySkipped++
	}
}

// Replayed returns the campaigns reconstructed at open time, ascending ID.
func (j *Journal) Replayed() []ReplayedCampaign {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]ReplayedCampaign(nil), j.replayed...)
}

// openSegmentLocked starts segment j.segIndex for appending. Callers hold
// j.mu or have exclusive access (OpenJournal).
func (j *Journal) openSegmentLocked() error {
	path := filepath.Join(j.dir, fmt.Sprintf("journal-%06d.jsonl", j.segIndex))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("telemetry: journal segment %s: %w", path, err)
	}
	j.f = f
	j.segSize = 0
	j.stats.Segments++
	return nil
}

// AppendSubmit journals a newly accepted job, durably, before the daemon
// acknowledges it.
func (j *Journal) AppendSubmit(id int, ts time.Time, spec JobSpec) error {
	return j.append(journalRecord{Kind: journalKindSubmit, ID: id, TS: ts, Spec: &spec})
}

// StateChange is one campaign state transition to journal.
type StateChange struct {
	State   string
	Attempt int
	Error   string
	Class   string
	// Terminal outcome, for done records.
	Solutions, Queries, Retries int
	Degraded                    bool
}

// AppendState journals one state transition.
func (j *Journal) AppendState(id int, ts time.Time, ch StateChange) error {
	return j.append(journalRecord{
		Kind: journalKindState, ID: id, TS: ts,
		State: ch.State, Attempt: ch.Attempt, Error: ch.Error, Class: ch.Class,
		Solutions: ch.Solutions, Queries: ch.Queries, Retries: ch.Retries,
		Degraded: ch.Degraded,
	})
}

// append writes one record followed by fsync, rotating segments by size.
// Failures are counted, latch the failing flag (cleared by the next
// successful append), and are returned — but the daemon deliberately keeps
// running when the journal fails: availability over durability, with
// /healthz reporting degraded.
func (j *Journal) append(rec journalRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("telemetry: journal encode: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.disabled || (j.f == nil && !j.sealed) {
		return nil
	}
	if j.f == nil {
		// Sealed after a failed write and no replacement segment could be
		// opened: nothing can be persisted. Keep reporting so /healthz
		// stays degraded instead of silently dropping records.
		j.stats.Errors++
		j.failing = true
		j.count("journal.errors", 1)
		return fmt.Errorf("telemetry: journal sealed after write failure")
	}
	if err := j.writeLocked(line); err != nil {
		j.stats.Errors++
		j.failing = true
		j.count("journal.errors", 1)
		return err
	}
	j.failing = false
	j.stats.Appends++
	j.stats.Bytes += uint64(len(line))
	j.count("journal.appends", 1)
	j.count("journal.bytes", float64(len(line)))
	return nil
}

// writeLocked performs the fault-injectable write+fsync under j.mu. A
// failed write or fsync seals the active segment: the file may now end in
// a torn partial line, and appending anything after it would hand the next
// replay a corrupted record built from two concatenated halves — the
// acknowledged record before the corruption would be lost. Sealing closes
// the handle and rotates to a fresh segment, quarantining the torn tail
// exactly the way a crash tail is quarantined. Injected faults
// (cfg.Fault) return before anything touches the file, so they do not
// seal — the chaos tests rely on the journal recovering in place once the
// fault window closes.
func (j *Journal) writeLocked(line []byte) error {
	if j.cfg.Fault != nil {
		if err := j.cfg.Fault(); err != nil {
			return fmt.Errorf("telemetry: journal write: %w", err)
		}
	}
	if _, err := j.f.Write(line); err != nil {
		j.sealFailedLocked()
		return fmt.Errorf("telemetry: journal write: %w", err)
	}
	j.segSize += int64(len(line))
	if !j.cfg.NoSync {
		if err := j.f.Sync(); err != nil {
			j.sealFailedLocked()
			return fmt.Errorf("telemetry: journal fsync: %w", err)
		}
		j.stats.Fsyncs++
		j.count("journal.fsyncs", 1)
	}
	if j.segSize >= j.cfg.SegmentBytes {
		if err := j.f.Close(); err != nil {
			j.sealFailedLocked()
			return fmt.Errorf("telemetry: journal rotate close: %w", err)
		}
		j.f = nil
		j.segIndex++
		if err := j.openSegmentLocked(); err != nil {
			j.sealed = true
			return err
		}
	}
	return nil
}

// sealFailedLocked quarantines the active segment after a failed write,
// fsync, or rotate-close: the file may end in torn bytes, so the handle is
// closed (best effort — the segment is already suspect) and a fresh
// segment is opened for later appends. Replay already skips unparseable
// tails, so the quarantined segment stays readable. If even the fresh
// segment cannot be opened, the journal latches sealed and later appends
// keep reporting the failure.
func (j *Journal) sealFailedLocked() {
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
	j.segIndex++
	if err := j.openSegmentLocked(); err != nil {
		j.sealed = true
	}
}

// count publishes a journal counter when a recorder is configured. Callers
// hold j.mu, which is fine: Recorder implementations take their own locks
// and never call back into the journal.
func (j *Journal) count(name string, v float64) {
	if j.cfg.Obs != nil {
		j.cfg.Obs.Count(name, "", v)
	}
}

// Stats returns the journal counters since open.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Failing reports whether the most recent append failed — the degraded
// signal /healthz surfaces while the journal cannot persist.
func (j *Journal) Failing() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failing
}

// Disable makes every later append a silent no-op. It is the crash
// simulation hook: Daemon.Kill disables the journal before tearing down
// workers, so nothing that happens during the simulated crash reaches disk
// — exactly as if the process had died.
func (j *Journal) Disable() {
	j.mu.Lock()
	j.disabled = true
	j.mu.Unlock()
}

// Close flushes and closes the current segment.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	f := j.f
	j.f = nil
	if err := f.Close(); err != nil {
		return fmt.Errorf("telemetry: journal close: %w", err)
	}
	return nil
}
