package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/huffduff/huffduff/internal/obs"
	"github.com/huffduff/huffduff/internal/store"
)

// getRaw fetches one path and returns the body and status code.
func getRaw(t *testing.T, base, path string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, resp.StatusCode
}

// listCampaigns fetches GET /campaigns with a query string and decodes it.
func listCampaigns(t *testing.T, base, query string) []CampaignSnapshot {
	t.Helper()
	body, code := getRaw(t, base, "/campaigns"+query)
	if code != http.StatusOK {
		t.Fatalf("GET /campaigns%s: %d: %s", query, code, body)
	}
	var out []CampaignSnapshot
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("GET /campaigns%s: %v", query, err)
	}
	return out
}

// normalizeResumed clears the Resumed flag — the one field that legitimately
// differs between a pre-crash listing and its post-restart restoration — and
// re-marshals for byte comparison.
func normalizeResumed(t *testing.T, snaps []CampaignSnapshot) string {
	t.Helper()
	for i := range snaps {
		snaps[i].Resumed = false
	}
	raw, err := json.Marshal(snaps)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestStoreKillRestart is the acceptance-criterion integration test: a
// daemon with a journal, a segment store, and a flight recorder runs three
// campaigns to done and one to failed, is killed, and a restart on the same
// data dir must serve the full pre-crash history — filtered listings,
// per-model aggregates, and per-campaign stored event tails — identically.
func TestStoreKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full smallcnn campaigns; skipped in -short (CI runs it in a dedicated race step)")
	}
	dir := t.TempDir()
	journalDir, storeDir := dir+"/journal", dir+"/store"

	// Phase 1: run campaigns to terminal states with everything wired.
	col1 := obs.NewCollector()
	flight1 := obs.NewFlightRecorder(obs.DefaultFlightEvents)
	rec1 := obs.Fanout(col1, flight1)
	j1, err := OpenJournal(journalDir, JournalConfig{Obs: rec1})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := store.Open(storeDir, store.SegmentConfig{Obs: rec1})
	if err != nil {
		t.Fatal(err)
	}
	d1 := NewDaemon(DaemonConfig{
		Workers: 2, QueueDepth: 8,
		Recorder: rec1, Journal: j1, Store: s1, Flight: flight1,
		Retry: RetryPolicy{MaxAttempts: 1, BaseDelay: 5 * time.Millisecond},
	})
	base1, stop1 := startServer(t, d1, col1)

	for i := 0; i < 3; i++ {
		postJob(t, base1, tinySpec())
	}
	// Campaign 4 fails deterministically: a deadline far below any real run.
	doomed := tinySpec()
	doomed.TimeoutSeconds = 0.000001
	postJob(t, base1, doomed)
	for id := 1; id <= 3; id++ {
		waitState(t, d1, id, 4*time.Minute, StateDone)
	}
	waitState(t, d1, 4, 30*time.Second, StateFailed)

	// The terminal snapshots carry their convergence summaries, and the
	// store has all four campaigns.
	for _, c := range listCampaigns(t, base1, "?state=done") {
		if c.Converge == nil || c.Converge.TotalQueries == 0 {
			t.Errorf("campaign %d finished without a convergence summary: %+v", c.ID, c.Converge)
		}
	}
	if st := d1.StoreStats(); st.Records != 4 {
		t.Fatalf("store holds %d records after 4 terminal campaigns", st.Records)
	}

	// Pre-crash reference responses.
	wantDone := normalizeResumed(t, listCampaigns(t, base1, "?model=smallcnn&state=done&limit=2"))
	wantAgg, code := getRaw(t, base1, "/campaigns/aggregate?by=model")
	if code != http.StatusOK {
		t.Fatalf("GET /campaigns/aggregate: %d: %s", code, wantAgg)
	}
	wantEvents, code := getRaw(t, base1, "/campaigns/1/events")
	if code != http.StatusOK {
		t.Fatalf("GET /campaigns/1/events: %d: %s", code, wantEvents)
	}
	var batch store.EventBatch
	if err := json.Unmarshal(wantEvents, &batch); err != nil {
		t.Fatal(err)
	}
	if batch.CampaignID != 1 || len(batch.Events) == 0 || batch.FirstNS > batch.LastNS {
		t.Fatalf("stored event batch malformed: id=%d events=%dB [%d,%d]",
			batch.CampaignID, len(batch.Events), batch.FirstNS, batch.LastNS)
	}
	metrics1 := scrapeProm(t, base1)
	for _, name := range []string{"store_appends", "store_append_bytes", "store_records", "store_live_bytes", "store_segments"} {
		if metrics1[name] <= 0 {
			t.Errorf("metric %s missing or zero before crash: %v", name, metrics1[name])
		}
	}

	// Crash.
	d1.Kill()
	stop1()
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: restart on the same data dir. The full history must be
	// served from the store — filtered, paginated, aggregated, and with the
	// stored event tails — byte-identically (modulo the Resumed mark).
	col2 := obs.NewCollector()
	rec2 := obs.Fanout(col2)
	j2, err := OpenJournal(journalDir, JournalConfig{Obs: rec2})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s2, err := store.Open(storeDir, store.SegmentConfig{Obs: rec2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	d2 := NewDaemon(DaemonConfig{Workers: 1, QueueDepth: 8, Recorder: rec2, Journal: j2, Store: s2})
	defer d2.Kill()
	base2, stop2 := startServer(t, d2, col2)
	defer stop2()

	restored := listCampaigns(t, base2, "?model=smallcnn&state=done&limit=2")
	if len(restored) != 2 {
		t.Fatalf("restored filtered listing has %d campaigns, want 2", len(restored))
	}
	for _, c := range restored {
		if !c.Resumed {
			t.Errorf("restored campaign %d not marked resumed", c.ID)
		}
		if c.Device == nil {
			t.Errorf("restored campaign %d lost its device telemetry (store payload should carry it)", c.ID)
		}
		if c.Converge == nil {
			t.Errorf("restored campaign %d lost its convergence summary", c.ID)
		}
	}
	if got := normalizeResumed(t, restored); got != wantDone {
		t.Errorf("restored filtered listing diverged from pre-crash:\n got %s\nwant %s", got, wantDone)
	}
	gotAgg, code := getRaw(t, base2, "/campaigns/aggregate?by=model")
	if code != http.StatusOK {
		t.Fatalf("GET /campaigns/aggregate after restart: %d: %s", code, gotAgg)
	}
	if string(gotAgg) != string(wantAgg) {
		t.Errorf("aggregate diverged across restart:\n got %s\nwant %s", gotAgg, wantAgg)
	}
	var aggs []store.ModelAggregate
	if err := json.Unmarshal(gotAgg, &aggs); err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 1 || aggs[0].Model != "smallcnn" || aggs[0].Campaigns != 4 ||
		aggs[0].Done != 3 || aggs[0].Failed != 1 || aggs[0].TotalQueries == 0 {
		t.Errorf("aggregate content wrong: %+v", aggs)
	}
	gotEvents, code := getRaw(t, base2, "/campaigns/1/events")
	if code != http.StatusOK {
		t.Fatalf("GET /campaigns/1/events after restart: %d", code)
	}
	if string(gotEvents) != string(wantEvents) {
		t.Errorf("stored event tail diverged across restart:\n got %s\nwant %s", gotEvents, wantEvents)
	}

	// Time-range filter: everything since the newest finish time is exactly
	// the campaigns finishing at that instant; a nanosecond later is empty.
	all := listCampaigns(t, base2, "")
	if len(all) != 4 {
		t.Fatalf("unfiltered listing has %d campaigns, want 4", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].ID <= all[i-1].ID {
			t.Fatalf("listing not in ascending-ID order: %d then %d", all[i-1].ID, all[i].ID)
		}
	}
	var maxFin int64
	for _, c := range all {
		if c.Finished == nil {
			t.Fatalf("campaign %d restored non-terminal: %q", c.ID, c.State)
		}
		if ns := c.Finished.UnixNano(); ns > maxFin {
			maxFin = ns
		}
	}
	since := listCampaigns(t, base2, fmt.Sprintf("?since=%d", maxFin))
	if len(since) < 1 {
		t.Errorf("since=max-finish returned %d campaigns, want >= 1", len(since))
	}
	if after := listCampaigns(t, base2, fmt.Sprintf("?since=%d", maxFin+1)); len(after) != 0 {
		t.Errorf("since=max-finish+1 returned %d campaigns, want 0", len(after))
	}
	// Pagination windows tile the listing without overlap.
	page1 := listCampaigns(t, base2, "?limit=3")
	page2 := listCampaigns(t, base2, "?offset=3&limit=3")
	if len(page1) != 3 || len(page2) != 1 || page1[2].ID >= page2[0].ID {
		t.Errorf("pagination windows wrong: %d + %d campaigns", len(page1), len(page2))
	}

	// The restarted store publishes its gauges, and the read paths record
	// latency histograms on /metrics.
	metrics2 := scrapeProm(t, base2)
	if metrics2["store_records"] < 4 {
		t.Errorf("store_records after restart = %v, want >= 4", metrics2["store_records"])
	}
	if metrics2["store_read_seconds_count"] <= 0 {
		t.Errorf("store read-latency histogram missing after queried reads: %v", metrics2["store_read_seconds_count"])
	}

	// New submissions continue above the stored high-water mark.
	snap := postJob(t, base2, tinySpec())
	if snap.ID != 5 {
		t.Fatalf("post-restart submission got ID %d, want 5", snap.ID)
	}
	waitState(t, d2, 5, 4*time.Minute, StateDone)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := d2.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

// fixedSnapshot builds a deterministic terminal snapshot (fixed timestamps)
// for backend-comparability tests.
func fixedSnapshot(id int, model, state string, fin time.Time, queries int, degraded bool) CampaignSnapshot {
	started := fin.Add(-3 * time.Second)
	submitted := started.Add(-time.Second)
	return CampaignSnapshot{
		ID:            id,
		Spec:          JobSpec{Model: model, Scale: 16, Keep: 0.5, Trials: 2, Q: 6, Seed: 1, ChaosSeed: 1},
		State:         state,
		Submitted:     submitted,
		Started:       &started,
		Finished:      &fin,
		Attempts:      1,
		VictimQueries: queries,
		SolutionCount: 4,
		Degraded:      degraded,
	}
}

// TestBackendsServeIdenticalResponses pre-populates a memory store and a
// segment store with identical terminal campaigns, fronts each with a
// daemon+server, and requires byte-identical HTTP responses for the whole
// query matrix — listings, filters, pagination, and aggregates.
func TestBackendsServeIdenticalResponses(t *testing.T) {
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	var snaps []CampaignSnapshot
	models := []string{"smallcnn", "vggs"}
	for i := 1; i <= 12; i++ {
		state := StateDone
		if i%4 == 0 {
			state = StateFailed
		}
		snaps = append(snaps, fixedSnapshot(
			i, models[i%2], state, base.Add(time.Duration(i)*time.Minute), 100*i, i%5 == 0))
	}

	mem := store.NewMemory()
	defer mem.Close()
	seg, err := store.Open(t.TempDir(), store.SegmentConfig{SegmentBytes: 2048, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	for _, s := range []store.Store{mem, seg} {
		for _, snap := range snaps {
			rec, err := recordFromSnapshot(snap)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.PutCampaign(rec); err != nil {
				t.Fatal(err)
			}
		}
	}

	dMem := NewDaemon(DaemonConfig{Workers: 1, Store: mem})
	defer dMem.Kill()
	dSeg := NewDaemon(DaemonConfig{Workers: 1, Store: seg})
	defer dSeg.Kill()
	baseMem, stopMem := startServer(t, dMem, nil)
	defer stopMem()
	baseSeg, stopSeg := startServer(t, dSeg, nil)
	defer stopSeg()

	queries := []string{
		"",
		"?state=done",
		"?state=failed",
		"?model=vggs",
		"?model=vggs&state=done",
		"?limit=4",
		"?offset=3&limit=4",
		"?offset=100",
		fmt.Sprintf("?since=%d", base.Add(6*time.Minute).UnixNano()),
		fmt.Sprintf("?state=done&since=%d&limit=2&offset=1", base.Add(3*time.Minute).UnixNano()),
	}
	for _, q := range queries {
		gotMem, codeMem := getRaw(t, baseMem, "/campaigns"+q)
		gotSeg, codeSeg := getRaw(t, baseSeg, "/campaigns"+q)
		if codeMem != http.StatusOK || codeSeg != http.StatusOK {
			t.Fatalf("GET /campaigns%s: memory %d, segment %d", q, codeMem, codeSeg)
		}
		if string(gotMem) != string(gotSeg) {
			t.Errorf("backends diverge on /campaigns%s:\n memory: %s\nsegment: %s", q, gotMem, gotSeg)
		}
		var snaps []CampaignSnapshot
		if err := json.Unmarshal(gotMem, &snaps); err != nil {
			t.Fatalf("GET /campaigns%s: %v", q, err)
		}
		for i := 1; i < len(snaps); i++ {
			if snaps[i].ID <= snaps[i-1].ID {
				t.Errorf("/campaigns%s not ascending: %d then %d", q, snaps[i-1].ID, snaps[i].ID)
			}
		}
	}
	aggMem, _ := getRaw(t, baseMem, "/campaigns/aggregate?by=model")
	aggSeg, _ := getRaw(t, baseSeg, "/campaigns/aggregate?by=model")
	if string(aggMem) != string(aggSeg) {
		t.Errorf("backends diverge on aggregate:\n memory: %s\nsegment: %s", aggMem, aggSeg)
	}
	var aggs []store.ModelAggregate
	if err := json.Unmarshal(aggMem, &aggs); err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 2 || aggs[0].Model != "smallcnn" || aggs[1].Model != "vggs" {
		t.Errorf("aggregate models wrong (want sorted smallcnn, vggs): %+v", aggs)
	}

	// Bad query parameters are rejected identically.
	for _, q := range []string{"?state=bogus", "?limit=x", "?limit=-2", "?offset=x", "?since=tuesday"} {
		if _, code := getRaw(t, baseMem, "/campaigns"+q); code != http.StatusBadRequest {
			t.Errorf("GET /campaigns%s = %d, want 400", q, code)
		}
	}
	if _, code := getRaw(t, baseMem, "/campaigns/aggregate?by=color"); code != http.StatusBadRequest {
		t.Errorf("aggregate?by=color accepted; want 400")
	}
	if _, code := getRaw(t, baseMem, "/campaigns/99/events"); code != http.StatusNotFound {
		t.Errorf("events for unknown campaign should 404")
	}
}

// TestJournalStoreReplayEquivalence proves either durability layer alone can
// rebuild the served history: a journal-only restart reproduces the campaign
// set and outcomes, and a store-only restart reproduces the full listing
// byte-for-byte.
func TestJournalStoreReplayEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full smallcnn campaigns; skipped in -short")
	}
	dir := t.TempDir()
	journalDir, storeDir := dir+"/journal", dir+"/store"

	j1, err := OpenJournal(journalDir, JournalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := store.Open(storeDir, store.SegmentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d1 := NewDaemon(DaemonConfig{Workers: 2, Journal: j1, Store: s1})
	for i := 0; i < 2; i++ {
		if _, err := d1.Submit(tinySpec()); err != nil {
			t.Fatal(err)
		}
	}
	for id := 1; id <= 2; id++ {
		waitState(t, d1, id, 4*time.Minute, StateDone)
	}
	d1.Kill()
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Baseline: both layers present.
	openBoth := func() (*Daemon, func()) {
		j, err := OpenJournal(journalDir, JournalConfig{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := store.Open(storeDir, store.SegmentConfig{})
		if err != nil {
			t.Fatal(err)
		}
		d := NewDaemon(DaemonConfig{Workers: 1, Journal: j, Store: s})
		return d, func() { d.Kill(); j.Close(); s.Close() }
	}
	dBoth, stopBoth := openBoth()
	baseline, err := dBoth.CampaignsQuery(store.Query{})
	if err != nil {
		t.Fatal(err)
	}
	baselineJSON := normalizeResumed(t, append([]CampaignSnapshot(nil), baseline...))
	stopBoth()
	if len(baseline) != 2 {
		t.Fatalf("baseline has %d campaigns, want 2", len(baseline))
	}

	// Journal only (fresh in-memory store): same campaigns and outcomes.
	jOnly, err := OpenJournal(journalDir, JournalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dJournal := NewDaemon(DaemonConfig{Workers: 1, Journal: jOnly})
	fromJournal, err := dJournal.CampaignsQuery(store.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fromJournal) != len(baseline) {
		t.Fatalf("journal-only restart has %d campaigns, want %d", len(fromJournal), len(baseline))
	}
	for i, c := range fromJournal {
		want := baseline[i]
		if c.ID != want.ID || c.State != want.State ||
			c.SolutionCount != want.SolutionCount || c.VictimQueries != want.VictimQueries {
			t.Errorf("journal-only campaign %d diverges: got {id=%d state=%s sol=%d q=%d}, want {id=%d state=%s sol=%d q=%d}",
				i, c.ID, c.State, c.SolutionCount, c.VictimQueries,
				want.ID, want.State, want.SolutionCount, want.VictimQueries)
		}
	}
	// The reconciliation persisted the journal's history into the (memory)
	// store, so aggregates work without a durable store too.
	aggs, err := dJournal.AggregateByModel()
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 1 || aggs[0].Campaigns != 2 {
		t.Errorf("journal-only aggregate = %+v, want one model with 2 campaigns", aggs)
	}
	dJournal.Kill()
	jOnly.Close()

	// Store only (fresh journal): the full listing, byte-for-byte.
	jFresh, err := OpenJournal(t.TempDir(), JournalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer jFresh.Close()
	sOnly, err := store.Open(storeDir, store.SegmentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sOnly.Close()
	dStore := NewDaemon(DaemonConfig{Workers: 1, Journal: jFresh, Store: sOnly})
	defer dStore.Kill()
	fromStore, err := dStore.CampaignsQuery(store.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if got := normalizeResumed(t, fromStore); got != baselineJSON {
		t.Errorf("store-only restart diverges from baseline:\n got %s\nwant %s", got, baselineJSON)
	}
	// And the ID high-water mark survives via the store alone.
	snap, err := dStore.Submit(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID != 3 {
		t.Errorf("store-only restart reused ID %d, want 3", snap.ID)
	}
}

// TestPersistTerminalZeroStart guards the restore reverse-reconcile path: a
// journal-replayed snapshot can be terminal with Finished set but Started
// missing, and persisting it must not derive wall seconds from the zero time
// (finished.Sub(zero) is ~54 years, which would permanently skew the stored
// record and the per-model p50/p95 aggregates).
func TestPersistTerminalZeroStart(t *testing.T) {
	mem := store.NewMemory()
	defer mem.Close()
	d := NewDaemon(DaemonConfig{Workers: 1, Store: mem})
	defer d.Kill()

	fin := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	snap := fixedSnapshot(1, "smallcnn", StateDone, fin, 100, false)
	snap.Started = nil
	d.persistTerminal(snap, time.Time{}, fin)

	rec, ok, err := mem.Campaign(1)
	if err != nil || !ok {
		t.Fatalf("campaign not persisted: ok=%v err=%v", ok, err)
	}
	if rec.WallSeconds != 0 {
		t.Errorf("WallSeconds = %v with no start time, want 0", rec.WallSeconds)
	}
	aggs, err := mem.AggregateByModel()
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 1 || aggs[0].P50WallSeconds != 0 || aggs[0].P95WallSeconds != 0 {
		t.Errorf("zero-start campaign skewed aggregates: %+v", aggs)
	}

	// A snapshot with both endpoints real still gets the caller's wall time.
	started := fin.Add(-2 * time.Second)
	snap2 := fixedSnapshot(2, "smallcnn", StateDone, fin, 100, false)
	d.persistTerminal(snap2, started, fin)
	rec, ok, err = mem.Campaign(2)
	if err != nil || !ok {
		t.Fatalf("campaign 2 not persisted: ok=%v err=%v", ok, err)
	}
	if rec.WallSeconds != 2 {
		t.Errorf("WallSeconds = %v, want 2 (override from real endpoints)", rec.WallSeconds)
	}
}

// TestEventsQueryParams pins the /events tail-limit and since filters: ?n=
// keeps the newest n events, ?since= keeps events at or after the timestamp,
// and combined they mean "the last n since T". Malformed values are 400s.
func TestEventsQueryParams(t *testing.T) {
	flight := obs.NewFlightRecorder(64)
	for i := 0; i < 10; i++ {
		flight.Count("tick", fmt.Sprintf("i=%d", i), float64(i))
	}
	srv := NewServer(ServerOptions{Flight: flight})

	get := func(query string) ([]obs.Event, int) {
		t.Helper()
		w := httptest.NewRecorder()
		srv.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/events"+query, nil))
		if w.Code != http.StatusOK {
			return nil, w.Code
		}
		var events []obs.Event
		for _, line := range strings.Split(strings.TrimSpace(w.Body.String()), "\n") {
			if line == "" {
				continue
			}
			var ev obs.Event
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				t.Fatalf("bad JSONL line %q: %v", line, err)
			}
			events = append(events, ev)
		}
		return events, w.Code
	}

	all, _ := get("")
	if len(all) != 10 {
		t.Fatalf("unfiltered /events returned %d events, want 10", len(all))
	}

	tail, _ := get("?n=3")
	if len(tail) != 3 {
		t.Fatalf("/events?n=3 returned %d events", len(tail))
	}
	if tail[0].Label != all[7].Label || tail[2].Label != all[9].Label {
		t.Errorf("?n=3 did not keep the newest 3: %+v", tail)
	}

	cut := all[6].TS
	sinceEvents, _ := get(fmt.Sprintf("?since=%d", cut))
	wantSince := 0
	for _, ev := range all {
		if ev.TS >= cut {
			wantSince++
		}
	}
	if len(sinceEvents) != wantSince {
		t.Errorf("?since=%d returned %d events, want %d", cut, len(sinceEvents), wantSince)
	}
	for _, ev := range sinceEvents {
		if ev.TS < cut {
			t.Errorf("?since returned event before the cut: %+v", ev)
		}
	}

	comb, _ := get(fmt.Sprintf("?since=%d&n=2", cut))
	if len(comb) != 2 {
		t.Errorf("?since&n=2 returned %d events", len(comb))
	}
	if len(comb) == 2 && comb[1].Label != all[9].Label {
		t.Errorf("?since&n kept the wrong tail: %+v", comb)
	}

	if huge, _ := get("?n=1000"); len(huge) != 10 {
		t.Errorf("?n beyond the ring returned %d events, want all 10", len(huge))
	}

	for _, q := range []string{"?n=x", "?n=-1", "?since=x", "?since=-5"} {
		if _, code := get(q); code != http.StatusBadRequest {
			t.Errorf("GET /events%s = %d, want 400", q, code)
		}
	}
}
