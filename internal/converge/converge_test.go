package converge

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestNilLedgerIsInert(t *testing.T) {
	var l *Ledger
	l.AddQueries(5)
	if l.Queries() != 0 {
		t.Fatal("nil ledger counted queries")
	}
	l.Append(Snapshot{Stage: "probe"})
	if l.Snapshots() != nil {
		t.Fatal("nil ledger retained a snapshot")
	}
	if _, ok := l.Latest(); ok {
		t.Fatal("nil ledger has a latest snapshot")
	}
	ch, cancel := l.Subscribe()
	cancel()
	if _, open := <-ch; open {
		t.Fatal("nil ledger subscription not closed")
	}
	l.Close()
	if err := l.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if sum := l.Summary(); sum.Snapshots != 0 {
		t.Fatal("nil ledger summary non-empty")
	}
}

func TestAppendAssignsSeqQueriesAndBits(t *testing.T) {
	l := NewLedger(nil)
	l.AddQueries(10)
	s0 := l.Append(Snapshot{Stage: "probe", Log10Volume: 96, VolumeKnown: true})
	if s0.Seq != 0 || s0.Queries != 10 || s0.TS == 0 {
		t.Fatalf("first snapshot: %+v", s0)
	}
	if s0.BitsEliminated != 0 {
		t.Fatalf("first volume-known snapshot eliminated %v bits, want 0", s0.BitsEliminated)
	}

	l.AddQueries(15)
	// A volume-unknown snapshot in between must not break the bits chain.
	l.Append(Snapshot{Stage: "timing"})
	s2 := l.Append(Snapshot{Stage: "solve", Log10Volume: 6, VolumeKnown: true})
	if s2.Seq != 2 || s2.Queries != 25 {
		t.Fatalf("third snapshot: %+v", s2)
	}
	want := (96 - 6) * math.Log2(10)
	if math.Abs(s2.BitsEliminated-want) > 1e-9 {
		t.Fatalf("BitsEliminated = %v, want %v", s2.BitsEliminated, want)
	}

	// Volume increasing (e.g. accounting model change between stages) clamps
	// to zero rather than reporting negative information gain.
	s3 := l.Append(Snapshot{Stage: "finalize", Log10Volume: 8, VolumeKnown: true})
	if s3.BitsEliminated != 0 {
		t.Fatalf("negative gain not clamped: %v", s3.BitsEliminated)
	}

	if latest, ok := l.Latest(); !ok || latest.Seq != 3 {
		t.Fatalf("Latest = %+v, %v", latest, ok)
	}
}

func TestSubscribeReplayAndLive(t *testing.T) {
	l := NewLedger(nil)
	l.Append(Snapshot{Stage: "calibrate"})
	l.Append(Snapshot{Stage: "probe"})

	ch, cancel := l.Subscribe()
	defer cancel()
	for i, want := range []string{"calibrate", "probe"} {
		s := <-ch
		if s.Seq != i || s.Stage != want {
			t.Fatalf("replayed snapshot %d: %+v", i, s)
		}
	}

	l.Append(Snapshot{Stage: "solve"})
	if s := <-ch; s.Stage != "solve" || s.Seq != 2 {
		t.Fatalf("live snapshot: %+v", s)
	}

	l.Close()
	if _, open := <-ch; open {
		t.Fatal("channel not closed after ledger Close")
	}

	// Subscribing after close replays history and closes immediately.
	ch2, cancel2 := l.Subscribe()
	defer cancel2()
	var n int
	for range ch2 {
		n++
	}
	if n != 3 {
		t.Fatalf("post-close replay delivered %d snapshots, want 3", n)
	}
}

func TestSlowSubscriberDisconnected(t *testing.T) {
	l := NewLedger(nil)
	ch, cancel := l.Subscribe()
	defer cancel()
	// Never read: once the buffer fills the ledger must disconnect the
	// subscriber instead of blocking Append.
	for i := 0; i < subBuffer+10; i++ {
		l.Append(Snapshot{Stage: "probe"})
	}
	var n int
	for range ch {
		n++
	}
	if n != subBuffer {
		t.Fatalf("slow subscriber received %d snapshots before disconnect, want %d", n, subBuffer)
	}
	// The ledger itself kept everything.
	if got := len(l.Snapshots()); got != subBuffer+10 {
		t.Fatalf("ledger has %d snapshots, want %d", got, subBuffer+10)
	}
}

func TestCloseDropsLaterAppends(t *testing.T) {
	l := NewLedger(nil)
	l.Append(Snapshot{Stage: "probe"})
	l.Close()
	l.Close() // idempotent
	l.Append(Snapshot{Stage: "late"})
	if got := len(l.Snapshots()); got != 1 {
		t.Fatalf("append after close retained: %d snapshots", got)
	}
}

func TestConcurrentAppendSubscribe(t *testing.T) {
	l := NewLedger(nil)
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			l.AddQueries(1)
			l.Append(Snapshot{Stage: "probe", Log10Volume: float64(100 - i), VolumeKnown: true})
		}
	}()
	for r := 0; r < 2; r++ {
		go func() {
			defer wg.Done()
			ch, cancel := l.Subscribe()
			defer cancel()
			prev := -1
			for s := range ch {
				if s.Seq <= prev {
					t.Errorf("out-of-order snapshot: %d after %d", s.Seq, prev)
					return
				}
				prev = s.Seq
				if s.Seq == 99 {
					return
				}
			}
		}()
	}
	wg.Wait()
	l.Close()
}

func TestWriteJSONLRoundTrips(t *testing.T) {
	l := NewLedger(nil)
	l.AddQueries(3)
	l.Append(Snapshot{
		Stage: "probe", Log10Volume: 42.5, VolumeKnown: true,
		Layers: []LayerState{{Node: 1, Kernel: 3, Stride: 1, Candidates: 1, Exact: true}},
	})
	l.Append(Snapshot{Stage: "finalize", Log10Volume: 2, VolumeKnown: true, Done: true})

	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var got []Snapshot
	for sc := bufio.NewScanner(&buf); sc.Scan(); {
		var s Snapshot
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatal(err)
		}
		got = append(got, s)
	}
	if len(got) != 2 {
		t.Fatalf("JSONL has %d lines, want 2", len(got))
	}
	if got[0].Layers[0].Kernel != 3 || got[0].Queries != 3 || !got[1].Done {
		t.Fatalf("round trip mangled snapshots: %+v", got)
	}
}

func TestSummary(t *testing.T) {
	l := NewLedger(nil)
	if sum := l.Summary(); sum.Snapshots != 0 || sum.QueriesTo90Pct != 0 {
		t.Fatalf("empty ledger summary: %+v", sum)
	}

	// Collapse 100 → 0 in three steps; 90% of the collapse is volume ≤ 10.
	l.AddQueries(50)
	l.Append(Snapshot{Stage: "probe", Log10Volume: 100, VolumeKnown: true})
	l.AddQueries(50)
	l.Append(Snapshot{Stage: "solve", Log10Volume: 40, VolumeKnown: true, SymExprs: 700})
	l.AddQueries(100)
	l.Append(Snapshot{Stage: "finalize", Log10Volume: 0, VolumeKnown: true, SymExprs: 200})

	sum := l.Summary()
	if sum.InitialLog10Volume != 100 || sum.FinalLog10Volume != 0 {
		t.Fatalf("collapse endpoints: %+v", sum)
	}
	if sum.QueriesTo90Pct != 200 {
		t.Fatalf("QueriesTo90Pct = %d, want 200 (first snapshot at or past 90%% collapse)", sum.QueriesTo90Pct)
	}
	if sum.PeakSymExprs != 700 {
		t.Fatalf("PeakSymExprs = %d, want 700", sum.PeakSymExprs)
	}
	if sum.TotalQueries != 200 || sum.Snapshots != 3 {
		t.Fatalf("sizes: %+v", sum)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context produced a ledger")
	}
	if ctx := WithLedger(context.Background(), nil); FromContext(ctx) != nil {
		t.Fatal("nil ledger attached to context")
	}
	l := NewLedger(nil)
	ctx := WithLedger(context.Background(), l)
	if FromContext(ctx) != l {
		t.Fatal("ledger did not round-trip through context")
	}
	FromContext(ctx).AddQueries(7)
	if l.Queries() != 7 {
		t.Fatal("context-resolved ledger is not the same ledger")
	}
}
