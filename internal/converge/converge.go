// Package converge makes the attack's solution-space collapse a first-class
// observable. HuffDuff's headline result (§8.2) is the narrowing of the
// architecture search space from ~10⁹⁶ candidate networks to fewer than a
// hundred; spans and metrics can say where the attacker's *time* went, but
// not what the attack has *learned* so far. The Ledger closes that gap: the
// pipeline appends a Snapshot after every knowledge-changing step
// (calibration, probe progress, each convergence-loop solve, timing,
// finalization), and each snapshot carries the per-layer candidate state,
// the log10 volume of the remaining solution space, and the information
// eliminated since the previous snapshot.
//
// Ledgers are safe for concurrent use: the attack appends from its worker
// goroutine while HTTP handlers read Latest/Snapshots and streaming clients
// consume Subscribe. Victim-query counting (AddQueries) is a single atomic
// add so the prober's hot path stays cheap, and every accessor is nil-safe
// so call sites need no ledger checks — a nil *Ledger is the off switch,
// mirroring the obs.Recorder convention.
package converge

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/huffduff/huffduff/internal/obs"
)

// LayerState is one layer's recovered knowledge at snapshot time. Node is
// the victim-architecture node ID; a conv layer that has collapsed to a
// single geometry hypothesis reports its Kernel/Stride/Pool, one that is
// still ambiguous reports Candidates > 1. KMin/KMax bound the layer's
// channel count once finalization has run (exact recovery sets KMin==KMax),
// and KRatio/Confidence carry the timing channel and §8.2 convergence-loop
// outputs when available.
type LayerState struct {
	Node       int     `json:"node"`
	Kernel     int     `json:"kernel,omitempty"`
	Stride     int     `json:"stride,omitempty"`
	Pool       int     `json:"pool,omitempty"`
	Candidates int     `json:"candidates"`
	Exact      bool    `json:"exact,omitempty"`
	KMin       int     `json:"k_min,omitempty"`
	KMax       int     `json:"k_max,omitempty"`
	KRatio     float64 `json:"k_ratio,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
}

// Snapshot is one ledger entry: everything the attack knows at a point in
// the campaign. Seq, TS, and Queries are assigned by Append; the caller
// fills in the knowledge fields. Layers must be sorted by Node so the JSONL
// stream is deterministic.
type Snapshot struct {
	// Seq numbers snapshots from 0 in append order.
	Seq int `json:"seq"`
	// TS is the append host time (Unix nanoseconds). Excluded from any
	// determinism gating; it exists so streamed snapshots can be plotted
	// against wall clock.
	TS int64 `json:"ts_unix_nano"`
	// Stage names the pipeline stage that produced the snapshot
	// (calibration, probe, solve, timing, finalize, ...).
	Stage string `json:"stage"`
	// Queries is the cumulative victim-inference count at snapshot time.
	Queries int64 `json:"queries"`
	// Log10Volume is log10 of the number of candidate architectures still
	// admissible, when computable (VolumeKnown). The §8.2 collapse is this
	// value falling from ~96 toward ~2.
	Log10Volume float64 `json:"log10_volume"`
	VolumeKnown bool    `json:"volume_known"`
	// BitsEliminated is the information gained since the previous
	// volume-known snapshot: (prevLog10 − Log10Volume)·log2(10). Computed
	// by Append; negative gains are clamped to 0.
	BitsEliminated float64 `json:"bits_eliminated"`
	// GeomAmbiguity is the number of whole-network geometry assignments
	// consistent with the probe observations (1 = geometry pinned).
	GeomAmbiguity int `json:"geom_ambiguity,omitempty"`
	// Layers is the per-layer candidate state, sorted by Node.
	Layers []LayerState `json:"layers,omitempty"`
	// SymExprs/SymHitRate snapshot the symbolic interner (solver memory
	// pressure; the VGG-S blowup shows up here).
	SymExprs   int     `json:"sym_exprs,omitempty"`
	SymHitRate float64 `json:"sym_hit_rate,omitempty"`
	// Degraded marks a snapshot taken on the timing-free or budget-aborted
	// path; Partial additionally marks a solve cut short by the sym budget
	// watchdog. Done marks the campaign's final snapshot.
	Degraded bool `json:"degraded,omitempty"`
	Partial  bool `json:"partial,omitempty"`
	Done     bool `json:"done,omitempty"`
	// Note carries free-form context (degradation reason, exhausted budget
	// site, convergence-loop trial count).
	Note string `json:"note,omitempty"`
}

// subBuffer is the per-subscriber channel capacity beyond the replayed
// prefix. A subscriber that falls this far behind the live append stream is
// disconnected (its channel closed) rather than allowed to block the
// attack; campaigns append a handful of snapshots per stage, so only a
// stalled client ever hits this.
const subBuffer = 256

// Ledger accumulates Snapshots for one attack campaign and republishes them
// as obs metrics (converge.* counters/gauges, which reach Prometheus and
// JSONL event sinks through whatever Recorder fanout is attached) and as a
// live subscription stream for HTTP progress endpoints.
type Ledger struct {
	rec obs.Recorder

	queries atomic.Int64

	mu sync.Mutex
	// snaps is guarded by mu.
	snaps []Snapshot
	// subs is guarded by mu.
	subs map[int]chan Snapshot
	// nextSub is guarded by mu.
	nextSub int
	// closed is guarded by mu.
	closed bool
}

// NewLedger returns an empty ledger. rec may be nil; snapshots are then
// recorded but not republished as metrics.
func NewLedger(rec obs.Recorder) *Ledger {
	return &Ledger{rec: rec, subs: make(map[int]chan Snapshot)}
}

// AddQueries counts n victim inferences against the ledger. Nil-safe and
// atomic: the prober calls this once per inference.
func (l *Ledger) AddQueries(n int) {
	if l == nil {
		return
	}
	l.queries.Add(int64(n))
}

// Queries returns the cumulative victim-inference count. Nil-safe.
func (l *Ledger) Queries() int64 {
	if l == nil {
		return 0
	}
	return l.queries.Load()
}

// Append records s, assigning Seq, TS, Queries, and BitsEliminated, and
// fans the completed snapshot out to metrics and subscribers. It returns
// the completed snapshot. Nil-safe; appends after Close are dropped.
func (l *Ledger) Append(s Snapshot) Snapshot {
	if l == nil {
		return s
	}
	s.TS = time.Now().UnixNano()
	s.Queries = l.queries.Load()

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return s
	}
	s.Seq = len(l.snaps)
	s.BitsEliminated = 0
	if s.VolumeKnown {
		for i := len(l.snaps) - 1; i >= 0; i-- {
			if l.snaps[i].VolumeKnown {
				if gain := (l.snaps[i].Log10Volume - s.Log10Volume) * math.Log2(10); gain > 0 {
					s.BitsEliminated = gain
				}
				break
			}
		}
	}
	l.snaps = append(l.snaps, s)
	for id, ch := range l.subs {
		select {
		case ch <- s:
		default:
			// Slow consumer: disconnect it rather than block the attack.
			delete(l.subs, id)
			close(ch)
		}
	}
	l.mu.Unlock()

	l.publish(s)
	return s
}

// publish republishes one snapshot through the obs recorder. Metric names
// use dots (the Prometheus exporter rewrites them to underscores, yielding
// the converge_* family).
func (l *Ledger) publish(s Snapshot) {
	if l.rec == nil {
		return
	}
	l.rec.Count("converge.snapshots", s.Stage, 1)
	l.rec.Gauge("converge.queries", "", float64(s.Queries))
	if s.VolumeKnown {
		l.rec.Gauge("converge.log10_volume", "", s.Log10Volume)
	}
	if s.BitsEliminated > 0 {
		l.rec.Observe("converge.bits_eliminated", s.Stage, s.BitsEliminated)
	}
	if s.GeomAmbiguity > 0 {
		l.rec.Gauge("converge.geom_ambiguity", "", float64(s.GeomAmbiguity))
	}
	if s.SymExprs > 0 {
		l.rec.Gauge("converge.sym_exprs", "", float64(s.SymExprs))
	}
}

// Snapshots returns a copy of every snapshot appended so far. Nil-safe.
func (l *Ledger) Snapshots() []Snapshot {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Snapshot(nil), l.snaps...)
}

// Latest returns the most recent snapshot, if any. Nil-safe.
func (l *Ledger) Latest() (Snapshot, bool) {
	if l == nil {
		return Snapshot{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.snaps) == 0 {
		return Snapshot{}, false
	}
	return l.snaps[len(l.snaps)-1], true
}

// Subscribe returns a channel that first replays every snapshot appended so
// far and then delivers each new one as it lands. The channel is closed when
// the ledger is closed or when the subscriber falls more than subBuffer
// snapshots behind. cancel unsubscribes (idempotent, safe after close).
func (l *Ledger) Subscribe() (<-chan Snapshot, func()) {
	if l == nil {
		ch := make(chan Snapshot)
		close(ch)
		return ch, func() {}
	}
	l.mu.Lock()
	ch := make(chan Snapshot, len(l.snaps)+subBuffer)
	for _, s := range l.snaps {
		ch <- s
	}
	if l.closed {
		close(ch)
		l.mu.Unlock()
		return ch, func() {}
	}
	id := l.nextSub
	l.nextSub++
	l.subs[id] = ch
	l.mu.Unlock()

	cancel := func() {
		l.mu.Lock()
		if c, ok := l.subs[id]; ok {
			delete(l.subs, id)
			close(c)
		}
		l.mu.Unlock()
	}
	return ch, cancel
}

// Subscribers reports the number of live subscriptions. This is the
// regression hook for the streaming handlers: after a client disconnects,
// its subscription must be gone, or every abandoned stream pins a channel
// (and its buffered replay) for the life of the campaign. Nil-safe.
func (l *Ledger) Subscribers() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.subs)
}

// Close marks the ledger complete: subscriber channels are closed (after
// draining their buffered replay) and later Appends are dropped. Idempotent
// and nil-safe.
func (l *Ledger) Close() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for id, ch := range l.subs {
		delete(l.subs, id)
		close(ch)
	}
}

// WriteJSONL writes every snapshot as one JSON object per line, in append
// order. This is the convergence-curve artifact format (bench uploads,
// EXPERIMENTS plots). Nil-safe.
func (l *Ledger) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, s := range l.Snapshots() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// Summary condenses a completed ledger into the few numbers the benchmark
// gate tracks.
type Summary struct {
	// InitialLog10Volume / FinalLog10Volume are the first and last
	// volume-known snapshots (the §8.2 collapse endpoints).
	InitialLog10Volume float64 `json:"initial_log10_volume"`
	FinalLog10Volume   float64 `json:"final_log10_volume"`
	// QueriesTo90Pct is the victim-query count at the first snapshot where
	// 90% of the total log-volume collapse had happened — the attack's
	// "time to useful answer". 0 when no volume was ever computed.
	QueriesTo90Pct int64 `json:"queries_to_90pct"`
	// PeakSymExprs is the largest interner size any snapshot reported.
	PeakSymExprs int `json:"peak_sym_exprs"`
	// TotalQueries and Snapshots size the campaign.
	TotalQueries int64 `json:"total_queries"`
	Snapshots    int   `json:"snapshots"`
}

// Summary computes the ledger's summary. Nil-safe.
func (l *Ledger) Summary() Summary {
	var sum Summary
	if l == nil {
		return sum
	}
	snaps := l.Snapshots()
	sum.Snapshots = len(snaps)
	sum.TotalQueries = l.Queries()
	first := true
	for _, s := range snaps {
		if s.SymExprs > sum.PeakSymExprs {
			sum.PeakSymExprs = s.SymExprs
		}
		if !s.VolumeKnown {
			continue
		}
		if first {
			sum.InitialLog10Volume = s.Log10Volume
			first = false
		}
		sum.FinalLog10Volume = s.Log10Volume
	}
	if first {
		return sum // no volume-known snapshots
	}
	target := sum.InitialLog10Volume - 0.9*(sum.InitialLog10Volume-sum.FinalLog10Volume)
	for _, s := range snaps {
		if s.VolumeKnown && s.Log10Volume <= target {
			sum.QueriesTo90Pct = s.Queries
			break
		}
	}
	return sum
}

// ctxKey keys a *Ledger in a context.
type ctxKey struct{}

// WithLedger attaches l to ctx; a nil ledger returns ctx unchanged.
func WithLedger(ctx context.Context, l *Ledger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, l)
}

// FromContext returns the ledger attached to ctx, or nil. Combined with
// nil-safe methods, hooks read as one line:
// converge.FromContext(ctx).AddQueries(1).
func FromContext(ctx context.Context) *Ledger {
	l, _ := ctx.Value(ctxKey{}).(*Ledger)
	return l
}
