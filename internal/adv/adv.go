// Package adv implements adversarial-example generation (FGSM and BIM) and
// the black-box targeted transfer evaluation of §8.3: adversarial examples
// are crafted on a surrogate model and tested against the victim, targeting
// the victim's least-likely label — the hardest target heuristic the paper
// adopts.
package adv

import (
	"fmt"

	"github.com/huffduff/huffduff/internal/dataset"
	"github.com/huffduff/huffduff/internal/nn"
	"github.com/huffduff/huffduff/internal/tensor"
	"github.com/huffduff/huffduff/internal/train"
)

// PixelScale converts the paper's ε values (quoted on a 0–255 pixel scale)
// to our [0,1] tensors: ε=32 → 32/255.
const PixelScale = 255.0

// inputGradient returns ∂loss/∂input for a batch of one image with a
// targeted cross-entropy loss.
func inputGradient(net *nn.Network, img *tensor.Tensor, target int) *tensor.Tensor {
	x := img.Clone().Reshape(1, img.Dim(0), img.Dim(1), img.Dim(2))
	net.ZeroGrads()
	logits := net.Forward(x, false)
	_, grad := train.CrossEntropy(logits, []int{target})
	return net.Backward(grad)
}

// clampAround projects x into the ε-ball around orig intersected with the
// valid pixel range [0,1].
func clampAround(x, orig *tensor.Tensor, eps float64) {
	for i := range x.Data {
		lo, hi := orig.Data[i]-eps, orig.Data[i]+eps
		if x.Data[i] < lo {
			x.Data[i] = lo
		}
		if x.Data[i] > hi {
			x.Data[i] = hi
		}
		if x.Data[i] < 0 {
			x.Data[i] = 0
		}
		if x.Data[i] > 1 {
			x.Data[i] = 1
		}
	}
}

// FGSM crafts a one-step targeted adversarial example on the surrogate:
// x' = clamp(x − ε·sign(∇ₓ L(x, target))).
func FGSM(surrogate *nn.Network, img *tensor.Tensor, target int, eps float64) *tensor.Tensor {
	g := inputGradient(surrogate, img, target)
	adv := img.Clone()
	for i := range adv.Data {
		if g.Data[i] > 0 {
			adv.Data[i] -= eps
		} else if g.Data[i] < 0 {
			adv.Data[i] += eps
		}
	}
	clampAround(adv, img, eps)
	return adv.Reshape(img.Shape()...)
}

// BIMConfig controls the iterative attack (Kurakin et al.).
type BIMConfig struct {
	Eps   float64 // total perturbation budget (on [0,1] scale)
	Alpha float64 // per-step size
	Steps int
}

// DefaultBIM returns the evaluation configuration for a 0–255-scale epsilon:
// α = ε/steps keeps every step inside the budget.
func DefaultBIM(eps255 float64) BIMConfig {
	eps := eps255 / PixelScale
	return BIMConfig{Eps: eps, Alpha: eps / 8, Steps: 10}
}

// BIM crafts a targeted iterative adversarial example on the surrogate.
func BIM(surrogate *nn.Network, img *tensor.Tensor, target int, cfg BIMConfig) *tensor.Tensor {
	adv := img.Clone()
	for step := 0; step < cfg.Steps; step++ {
		g := inputGradient(surrogate, adv, target)
		for i := range adv.Data {
			if g.Data[i] > 0 {
				adv.Data[i] -= cfg.Alpha
			} else if g.Data[i] < 0 {
				adv.Data[i] += cfg.Alpha
			}
		}
		clampAround(adv, img, cfg.Eps)
	}
	return adv
}

// Predict returns the victim's argmax class and its logits for one image.
func Predict(net *nn.Network, img *tensor.Tensor) (int, []float64) {
	x := img.Clone().Reshape(1, img.Dim(0), img.Dim(1), img.Dim(2))
	logits := net.Forward(x, false)
	k := logits.Dim(1)
	row := append([]float64(nil), logits.Data[:k]...)
	best, bi := row[0], 0
	for j, v := range row {
		if v > best {
			best, bi = v, j
		}
	}
	return bi, row
}

// LeastLikelyLabel returns the victim's lowest-logit class for an image —
// the paper's most challenging transfer target.
func LeastLikelyLabel(victim *nn.Network, img *tensor.Tensor) int {
	_, logits := Predict(victim, img)
	worst, wi := logits[0], 0
	for j, v := range logits {
		if v < worst {
			worst, wi = v, j
		}
	}
	return wi
}

// TransferResult summarizes a targeted transfer evaluation.
type TransferResult struct {
	Total     int
	Successes int
}

// Rate returns the targeted success rate.
func (r TransferResult) Rate() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Successes) / float64(r.Total)
}

// EvaluateTransfer runs the §8.3 protocol: for up to n test images that the
// victim classifies correctly, craft a BIM example on the surrogate
// targeting the victim's least-likely label, and count how often the victim
// then predicts exactly that label.
func EvaluateTransfer(victim, surrogate *nn.Network, ds *dataset.Dataset, n int, cfg BIMConfig) (TransferResult, error) {
	if n < 1 {
		return TransferResult{}, fmt.Errorf("adv: need at least one sample")
	}
	var res TransferResult
	for i := 0; i < ds.Len() && res.Total < n; i++ {
		img, label := ds.X[i], ds.Y[i]
		pred, _ := Predict(victim, img)
		if pred != label {
			continue // the paper evaluates on correctly classified inputs
		}
		target := LeastLikelyLabel(victim, img)
		if target == label {
			continue
		}
		adv := BIM(surrogate, img, target, cfg)
		after, _ := Predict(victim, adv)
		res.Total++
		if after == target {
			res.Successes++
		}
	}
	if res.Total == 0 {
		return res, fmt.Errorf("adv: victim classified no evaluation images correctly")
	}
	return res, nil
}
