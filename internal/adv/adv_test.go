package adv

import (
	"math"
	"math/rand"
	"testing"

	"github.com/huffduff/huffduff/internal/dataset"
	"github.com/huffduff/huffduff/internal/models"
	"github.com/huffduff/huffduff/internal/nn"
	"github.com/huffduff/huffduff/internal/tensor"
	"github.com/huffduff/huffduff/internal/train"
)

func trainedSmallNet(t *testing.T, seed int64, ds *dataset.Dataset) *nn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	bind, err := models.SmallCNN().Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := train.DefaultConfig()
	cfg.Epochs = 2
	cfg.Seed = seed
	train.Fit(bind.Net, ds, cfg)
	return bind.Net
}

func TestFGSMStaysInBudgetAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bind, err := models.SmallCNN().Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	img := tensor.New(3, 32, 32)
	img.Uniform(rng, 0, 1)
	eps := 16.0 / PixelScale
	adv := FGSM(bind.Net, img, 3, eps)
	if !tensor.SameShape(adv, img) {
		t.Fatalf("shape changed: %v", adv.Shape())
	}
	for i := range adv.Data {
		if adv.Data[i] < 0 || adv.Data[i] > 1 {
			t.Fatalf("pixel %d out of range: %g", i, adv.Data[i])
		}
		if d := math.Abs(adv.Data[i] - img.Data[i]); d > eps+1e-12 {
			t.Fatalf("pixel %d exceeds budget: %g > %g", i, d, eps)
		}
	}
}

func TestBIMStaysInBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bind, err := models.SmallCNN().Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	img := tensor.New(3, 32, 32)
	img.Uniform(rng, 0, 1)
	cfg := DefaultBIM(32)
	adv := BIM(bind.Net, img, 7, cfg)
	maxd := 0.0
	for i := range adv.Data {
		if adv.Data[i] < 0 || adv.Data[i] > 1 {
			t.Fatal("pixel out of range")
		}
		if d := math.Abs(adv.Data[i] - img.Data[i]); d > maxd {
			maxd = d
		}
	}
	if maxd > cfg.Eps+1e-12 {
		t.Fatalf("budget exceeded: %g > %g", maxd, cfg.Eps)
	}
	if maxd == 0 {
		t.Fatal("BIM produced no perturbation")
	}
}

func TestBIMLowersTargetLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	tr, _ := dataset.Synthetic(31, 200, 40, 0.05)
	net := trainedSmallNet(t, 5, tr)
	img := tr.X[0]
	target := LeastLikelyLabel(net, img)
	// The margin between the target logit and the best logit must improve;
	// raw cross-entropy can sit in its numerical clamp when the target
	// probability is astronomically small.
	marginOf := func(x *tensor.Tensor) float64 {
		_, logits := Predict(net, x)
		best := logits[0]
		for _, v := range logits {
			if v > best {
				best = v
			}
		}
		return logits[target] - best
	}
	before := marginOf(img)
	adv := BIM(net, img, target, DefaultBIM(32))
	after := marginOf(adv)
	if after <= before {
		t.Fatalf("target margin did not improve: %g -> %g", before, after)
	}
}

func TestWhiteBoxBIMSucceedsOften(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	tr, te := dataset.Synthetic(32, 300, 60, 0.05)
	net := trainedSmallNet(t, 6, tr)
	// White-box: surrogate == victim. With ε=32 targeted success should be
	// substantial.
	res, err := EvaluateTransfer(net, net, te, 25, DefaultBIM(32))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate() < 0.4 {
		t.Fatalf("white-box targeted success %.2f unexpectedly low (%d/%d)", res.Rate(), res.Successes, res.Total)
	}
}

func TestLargerEpsilonHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	tr, te := dataset.Synthetic(33, 300, 80, 0.05)
	victim := trainedSmallNet(t, 7, tr)
	surrogate := trainedSmallNet(t, 8, tr) // same arch, different seed
	r16, err := EvaluateTransfer(victim, surrogate, te, 30, DefaultBIM(16))
	if err != nil {
		t.Fatal(err)
	}
	r32, err := EvaluateTransfer(victim, surrogate, te, 30, DefaultBIM(32))
	if err != nil {
		t.Fatal(err)
	}
	if r32.Rate()+1e-9 < r16.Rate() {
		t.Fatalf("success rate decreased with larger epsilon: %.2f -> %.2f", r16.Rate(), r32.Rate())
	}
}

func TestLeastLikelyLabelDiffersFromPrediction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bind, err := models.SmallCNN().Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	img := tensor.New(3, 32, 32)
	img.Uniform(rng, 0, 1)
	pred, _ := Predict(bind.Net, img)
	ll := LeastLikelyLabel(bind.Net, img)
	if pred == ll {
		t.Fatal("least-likely label equals the prediction")
	}
}

func TestEvaluateTransferErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	bind, _ := models.SmallCNN().Build(rng)
	_, te := dataset.Synthetic(34, 10, 5, 0.05)
	if _, err := EvaluateTransfer(bind.Net, bind.Net, te, 0, DefaultBIM(16)); err == nil {
		t.Fatal("expected error for n < 1")
	}
}

func TestDefaultBIMScaling(t *testing.T) {
	cfg := DefaultBIM(32)
	if math.Abs(cfg.Eps-32.0/255.0) > 1e-12 {
		t.Fatalf("eps = %g", cfg.Eps)
	}
	if cfg.Alpha <= 0 || cfg.Alpha > cfg.Eps {
		t.Fatalf("alpha = %g", cfg.Alpha)
	}
	if cfg.Steps < 1 {
		t.Fatal("no steps")
	}
}
