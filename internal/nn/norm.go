package nn

import (
	"fmt"
	"math"

	"github.com/huffduff/huffduff/internal/tensor"
)

// BatchNorm2D normalizes each channel of an NCHW tensor. In training mode it
// uses batch statistics and maintains running estimates; in eval mode it
// applies the running statistics, which is what the deployed victim does on
// the accelerator (the paper folds this into the post-processing unit).
type BatchNorm2D struct {
	C        int
	Eps      float64
	Momentum float64

	Gamma *Param
	Beta  *Param

	RunningMean *tensor.Tensor
	RunningVar  *tensor.Tensor

	// forward cache
	lastX     *tensor.Tensor
	lastXHat  *tensor.Tensor
	lastMean  []float64
	lastInvSD []float64
	lastTrain bool
}

// NewBatchNorm2D constructs a batch norm with gamma=1, beta=0.
func NewBatchNorm2D(c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		C:           c,
		Eps:         1e-5,
		Momentum:    0.1,
		Gamma:       newParam("bn.gamma", []int{c}, false),
		Beta:        newParam("bn.beta", []int{c}, false),
		RunningMean: tensor.New(c),
		RunningVar:  tensor.New(c),
	}
	bn.Gamma.W.Fill(1)
	bn.RunningVar.Fill(1)
	return bn
}

// Name implements Layer.
func (bn *BatchNorm2D) Name() string { return fmt.Sprintf("bn(%d)", bn.C) }

// Params implements Layer.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// Forward implements Layer.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.NumDims() != 4 || x.Dim(1) != bn.C {
		panic(fmt.Sprintf("nn: %s got input %v", bn.Name(), x.Shape()))
	}
	nB, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	cnt := nB * h * w
	out := tensor.New(x.Shape()...)

	mean := make([]float64, bn.C)
	invSD := make([]float64, bn.C)
	if train {
		for c := 0; c < bn.C; c++ {
			var sum float64
			for n := 0; n < nB; n++ {
				base := (n*bn.C + c) * h * w
				for _, v := range x.Data[base : base+h*w] {
					sum += v
				}
			}
			m := sum / float64(cnt)
			var sq float64
			for n := 0; n < nB; n++ {
				base := (n*bn.C + c) * h * w
				for _, v := range x.Data[base : base+h*w] {
					d := v - m
					sq += d * d
				}
			}
			v := sq / float64(cnt)
			mean[c] = m
			invSD[c] = 1 / math.Sqrt(v+bn.Eps)
			bn.RunningMean.Data[c] = (1-bn.Momentum)*bn.RunningMean.Data[c] + bn.Momentum*m
			bn.RunningVar.Data[c] = (1-bn.Momentum)*bn.RunningVar.Data[c] + bn.Momentum*v
		}
	} else {
		for c := 0; c < bn.C; c++ {
			mean[c] = bn.RunningMean.Data[c]
			invSD[c] = 1 / math.Sqrt(bn.RunningVar.Data[c]+bn.Eps)
		}
	}

	xhat := tensor.New(x.Shape()...)
	for n := 0; n < nB; n++ {
		for c := 0; c < bn.C; c++ {
			base := (n*bn.C + c) * h * w
			g, b := bn.Gamma.W.Data[c], bn.Beta.W.Data[c]
			m, is := mean[c], invSD[c]
			for i := base; i < base+h*w; i++ {
				xh := (x.Data[i] - m) * is
				xhat.Data[i] = xh
				out.Data[i] = g*xh + b
			}
		}
	}

	bn.lastX = x
	bn.lastXHat = xhat
	bn.lastMean = mean
	bn.lastInvSD = invSD
	bn.lastTrain = train
	return out
}

// Backward implements Layer. After a training-mode forward it uses the
// standard batch-norm gradient (statistics depend on the batch); after an
// eval-mode forward (fixed running statistics, as in adversarial-example
// generation) the normalization is a constant affine map and the plain
// chain rule applies.
func (bn *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := bn.lastX
	if x == nil {
		panic("nn: BatchNorm2D.Backward before Forward")
	}
	nB, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	cnt := float64(nB * h * w)
	gradX := tensor.New(x.Shape()...)

	for c := 0; c < bn.C; c++ {
		g := bn.Gamma.W.Data[c]
		is := bn.lastInvSD[c]
		var sumDy, sumDyXhat float64
		for n := 0; n < nB; n++ {
			base := (n*bn.C + c) * h * w
			for i := base; i < base+h*w; i++ {
				dy := grad.Data[i]
				sumDy += dy
				sumDyXhat += dy * bn.lastXHat.Data[i]
			}
		}
		bn.Beta.Grad.Data[c] += sumDy
		bn.Gamma.Grad.Data[c] += sumDyXhat
		for n := 0; n < nB; n++ {
			base := (n*bn.C + c) * h * w
			for i := base; i < base+h*w; i++ {
				dy := grad.Data[i]
				if bn.lastTrain {
					xh := bn.lastXHat.Data[i]
					gradX.Data[i] = g * is * (dy - sumDy/cnt - xh*sumDyXhat/cnt)
				} else {
					gradX.Data[i] = g * is * dy
				}
			}
		}
	}
	return gradX
}

// FoldedAffine returns the per-channel scale and shift the deployed
// (eval-mode) batch norm applies: y = scale*x + shift. The accelerator
// simulator's post-processing unit uses this folded form.
func (bn *BatchNorm2D) FoldedAffine() (scale, shift []float64) {
	scale = make([]float64, bn.C)
	shift = make([]float64, bn.C)
	for c := 0; c < bn.C; c++ {
		is := 1 / math.Sqrt(bn.RunningVar.Data[c]+bn.Eps)
		scale[c] = bn.Gamma.W.Data[c] * is
		shift[c] = bn.Beta.W.Data[c] - bn.Gamma.W.Data[c]*bn.RunningMean.Data[c]*is
	}
	return scale, shift
}
