package nn

import (
	"fmt"
	"math"

	"github.com/huffduff/huffduff/internal/tensor"
)

// MaxPool2D is a symmetric max pooling layer with window == stride, the
// configuration CNNs for vision use and the one the paper's POOL factor
// describes.
type MaxPool2D struct {
	Window int

	lastShape []int
	argmax    []int // flat input index chosen per output element
}

// NewMaxPool2D returns a max pooling layer with the given window/stride.
func NewMaxPool2D(window int) *MaxPool2D {
	if window < 1 {
		panic(fmt.Sprintf("nn: invalid pool window %d", window))
	}
	return &MaxPool2D{Window: window}
}

// Name implements Layer.
func (m *MaxPool2D) Name() string { return fmt.Sprintf("maxpool%d", m.Window) }

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// OutSize returns the pooled spatial dimensions.
func (m *MaxPool2D) OutSize(h, w int) (int, int) { return h / m.Window, w / m.Window }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	nB, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	p, q := m.OutSize(h, w)
	if p < 1 || q < 1 {
		panic(fmt.Sprintf("nn: pool window %d does not fit input %dx%d", m.Window, h, w))
	}
	out := tensor.New(nB, c, p, q)
	m.lastShape = append([]int(nil), x.Shape()...)
	m.argmax = make([]int, out.Size())
	oi := 0
	for n := 0; n < nB; n++ {
		for cc := 0; cc < c; cc++ {
			for oy := 0; oy < p; oy++ {
				for ox := 0; ox < q; ox++ {
					best := math.Inf(-1)
					bestIdx := -1
					for ky := 0; ky < m.Window; ky++ {
						for kx := 0; kx < m.Window; kx++ {
							iy, ix := oy*m.Window+ky, ox*m.Window+kx
							idx := ((n*c+cc)*h+iy)*w + ix
							if v := x.Data[idx]; v > best {
								best, bestIdx = v, idx
							}
						}
					}
					out.Data[oi] = best
					m.argmax[oi] = bestIdx
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if m.argmax == nil {
		panic("nn: MaxPool2D.Backward before Forward")
	}
	gradX := tensor.New(m.lastShape...)
	for oi, idx := range m.argmax {
		gradX.Data[idx] += grad.Data[oi]
	}
	return gradX
}

// AvgPool2D is average pooling with window == stride. A window covering the
// whole feature map gives global average pooling (ResNet's final pool).
type AvgPool2D struct {
	Window int

	lastShape []int
}

// NewAvgPool2D returns an average pooling layer with the given window.
func NewAvgPool2D(window int) *AvgPool2D {
	if window < 1 {
		panic(fmt.Sprintf("nn: invalid pool window %d", window))
	}
	return &AvgPool2D{Window: window}
}

// Name implements Layer.
func (a *AvgPool2D) Name() string { return fmt.Sprintf("avgpool%d", a.Window) }

// Params implements Layer.
func (a *AvgPool2D) Params() []*Param { return nil }

// OutSize returns the pooled spatial dimensions.
func (a *AvgPool2D) OutSize(h, w int) (int, int) { return h / a.Window, w / a.Window }

// Forward implements Layer.
func (a *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	nB, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	p, q := a.OutSize(h, w)
	if p < 1 || q < 1 {
		panic(fmt.Sprintf("nn: pool window %d does not fit input %dx%d", a.Window, h, w))
	}
	a.lastShape = append([]int(nil), x.Shape()...)
	out := tensor.New(nB, c, p, q)
	norm := 1.0 / float64(a.Window*a.Window)
	oi := 0
	for n := 0; n < nB; n++ {
		for cc := 0; cc < c; cc++ {
			for oy := 0; oy < p; oy++ {
				for ox := 0; ox < q; ox++ {
					s := 0.0
					for ky := 0; ky < a.Window; ky++ {
						for kx := 0; kx < a.Window; kx++ {
							iy, ix := oy*a.Window+ky, ox*a.Window+kx
							s += x.Data[((n*c+cc)*h+iy)*w+ix]
						}
					}
					out.Data[oi] = s * norm
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (a *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if a.lastShape == nil {
		panic("nn: AvgPool2D.Backward before Forward")
	}
	nB, c, h, w := a.lastShape[0], a.lastShape[1], a.lastShape[2], a.lastShape[3]
	p, q := a.OutSize(h, w)
	gradX := tensor.New(a.lastShape...)
	norm := 1.0 / float64(a.Window*a.Window)
	oi := 0
	for n := 0; n < nB; n++ {
		for cc := 0; cc < c; cc++ {
			for oy := 0; oy < p; oy++ {
				for ox := 0; ox < q; ox++ {
					g := grad.Data[oi] * norm
					oi++
					for ky := 0; ky < a.Window; ky++ {
						for kx := 0; kx < a.Window; kx++ {
							iy, ix := oy*a.Window+ky, ox*a.Window+kx
							gradX.Data[((n*c+cc)*h+iy)*w+ix] += g
						}
					}
				}
			}
		}
	}
	return gradX
}
