package nn

import (
	"fmt"
	"math/rand"

	"github.com/huffduff/huffduff/internal/tensor"
)

// Linear is a fully connected layer over [N, In] inputs.
type Linear struct {
	In, Out int
	Weight  *Param // [Out, In]
	Bias    *Param // [Out]

	lastX *tensor.Tensor
}

// NewLinear constructs a fully connected layer with Kaiming init.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	l := &Linear{In: in, Out: out}
	l.Weight = newParam("fc.weight", []int{out, in}, true)
	l.Weight.W.KaimingInit(rng, in)
	l.Bias = newParam("fc.bias", []int{out}, false)
	return l
}

// Name implements Layer.
func (l *Linear) Name() string { return fmt.Sprintf("fc(%d->%d)", l.In, l.Out) }

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// Forward implements Layer.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.NumDims() != 2 || x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: %s got input %v", l.Name(), x.Shape()))
	}
	l.Weight.ApplyMask()
	l.lastX = x
	// out = x · Wᵀ + b
	out := tensor.MatMul(x, tensor.Transpose(l.Weight.W))
	nB := x.Dim(0)
	for n := 0; n < nB; n++ {
		row := out.Data[n*l.Out : (n+1)*l.Out]
		for i := range row {
			row[i] += l.Bias.W.Data[i]
		}
	}
	return out
}

// Backward implements Layer.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.lastX == nil {
		panic("nn: Linear.Backward before Forward")
	}
	// dW += gradᵀ · x ; dB += column sums; dX = grad · W
	dW := tensor.MatMul(tensor.Transpose(grad), l.lastX)
	l.Weight.Grad.AddInPlace(dW)
	nB := grad.Dim(0)
	for n := 0; n < nB; n++ {
		row := grad.Data[n*l.Out : (n+1)*l.Out]
		for i, v := range row {
			l.Bias.Grad.Data[i] += v
		}
	}
	if l.Weight.Mask != nil {
		l.Weight.Grad.MulInPlace(l.Weight.Mask)
	}
	return tensor.MatMul(grad, l.Weight.W)
}

// Flatten reshapes [N,C,H,W] to [N, C*H*W].
type Flatten struct {
	lastShape []int
}

// NewFlatten returns a flattening layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.lastShape = append([]int(nil), x.Shape()...)
	n := x.Dim(0)
	return x.Clone().Reshape(n, x.Size()/n)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if f.lastShape == nil {
		panic("nn: Flatten.Backward before Forward")
	}
	return grad.Clone().Reshape(f.lastShape...)
}
