package nn

import (
	"github.com/huffduff/huffduff/internal/tensor"
)

// ReLU clamps negative values to zero. The resulting exact zeros are what
// make activation tensors compressible — and hence what the boundary-effect
// side channel measures.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.mask == nil {
		panic("nn: ReLU.Backward before Forward")
	}
	out := tensor.New(grad.Shape()...)
	for i, v := range grad.Data {
		if r.mask[i] {
			out.Data[i] = v
		}
	}
	return out
}
