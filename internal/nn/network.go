package nn

import (
	"fmt"

	"github.com/huffduff/huffduff/internal/tensor"
)

// NodeKind classifies graph nodes.
type NodeKind int

// Graph node kinds.
const (
	KindInput NodeKind = iota
	KindLayer
	KindAdd // elementwise sum of two inputs, optionally followed by ReLU
)

// Node is one vertex of a network DAG. Layer nodes wrap a Layer; Add nodes
// implement residual connections (the dataflow-graph edges the attacker
// recovers from RAW dependencies in the DRAM trace).
type Node struct {
	ID    int
	Kind  NodeKind
	Layer Layer
	In    []int
	// ReLUAfterAdd applies ReLU to the sum (ResNet basic blocks).
	ReLUAfterAdd bool

	out      *tensor.Tensor
	grad     *tensor.Tensor
	reluMask []bool
}

// Out returns the node's most recent forward output (nil before Forward).
// The accelerator simulator uses this to compute transfer volumes.
func (n *Node) Out() *tensor.Tensor { return n.out }

// Network is a DAG of layers built with Builder. Node IDs are topologically
// ordered by construction.
type Network struct {
	Nodes  []*Node
	OutID  int
	inputs []int
}

// Builder incrementally constructs a Network.
type Builder struct {
	nodes []*Node
}

// NewBuilder returns an empty network builder.
func NewBuilder() *Builder { return &Builder{} }

// Input adds the network input node and returns its ID.
func (b *Builder) Input() int {
	n := &Node{ID: len(b.nodes), Kind: KindInput}
	b.nodes = append(b.nodes, n)
	return n.ID
}

// Layer adds a layer consuming node `in` and returns the new node's ID.
func (b *Builder) Layer(in int, l Layer) int {
	b.check(in)
	n := &Node{ID: len(b.nodes), Kind: KindLayer, Layer: l, In: []int{in}}
	b.nodes = append(b.nodes, n)
	return n.ID
}

// Chain adds several layers in sequence and returns the last node's ID.
func (b *Builder) Chain(in int, layers ...Layer) int {
	id := in
	for _, l := range layers {
		id = b.Layer(id, l)
	}
	return id
}

// Add sums two nodes elementwise; relu applies ReLU to the result.
func (b *Builder) Add(a, c int, relu bool) int {
	b.check(a)
	b.check(c)
	n := &Node{ID: len(b.nodes), Kind: KindAdd, In: []int{a, c}, ReLUAfterAdd: relu}
	b.nodes = append(b.nodes, n)
	return n.ID
}

func (b *Builder) check(id int) {
	if id < 0 || id >= len(b.nodes) {
		panic(fmt.Sprintf("nn: builder references unknown node %d", id))
	}
}

// Build finalizes the network with the given output node.
func (b *Builder) Build(out int) *Network {
	b.check(out)
	net := &Network{Nodes: b.nodes, OutID: out}
	for _, n := range b.nodes {
		if n.Kind == KindInput {
			net.inputs = append(net.inputs, n.ID)
		}
	}
	if len(net.inputs) != 1 {
		panic(fmt.Sprintf("nn: network must have exactly one input, got %d", len(net.inputs)))
	}
	return net
}

// Forward runs the network on a batch and returns the output tensor.
// Intermediate node outputs remain accessible via Node.Out until the next
// Forward call.
func (net *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, n := range net.Nodes {
		switch n.Kind {
		case KindInput:
			n.out = x
		case KindLayer:
			n.out = n.Layer.Forward(net.Nodes[n.In[0]].out, train)
		case KindAdd:
			a := net.Nodes[n.In[0]].out
			c := net.Nodes[n.In[1]].out
			sum := a.Add(c)
			if n.ReLUAfterAdd {
				if cap(n.reluMask) < len(sum.Data) {
					n.reluMask = make([]bool, len(sum.Data))
				}
				n.reluMask = n.reluMask[:len(sum.Data)]
				for i, v := range sum.Data {
					if v > 0 {
						n.reluMask[i] = true
					} else {
						n.reluMask[i] = false
						sum.Data[i] = 0
					}
				}
			}
			n.out = sum
		}
	}
	return net.Nodes[net.OutID].out
}

// Backward propagates gradOut (gradient w.r.t. the network output) through
// the graph, accumulating parameter gradients, and returns the gradient
// w.r.t. the network input.
func (net *Network) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	for _, n := range net.Nodes {
		n.grad = nil
	}
	net.Nodes[net.OutID].grad = gradOut
	for i := len(net.Nodes) - 1; i >= 0; i-- {
		n := net.Nodes[i]
		if n.grad == nil {
			continue // node not on a path to the output
		}
		switch n.Kind {
		case KindInput:
			// done; grad available below
		case KindLayer:
			g := n.Layer.Backward(n.grad)
			net.accumulate(n.In[0], g)
		case KindAdd:
			g := n.grad
			if n.ReLUAfterAdd {
				masked := tensor.New(g.Shape()...)
				for i, v := range g.Data {
					if n.reluMask[i] {
						masked.Data[i] = v
					}
				}
				g = masked
			}
			net.accumulate(n.In[0], g)
			net.accumulate(n.In[1], g.Clone())
		}
	}
	in := net.Nodes[net.inputs[0]]
	if in.grad == nil {
		in.grad = tensor.New(in.out.Shape()...)
	}
	return in.grad
}

func (net *Network) accumulate(id int, g *tensor.Tensor) {
	dst := net.Nodes[id]
	if dst.grad == nil {
		dst.grad = g
	} else {
		dst.grad.AddInPlace(g)
	}
}

// Params returns all trainable parameters in the network.
func (net *Network) Params() []*Param {
	var ps []*Param
	for _, n := range net.Nodes {
		if n.Kind == KindLayer {
			ps = append(ps, n.Layer.Params()...)
		}
	}
	return ps
}

// ZeroGrads clears all parameter gradients.
func (net *Network) ZeroGrads() { ZeroGrads(net.Params()) }

// NumParams returns the total number of weights (including masked zeros).
func (net *Network) NumParams() int {
	total := 0
	for _, p := range net.Params() {
		total += p.W.Size()
	}
	return total
}

// NNZParams returns the number of nonzero weights (the sparse footprint).
func (net *Network) NNZParams() int {
	total := 0
	for _, p := range net.Params() {
		total += p.W.NNZ(0)
	}
	return total
}

// Layers returns the layers in topological order.
func (net *Network) Layers() []Layer {
	var ls []Layer
	for _, n := range net.Nodes {
		if n.Kind == KindLayer {
			ls = append(ls, n.Layer)
		}
	}
	return ls
}
