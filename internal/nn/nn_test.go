package nn

import (
	"math"
	"math/rand"
	"testing"

	"github.com/huffduff/huffduff/internal/tensor"
)

// naiveConv2D is a direct-summation reference implementation used to check
// the im2col/GEMM path.
func naiveConv2D(c *Conv2D, x *tensor.Tensor) *tensor.Tensor {
	nB, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	p, q := c.OutSize(h, w)
	out := tensor.New(nB, c.OutC, p, q)
	cg := c.InC / c.Groups
	outCg := c.OutC / c.Groups
	for n := 0; n < nB; n++ {
		for oc := 0; oc < c.OutC; oc++ {
			g := oc / outCg
			for oy := 0; oy < p; oy++ {
				for ox := 0; ox < q; ox++ {
					s := 0.0
					for cc := 0; cc < cg; cc++ {
						for ky := 0; ky < c.Kernel; ky++ {
							for kx := 0; kx < c.Kernel; kx++ {
								iy := oy*c.Stride + ky - c.Pad
								ix := ox*c.Stride + kx - c.Pad
								if iy < 0 || iy >= h || ix < 0 || ix >= w {
									continue
								}
								s += c.Weight.W.At(oc, cc, ky, kx) * x.At4(n, g*cg+cc, iy, ix)
							}
						}
					}
					if c.Bias != nil {
						s += c.Bias.W.Data[oc]
					}
					out.Set4(s, n, oc, oy, ox)
				}
			}
		}
	}
	return out
}

func TestConv2DForwardKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv2D(rng, 1, 1, 3, 1, 0, 1, false)
	// Identity-ish kernel: only center weight = 2.
	c.Weight.W.Zero()
	c.Weight.W.Set(2, 0, 0, 1, 1)
	x := tensor.New(1, 1, 3, 3)
	for i := range x.Data {
		x.Data[i] = float64(i + 1)
	}
	out := c.Forward(x, false)
	if out.Dim(2) != 1 || out.Dim(3) != 1 {
		t.Fatalf("out shape %v", out.Shape())
	}
	if out.Data[0] != 10 { // center of 3x3 is 5, times 2
		t.Fatalf("out = %g, want 10", out.Data[0])
	}
}

func TestConv2DMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := []struct {
		inC, outC, k, stride, pad, groups int
		bias                              bool
	}{
		{3, 8, 3, 1, 1, 1, true},
		{3, 8, 3, 2, 1, 1, false},
		{4, 6, 5, 1, 2, 1, true},
		{4, 4, 3, 1, 1, 4, false}, // depthwise
		{6, 9, 3, 2, 1, 3, true},  // grouped
		{3, 5, 1, 1, 0, 1, true},  // pointwise
		{2, 3, 7, 1, 3, 1, false},
	}
	for _, tc := range cases {
		c := NewConv2D(rng, tc.inC, tc.outC, tc.k, tc.stride, tc.pad, tc.groups, tc.bias)
		if tc.bias {
			c.Bias.W.Uniform(rng, -1, 1)
		}
		x := tensor.New(2, tc.inC, 9, 9)
		x.Randn(rng, 1)
		got := c.Forward(x, false)
		want := naiveConv2D(c, x)
		if !tensor.ApproxEqual(got, want, 1e-9) {
			t.Fatalf("conv mismatch for %+v", tc)
		}
	}
}

func TestConv2DBadGroupsPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewConv2D(rng, 3, 8, 3, 1, 1, 2, false)
}

// gradCheckLayer checks Backward against a central-difference approximation
// on both the input and every parameter.
func gradCheckLayer(t *testing.T, mk func() Layer, inShape []int, train bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	l := mk()
	x := tensor.New(inShape...)
	x.Randn(rng, 1)
	out := l.Forward(x, train)
	r := tensor.New(out.Shape()...)
	r.Randn(rng, 1)
	loss := func() float64 {
		o := l.Forward(x, train)
		s := 0.0
		for i := range o.Data {
			s += o.Data[i] * r.Data[i]
		}
		return s
	}
	_ = out
	ZeroGrads(l.Params())
	l.Forward(x, train)
	gradX := l.Backward(r.Clone())

	const eps = 1e-5
	checkSlice := func(name string, vals, grads []float64, limit int) {
		step := len(vals)/limit + 1
		for i := 0; i < len(vals); i += step {
			orig := vals[i]
			vals[i] = orig + eps
			up := loss()
			vals[i] = orig - eps
			down := loss()
			vals[i] = orig
			num := (up - down) / (2 * eps)
			if diff := math.Abs(num - grads[i]); diff > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s grad[%d]: analytic %g vs numeric %g", name, i, grads[i], num)
			}
		}
	}
	checkSlice("input", x.Data, gradX.Data, 30)
	for _, p := range l.Params() {
		checkSlice(p.Name, p.W.Data, p.Grad.Data, 30)
	}
}

func TestConv2DGradCheck(t *testing.T) {
	gradCheckLayer(t, func() Layer {
		return NewConv2D(rand.New(rand.NewSource(7)), 2, 3, 3, 1, 1, 1, true)
	}, []int{2, 2, 5, 5}, false)
}

func TestConv2DStridedGradCheck(t *testing.T) {
	gradCheckLayer(t, func() Layer {
		return NewConv2D(rand.New(rand.NewSource(8)), 2, 4, 3, 2, 1, 2, false)
	}, []int{1, 2, 6, 6}, false)
}

func TestLinearGradCheck(t *testing.T) {
	gradCheckLayer(t, func() Layer {
		return NewLinear(rand.New(rand.NewSource(9)), 7, 4)
	}, []int{3, 7}, false)
}

func TestBatchNormGradCheck(t *testing.T) {
	gradCheckLayer(t, func() Layer {
		bn := NewBatchNorm2D(3)
		bn.Momentum = 0 // keep running stats fixed so loss() re-evaluation is stable
		return bn
	}, []int{2, 3, 4, 4}, true)
}

func TestAvgPoolGradCheck(t *testing.T) {
	gradCheckLayer(t, func() Layer { return NewAvgPool2D(2) }, []int{2, 2, 4, 4}, false)
}

func TestBatchNormTrainNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bn := NewBatchNorm2D(4)
	x := tensor.New(8, 4, 6, 6)
	x.Randn(rng, 3)
	x.Apply(func(v float64) float64 { return v + 10 })
	out := bn.Forward(x, true)
	// Per-channel mean ~0, var ~1.
	for c := 0; c < 4; c++ {
		var sum, sq float64
		cnt := 0
		for n := 0; n < 8; n++ {
			for i := 0; i < 36; i++ {
				v := out.Data[(n*4+c)*36+i]
				sum += v
				sq += v * v
				cnt++
			}
		}
		mean := sum / float64(cnt)
		variance := sq/float64(cnt) - mean*mean
		if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-3 {
			t.Fatalf("channel %d: mean %g var %g", c, mean, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	bn := NewBatchNorm2D(2)
	bn.Momentum = 1 // running stats = last batch stats
	x := tensor.New(4, 2, 3, 3)
	x.Randn(rng, 2)
	bn.Forward(x, true)
	evalOut := bn.Forward(x, false)
	trainOut := bn.Forward(x, true)
	if !tensor.ApproxEqual(evalOut, trainOut, 1e-6) {
		t.Fatal("eval with momentum=1 running stats should match train output on same batch")
	}
}

func TestBatchNormFoldedAffineMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	bn := NewBatchNorm2D(3)
	bn.RunningMean.Randn(rng, 1)
	bn.RunningVar.Uniform(rng, 0.5, 2)
	bn.Gamma.W.Uniform(rng, 0.5, 1.5)
	bn.Beta.W.Randn(rng, 1)
	x := tensor.New(2, 3, 4, 4)
	x.Randn(rng, 1)
	want := bn.Forward(x, false)
	scale, shift := bn.FoldedAffine()
	got := tensor.New(x.Shape()...)
	for n := 0; n < 2; n++ {
		for c := 0; c < 3; c++ {
			base := (n*3 + c) * 16
			for i := base; i < base+16; i++ {
				got.Data[i] = scale[c]*x.Data[i] + shift[c]
			}
		}
	}
	if !tensor.ApproxEqual(got, want, 1e-9) {
		t.Fatal("FoldedAffine disagrees with eval-mode forward")
	}
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice([]float64{-1, 0, 2, -3}, 1, 4)
	out := r.Forward(x, true)
	want := []float64{0, 0, 2, 0}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("ReLU forward = %v", out.Data)
		}
	}
	g := r.Backward(tensor.FromSlice([]float64{5, 5, 5, 5}, 1, 4))
	wantG := []float64{0, 0, 5, 0}
	for i, v := range wantG {
		if g.Data[i] != v {
			t.Fatalf("ReLU backward = %v", g.Data)
		}
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	m := NewMaxPool2D(2)
	x := tensor.FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		0, 0, 1, 1,
		0, 9, 1, 1,
	}, 1, 1, 4, 4)
	out := m.Forward(x, false)
	want := []float64{4, 8, 9, 1}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("maxpool forward = %v, want %v", out.Data, want)
		}
	}
	g := m.Backward(tensor.FromSlice([]float64{10, 20, 30, 40}, 1, 1, 2, 2))
	if g.At4(0, 0, 1, 1) != 10 || g.At4(0, 0, 1, 3) != 20 || g.At4(0, 0, 3, 1) != 30 {
		t.Fatalf("maxpool backward routing wrong: %v", g.Data)
	}
	// Ties route to the first (row-major) max position.
	if g.At4(0, 0, 2, 2) != 40 {
		t.Fatalf("tie routing wrong: %v", g.Data)
	}
}

func TestAvgPoolForward(t *testing.T) {
	a := NewAvgPool2D(2)
	x := tensor.FromSlice([]float64{1, 3, 2, 4, 5, 7, 6, 8, 0, 0, 0, 0, 0, 0, 0, 0}, 1, 1, 4, 4)
	out := a.Forward(x, false)
	if out.Data[0] != 4 { // (1+3+5+7)/4
		t.Fatalf("avgpool = %v", out.Data)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	x := tensor.New(2, 3, 4, 4)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	out := f.Forward(x, false)
	if out.Dim(0) != 2 || out.Dim(1) != 48 {
		t.Fatalf("flatten shape %v", out.Shape())
	}
	back := f.Backward(out)
	if !tensor.ApproxEqual(back, x, 0) {
		t.Fatal("flatten backward should invert shape")
	}
}

func buildTinyResidualNet(rng *rand.Rand) *Network {
	b := NewBuilder()
	in := b.Input()
	c1 := b.Chain(in, NewConv2D(rng, 1, 4, 3, 1, 1, 1, false), NewBatchNorm2D(4), NewReLU())
	c2 := b.Chain(c1, NewConv2D(rng, 4, 4, 3, 1, 1, 1, false), NewBatchNorm2D(4))
	sum := b.Add(c2, c1, true)
	head := b.Chain(sum, NewFlatten(), NewLinear(rng, 4*6*6, 3))
	return b.Build(head)
}

func TestNetworkForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net := buildTinyResidualNet(rng)
	x := tensor.New(2, 1, 6, 6)
	x.Randn(rng, 1)
	out := net.Forward(x, true)
	if out.Dim(0) != 2 || out.Dim(1) != 3 {
		t.Fatalf("network out shape %v", out.Shape())
	}
	if got := len(net.Layers()); got != 7 {
		t.Fatalf("Layers() = %d, want 7", got)
	}
}

func TestNetworkResidualGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	net := buildTinyResidualNet(rng)
	// Freeze BN statistics for a deterministic loss surface.
	for _, l := range net.Layers() {
		if bn, ok := l.(*BatchNorm2D); ok {
			bn.Momentum = 0
		}
	}
	x := tensor.New(1, 1, 6, 6)
	x.Randn(rng, 1)
	out := net.Forward(x, true)
	r := tensor.New(out.Shape()...)
	r.Randn(rng, 1)
	loss := func() float64 {
		o := net.Forward(x, true)
		s := 0.0
		for i := range o.Data {
			s += o.Data[i] * r.Data[i]
		}
		return s
	}
	net.ZeroGrads()
	net.Forward(x, true)
	gradX := net.Backward(r.Clone())

	const eps = 1e-5
	check := func(name string, vals, grads []float64) {
		step := len(vals)/20 + 1
		for i := 0; i < len(vals); i += step {
			orig := vals[i]
			vals[i] = orig + eps
			up := loss()
			vals[i] = orig - eps
			down := loss()
			vals[i] = orig
			num := (up - down) / (2 * eps)
			if diff := math.Abs(num - grads[i]); diff > 2e-4*(1+math.Abs(num)) {
				t.Fatalf("%s grad[%d]: analytic %g vs numeric %g", name, i, grads[i], num)
			}
		}
	}
	check("input", x.Data, gradX.Data)
	for _, p := range net.Params() {
		check(p.Name, p.W.Data, p.Grad.Data)
	}
}

func TestNetworkParamCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	net := buildTinyResidualNet(rng)
	// conv1 4*1*9=36, bn 8, conv2 4*4*9=144, bn 8, fc 144*3+3 = 435
	want := 36 + 8 + 144 + 8 + 435
	if got := net.NumParams(); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
}

func TestMaskedParamStaysZero(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	c := NewConv2D(rng, 1, 2, 3, 1, 1, 1, false)
	mask := tensor.New(c.Weight.W.Shape()...)
	mask.Fill(1)
	mask.Data[0] = 0
	mask.Data[5] = 0
	c.Weight.Mask = mask
	x := tensor.New(1, 1, 4, 4)
	x.Randn(rng, 1)
	c.Forward(x, true)
	if c.Weight.W.Data[0] != 0 || c.Weight.W.Data[5] != 0 {
		t.Fatal("masked weights not zeroed on forward")
	}
	g := tensor.New(1, 2, 4, 4)
	g.Fill(1)
	c.Backward(g)
	if c.Weight.Grad.Data[0] != 0 || c.Weight.Grad.Data[5] != 0 {
		t.Fatal("masked weights received gradient")
	}
}

func TestSamePad(t *testing.T) {
	for k, want := range map[int]int{1: 0, 3: 1, 5: 2, 7: 3} {
		if got := SamePad(k); got != want {
			t.Fatalf("SamePad(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	layers := []Layer{
		NewReLU(),
		NewMaxPool2D(2),
		NewAvgPool2D(2),
		NewFlatten(),
		NewConv2D(rand.New(rand.NewSource(1)), 1, 1, 3, 1, 1, 1, false),
		NewLinear(rand.New(rand.NewSource(1)), 2, 2),
		NewBatchNorm2D(1),
	}
	for _, l := range layers {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic on Backward before Forward", l.Name())
				}
			}()
			l.Backward(tensor.New(1, 1))
		}()
	}
}

// Eval-mode BatchNorm is a constant affine map; its input gradient must be
// the plain chain rule (this matters for adversarial-example generation,
// which backpropagates through eval-mode forwards).
func TestBatchNormEvalGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	bn := NewBatchNorm2D(3)
	bn.RunningMean.Randn(rng, 1)
	bn.RunningVar.Uniform(rng, 0.5, 2)
	bn.Gamma.W.Uniform(rng, 0.5, 1.5)
	bn.Beta.W.Randn(rng, 1)
	x := tensor.New(1, 3, 4, 4)
	x.Randn(rng, 1)
	out := bn.Forward(x, false)
	r := tensor.New(out.Shape()...)
	r.Randn(rng, 1)
	ZeroGrads(bn.Params())
	bn.Forward(x, false)
	gradX := bn.Backward(r.Clone())
	const eps = 1e-6
	for i := 0; i < x.Size(); i += 3 {
		orig := x.Data[i]
		loss := func() float64 {
			o := bn.Forward(x, false)
			s := 0.0
			for j := range o.Data {
				s += o.Data[j] * r.Data[j]
			}
			return s
		}
		x.Data[i] = orig + eps
		up := loss()
		x.Data[i] = orig - eps
		down := loss()
		x.Data[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-gradX.Data[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("eval grad[%d]: analytic %g vs numeric %g", i, gradX.Data[i], num)
		}
	}
}
