package nn

import (
	"fmt"
	"math/rand"

	"github.com/huffduff/huffduff/internal/tensor"
)

// Conv2D is a 2-d convolution over NCHW tensors with square kernels,
// symmetric stride and padding, optional bias, and channel groups
// (Groups == InC gives a depthwise convolution, as used by MobileNetV2).
type Conv2D struct {
	InC, OutC int
	Kernel    int
	Stride    int
	Pad       int
	Groups    int

	Weight *Param // shape [OutC, InC/Groups, Kernel, Kernel]
	Bias   *Param // shape [OutC], nil when the layer has no bias

	lastX *tensor.Tensor
}

// NewConv2D constructs a convolution with Kaiming-initialized weights.
// Pass bias=false for convolutions followed by BatchNorm.
func NewConv2D(rng *rand.Rand, inC, outC, kernel, stride, pad, groups int, bias bool) *Conv2D {
	if groups < 1 || inC%groups != 0 || outC%groups != 0 {
		panic(fmt.Sprintf("nn: invalid groups %d for channels %d->%d", groups, inC, outC))
	}
	c := &Conv2D{
		InC: inC, OutC: outC,
		Kernel: kernel, Stride: stride, Pad: pad, Groups: groups,
	}
	c.Weight = newParam("conv.weight", []int{outC, inC / groups, kernel, kernel}, true)
	c.Weight.W.KaimingInit(rng, (inC/groups)*kernel*kernel)
	if bias {
		c.Bias = newParam("conv.bias", []int{outC}, false)
	}
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv%dx%d(%d->%d,s%d,p%d,g%d)", c.Kernel, c.Kernel, c.InC, c.OutC, c.Stride, c.Pad, c.Groups)
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	if c.Bias == nil {
		return []*Param{c.Weight}
	}
	return []*Param{c.Weight, c.Bias}
}

// OutSize returns the output spatial dimensions for an h×w input.
func (c *Conv2D) OutSize(h, w int) (int, int) {
	return convOut(h, c.Kernel, c.Stride, c.Pad), convOut(w, c.Kernel, c.Stride, c.Pad)
}

// im2col expands one sample's group-slice of input into a
// [cg*K*K, P*Q] column matrix. x is the full [C,H,W] sample.
func (c *Conv2D) im2col(x *tensor.Tensor, n, g, p, q int) *tensor.Tensor {
	cg := c.InC / c.Groups
	k := c.Kernel
	h, w := x.Dim(2), x.Dim(3)
	cols := tensor.New(cg*k*k, p*q)
	for cc := 0; cc < cg; cc++ {
		srcC := g*cg + cc
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := (cc*k+ky)*k + kx
				dst := cols.Data[row*p*q:]
				for oy := 0; oy < p; oy++ {
					iy := oy*c.Stride + ky - c.Pad
					if iy < 0 || iy >= h {
						continue // padding region stays zero
					}
					for ox := 0; ox < q; ox++ {
						ix := ox*c.Stride + kx - c.Pad
						if ix < 0 || ix >= w {
							continue
						}
						dst[oy*q+ox] = x.At4(n, srcC, iy, ix)
					}
				}
			}
		}
	}
	return cols
}

// col2im scatter-adds a [cg*K*K, P*Q] column gradient back into the input
// gradient for sample n, group g.
func (c *Conv2D) col2im(cols *tensor.Tensor, gradX *tensor.Tensor, n, g, p, q int) {
	cg := c.InC / c.Groups
	k := c.Kernel
	h, w := gradX.Dim(2), gradX.Dim(3)
	for cc := 0; cc < cg; cc++ {
		dstC := g*cg + cc
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				row := (cc*k+ky)*k + kx
				src := cols.Data[row*p*q:]
				for oy := 0; oy < p; oy++ {
					iy := oy*c.Stride + ky - c.Pad
					if iy < 0 || iy >= h {
						continue
					}
					for ox := 0; ox < q; ox++ {
						ix := ox*c.Stride + kx - c.Pad
						if ix < 0 || ix >= w {
							continue
						}
						gradX.Set4(gradX.At4(n, dstC, iy, ix)+src[oy*q+ox], n, dstC, iy, ix)
					}
				}
			}
		}
	}
}

// weightMatrix views the weights of group g as [outCg, cg*K*K].
func (c *Conv2D) weightMatrix(g int) *tensor.Tensor {
	outCg := c.OutC / c.Groups
	cg := c.InC / c.Groups
	k := c.Kernel
	flat := c.Weight.W.Data[g*outCg*cg*k*k : (g+1)*outCg*cg*k*k]
	return tensor.FromSlice(flat, outCg, cg*k*k)
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.NumDims() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: %s got input %v", c.Name(), x.Shape()))
	}
	c.Weight.ApplyMask()
	c.lastX = x
	nB, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	p, q := c.OutSize(h, w)
	out := tensor.New(nB, c.OutC, p, q)
	outCg := c.OutC / c.Groups
	for n := 0; n < nB; n++ {
		for g := 0; g < c.Groups; g++ {
			cols := c.im2col(x, n, g, p, q)
			wm := c.weightMatrix(g)
			res := tensor.MatMul(wm, cols) // [outCg, P*Q]
			for oc := 0; oc < outCg; oc++ {
				dst := out.Data[((n*c.OutC+g*outCg+oc)*p)*q : ((n*c.OutC+g*outCg+oc)*p+p)*q]
				copy(dst, res.Data[oc*p*q:(oc+1)*p*q])
			}
		}
	}
	if c.Bias != nil {
		for n := 0; n < nB; n++ {
			for oc := 0; oc < c.OutC; oc++ {
				b := c.Bias.W.Data[oc]
				dst := out.Data[(n*c.OutC+oc)*p*q : (n*c.OutC+oc+1)*p*q]
				for i := range dst {
					dst[i] += b
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.lastX
	if x == nil {
		panic("nn: Conv2D.Backward before Forward")
	}
	nB, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	p, q := c.OutSize(h, w)
	gradX := tensor.New(x.Shape()...)
	outCg := c.OutC / c.Groups
	cg := c.InC / c.Groups
	k := c.Kernel
	for n := 0; n < nB; n++ {
		for g := 0; g < c.Groups; g++ {
			cols := c.im2col(x, n, g, p, q)
			// Gradient w.r.t. output for this sample/group as [outCg, P*Q].
			gm := tensor.New(outCg, p*q)
			for oc := 0; oc < outCg; oc++ {
				src := grad.Data[(n*c.OutC+g*outCg+oc)*p*q : (n*c.OutC+g*outCg+oc+1)*p*q]
				copy(gm.Data[oc*p*q:(oc+1)*p*q], src)
			}
			// dW += gm · colsᵀ
			dW := tensor.MatMul(gm, tensor.Transpose(cols))
			gFlat := c.Weight.Grad.Data[g*outCg*cg*k*k : (g+1)*outCg*cg*k*k]
			for i, v := range dW.Data {
				gFlat[i] += v
			}
			// dX via Wᵀ · gm scattered back
			wm := c.weightMatrix(g)
			dCols := tensor.MatMul(tensor.Transpose(wm), gm)
			c.col2im(dCols, gradX, n, g, p, q)
		}
	}
	if c.Bias != nil {
		for n := 0; n < nB; n++ {
			for oc := 0; oc < c.OutC; oc++ {
				src := grad.Data[(n*c.OutC+oc)*p*q : (n*c.OutC+oc+1)*p*q]
				s := 0.0
				for _, v := range src {
					s += v
				}
				c.Bias.Grad.Data[oc] += s
			}
		}
	}
	// Masked weights must not receive gradient updates.
	if c.Weight.Mask != nil {
		c.Weight.Grad.MulInPlace(c.Weight.Mask)
	}
	return gradX
}
