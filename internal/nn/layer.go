// Package nn is a from-scratch convolutional neural network library with
// full forward and backward passes. It provides everything the HuffDuff
// reproduction needs: inference for the accelerator simulator, training for
// victim/candidate models, and input gradients for adversarial-example
// generation. Only the standard library is used.
package nn

import (
	"fmt"

	"github.com/huffduff/huffduff/internal/tensor"
)

// Param is a trainable parameter with its gradient and an optional pruning
// mask. When Mask is non-nil, masked (zero) positions must stay zero; the
// optimizer re-applies the mask after every update and the layer applies it
// on every forward pass.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
	// Mask holds 0/1 entries with W's shape, or nil for a dense parameter.
	Mask *tensor.Tensor
	// Decay marks parameters subject to weight decay (conv/linear weights
	// but not biases or batch-norm affine terms).
	Decay bool
}

func newParam(name string, shape []int, decay bool) *Param {
	return &Param{
		Name:  name,
		W:     tensor.New(shape...),
		Grad:  tensor.New(shape...),
		Decay: decay,
	}
}

// ApplyMask zeroes masked weight entries. It is a no-op for dense params.
func (p *Param) ApplyMask() {
	if p.Mask == nil {
		return
	}
	p.W.MulInPlace(p.Mask)
}

// Sparsity returns the fraction of exactly-zero weights.
func (p *Param) Sparsity() float64 { return p.W.Sparsity(0) }

// Layer is a differentiable module. Forward must be called before Backward;
// layers cache whatever they need from the forward pass. A layer instance
// must appear at most once in a network.
type Layer interface {
	// Name returns a short human-readable identifier.
	Name() string
	// Forward computes the layer output for a batched input. train selects
	// training-mode behaviour (e.g. batch statistics in BatchNorm).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes the gradient w.r.t. the layer output, accumulates
	// parameter gradients, and returns the gradient w.r.t. the input.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
}

// ZeroGrads clears the gradients of all params.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.Grad.Zero()
	}
}

// convOut computes the output spatial size of a convolution/pool window.
func convOut(in, kernel, stride, pad int) int {
	out := (in+2*pad-kernel)/stride + 1
	if out < 1 {
		panic(fmt.Sprintf("nn: window %d stride %d pad %d does not fit input %d", kernel, stride, pad, in))
	}
	return out
}

// SamePad returns the padding that keeps spatial size fixed for stride 1
// ("same" padding, the TorchVision default the paper assumes).
func SamePad(kernel int) int { return (kernel - 1) / 2 }
