package accel

import (
	"math"
	"math/rand"
	"testing"

	"github.com/huffduff/huffduff/internal/dram"
	"github.com/huffduff/huffduff/internal/models"
	"github.com/huffduff/huffduff/internal/prune"
	"github.com/huffduff/huffduff/internal/tensor"
	"github.com/huffduff/huffduff/internal/trace"
)

func deploy(t *testing.T, arch *models.Arch, cfg Config) *Machine {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	bind, err := arch.Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	return NewMachine(cfg, arch, bind)
}

func randImage(arch *models.Arch, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	img := tensor.New(1, arch.InC, arch.InH, arch.InW)
	img.Uniform(rng, 0, 1)
	return img
}

func TestRunRejectsBadInput(t *testing.T) {
	m := deploy(t, models.SmallCNN(), DefaultConfig())
	if _, err := m.Run(tensor.New(2, 3, 32, 32)); err == nil {
		t.Fatal("expected error for batch > 1")
	}
	if _, err := m.Run(tensor.New(1, 3, 16, 16)); err == nil {
		t.Fatal("expected error for wrong geometry")
	}
}

func TestTraceSegmentsMatchUnits(t *testing.T) {
	arch := models.SmallCNN()
	m := deploy(t, arch, DefaultConfig())
	tr, err := m.Run(randImage(arch, 1))
	if err != nil {
		t.Fatal(err)
	}
	obs, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != len(arch.Units)+1 {
		t.Fatalf("segments = %d, want %d", len(obs), len(arch.Units)+1)
	}
	// Sequential chain: each unit depends exactly on its predecessor.
	for i := 1; i < len(obs); i++ {
		if len(obs[i].Deps) != 1 || obs[i].Deps[0] != i-1 {
			t.Fatalf("segment %d deps = %v", i, obs[i].Deps)
		}
	}
}

func TestTraceFootprintsMatchGroundTruth(t *testing.T) {
	arch := models.SmallCNN()
	cfg := DefaultConfig()
	m := deploy(t, arch, cfg)
	img := randImage(arch, 2)
	tr, err := m.Run(img)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Input DMA segment size = compressed input.
	wantIn := cfg.ActCodec.Size(img.Data)
	if obs[0].OutputBytes != wantIn {
		t.Fatalf("input DMA bytes = %d, want %d", obs[0].OutputBytes, wantIn)
	}
	for i := range arch.Units {
		seg := obs[i+1]
		if got, want := seg.WeightBytes, m.weightBytes(i); got != want {
			t.Fatalf("unit %d weight bytes = %d, want %d", i, got, want)
		}
		out := m.Bind.UnitTensor(i)
		wantOut := cfg.ActCodec.Size(out.Data)
		if seg.OutputBytes != wantOut {
			t.Fatalf("unit %d output bytes = %d, want %d", i, seg.OutputBytes, wantOut)
		}
	}
}

func TestResNetDataflowGraphRecovered(t *testing.T) {
	arch := models.ResNet18(16)
	m := deploy(t, arch, DefaultConfig())
	tr, err := m.Run(randImage(arch, 3))
	if err != nil {
		t.Fatal(err)
	}
	obs, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != len(arch.Units)+1 {
		t.Fatalf("segments = %d, want %d", len(obs), len(arch.Units)+1)
	}
	// Every add unit's recovered deps must equal its true input units.
	for i, u := range arch.Units {
		if u.Kind != models.UnitAdd {
			continue
		}
		seg := obs[i+1]
		want := map[int]bool{}
		for _, in := range u.In {
			want[in+1] = true // shift by input DMA segment
		}
		if len(seg.Deps) != len(want) {
			t.Fatalf("unit %d (%s): deps %v, want %v", i, u.Name, seg.Deps, u.In)
		}
		for _, d := range seg.Deps {
			if !want[d] {
				t.Fatalf("unit %d (%s): unexpected dep %d (want %v)", i, u.Name, d, u.In)
			}
		}
	}
}

func TestEncodingGLBBoundTimesScaleWithPsums(t *testing.T) {
	// With abundant DRAM bandwidth the encoding interval must be
	// proportional to the dense psum count, not the compressed size.
	arch := models.SmallCNN()
	cfg := DefaultConfig()
	cfg.Mem = dram.LPDDR4X(2) // fast: GLB-bound
	m := deploy(t, arch, cfg)
	tr, err := m.Run(randImage(arch, 4))
	if err != nil {
		t.Fatal(err)
	}
	obs, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Compare conv units 0 and 1 (psum counts 8*32*32 vs 16*32*32).
	p0 := m.Bind.PsumOut(0).Size()
	p1 := m.Bind.PsumOut(1).Size()
	dt0 := obs[1].EncodingTime()
	dt1 := obs[2].EncodingTime()
	gotRatio := dt1 / dt0
	wantRatio := float64(p1) / float64(p0)
	if math.Abs(gotRatio-wantRatio)/wantRatio > 0.1 {
		t.Fatalf("Δt ratio = %.3f, want ~%.3f (psum ratio)", gotRatio, wantRatio)
	}
}

func TestEncodingDRAMBoundTimesScaleWithBytes(t *testing.T) {
	arch := models.SmallCNN()
	cfg := DefaultConfig()
	// Starve the DRAM so the encoder becomes writeback-bound.
	cfg.Mem = dram.Spec{Name: "slow", MTps: 10, BusBytes: 2, Channels: 1, Efficiency: 1}
	m := deploy(t, arch, cfg)
	tr, err := m.Run(randImage(arch, 5))
	if err != nil {
		t.Fatal(err)
	}
	obs, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	bw := cfg.Mem.Bandwidth()
	for i := 0; i < 2; i++ {
		seg := obs[i+1]
		wantDt := float64(seg.OutputBytes-cfg.BlockBytes) / bw // first block issues at t0
		if seg.OutputBytes <= cfg.BlockBytes {
			continue
		}
		if math.Abs(seg.EncodingTime()-wantDt)/wantDt > 0.05 {
			t.Fatalf("unit %d: Δt = %g, want ~%g (DRAM-bound)", i, seg.EncodingTime(), wantDt)
		}
	}
}

func TestEncodingBounds(t *testing.T) {
	cfg := DefaultConfig()
	glb, dr := EncodingBounds(cfg, 4800, 1000)
	if math.Abs(glb-4800/(24*200e6)) > 1e-15 {
		t.Fatalf("glb = %g", glb)
	}
	if math.Abs(dr-1000/cfg.Mem.Bandwidth()) > 1e-18 {
		t.Fatalf("dram = %g", dr)
	}
}

func TestDeterministicTraceWithoutDefence(t *testing.T) {
	arch := models.SmallCNN()
	m := deploy(t, arch, DefaultConfig())
	img := randImage(arch, 6)
	tr1, _ := m.Run(img)
	tr2, _ := m.Run(img)
	if len(tr1.Accesses) != len(tr2.Accesses) {
		t.Fatal("trace lengths differ across identical runs")
	}
	for i := range tr1.Accesses {
		if tr1.Accesses[i] != tr2.Accesses[i] {
			t.Fatalf("access %d differs", i)
		}
	}
}

func TestZeroPadDefenceRandomizesVolumes(t *testing.T) {
	arch := models.SmallCNN()
	cfg := DefaultConfig()
	cfg.ZeroPadProb = 0.05
	m := deploy(t, arch, cfg)
	img := randImage(arch, 7)
	tr1, _ := m.Run(img)
	tr2, _ := m.Run(img)
	o1, _ := trace.Analyze(tr1)
	o2, _ := trace.Analyze(tr2)
	s1 := trace.OutputSignature(o1)
	s2 := trace.OutputSignature(o2)
	same := true
	for i := range s1 {
		if s1[i] != s2[i] {
			same = false
		}
		if s1[i] < trace.OutputSignature(o1)[i] {
			t.Fatal("defence must never shrink transfers")
		}
	}
	if same {
		t.Fatal("defence left identical runs identical; no obfuscation")
	}
}

func TestDRAMSpecs(t *testing.T) {
	specs := dram.EvaluatedSpecs()
	if len(specs) != 6 {
		t.Fatalf("specs = %d", len(specs))
	}
	// Bandwidth must increase across generations and double with channels.
	if !(specs[0].Bandwidth() < specs[2].Bandwidth() && specs[2].Bandwidth() < specs[4].Bandwidth()) {
		t.Fatal("generation ordering broken")
	}
	for i := 0; i < 6; i += 2 {
		if math.Abs(specs[i+1].Bandwidth()-2*specs[i].Bandwidth()) > 1 {
			t.Fatalf("dual channel != 2x single for %s", specs[i].Name)
		}
	}
	if specs[0].String() == "" {
		t.Fatal("empty String")
	}
}

func TestRunStats(t *testing.T) {
	arch := models.SmallCNN()
	rng := rand.New(rand.NewSource(42))
	bind, err := arch.Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(DefaultConfig(), arch, bind)
	img := randImage(arch, 8)
	tr, err := m.Run(img)
	if err != nil {
		t.Fatal(err)
	}
	s := m.LastStats()
	r, w := tr.TotalBytes()
	if s.DRAMReadBytes != r || s.DRAMWriteBytes != w {
		t.Fatalf("stats traffic %d/%d, trace %d/%d", s.DRAMReadBytes, s.DRAMWriteBytes, r, w)
	}
	if s.DenseMACs <= 0 || s.EffectualMACs <= 0 || s.EffectualMACs > s.DenseMACs {
		t.Fatalf("MAC counters: %g effectual of %g dense", s.EffectualMACs, s.DenseMACs)
	}
	if s.Latency <= 0 {
		t.Fatal("latency not recorded")
	}
	if s.EnergyPJ.Total() <= 0 || s.EnergyPJ.DRAM <= 0 {
		t.Fatalf("energy: %+v", s.EnergyPJ)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

// Pruning must increase the zero-skipping speedup and reduce traffic.
func TestPruningImprovesStats(t *testing.T) {
	arch := models.SmallCNN()
	rng := rand.New(rand.NewSource(43))
	bind, err := arch.Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	img := randImage(arch, 9)
	dense := NewMachine(DefaultConfig(), arch, bind)
	if _, err := dense.Run(img); err != nil {
		t.Fatal(err)
	}
	before := dense.LastStats()

	prune.GlobalMagnitude(bind.Net.Params(), 0.2)
	sparseM := NewMachine(DefaultConfig(), arch, bind)
	if _, err := sparseM.Run(img); err != nil {
		t.Fatal(err)
	}
	after := sparseM.LastStats()
	if after.Speedup() <= before.Speedup() {
		t.Fatalf("pruning did not improve skip factor: %.2f -> %.2f", before.Speedup(), after.Speedup())
	}
	if after.DRAMReadBytes >= before.DRAMReadBytes {
		t.Fatalf("pruning did not shrink weight traffic: %d -> %d", before.DRAMReadBytes, after.DRAMReadBytes)
	}
}

func TestDenseConfigTransfersIgnoreSparsity(t *testing.T) {
	arch := models.SmallCNN()
	rng := rand.New(rand.NewSource(44))
	bind, err := arch.Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	img := randImage(arch, 10)
	m := NewMachine(DenseConfig(), arch, bind)
	tr1, _ := m.Run(img)
	prune.GlobalMagnitude(bind.Net.Params(), 0.2)
	m2 := NewMachine(DenseConfig(), arch, bind)
	tr2, _ := m2.Run(img)
	o1, _ := trace.Analyze(tr1)
	o2, _ := trace.Analyze(tr2)
	// On a dense accelerator weight transfers do not shrink with pruning.
	if o1[1].WeightBytes != o2[1].WeightBytes {
		t.Fatalf("dense weight bytes changed with pruning: %d vs %d", o1[1].WeightBytes, o2[1].WeightBytes)
	}
}

// Structured-sparse transfers must be content-independent: re-randomizing
// the surviving weights cannot change any transfer size (§2's observation
// that such accelerators fall to dense-era attacks).
func TestStructuredTransfersContentIndependent(t *testing.T) {
	arch := models.SmallCNN()
	rng := rand.New(rand.NewSource(45))
	bind, err := arch.Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	prune.ChannelMagnitude(bind.Net.Params(), 0.5)
	img := randImage(arch, 11)
	m1 := NewMachine(StructuredConfig(), arch, bind)
	tr1, err := m1.Run(img)
	if err != nil {
		t.Fatal(err)
	}
	// Re-randomize surviving weights (masks keep the channel structure).
	for _, p := range bind.Net.Params() {
		p.W.Randn(rng, 0.1)
		p.ApplyMask()
	}
	m2 := NewMachine(StructuredConfig(), arch, bind)
	tr2, err := m2.Run(img)
	if err != nil {
		t.Fatal(err)
	}
	o1, _ := trace.Analyze(tr1)
	o2, _ := trace.Analyze(tr2)
	for i := range o1 {
		if o1[i].WeightBytes != o2[i].WeightBytes {
			t.Fatalf("segment %d weight bytes changed with content: %d vs %d", i, o1[i].WeightBytes, o2[i].WeightBytes)
		}
		if o1[i].OutputBytes != o2[i].OutputBytes {
			t.Fatalf("segment %d output bytes changed with content: %d vs %d", i, o1[i].OutputBytes, o2[i].OutputBytes)
		}
	}
}

func TestStructuredWeightBytesFormula(t *testing.T) {
	w := tensor.New(4, 6) // 4 channels, 6 weights each
	w.Data[0] = 1         // channel 0 alive
	w.Data[3*6] = 2       // channel 3 alive
	// 2 alive channels x 6 bytes + 1 bitmap byte
	if got := structuredWeightBytes(w); got != 13 {
		t.Fatalf("structured bytes = %d, want 13", got)
	}
}
