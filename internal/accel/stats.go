package accel

import "fmt"

// Energy cost constants: representative per-operation energies for a
// 28–45 nm mobile accelerator (Eyeriss-class numbers; the exact values only
// scale the report, the attack never reads them).
const (
	// EnergyPerMAC is an 8-bit multiply-accumulate in pJ.
	EnergyPerMAC = 0.5
	// EnergyPerGLBByte is a global-buffer SRAM access in pJ/byte.
	EnergyPerGLBByte = 3.0
	// EnergyPerDRAMByte is an off-chip LPDDR access in pJ/byte.
	EnergyPerDRAMByte = 100.0
)

// Stats summarizes one inference on the simulated device.
type Stats struct {
	// DRAM traffic in bytes (compressed, as on the bus).
	DRAMReadBytes, DRAMWriteBytes int
	// EffectualMACs counts multiply-accumulates after two-sided zero
	// skipping; DenseMACs is the count a dense accelerator would perform.
	EffectualMACs, DenseMACs float64
	// Latency is the end-to-end inference time in seconds.
	Latency float64
	// EnergyPJ breaks the energy estimate down by component, in pJ.
	EnergyPJ EnergyBreakdown
}

// EnergyBreakdown splits the energy estimate.
type EnergyBreakdown struct {
	DRAM, GLB, MAC float64
}

// Total returns the summed energy in pJ.
func (e EnergyBreakdown) Total() float64 { return e.DRAM + e.GLB + e.MAC }

// Speedup returns the zero-skipping MAC reduction factor.
func (s Stats) Speedup() float64 {
	if s.EffectualMACs == 0 {
		return 1
	}
	return s.DenseMACs / s.EffectualMACs
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("dram %d B read / %d B written, %.0f effectual MACs (%.1fx skip), %.1f us, %.1f uJ",
		s.DRAMReadBytes, s.DRAMWriteBytes, s.EffectualMACs, s.Speedup(), s.Latency*1e6, s.EnergyPJ.Total()/1e6)
}

// LastStats returns the statistics of the most recent Run (zero value
// before the first inference).
func (m *Machine) LastStats() Stats { return m.stats }

// accumulateCompute records a conv unit's MAC work into the running stats.
func (m *Machine) accumulateCompute(i int) {
	c := m.Bind.Conv[i]
	if c == nil {
		return
	}
	ps := m.Bind.PsumOut(i)
	in := m.Bind.InputTensorOf(m.Arch, i, 0)
	groups := c.Groups
	if groups < 1 {
		groups = 1
	}
	dense := float64(ps.Size()) * float64(c.InC/groups) * float64(c.Kernel*c.Kernel)
	wDensity := 1 - c.Weight.W.Sparsity(0)
	aDensity := 1 - in.Sparsity(0)
	m.stats.DenseMACs += dense
	m.stats.EffectualMACs += dense * wDensity * aDensity
}

// finalizeStats computes derived quantities once a run completes.
func (m *Machine) finalizeStats(latency float64) {
	m.stats.Latency = latency
	// GLB traffic approximation: every psum word is written once and read
	// once by the encoder; activations and weights stream through once.
	glbBytes := float64(m.stats.DRAMReadBytes+m.stats.DRAMWriteBytes) * 2
	m.stats.EnergyPJ = EnergyBreakdown{
		DRAM: float64(m.stats.DRAMReadBytes+m.stats.DRAMWriteBytes) * EnergyPerDRAMByte,
		GLB:  glbBytes * EnergyPerGLBByte,
		MAC:  m.stats.EffectualMACs * EnergyPerMAC,
	}
}
