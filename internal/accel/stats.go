package accel

import (
	"fmt"
	"strings"
)

// Energy cost constants: representative per-operation energies for a
// 28–45 nm mobile accelerator (Eyeriss-class numbers; the exact values only
// scale the report, the attack never reads them).
const (
	// EnergyPerMAC is an 8-bit multiply-accumulate in pJ.
	EnergyPerMAC = 0.5
	// EnergyPerGLBByte is a global-buffer SRAM access in pJ/byte.
	EnergyPerGLBByte = 3.0
	// EnergyPerDRAMByte is an off-chip LPDDR access in pJ/byte.
	EnergyPerDRAMByte = 100.0
)

// LayerStats is the per-layer telemetry of one inference: what each
// execution unit moved, computed, and spent in the encoding pipeline. All
// times are *simulated* device time, never host wall-clock.
type LayerStats struct {
	// Unit is the Arch unit index; Name is its architectural name.
	Unit int    `json:"unit"`
	Name string `json:"name"`
	// DRAM traffic attributed to this unit, in compressed on-bus bytes.
	DRAMReadBytes  int `json:"dram_read_bytes"`
	DRAMWriteBytes int `json:"dram_write_bytes"`
	// EffectualMACs counts multiply-accumulates after two-sided zero
	// skipping; DenseMACs is the dense-accelerator count (0 for units
	// without MACs).
	EffectualMACs float64 `json:"effectual_macs"`
	DenseMACs     float64 `json:"dense_macs"`
	// Psums is the dense psum count entering the encoder; OutBytes and
	// OutNNZ describe the compressed output written back.
	Psums    int `json:"psums"`
	OutBytes int `json:"out_bytes"`
	OutNNZ   int `json:"out_nnz"`
	// EncodeTime is the simulated duration of the unit's psum-encoding
	// interval (first to last output write), in seconds.
	EncodeTime float64 `json:"encode_seconds"`
}

// add accumulates another observation of the same layer.
func (l *LayerStats) add(o LayerStats) {
	l.DRAMReadBytes += o.DRAMReadBytes
	l.DRAMWriteBytes += o.DRAMWriteBytes
	l.EffectualMACs += o.EffectualMACs
	l.DenseMACs += o.DenseMACs
	l.Psums += o.Psums
	l.OutBytes += o.OutBytes
	l.OutNNZ += o.OutNNZ
	l.EncodeTime += o.EncodeTime
}

// Stats summarizes one inference on the simulated device.
type Stats struct {
	// DRAM traffic in bytes (compressed, as on the bus).
	DRAMReadBytes, DRAMWriteBytes int
	// EffectualMACs counts multiply-accumulates after two-sided zero
	// skipping; DenseMACs is the count a dense accelerator would perform.
	EffectualMACs, DenseMACs float64
	// TraceReadEvents / TraceWriteEvents count the individual DRAM trace
	// accesses emitted by this inference. Every event costs host CPU in the
	// simulator's hot loops (emission, then segmentation and feature
	// extraction on the attack side), so these are the denominators for the
	// host-side events/sec rate computed by internal/prof.
	TraceReadEvents, TraceWriteEvents int
	// Latency is the end-to-end inference time in seconds (simulated
	// device time, not host wall-clock).
	Latency float64
	// EnergyPJ breaks the energy estimate down by component, in pJ.
	EnergyPJ EnergyBreakdown
	// Layers is the per-unit breakdown of this inference.
	Layers []LayerStats
}

// EnergyBreakdown splits the energy estimate.
type EnergyBreakdown struct {
	DRAM, GLB, MAC float64
}

// Total returns the summed energy in pJ.
func (e EnergyBreakdown) Total() float64 { return e.DRAM + e.GLB + e.MAC }

// Speedup returns the zero-skipping MAC reduction factor.
func (s Stats) Speedup() float64 {
	if s.EffectualMACs == 0 {
		return 1
	}
	return s.DenseMACs / s.EffectualMACs
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("dram %d B read / %d B written, %.0f effectual MACs (%.1fx skip), %.1f us, %.1f uJ",
		s.DRAMReadBytes, s.DRAMWriteBytes, s.EffectualMACs, s.Speedup(), s.Latency*1e6, s.EnergyPJ.Total()/1e6)
}

// LastStats returns the statistics of the most recent completed Run (zero
// value before the first inference). Use Campaign for totals across runs.
// Safe to call concurrently with a running campaign: in-flight runs are
// invisible until they finalize.
func (m *Machine) LastStats() Stats {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	out := m.published
	out.Layers = append([]LayerStats(nil), m.published.Layers...)
	return out
}

// CampaignStats accumulates device telemetry across every Run since machine
// creation (or the last ResetCampaign): the per-layer breakdown a whole
// probing campaign induces on the victim. All times are simulated device
// seconds.
type CampaignStats struct {
	// Runs is how many inferences the campaign executed.
	Runs int `json:"runs"`
	// Aggregate DRAM traffic and MAC work across all runs.
	DRAMReadBytes  int     `json:"dram_read_bytes"`
	DRAMWriteBytes int     `json:"dram_write_bytes"`
	EffectualMACs  float64 `json:"effectual_macs"`
	DenseMACs      float64 `json:"dense_macs"`
	// TraceReadEvents / TraceWriteEvents total the DRAM trace accesses the
	// campaign generated — the simulator hot-loop workload measure.
	TraceReadEvents  int `json:"trace_read_events"`
	TraceWriteEvents int `json:"trace_write_events"`
	// SimulatedTime is the summed per-inference device latency.
	SimulatedTime float64 `json:"simulated_seconds"`
	// EnergyPJ sums the per-run energy estimates.
	EnergyPJ EnergyBreakdown `json:"energy_pj"`
	// Layers accumulates the per-unit breakdown across runs.
	Layers []LayerStats `json:"layers"`
}

// Campaign returns a copy of the accumulated campaign telemetry. Safe to
// call concurrently with a running campaign: runs publish their stats
// atomically as they finalize, so readers always see a consistent total.
func (m *Machine) Campaign() CampaignStats {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	out := m.campaign
	out.Layers = append([]LayerStats(nil), m.campaign.Layers...)
	return out
}

// ResetCampaign clears the accumulated campaign telemetry.
func (m *Machine) ResetCampaign() {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	m.campaign = CampaignStats{}
}

// String renders the campaign as a per-layer table.
func (c CampaignStats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "campaign: %d runs, %.3f simulated device seconds, %.1f uJ\n",
		c.Runs, c.SimulatedTime, c.EnergyPJ.Total()/1e6)
	fmt.Fprintf(&sb, "%4s %-10s %14s %14s %16s %16s %12s %14s\n",
		"unit", "name", "dram rd (B)", "dram wr (B)", "effectual MACs", "dense MACs", "out nnz", "encode Δt (s)")
	for _, l := range c.Layers {
		fmt.Fprintf(&sb, "%4d %-10s %14d %14d %16.0f %16.0f %12d %14.6f\n",
			l.Unit, l.Name, l.DRAMReadBytes, l.DRAMWriteBytes, l.EffectualMACs, l.DenseMACs, l.OutNNZ, l.EncodeTime)
	}
	return sb.String()
}

// accumulateCampaign folds the just-finalized per-run stats into the
// campaign accumulator.
func (m *Machine) accumulateCampaign() {
	c := &m.campaign
	c.Runs++
	c.DRAMReadBytes += m.stats.DRAMReadBytes
	c.DRAMWriteBytes += m.stats.DRAMWriteBytes
	c.EffectualMACs += m.stats.EffectualMACs
	c.DenseMACs += m.stats.DenseMACs
	c.TraceReadEvents += m.stats.TraceReadEvents
	c.TraceWriteEvents += m.stats.TraceWriteEvents
	c.SimulatedTime += m.stats.Latency
	c.EnergyPJ.DRAM += m.stats.EnergyPJ.DRAM
	c.EnergyPJ.GLB += m.stats.EnergyPJ.GLB
	c.EnergyPJ.MAC += m.stats.EnergyPJ.MAC
	if len(c.Layers) == 0 {
		c.Layers = append([]LayerStats(nil), m.stats.Layers...)
		return
	}
	for i, l := range m.stats.Layers {
		if i < len(c.Layers) {
			c.Layers[i].add(l)
		} else {
			c.Layers = append(c.Layers, l)
		}
	}
}

// computeLayer returns a conv unit's dense and effectual MAC counts (0, 0
// for units without MACs).
func (m *Machine) computeLayer(i int) (dense, effectual float64) {
	c := m.Bind.Conv[i]
	if c == nil {
		return 0, 0
	}
	ps := m.Bind.PsumOut(i)
	in := m.Bind.InputTensorOf(m.Arch, i, 0)
	groups := c.Groups
	if groups < 1 {
		groups = 1
	}
	dense = float64(ps.Size()) * float64(c.InC/groups) * float64(c.Kernel*c.Kernel)
	wDensity := 1 - c.Weight.W.Sparsity(0)
	aDensity := 1 - in.Sparsity(0)
	return dense, dense * wDensity * aDensity
}

// finalizeStats computes derived quantities once a run completes.
func (m *Machine) finalizeStats(latency float64) {
	m.stats.Latency = latency
	// GLB traffic: the encoder consumes *dense* psums — every psum word is
	// written to the GLB once by the PE array and read once by the encoder
	// (§7: the encoding pipeline is GLB-bound on dense psums, not on the
	// compressed output) — while activations and weights stream through the
	// GLB once at their compressed on-bus size.
	psumBytes := 0.0
	for _, l := range m.stats.Layers {
		psumBytes += float64(l.Psums) * float64(m.Cfg.PsumBits) / 8
	}
	glbBytes := 2*psumBytes + float64(m.stats.DRAMReadBytes+m.stats.DRAMWriteBytes)
	m.stats.EnergyPJ = EnergyBreakdown{
		DRAM: float64(m.stats.DRAMReadBytes+m.stats.DRAMWriteBytes) * EnergyPerDRAMByte,
		GLB:  glbBytes * EnergyPerGLBByte,
		MAC:  m.stats.EffectualMACs * EnergyPerMAC,
	}
	// Publish the finished run for concurrent snapshot readers; m.stats
	// itself stays private to the runner.
	m.statsMu.Lock()
	m.published = m.stats
	m.published.Layers = append([]LayerStats(nil), m.stats.Layers...)
	m.accumulateCampaign()
	m.statsMu.Unlock()
	m.emitTelemetry()
}

// emitTelemetry publishes the finished run's per-layer counters to the
// configured Recorder under `accel.`-prefixed names. These series carry
// *simulated* device quantities; host wall-clock lives in the attack-side
// spans and `stage.seconds` metrics.
func (m *Machine) emitTelemetry() {
	rec := m.Cfg.Obs
	if rec == nil {
		return
	}
	rec.Count("accel.runs", "", 1)
	rec.Count("accel.simulated_seconds", "", m.stats.Latency)
	rec.Count("accel.trace_events", "op=read", float64(m.stats.TraceReadEvents))
	rec.Count("accel.trace_events", "op=write", float64(m.stats.TraceWriteEvents))
	rec.Count("accel.energy_pj", "component=dram", m.stats.EnergyPJ.DRAM)
	rec.Count("accel.energy_pj", "component=glb", m.stats.EnergyPJ.GLB)
	rec.Count("accel.energy_pj", "component=mac", m.stats.EnergyPJ.MAC)
	for _, l := range m.stats.Layers {
		label := "layer=" + l.Name
		rec.Count("accel.layer.dram_read_bytes", label, float64(l.DRAMReadBytes))
		rec.Count("accel.layer.dram_write_bytes", label, float64(l.DRAMWriteBytes))
		rec.Count("accel.layer.effectual_macs", label, l.EffectualMACs)
		rec.Count("accel.layer.dense_macs", label, l.DenseMACs)
		rec.Count("accel.layer.out_nnz", label, float64(l.OutNNZ))
		rec.Count("accel.layer.encode_seconds", label, l.EncodeTime)
	}
}
