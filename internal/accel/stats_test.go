package accel

import (
	"math"
	"strings"
	"testing"

	"github.com/huffduff/huffduff/internal/models"
	"github.com/huffduff/huffduff/internal/obs"
)

func TestSpeedupZeroGuard(t *testing.T) {
	if got := (Stats{}).Speedup(); got != 1 {
		t.Fatalf("zero-MAC Speedup = %v, want 1", got)
	}
	s := Stats{DenseMACs: 100, EffectualMACs: 25}
	if got := s.Speedup(); got != 4 {
		t.Fatalf("Speedup = %v, want 4", got)
	}
}

func TestEnergyBreakdownTotal(t *testing.T) {
	e := EnergyBreakdown{DRAM: 1.5, GLB: 2.25, MAC: 0.75}
	if got := e.Total(); got != 4.5 {
		t.Fatalf("Total = %v, want 4.5", got)
	}
	if got := (EnergyBreakdown{}).Total(); got != 0 {
		t.Fatalf("zero Total = %v, want 0", got)
	}
}

func TestStatsStringFormatting(t *testing.T) {
	s := Stats{
		DRAMReadBytes:  1000,
		DRAMWriteBytes: 500,
		EffectualMACs:  2000,
		DenseMACs:      8000,
		Latency:        1.5e-6,
		EnergyPJ:       EnergyBreakdown{DRAM: 3e6},
	}
	str := s.String()
	for _, want := range []string{"1000 B read", "500 B written", "2000 effectual MACs", "4.0x skip", "1.5 us", "3.0 uJ"} {
		if !strings.Contains(str, want) {
			t.Fatalf("Stats.String() = %q, missing %q", str, want)
		}
	}
}

// TestStatsResetBetweenRuns pins the reset contract: LastStats covers only
// the most recent inference, while Campaign accumulates across runs.
func TestStatsResetBetweenRuns(t *testing.T) {
	arch := models.SmallCNN()
	m := deploy(t, arch, DefaultConfig())

	img := randImage(arch, 1)
	if _, err := m.Run(img); err != nil {
		t.Fatal(err)
	}
	first := m.LastStats()
	if first.DRAMReadBytes == 0 || first.EffectualMACs == 0 {
		t.Fatalf("first run produced empty stats: %+v", first)
	}
	if len(first.Layers) != len(arch.Units) {
		t.Fatalf("per-layer stats cover %d units, want %d", len(first.Layers), len(arch.Units))
	}

	if _, err := m.Run(img); err != nil {
		t.Fatal(err)
	}
	second := m.LastStats()
	// Same weights, same input: reads must match exactly between runs rather
	// than doubling — a leak across runs would show up here.
	if second.DRAMReadBytes != first.DRAMReadBytes {
		t.Fatalf("second-run DRAM reads %d != first-run %d (stats leak across runs?)",
			second.DRAMReadBytes, first.DRAMReadBytes)
	}
	if second.DenseMACs != first.DenseMACs {
		t.Fatalf("second-run dense MACs %v != first-run %v", second.DenseMACs, first.DenseMACs)
	}

	c := m.Campaign()
	if c.Runs != 2 {
		t.Fatalf("campaign runs = %d, want 2", c.Runs)
	}
	if c.DRAMReadBytes != first.DRAMReadBytes+second.DRAMReadBytes {
		t.Fatalf("campaign reads %d != %d + %d", c.DRAMReadBytes, first.DRAMReadBytes, second.DRAMReadBytes)
	}
	if len(c.Layers) != len(first.Layers) {
		t.Fatalf("campaign layers = %d, want %d", len(c.Layers), len(first.Layers))
	}
	for i := range c.Layers {
		want := first.Layers[i].EffectualMACs + second.Layers[i].EffectualMACs
		if math.Abs(c.Layers[i].EffectualMACs-want) > 1e-9 {
			t.Fatalf("campaign layer %d effectual MACs %v, want %v", i, c.Layers[i].EffectualMACs, want)
		}
	}
	if !strings.Contains(c.String(), "campaign: 2 runs") {
		t.Fatalf("campaign table header wrong:\n%s", c.String())
	}

	m.ResetCampaign()
	if got := m.Campaign(); got.Runs != 0 || len(got.Layers) != 0 {
		t.Fatalf("ResetCampaign left state: %+v", got)
	}
}

// TestGLBEnergyFromDensePsums is the regression test for the GLB traffic
// model: the encoder is GLB-bound on *dense* psums (§7) — every psum word is
// written once and read once at PsumBits width — so GLB energy must be
// derived from the layer psum counts plus one streaming pass of the
// compressed DRAM traffic, not from compressed bytes alone.
func TestGLBEnergyFromDensePsums(t *testing.T) {
	arch := models.SmallCNN()
	cfg := DefaultConfig()
	m := deploy(t, arch, cfg)
	if _, err := m.Run(randImage(arch, 3)); err != nil {
		t.Fatal(err)
	}
	s := m.LastStats()

	psumBytes := 0.0
	for _, l := range s.Layers {
		psumBytes += float64(l.Psums) * float64(cfg.PsumBits) / 8
	}
	if psumBytes == 0 {
		t.Fatal("no psums recorded")
	}
	dramBytes := float64(s.DRAMReadBytes + s.DRAMWriteBytes)
	wantGLB := (2*psumBytes + dramBytes) * EnergyPerGLBByte
	if math.Abs(s.EnergyPJ.GLB-wantGLB) > 1e-6*wantGLB {
		t.Fatalf("GLB energy %v, want %v (2·psumBytes=%v + dram=%v)",
			s.EnergyPJ.GLB, wantGLB, 2*psumBytes, dramBytes)
	}
	if want := dramBytes * EnergyPerDRAMByte; math.Abs(s.EnergyPJ.DRAM-want) > 1e-6*want {
		t.Fatalf("DRAM energy %v, want %v", s.EnergyPJ.DRAM, want)
	}
	if want := s.EffectualMACs * EnergyPerMAC; math.Abs(s.EnergyPJ.MAC-want) > 1e-6*want {
		t.Fatalf("MAC energy %v, want %v", s.EnergyPJ.MAC, want)
	}
	// Dense psums dominate compressed traffic on a pruned network, so the
	// fixed model (vs the old compressed-bytes ×2 approximation) must price
	// the GLB above the pure streaming term.
	if s.EnergyPJ.GLB <= dramBytes*EnergyPerGLBByte {
		t.Fatalf("GLB energy %v not above streaming-only %v — dense-psum term missing",
			s.EnergyPJ.GLB, dramBytes*EnergyPerGLBByte)
	}
}

// TestAccelTelemetryEmission checks the per-layer counters a Run publishes
// to a configured Recorder, and that simulated seconds stay separate from
// any host-clock series.
func TestAccelTelemetryEmission(t *testing.T) {
	arch := models.SmallCNN()
	cfg := DefaultConfig()
	col := obs.NewCollector()
	cfg.Obs = col
	m := deploy(t, arch, cfg)
	if _, err := m.Run(randImage(arch, 4)); err != nil {
		t.Fatal(err)
	}
	if got := col.CounterValue("accel.runs", ""); got != 1 {
		t.Fatalf("accel.runs = %v, want 1", got)
	}
	if got := col.CounterValue("accel.simulated_seconds", ""); got != m.LastStats().Latency {
		t.Fatalf("accel.simulated_seconds = %v, want %v", got, m.LastStats().Latency)
	}
	s := m.LastStats()
	for _, l := range s.Layers {
		label := "layer=" + l.Name
		if got := col.CounterValue("accel.layer.effectual_macs", label); got != l.EffectualMACs {
			t.Fatalf("accel.layer.effectual_macs{%s} = %v, want %v", label, got, l.EffectualMACs)
		}
		if got := col.CounterValue("accel.layer.out_nnz", label); got != float64(l.OutNNZ) {
			t.Fatalf("accel.layer.out_nnz{%s} = %v, want %v", label, got, l.OutNNZ)
		}
	}
	for _, comp := range []string{"dram", "glb", "mac"} {
		if col.CounterValue("accel.energy_pj", "component="+comp) <= 0 {
			t.Fatalf("accel.energy_pj{component=%s} not published", comp)
		}
	}
}
