// Package accel simulates a mobile-class two-sided sparse DNN accelerator in
// the style of Eyeriss v2: layerwise execution with all tensors visiting
// off-chip DRAM, compressed weight and activation transfers, zero-skipping
// compute, and an on-the-fly psum-encoding post-processing unit whose
// writeback behaviour creates the timing side channel of §7.
//
// The simulator is the "victim device". It consumes a models.Binding (the
// deployed network) and produces trace.Trace values — the only artifact the
// attacker sees. Tensor contents never appear in the trace ("encrypted"
// transfers).
package accel

import (
	"context"
	"fmt"
	"math/rand"
	"runtime/pprof"
	"sync"

	"github.com/huffduff/huffduff/internal/dram"
	"github.com/huffduff/huffduff/internal/faults"
	"github.com/huffduff/huffduff/internal/models"
	"github.com/huffduff/huffduff/internal/obs"
	"github.com/huffduff/huffduff/internal/sparse"
	"github.com/huffduff/huffduff/internal/tensor"
	"github.com/huffduff/huffduff/internal/trace"
)

// Config describes the accelerator and memory system.
type Config struct {
	// ActCodec compresses activation tensors on the DRAM bus
	// (sparse.Dense models a dense accelerator, the ReverseCNN setting).
	ActCodec sparse.Codec
	// WeightCodec compresses weight tensors.
	WeightCodec sparse.Codec
	// PsumBits is the accumulator width (Eyeriss v2 uses 20 bits).
	PsumBits int
	// GLBRowWords is the number of psum words the post-processing unit
	// consumes per cycle (Eyeriss v2: 8 banks × 3 words).
	GLBRowWords int
	// ClockHz is the accelerator clock (Eyeriss v2: 200 MHz).
	ClockHz float64
	// PEs is the processing-element count, for the compute-time model.
	PEs int
	// Mem is the external DRAM.
	Mem dram.Spec
	// BlockBytes is the DRAM transaction granularity.
	BlockBytes int
	// StructuredWeights switches weight transfers to channel-granular
	// compression: alive output channels ship densely plus a channel
	// bitmap. Transfer sizes then depend only on the channel mask, not on
	// weight values — the structured-sparsity regime §2 notes is
	// attackable with dense-era techniques.
	StructuredWeights bool
	// ZeroPadProb is the §9.2 defence: each zero activation is left
	// uncompressed (counted as a nonzero on the bus) with this probability,
	// randomizing observed transfer volumes.
	ZeroPadProb float64
	// Seed drives the defence randomness.
	Seed int64
	// Obs, when set, receives per-run and per-layer device telemetry under
	// `accel.`-prefixed metric names. All times published there are
	// *simulated* device seconds, never host wall-clock. Nil disables
	// emission (per-run Stats and Campaign accumulation still happen).
	Obs obs.Recorder
}

// DefaultConfig returns an Eyeriss-v2-like accelerator with dual-channel
// LPDDR4. With this memory the encoding pipeline is GLB-bound on every
// layer of the evaluated victims — including the residual-branch convs
// whose pre-add outputs are dense — which is the regime the §7 timing
// channel assumes.
func DefaultConfig() Config {
	return Config{
		ActCodec:    sparse.Bitmap{ElemBytes: 1},
		WeightCodec: sparse.CSC{ElemBytes: 1, IndexBits: 4},
		PsumBits:    20,
		GLBRowWords: 24,
		ClockHz:     200e6,
		PEs:         192,
		Mem:         dram.LPDDR4(2),
		BlockBytes:  64,
		Seed:        1,
	}
}

// DenseConfig returns a dense accelerator (no compression anywhere): the
// setting the prior ReverseCNN attack assumes, where every transfer size
// equals the tensor's element count times the element width.
func DenseConfig() Config {
	cfg := DefaultConfig()
	cfg.ActCodec = sparse.Dense{ElemBytes: 1}
	cfg.WeightCodec = sparse.Dense{ElemBytes: 1}
	return cfg
}

// StructuredConfig returns a structured-sparse accelerator: dense
// activations and channel-granular weight compression, so no transfer size
// depends on data content — the regime where dense-era attacks still work.
func StructuredConfig() Config {
	cfg := DefaultConfig()
	cfg.ActCodec = sparse.Dense{ElemBytes: 1}
	cfg.StructuredWeights = true
	return cfg
}

// psumReadRate returns GLB psum words consumed per second.
func (c Config) psumReadRate() float64 { return float64(c.GLBRowWords) * c.ClockHz }

// EncodingBounds returns the two candidate durations of the encoding
// pipeline for a layer with the given dense psum count and compressed output
// size: the GLB-side time (reading all psum rows) and the DRAM-side time
// (writing all compressed blocks). The pipeline is bound by the larger.
func EncodingBounds(c Config, psums, outBytes int) (glbTime, dramTime float64) {
	glbTime = float64(psums) / c.psumReadRate()
	dramTime = float64(outBytes) / c.Mem.Bandwidth()
	return glbTime, dramTime
}

// Machine is a deployed model on the simulated accelerator.
type Machine struct {
	Cfg  Config
	Arch *models.Arch
	Bind *models.Binding

	weightAddrs []addrRange // per unit
	rng         *rand.Rand
	stats       Stats

	// statsMu guards the published snapshots below. Run itself is not
	// concurrent (one machine serves one campaign at a time), but live
	// telemetry readers — the /campaigns endpoint, a scraping exporter —
	// snapshot LastStats/Campaign while a worker is mid-campaign.
	statsMu   sync.Mutex
	published Stats
	campaign  CampaignStats
}

type addrRange struct {
	lo   uint64
	size int
}

// Address map: weights live in a read-only region; activations are bump-
// allocated per inference with no reuse (each tensor version gets a fresh
// range, which is what SSA-style renaming would recover anyway).
const (
	weightBase = uint64(0x1000_0000)
	actBase    = uint64(0x8000_0000)
)

// NewMachine deploys a built model. Weight regions are laid out immediately
// (their compressed sizes are content-dependent and fixed after pruning).
func NewMachine(cfg Config, arch *models.Arch, bind *models.Binding) *Machine {
	m := &Machine{Cfg: cfg, Arch: arch, Bind: bind, rng: rand.New(rand.NewSource(cfg.Seed))}
	next := weightBase
	m.weightAddrs = make([]addrRange, len(arch.Units))
	for i := range arch.Units {
		size := m.weightBytes(i)
		m.weightAddrs[i] = addrRange{lo: next, size: size}
		next += uint64(size) + 0x1000
	}
	return m
}

// weightBytes returns the compressed weight footprint of unit i (0 for
// units without weights).
func (m *Machine) weightBytes(i int) int {
	var w *tensor.Tensor
	if c := m.Bind.Conv[i]; c != nil {
		w = c.Weight.W
	} else if fc := m.Bind.FC[i]; fc != nil {
		w = fc.Weight.W
	} else {
		return 0
	}
	if m.Cfg.StructuredWeights {
		return structuredWeightBytes(w)
	}
	return m.Cfg.WeightCodec.Size(w.Data)
}

// structuredWeightBytes models channel-granular weight compression: alive
// output channels ship densely (1 byte/weight) plus a presence bitmap.
func structuredWeightBytes(w *tensor.Tensor) int {
	outC := w.Dim(0)
	per := w.Size() / outC
	alive := 0
	for c := 0; c < outC; c++ {
		for _, v := range w.Data[c*per : (c+1)*per] {
			if v != 0 {
				alive++
				break
			}
		}
	}
	return alive*per + (outC+7)/8
}

// actBytes returns the compressed size of an activation tensor, applying
// the ZeroPadProb defence if enabled: protected zeros are shipped as if
// they were nonzero, inflating (and randomizing) the transfer.
func (m *Machine) actBytes(t *tensor.Tensor) int {
	values := t.Data
	if m.Cfg.ZeroPadProb > 0 {
		values = append([]float64(nil), t.Data...)
		for i, v := range values {
			if v == 0 && m.rng.Float64() < m.Cfg.ZeroPadProb {
				values[i] = 1 // any nonzero marker: only the size matters
			}
		}
	}
	return m.Cfg.ActCodec.Size(values)
}

// emitter builds the trace with a running clock.
type emitter struct {
	t     float64
	bw    float64
	block int
	tr    *trace.Trace
}

// burst emits a sequence of block transfers covering [lo, lo+bytes) at the
// DRAM bandwidth, advancing the clock.
func (e *emitter) burst(op trace.Op, lo uint64, bytes int) {
	for off := 0; off < bytes; off += e.block {
		n := e.block
		if off+n > bytes {
			n = bytes - off
		}
		e.tr.Accesses = append(e.tr.Accesses, trace.Access{Time: e.t, Op: op, Addr: lo + uint64(off), Bytes: n})
		e.t += float64(n) / e.bw
	}
}

// interleavedReads emits two read streams (input acts first, then strictly
// alternating with weights) so segmentation sees the RAW-dependent read
// first — matching a real streaming accelerator that begins fetching the
// input tile immediately.
func (e *emitter) interleavedReads(inputs []addrRange, weights addrRange) {
	type stream struct {
		r   addrRange
		off int
	}
	var streams []stream
	for _, in := range inputs {
		streams = append(streams, stream{r: in})
	}
	if weights.size > 0 {
		streams = append(streams, stream{r: weights})
	}
	done := 0
	for done < len(streams) {
		done = 0
		for i := range streams {
			s := &streams[i]
			if s.off >= s.r.size {
				done++
				continue
			}
			n := e.block
			if s.off+n > s.r.size {
				n = s.r.size - s.off
			}
			e.tr.Accesses = append(e.tr.Accesses, trace.Access{Time: e.t, Op: trace.Read, Addr: s.r.lo + uint64(s.off), Bytes: n})
			e.t += float64(n) / e.bw
			s.off += n
		}
	}
}

// Run executes one inference (batch size 1) and returns the DRAM trace.
// The returned trace begins with the attacker's input DMA segment.
func (m *Machine) Run(img *tensor.Tensor) (*trace.Trace, error) {
	return m.RunCtx(context.Background(), img)
}

// RunCtx is Run with a caller-supplied context. On observed runs (Cfg.Obs
// set) each unit's simulation executes under a goroutine pprof label
// layer=<unit name> merged into ctx's label set, so a CPU profile captured
// around a campaign slices by pipeline stage AND by simulated layer. The
// context carries no cancellation semantics here — one inference is the
// simulator's atomic unit.
func (m *Machine) RunCtx(ctx context.Context, img *tensor.Tensor) (*trace.Trace, error) {
	if img.NumDims() == 3 {
		img = img.Reshape(1, img.Dim(0), img.Dim(1), img.Dim(2))
	}
	if img.NumDims() != 4 || img.Dim(0) != 1 {
		return nil, fmt.Errorf("accel: Run requires a single [C,H,W] or [1,C,H,W] image, got %v: %w", img.Shape(), faults.ErrBadConfig)
	}
	if img.Dim(1) != m.Arch.InC || img.Dim(2) != m.Arch.InH || img.Dim(3) != m.Arch.InW {
		return nil, fmt.Errorf("accel: image %v does not match arch input %dx%dx%d: %w", img.Shape(), m.Arch.InC, m.Arch.InH, m.Arch.InW, faults.ErrBadConfig)
	}

	// Dense numeric execution: the accelerator's zero-skipping arithmetic is
	// value-exact, so the nn forward pass gives the same tensors.
	m.Bind.Net.Forward(img, false)

	m.stats = Stats{}
	e := &emitter{bw: m.Cfg.Mem.Bandwidth(), block: m.Cfg.BlockBytes, tr: &trace.Trace{}}

	// Segment 0: attacker DMA of the (compressed) input image.
	next := actBase
	alloc := func(size int) addrRange {
		r := addrRange{lo: next, size: size}
		next += uint64(size) + 0x100
		return r
	}
	inputRange := alloc(m.actBytes(img))
	e.burst(trace.Write, inputRange.lo, inputRange.size)

	// Activation ranges per unit output.
	outRanges := make([]addrRange, len(m.Arch.Units))
	rangeOf := func(id int) addrRange {
		if id == models.InputID {
			return inputRange
		}
		return outRanges[id]
	}

	// Per-layer CPU attribution: only observed runs pay for the label swap
	// (two small allocations per unit), and the parent label set is restored
	// before returning so the caller's stage= label survives.
	observed := m.Cfg.Obs != nil
	if observed {
		defer pprof.SetGoroutineLabels(ctx)
	}

	for i, u := range m.Arch.Units {
		if observed {
			pprof.SetGoroutineLabels(pprof.WithLabels(ctx, pprof.Labels("layer", u.Name)))
		}
		// 1. Fetch inputs (and weights, interleaved).
		var inputs []addrRange
		readBytes := m.weightAddrs[i].size
		for _, src := range u.In {
			r := rangeOf(src)
			inputs = append(inputs, r)
			readBytes += r.size
		}
		e.interleavedReads(inputs, m.weightAddrs[i])

		// 2. Compute (zero-skipped MACs on the PE array).
		e.t += m.computeTime(i)
		dense, effectual := m.computeLayer(i)
		m.stats.DenseMACs += dense
		m.stats.EffectualMACs += effectual

		// 3. Post-process: encode psums on the fly and write back.
		out := m.Bind.UnitTensor(i)
		outBytes := m.actBytes(out)
		psums := out.Size() // dense elements entering the encoder
		if ps := m.Bind.PsumOut(i); ps != nil {
			psums = ps.Size() // conv/linear: pre-pool dense psum count
		}
		r := alloc(outBytes)
		outRanges[i] = r
		encDt := m.encode(e, r, outBytes, psums)
		m.stats.Layers = append(m.stats.Layers, LayerStats{
			Unit:           i,
			Name:           u.Name,
			DRAMReadBytes:  readBytes,
			DRAMWriteBytes: outBytes,
			EffectualMACs:  effectual,
			DenseMACs:      dense,
			Psums:          psums,
			OutBytes:       outBytes,
			OutNNZ:         out.NNZ(0),
			EncodeTime:     encDt,
		})
	}
	m.stats.DRAMReadBytes, m.stats.DRAMWriteBytes = e.tr.TotalBytes()
	for _, a := range e.tr.Accesses {
		if a.Op == trace.Read {
			m.stats.TraceReadEvents++
		} else {
			m.stats.TraceWriteEvents++
		}
	}
	m.finalizeStats(e.t)
	return e.tr, nil
}

// computeTime models the zero-skipping PE array: effectual MACs divided by
// PE throughput. It only adds realism to the timeline; the attack does not
// use it.
func (m *Machine) computeTime(i int) float64 {
	u := m.Arch.Units[i]
	if u.Kind != models.UnitConv {
		return 0
	}
	c := m.Bind.Conv[i]
	ps := m.Bind.PsumOut(i)
	in := m.Bind.InputTensorOf(m.Arch, i, 0)
	macs := float64(ps.Size()) * float64(c.InC/maxInt(1, c.Groups)) * float64(c.Kernel*c.Kernel)
	wDensity := 1 - c.Weight.W.Sparsity(0)
	aDensity := 1 - in.Sparsity(0)
	cycles := macs * wDensity * aDensity / float64(m.Cfg.PEs)
	return cycles / m.Cfg.ClockHz
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// encode simulates the on-the-fly encoding pipeline of §7.2. The encoder
// consumes dense psums from the GLB at a fixed rate; compressed bytes become
// available in proportion to psums consumed; completed blocks are written to
// DRAM, which serializes at its bandwidth. The resulting write timestamps
// are GLB-bound (panel a) or DRAM-bound (panel b) exactly as in the paper.
// It returns the simulated duration of the encoding interval.
func (m *Machine) encode(e *emitter, r addrRange, outBytes, psums int) float64 {
	if outBytes == 0 {
		return 0
	}
	start := e.t
	rate := m.Cfg.psumReadRate()
	dramFree := e.t
	for off := 0; off < outBytes; off += e.block {
		n := e.block
		if off+n > outBytes {
			n = outBytes - off
		}
		// Psums that must be consumed before this block is complete.
		needed := float64(psums) * float64(off+n) / float64(outBytes)
		avail := start + needed/rate
		issue := avail
		if dramFree > issue {
			issue = dramFree
		}
		e.tr.Accesses = append(e.tr.Accesses, trace.Access{Time: issue, Op: trace.Write, Addr: r.lo + uint64(off), Bytes: n})
		dramFree = issue + float64(n)/e.bw
	}
	if dramFree > e.t {
		e.t = dramFree
	}
	return dramFree - start
}
