package probe

import (
	"math/rand"
	"testing"
)

func TestValidate(t *testing.T) {
	good := Pattern{M: 2, N: 3, Q: 5, FeatRow: 10}
	if err := good.Validate(32, 32); err != nil {
		t.Fatal(err)
	}
	bad := []Pattern{
		{M: 0, N: 0, Q: 1, FeatRow: 0},   // empty feature
		{M: 0, N: 1, Q: 0, FeatRow: 0},   // no probes
		{M: -1, N: 1, Q: 1, FeatRow: 0},  // negative m
		{M: 0, N: 4, Q: 1, FeatRow: 30},  // feature rows out of bounds
		{M: 0, N: 1, Q: 40, FeatRow: 16}, // feature cols out of bounds
	}
	for i, p := range bad {
		if err := p.Validate(32, 32); err == nil {
			t.Fatalf("case %d: expected error for %+v", i, p)
		}
	}
}

func TestDefaultPattern(t *testing.T) {
	p := Default(8, 32)
	if p.M != 0 || p.N != 1 || p.Q != 8 || p.FeatRow != 16 {
		t.Fatalf("Default = %+v", p)
	}
	if err := p.Validate(32, 32); err != nil {
		t.Fatal(err)
	}
}

func TestFeatureCol(t *testing.T) {
	p := Pattern{M: 3, N: 1, Q: 4, FeatRow: 0}
	if p.FeatureCol(0, 32) != 3 || p.FeatureCol(2, 32) != 5 {
		t.Fatal("FeatureCol wrong")
	}
	r := Pattern{M: 2, N: 2, Q: 4, FeatRow: 0, FromRight: true}
	if r.FeatureCol(0, 32) != 28 || r.FeatureCol(3, 32) != 25 {
		t.Fatalf("mirrored FeatureCol wrong: %d %d", r.FeatureCol(0, 32), r.FeatureCol(3, 32))
	}
}

func TestMirroredImageStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := Pattern{M: 2, N: 1, Q: 3, FeatRow: 10, FromRight: true}
	v := RandomValues(rng, p)
	img := Image(p, v, 1, 1, 32, 32)
	// Constant columns on the right edge.
	for y := 0; y < 32; y++ {
		if img.At(0, y, 31) != v.Cols[0] || img.At(0, y, 30) != v.Cols[1] {
			t.Fatal("mirrored constant columns wrong")
		}
	}
	// Feature at column 32-2-1-1 = 28.
	if img.At(0, 10, 28) != v.Feature[0][0] {
		t.Fatal("mirrored feature misplaced")
	}
	if img.At(0, 0, 0) != v.Background {
		t.Fatal("left side should be background")
	}
}

func TestImageStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Pattern{M: 2, N: 2, Q: 3, FeatRow: 10}
	v := RandomValues(rng, p)
	img := Image(p, v, 1, 3, 32, 32)
	if img.Dim(0) != 3 || img.Dim(1) != 32 || img.Dim(2) != 32 {
		t.Fatalf("shape %v", img.Shape())
	}
	for ch := 0; ch < 3; ch++ {
		// Boundary-constant columns.
		for y := 0; y < 32; y++ {
			if img.At(ch, y, 0) != v.Cols[0] || img.At(ch, y, 1) != v.Cols[1] {
				t.Fatal("constant columns wrong")
			}
		}
		// Feature patch at column M+i = 3.
		for dy := 0; dy < 2; dy++ {
			for dx := 0; dx < 2; dx++ {
				if img.At(ch, 10+dy, 3+dx) != v.Feature[dy][dx] {
					t.Fatal("feature patch misplaced")
				}
			}
		}
		// Background elsewhere.
		if img.At(ch, 0, 20) != v.Background || img.At(ch, 31, 2) != v.Background {
			t.Fatal("background wrong")
		}
	}
}

func TestImagesAcrossChannelsIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := Default(4, 32)
	v := RandomValues(rng, p)
	img := Image(p, v, 2, 3, 32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			if img.At(0, y, x) != img.At(1, y, x) || img.At(1, y, x) != img.At(2, y, x) {
				t.Fatal("channels differ")
			}
		}
	}
}

func TestSetShiftsFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := Default(5, 32)
	v := RandomValues(rng, p)
	imgs := Set(p, v, 1, 32, 32)
	if len(imgs) != 5 {
		t.Fatalf("set size %d", len(imgs))
	}
	for i, img := range imgs {
		if img.At(0, 16, i) != v.Feature[0][0] {
			t.Fatalf("probe %d: feature not at column %d", i, i)
		}
		if i > 0 && img.At(0, 16, i-1) != v.Background {
			t.Fatalf("probe %d: stale feature at column %d", i, i-1)
		}
	}
}

func TestRandomValuesInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := Pattern{M: 3, N: 4, Q: 2, FeatRow: 8}
	for trial := 0; trial < 50; trial++ {
		v := RandomValues(rng, p)
		if v.Background < 0 || v.Background > 1 {
			t.Fatalf("background %g", v.Background)
		}
		if len(v.Cols) != 3 || len(v.Feature) != 4 || len(v.Feature[0]) != 4 {
			t.Fatal("value dimensions wrong")
		}
		for _, c := range v.Cols {
			if c < 0 || c > 1 {
				t.Fatalf("col value %g", c)
			}
		}
		for _, row := range v.Feature {
			for _, f := range row {
				if f < 0 || f > 1 {
					t.Fatalf("feature value %g", f)
				}
			}
		}
	}
}

func TestRandomValuesVaryAcrossTrials(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := Default(2, 32)
	v1 := RandomValues(rng, p)
	v2 := RandomValues(rng, p)
	if v1.Background == v2.Background && v1.Feature[0][0] == v2.Feature[0][0] {
		t.Fatal("trials produced identical values")
	}
}
