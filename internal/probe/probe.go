// Package probe constructs the attacker's crafted input images: the
// generalized probe pattern A(m,n) of §6.1 realized as 2-d images. Each
// probe set contains Q images whose n×n "feature" patch slides one column
// per image along the horizontal axis, starting at the left boundary, on a
// constant background with m leading boundary-constant columns.
package probe

import (
	"fmt"
	"math/rand"

	"github.com/huffduff/huffduff/internal/tensor"
)

// Pattern describes an A(m,n) probe family.
type Pattern struct {
	// M is the number of leading constant columns (the boundary residue of
	// earlier layers; 0 for first-layer probes).
	M int
	// N is the feature edge length (the probe impulse is an N×N patch).
	N int
	// Q is the number of probe positions (images) in the set.
	Q int
	// FeatRow is the top row of the feature patch; it should keep the
	// patch away from the top/bottom boundaries.
	FeatRow int
	// FromRight mirrors the family: the feature starts at the right edge
	// and slides left, probing the opposite boundary. Mirrored families
	// give statistically independent observations of the boundary effect,
	// which amplifies observability per trial (§5.4).
	FromRight bool
}

// Default returns the A(0,1) single-impulse pattern with q positions,
// vertically centred for an H-row image.
func Default(q, h int) Pattern {
	return Pattern{M: 0, N: 1, Q: q, FeatRow: h / 2}
}

// FeatureCol returns the leftmost feature column of probe i in a w-wide
// image.
func (p Pattern) FeatureCol(i, w int) int {
	if p.FromRight {
		return w - p.M - p.N - i
	}
	return p.M + i
}

// Validate checks the pattern fits an H×W image.
func (p Pattern) Validate(h, w int) error {
	if p.N < 1 || p.Q < 1 || p.M < 0 {
		return fmt.Errorf("probe: invalid pattern %+v", p)
	}
	if p.FeatRow < 0 || p.FeatRow+p.N > h {
		return fmt.Errorf("probe: feature rows [%d,%d) outside height %d", p.FeatRow, p.FeatRow+p.N, h)
	}
	for _, i := range []int{0, p.Q - 1} {
		fc := p.FeatureCol(i, w)
		if fc < 0 || fc+p.N > w {
			return fmt.Errorf("probe: feature of probe %d at columns [%d,%d) outside width %d", i, fc, fc+p.N, w)
		}
	}
	return nil
}

// Values holds one random instantiation of a pattern's free values. The
// same structural pattern is instantiated with fresh values on every
// independent trial (§5.4's probability amplification).
type Values struct {
	Background float64
	Cols       []float64   // per boundary-constant column, length M
	Feature    [][]float64 // N×N patch values
}

// RandomValues draws an instantiation within the device's valid input range
// [0,1]: a mid-range background, extreme column constants, and bimodal
// extreme feature values. High contrast between feature and background
// maximizes the chance that a boundary-effect difference survives ReLU and
// changes the observable nnz (§5.2 notes probe values are free parameters;
// stronger impulses amplify per-trial observability).
func RandomValues(rng *rand.Rand, p Pattern) Values {
	v := Values{Background: 0.35 + 0.3*rng.Float64()}
	extreme := func() float64 {
		if rng.Intn(2) == 0 {
			return 0.15 * rng.Float64()
		}
		return 1 - 0.15*rng.Float64()
	}
	for j := 0; j < p.M; j++ {
		v.Cols = append(v.Cols, extreme())
	}
	for y := 0; y < p.N; y++ {
		row := make([]float64, p.N)
		for x := 0; x < p.N; x++ {
			row[x] = extreme()
		}
		v.Feature = append(v.Feature, row)
	}
	return v
}

// Image renders probe i of the set as a [C,H,W] tensor (the feature is
// replicated across channels, matching the single-channel symbolic model).
func Image(p Pattern, v Values, i, c, h, w int) *tensor.Tensor {
	img := tensor.New(c, h, w)
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				val := v.Background
				if !p.FromRight && x < p.M {
					val = v.Cols[x]
				}
				if p.FromRight && x >= w-p.M {
					val = v.Cols[w-1-x]
				}
				img.Data[(ch*h+y)*w+x] = val
			}
		}
		fc := p.FeatureCol(i, w)
		for dy := 0; dy < p.N; dy++ {
			for dx := 0; dx < p.N; dx++ {
				img.Data[(ch*h+p.FeatRow+dy)*w+fc+dx] = v.Feature[dy][dx]
			}
		}
	}
	return img
}

// Set renders all Q probe images for one value instantiation.
func Set(p Pattern, v Values, c, h, w int) []*tensor.Tensor {
	imgs := make([]*tensor.Tensor, p.Q)
	for i := 0; i < p.Q; i++ {
		imgs[i] = Image(p, v, i, c, h, w)
	}
	return imgs
}
