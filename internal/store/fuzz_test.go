package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
)

// fuzzFrame frames a record body the way append does, for seed corpus entries.
func fuzzFrame(rec segRecord) []byte {
	body, err := json.Marshal(rec)
	if err != nil {
		panic(err)
	}
	return encodeFrame(body)
}

// FuzzFrameDecode throws arbitrary bytes at the segment-recovery decoder. The
// invariants: scanFrames never panics, never reads past its input, reports a
// torn tail whenever it stops early, and every frame it accepts survives the
// decode→re-encode round trip at its reported offset.
func FuzzFrameDecode(f *testing.F) {
	camp := testRec(7, "smallcnn", "done", 12345, 1.5, 100, true)
	f.Add(fuzzFrame(segRecord{LSN: 1, Kind: kindCampaign, Campaign: &camp}))
	batch := EventBatch{CampaignID: 7, FirstNS: 1, LastNS: 2, Events: json.RawMessage(`[{"name":"x"}]`)}
	f.Add(fuzzFrame(segRecord{LSN: 2, Kind: kindEvents, Events: &batch}))
	two := append(fuzzFrame(segRecord{LSN: 3, Kind: kindCampaign, Campaign: &camp}),
		fuzzFrame(segRecord{LSN: 4, Kind: kindEvents, Events: &batch})...)
	f.Add(two)
	f.Add(append(two, 0xde, 0xad))        // intact frames + torn tail
	f.Add([]byte{})                       // empty segment
	f.Add([]byte{1, 0, 0, 0})             // bare length word
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // all-ones garbage
	torn := fuzzFrame(segRecord{LSN: 5, Kind: kindCampaign, Campaign: &camp})
	f.Add(torn[:len(torn)-3]) // truncated mid-body

	f.Fuzz(func(t *testing.T, raw []byte) {
		entries, tornCount := scanFrames(raw)
		var off int64
		for i, e := range entries {
			if e.Off != off {
				t.Fatalf("entry %d at offset %d, scan cursor %d", i, e.Off, off)
			}
			if e.N < frameHeaderLen || e.Off+int64(e.N) > int64(len(raw)) {
				t.Fatalf("entry %d out of bounds: off=%d n=%d len=%d", i, e.Off, e.N, len(raw))
			}
			if e.Kind != kindCampaign && e.Kind != kindEvents {
				t.Fatalf("entry %d has impossible kind %q", i, e.Kind)
			}
			// Round trip: the accepted frame region must re-decode to a frame
			// of the same length, and its body must re-frame byte-identically.
			region := raw[e.Off : e.Off+int64(e.N)]
			rec, n, ok := decodeFrame(region)
			if !ok || n != e.N {
				t.Fatalf("entry %d region does not re-decode: ok=%v n=%d want %d", i, ok, n, e.N)
			}
			bodyLen := binary.LittleEndian.Uint32(region[0:4])
			reframed := encodeFrame(region[frameHeaderLen : frameHeaderLen+int(bodyLen)])
			if !bytes.Equal(reframed, region) {
				t.Fatalf("entry %d frame not canonical after round trip", i)
			}
			if rec.LSN != e.LSN {
				t.Fatalf("entry %d LSN mismatch: %d vs %d", i, rec.LSN, e.LSN)
			}
			off += int64(e.N)
		}
		if off < int64(len(raw)) && tornCount == 0 {
			t.Fatalf("scan stopped at %d of %d bytes without reporting a torn tail", off, len(raw))
		}
		if tornCount > 1 {
			t.Fatalf("tornCount = %d, want 0 or 1 (a torn frame ends the scan)", tornCount)
		}
	})
}
