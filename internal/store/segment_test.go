package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// snapshotReads captures everything a store serves — the full listing, the
// aggregate, and every event batch — as one comparable JSON string.
func snapshotReads(t *testing.T, s Store) string {
	t.Helper()
	recs, err := s.Campaigns(Query{})
	if err != nil {
		t.Fatalf("Campaigns: %v", err)
	}
	aggs, err := s.AggregateByModel()
	if err != nil {
		t.Fatalf("AggregateByModel: %v", err)
	}
	events := map[int]EventBatch{}
	for _, rec := range recs {
		if b, ok, err := s.Events(rec.ID); err != nil {
			t.Fatalf("Events(%d): %v", rec.ID, err)
		} else if ok {
			events[rec.ID] = b
		}
	}
	return mustJSON(t, map[string]any{"recs": recs, "aggs": aggs, "events": events})
}

// TestReopenEquivalence closes and reopens a populated store and requires the
// reopened reads to match, both via sidecar indexes and — with the sidecars
// deleted — via full frame rescans.
func TestReopenEquivalence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, SegmentConfig{SegmentBytes: 512, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, testCorpus())
	want := snapshotReads(t, s)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir, SegmentConfig{SegmentBytes: 512, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := snapshotReads(t, s2); got != want {
		t.Errorf("reopen via sidecars diverged:\n got %s\nwant %s", got, want)
	}
	s2.Close()

	// Delete every sidecar: recovery must rescan frames and converge to the
	// same state, rewriting the sidecars as it goes.
	idxs, err := filepath.Glob(filepath.Join(dir, "seg-*.idx"))
	if err != nil {
		t.Fatal(err)
	}
	if len(idxs) == 0 {
		t.Fatal("no sidecars on disk; test corpus too small to rotate")
	}
	for _, p := range idxs {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}
	s3, err := Open(dir, SegmentConfig{SegmentBytes: 512, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := snapshotReads(t, s3); got != want {
		t.Errorf("reopen via frame rescan diverged:\n got %s\nwant %s", got, want)
	}
	rewritten, err := filepath.Glob(filepath.Join(dir, "seg-*.idx"))
	if err != nil {
		t.Fatal(err)
	}
	// One sidecar belonged to s2's empty active segment, which the reopen
	// deletes rather than rescans.
	if len(rewritten) < len(idxs)-1 {
		t.Errorf("rescan rewrote %d sidecars, want >= %d", len(rewritten), len(idxs)-1)
	}
}

// TestTornTail appends garbage to the newest sealed segment — the shape a
// crash mid-write leaves — and requires recovery to keep every intact record,
// count the torn one, and accept appends afterwards.
func TestTornTail(t *testing.T) {
	for _, tc := range []struct {
		name string
		tear func(t *testing.T, path string)
	}{
		{"truncated-frame", func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-3); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage-tail", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
				t.Fatal(err)
			}
		}},
		{"corrupt-crc", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)-1] ^= 0xff // flip a byte in the last frame's body
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, SegmentConfig{SegmentBytes: 1 << 20, CompactAfter: -1, NoSync: true})
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= 5; i++ {
				if err := s.PutCampaign(testRec(i, "m", "done", int64(i), 1, 1, false)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			logs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
			if err != nil || len(logs) == 0 {
				t.Fatalf("glob: %v (%d logs)", err, len(logs))
			}
			target := logs[len(logs)-1]
			tc.tear(t, target)
			// The sidecar predates the tear only in the garbage-tail case; drop
			// it so recovery must judge the frames themselves.
			os.Remove(strings.TrimSuffix(target, ".log") + ".idx")

			s2, err := Open(dir, SegmentConfig{SegmentBytes: 1 << 20, CompactAfter: -1, NoSync: true})
			if err != nil {
				t.Fatalf("reopen after tear: %v", err)
			}
			defer s2.Close()
			st := s2.Stats()
			if st.TornRecords != 1 {
				t.Errorf("TornRecords = %d, want 1", st.TornRecords)
			}
			wantRecords := 5
			if tc.name != "garbage-tail" {
				wantRecords = 4 // the last frame itself was destroyed
			}
			recs, err := s2.Campaigns(Query{})
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != wantRecords {
				t.Errorf("recovered %d records, want %d", len(recs), wantRecords)
			}
			for _, rec := range recs {
				if rec.Model != "m" || rec.State != "done" {
					t.Errorf("recovered record corrupted: %+v", rec)
				}
			}
			// The store must still accept appends after a torn recovery.
			if err := s2.PutCampaign(testRec(99, "m", "done", 99, 1, 1, false)); err != nil {
				t.Fatalf("append after torn recovery: %v", err)
			}
			if got, ok, err := s2.Campaign(99); err != nil || !ok || got.ID != 99 {
				t.Errorf("post-recovery append unreadable: ok=%v err=%v rec=%+v", ok, err, got)
			}
		})
	}
}

// TestTornOnlySegment reproduces a crash during the very first append to a
// fresh active segment: the file the next open would name for its active
// segment exists and holds nothing but a torn frame. Recovery must drop it —
// keeping it would reuse its name, landing O_APPEND frames after the torn
// bytes while offsets count from zero, so an acknowledged append reads back
// corrupt and a restart silently loses every record in the file.
func TestTornOnlySegment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, SegmentConfig{CompactAfter: -1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := s.PutCampaign(testRec(i, "m", "done", int64(i), 1, 1, false)); err != nil {
			t.Fatal(err)
		}
	}
	next := s.nextLSN
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The torn frame: a length word promising 32 body bytes, then a crash.
	torn := filepath.Join(dir, fmt.Sprintf("seg-%016d.log", next))
	if err := os.WriteFile(torn, []byte{32, 0, 0, 0, 0xde, 0xad}, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, SegmentConfig{CompactAfter: -1, NoSync: true})
	if err != nil {
		t.Fatalf("reopen over torn-only segment: %v", err)
	}
	if st := s2.Stats(); st.TornRecords != 1 {
		t.Errorf("TornRecords = %d, want 1", st.TornRecords)
	}
	recs, err := s2.Campaigns(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Errorf("recovered %d records, want 5", len(recs))
	}
	// An acknowledged append must read back immediately...
	if err := s2.PutCampaign(testRec(99, "m", "done", 99, 1, 1, false)); err != nil {
		t.Fatal(err)
	}
	if got, ok, err := s2.Campaign(99); err != nil || !ok || got.ID != 99 {
		t.Fatalf("append after torn-only recovery unreadable: ok=%v err=%v rec=%+v", ok, err, got)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	// ...and survive a restart of the same directory.
	s3, err := Open(dir, SegmentConfig{CompactAfter: -1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	recs, err = s3.Campaigns(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Errorf("restart lost acknowledged records: %d, want 6", len(recs))
	}
	if got, ok, err := s3.Campaign(99); err != nil || !ok || got.ID != 99 {
		t.Errorf("acknowledged record lost across restart: ok=%v err=%v rec=%+v", ok, err, got)
	}
}

// TestFailedAppendSealsActive exercises the failed-write recovery path: a
// partial frame lands at the active segment's tail (what an interrupted
// Write leaves), failActiveLocked runs, and the store must keep accepting
// appends whose records read back live and survive a restart — the sealed
// segment's sidecar covers only the valid prefix.
func TestFailedAppendSealsActive(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, SegmentConfig{CompactAfter: -1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := s.PutCampaign(testRec(i, "m", "done", int64(i), 1, 1, false)); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	if _, err := s.activeW.Write([]byte{32, 0, 0, 0, 0xde, 0xad}); err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	segsBefore := len(s.segs)
	s.failActiveLocked()
	if s.activeW == nil {
		s.mu.Unlock()
		t.Fatal("failActiveLocked left no active write handle")
	}
	if len(s.segs) != segsBefore+1 {
		s.mu.Unlock()
		t.Fatalf("failActiveLocked did not open a fresh segment: %d segs, want %d", len(s.segs), segsBefore+1)
	}
	s.mu.Unlock()

	// Appends after the failure land in the fresh segment and read back.
	if err := s.PutCampaign(testRec(4, "m", "done", 4, 1, 1, false)); err != nil {
		t.Fatalf("append after failed-write recovery: %v", err)
	}
	if got, ok, err := s.Campaign(4); err != nil || !ok || got.ID != 4 {
		t.Fatalf("post-failure append unreadable: ok=%v err=%v rec=%+v", ok, err, got)
	}
	recs, err := s.Campaigns(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Errorf("%d records live, want 4", len(recs))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, SegmentConfig{CompactAfter: -1, NoSync: true})
	if err != nil {
		t.Fatalf("reopen after failed-write recovery: %v", err)
	}
	defer s2.Close()
	recs, err = s2.Campaigns(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Errorf("restart lost records written after a failed append: %d, want 4", len(recs))
	}
	for _, rec := range recs {
		if rec.Model != "m" || rec.State != "done" {
			t.Errorf("record corrupted across restart: %+v", rec)
		}
	}
}

// TestStaleSidecarRescan corrupts a sidecar (and separately leaves one whose
// size mismatches) and requires recovery to ignore it and rescan.
func TestStaleSidecarRescan(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, SegmentConfig{SegmentBytes: 512, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	fillStore(t, s, testCorpus())
	want := snapshotReads(t, s)
	s.Close()

	idxs, err := filepath.Glob(filepath.Join(dir, "seg-*.idx"))
	if err != nil || len(idxs) < 2 {
		t.Fatalf("need >=2 sidecars, got %d (err %v)", len(idxs), err)
	}
	// One sidecar is syntactic garbage; another lies about the log size.
	if err := os.WriteFile(idxs[0], []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sc sidecar
	raw, err := os.ReadFile(idxs[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &sc); err != nil {
		t.Fatal(err)
	}
	sc.Bytes += 7
	raw, err = json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(idxs[1], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, SegmentConfig{SegmentBytes: 512, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := snapshotReads(t, s2); got != want {
		t.Errorf("recovery trusted a stale sidecar:\n got %s\nwant %s", got, want)
	}
}

// TestCompaction drives an explicit pass over a store with superseded
// records: reads must be unchanged, the segment count must drop, and the
// dropped-record accounting must add up.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, SegmentConfig{SegmentBytes: 512, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs := testCorpus()
	fillStore(t, s, recs)
	// Supersede a third of the corpus so compaction has records to drop.
	for _, rec := range recs {
		if rec.ID%3 == 0 {
			rec.WallSeconds += 100
			rec.Degraded = true
			if err := s.PutCampaign(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := snapshotReads(t, s)
	before := s.Stats()
	if before.Segments < 3 {
		t.Fatalf("corpus spans %d segments, too few to exercise a merge", before.Segments)
	}

	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.Stats()
	if after.Segments != 2 { // merged + active
		t.Errorf("Segments = %d after compaction, want 2", after.Segments)
	}
	if after.Compactions != 1 {
		t.Errorf("Compactions = %d, want 1", after.Compactions)
	}
	if after.CompactedRecords == 0 {
		t.Error("CompactedRecords = 0, want > 0: corpus had superseded records")
	}
	if after.LiveBytes >= before.LiveBytes {
		t.Errorf("LiveBytes did not shrink: %d -> %d", before.LiveBytes, after.LiveBytes)
	}
	if got := snapshotReads(t, s); got != want {
		t.Errorf("compaction changed reads:\n got %s\nwant %s", got, want)
	}

	// And the compacted store must reopen to the same state.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, SegmentConfig{SegmentBytes: 512, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := snapshotReads(t, s2); got != want {
		t.Errorf("post-compaction reopen diverged:\n got %s\nwant %s", got, want)
	}
}

// TestBackgroundCompaction lets rotation trigger the compactor and waits for
// a pass to land.
func TestBackgroundCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, SegmentConfig{SegmentBytes: 512, CompactAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fillStore(t, s, testCorpus())
	// The compactor runs asynchronously; Compact() serializes behind any
	// in-flight pass via s.mu, so one explicit call flushes the backlog.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Compactions == 0 {
		t.Error("no compaction pass ran despite CompactAfter=2 and many rotations")
	} else if st.Segments > 3 {
		t.Errorf("Segments = %d after compaction flush, want <= 3", st.Segments)
	}
}

// TestKillMidCompaction aborts a compaction pass at each crash window and
// requires a reopen of the directory to serve exactly the pre-compaction
// contents.
func TestKillMidCompaction(t *testing.T) {
	for _, stage := range []string{"merged-written", "renamed", "reopened"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			cfg := SegmentConfig{SegmentBytes: 512, CompactAfter: -1}
			cfg.compactHook = func(got string) bool { return got != stage }
			s, err := Open(dir, cfg)
			if err != nil {
				t.Fatal(err)
			}
			recs := testCorpus()
			fillStore(t, s, recs)
			for _, rec := range recs { // supersede everything once
				rec.Queries++
				if err := s.PutCampaign(rec); err != nil {
					t.Fatal(err)
				}
			}
			want := snapshotReads(t, s)

			if err := s.Compact(); err != nil {
				t.Fatalf("aborted Compact returned error: %v", err)
			}
			// The aborted pass must not have perturbed the running store's
			// reads (old file handles keep serving even renamed-over inputs).
			if got := snapshotReads(t, s); got != want {
				t.Errorf("aborted compaction changed live reads:\n got %s\nwant %s", got, want)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			s2, err := Open(dir, SegmentConfig{SegmentBytes: 512, CompactAfter: -1})
			if err != nil {
				t.Fatalf("reopen after simulated crash: %v", err)
			}
			defer s2.Close()
			if got := snapshotReads(t, s2); got != want {
				t.Errorf("crash at %q lost or duplicated records:\n got %s\nwant %s", stage, got, want)
			}
			// No .tmp leftovers may survive the reopen.
			tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
			if err != nil {
				t.Fatal(err)
			}
			if len(tmps) != 0 {
				t.Errorf("leftover tmp files after recovery: %v", tmps)
			}
			// And the next compaction over the recovered state must succeed.
			if err := s2.Compact(); err != nil {
				t.Fatalf("compaction after crash recovery: %v", err)
			}
			if got := snapshotReads(t, s2); got != want {
				t.Errorf("post-recovery compaction diverged:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestEmptySegmentCleanup reopens an untouched store repeatedly: empty active
// segments from prior opens must be dropped, not accumulate.
func TestEmptySegmentCleanup(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 4; i++ {
		s, err := Open(dir, SegmentConfig{CompactAfter: -1})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if err := s.PutCampaign(testRec(1, "m", "done", 1, 1, 1, false)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	logs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	// One sealed segment with the record, plus at most the final open's
	// (empty, just-created) active segment left behind by Close.
	if len(logs) > 2 {
		t.Errorf("%d segment files after 4 reopens, want <= 2: %v", len(logs), logs)
	}
	s, err := Open(dir, SegmentConfig{CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if recs, err := s.Campaigns(Query{}); err != nil || len(recs) != 1 {
		t.Errorf("record lost across reopens: %d recs, err %v", len(recs), err)
	}
}

// TestConcurrentReadWrite hammers the store from writers and readers at once;
// run under -race this is the store's data-race check.
func TestConcurrentReadWrite(t *testing.T) {
	s := newSegmentStore(t, SegmentConfig{SegmentBytes: 2048, CompactAfter: 2, NoSync: true})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := w*100 + i
				if err := s.PutCampaign(testRec(id, "m", "done", int64(id), 1, 1, false)); err != nil {
					t.Errorf("PutCampaign(%d): %v", id, err)
					return
				}
				if id%5 == 0 {
					if err := s.PutEvents(EventBatch{CampaignID: id, Events: json.RawMessage(`[]`)}); err != nil {
						t.Errorf("PutEvents(%d): %v", id, err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, err := s.Campaigns(Query{Model: "m", Limit: 10}); err != nil {
					t.Errorf("Campaigns: %v", err)
					return
				}
				if _, err := s.AggregateByModel(); err != nil {
					t.Errorf("AggregateByModel: %v", err)
					return
				}
				s.Stats()
			}
		}()
	}
	wg.Wait()
	recs, err := s.Campaigns(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 200 {
		t.Errorf("lost writes under concurrency: %d records, want 200", len(recs))
	}
}
