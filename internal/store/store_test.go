package store

import (
	"encoding/json"
	"fmt"
	"testing"
)

// testRec builds one campaign record with a compact JSON payload (compact so
// both backends return byte-identical payloads).
func testRec(id int, model, state string, fin int64, wall float64, q int64, degraded bool) CampaignRecord {
	payload, err := json.Marshal(map[string]any{"id": id, "model": model, "state": state})
	if err != nil {
		panic(err)
	}
	return CampaignRecord{
		ID: id, Model: model, State: state,
		FinishedNS: fin, WallSeconds: wall, Queries: q, Degraded: degraded,
		Payload: payload,
	}
}

// testCorpus is a fixed record set exercising every filter column: three
// models, both terminal states, degraded flags, and a spread of finish times.
func testCorpus() []CampaignRecord {
	models := []string{"smallcnn", "lenet5", "vgg11"}
	recs := make([]CampaignRecord, 0, 30)
	for i := 1; i <= 30; i++ {
		state := "done"
		if i%5 == 0 {
			state = "failed"
		}
		recs = append(recs, testRec(
			i, models[i%3], state,
			int64(1_000+10*i), float64(i)*0.25, int64(100*i), i%7 == 0,
		))
	}
	return recs
}

// testQueries is the query matrix the conformance tests run: every filter
// alone, combined, and paginated windows including out-of-range ones.
func testQueries() []Query {
	return []Query{
		{},
		{State: "done"},
		{State: "failed"},
		{Model: "lenet5"},
		{Model: "nosuch"},
		{SinceNS: 1_150},
		{State: "done", Model: "smallcnn"},
		{State: "done", Model: "vgg11", SinceNS: 1_100},
		{Limit: 5},
		{Offset: 3, Limit: 5},
		{Offset: 28, Limit: 10},
		{Offset: 100},
		{State: "done", Limit: 4, Offset: 2},
	}
}

// fillStore inserts the corpus plus one event batch per third campaign.
func fillStore(t *testing.T, s Store, recs []CampaignRecord) {
	t.Helper()
	for _, rec := range recs {
		if err := s.PutCampaign(rec); err != nil {
			t.Fatalf("PutCampaign(%d): %v", rec.ID, err)
		}
		if rec.ID%3 == 0 {
			ev := json.RawMessage(fmt.Sprintf(`[{"name":"probe","campaign":%d}]`, rec.ID))
			batch := EventBatch{CampaignID: rec.ID, FirstNS: rec.FinishedNS - 5, LastNS: rec.FinishedNS, Events: ev}
			if err := s.PutEvents(batch); err != nil {
				t.Fatalf("PutEvents(%d): %v", rec.ID, err)
			}
		}
	}
}

// mustJSON marshals for byte comparison.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(raw)
}

// newSegmentStore opens a segment store in a temp dir with small segments so
// tests exercise rotation, and registers cleanup.
func newSegmentStore(t *testing.T, cfg SegmentConfig) *Segment {
	t.Helper()
	if cfg.SegmentBytes == 0 {
		cfg.SegmentBytes = 512 // rotate often: the corpus spans many segments
	}
	if cfg.CompactAfter == 0 {
		cfg.CompactAfter = -1 // tests drive compaction explicitly
	}
	s, err := Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestBackendConformance runs the same query matrix against both backends
// over the same contents and requires byte-identical results: listings,
// point lookups, aggregates, and event batches.
func TestBackendConformance(t *testing.T) {
	recs := testCorpus()
	mem := NewMemory()
	defer mem.Close()
	seg := newSegmentStore(t, SegmentConfig{})
	fillStore(t, mem, recs)
	fillStore(t, seg, recs)

	for _, q := range testQueries() {
		memOut, err := mem.Campaigns(q)
		if err != nil {
			t.Fatalf("memory Campaigns(%+v): %v", q, err)
		}
		segOut, err := seg.Campaigns(q)
		if err != nil {
			t.Fatalf("segment Campaigns(%+v): %v", q, err)
		}
		if a, b := mustJSON(t, memOut), mustJSON(t, segOut); a != b {
			t.Errorf("Campaigns(%+v) differ:\n memory: %s\nsegment: %s", q, a, b)
		}
		for i := 1; i < len(memOut); i++ {
			if memOut[i].ID <= memOut[i-1].ID {
				t.Errorf("Campaigns(%+v) not ascending at %d: %d then %d", q, i, memOut[i-1].ID, memOut[i].ID)
			}
		}
	}

	memAgg, err := mem.AggregateByModel()
	if err != nil {
		t.Fatalf("memory AggregateByModel: %v", err)
	}
	segAgg, err := seg.AggregateByModel()
	if err != nil {
		t.Fatalf("segment AggregateByModel: %v", err)
	}
	if a, b := mustJSON(t, memAgg), mustJSON(t, segAgg); a != b {
		t.Errorf("aggregates differ:\n memory: %s\nsegment: %s", a, b)
	}

	for _, id := range []int{1, 15, 30, 99} {
		mr, mok, err := mem.Campaign(id)
		if err != nil {
			t.Fatalf("memory Campaign(%d): %v", id, err)
		}
		sr, sok, err := seg.Campaign(id)
		if err != nil {
			t.Fatalf("segment Campaign(%d): %v", id, err)
		}
		if mok != sok || mustJSON(t, mr) != mustJSON(t, sr) {
			t.Errorf("Campaign(%d) differ: memory (%v, %s) segment (%v, %s)",
				id, mok, mustJSON(t, mr), sok, mustJSON(t, sr))
		}
		mb, mok2, err := mem.Events(id)
		if err != nil {
			t.Fatalf("memory Events(%d): %v", id, err)
		}
		sb, sok2, err := seg.Events(id)
		if err != nil {
			t.Fatalf("segment Events(%d): %v", id, err)
		}
		if mok2 != sok2 || mustJSON(t, mb) != mustJSON(t, sb) {
			t.Errorf("Events(%d) differ: memory (%v, %s) segment (%v, %s)",
				id, mok2, mustJSON(t, mb), sok2, mustJSON(t, sb))
		}
	}
}

// TestSupersedence re-puts records and batches under existing IDs: both
// backends must serve only the latest version, and the live-record count must
// not grow.
func TestSupersedence(t *testing.T) {
	for _, tc := range []struct {
		name string
		open func(t *testing.T) Store
	}{
		{"memory", func(t *testing.T) Store { s := NewMemory(); t.Cleanup(func() { s.Close() }); return s }},
		{"segment", func(t *testing.T) Store { return newSegmentStore(t, SegmentConfig{}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.open(t)
			first := testRec(7, "smallcnn", "failed", 100, 1.0, 10, false)
			if err := s.PutCampaign(first); err != nil {
				t.Fatal(err)
			}
			second := testRec(7, "smallcnn", "done", 200, 2.0, 20, true)
			if err := s.PutCampaign(second); err != nil {
				t.Fatal(err)
			}
			got, ok, err := s.Campaign(7)
			if err != nil || !ok {
				t.Fatalf("Campaign(7): ok=%v err=%v", ok, err)
			}
			if got.State != "done" || got.FinishedNS != 200 {
				t.Errorf("lookup served superseded record: %+v", got)
			}
			list, err := s.Campaigns(Query{})
			if err != nil {
				t.Fatal(err)
			}
			if len(list) != 1 {
				t.Errorf("superseded record still listed: %d records", len(list))
			}
			if st := s.Stats(); st.Records != 1 {
				t.Errorf("Stats.Records = %d, want 1", st.Records)
			}

			if err := s.PutEvents(EventBatch{CampaignID: 7, FirstNS: 1, LastNS: 2, Events: json.RawMessage(`[1]`)}); err != nil {
				t.Fatal(err)
			}
			if err := s.PutEvents(EventBatch{CampaignID: 7, FirstNS: 3, LastNS: 4, Events: json.RawMessage(`[2]`)}); err != nil {
				t.Fatal(err)
			}
			b, ok, err := s.Events(7)
			if err != nil || !ok {
				t.Fatalf("Events(7): ok=%v err=%v", ok, err)
			}
			if b.FirstNS != 3 || string(b.Events) != `[2]` {
				t.Errorf("events lookup served superseded batch: %+v", b)
			}
		})
	}
}

// TestAggregateMath pins the percentile and rate arithmetic on a hand-checked
// corpus.
func TestAggregateMath(t *testing.T) {
	s := NewMemory()
	defer s.Close()
	// Ten campaigns of one model, wall seconds 1..10, two failed, three
	// degraded, 100 queries each.
	for i := 1; i <= 10; i++ {
		state := "done"
		if i <= 2 {
			state = "failed"
		}
		if err := s.PutCampaign(CampaignRecord{
			ID: i, Model: "m", State: state,
			FinishedNS: int64(i), WallSeconds: float64(i), Queries: 100, Degraded: i <= 3,
		}); err != nil {
			t.Fatal(err)
		}
	}
	aggs, err := s.AggregateByModel()
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 1 {
		t.Fatalf("got %d aggregates, want 1", len(aggs))
	}
	a := aggs[0]
	if a.Campaigns != 10 || a.Done != 8 || a.Failed != 2 || a.Degraded != 3 {
		t.Errorf("counts wrong: %+v", a)
	}
	if a.TotalQueries != 1000 {
		t.Errorf("TotalQueries = %d, want 1000", a.TotalQueries)
	}
	if a.DegradedRate != 0.3 {
		t.Errorf("DegradedRate = %v, want 0.3", a.DegradedRate)
	}
	// Nearest rank over 1..10: p50 → rank 5 → 5.0; p95 → rank 10 → 10.0.
	if a.P50WallSeconds != 5.0 {
		t.Errorf("P50WallSeconds = %v, want 5", a.P50WallSeconds)
	}
	if a.P95WallSeconds != 10.0 {
		t.Errorf("P95WallSeconds = %v, want 10", a.P95WallSeconds)
	}
}

// TestPercentile pins the nearest-rank edges.
func TestPercentile(t *testing.T) {
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
	one := []float64{42}
	if got := percentile(one, 0.5); got != 42 {
		t.Errorf("single p50 = %v, want 42", got)
	}
	if got := percentile(one, 0.95); got != 42 {
		t.Errorf("single p95 = %v, want 42", got)
	}
	four := []float64{1, 2, 3, 4}
	if got := percentile(four, 0.5); got != 2 {
		t.Errorf("p50 of 4 = %v, want 2", got)
	}
	if got := percentile(four, 0.95); got != 4 {
		t.Errorf("p95 of 4 = %v, want 4", got)
	}
}

// TestClosedStore verifies ErrClosed on every operation after Close, for both
// backends.
func TestClosedStore(t *testing.T) {
	for _, tc := range []struct {
		name string
		open func(t *testing.T) Store
	}{
		{"memory", func(t *testing.T) Store { return NewMemory() }},
		{"segment", func(t *testing.T) Store { return newSegmentStore(t, SegmentConfig{}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.open(t)
			if err := s.PutCampaign(testRec(1, "m", "done", 1, 1, 1, false)); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if err := s.PutCampaign(testRec(2, "m", "done", 2, 2, 2, false)); err != ErrClosed {
				t.Errorf("PutCampaign after close: %v, want ErrClosed", err)
			}
			if _, _, err := s.Campaign(1); err != ErrClosed {
				t.Errorf("Campaign after close: %v, want ErrClosed", err)
			}
			if _, err := s.Campaigns(Query{}); err != ErrClosed {
				t.Errorf("Campaigns after close: %v, want ErrClosed", err)
			}
			if _, err := s.AggregateByModel(); err != ErrClosed {
				t.Errorf("AggregateByModel after close: %v, want ErrClosed", err)
			}
			if err := s.PutEvents(EventBatch{CampaignID: 1}); err != ErrClosed {
				t.Errorf("PutEvents after close: %v, want ErrClosed", err)
			}
			if _, _, err := s.Events(1); err != ErrClosed {
				t.Errorf("Events after close: %v, want ErrClosed", err)
			}
			if err := s.Close(); err != nil {
				t.Errorf("second Close: %v", err)
			}
		})
	}
}
