// Package store is the daemon's durable campaign history: an embedded,
// stdlib-only store for everything a campaign leaves behind once it reaches
// a terminal state — the full CampaignSnapshot payload, its convergence
// summary, and the flight-recorder event batch captured over its run —
// behind one Store interface with two implementations. Memory is the
// ephemeral table the daemon uses without a data directory; Segment is an
// append-only segment log (the fsync discipline of the telemetry journal)
// with per-segment sidecar indexes, crash-safe recovery that skips and
// counts a torn tail, and background compaction that drops superseded
// records and merges small segments. Both backends serve the same query
// surface — point lookup, filtered time-range listing, and per-model
// aggregation — identically and in deterministic ascending-ID order, which
// is what turns one-off campaign runs into the longitudinal datasets the
// paper's §8.2 query-budget trajectories are built from.
package store

import (
	"encoding/json"
	"sort"
)

// CampaignRecord is one terminal campaign as the store holds it: the
// indexed columns every query path filters and aggregates on, plus the
// opaque payload (the daemon's full CampaignSnapshot JSON) that listings
// return. The store never decodes Payload; the columns are extracted by the
// writer so reads stay payload-blind until a record is actually returned.
type CampaignRecord struct {
	// ID is the campaign ID — the point-lookup key. A later record for the
	// same ID supersedes the earlier one (compaction drops the loser).
	ID int `json:"id"`
	// Model is the victim model name — the per-model scan and aggregation key.
	Model string `json:"model"`
	// State is the terminal state, "done" or "failed".
	State string `json:"state"`
	// FinishedNS is the terminal timestamp in Unix nanoseconds — the
	// time-range scan key.
	FinishedNS int64 `json:"finished_ns"`
	// WallSeconds is the wall time of the final attempt, feeding the
	// per-model p50/p95 aggregates.
	WallSeconds float64 `json:"wall_seconds"`
	// Queries is the campaign's victim-query count.
	Queries int64 `json:"queries"`
	// Degraded marks a campaign that finished with a degraded solution space.
	Degraded bool `json:"degraded"`
	// Payload is the writer's full record (for the daemon: the terminal
	// CampaignSnapshot, convergence summary included), returned verbatim.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// EventBatch is one campaign's flight-recorder tail, persisted at terminal
// state so a post-mortem can read the events leading up to the outcome long
// after the ring has recycled them.
type EventBatch struct {
	// CampaignID keys the batch; a later batch for the same ID supersedes.
	CampaignID int `json:"campaign_id"`
	// FirstNS and LastNS bound the batch's event timestamps (Unix nanos).
	FirstNS int64 `json:"first_ns"`
	LastNS  int64 `json:"last_ns"`
	// Events is the writer's event array ([]obs.Event for the daemon),
	// stored and returned verbatim.
	Events json.RawMessage `json:"events,omitempty"`
}

// Query filters and paginates a campaign listing. The zero Query matches
// everything. Results are always in ascending-ID order, so Offset/Limit
// windows are stable across identical stores regardless of backend.
type Query struct {
	// State keeps only campaigns in this terminal state ("" = any).
	State string `json:"state,omitempty"`
	// Model keeps only campaigns of this victim model ("" = any).
	Model string `json:"model,omitempty"`
	// SinceNS keeps only campaigns with FinishedNS >= SinceNS (0 = any).
	SinceNS int64 `json:"since_ns,omitempty"`
	// Offset skips that many matching records; Limit caps the page (0 = all).
	Offset int `json:"offset,omitempty"`
	Limit  int `json:"limit,omitempty"`
}

// Match reports whether the record passes the query's filters (pagination
// excluded — that is a property of the result window, not the record).
func (q Query) Match(r CampaignRecord) bool {
	if q.State != "" && r.State != q.State {
		return false
	}
	if q.Model != "" && r.Model != q.Model {
		return false
	}
	if q.SinceNS != 0 && r.FinishedNS < q.SinceNS {
		return false
	}
	return true
}

// ModelAggregate is one model's slice of the stored history: how many
// campaigns ran, how they ended, what they cost. This is the per-model view
// attack papers report — query budgets and wall costs over many runs, not
// one snapshot.
type ModelAggregate struct {
	Model     string `json:"model"`
	Campaigns int    `json:"campaigns"`
	Done      int    `json:"done"`
	Failed    int    `json:"failed"`
	Degraded  int    `json:"degraded"`
	// DegradedRate is Degraded over Campaigns.
	DegradedRate float64 `json:"degraded_rate"`
	// P50WallSeconds / P95WallSeconds are nearest-rank percentiles of the
	// per-campaign wall seconds.
	P50WallSeconds float64 `json:"p50_wall_seconds"`
	P95WallSeconds float64 `json:"p95_wall_seconds"`
	// TotalQueries sums victim queries across the model's campaigns.
	TotalQueries int64 `json:"total_queries"`
}

// Stats counts store activity. Append counters accumulate since open;
// Records/EventBatches/Segments/LiveBytes describe the current contents.
type Stats struct {
	// Records and EventBatches are live (non-superseded) counts.
	Records      int `json:"records"`
	EventBatches int `json:"event_batches"`
	// Appends and AppendBytes count accepted writes since open.
	Appends     uint64 `json:"appends"`
	AppendBytes uint64 `json:"append_bytes"`
	// Segments and LiveBytes describe the on-disk footprint (the memory
	// backend reports 0 segments and its encoded record bytes).
	Segments  int   `json:"segments"`
	LiveBytes int64 `json:"live_bytes"`
	// Compactions counts completed compaction passes; CompactedRecords the
	// superseded records they dropped.
	Compactions      uint64 `json:"compactions"`
	CompactedRecords uint64 `json:"compacted_records"`
	// TornRecords counts unreadable frames skipped during recovery — the
	// torn tail a crash leaves, never fatal.
	TornRecords uint64 `json:"torn_records"`
}

// Store is the campaign-history store: append terminal campaigns and their
// event batches, read them back by ID, filtered listing, or per-model
// aggregate. Implementations are safe for concurrent use, and both backends
// answer every read identically (deterministic ascending-ID order) over the
// same contents.
type Store interface {
	// PutCampaign appends (or supersedes) one terminal campaign record.
	PutCampaign(rec CampaignRecord) error
	// Campaign returns the record for one campaign ID.
	Campaign(id int) (CampaignRecord, bool, error)
	// Campaigns lists records matching q, ascending ID, paginated.
	Campaigns(q Query) ([]CampaignRecord, error)
	// AggregateByModel folds the whole history into per-model aggregates,
	// sorted by model name.
	AggregateByModel() ([]ModelAggregate, error)
	// PutEvents appends (or supersedes) one campaign's event batch.
	PutEvents(batch EventBatch) error
	// Events returns the stored event batch for one campaign ID.
	Events(campaignID int) (EventBatch, bool, error)
	// Stats reports store counters.
	Stats() Stats
	// Close releases the store; further calls fail or no-op per backend.
	Close() error
}

// applyWindow applies Offset/Limit to an already-filtered, ascending-ID
// result set. Shared by both backends so pagination is identical.
func applyWindow(recs []CampaignRecord, q Query) []CampaignRecord {
	if q.Offset > 0 {
		if q.Offset >= len(recs) {
			return []CampaignRecord{}
		}
		recs = recs[q.Offset:]
	}
	if q.Limit > 0 && q.Limit < len(recs) {
		recs = recs[:q.Limit]
	}
	return recs
}

// aggregateRecords computes the per-model aggregates over a record set.
// Shared by both backends so the aggregate endpoint is backend-agnostic.
func aggregateRecords(recs []CampaignRecord) []ModelAggregate {
	byModel := map[string]*ModelAggregate{}
	walls := map[string][]float64{}
	for _, r := range recs {
		agg := byModel[r.Model]
		if agg == nil {
			agg = &ModelAggregate{Model: r.Model}
			byModel[r.Model] = agg
		}
		agg.Campaigns++
		switch r.State {
		case "done":
			agg.Done++
		case "failed":
			agg.Failed++
		}
		if r.Degraded {
			agg.Degraded++
		}
		agg.TotalQueries += r.Queries
		walls[r.Model] = append(walls[r.Model], r.WallSeconds)
	}
	names := make([]string, 0, len(byModel))
	for name := range byModel {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]ModelAggregate, 0, len(names))
	for _, name := range names {
		agg := *byModel[name]
		ws := walls[name]
		sort.Float64s(ws)
		agg.P50WallSeconds = percentile(ws, 0.50)
		agg.P95WallSeconds = percentile(ws, 0.95)
		if agg.Campaigns > 0 {
			agg.DegradedRate = float64(agg.Degraded) / float64(agg.Campaigns)
		}
		out = append(out, agg)
	}
	return out
}

// percentile returns the nearest-rank percentile of an ascending-sorted
// sample set (p in [0,1]); 0 for an empty set.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// sortByID orders records ascending by campaign ID — the deterministic
// listing order both backends guarantee.
func sortByID(recs []CampaignRecord) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
}
