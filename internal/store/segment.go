package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/huffduff/huffduff/internal/obs"
)

// The segment backend is an append-only log of framed records under one
// directory:
//
//	seg-<firstLSN>.log    frames: u32 length | u32 crc32(body) | JSON body
//	seg-<firstLSN>.idx    sidecar index, written when a segment seals
//
// Every record carries a monotone log sequence number (LSN); the latest LSN
// for a (kind, ID) pair wins, which is what makes compaction free to
// reorder files: supersedence is decided by LSN, never by file position.
// Appends go to a single active segment, fsync'd per record (the journal's
// durability discipline), and rotate by size. Every open starts a fresh
// active segment, so a torn tail from a crash is never appended after — it
// is skipped and counted during recovery instead. Sealed segments get a
// sidecar index holding the indexed columns and frame offsets, so reopening
// a large store reads indexes, not payloads; a missing or stale sidecar
// falls back to a full frame scan that rewrites it.

// SegmentConfig tunes the segment-log store.
type SegmentConfig struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 1 MiB).
	SegmentBytes int64
	// NoSync skips the per-append fsync. Only tests and benchmarks should
	// set it: without the fsync a crash can lose acknowledged records.
	NoSync bool
	// CompactAfter triggers background compaction once that many sealed
	// segments accumulate (default 6; negative disables compaction).
	CompactAfter int
	// Obs receives the store.* counters, gauges, and read-latency
	// histograms.
	Obs obs.Recorder

	// compactHook, when set, is called at named stages of a compaction
	// pass; returning false aborts the pass there, simulating a crash
	// mid-compaction. Test-only.
	compactHook func(stage string) bool
}

func (cfg SegmentConfig) withDefaults() SegmentConfig {
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 1 << 20
	}
	if cfg.CompactAfter == 0 {
		cfg.CompactAfter = 6
	}
	return cfg
}

// Record kinds in the segment log.
const (
	kindCampaign = "campaign"
	kindEvents   = "events"
)

// segRecord is one framed log record.
type segRecord struct {
	LSN      uint64          `json:"lsn"`
	Kind     string          `json:"kind"`
	Campaign *CampaignRecord `json:"campaign,omitempty"`
	Events   *EventBatch     `json:"events,omitempty"`
}

// frameHeaderLen is the fixed frame prefix: u32 body length, u32 CRC32.
const frameHeaderLen = 8

// maxFrameBody caps a single record body; anything larger during recovery
// is treated as a torn length word, not an allocation request.
const maxFrameBody = 64 << 20

// segmentInfo is one on-disk segment file.
type segmentInfo struct {
	path     string
	firstLSN uint64
	f        *os.File
	size     int64
	records  int
}

// recLoc locates one live record: its frame in a segment plus — for
// campaign records — the indexed columns, kept in memory so every query
// path filters and aggregates without touching payload bytes on disk.
type recLoc struct {
	lsn  uint64
	kind string
	id   int // campaign ID (for event batches, the batch's CampaignID)
	seg  *segmentInfo
	off  int64
	n    int32
	// idx carries the campaign columns with Payload stripped (zero for
	// event batches, which are keyed by CampaignID alone).
	idx CampaignRecord
}

// Segment is the durable Store: an append-only segment log with sidecar
// indexes and background compaction. Safe for concurrent use.
type Segment struct {
	dir string
	cfg SegmentConfig

	mu sync.Mutex
	// closed is guarded by mu.
	closed bool
	// segs is guarded by mu; ascending firstLSN, last is the active segment.
	segs []*segmentInfo
	// activeW is guarded by mu; the append handle of the active segment.
	activeW *os.File
	// nextLSN is guarded by mu.
	nextLSN uint64
	// byID is guarded by mu.
	byID map[int]*recLoc
	// evByID is guarded by mu.
	evByID map[int]*recLoc
	// stats is guarded by mu.
	stats Stats

	compactCh chan struct{}
	wg        sync.WaitGroup
}

// Open opens (creating if needed) a segment store in dir: existing segments
// are recovered — from their sidecar indexes when valid, by frame scan
// otherwise, with any torn tail skipped and counted — and a fresh active
// segment is started for this process's appends.
func Open(dir string, cfg SegmentConfig) (*Segment, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: dir: %w", err)
	}
	s := &Segment{
		dir:    dir,
		cfg:    cfg,
		byID:   map[int]*recLoc{},
		evByID: map[int]*recLoc{},
	}
	if err := s.removeLeftovers(); err != nil {
		return nil, err
	}
	paths, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return nil, fmt.Errorf("store: glob: %w", err)
	}
	sort.Strings(paths)
	s.nextLSN = 1
	for _, path := range paths {
		if err := s.loadSegment(path); err != nil {
			s.closeFiles()
			return nil, err
		}
	}
	if err := s.openActiveLocked(); err != nil {
		s.closeFiles()
		return nil, err
	}
	s.publishGauges()
	if s.stats.TornRecords > 0 {
		s.count("store.torn_records", "", float64(s.stats.TornRecords))
	}
	if cfg.CompactAfter > 0 {
		s.compactCh = make(chan struct{}, 1)
		s.wg.Add(1)
		go s.compactor()
		s.mu.Lock()
		s.signalCompactLocked()
		s.mu.Unlock()
	}
	return s, nil
}

// removeLeftovers deletes artifacts an interrupted compaction can leave: a
// merged segment that never got renamed (*.log.tmp), temporary sidecars,
// and sidecars whose segment is gone.
func (s *Segment) removeLeftovers() error {
	for _, pat := range []string{"seg-*.log.tmp", "seg-*.idx.tmp"} {
		tmps, err := filepath.Glob(filepath.Join(s.dir, pat))
		if err != nil {
			return fmt.Errorf("store: glob: %w", err)
		}
		for _, p := range tmps {
			if err := os.Remove(p); err != nil {
				return fmt.Errorf("store: removing leftover %s: %w", p, err)
			}
		}
	}
	idxs, err := filepath.Glob(filepath.Join(s.dir, "seg-*.idx"))
	if err != nil {
		return fmt.Errorf("store: glob: %w", err)
	}
	for _, p := range idxs {
		log := strings.TrimSuffix(p, ".idx") + ".log"
		if _, statErr := os.Stat(log); os.IsNotExist(statErr) {
			if err := os.Remove(p); err != nil {
				return fmt.Errorf("store: removing orphan index %s: %w", p, err)
			}
		}
	}
	return nil
}

// loadSegment recovers one sealed segment: sidecar index when valid, frame
// scan (rewriting the sidecar) otherwise.
func (s *Segment) loadSegment(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: segment %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: segment %s: %w", path, err)
	}
	if fi.Size() == 0 {
		// An empty active segment from a previous open that never appended;
		// drop it rather than let one accumulate per restart.
		f.Close()
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("store: removing empty segment %s: %w", path, err)
		}
		os.Remove(strings.TrimSuffix(path, ".log") + ".idx")
		return nil
	}
	seg := &segmentInfo{path: path, f: f, size: fi.Size()}
	entries, ok := s.loadSidecar(path, fi.Size())
	if !ok {
		raw, err := os.ReadFile(path)
		if err != nil {
			f.Close()
			return fmt.Errorf("store: segment %s: %w", path, err)
		}
		var torn uint64
		entries, torn = scanFrames(raw)
		s.stats.TornRecords += torn
	}
	if len(entries) == 0 {
		// Nothing recoverable — e.g. a crash tore the very first append to a
		// fresh active segment. A torn frame was never acknowledged, and a
		// zero-entry segment contributes no LSNs, so keeping it would let
		// openActiveLocked reuse its name: O_APPEND would land new frames
		// after the torn bytes while offsets count from zero. Drop it like
		// the empty-segment case.
		f.Close()
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("store: removing unrecoverable segment %s: %w", path, err)
		}
		os.Remove(strings.TrimSuffix(path, ".log") + ".idx")
		return nil
	}
	if !ok {
		// Recovery truncates the index at the torn tail; the bytes stay in
		// the file (segments are immutable) but are never referenced again
		// and vanish at the next compaction.
		s.writeSidecar(seg, entries)
	}
	seg.records = len(entries)
	for i := range entries {
		if entries[i].LSN >= s.nextLSN {
			s.nextLSN = entries[i].LSN + 1
		}
		if seg.firstLSN == 0 || entries[i].LSN < seg.firstLSN {
			seg.firstLSN = entries[i].LSN
		}
		s.indexEntry(entries[i], seg)
	}
	s.segs = append(s.segs, seg)
	return nil
}

// sidecar is the on-disk sidecar index of a sealed segment: the indexed
// columns and frame offsets of every record, without payloads.
type sidecar struct {
	Bytes   int64      `json:"bytes"` // log size at seal; stale if mismatched
	Entries []idxEntry `json:"entries"`
}

// idxEntry is one record's index row.
type idxEntry struct {
	LSN  uint64 `json:"lsn"`
	Kind string `json:"kind"`
	Off  int64  `json:"off"`
	N    int32  `json:"n"`
	// Campaign columns (zero-valued for event batches, whose ID is the
	// batch's CampaignID).
	ID          int     `json:"id"`
	Model       string  `json:"model,omitempty"`
	State       string  `json:"state,omitempty"`
	FinishedNS  int64   `json:"finished_ns,omitempty"`
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	Queries     int64   `json:"queries,omitempty"`
	Degraded    bool    `json:"degraded,omitempty"`
}

// entryOf builds the index row for a framed record.
func entryOf(rec segRecord, off int64, n int32) idxEntry {
	e := idxEntry{LSN: rec.LSN, Kind: rec.Kind, Off: off, N: n}
	switch {
	case rec.Kind == kindCampaign && rec.Campaign != nil:
		c := rec.Campaign
		e.ID, e.Model, e.State = c.ID, c.Model, c.State
		e.FinishedNS, e.WallSeconds = c.FinishedNS, c.WallSeconds
		e.Queries, e.Degraded = c.Queries, c.Degraded
	case rec.Kind == kindEvents && rec.Events != nil:
		e.ID = rec.Events.CampaignID
	}
	return e
}

// loadSidecar reads a segment's sidecar index; ok is false (forcing a
// rescan) when the sidecar is missing, unreadable, or stale — its recorded
// log size no longer matches the file, as after an interrupted compaction.
func (s *Segment) loadSidecar(logPath string, logSize int64) ([]idxEntry, bool) {
	raw, err := os.ReadFile(strings.TrimSuffix(logPath, ".log") + ".idx")
	if err != nil {
		return nil, false
	}
	var sc sidecar
	if err := json.Unmarshal(raw, &sc); err != nil || sc.Bytes != logSize {
		return nil, false
	}
	return sc.Entries, true
}

// writeSidecar persists a segment's index atomically (tmp + fsync +
// rename). A failure is swallowed: the sidecar is an optimization, and the
// next open simply rescans the frames. The fsync before the rename matters
// even so — without it a crash can publish a torn sidecar under the final
// name, and a torn sidecar whose Bytes field happens to survive intact
// would misdirect recovery instead of falling back to the frame scan.
func (s *Segment) writeSidecar(seg *segmentInfo, entries []idxEntry) {
	raw, err := json.Marshal(sidecar{Bytes: seg.size, Entries: entries})
	if err != nil {
		return
	}
	idxPath := strings.TrimSuffix(seg.path, ".log") + ".idx"
	tmp := idxPath + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	if !s.cfg.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, idxPath); err != nil {
		os.Remove(tmp)
	}
}

// scanFrames decodes every intact frame in raw, stopping at the first torn
// one. The return counts how many unreadable tails were skipped (0 or 1 per
// scan: a torn frame ends the scan, because nothing after an interrupted
// write can be trusted).
func scanFrames(raw []byte) (entries []idxEntry, torn uint64) {
	var off int64
	for int64(len(raw))-off >= frameHeaderLen {
		rec, n, ok := decodeFrame(raw[off:])
		if !ok {
			torn++
			break
		}
		entries = append(entries, entryOf(rec, off, n))
		off += int64(n)
	}
	if t := int64(len(raw)) - off; t > 0 && torn == 0 {
		// Trailing bytes too short for a header: a torn header word.
		torn++
	}
	return entries, torn
}

// decodeFrame decodes one frame from the head of raw, returning the record
// and the full frame length. ok is false for a torn or corrupt frame.
func decodeFrame(raw []byte) (rec segRecord, n int32, ok bool) {
	if len(raw) < frameHeaderLen {
		return rec, 0, false
	}
	bodyLen := binary.LittleEndian.Uint32(raw[0:4])
	if bodyLen == 0 || bodyLen > maxFrameBody || int64(bodyLen) > int64(len(raw)-frameHeaderLen) {
		return rec, 0, false
	}
	body := raw[frameHeaderLen : frameHeaderLen+int(bodyLen)]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(raw[4:8]) {
		return rec, 0, false
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		return rec, 0, false
	}
	if rec.Kind != kindCampaign && rec.Kind != kindEvents {
		return rec, 0, false
	}
	return rec, int32(frameHeaderLen + int(bodyLen)), true
}

// encodeFrame frames one record body.
func encodeFrame(body []byte) []byte {
	out := make([]byte, frameHeaderLen+len(body))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(body))
	copy(out[frameHeaderLen:], body)
	return out
}

// indexEntry folds one index row into the live tables; the highest LSN for
// a (kind, ID) pair wins.
func (s *Segment) indexEntry(e idxEntry, seg *segmentInfo) {
	loc := &recLoc{lsn: e.LSN, kind: e.Kind, id: e.ID, seg: seg, off: e.Off, n: e.N}
	table := s.byID
	if e.Kind == kindEvents {
		table = s.evByID
	} else {
		loc.idx = CampaignRecord{
			ID: e.ID, Model: e.Model, State: e.State,
			FinishedNS: e.FinishedNS, WallSeconds: e.WallSeconds,
			Queries: e.Queries, Degraded: e.Degraded,
		}
	}
	if cur, ok := table[e.ID]; !ok || loc.lsn >= cur.lsn {
		table[e.ID] = loc
	}
}

// openActiveLocked starts a fresh active segment named by the next LSN.
// O_EXCL guarantees the file is truly fresh: appending to an existing file
// would land frames after its bytes while size-derived offsets count from
// zero. A name collision (only unregistered leftovers can collide — every
// loaded segment's name is below nextLSN) just advances the LSN; gaps are
// harmless, supersedence only needs monotonicity.
func (s *Segment) openActiveLocked() error {
	var (
		path string
		f    *os.File
	)
	for {
		path = filepath.Join(s.dir, fmt.Sprintf("seg-%016d.log", s.nextLSN))
		var err error
		f, err = os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
		if err == nil {
			break
		}
		if os.IsExist(err) {
			s.nextLSN++
			continue
		}
		return fmt.Errorf("store: segment %s: %w", path, err)
	}
	// Reads go through a separate handle so ReadAt never races the append
	// offset of the write handle.
	rf, err := os.Open(path)
	if err != nil {
		f.Close()
		return fmt.Errorf("store: segment %s: %w", path, err)
	}
	s.segs = append(s.segs, &segmentInfo{path: path, firstLSN: s.nextLSN, f: rf, size: 0})
	s.activeW = f
	return nil
}

// PutCampaign appends one campaign record durably.
func (s *Segment) PutCampaign(rec CampaignRecord) error {
	return s.append(segRecord{Kind: kindCampaign, Campaign: &rec})
}

// PutEvents appends one event batch durably.
func (s *Segment) PutEvents(batch EventBatch) error {
	return s.append(segRecord{Kind: kindEvents, Events: &batch})
}

// append frames, writes, fsyncs, and indexes one record, rotating the
// active segment by size.
func (s *Segment) append(rec segRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.activeW == nil {
		// A failed append sealed the active segment but could not open a
		// fresh one; retry before accepting the record.
		if err := s.openActiveLocked(); err != nil {
			return err
		}
	}
	rec.LSN = s.nextLSN
	body, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode: %w", err)
	}
	frame := encodeFrame(body)
	active := s.segs[len(s.segs)-1]
	if _, err := s.activeW.Write(frame); err != nil {
		s.failActiveLocked()
		return fmt.Errorf("store: append: %w", err)
	}
	if !s.cfg.NoSync {
		if err := s.activeW.Sync(); err != nil {
			s.failActiveLocked()
			return fmt.Errorf("store: fsync: %w", err)
		}
	}
	off := active.size
	active.size += int64(len(frame))
	active.records++
	s.indexEntry(entryOf(rec, off, int32(len(frame))), active)
	s.nextLSN++
	s.stats.Appends++
	s.stats.AppendBytes += uint64(len(frame))
	s.count("store.appends", "kind="+rec.Kind, 1)
	s.count("store.append_bytes", "", float64(len(frame)))
	if active.size >= s.cfg.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	s.publishGauges()
	return nil
}

// failActiveLocked recovers from a failed write or fsync on the active
// segment. The file may now hold bytes past the indexed region — a partial
// frame, or (a fsync failure) a whole unacknowledged one — so offsets
// derived from active.size arithmetic can no longer be trusted, and any
// frame appended after them would be unreachable at recovery, whose scan
// stops at the first torn frame. Reconcile the in-memory size with the
// file, consume the LSN the frame carried (it may be durable), and seal the
// segment — its sidecar covers the valid prefix — moving appends to a
// fresh file.
func (s *Segment) failActiveLocked() {
	active := s.segs[len(s.segs)-1]
	fi, statErr := s.activeW.Stat()
	if statErr == nil && fi.Size() == active.size {
		return // no bytes landed; offsets and LSN remain consistent
	}
	s.nextLSN++
	if statErr == nil {
		active.size = fi.Size()
	}
	// When stat itself failed, active.size stays stale, the sealed sidecar
	// records a mismatched size, and the next open falls back to a frame
	// scan — still correct, just slower.
	s.activeW.Close()
	s.activeW = nil
	s.writeSidecar(active, s.entriesOf(active))
	if err := s.openActiveLocked(); err != nil {
		// activeW stays nil; the next append retries the reopen.
		s.count("store.append_errors", "op=rotate", 1)
	}
}

// rotateLocked seals the active segment (sidecar written, write handle
// closed) and opens a fresh one, then wakes the compactor if enough sealed
// segments have piled up.
func (s *Segment) rotateLocked() error {
	active := s.segs[len(s.segs)-1]
	if err := s.activeW.Close(); err != nil {
		return fmt.Errorf("store: sealing %s: %w", active.path, err)
	}
	s.activeW = nil
	s.writeSidecar(active, s.entriesOf(active))
	if err := s.openActiveLocked(); err != nil {
		return err
	}
	s.signalCompactLocked()
	return nil
}

// entriesOf rebuilds a segment's index rows from the live tables plus a
// frame scan for superseded records. Sealing happens at rotation, where the
// whole segment was just written by this process, so the scan reads warm
// cache; the sidecar must cover *all* frames (compaction decides liveness
// later, at merge time).
func (s *Segment) entriesOf(seg *segmentInfo) []idxEntry {
	raw, err := os.ReadFile(seg.path)
	if err != nil {
		return nil
	}
	entries, _ := scanFrames(raw)
	return entries
}

// Campaign returns one campaign record by ID (payload included).
func (s *Segment) Campaign(id int) (CampaignRecord, bool, error) {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return CampaignRecord{}, false, ErrClosed
	}
	loc, ok := s.byID[id]
	if !ok {
		return CampaignRecord{}, false, nil
	}
	rec, err := s.readLocked(loc)
	if err != nil {
		return CampaignRecord{}, false, err
	}
	if rec.Campaign == nil {
		return CampaignRecord{}, false, fmt.Errorf("store: campaign %d: record kind %q", id, rec.Kind)
	}
	s.observe("store.read_seconds", "op=lookup", time.Since(start).Seconds())
	return *rec.Campaign, true, nil
}

// Campaigns lists matching records ascending by ID. Filtering and
// pagination run over the in-memory index columns; only the returned page's
// payloads are read from disk.
func (s *Segment) Campaigns(q Query) ([]CampaignRecord, error) {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	locs := make([]*recLoc, 0, len(s.byID))
	for _, loc := range s.byID {
		if q.Match(loc.idx) {
			locs = append(locs, loc)
		}
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i].idx.ID < locs[j].idx.ID })
	if q.Offset > 0 {
		if q.Offset >= len(locs) {
			locs = nil
		} else {
			locs = locs[q.Offset:]
		}
	}
	if q.Limit > 0 && q.Limit < len(locs) {
		locs = locs[:q.Limit]
	}
	out := make([]CampaignRecord, 0, len(locs))
	for _, loc := range locs {
		rec, err := s.readLocked(loc)
		if err != nil {
			return nil, err
		}
		if rec.Campaign != nil {
			out = append(out, *rec.Campaign)
		}
	}
	s.observe("store.read_seconds", "op=scan", time.Since(start).Seconds())
	return out, nil
}

// AggregateByModel folds the history into per-model aggregates straight
// from the in-memory index columns — no disk reads at all.
func (s *Segment) AggregateByModel() ([]ModelAggregate, error) {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	recs := make([]CampaignRecord, 0, len(s.byID))
	for _, loc := range s.byID {
		recs = append(recs, loc.idx)
	}
	sortByID(recs)
	out := aggregateRecords(recs)
	s.observe("store.read_seconds", "op=aggregate", time.Since(start).Seconds())
	return out, nil
}

// Events returns the stored event batch for one campaign.
func (s *Segment) Events(campaignID int) (EventBatch, bool, error) {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return EventBatch{}, false, ErrClosed
	}
	loc, ok := s.evByID[campaignID]
	if !ok {
		return EventBatch{}, false, nil
	}
	rec, err := s.readLocked(loc)
	if err != nil {
		return EventBatch{}, false, err
	}
	if rec.Events == nil {
		return EventBatch{}, false, fmt.Errorf("store: events %d: record kind %q", campaignID, rec.Kind)
	}
	s.observe("store.read_seconds", "op=lookup", time.Since(start).Seconds())
	return *rec.Events, true, nil
}

// readLocked reads and decodes one frame. Callers hold s.mu, which keeps
// the segment set stable under compaction; the frame region itself is
// immutable once indexed.
func (s *Segment) readLocked(loc *recLoc) (segRecord, error) {
	buf := make([]byte, loc.n)
	if _, err := loc.seg.f.ReadAt(buf, loc.off); err != nil {
		return segRecord{}, fmt.Errorf("store: read %s@%d: %w", loc.seg.path, loc.off, err)
	}
	rec, _, ok := decodeFrame(buf)
	if !ok {
		return segRecord{}, fmt.Errorf("store: read %s@%d: corrupt frame", loc.seg.path, loc.off)
	}
	return rec, nil
}

// Stats reports the store's counters.
func (s *Segment) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

func (s *Segment) statsLocked() Stats {
	st := s.stats
	st.Records = len(s.byID)
	st.EventBatches = len(s.evByID)
	st.Segments = len(s.segs)
	for _, seg := range s.segs {
		st.LiveBytes += seg.size
	}
	return st
}

// Close seals the active segment (sidecar included, so the next open reads
// indexes only), stops the compactor, and closes every file handle.
func (s *Segment) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	if s.compactCh != nil {
		close(s.compactCh)
	}
	var sealErr error
	if s.activeW != nil {
		active := s.segs[len(s.segs)-1]
		if err := s.activeW.Close(); err != nil {
			sealErr = fmt.Errorf("store: close %s: %w", active.path, err)
		} else {
			s.writeSidecar(active, s.entriesOf(active))
		}
		s.activeW = nil
	}
	s.closeFiles()
	s.mu.Unlock()
	s.wg.Wait()
	return sealErr
}

// closeFiles closes every read handle. Callers hold s.mu or have exclusive
// access (a failed Open).
func (s *Segment) closeFiles() {
	for _, seg := range s.segs {
		if seg.f != nil {
			seg.f.Close()
			seg.f = nil
		}
	}
}

// publishGauges refreshes the store.* gauges. Callers hold s.mu; Recorder
// implementations take their own locks and never call back into the store.
func (s *Segment) publishGauges() {
	if s.cfg.Obs == nil {
		return
	}
	st := s.statsLocked()
	s.cfg.Obs.Gauge("store.records", "", float64(st.Records))
	s.cfg.Obs.Gauge("store.segments", "", float64(st.Segments))
	s.cfg.Obs.Gauge("store.live_bytes", "", float64(st.LiveBytes))
}

func (s *Segment) count(name, label string, v float64) {
	if s.cfg.Obs != nil {
		s.cfg.Obs.Count(name, label, v)
	}
}

func (s *Segment) observe(name, label string, v float64) {
	if s.cfg.Obs != nil {
		s.cfg.Obs.Observe(name, label, v)
	}
}
