package store

// Compaction folds the sealed segments into one: live records (the highest
// LSN per (kind, ID) pair) are copied frame-verbatim into a merged segment,
// superseded records are dropped, and the inputs are deleted. Supersedence
// is decided by LSN, so the merged segment keeps the original LSNs and the
// recovery fold stays correct no matter how a crash interleaves with the
// pass. The crash discipline, in order:
//
//  1. write the merged log to seg-<firstLSN>.log.tmp and fsync it
//  2. delete the first input's sidecar (its log is about to be replaced)
//  3. rename the merged log over the first input (atomic)
//  4. reopen the merged log (while the input handles still serve reads)
//  5. delete the remaining inputs and their sidecars
//  6. write the merged segment's sidecar
//
// A crash before (3) leaves only a .tmp, removed at the next open. A crash
// between (3) and (5) leaves the merged log plus stale inputs whose records
// are duplicates of merged LSNs — the recovery fold dedupes them. A crash
// before (6) leaves the merged log without a sidecar (or, had the sidecar
// survived from the replaced input, with a stale one whose size mismatches)
// — either way recovery falls back to a frame scan and rewrites it.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// compactor is the background compaction loop: one pass per wake-up signal
// from rotation (or Open), serialized by the loop itself.
func (s *Segment) compactor() {
	defer s.wg.Done()
	for range s.compactCh {
		if err := s.Compact(); err != nil && err != ErrClosed {
			s.count("store.compaction_errors", "", 1)
		}
	}
}

// signalCompactLocked wakes the compactor when enough sealed segments have
// accumulated. Callers hold s.mu.
func (s *Segment) signalCompactLocked() {
	if s.compactCh == nil || s.closed {
		return
	}
	if len(s.segs)-1 < s.cfg.CompactAfter {
		return
	}
	select {
	case s.compactCh <- struct{}{}:
	default: // a pass is already pending
	}
}

// Compact merges every sealed segment into one, dropping superseded
// records. It is a no-op with fewer than two sealed segments unless the one
// sealed segment carries dead records. The pass holds the store lock: at
// the segment sizes compaction targets this is milliseconds, and it keeps
// every read and the index swap trivially consistent.
func (s *Segment) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	inputs := s.segs[:len(s.segs)-1] // all sealed; the last is active
	if len(inputs) == 0 {
		return nil
	}
	live := s.liveIn(inputs)
	totalRecords := 0
	for _, seg := range inputs {
		totalRecords += seg.records
	}
	if len(inputs) < 2 && totalRecords == len(live) {
		return nil // single sealed segment, nothing dead: nothing to gain
	}
	dropped := uint64(totalRecords - len(live))

	merged, entries, err := s.writeMerged(inputs[0].firstLSN, live)
	if err != nil {
		return err
	}
	if !s.hook("merged-written") {
		return nil // simulated crash: .tmp cleaned up at next open
	}
	os.Remove(strings.TrimSuffix(inputs[0].path, ".log") + ".idx")
	if err := os.Rename(merged.path+".tmp", merged.path); err != nil {
		return fmt.Errorf("store: compaction rename: %w", err)
	}
	if !s.hook("renamed") {
		return nil // simulated crash: stale inputs dedupe by LSN at next open
	}
	// Reopen the merged segment before touching the inputs: if this open
	// fails, the in-memory state still points at the input segments, whose
	// open handles keep serving reads (the renamed-over first input's fd
	// pins its old inode), and the next open dedupes the stale inputs by
	// LSN. Destroying the inputs first would leave every recLoc referencing
	// a closed handle.
	f, err := os.Open(merged.path)
	if err != nil {
		return fmt.Errorf("store: reopening merged segment: %w", err)
	}
	if !s.hook("reopened") {
		f.Close()
		return nil // simulated crash: merged log live, stale inputs dedupe
	}
	for _, seg := range inputs {
		seg.f.Close()
		if seg.path != merged.path {
			os.Remove(seg.path)
		}
		os.Remove(strings.TrimSuffix(seg.path, ".log") + ".idx")
	}
	s.writeSidecar(merged, entries)
	merged.f = f
	active := s.segs[len(s.segs)-1]
	s.segs = []*segmentInfo{merged, active}
	for _, e := range entries {
		s.indexEntry(e, merged)
	}
	s.stats.Compactions++
	s.stats.CompactedRecords += dropped
	s.count("store.compactions", "", 1)
	s.count("store.compacted_records", "", float64(dropped))
	s.publishGauges()
	return nil
}

// liveIn returns the live records located in the given segments, ascending
// LSN (the order the merged segment preserves).
func (s *Segment) liveIn(inputs []*segmentInfo) []*recLoc {
	in := map[*segmentInfo]bool{}
	for _, seg := range inputs {
		in[seg] = true
	}
	var live []*recLoc
	for _, loc := range s.byID {
		if in[loc.seg] {
			live = append(live, loc)
		}
	}
	for _, loc := range s.evByID {
		if in[loc.seg] {
			live = append(live, loc)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].lsn < live[j].lsn })
	return live
}

// writeMerged copies the live frames verbatim into <firstLSN>.log.tmp,
// fsyncs it, and returns the (not yet renamed) segment plus its index rows.
func (s *Segment) writeMerged(firstLSN uint64, live []*recLoc) (*segmentInfo, []idxEntry, error) {
	merged := &segmentInfo{
		path:     s.segPath(firstLSN),
		firstLSN: firstLSN,
		records:  len(live),
	}
	f, err := os.OpenFile(merged.path+".tmp", os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: compaction tmp: %w", err)
	}
	defer f.Close()
	entries := make([]idxEntry, 0, len(live))
	for _, loc := range live {
		buf := make([]byte, loc.n)
		if _, err := loc.seg.f.ReadAt(buf, loc.off); err != nil {
			return nil, nil, fmt.Errorf("store: compaction read %s@%d: %w", loc.seg.path, loc.off, err)
		}
		if _, err := f.Write(buf); err != nil {
			return nil, nil, fmt.Errorf("store: compaction write: %w", err)
		}
		entries = append(entries, idxEntry{
			LSN: loc.lsn, Kind: loc.kind, Off: merged.size, N: loc.n,
			ID: loc.id, Model: loc.idx.Model, State: loc.idx.State,
			FinishedNS: loc.idx.FinishedNS, WallSeconds: loc.idx.WallSeconds,
			Queries: loc.idx.Queries, Degraded: loc.idx.Degraded,
		})
		merged.size += int64(loc.n)
	}
	if !s.cfg.NoSync {
		if err := f.Sync(); err != nil {
			return nil, nil, fmt.Errorf("store: compaction fsync: %w", err)
		}
	}
	return merged, entries, nil
}

// segPath names a segment file by its first LSN.
func (s *Segment) segPath(firstLSN uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%016d.log", firstLSN))
}

// hook runs the test-only compaction crash hook; true means keep going.
func (s *Segment) hook(stage string) bool {
	if s.cfg.compactHook == nil {
		return true
	}
	return s.cfg.compactHook(stage)
}
