package store

import (
	"errors"
	"sync"
)

// Memory is the in-process Store: the backend a daemon without a data
// directory uses. Same query semantics and ordering as Segment over the
// same contents, no durability.
type Memory struct {
	mu       sync.Mutex
	closed   bool
	byID     map[int]CampaignRecord
	events   map[int]EventBatch
	appends  uint64
	appendBy uint64
}

// ErrClosed rejects operations on a closed store.
var ErrClosed = errors.New("store: closed")

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{byID: map[int]CampaignRecord{}, events: map[int]EventBatch{}}
}

// PutCampaign inserts or supersedes one campaign record.
func (m *Memory) PutCampaign(rec CampaignRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.byID[rec.ID] = rec
	m.appends++
	m.appendBy += uint64(recordBytes(rec))
	return nil
}

// Campaign returns the record for one campaign ID.
func (m *Memory) Campaign(id int) (CampaignRecord, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return CampaignRecord{}, false, ErrClosed
	}
	rec, ok := m.byID[id]
	return rec, ok, nil
}

// Campaigns lists matching records in ascending-ID order, paginated.
func (m *Memory) Campaigns(q Query) ([]CampaignRecord, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	out := make([]CampaignRecord, 0, len(m.byID))
	for _, rec := range m.byID {
		if q.Match(rec) {
			out = append(out, rec)
		}
	}
	// Map iteration is randomized; the listing contract is ascending ID.
	sortByID(out)
	return applyWindow(out, q), nil
}

// AggregateByModel folds the table into per-model aggregates.
func (m *Memory) AggregateByModel() ([]ModelAggregate, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	recs := make([]CampaignRecord, 0, len(m.byID))
	for _, rec := range m.byID {
		recs = append(recs, rec)
	}
	// aggregateRecords sorts by model internally; record order is irrelevant
	// to the fold, but sort anyway so both backends feed it identically.
	sortByID(recs)
	return aggregateRecords(recs), nil
}

// PutEvents inserts or supersedes one campaign's event batch.
func (m *Memory) PutEvents(batch EventBatch) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.events[batch.CampaignID] = batch
	m.appends++
	m.appendBy += uint64(len(batch.Events))
	return nil
}

// Events returns the stored event batch for one campaign.
func (m *Memory) Events(campaignID int) (EventBatch, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return EventBatch{}, false, ErrClosed
	}
	b, ok := m.events[campaignID]
	return b, ok, nil
}

// Stats reports the table's counters.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	var live int64
	for _, rec := range m.byID {
		live += int64(recordBytes(rec))
	}
	return Stats{
		Records:      len(m.byID),
		EventBatches: len(m.events),
		Appends:      m.appends,
		AppendBytes:  m.appendBy,
		LiveBytes:    live,
	}
}

// Close marks the store closed; later operations return ErrClosed.
func (m *Memory) Close() error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	return nil
}

// recordBytes approximates one record's stored size: the payload dominates,
// and the approximation only feeds the byte counters.
func recordBytes(rec CampaignRecord) int {
	return len(rec.Payload) + len(rec.Model) + len(rec.State) + 48
}
