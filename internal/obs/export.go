package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// traceEvent is one Chrome-trace event (the "JSON Array Format" Perfetto and
// chrome://tracing both load).
type traceEvent struct {
	Name  string  `json:"name"`
	Cat   string  `json:"cat,omitempty"`
	Phase string  `json:"ph"`
	TS    float64 `json:"ts"` // microseconds
	PID   int     `json:"pid"`
	TID   int     `json:"tid"`
}

// traceFile is the top-level Chrome-trace document.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// TraceJSON renders every recorded span as a Chrome-trace/Perfetto JSON
// document. Spans are emitted depth-first in start order, so B/E pairs nest
// properly even when timestamps collide at the export resolution. Spans that
// never ended are closed at the latest timestamp the collector has seen.
func (c *Collector) TraceJSON() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	latest := c.base
	for _, s := range c.spans {
		if s.ended && s.end.After(latest) {
			latest = s.end
		}
		if s.start.After(latest) {
			latest = s.start
		}
	}

	var roots []uint64
	for _, id := range c.order {
		s := c.spans[id]
		if _, ok := c.spans[s.parent]; !ok {
			roots = append(roots, id)
		}
	}

	ts := func(t time.Time) float64 {
		us := float64(t.Sub(c.base)) / float64(time.Microsecond)
		if us < 0 {
			us = 0
		}
		return us
	}
	var events []traceEvent
	var emit func(id uint64)
	emit = func(id uint64) {
		s := c.spans[id]
		end := s.end
		if !s.ended {
			end = latest
		}
		events = append(events, traceEvent{Name: s.name, Cat: "attack", Phase: "B", TS: ts(s.start), PID: 1, TID: 1})
		for _, ch := range s.children {
			emit(ch)
		}
		events = append(events, traceEvent{Name: s.name, Cat: "attack", Phase: "E", TS: ts(end), PID: 1, TID: 1})
	}
	for _, id := range roots {
		emit(id)
	}
	return json.MarshalIndent(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"}, "", " ")
}

// WriteTrace writes the Chrome-trace JSON to w.
func (c *Collector) WriteTrace(w io.Writer) error {
	b, err := c.TraceJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// HistogramSnapshot is the exported form of one log-bucketed histogram.
// Bucket keys are the upper bound of the bucket, formatted with %g.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Min     float64           `json:"min"`
	Max     float64           `json:"max"`
	Buckets map[string]uint64 `json:"buckets"`
}

// MetricsSnapshot is a point-in-time copy of every metric series.
type MetricsSnapshot struct {
	Counters   map[string]float64           `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Metrics returns a deep copy of the current metric state.
func (c *Collector) Metrics() MetricsSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := MetricsSnapshot{
		Counters:   map[string]float64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for k, v := range c.counters {
		snap.Counters[k.String()] = v
	}
	for k, v := range c.gauges {
		snap.Gauges[k.String()] = v
	}
	for k, h := range c.hists {
		hs := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max, Buckets: map[string]uint64{}}
		for b, n := range h.buckets {
			hs.Buckets[fmt.Sprintf("%g", pow2(b))] = n
		}
		snap.Histograms[k.String()] = hs
	}
	return snap
}

// pow2 returns 2^i as a float64.
func pow2(i int) float64 {
	v := 1.0
	for ; i > 0; i-- {
		v *= 2
	}
	for ; i < 0; i++ {
		v /= 2
	}
	return v
}

// MetricsJSON renders the metrics snapshot as indented JSON.
func (c *Collector) MetricsJSON() ([]byte, error) {
	return json.MarshalIndent(c.Metrics(), "", " ")
}

// WriteMetrics writes the metrics JSON to w.
func (c *Collector) WriteMetrics(w io.Writer) error {
	b, err := c.MetricsJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// treeAggregateMin is the sibling count above which same-named spans are
// collapsed into one aggregate tree line (a probing campaign records
// thousands of per-position spans; the tree stays readable).
const treeAggregateMin = 4

// Tree renders the span hierarchy as an indented human-readable tree with
// per-span wall durations. Runs of more than treeAggregateMin same-named
// siblings collapse into one aggregate line.
func (c *Collector) Tree() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sb strings.Builder
	var roots []uint64
	for _, id := range c.order {
		if _, ok := c.spans[c.spans[id].parent]; !ok {
			roots = append(roots, id)
		}
	}
	c.renderLevel(&sb, roots, 0)
	return sb.String()
}

// renderLevel prints one sibling group at the given depth.
func (c *Collector) renderLevel(sb *strings.Builder, ids []uint64, depth int) {
	// Group consecutive same-named siblings.
	type group struct {
		name  string
		spans []*spanRec
	}
	var groups []group
	for _, id := range ids {
		s := c.spans[id]
		if n := len(groups); n > 0 && groups[n-1].name == s.name {
			groups[n-1].spans = append(groups[n-1].spans, s)
			continue
		}
		groups = append(groups, group{name: s.name, spans: []*spanRec{s}})
	}
	indent := strings.Repeat("  ", depth)
	for _, g := range groups {
		if len(g.spans) > treeAggregateMin {
			var total time.Duration
			for _, s := range g.spans {
				total += c.durationOf(s)
			}
			fmt.Fprintf(sb, "%s%-*s x%-6d total %-10s avg %s\n",
				indent, 28-2*depth, g.name, len(g.spans), fmtDur(total), fmtDur(total/time.Duration(len(g.spans))))
			continue
		}
		for _, s := range g.spans {
			fmt.Fprintf(sb, "%s%-*s %s\n", indent, 28-2*depth, s.name, fmtDur(c.durationOf(s)))
			if len(s.children) > 0 {
				c.renderLevel(sb, s.children, depth+1)
			}
		}
	}
}

// durationOf returns a span's wall duration (0 when it never ended).
func (c *Collector) durationOf(s *spanRec) time.Duration {
	if !s.ended {
		return 0
	}
	return s.end.Sub(s.start)
}

// fmtDur formats a duration compactly with millisecond-scale precision.
func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}

// SortedCounterKeys returns every counter series name in deterministic
// order, for summary printing.
func (c *Collector) SortedCounterKeys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := sortedKeys(c.counters)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = k.String()
	}
	return out
}
