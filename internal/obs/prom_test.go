package obs

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestBucketOfEdges pins the log-bucket edge cases: non-positive values and
// NaN sink to the lowest bucket, exact powers of two land on their own
// index (bucket i covers (2^(i-1), 2^i]), and +Inf clamps to the highest
// bucket rather than falling through the float→int conversion.
func TestBucketOfEdges(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, minBucket},
		{-1e300, minBucket},
		{math.Inf(-1), minBucket},
		{math.NaN(), minBucket},
		{1e-300, minBucket},
		// Exact powers of two: 2^i is the inclusive upper edge of bucket i.
		{0.25, -2},
		{0.5, -1},
		{1, 0},
		{2, 1},
		{1024, 10},
		{math.Pow(2, 39), 39},
		{math.Pow(2, 40), 40},
		// Just past a power of two rounds up to the next bucket.
		{math.Nextafter(1, 2), 1},
		{1e300, maxBucket},
		{math.Inf(1), maxBucket},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

// promSample matches one Prometheus text-format sample line.
var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_:]+="[^"]*"(,[a-zA-Z0-9_:]+="[^"]*")*\})? [^ ]+$`)

// TestPromTextFormatAndCumulativeInvariant exercises the exporter end to
// end: every sample line is syntactically valid Prometheus text, and every
// histogram satisfies the cumulative-bucket invariant — bucket counts are
// monotone non-decreasing in `le` order and the `+Inf` bucket equals the
// sample count.
func TestPromTextFormatAndCumulativeInvariant(t *testing.T) {
	col := NewCollector()
	col.Count("victim.inferences", "", 41)
	col.Count("victim.retries", "class=transient", 2)
	col.Count("victim.retries", "class=trace_corrupt", 3)
	col.Gauge("solution.space.count", "", 12)
	for _, v := range []float64{0.1, 0.25, 0.26, 1, 3, 1024, math.Inf(1), -1} {
		col.Observe("stage.seconds", "stage=probe", v)
	}
	col.Observe("stage.seconds", "stage=solve", 0.5)

	text := col.PromText()
	var bucketCounts []uint64
	var infCount, sampleCount uint64
	seenTypes := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			seenTypes[fields[2]+" "+fields[3]] = true
			continue
		}
		if !promSample.MatchString(line) {
			t.Fatalf("invalid Prometheus sample line: %q", line)
		}
		switch {
		case strings.HasPrefix(line, `stage_seconds_bucket{stage="probe",le="+Inf"}`):
			infCount = parseUint(t, line)
		case strings.HasPrefix(line, `stage_seconds_bucket{stage="probe",`):
			bucketCounts = append(bucketCounts, parseUint(t, line))
		case strings.HasPrefix(line, `stage_seconds_count{stage="probe"}`):
			sampleCount = parseUint(t, line)
		}
	}
	for _, want := range []string{
		"victim_inferences counter",
		"victim_retries counter",
		"solution_space_count gauge",
		"stage_seconds histogram",
	} {
		if !seenTypes[want] {
			t.Errorf("missing TYPE declaration %q in:\n%s", want, text)
		}
	}
	if len(bucketCounts) == 0 {
		t.Fatalf("no le buckets for stage=probe in:\n%s", text)
	}
	last := uint64(0)
	for i, n := range bucketCounts {
		if n < last {
			t.Fatalf("cumulative bucket counts regress at index %d: %v", i, bucketCounts)
		}
		last = n
	}
	if infCount < last {
		t.Fatalf("+Inf bucket %d below last finite bucket %d", infCount, last)
	}
	if sampleCount != 8 || infCount != sampleCount {
		t.Fatalf("+Inf bucket = %d, _count = %d, want both 8", infCount, sampleCount)
	}
	// The labelled counter samples carry their values.
	if !strings.Contains(text, `victim_retries{class="transient"} 2`) {
		t.Fatalf("missing labelled counter sample in:\n%s", text)
	}
	if !strings.Contains(text, "victim_inferences 41") {
		t.Fatalf("missing unlabelled counter sample in:\n%s", text)
	}
}

func parseUint(t *testing.T, line string) uint64 {
	t.Helper()
	fields := strings.Fields(line)
	n, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", line, err)
	}
	return n
}
