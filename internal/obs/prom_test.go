package obs

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestBucketOfEdges pins the log-bucket edge cases: non-positive values and
// NaN sink to the lowest bucket, exact powers of two land on their own
// index (bucket i covers (2^(i-1), 2^i]), and +Inf clamps to the highest
// bucket rather than falling through the float→int conversion.
func TestBucketOfEdges(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, minBucket},
		{-1e300, minBucket},
		{math.Inf(-1), minBucket},
		{math.NaN(), minBucket},
		{1e-300, minBucket},
		// Exact powers of two: 2^i is the inclusive upper edge of bucket i.
		{0.25, -2},
		{0.5, -1},
		{1, 0},
		{2, 1},
		{1024, 10},
		{math.Pow(2, 39), 39},
		{math.Pow(2, 40), 40},
		// Just past a power of two rounds up to the next bucket.
		{math.Nextafter(1, 2), 1},
		{1e300, maxBucket},
		{math.Inf(1), maxBucket},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

// promSample matches one Prometheus text-format sample line.
var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_:]+="[^"]*"(,[a-zA-Z0-9_:]+="[^"]*")*\})? [^ ]+$`)

// TestPromTextFormatAndCumulativeInvariant exercises the exporter end to
// end: every sample line is syntactically valid Prometheus text, and every
// histogram satisfies the cumulative-bucket invariant — bucket counts are
// monotone non-decreasing in `le` order and the `+Inf` bucket equals the
// sample count.
func TestPromTextFormatAndCumulativeInvariant(t *testing.T) {
	col := NewCollector()
	col.Count("victim.inferences", "", 41)
	col.Count("victim.retries", "class=transient", 2)
	col.Count("victim.retries", "class=trace_corrupt", 3)
	col.Gauge("solution.space.count", "", 12)
	for _, v := range []float64{0.1, 0.25, 0.26, 1, 3, 1024, math.Inf(1), -1} {
		col.Observe("stage.seconds", "stage=probe", v)
	}
	col.Observe("stage.seconds", "stage=solve", 0.5)

	text := col.PromText()
	var bucketCounts []uint64
	var infCount, sampleCount uint64
	seenTypes := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			seenTypes[fields[2]+" "+fields[3]] = true
			continue
		}
		if !promSample.MatchString(line) {
			t.Fatalf("invalid Prometheus sample line: %q", line)
		}
		switch {
		case strings.HasPrefix(line, `stage_seconds_bucket{stage="probe",le="+Inf"}`):
			infCount = parseUint(t, line)
		case strings.HasPrefix(line, `stage_seconds_bucket{stage="probe",`):
			bucketCounts = append(bucketCounts, parseUint(t, line))
		case strings.HasPrefix(line, `stage_seconds_count{stage="probe"}`):
			sampleCount = parseUint(t, line)
		}
	}
	for _, want := range []string{
		"victim_inferences counter",
		"victim_retries counter",
		"solution_space_count gauge",
		"stage_seconds histogram",
	} {
		if !seenTypes[want] {
			t.Errorf("missing TYPE declaration %q in:\n%s", want, text)
		}
	}
	if len(bucketCounts) == 0 {
		t.Fatalf("no le buckets for stage=probe in:\n%s", text)
	}
	last := uint64(0)
	for i, n := range bucketCounts {
		if n < last {
			t.Fatalf("cumulative bucket counts regress at index %d: %v", i, bucketCounts)
		}
		last = n
	}
	if infCount < last {
		t.Fatalf("+Inf bucket %d below last finite bucket %d", infCount, last)
	}
	if sampleCount != 8 || infCount != sampleCount {
		t.Fatalf("+Inf bucket = %d, _count = %d, want both 8", infCount, sampleCount)
	}
	// The labelled counter samples carry their values.
	if !strings.Contains(text, `victim_retries{class="transient"} 2`) {
		t.Fatalf("missing labelled counter sample in:\n%s", text)
	}
	if !strings.Contains(text, "victim_inferences 41") {
		t.Fatalf("missing unlabelled counter sample in:\n%s", text)
	}
}

// TestPromNameEscaping pins the name-sanitization edge cases: leading
// digits must not survive (Prometheus names may not start with a digit),
// unicode collapses to underscores rune-by-rune, and the legal charset
// passes through untouched.
func TestPromNameEscaping(t *testing.T) {
	cases := []struct{ in, want string }{
		{"stage.seconds", "stage_seconds"},
		{"7layers", "_layers"},   // leading digit escaped
		{"layer7", "layer7"},     // interior digit kept
		{"0", "_"},               // single leading digit
		{"temp°c", "temp_c"},     // one unicode rune, one underscore
		{"métrique", "m_trique"}, // mid-word unicode
		{"名前", "__"},             // all-unicode name still non-empty
		{"a:b_c", "a:b_c"},       // colons and underscores are legal
		{"sym.intern-hit/rate", "sym_intern_hit_rate"},
		{"", ""},
	}
	for _, c := range cases {
		if got := promName(c.in); got != c.want {
			t.Errorf("promName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestPromLabelsEscaping pins label rendering: the first '=' splits key from
// value, so values containing '=' stay intact; keyless labels get the
// "label" key; multiple pairs split on commas; label keys are sanitized like
// metric names.
func TestPromLabelsEscaping(t *testing.T) {
	cases := []struct{ label, le, want string }{
		{"", "", ""},
		{"", "2", `{le="2"}`},
		{"stage=probe", "", `{stage="probe"}`},
		// '=' inside the value: only the first '=' is the separator.
		{"expr=a=b", "", `{expr="a=b"}`},
		{"filter=keep==0.6", "", `{filter="keep==0.6"}`},
		// No '=' at all: the value lands under the fallback key.
		{"orphan", "", `{label="orphan"}`},
		// Multiple pairs, plus an le bound appended last.
		{"stage=probe,layer=conv1", "4", `{stage="probe",layer="conv1",le="4"}`},
		// Label keys get the same charset treatment as metric names.
		{"7key=v", "", `{_key="v"}`},
		{"ké=v", "", `{k_="v"}`},
	}
	for _, c := range cases {
		if got := promLabels(c.label, c.le); got != c.want {
			t.Errorf("promLabels(%q, %q) = %q, want %q", c.label, c.le, got, c.want)
		}
	}
}

// TestPromTextSurvivesHostileSeries renders a collector fed adversarial
// names and labels and checks every emitted sample still parses as
// Prometheus text — the exporter must sanitize, never emit garbage.
func TestPromTextSurvivesHostileSeries(t *testing.T) {
	col := NewCollector()
	col.Count("7seg.display", "", 1)
	col.Count("名前.metric", "キー=値", 2)
	col.Gauge("g", "expr=a==b,other=c", 3)
	col.Observe("h°", "k=v=w", 0.5)
	for _, line := range strings.Split(strings.TrimRight(col.PromText(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promSample.MatchString(line) {
			t.Errorf("hostile series produced invalid sample line: %q", line)
		}
	}
}

func parseUint(t *testing.T, line string) uint64 {
	t.Helper()
	fields := strings.Fields(line)
	n, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", line, err)
	}
	return n
}
