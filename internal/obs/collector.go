package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Collector is the standard in-memory Recorder: it keeps every span and
// metric of a campaign and can export them as a Chrome-trace/Perfetto JSON,
// a metrics JSON, or a human-readable span tree. Safe for concurrent use.
type Collector struct {
	mu    sync.Mutex
	base  time.Time
	spans map[uint64]*spanRec
	order []uint64 // span IDs in start order

	counters map[metricKey]float64
	gauges   map[metricKey]float64
	hists    map[metricKey]*histogram
}

// metricKey identifies one metric series.
type metricKey struct{ name, label string }

// String renders the conventional name{label} form.
func (k metricKey) String() string {
	if k.label == "" {
		return k.name
	}
	return k.name + "{" + k.label + "}"
}

// spanRec is one recorded span.
type spanRec struct {
	id, parent uint64
	name       string
	start, end time.Time
	ended      bool
	children   []uint64
}

// NewCollector returns an empty Collector; its trace timestamps are relative
// to the moment of creation.
func NewCollector() *Collector {
	return &Collector{
		base:     time.Now(),
		spans:    map[uint64]*spanRec{},
		counters: map[metricKey]float64{},
		gauges:   map[metricKey]float64{},
		hists:    map[metricKey]*histogram{},
	}
}

// SpanStart implements Recorder.
func (c *Collector) SpanStart(name string, id, parent uint64, start time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spans[id] = &spanRec{id: id, parent: parent, name: name, start: start}
	c.order = append(c.order, id)
	if p, ok := c.spans[parent]; ok {
		p.children = append(p.children, id)
	}
}

// SpanEnd implements Recorder. Ends for unknown spans are ignored (the span
// may predate the collector).
func (c *Collector) SpanEnd(id uint64, end time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.spans[id]; ok && !s.ended {
		s.end, s.ended = end, true
	}
}

// Count implements Recorder.
func (c *Collector) Count(name, label string, delta float64) {
	c.mu.Lock()
	c.counters[metricKey{name, label}] += delta
	c.mu.Unlock()
}

// Gauge implements Recorder.
func (c *Collector) Gauge(name, label string, v float64) {
	c.mu.Lock()
	c.gauges[metricKey{name, label}] = v
	c.mu.Unlock()
}

// Observe implements Recorder.
func (c *Collector) Observe(name, label string, v float64) {
	c.mu.Lock()
	k := metricKey{name, label}
	h, ok := c.hists[k]
	if !ok {
		h = &histogram{buckets: map[int]uint64{}}
		c.hists[k] = h
	}
	h.observe(v)
	c.mu.Unlock()
}

// CounterValue returns the current value of counter name{label} (0 when the
// series was never written).
func (c *Collector) CounterValue(name, label string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters[metricKey{name, label}]
}

// GaugeValue returns the current value of gauge name{label}.
func (c *Collector) GaugeValue(name, label string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gauges[metricKey{name, label}]
}

// histogram is a fixed log-scale histogram: values fall into power-of-two
// buckets, index i covering (2^(i-1), 2^i]. The range is clamped to
// [minBucket, maxBucket], wide enough for nanoseconds through gigabytes.
type histogram struct {
	count    uint64
	sum      float64
	min, max float64
	buckets  map[int]uint64
}

const (
	minBucket = -40 // 2^-40 ≈ 9.1e-13
	maxBucket = 40  // 2^40 ≈ 1.1e12
)

// bucketOf returns the log-scale bucket index for v. Non-positive values
// and NaN fall into the lowest bucket; +Inf clamps to the highest (the
// float-to-int conversion of an infinite Log2 is platform-defined, so the
// clamp must happen before it).
func bucketOf(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return minBucket
	}
	if math.IsInf(v, 1) {
		return maxBucket
	}
	i := int(math.Ceil(math.Log2(v)))
	if i < minBucket {
		i = minBucket
	}
	if i > maxBucket {
		i = maxBucket
	}
	return i
}

func (h *histogram) observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// sortedKeys returns every metric key of the map in deterministic order.
func sortedKeys[V any](m map[metricKey]V) []metricKey {
	keys := make([]metricKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].label < keys[j].label
	})
	return keys
}
