package obs

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestUnendedSpanClosesAtLatestTimestamp pins the export rule for spans
// that never ended: their E event is emitted at the latest timestamp the
// collector has observed (here, the end of a later sibling), never before.
func TestUnendedSpanClosesAtLatestTimestamp(t *testing.T) {
	col := NewCollector()
	base := time.Now()
	col.SpanStart("root", 1, 0, base)
	col.SpanStart("dangling", 2, 1, base.Add(1*time.Millisecond))
	col.SpanStart("later", 3, 1, base.Add(2*time.Millisecond))
	col.SpanEnd(3, base.Add(50*time.Millisecond)) // the latest observation
	// Spans 1 and 2 never end.

	raw, err := col.TraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	latest := 0.0
	for _, ev := range doc.TraceEvents {
		if ev.TS > latest {
			latest = ev.TS
		}
	}
	closes := map[string]float64{}
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "E" {
			closes[ev.Name] = ev.TS
		}
	}
	for _, name := range []string{"root", "dangling", "later"} {
		if _, ok := closes[name]; !ok {
			t.Fatalf("span %q has no E event:\n%s", name, raw)
		}
	}
	// "later" genuinely ended 50ms in; both unended spans must be closed
	// exactly there, the latest observed timestamp.
	for _, name := range []string{"root", "dangling"} {
		if closes[name] != latest {
			t.Errorf("unended span %q closed at %v, want latest %v", name, closes[name], latest)
		}
	}
	if latest < 45e3 { // microseconds
		t.Fatalf("latest timestamp %v us, want ~50ms from the ended span", latest)
	}
}

// TestExportWhileRecording races every export path against live recording;
// it exists to run under -race (the CI obs step). A live telemetry server
// scrapes PromText and dumps traces while campaign goroutines are still
// writing.
func TestExportWhileRecording(t *testing.T) {
	col := NewCollector()
	col.Count("exports", "", 1) // so the first scrape is never empty
	base := WithRecorder(context.Background(), col)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx, root := Startf(base, "writer%d", g)
			defer root.End()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ictx, sp := Start(ctx, "iter")
				Count(ictx, "iters", "", 1)
				Gauge(ictx, "depth", "", float64(i))
				Observe(ictx, "latency", "", float64(i%1000)*1e-6)
				sp.End()
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		if _, err := col.TraceJSON(); err != nil {
			t.Fatalf("TraceJSON during recording: %v", err)
		}
		if col.PromText() == "" {
			t.Fatal("PromText empty during recording")
		}
		col.Metrics()
		col.Tree()
	}
	close(stop)
	wg.Wait()
}
