package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one observability event in the streaming export: a span opening
// or closing, or a metric update. Events are what the JSONL sink writes as
// they happen and what the flight recorder retains for post-mortems.
type Event struct {
	// TS is the event time in nanoseconds since the Unix epoch.
	TS int64 `json:"ts"`
	// Kind is one of "span_start", "span_end", "count", "gauge", "observe".
	Kind string `json:"kind"`
	// Name is the span or metric name (empty for span_end: the ID suffices).
	Name string `json:"name,omitempty"`
	// Label is the metric series label in the package's "k=v" form.
	Label string `json:"label,omitempty"`
	// Span and Parent identify span events (0 = root parent).
	Span   uint64 `json:"span,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	// Value is the metric delta/value (unused for span events).
	Value float64 `json:"value,omitempty"`
}

// eventKinds, fixed so streaming consumers can switch on them.
const (
	EventSpanStart = "span_start"
	EventSpanEnd   = "span_end"
	EventCount     = "count"
	EventGauge     = "gauge"
	EventObserve   = "observe"
)

// eventRecorder adapts a per-Event consumer into a Recorder.
type eventRecorder struct {
	emit func(Event)
}

func (r eventRecorder) SpanStart(name string, id, parent uint64, start time.Time) {
	r.emit(Event{TS: start.UnixNano(), Kind: EventSpanStart, Name: name, Span: id, Parent: parent})
}
func (r eventRecorder) SpanEnd(id uint64, end time.Time) {
	r.emit(Event{TS: end.UnixNano(), Kind: EventSpanEnd, Span: id})
}
func (r eventRecorder) Count(name, label string, delta float64) {
	r.emit(Event{TS: time.Now().UnixNano(), Kind: EventCount, Name: name, Label: label, Value: delta})
}
func (r eventRecorder) Gauge(name, label string, v float64) {
	r.emit(Event{TS: time.Now().UnixNano(), Kind: EventGauge, Name: name, Label: label, Value: v})
}
func (r eventRecorder) Observe(name, label string, v float64) {
	r.emit(Event{TS: time.Now().UnixNano(), Kind: EventObserve, Name: name, Label: label, Value: v})
}

// JSONLSink is a Recorder that streams every event to w as one JSON object
// per line, as it happens — the push-side export path (DESIGN.md
// "Observability"). Writes are serialized; the first write error is retained
// and subsequent events are dropped (an observability sink must never take
// the campaign down with it).
type JSONLSink struct {
	eventRecorder
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a JSONL sink writing to w. Wrap w in a bufio.Writer
// (and flush it on shutdown) when the stream goes to a file.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{enc: json.NewEncoder(w)}
	s.eventRecorder = eventRecorder{emit: s.write}
	return s
}

func (s *JSONLSink) write(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(ev)
}

// Err returns the first write error the sink encountered, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// FlightRecorder is a Recorder that keeps the most recent Cap events in a
// bounded ring buffer — always on, always cheap, always holding the moments
// leading up to whatever just went wrong. Safe for concurrent use.
type FlightRecorder struct {
	eventRecorder
	mu    sync.Mutex
	ring  []Event
	next  int
	total uint64
}

// DefaultFlightEvents is the default ring capacity: enough for the tail of
// a probing campaign without holding a campaign's worth of memory.
const DefaultFlightEvents = 4096

// NewFlightRecorder returns a flight recorder retaining the last n events
// (n <= 0 selects DefaultFlightEvents).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightEvents
	}
	f := &FlightRecorder{ring: make([]Event, 0, n)}
	f.eventRecorder = eventRecorder{emit: f.record}
	return f
}

func (f *FlightRecorder) record(ev Event) {
	f.mu.Lock()
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, ev)
	} else {
		f.ring[f.next] = ev
	}
	f.next = (f.next + 1) % cap(f.ring)
	f.total++
	f.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (f *FlightRecorder) Events() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Event, 0, len(f.ring))
	if len(f.ring) < cap(f.ring) {
		return append(out, f.ring...)
	}
	out = append(out, f.ring[f.next:]...)
	return append(out, f.ring[:f.next]...)
}

// Total returns how many events the recorder has seen (including those the
// ring has since evicted).
func (f *FlightRecorder) Total() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// WriteJSONL dumps the retained events to w, one JSON object per line,
// oldest first.
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range f.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// fanout broadcasts every Recorder call to each sink.
type fanout []Recorder

func (f fanout) SpanStart(name string, id, parent uint64, start time.Time) {
	for _, r := range f {
		r.SpanStart(name, id, parent, start)
	}
}
func (f fanout) SpanEnd(id uint64, end time.Time) {
	for _, r := range f {
		r.SpanEnd(id, end)
	}
}
func (f fanout) Count(name, label string, delta float64) {
	for _, r := range f {
		r.Count(name, label, delta)
	}
}
func (f fanout) Gauge(name, label string, v float64) {
	for _, r := range f {
		r.Gauge(name, label, v)
	}
}
func (f fanout) Observe(name, label string, v float64) {
	for _, r := range f {
		r.Observe(name, label, v)
	}
}

// Fanout combines recorders into one that forwards every event to each.
// Nil entries are skipped; zero live sinks yield nil (the universal off
// switch, preserving the one-nil-check fast path); one live sink is
// returned unwrapped.
func Fanout(recs ...Recorder) Recorder {
	live := make(fanout, 0, len(recs))
	for _, r := range recs {
		if r != nil {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}
