package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PromText renders the collector's current metric state in the Prometheus
// text exposition format (version 0.0.4), the payload a /metrics endpoint
// serves to a scraping Prometheus.
//
// Metric names are sanitized to the Prometheus charset (dots become
// underscores), the single "k=v" label convention of this package maps to a
// proper label pair, and the log-bucketed histograms are converted to
// cumulative `le` buckets: bucket i of our histograms covers (2^(i-1), 2^i],
// so `le="2^i"` carries the count of every bucket up to and including i, and
// `le="+Inf"` equals the sample count. Output order is deterministic.
func (c *Collector) PromText() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sb strings.Builder
	writeScalarFamilies(&sb, c.counters, "counter")
	writeScalarFamilies(&sb, c.gauges, "gauge")

	keys := sortedKeys(c.hists)
	for i := 0; i < len(keys); {
		name := keys[i].name
		prom := promName(name)
		fmt.Fprintf(&sb, "# TYPE %s histogram\n", prom)
		for ; i < len(keys) && keys[i].name == name; i++ {
			h := c.hists[keys[i]]
			writePromHistogram(&sb, prom, keys[i].label, h)
		}
	}
	return sb.String()
}

// WriteProm writes the Prometheus text exposition to w.
func (c *Collector) WriteProm(w io.Writer) error {
	_, err := io.WriteString(w, c.PromText())
	return err
}

// writeScalarFamilies renders one metric kind (counters or gauges) grouped
// into families: one TYPE line per metric name, one sample per label.
func writeScalarFamilies(sb *strings.Builder, m map[metricKey]float64, kind string) {
	keys := sortedKeys(m)
	for i := 0; i < len(keys); {
		name := keys[i].name
		prom := promName(name)
		fmt.Fprintf(sb, "# TYPE %s %s\n", prom, kind)
		for ; i < len(keys) && keys[i].name == name; i++ {
			fmt.Fprintf(sb, "%s%s %g\n", prom, promLabels(keys[i].label, ""), m[keys[i]])
		}
	}
}

// writePromHistogram renders one histogram series as cumulative le buckets
// plus the _sum and _count samples.
func writePromHistogram(sb *strings.Builder, prom, label string, h *histogram) {
	idxs := make([]int, 0, len(h.buckets))
	for b := range h.buckets {
		idxs = append(idxs, b)
	}
	sort.Ints(idxs)
	cum := uint64(0)
	for _, b := range idxs {
		cum += h.buckets[b]
		fmt.Fprintf(sb, "%s_bucket%s %d\n", prom, promLabels(label, fmt.Sprintf("%g", pow2(b))), cum)
	}
	fmt.Fprintf(sb, "%s_bucket%s %d\n", prom, promLabels(label, "+Inf"), h.count)
	fmt.Fprintf(sb, "%s_sum%s %g\n", prom, promLabels(label, ""), h.sum)
	fmt.Fprintf(sb, "%s_count%s %d\n", prom, promLabels(label, ""), h.count)
}

// promName maps a metric name of this package onto the Prometheus name
// charset [a-zA-Z0-9_:], replacing every other rune with '_'.
func promName(name string) string {
	var sb strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			sb.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promLabels renders this package's "k=v" label convention (comma-separated
// for multiple pairs) plus an optional `le` bound as a Prometheus label set.
// A label with no '=' becomes {label="<value>"}.
func promLabels(label, le string) string {
	var pairs []string
	if label != "" {
		for _, part := range strings.Split(label, ",") {
			k, v, ok := strings.Cut(part, "=")
			if !ok {
				k, v = "label", part
			}
			pairs = append(pairs, fmt.Sprintf("%s=%q", promName(k), v))
		}
	}
	if le != "" {
		pairs = append(pairs, fmt.Sprintf("le=%q", le))
	}
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}
