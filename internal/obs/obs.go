// Package obs is the attack-campaign observability layer: hierarchical
// wall-clock spans, a metrics registry (counters, gauges, log-bucketed
// histograms), and pluggable sinks behind the Recorder interface. It has no
// dependencies outside the standard library and is safe for concurrent use.
//
// Spans travel through context.Context: obs.Start(ctx, "probe") opens a span
// parented to the one already in ctx and returns a derived context carrying
// the new span. When no Recorder is attached to the context, every entry
// point degrades to a single nil-check, so instrumented hot paths cost
// nothing on unobserved runs.
//
// Two clocks coexist in an instrumented campaign and must never be mixed:
// spans and stage metrics measure *host* wall-clock (how long the attacker's
// process spent), while the accelerator simulator reports *simulated* device
// time under `accel.`-prefixed metric names (what the victim hardware would
// have taken). See DESIGN.md "Observability".
package obs

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// Recorder is the pluggable observability sink. Implementations must be safe
// for concurrent use; Collector is the standard in-memory implementation and
// nil is the universal "off switch" (helpers in this package treat a missing
// recorder as a no-op).
type Recorder interface {
	// SpanStart records the opening of span id under parent (0 = root).
	SpanStart(name string, id, parent uint64, start time.Time)
	// SpanEnd closes a previously started span.
	SpanEnd(id uint64, end time.Time)
	// Count adds delta to the counter name{label} ("" label = unlabelled).
	Count(name, label string, delta float64)
	// Gauge sets the gauge name{label} to v.
	Gauge(name, label string, v float64)
	// Observe adds v to the histogram name{label}.
	Observe(name, label string, v float64)
}

// noop is the do-nothing Recorder, for measuring pure dispatch overhead.
type noop struct{}

func (noop) SpanStart(string, uint64, uint64, time.Time) {}
func (noop) SpanEnd(uint64, time.Time)                   {}
func (noop) Count(string, string, float64)               {}
func (noop) Gauge(string, string, float64)               {}
func (noop) Observe(string, string, float64)             {}

// Noop returns a Recorder that discards everything. Unlike a nil recorder —
// which short-circuits before any interface dispatch — Noop exercises the
// full instrumentation path, which BenchmarkRecorderOverhead uses to price
// the instrumentation itself.
func Noop() Recorder { return noop{} }

// ctxKey keys the observability state in a context.
type ctxKey struct{}

// ctxState is what a context carries: the sink and the enclosing span.
type ctxState struct {
	rec  Recorder
	span uint64
}

// WithRecorder attaches a Recorder to ctx. A nil rec returns ctx unchanged,
// keeping the one-nil-check fast path.
func WithRecorder(ctx context.Context, rec Recorder) context.Context {
	if rec == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, &ctxState{rec: rec})
}

func stateFrom(ctx context.Context) *ctxState {
	s, _ := ctx.Value(ctxKey{}).(*ctxState)
	return s
}

// RecorderFrom returns the Recorder attached to ctx, or nil. Hot loops fetch
// it once instead of paying the context lookup per iteration.
func RecorderFrom(ctx context.Context) Recorder {
	if s := stateFrom(ctx); s != nil {
		return s.rec
	}
	return nil
}

// lastID hands out process-wide unique span IDs (0 is reserved for "root").
var lastID atomic.Uint64

// Span is one timed region of the campaign. The zero of *Span is nil, and
// nil.End() is a no-op, so call sites need no recorder checks.
type Span struct {
	rec   Recorder
	id    uint64
	ended atomic.Bool
}

// Start opens a span named name under the span already carried by ctx and
// returns a derived context carrying the new span. Without a Recorder in ctx
// it returns (ctx, nil) after a single lookup.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	s := stateFrom(ctx)
	if s == nil {
		return ctx, nil
	}
	id := lastID.Add(1)
	s.rec.SpanStart(name, id, s.span, time.Now())
	return context.WithValue(ctx, ctxKey{}, &ctxState{rec: s.rec, span: id}),
		&Span{rec: s.rec, id: id}
}

// Startf is Start with a formatted name; the formatting is skipped entirely
// when no Recorder is attached.
func Startf(ctx context.Context, format string, args ...any) (context.Context, *Span) {
	if stateFrom(ctx) == nil {
		return ctx, nil
	}
	return Start(ctx, fmt.Sprintf(format, args...))
}

// End closes the span. Safe on nil spans and idempotent.
func (sp *Span) End() {
	if sp == nil || sp.ended.Swap(true) {
		return
	}
	sp.rec.SpanEnd(sp.id, time.Now())
}

// Count adds delta to counter name{label} on the recorder in ctx, if any.
func Count(ctx context.Context, name, label string, delta float64) {
	if s := stateFrom(ctx); s != nil {
		s.rec.Count(name, label, delta)
	}
}

// Gauge sets gauge name{label} on the recorder in ctx, if any.
func Gauge(ctx context.Context, name, label string, v float64) {
	if s := stateFrom(ctx); s != nil {
		s.rec.Gauge(name, label, v)
	}
}

// Observe adds v to histogram name{label} on the recorder in ctx, if any.
func Observe(ctx context.Context, name, label string, v float64) {
	if s := stateFrom(ctx); s != nil {
		s.rec.Observe(name, label, v)
	}
}
