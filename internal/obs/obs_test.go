package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "root")
	if sp != nil {
		t.Fatalf("Start without a recorder returned a span")
	}
	if ctx2 != ctx {
		t.Fatalf("Start without a recorder derived a new context")
	}
	sp.End() // must not panic
	Count(ctx, "c", "", 1)
	Gauge(ctx, "g", "", 1)
	Observe(ctx, "h", "", 1)
	if WithRecorder(ctx, nil) != ctx {
		t.Fatalf("WithRecorder(nil) derived a new context")
	}
	if RecorderFrom(ctx) != nil {
		t.Fatalf("RecorderFrom on bare context is non-nil")
	}
}

func TestSpanHierarchyAndMetrics(t *testing.T) {
	col := NewCollector()
	ctx := WithRecorder(context.Background(), col)

	ctx, root := Start(ctx, "attack")
	cctx, cal := Start(ctx, "calibrate")
	Count(cctx, "victim.inferences", "", 2)
	cal.End()
	pctx, probe := Start(ctx, "probe")
	for q := 0; q < 3; q++ {
		_, p := Startf(pctx, "pos")
		Count(pctx, "probe.positions", "", 1)
		p.End()
	}
	probe.End()
	Observe(ctx, "stage.seconds", "stage=probe", 0.25)
	Gauge(ctx, "solution.space.count", "", 12)
	root.End()
	root.End() // idempotent

	if got := col.CounterValue("victim.inferences", ""); got != 2 {
		t.Fatalf("victim.inferences = %v, want 2", got)
	}
	if got := col.CounterValue("probe.positions", ""); got != 3 {
		t.Fatalf("probe.positions = %v, want 3", got)
	}
	if got := col.GaugeValue("solution.space.count", ""); got != 12 {
		t.Fatalf("solution.space.count = %v, want 12", got)
	}
	snap := col.Metrics()
	h, ok := snap.Histograms["stage.seconds{stage=probe}"]
	if !ok {
		t.Fatalf("missing stage.seconds histogram; have %v", snap.Histograms)
	}
	if h.Count != 1 || h.Sum != 0.25 {
		t.Fatalf("histogram = %+v, want count 1 sum 0.25", h)
	}
	// 0.25 lands exactly on the 2^-2 bucket boundary.
	if n := h.Buckets["0.25"]; n != 1 {
		t.Fatalf("bucket 0.25 = %d, want 1; buckets %v", n, h.Buckets)
	}

	tree := col.Tree()
	for _, want := range []string{"attack", "calibrate", "probe"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
}

// TestTraceJSONNesting validates the Chrome-trace export: a traceEvents
// array whose B/E events are properly nested per tid.
func TestTraceJSONNesting(t *testing.T) {
	col := NewCollector()
	ctx := WithRecorder(context.Background(), col)
	ctx, root := Start(ctx, "attack")
	for _, stage := range []string{"calibrate", "probe", "solve", "timing"} {
		sctx, sp := Start(ctx, stage)
		_, inner := Start(sctx, stage+".inner")
		inner.End()
		sp.End()
	}
	root.End()

	raw, err := col.TraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(doc.TraceEvents) != 2*(1+4+4) {
		t.Fatalf("got %d events, want %d", len(doc.TraceEvents), 2*(1+4+4))
	}
	// B/E must balance like parentheses, with E matching the innermost B.
	var stack []string
	lastTS := -1.0
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.TS < lastTS {
			t.Fatalf("timestamps regress at %q (%v < %v)", ev.Name, ev.TS, lastTS)
		}
		lastTS = ev.TS
		switch ev.Phase {
		case "B":
			stack = append(stack, ev.Name)
			seen[ev.Name] = true
		case "E":
			if len(stack) == 0 || stack[len(stack)-1] != ev.Name {
				t.Fatalf("unbalanced E %q with stack %v", ev.Name, stack)
			}
			stack = stack[:len(stack)-1]
		default:
			t.Fatalf("unexpected phase %q", ev.Phase)
		}
	}
	if len(stack) != 0 {
		t.Fatalf("unclosed spans %v", stack)
	}
	for _, stage := range []string{"calibrate", "probe", "solve", "timing"} {
		if !seen[stage] {
			t.Fatalf("trace missing stage span %q", stage)
		}
	}
}

func TestUnendedSpanExports(t *testing.T) {
	col := NewCollector()
	ctx := WithRecorder(context.Background(), col)
	_, sp := Start(ctx, "dangling")
	_ = sp // never ended
	time.Sleep(time.Millisecond)
	raw, err := col.TraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "dangling") {
		t.Fatalf("unended span missing from trace: %s", raw)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, minBucket},
		{-3, minBucket},
		{1e-300, minBucket},
		{0.25, -2},
		{0.3, -1},
		{1, 0},
		{1.5, 1},
		{1024, 10},
		{1e300, maxBucket},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	h := &histogram{buckets: map[int]uint64{}}
	for _, v := range []float64{1, 2, 4, 1000} {
		h.observe(v)
	}
	if h.count != 4 || h.sum != 1007 || h.min != 1 || h.max != 1000 {
		t.Fatalf("histogram summary wrong: %+v", h)
	}
}

func TestNoopRecorder(t *testing.T) {
	ctx := WithRecorder(context.Background(), Noop())
	ctx, sp := Start(ctx, "x")
	if sp == nil {
		t.Fatalf("Noop recorder suppressed span creation")
	}
	Count(ctx, "c", "", 1)
	sp.End()
}

// TestRecorderConcurrent exercises the Collector from concurrent goroutines;
// it exists to run under -race (the Recorder contract requires thread
// safety — spans and metrics may arrive from parallel probe workers).
func TestRecorderConcurrent(t *testing.T) {
	col := NewCollector()
	base := WithRecorder(context.Background(), col)
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx, root := Startf(base, "worker%d", g)
			for i := 0; i < 500; i++ {
				ictx, sp := Start(ctx, "iter")
				Count(ictx, "iters", "", 1)
				Observe(ictx, "latency", "", float64(i+1)*1e-6)
				sp.End()
			}
			root.End()
		}(g)
	}
	wg.Wait()
	if got := col.CounterValue("iters", ""); got != 1000 {
		t.Fatalf("iters = %v, want 1000", got)
	}
	snap := col.Metrics()
	if h := snap.Histograms["latency"]; h.Count != 1000 {
		t.Fatalf("latency histogram count = %d, want 1000", h.Count)
	}
	if _, err := col.TraceJSON(); err != nil {
		t.Fatalf("trace export after concurrent recording: %v", err)
	}
}
