package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"
)

// TestJSONLSinkStreamsEvents drives a JSONL sink through the normal
// context-based instrumentation and checks that every event arrives as one
// parseable JSON line, in order, as it happens.
func TestJSONLSinkStreamsEvents(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	ctx := WithRecorder(context.Background(), sink)

	ctx, root := Start(ctx, "attack")
	Count(ctx, "victim.inferences", "", 2)
	Gauge(ctx, "solution.space.count", "", 5)
	Observe(ctx, "stage.seconds", "stage=probe", 0.25)
	root.End()
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	var events []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	kinds := []string{EventSpanStart, EventCount, EventGauge, EventObserve, EventSpanEnd}
	if len(events) != len(kinds) {
		t.Fatalf("got %d events, want %d: %+v", len(events), len(kinds), events)
	}
	for i, want := range kinds {
		if events[i].Kind != want {
			t.Fatalf("event %d kind = %q, want %q", i, events[i].Kind, want)
		}
		if events[i].TS == 0 {
			t.Fatalf("event %d has no timestamp", i)
		}
	}
	if events[0].Name != "attack" || events[0].Span == 0 {
		t.Fatalf("span_start event malformed: %+v", events[0])
	}
	if events[4].Span != events[0].Span {
		t.Fatalf("span_end id %d does not match span_start id %d", events[4].Span, events[0].Span)
	}
	if events[3].Label != "stage=probe" || events[3].Value != 0.25 {
		t.Fatalf("observe event malformed: %+v", events[3])
	}
}

// errWriter fails after n writes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

func TestJSONLSinkRetainsFirstError(t *testing.T) {
	sink := NewJSONLSink(&errWriter{n: 1})
	sink.Count("a", "", 1)
	if sink.Err() != nil {
		t.Fatalf("first write failed: %v", sink.Err())
	}
	sink.Count("b", "", 1)
	err := sink.Err()
	if err == nil {
		t.Fatal("write error not retained")
	}
	sink.Count("c", "", 1) // must not panic, must keep the first error
	if sink.Err() != err {
		t.Fatalf("retained error changed: %v -> %v", err, sink.Err())
	}
}

// TestFlightRecorderRing checks the bounded ring: it retains exactly the
// last N events, oldest first, while counting everything it has seen.
func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Count("seq", "", float64(i))
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := float64(6 + i); ev.Value != want {
			t.Fatalf("event %d value = %v, want %v (oldest-first order)", i, ev.Value, want)
		}
	}
	if f.Total() != 10 {
		t.Fatalf("Total = %d, want 10", f.Total())
	}

	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(buf.Bytes(), []byte("\n")); n != 4 {
		t.Fatalf("WriteJSONL wrote %d lines, want 4", n)
	}
}

func TestFlightRecorderPartialRing(t *testing.T) {
	f := NewFlightRecorder(8)
	f.SpanStart("a", 1, 0, time.Now())
	f.SpanEnd(1, time.Now())
	evs := f.Events()
	if len(evs) != 2 || evs[0].Kind != EventSpanStart || evs[1].Kind != EventSpanEnd {
		t.Fatalf("partial ring malformed: %+v", evs)
	}
}

func TestFanout(t *testing.T) {
	if Fanout() != nil || Fanout(nil, nil) != nil {
		t.Fatal("empty fanout must collapse to nil (the off switch)")
	}
	col := NewCollector()
	if Fanout(nil, col, nil) != Recorder(col) {
		t.Fatal("single-sink fanout must return the sink unwrapped")
	}
	other := NewCollector()
	multi := Fanout(col, other)
	multi.Count("x", "", 2)
	multi.Gauge("g", "", 1)
	multi.Observe("h", "", 1)
	multi.SpanStart("s", 1, 0, time.Now())
	multi.SpanEnd(1, time.Now())
	for _, c := range []*Collector{col, other} {
		if c.CounterValue("x", "") != 2 {
			t.Fatal("fanout did not reach every sink")
		}
	}
}

// TestStreamSinksConcurrentRecorders hammers a JSONLSink and a
// FlightRecorder through one Fanout from many goroutines at once — the
// daemon's steady state, where worker campaigns, the scrape handler, and the
// runtime sampler all record concurrently. Every JSONL line must still be
// one complete JSON object (no interleaved writes), and the flight ring must
// account for exactly every event.
func TestStreamSinksConcurrentRecorders(t *testing.T) {
	const (
		workers = 8
		each    = 250
		ringCap = 64
	)
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	flight := NewFlightRecorder(ringCap)
	rec := Fanout(sink, flight)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := WithRecorder(context.Background(), rec)
			for i := 0; i < each; i++ {
				sctx, sp := Start(ctx, "work")
				Count(sctx, "events", "worker="+strconv.Itoa(w), 1)
				Observe(sctx, "lat", "", float64(i))
				sp.End()
			}
		}(w)
	}
	wg.Wait()

	// 4 events per iteration: span_start, count, observe, span_end.
	wantEvents := uint64(workers * each * 4)
	if got := flight.Total(); got != wantEvents {
		t.Errorf("flight recorder saw %d events, want %d", got, wantEvents)
	}
	if got := len(flight.Events()); got != ringCap {
		t.Errorf("flight ring holds %d events, want cap %d", got, ringCap)
	}
	// Every retained event is fully formed — a torn ring write under
	// concurrency would surface as a zero-valued Event. (Timestamps are
	// sampled before the ring lock, so strict TS order across goroutines is
	// deliberately not guaranteed and not asserted.)
	for i, ev := range flight.Events() {
		if ev.Kind == "" || ev.TS == 0 {
			t.Errorf("flight event %d torn or empty: %+v", i, ev)
		}
	}

	if err := sink.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}
	lines := 0
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not one JSON event (interleaved write?): %v: %q", lines, err, sc.Text())
		}
		if ev.Kind == "" {
			t.Fatalf("line %d lost its kind: %q", lines, sc.Text())
		}
		lines++
	}
	if uint64(lines) != wantEvents {
		t.Errorf("JSONL sink wrote %d lines, want %d", lines, wantEvents)
	}
}
