package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// TestJSONLSinkStreamsEvents drives a JSONL sink through the normal
// context-based instrumentation and checks that every event arrives as one
// parseable JSON line, in order, as it happens.
func TestJSONLSinkStreamsEvents(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	ctx := WithRecorder(context.Background(), sink)

	ctx, root := Start(ctx, "attack")
	Count(ctx, "victim.inferences", "", 2)
	Gauge(ctx, "solution.space.count", "", 5)
	Observe(ctx, "stage.seconds", "stage=probe", 0.25)
	root.End()
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	var events []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	kinds := []string{EventSpanStart, EventCount, EventGauge, EventObserve, EventSpanEnd}
	if len(events) != len(kinds) {
		t.Fatalf("got %d events, want %d: %+v", len(events), len(kinds), events)
	}
	for i, want := range kinds {
		if events[i].Kind != want {
			t.Fatalf("event %d kind = %q, want %q", i, events[i].Kind, want)
		}
		if events[i].TS == 0 {
			t.Fatalf("event %d has no timestamp", i)
		}
	}
	if events[0].Name != "attack" || events[0].Span == 0 {
		t.Fatalf("span_start event malformed: %+v", events[0])
	}
	if events[4].Span != events[0].Span {
		t.Fatalf("span_end id %d does not match span_start id %d", events[4].Span, events[0].Span)
	}
	if events[3].Label != "stage=probe" || events[3].Value != 0.25 {
		t.Fatalf("observe event malformed: %+v", events[3])
	}
}

// errWriter fails after n writes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

func TestJSONLSinkRetainsFirstError(t *testing.T) {
	sink := NewJSONLSink(&errWriter{n: 1})
	sink.Count("a", "", 1)
	if sink.Err() != nil {
		t.Fatalf("first write failed: %v", sink.Err())
	}
	sink.Count("b", "", 1)
	err := sink.Err()
	if err == nil {
		t.Fatal("write error not retained")
	}
	sink.Count("c", "", 1) // must not panic, must keep the first error
	if sink.Err() != err {
		t.Fatalf("retained error changed: %v -> %v", err, sink.Err())
	}
}

// TestFlightRecorderRing checks the bounded ring: it retains exactly the
// last N events, oldest first, while counting everything it has seen.
func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Count("seq", "", float64(i))
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := float64(6 + i); ev.Value != want {
			t.Fatalf("event %d value = %v, want %v (oldest-first order)", i, ev.Value, want)
		}
	}
	if f.Total() != 10 {
		t.Fatalf("Total = %d, want 10", f.Total())
	}

	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(buf.Bytes(), []byte("\n")); n != 4 {
		t.Fatalf("WriteJSONL wrote %d lines, want 4", n)
	}
}

func TestFlightRecorderPartialRing(t *testing.T) {
	f := NewFlightRecorder(8)
	f.SpanStart("a", 1, 0, time.Now())
	f.SpanEnd(1, time.Now())
	evs := f.Events()
	if len(evs) != 2 || evs[0].Kind != EventSpanStart || evs[1].Kind != EventSpanEnd {
		t.Fatalf("partial ring malformed: %+v", evs)
	}
}

func TestFanout(t *testing.T) {
	if Fanout() != nil || Fanout(nil, nil) != nil {
		t.Fatal("empty fanout must collapse to nil (the off switch)")
	}
	col := NewCollector()
	if Fanout(nil, col, nil) != Recorder(col) {
		t.Fatal("single-sink fanout must return the sink unwrapped")
	}
	other := NewCollector()
	multi := Fanout(col, other)
	multi.Count("x", "", 2)
	multi.Gauge("g", "", 1)
	multi.Observe("h", "", 1)
	multi.SpanStart("s", 1, 0, time.Now())
	multi.SpanEnd(1, time.Now())
	for _, c := range []*Collector{col, other} {
		if c.CounterValue("x", "") != 2 {
			t.Fatal("fanout did not reach every sink")
		}
	}
}
