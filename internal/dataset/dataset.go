// Package dataset provides a deterministic synthetic image-classification
// dataset standing in for CIFAR-10 (which is not available in this offline
// environment; see DESIGN.md "Substitutions"). Each of the 10 classes is a
// smooth random template; samples are randomly shifted, scaled, and
// noise-perturbed instances. The task is learnable by small CNNs yet not
// trivially linearly separable, which is all the accuracy and
// adversarial-transfer experiments require.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/huffduff/huffduff/internal/tensor"
)

// Image dimensions (CIFAR-10 geometry).
const (
	Channels = 3
	Height   = 32
	Width    = 32
	Classes  = 10
)

// Dataset is a labelled set of images with pixel values in [0, 1].
type Dataset struct {
	X []*tensor.Tensor // each [Channels, Height, Width]
	Y []int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Batch assembles samples [lo, hi) into an NCHW tensor and label slice.
func (d *Dataset) Batch(lo, hi int) (*tensor.Tensor, []int) {
	if lo < 0 || hi > len(d.X) || lo >= hi {
		panic(fmt.Sprintf("dataset: bad batch range [%d,%d) of %d", lo, hi, len(d.X)))
	}
	n := hi - lo
	x := tensor.New(n, Channels, Height, Width)
	stride := Channels * Height * Width
	y := make([]int, n)
	for i := 0; i < n; i++ {
		copy(x.Data[i*stride:(i+1)*stride], d.X[lo+i].Data)
		y[i] = d.Y[lo+i]
	}
	return x, y
}

// Shuffle permutes the dataset in place.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.X), func(i, j int) {
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
}

// Subset returns a view of the first n samples.
func (d *Dataset) Subset(n int) *Dataset {
	if n > len(d.X) {
		n = len(d.X)
	}
	return &Dataset{X: d.X[:n], Y: d.Y[:n]}
}

// generator holds the class templates.
type generator struct {
	templates []*tensor.Tensor // one [C,H,W] per class
}

// addBlobs accumulates random Gaussian blobs into every channel of t.
func addBlobs(rng *rand.Rand, t *tensor.Tensor, n int, amp float64) {
	for c := 0; c < Channels; c++ {
		for b := 0; b < n; b++ {
			cx := rng.Float64() * Width
			cy := rng.Float64() * Height
			sigma := 2.5 + rng.Float64()*4
			a := amp * (0.5 + rng.Float64())
			if rng.Intn(2) == 0 {
				a = -a
			}
			for y := 0; y < Height; y++ {
				for x := 0; x < Width; x++ {
					d2 := (float64(x)-cx)*(float64(x)-cx) + (float64(y)-cy)*(float64(y)-cy)
					t.Data[(c*Height+y)*Width+x] += a * math.Exp(-d2/(2*sigma*sigma))
				}
			}
		}
	}
}

// newGenerator builds per-class templates that share a common base pattern,
// differing only in lower-amplitude class-specific blobs. The shared base
// keeps classes close together so the task rewards model capacity (without
// it, even a nearest-mean classifier saturates and the Fig. 4 accuracy
// comparison degenerates).
func newGenerator(rng *rand.Rand) *generator {
	g := &generator{}
	base := tensor.New(Channels, Height, Width)
	addBlobs(rng, base, 5, 1)
	for class := 0; class < Classes; class++ {
		tpl := base.Clone()
		addBlobs(rng, tpl, 3, 0.35)
		lo, hi := tpl.Min(), tpl.Max()
		span := hi - lo
		if span < 1e-9 {
			span = 1
		}
		tpl.Apply(func(v float64) float64 { return 0.15 + 0.7*(v-lo)/span })
		g.templates = append(g.templates, tpl)
	}
	return g
}

// sample draws one image of the given class: the template circularly shifted
// by up to ±5 pixels, contrast-scaled, with additive Gaussian noise, clamped
// to [0,1].
func (g *generator) sample(rng *rand.Rand, class int, noise float64) *tensor.Tensor {
	tpl := g.templates[class]
	dx := rng.Intn(11) - 5
	dy := rng.Intn(11) - 5
	gain := 0.85 + rng.Float64()*0.3
	img := tensor.New(Channels, Height, Width)
	for c := 0; c < Channels; c++ {
		for y := 0; y < Height; y++ {
			sy := ((y+dy)%Height + Height) % Height
			for x := 0; x < Width; x++ {
				sx := ((x+dx)%Width + Width) % Width
				v := tpl.Data[(c*Height+sy)*Width+sx]*gain + rng.NormFloat64()*noise
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				img.Data[(c*Height+y)*Width+x] = v
			}
		}
	}
	return img
}

// Synthetic generates deterministic train and test splits. The same seed
// always produces identical datasets, and train/test are disjoint draws
// from the same distribution.
func Synthetic(seed int64, nTrain, nTest int, noise float64) (train, test *Dataset) {
	rng := rand.New(rand.NewSource(seed))
	g := newGenerator(rng)
	make := func(n int) *Dataset {
		d := &Dataset{}
		for i := 0; i < n; i++ {
			class := i % Classes
			d.X = append(d.X, g.sample(rng, class, noise))
			d.Y = append(d.Y, class)
		}
		return d
	}
	return make(nTrain), make(nTest)
}
