package dataset

import (
	"math/rand"
	"testing"
)

func TestSyntheticDeterministic(t *testing.T) {
	tr1, te1 := Synthetic(42, 20, 10, 0.05)
	tr2, te2 := Synthetic(42, 20, 10, 0.05)
	if tr1.Len() != 20 || te1.Len() != 10 {
		t.Fatalf("sizes %d/%d", tr1.Len(), te1.Len())
	}
	for i := range tr1.X {
		if tr1.Y[i] != tr2.Y[i] {
			t.Fatal("labels differ across identical seeds")
		}
		for j := range tr1.X[i].Data {
			if tr1.X[i].Data[j] != tr2.X[i].Data[j] {
				t.Fatal("pixels differ across identical seeds")
			}
		}
	}
	_ = te2
}

func TestSyntheticDifferentSeedsDiffer(t *testing.T) {
	tr1, _ := Synthetic(1, 10, 1, 0.05)
	tr2, _ := Synthetic(2, 10, 1, 0.05)
	same := true
	for j := range tr1.X[0].Data {
		if tr1.X[0].Data[j] != tr2.X[0].Data[j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical images")
	}
}

func TestPixelRange(t *testing.T) {
	tr, _ := Synthetic(7, 50, 1, 0.2)
	for _, img := range tr.X {
		if img.Min() < 0 || img.Max() > 1 {
			t.Fatalf("pixel out of range: [%g, %g]", img.Min(), img.Max())
		}
	}
}

func TestClassBalance(t *testing.T) {
	tr, _ := Synthetic(7, 100, 1, 0.05)
	counts := make([]int, Classes)
	for _, y := range tr.Y {
		counts[y]++
	}
	for c, n := range counts {
		if n != 10 {
			t.Fatalf("class %d count %d, want 10", c, n)
		}
	}
}

func TestBatchAssembly(t *testing.T) {
	tr, _ := Synthetic(7, 12, 1, 0.05)
	x, y := tr.Batch(2, 6)
	if x.Dim(0) != 4 || x.Dim(1) != Channels || x.Dim(2) != Height || x.Dim(3) != Width {
		t.Fatalf("batch shape %v", x.Shape())
	}
	if len(y) != 4 || y[0] != tr.Y[2] {
		t.Fatalf("labels %v", y)
	}
	// first sample pixels must match source
	for j := 0; j < 10; j++ {
		if x.Data[j] != tr.X[2].Data[j] {
			t.Fatal("batch pixels differ from source")
		}
	}
}

func TestBatchBadRangePanics(t *testing.T) {
	tr, _ := Synthetic(7, 4, 1, 0.05)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Batch(2, 8)
}

func TestShufflePreservesPairs(t *testing.T) {
	tr, _ := Synthetic(7, 30, 1, 0.05)
	// Record a fingerprint per sample tied to its label.
	type pair struct {
		fp float64
		y  int
	}
	var before []pair
	for i := range tr.X {
		before = append(before, pair{tr.X[i].Sum(), tr.Y[i]})
	}
	tr.Shuffle(rand.New(rand.NewSource(5)))
	found := 0
	for i := range tr.X {
		fp := tr.X[i].Sum()
		for _, b := range before {
			if b.fp == fp && b.y == tr.Y[i] {
				found++
				break
			}
		}
	}
	if found != len(tr.X) {
		t.Fatalf("shuffle broke image/label pairing: %d/%d intact", found, len(tr.X))
	}
}

func TestSubset(t *testing.T) {
	tr, _ := Synthetic(7, 20, 1, 0.05)
	s := tr.Subset(5)
	if s.Len() != 5 {
		t.Fatalf("subset len %d", s.Len())
	}
	if tr.Subset(100).Len() != 20 {
		t.Fatal("subset should clamp")
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// Nearest-template classification should beat chance by a wide margin,
	// otherwise the dataset is too noisy to train on.
	tr, te := Synthetic(9, 200, 100, 0.05)
	// build per-class mean from train
	means := make([][]float64, Classes)
	counts := make([]int, Classes)
	for i := range tr.X {
		y := tr.Y[i]
		if means[y] == nil {
			means[y] = make([]float64, len(tr.X[i].Data))
		}
		for j, v := range tr.X[i].Data {
			means[y][j] += v
		}
		counts[y]++
	}
	for c := range means {
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for i := range te.X {
		best, bestC := 1e18, -1
		for c := range means {
			d := 0.0
			for j, v := range te.X[i].Data {
				diff := v - means[c][j]
				d += diff * diff
			}
			if d < best {
				best, bestC = d, c
			}
		}
		if bestC == te.Y[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(te.Len())
	// Classes share a common base pattern by design (see newGenerator), so
	// nearest-mean only needs to beat chance (10%) decisively; CNNs with
	// shift-invariant capacity do far better, which is what Fig. 4 needs.
	if acc < 0.2 {
		t.Fatalf("nearest-mean accuracy %.2f too low; dataset not learnable", acc)
	}
}
