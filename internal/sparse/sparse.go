// Package sparse implements the compressed tensor formats a sparse
// accelerator uses when moving weights and activations over the DRAM bus.
//
// The attack never looks at tensor contents, only at the *size in bytes* of
// each compressed transfer. Each codec therefore provides both a real
// round-trip encoder (so the simulator is honest) and an exact size model.
// All provided codecs are lossless for the values they carry and their
// compressed size is strictly monotone in the number of nonzeros for a fixed
// element count, which is the property the boundary-effect channel relies on.
package sparse

import (
	"fmt"
	"math"
)

// Codec compresses a flat tensor payload.
type Codec interface {
	// Name identifies the format (for traces and reports).
	Name() string
	// Encode compresses values. The result retains enough information to
	// reconstruct the input exactly via Decode.
	Encode(values []float64) *Encoded
	// Size returns the compressed size in bytes without materializing the
	// encoding. Size(v) == Encode(v).Bytes for all inputs.
	Size(values []float64) int
}

// Encoded is a compressed payload together with its modeled wire size.
type Encoded struct {
	Format string
	N      int // original element count
	NNZ    int
	Bytes  int // modeled size on the DRAM bus

	// Internal representation for Decode.
	idx  []int
	vals []float64
}

// Decode reconstructs the original values.
func (e *Encoded) Decode() []float64 {
	out := make([]float64, e.N)
	for i, ix := range e.idx {
		out[ix] = e.vals[i]
	}
	return out
}

func gather(values []float64) (idx []int, vals []float64) {
	for i, v := range values {
		if v != 0 {
			idx = append(idx, i)
			vals = append(vals, v)
		}
	}
	return idx, vals
}

// Bitmap is a bitmap-plus-packed-values format: one presence bit per element
// followed by the nonzero values at ElemBytes each. This is the style used by
// SparTen and (conceptually) Eyeriss v2 for activations.
type Bitmap struct {
	ElemBytes int
}

// Name implements Codec.
func (b Bitmap) Name() string { return fmt.Sprintf("bitmap%d", b.ElemBytes) }

// Size implements Codec: ceil(n/8) bitmap bytes + nnz*ElemBytes.
func (b Bitmap) Size(values []float64) int {
	nnz := 0
	for _, v := range values {
		if v != 0 {
			nnz++
		}
	}
	return b.sizeFor(len(values), nnz)
}

func (b Bitmap) sizeFor(n, nnz int) int {
	return (n+7)/8 + nnz*b.ElemBytes
}

// SizeFor returns the modeled size for a payload with n elements of which
// nnz are nonzero, without needing the data itself.
func (b Bitmap) SizeFor(n, nnz int) int { return b.sizeFor(n, nnz) }

// Encode implements Codec.
func (b Bitmap) Encode(values []float64) *Encoded {
	idx, vals := gather(values)
	return &Encoded{
		Format: b.Name(),
		N:      len(values),
		NNZ:    len(vals),
		Bytes:  b.sizeFor(len(values), len(vals)),
		idx:    idx,
		vals:   vals,
	}
}

// RLE is an Eyeriss-style run-length encoding: each nonzero is stored as a
// (zero-run, value) pair where the run field has RunBits bits. Runs longer
// than the field's maximum insert an explicit zero element, exactly like the
// RLC scheme in Eyeriss.
type RLE struct {
	ElemBytes int
	RunBits   int
}

// Name implements Codec.
func (r RLE) Name() string { return fmt.Sprintf("rle%d_%d", r.ElemBytes, r.RunBits) }

func (r RLE) maxRun() int { return 1<<r.RunBits - 1 }

// entries returns the number of (run, value) pairs needed, counting the
// explicit zeros inserted for overlong runs and the terminator for a
// trailing zero run.
func (r RLE) entries(values []float64) int {
	maxRun := r.maxRun()
	entries := 0
	run := 0
	for _, v := range values {
		if v == 0 {
			run++
			if run == maxRun {
				entries++ // explicit zero with a saturated run field
				run = 0
			}
			continue
		}
		entries++
		run = 0
	}
	if run > 0 {
		entries++ // trailing zero-run terminator
	}
	return entries
}

// Size implements Codec. Each entry costs RunBits + 8*ElemBytes bits,
// rounded up to whole bytes over the payload.
func (r RLE) Size(values []float64) int {
	bits := r.entries(values) * (r.RunBits + 8*r.ElemBytes)
	return (bits + 7) / 8
}

// Encode implements Codec.
func (r RLE) Encode(values []float64) *Encoded {
	idx, vals := gather(values)
	return &Encoded{
		Format: r.Name(),
		N:      len(values),
		NNZ:    len(vals),
		Bytes:  r.Size(values),
		idx:    idx,
		vals:   vals,
	}
}

// CSC is an EIE-style relative-index format: each nonzero stores an
// IndexBits relative offset from the previous nonzero plus the value; gaps
// wider than the offset field insert padding zeros.
type CSC struct {
	ElemBytes int
	IndexBits int
}

// Name implements Codec.
func (c CSC) Name() string { return fmt.Sprintf("csc%d_%d", c.ElemBytes, c.IndexBits) }

func (c CSC) maxGap() int { return 1<<c.IndexBits - 1 }

func (c CSC) entries(values []float64) int {
	maxGap := c.maxGap()
	entries := 0
	gap := 0
	for _, v := range values {
		if v == 0 {
			gap++
			if gap > maxGap {
				entries++ // padding zero
				gap = 0
			}
			continue
		}
		entries++
		gap = 0
	}
	return entries
}

// Size implements Codec.
func (c CSC) Size(values []float64) int {
	bits := c.entries(values) * (c.IndexBits + 8*c.ElemBytes)
	return (bits + 7) / 8
}

// Encode implements Codec.
func (c CSC) Encode(values []float64) *Encoded {
	idx, vals := gather(values)
	return &Encoded{
		Format: c.Name(),
		N:      len(values),
		NNZ:    len(vals),
		Bytes:  c.Size(values),
		idx:    idx,
		vals:   vals,
	}
}

// Dense models an uncompressed transfer: n*ElemBytes regardless of content.
// It is what a dense accelerator (the ReverseCNN setting) would ship.
type Dense struct {
	ElemBytes int
}

// Name implements Codec.
func (d Dense) Name() string { return fmt.Sprintf("dense%d", d.ElemBytes) }

// Size implements Codec.
func (d Dense) Size(values []float64) int { return len(values) * d.ElemBytes }

// Encode implements Codec.
func (d Dense) Encode(values []float64) *Encoded {
	idx, vals := gather(values)
	return &Encoded{
		Format: d.Name(),
		N:      len(values),
		NNZ:    len(vals),
		Bytes:  d.Size(values),
		idx:    idx,
		vals:   vals,
	}
}

// NNZFromBitmapSize inverts the Bitmap size model: given a transfer of size
// bytes for a payload of n elements, it returns the number of nonzeros.
// This is exactly the computation the attacker performs on observed
// transfer volumes. It returns an error when the size is not achievable for
// the given n, which indicates the transfer was not a bitmap-compressed
// tensor of that geometry.
func NNZFromBitmapSize(b Bitmap, n, bytes int) (int, error) {
	header := (n + 7) / 8
	rem := bytes - header
	if rem < 0 || rem%b.ElemBytes != 0 {
		return 0, fmt.Errorf("sparse: %d bytes is not a bitmap%d transfer of %d elements", bytes, b.ElemBytes, n)
	}
	nnz := rem / b.ElemBytes
	if nnz > n {
		return 0, fmt.Errorf("sparse: implied nnz %d exceeds element count %d", nnz, n)
	}
	return nnz, nil
}

// Quantize rounds values to a signed fixed-point grid with the given number
// of bits and scale, clamping to the representable range. Accelerators
// quantize activations in the post-processing unit before compression; the
// attack does not depend on the exact grid, only that exact zeros stay zero
// (which rounding guarantees).
func Quantize(values []float64, bits int, scale float64) []float64 {
	if bits < 2 || bits > 32 {
		panic(fmt.Sprintf("sparse: unsupported quantization width %d", bits))
	}
	maxQ := float64(int64(1)<<(bits-1) - 1)
	minQ := -maxQ - 1
	out := make([]float64, len(values))
	for i, v := range values {
		q := math.Round(v / scale)
		if q > maxQ {
			q = maxQ
		}
		if q < minQ {
			q = minQ
		}
		out[i] = q * scale
	}
	return out
}
