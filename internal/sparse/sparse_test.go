package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSparseVec(rng *rand.Rand, n int, density float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		if rng.Float64() < density {
			v[i] = rng.NormFloat64()
		}
	}
	return v
}

func allCodecs() []Codec {
	return []Codec{
		Bitmap{ElemBytes: 1},
		Bitmap{ElemBytes: 2},
		RLE{ElemBytes: 1, RunBits: 5},
		RLE{ElemBytes: 2, RunBits: 4},
		CSC{ElemBytes: 1, IndexBits: 4},
		Dense{ElemBytes: 1},
	}
}

func TestRoundTripAllCodecs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, c := range allCodecs() {
		for _, density := range []float64{0, 0.1, 0.5, 1.0} {
			v := randomSparseVec(rng, 333, density)
			e := c.Encode(v)
			got := e.Decode()
			if len(got) != len(v) {
				t.Fatalf("%s: decoded length %d, want %d", c.Name(), len(got), len(v))
			}
			for i := range v {
				if got[i] != v[i] {
					t.Fatalf("%s density=%g: value mismatch at %d: %g vs %g", c.Name(), density, i, got[i], v[i])
				}
			}
		}
	}
}

func TestSizeMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, c := range allCodecs() {
		for trial := 0; trial < 20; trial++ {
			v := randomSparseVec(rng, 1+rng.Intn(500), rng.Float64())
			if got, want := c.Size(v), c.Encode(v).Bytes; got != want {
				t.Fatalf("%s: Size=%d, Encode.Bytes=%d", c.Name(), got, want)
			}
		}
	}
}

func TestBitmapSizeExact(t *testing.T) {
	b := Bitmap{ElemBytes: 1}
	v := make([]float64, 16)
	v[3], v[9] = 1, -2
	// 16 elements => 2 bitmap bytes + 2 value bytes.
	if got := b.Size(v); got != 4 {
		t.Fatalf("Bitmap size = %d, want 4", got)
	}
	if got := b.SizeFor(16, 2); got != 4 {
		t.Fatalf("SizeFor = %d, want 4", got)
	}
}

// The boundary-effect channel needs compressed size to be strictly monotone
// in nnz for a fixed element count.
func TestBitmapSizeMonotoneInNNZ(t *testing.T) {
	b := Bitmap{ElemBytes: 1}
	n := 1000
	prev := -1
	for nnz := 0; nnz <= n; nnz += 37 {
		s := b.SizeFor(n, nnz)
		if s <= prev {
			t.Fatalf("size not strictly increasing: nnz=%d size=%d prev=%d", nnz, s, prev)
		}
		prev = s
	}
}

func TestNNZFromBitmapSizeInvertsEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	b := Bitmap{ElemBytes: 1}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		v := randomSparseVec(rng, n, rng.Float64())
		e := b.Encode(v)
		nnz, err := NNZFromBitmapSize(b, n, e.Bytes)
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if nnz != e.NNZ {
			t.Fatalf("recovered nnz=%d, want %d", nnz, e.NNZ)
		}
	}
}

func TestNNZFromBitmapSizeRejectsBadSizes(t *testing.T) {
	b := Bitmap{ElemBytes: 2}
	if _, err := NNZFromBitmapSize(b, 16, 3); err == nil {
		t.Fatal("expected error for odd payload remainder")
	}
	if _, err := NNZFromBitmapSize(b, 16, 1); err == nil {
		t.Fatal("expected error for size below header")
	}
	if _, err := NNZFromBitmapSize(b, 8, 1+2*9); err == nil {
		t.Fatal("expected error for implied nnz > n")
	}
}

func TestRLEHandlesLongZeroRuns(t *testing.T) {
	r := RLE{ElemBytes: 1, RunBits: 3} // max run 7
	v := make([]float64, 40)           // all zeros
	e := r.Encode(v)
	if got := e.Decode(); len(got) != 40 {
		t.Fatalf("decode length %d", len(got))
	}
	// 40 zeros with max run 7: 5 saturated entries (runs of 7 covering 35)
	// plus a trailing terminator = 6 entries.
	if want := 6 * (3 + 8); (e.Bytes*8+7)/8*8 < want {
		t.Fatalf("RLE all-zero size too small: %d bytes", e.Bytes)
	}
	dense := make([]float64, 40)
	for i := range dense {
		dense[i] = 1
	}
	if r.Size(dense) <= r.Size(v) {
		t.Fatal("dense payload should be larger than all-zero payload")
	}
}

func TestCSCPadding(t *testing.T) {
	c := CSC{ElemBytes: 1, IndexBits: 2} // max gap 3
	v := make([]float64, 10)
	v[0], v[9] = 1, 2 // gap of 8 between nonzeros requires padding entries
	e := c.Encode(v)
	got := e.Decode()
	if got[0] != 1 || got[9] != 2 {
		t.Fatalf("decode mismatch: %v", got)
	}
	// 2 real entries + at least 2 padding entries.
	if c.entries(v) < 4 {
		t.Fatalf("entries = %d, want >= 4", c.entries(v))
	}
}

func TestDenseSizeIgnoresContent(t *testing.T) {
	d := Dense{ElemBytes: 2}
	zeros := make([]float64, 50)
	ones := make([]float64, 50)
	for i := range ones {
		ones[i] = 1
	}
	if d.Size(zeros) != d.Size(ones) || d.Size(zeros) != 100 {
		t.Fatalf("Dense sizes: %d vs %d", d.Size(zeros), d.Size(ones))
	}
}

// Property: for every codec, compressed size never exceeds a generous bound
// and decoding is exact.
func TestCodecRoundTripProperty(t *testing.T) {
	codecs := allCodecs()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		v := randomSparseVec(rng, n, rng.Float64())
		for _, c := range codecs {
			e := c.Encode(v)
			got := e.Decode()
			for i := range v {
				if got[i] != v[i] {
					return false
				}
			}
			if e.Bytes != c.Size(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a nonzero to a zero position never shrinks the bitmap
// encoding (monotonicity the attack depends on).
func TestBitmapMonotoneProperty(t *testing.T) {
	b := Bitmap{ElemBytes: 1}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		v := randomSparseVec(rng, n, 0.3)
		before := b.Size(v)
		// flip one zero (if any) to nonzero
		for i, x := range v {
			if x == 0 {
				v[i] = 1
				break
			}
		}
		return b.Size(v) >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizePreservesZeros(t *testing.T) {
	v := []float64{0, 0.4, -0.4, 100, -100, 0}
	q := Quantize(v, 8, 0.5)
	if q[0] != 0 || q[5] != 0 {
		t.Fatal("Quantize moved exact zeros")
	}
	if q[1] != 0.5 && q[1] != 0 {
		t.Fatalf("Quantize(0.4) = %g", q[1])
	}
	// 8-bit range is [-128, 127] steps of 0.5 => clamp at 63.5 / -64.
	if q[3] != 63.5 {
		t.Fatalf("positive clamp = %g, want 63.5", q[3])
	}
	if q[4] != -64 {
		t.Fatalf("negative clamp = %g, want -64", q[4])
	}
}

func TestQuantizeBadBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantize([]float64{1}, 1, 1)
}
