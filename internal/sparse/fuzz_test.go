package sparse

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// bytesToVec decodes fuzz input into a float64 payload with a controlled
// zero fraction (byte 0 selects density; subsequent bytes become values).
func bytesToVec(data []byte) []float64 {
	if len(data) < 2 {
		return nil
	}
	density := int(data[0])%10 + 1 // 1..10 of 10
	vals := make([]float64, 0, len(data)-1)
	for i, b := range data[1:] {
		if (i+int(b))%10 < density {
			v := float64(b) - 127.5
			if v == 0 {
				v = 1
			}
			vals = append(vals, v)
		} else {
			vals = append(vals, 0)
		}
	}
	return vals
}

func FuzzCodecsRoundTrip(f *testing.F) {
	f.Add([]byte{5, 1, 2, 3, 0, 0, 200, 9})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{255}, 100))
	var seed []byte
	for i := 0; i < 64; i++ {
		seed = append(seed, byte(i*37))
	}
	f.Add(seed)
	codecs := []Codec{
		Bitmap{ElemBytes: 1},
		RLE{ElemBytes: 1, RunBits: 4},
		CSC{ElemBytes: 2, IndexBits: 3},
		Dense{ElemBytes: 1},
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		vals := bytesToVec(data)
		if len(vals) == 0 {
			return
		}
		for _, c := range codecs {
			e := c.Encode(vals)
			if e.Bytes != c.Size(vals) {
				t.Fatalf("%s: Size disagrees with Encode", c.Name())
			}
			if e.Bytes < 0 {
				t.Fatalf("%s: negative size", c.Name())
			}
			got := e.Decode()
			if len(got) != len(vals) {
				t.Fatalf("%s: length changed", c.Name())
			}
			for i := range vals {
				if got[i] != vals[i] {
					t.Fatalf("%s: value %d mismatch", c.Name(), i)
				}
			}
		}
	})
}

func FuzzQuantizeStable(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			return
		}
		vals := make([]float64, 0, len(data)/8)
		for i := 0; i+8 <= len(data); i += 8 {
			u := binary.LittleEndian.Uint64(data[i:])
			v := math.Float64frombits(u)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			vals = append(vals, v)
		}
		q := Quantize(vals, 8, 0.5)
		for i, v := range q {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("quantize produced non-finite value at %d", i)
			}
			if vals[i] == 0 && v != 0 {
				t.Fatal("quantize moved an exact zero")
			}
		}
		// Idempotence: quantizing a quantized vector is a no-op.
		q2 := Quantize(q, 8, 0.5)
		for i := range q {
			if q[i] != q2[i] {
				t.Fatalf("quantize not idempotent at %d: %g vs %g", i, q[i], q2[i])
			}
		}
	})
}
