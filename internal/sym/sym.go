// Package sym provides hash-consed symbolic expressions: the algebra behind
// the paper's symbolic convolution engine (§6.2). Expressions are built from
// free variables (generic weights, biases, probe values), weighted sums, and
// max nodes; each structurally distinct expression gets a unique ID, so
// expression equality — the engine's only question — is integer comparison.
//
// Structural identity is the right notion here: probe positions related by a
// shift build *identical* trees, while positions that differ (the boundary
// effect) build different trees whose values differ for generic weights.
// The residual "structurally different but numerically equal" case is
// exactly the one-sided observability error the attack already tolerates
// (§5.4).
package sym

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ID identifies an interned expression. IDs are only meaningful within the
// Interner that produced them.
type ID int32

type opKind uint8

const (
	opZero opKind = iota
	opOne
	opVar
	opSum
	opMax
)

// Term is one coef·x summand of a Sum expression.
type Term struct {
	Coef ID
	X    ID
}

type node struct {
	op    opKind
	name  string // opVar
	terms []Term // opSum
	args  []ID   // opMax
}

// Interner hash-conses expressions.
type Interner struct {
	nodes []node
	index map[string]ID
	kbuf  []byte // scratch for key construction; intern is the hot path
	// hits/misses count intern lookups that found an existing expression vs
	// materialized a new one. They cost one integer add on the hot path and
	// are the raw material for the solver's cost attribution (a VGG-S solve
	// is "interner-bound" exactly when misses explode; see ROADMAP).
	hits, misses uint64
	// bytes approximates retained memory as the sum of interned key bytes
	// (the index map keys dominate a blown-up interner).
	bytes int64
	// Growth watchdog (SetBudget). A solve that would intern past either
	// limit panics with *BudgetExceeded instead of growing toward OOM; the
	// prober recovers the panic into a partial result. site is the current
	// caller attribution label (SetSite) and siteMisses — allocated only
	// when a budget is armed, so the unbudgeted hot path pays nothing —
	// attributes new expressions to the call site that built them.
	maxExprs   int
	maxBytes   int64
	site       string
	siteMisses map[string]*siteCount
}

type siteCount struct {
	misses int
	bytes  int64
}

// BudgetExceeded is the panic value thrown by intern when a SetBudget limit
// is crossed. It implements error; Site names the attribution label that was
// active when the budget blew (for a conv engine, the layer tag whose
// expression family exploded).
type BudgetExceeded struct {
	Site     string
	Exprs    int
	Bytes    int64
	MaxExprs int
	MaxBytes int64
}

// Error implements the error interface.
func (e *BudgetExceeded) Error() string {
	return fmt.Sprintf("sym: expression budget exceeded at site %q: %d exprs (max %d), %d key bytes (max %d)",
		e.Site, e.Exprs, e.MaxExprs, e.Bytes, e.MaxBytes)
}

// SetBudget arms the growth watchdog: interning more than maxExprs distinct
// expressions or more than maxBytes of key bytes panics with
// *BudgetExceeded. A zero limit means unlimited on that axis; arming any
// budget also enables per-site miss attribution (Sites).
func (in *Interner) SetBudget(maxExprs int, maxBytes int64) {
	in.maxExprs = maxExprs
	in.maxBytes = maxBytes
	if in.siteMisses == nil && (maxExprs > 0 || maxBytes > 0) {
		in.siteMisses = make(map[string]*siteCount)
	}
}

// SetSite labels subsequent interning with the given call-site attribution
// key (e.g. the symbolic conv engine's per-layer tag). Cheap enough for
// per-layer granularity; a site sticks until the next SetSite.
func (in *Interner) SetSite(site string) { in.site = site }

// SiteStats is one call site's share of interner growth.
type SiteStats struct {
	Site   string
	Misses int
	Bytes  int64
}

// Sites returns per-site growth attribution, largest first (ties broken by
// site name for determinism). Empty unless a budget was armed before the
// growth happened.
func (in *Interner) Sites() []SiteStats {
	out := make([]SiteStats, 0, len(in.siteMisses))
	for site, c := range in.siteMisses {
		out = append(out, SiteStats{Site: site, Misses: c.misses, Bytes: c.bytes})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Misses != out[j].Misses {
			return out[i].Misses > out[j].Misses
		}
		return out[i].Site < out[j].Site
	})
	return out
}

// NewInterner returns an interner pre-seeded with Zero and One.
func NewInterner() *Interner {
	in := &Interner{index: make(map[string]ID)}
	in.intern(node{op: opZero}) // ID 0
	in.intern(node{op: opOne})  // ID 1
	return in
}

// Zero is the additive identity (the implicit padding value).
func (in *Interner) Zero() ID { return 0 }

// One is the multiplicative identity (used as the x of bias terms).
func (in *Interner) One() ID { return 1 }

// appendKey serializes n into buf. Interning is the engine's hottest path
// (every symbolic Sum/Max lands here), so the key is built with integer
// appends into a reusable scratch buffer rather than fmt.
func appendKey(buf []byte, n node) []byte {
	switch n.op {
	case opZero:
		buf = append(buf, '0')
	case opOne:
		buf = append(buf, '1')
	case opVar:
		buf = append(buf, 'v', ':')
		buf = append(buf, n.name...)
	case opSum:
		buf = append(buf, 's', ':')
		for _, t := range n.terms {
			buf = strconv.AppendInt(buf, int64(t.Coef), 10)
			buf = append(buf, '*')
			buf = strconv.AppendInt(buf, int64(t.X), 10)
			buf = append(buf, ',')
		}
	case opMax:
		buf = append(buf, 'm', ':')
		for _, a := range n.args {
			buf = strconv.AppendInt(buf, int64(a), 10)
			buf = append(buf, ',')
		}
	}
	return buf
}

func (in *Interner) intern(n node) ID {
	in.kbuf = appendKey(in.kbuf[:0], n)
	// map[string]ID lookup keyed by []byte compiles to a no-alloc probe;
	// the key string is materialized only for genuinely new expressions.
	if id, ok := in.index[string(in.kbuf)]; ok {
		in.hits++
		return id
	}
	in.misses++
	id := ID(len(in.nodes))
	in.nodes = append(in.nodes, n)
	in.index[string(in.kbuf)] = id
	in.bytes += int64(len(in.kbuf))
	if in.siteMisses != nil {
		c := in.siteMisses[in.site]
		if c == nil {
			c = &siteCount{}
			in.siteMisses[in.site] = c
		}
		c.misses++
		c.bytes += int64(len(in.kbuf))
		if (in.maxExprs > 0 && len(in.nodes) > in.maxExprs) ||
			(in.maxBytes > 0 && in.bytes > in.maxBytes) {
			panic(&BudgetExceeded{
				Site: in.site, Exprs: len(in.nodes), Bytes: in.bytes,
				MaxExprs: in.maxExprs, MaxBytes: in.maxBytes,
			})
		}
	}
	return id
}

// Var returns the expression for the named free variable.
func (in *Interner) Var(name string) ID {
	return in.intern(node{op: opVar, name: name})
}

// Sum returns Σ coef·x over the given terms, canonicalized: terms whose
// coefficient or operand is Zero are dropped; a single 1·x term collapses to
// x; the empty sum is Zero; terms are sorted so construction order does not
// matter.
func (in *Interner) Sum(terms []Term) ID {
	kept := make([]Term, 0, len(terms))
	for _, t := range terms {
		if t.Coef == in.Zero() || t.X == in.Zero() {
			continue
		}
		kept = append(kept, t)
	}
	if len(kept) == 0 {
		return in.Zero()
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Coef != kept[j].Coef {
			return kept[i].Coef < kept[j].Coef
		}
		return kept[i].X < kept[j].X
	})
	if len(kept) == 1 && kept[0].Coef == in.One() {
		return kept[0].X
	}
	return in.intern(node{op: opSum, terms: kept})
}

// Add returns x + y.
func (in *Interner) Add(x, y ID) ID {
	return in.Sum([]Term{{in.One(), x}, {in.One(), y}})
}

// Max returns max over the arguments, canonicalized: duplicates collapse
// (max(a,a)=a), arguments are sorted, and a single argument is returned
// as-is. Max of no arguments is Zero.
func (in *Interner) Max(args []ID) ID {
	if len(args) == 0 {
		return in.Zero()
	}
	uniq := append([]ID(nil), args...)
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
	out := uniq[:1]
	for _, a := range uniq[1:] {
		if a != out[len(out)-1] {
			out = append(out, a)
		}
	}
	if len(out) == 1 {
		return out[0]
	}
	return in.intern(node{op: opMax, args: out})
}

// NumExprs returns how many distinct expressions have been interned.
func (in *Interner) NumExprs() int { return len(in.nodes) }

// Stats is the interner's cost-attribution snapshot: the distinct-expression
// count and how the intern lookups split between cache hits and new
// materializations. HitRate of a healthy solve is close to 1; a solve whose
// expression count explodes shows up here first.
type Stats struct {
	Exprs  int
	Hits   uint64
	Misses uint64
}

// HitRate returns the fraction of intern lookups served by an existing
// expression (0 when the interner was never used).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns the interner's current counters.
func (in *Interner) Stats() Stats {
	return Stats{Exprs: len(in.nodes), Hits: in.hits, Misses: in.misses}
}

// String renders an expression for debugging.
func (in *Interner) String(id ID) string {
	n := in.nodes[id]
	switch n.op {
	case opZero:
		return "0"
	case opOne:
		return "1"
	case opVar:
		return n.name
	case opSum:
		var parts []string
		for _, t := range n.terms {
			if t.Coef == in.One() {
				parts = append(parts, in.String(t.X))
			} else if t.X == in.One() {
				parts = append(parts, in.String(t.Coef))
			} else {
				parts = append(parts, in.String(t.Coef)+"*"+in.String(t.X))
			}
		}
		return "(" + strings.Join(parts, "+") + ")"
	case opMax:
		var parts []string
		for _, a := range n.args {
			parts = append(parts, in.String(a))
		}
		return "max(" + strings.Join(parts, ",") + ")"
	}
	return "?"
}
