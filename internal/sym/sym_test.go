package sym

import "testing"

func TestZeroOneIdentity(t *testing.T) {
	in := NewInterner()
	if in.Zero() == in.One() {
		t.Fatal("Zero == One")
	}
	if in.Zero() != 0 || in.One() != 1 {
		t.Fatal("seed IDs moved")
	}
}

func TestVarInterning(t *testing.T) {
	in := NewInterner()
	a1 := in.Var("a")
	a2 := in.Var("a")
	b := in.Var("b")
	if a1 != a2 {
		t.Fatal("same var interned twice")
	}
	if a1 == b {
		t.Fatal("distinct vars collided")
	}
}

func TestSumCanonicalization(t *testing.T) {
	in := NewInterner()
	a, b, w1, w2 := in.Var("a"), in.Var("b"), in.Var("w1"), in.Var("w2")
	s1 := in.Sum([]Term{{w1, a}, {w2, b}})
	s2 := in.Sum([]Term{{w2, b}, {w1, a}})
	if s1 != s2 {
		t.Fatal("sum not order-independent")
	}
	s3 := in.Sum([]Term{{w1, a}, {w2, a}})
	if s3 == s1 {
		t.Fatal("different sums collided")
	}
}

func TestSumDropsZeroTerms(t *testing.T) {
	in := NewInterner()
	a, w := in.Var("a"), in.Var("w")
	s := in.Sum([]Term{{w, a}, {w, in.Zero()}, {in.Zero(), a}})
	if s != in.Sum([]Term{{w, a}}) {
		t.Fatal("zero terms not dropped")
	}
	if in.Sum(nil) != in.Zero() {
		t.Fatal("empty sum != Zero")
	}
}

func TestSumSingleUnitTermCollapses(t *testing.T) {
	in := NewInterner()
	a := in.Var("a")
	if in.Sum([]Term{{in.One(), a}}) != a {
		t.Fatal("1*a did not collapse to a")
	}
	// But w*a must not collapse.
	w := in.Var("w")
	if in.Sum([]Term{{w, a}}) == a {
		t.Fatal("w*a collapsed incorrectly")
	}
}

func TestDuplicateTermsDistinctFromSingle(t *testing.T) {
	in := NewInterner()
	a, w := in.Var("a"), in.Var("w")
	one := in.Sum([]Term{{w, a}})
	two := in.Sum([]Term{{w, a}, {w, a}})
	if one == two {
		t.Fatal("w*a and 2*w*a collided")
	}
}

func TestAdd(t *testing.T) {
	in := NewInterner()
	a, b := in.Var("a"), in.Var("b")
	if in.Add(a, b) != in.Add(b, a) {
		t.Fatal("Add not commutative")
	}
	if in.Add(a, in.Zero()) != a {
		t.Fatal("a+0 != a")
	}
}

func TestMaxCanonicalization(t *testing.T) {
	in := NewInterner()
	a, b, c := in.Var("a"), in.Var("b"), in.Var("c")
	if in.Max([]ID{a, b, c}) != in.Max([]ID{c, a, b}) {
		t.Fatal("max not order-independent")
	}
	if in.Max([]ID{a, a, b}) != in.Max([]ID{a, b}) {
		t.Fatal("max duplicates not collapsed")
	}
	if in.Max([]ID{a}) != a {
		t.Fatal("max of one arg")
	}
	if in.Max([]ID{a, a}) != a {
		t.Fatal("max(a,a) != a")
	}
	if in.Max(nil) != in.Zero() {
		t.Fatal("empty max")
	}
}

func TestNestedStructuralEquality(t *testing.T) {
	in := NewInterner()
	a, b, w, v := in.Var("a"), in.Var("b"), in.Var("w"), in.Var("v")
	// Build the same nested expression twice through different paths.
	inner1 := in.Sum([]Term{{w, a}, {v, b}})
	inner2 := in.Sum([]Term{{v, b}, {w, a}})
	outer1 := in.Max([]ID{inner1, a})
	outer2 := in.Max([]ID{a, inner2})
	if outer1 != outer2 {
		t.Fatal("nested expressions not shared")
	}
}

func TestNumExprsGrowth(t *testing.T) {
	in := NewInterner()
	n0 := in.NumExprs()
	in.Var("x")
	in.Var("x") // no growth
	if in.NumExprs() != n0+1 {
		t.Fatalf("NumExprs = %d, want %d", in.NumExprs(), n0+1)
	}
}

func TestStringRendering(t *testing.T) {
	in := NewInterner()
	a, w := in.Var("a"), in.Var("w")
	s := in.Sum([]Term{{w, a}, {in.Var("bias"), in.One()}})
	str := in.String(s)
	if str == "" || str == "?" {
		t.Fatalf("String = %q", str)
	}
	if got := in.String(in.Zero()); got != "0" {
		t.Fatalf("Zero String = %q", got)
	}
	m := in.Max([]ID{a, s})
	if in.String(m) == "" {
		t.Fatal("max String empty")
	}
}
