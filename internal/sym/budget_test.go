package sym

import (
	"errors"
	"fmt"
	"testing"
)

// mustPanicBudget runs f and returns the *BudgetExceeded it panics with,
// failing the test if f returns normally or panics with something else.
func mustPanicBudget(t *testing.T, f func()) *BudgetExceeded {
	t.Helper()
	var be *BudgetExceeded
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("interning past the budget did not panic")
			}
			var ok bool
			be, ok = r.(*BudgetExceeded)
			if !ok {
				t.Fatalf("panic value is %T, want *BudgetExceeded", r)
			}
		}()
		f()
	}()
	return be
}

func TestBudgetExprLimit(t *testing.T) {
	in := NewInterner()
	in.SetBudget(4, 0) // Zero+One already hold 2 slots
	in.SetSite("layerA")
	in.Var("a")
	in.Var("b") // 4 exprs: at the limit, not past it
	be := mustPanicBudget(t, func() { in.Var("c") })
	if be.Site != "layerA" || be.Exprs != 5 || be.MaxExprs != 4 {
		t.Fatalf("BudgetExceeded = %+v", be)
	}
	if be.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestBudgetByteLimit(t *testing.T) {
	in := NewInterner()
	in.SetBudget(0, 16)
	in.SetSite("bytes")
	mustPanicBudget(t, func() {
		for i := 0; i < 100; i++ {
			in.Var(fmt.Sprintf("longvariablename%d", i))
		}
	})
}

func TestBudgetHitsDoNotCount(t *testing.T) {
	in := NewInterner()
	in.Var("x") // 3 exprs
	in.SetBudget(3, 0)
	// Re-interning existing expressions is free: only new materializations
	// can blow the budget.
	for i := 0; i < 1000; i++ {
		in.Var("x")
		in.Zero()
		in.One()
	}
	if in.NumExprs() != 3 {
		t.Fatalf("NumExprs = %d", in.NumExprs())
	}
	mustPanicBudget(t, func() { in.Var("y") })
}

func TestUnbudgetedInternerNeverPanics(t *testing.T) {
	in := NewInterner()
	in.SetSite("ignored") // site without budget is inert
	for i := 0; i < 10000; i++ {
		in.Var(fmt.Sprintf("v%d", i))
	}
	if got := in.Sites(); len(got) != 0 {
		t.Fatalf("unbudgeted interner attributed sites: %v", got)
	}
}

func TestSiteAttribution(t *testing.T) {
	in := NewInterner()
	in.SetBudget(1000000, 0)
	in.SetSite("conv1")
	in.Var("a")
	in.Var("b")
	in.Var("c")
	in.SetSite("conv2")
	in.Var("d")

	sites := in.Sites()
	if len(sites) != 2 {
		t.Fatalf("Sites = %v", sites)
	}
	// Largest first.
	if sites[0].Site != "conv1" || sites[0].Misses != 3 {
		t.Fatalf("top site = %+v", sites[0])
	}
	if sites[1].Site != "conv2" || sites[1].Misses != 1 {
		t.Fatalf("second site = %+v", sites[1])
	}
	if sites[0].Bytes <= 0 {
		t.Fatal("site byte attribution missing")
	}
}

func TestSitesDeterministicTieBreak(t *testing.T) {
	in := NewInterner()
	in.SetBudget(1000000, 0)
	in.SetSite("zeta")
	in.Var("a")
	in.SetSite("alpha")
	in.Var("b")
	sites := in.Sites()
	if len(sites) != 2 || sites[0].Site != "alpha" || sites[1].Site != "zeta" {
		t.Fatalf("tie break not by site name: %v", sites)
	}
}

func TestBudgetExceededIsError(t *testing.T) {
	var err error = &BudgetExceeded{Site: "s", Exprs: 10, MaxExprs: 5}
	var be *BudgetExceeded
	if !errors.As(err, &be) {
		t.Fatal("errors.As failed on *BudgetExceeded")
	}
}
