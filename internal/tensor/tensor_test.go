package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndSize(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("Size = %d, want 24", x.Size())
	}
	if x.NumDims() != 3 {
		t.Fatalf("NumDims = %d, want 3", x.NumDims())
	}
	if x.Dim(1) != 3 {
		t.Fatalf("Dim(1) = %d, want 3", x.Dim(1))
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New tensor not zero-filled")
		}
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(2, -1)
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestIndexRoundTrip(t *testing.T) {
	x := New(3, 4, 5)
	want := 0.0
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 5; k++ {
				x.Set(want, i, j, k)
				want++
			}
		}
	}
	// Row-major layout means data should simply count up.
	for i, v := range x.Data {
		if v != float64(i) {
			t.Fatalf("Data[%d] = %g, want %d", i, v, i)
		}
	}
	if got := x.At(2, 3, 4); got != 59 {
		t.Fatalf("At(2,3,4) = %g, want 59", got)
	}
}

func TestIndexOutOfRangePanics(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	x.At(0, 2)
}

func TestAt4MatchesAt(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := New(2, 3, 4, 5)
	x.Randn(rng, 1)
	for a := 0; a < 2; a++ {
		for b := 0; b < 3; b++ {
			for c := 0; c < 4; c++ {
				for d := 0; d < 5; d++ {
					if x.At4(a, b, c, d) != x.At(a, b, c, d) {
						t.Fatalf("At4(%d,%d,%d,%d) mismatch", a, b, c, d)
					}
				}
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Data[0] = 99
	if x.Data[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Data[0] = 42
	if x.Data[0] != 42 {
		t.Fatal("Reshape should share storage")
	}
	if y.At(2, 1) != 6 {
		t.Fatalf("reshaped At(2,1) = %g, want 6", y.At(2, 1))
	}
}

func TestReshapeBadCountPanics(t *testing.T) {
	x := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad reshape")
		}
	}()
	x.Reshape(4, 2)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{10, 20, 30}, 3)
	c := a.Add(b)
	if c.Data[2] != 33 {
		t.Fatalf("Add: got %v", c.Data)
	}
	d := b.Sub(a)
	if d.Data[0] != 9 {
		t.Fatalf("Sub: got %v", d.Data)
	}
	a.MulInPlace(b)
	if a.Data[1] != 40 {
		t.Fatalf("MulInPlace: got %v", a.Data)
	}
	b.Scale(0.5)
	if b.Data[0] != 5 {
		t.Fatalf("Scale: got %v", b.Data)
	}
	e := FromSlice([]float64{1, 1, 1}, 3)
	e.AxpyInPlace(2, FromSlice([]float64{1, 2, 3}, 3))
	if e.Data[2] != 7 {
		t.Fatalf("Axpy: got %v", e.Data)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a := New(2, 2)
	b := New(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape mismatch")
		}
	}()
	a.AddInPlace(b)
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{-3, 0, 5, 2}, 4)
	if x.Sum() != 4 {
		t.Fatalf("Sum = %g", x.Sum())
	}
	if x.Max() != 5 || x.Min() != -3 {
		t.Fatalf("Max/Min = %g/%g", x.Max(), x.Min())
	}
	if x.ArgMax() != 2 || x.ArgMin() != 0 {
		t.Fatalf("ArgMax/ArgMin = %d/%d", x.ArgMax(), x.ArgMin())
	}
	if x.AbsMax() != 5 {
		t.Fatalf("AbsMax = %g", x.AbsMax())
	}
	if got := x.Norm(); math.Abs(got-math.Sqrt(9+25+4)) > 1e-12 {
		t.Fatalf("Norm = %g", got)
	}
}

func TestNNZAndSparsity(t *testing.T) {
	x := FromSlice([]float64{0, 1e-12, -2, 3, 0, 0, 0, 1}, 8)
	if got := x.NNZ(1e-9); got != 3 {
		t.Fatalf("NNZ = %d, want 3", got)
	}
	if got := x.Sparsity(1e-9); math.Abs(got-5.0/8.0) > 1e-12 {
		t.Fatalf("Sparsity = %g", got)
	}
}

func TestApplyAndFill(t *testing.T) {
	x := New(4)
	x.Fill(2)
	x.Apply(func(v float64) float64 { return v * v })
	for _, v := range x.Data {
		if v != 4 {
			t.Fatalf("Apply: got %v", x.Data)
		}
	}
	x.Zero()
	if x.Sum() != 0 {
		t.Fatal("Zero failed")
	}
}

func TestKaimingInitStdDev(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := New(100000)
	x.KaimingInit(rng, 50)
	wantStd := math.Sqrt(2.0 / 50.0)
	var sumSq float64
	for _, v := range x.Data {
		sumSq += v * v
	}
	got := math.Sqrt(sumSq / float64(x.Size()))
	if math.Abs(got-wantStd)/wantStd > 0.05 {
		t.Fatalf("Kaiming std = %g, want about %g", got, wantStd)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, k, n := 70, 60, 50 // large enough to cross parallelThreshold
	a := New(m, k)
	b := New(k, n)
	a.Randn(rng, 1)
	b.Randn(rng, 1)
	got := MatMul(a, b)
	want := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			want.Set(s, i, j)
		}
	}
	if !ApproxEqual(got, want, 1e-9) {
		t.Fatal("parallel MatMul disagrees with naive reference")
	}
}

func TestMatMulIntoReusesStorage(t *testing.T) {
	a := FromSlice([]float64{1, 0, 0, 1}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	dst := New(2, 2)
	dst.Fill(99) // must be overwritten, not accumulated
	MatMulInto(dst, a, b)
	if dst.Data[0] != 5 || dst.Data[3] != 8 {
		t.Fatalf("MatMulInto = %v", dst.Data)
	}
}

func TestMatMulMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	x := FromSlice([]float64{1, 1, 1}, 3)
	y := MatVec(a, x)
	if y.Data[0] != 6 || y.Data[1] != 15 {
		t.Fatalf("MatVec = %v", y.Data)
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose(a)
	if at.Dim(0) != 3 || at.Dim(1) != 2 {
		t.Fatalf("Transpose shape = %v", at.Shape())
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatal("Transpose values wrong")
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for random small matrices.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := New(m, k)
		b := New(k, n)
		a.Randn(rng, 1)
		b.Randn(rng, 1)
		lhs := Transpose(MatMul(a, b))
		rhs := MatMul(Transpose(b), Transpose(a))
		return ApproxEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix multiplication distributes over addition.
func TestMatMulDistributiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := New(m, k)
		b := New(k, n)
		c := New(k, n)
		a.Randn(rng, 1)
		b.Randn(rng, 1)
		c.Randn(rng, 1)
		lhs := MatMul(a, b.Add(c))
		rhs := MatMul(a, b).Add(MatMul(a, c))
		return ApproxEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: NNZ is invariant under permutation-free reshape.
func TestNNZReshapeInvariantProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		x := FromSlice(append([]float64(nil), vals...), len(vals))
		y := x.Reshape(1, len(vals))
		return x.NNZ(0) == y.NNZ(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := FromSlice([]float64{1, 2}, 2)
	if s := small.String(); s == "" {
		t.Fatal("empty String for small tensor")
	}
	big := New(100)
	if s := big.String(); s == "" {
		t.Fatal("empty String for large tensor")
	}
}
