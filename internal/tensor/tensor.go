// Package tensor provides dense n-dimensional float64 tensors used by every
// layer of the HuffDuff stack: the neural-network library, the accelerator
// simulator, and the attack itself.
//
// Tensors are row-major and carry an explicit shape. Dimension errors are
// programmer errors and panic; numeric routines never panic on data values.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Tensor is a dense row-major n-dimensional array of float64.
type Tensor struct {
	shape   []int
	strides []int
	Data    []float64
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	t := &Tensor{
		shape: append([]int(nil), shape...),
		Data:  make([]float64, n),
	}
	t.strides = computeStrides(t.shape)
	return t
}

// FromSlice wraps data in a tensor of the given shape. The data is used
// directly (not copied); its length must equal the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	t := &Tensor{
		shape: append([]int(nil), shape...),
		Data:  data,
	}
	t.strides = computeStrides(t.shape)
	return t
}

func computeStrides(shape []int) []int {
	strides := make([]int, len(shape))
	s := 1
	for i := len(shape) - 1; i >= 0; i-- {
		strides[i] = s
		s *= shape[i]
	}
	return strides
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// NumDims returns the number of dimensions.
func (t *Tensor) NumDims() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Index converts a multi-dimensional index to a flat offset.
func (t *Tensor) Index(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for %d-d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", x, t.shape[i], i))
		}
		off += x * t.strides[i]
	}
	return off
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.Index(idx...)] }

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.Index(idx...)] = v }

// At4 is a fast unchecked accessor for 4-d (e.g. NCHW) tensors.
func (t *Tensor) At4(a, b, c, d int) float64 {
	return t.Data[a*t.strides[0]+b*t.strides[1]+c*t.strides[2]+d]
}

// Set4 is a fast unchecked setter for 4-d tensors.
func (t *Tensor) Set4(v float64, a, b, c, d int) {
	t.Data[a*t.strides[0]+b*t.strides[1]+c*t.strides[2]+d] = v
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of the same data with a new shape. The element count
// must be unchanged.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elements) to %v (%d elements)", t.shape, len(t.Data), shape, n))
	}
	return FromSlice(t.Data, shape...)
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// Apply replaces every element x with f(x).
func (t *Tensor) Apply(f func(float64) float64) {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
}

// AddInPlace adds o elementwise into t.
func (t *Tensor) AddInPlace(o *Tensor) {
	t.requireSameShape(o)
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// SubInPlace subtracts o elementwise from t.
func (t *Tensor) SubInPlace(o *Tensor) {
	t.requireSameShape(o)
	for i, v := range o.Data {
		t.Data[i] -= v
	}
}

// MulInPlace multiplies t elementwise by o.
func (t *Tensor) MulInPlace(o *Tensor) {
	t.requireSameShape(o)
	for i, v := range o.Data {
		t.Data[i] *= v
	}
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AxpyInPlace computes t += alpha*o.
func (t *Tensor) AxpyInPlace(alpha float64, o *Tensor) {
	t.requireSameShape(o)
	for i, v := range o.Data {
		t.Data[i] += alpha * v
	}
}

// Add returns t + o as a new tensor.
func (t *Tensor) Add(o *Tensor) *Tensor {
	c := t.Clone()
	c.AddInPlace(o)
	return c
}

// Sub returns t - o as a new tensor.
func (t *Tensor) Sub(o *Tensor) *Tensor {
	c := t.Clone()
	c.SubInPlace(o)
	return c
}

func (t *Tensor) requireSameShape(o *Tensor) {
	if !SameShape(t, o) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", t.shape, o.shape))
	}
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element. It panics on an empty tensor.
func (t *Tensor) Min() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the maximum element.
func (t *Tensor) ArgMax() int {
	if len(t.Data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, bi := t.Data[0], 0
	for i, v := range t.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// ArgMin returns the flat index of the minimum element.
func (t *Tensor) ArgMin() int {
	if len(t.Data) == 0 {
		panic("tensor: ArgMin of empty tensor")
	}
	best, bi := t.Data[0], 0
	for i, v := range t.Data {
		if v < best {
			best, bi = v, i
		}
	}
	return bi
}

// NNZ returns the number of elements whose absolute value exceeds eps.
// This is the quantity the compressed-transfer side channel leaks.
func (t *Tensor) NNZ(eps float64) int {
	n := 0
	for _, v := range t.Data {
		if math.Abs(v) > eps {
			n++
		}
	}
	return n
}

// Sparsity returns the fraction of elements with |v| <= eps.
func (t *Tensor) Sparsity(eps float64) float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return 1 - float64(t.NNZ(eps))/float64(len(t.Data))
}

// Norm returns the L2 norm of all elements.
func (t *Tensor) Norm() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// AbsMax returns the maximum absolute value of any element, or 0 when empty.
func (t *Tensor) AbsMax() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Randn fills the tensor with N(0, std²) samples from rng.
func (t *Tensor) Randn(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
}

// Uniform fills the tensor with samples from U[lo, hi).
func (t *Tensor) Uniform(rng *rand.Rand, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = lo + rng.Float64()*(hi-lo)
	}
}

// KaimingInit fills a weight tensor with He-normal initialization where fanIn
// is the number of input connections per output unit.
func (t *Tensor) KaimingInit(rng *rand.Rand, fanIn int) {
	if fanIn <= 0 {
		panic("tensor: KaimingInit requires positive fanIn")
	}
	std := math.Sqrt(2.0 / float64(fanIn))
	t.Randn(rng, std)
}

// ApproxEqual reports whether a and b have the same shape and all elements
// within tol of each other.
func ApproxEqual(a, b *Tensor, tol float64) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a compact description, summarizing large tensors.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.Data) <= 16 {
		fmt.Fprintf(&b, "%v", t.Data)
	} else {
		fmt.Fprintf(&b, "[%g %g ... %g] sum=%g", t.Data[0], t.Data[1], t.Data[len(t.Data)-1], t.Sum())
	}
	return b.String()
}
