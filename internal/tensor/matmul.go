package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// MatMul computes C = A·B for 2-d tensors A (m×k) and B (k×n), returning a
// new m×n tensor. Large products are split across goroutines by output row.
func MatMul(a, b *Tensor) *Tensor {
	if a.NumDims() != 2 || b.NumDims() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires 2-d operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch: %v · %v", a.shape, b.shape))
	}
	c := New(m, n)
	matMulInto(c.Data, a.Data, b.Data, m, k, n)
	return c
}

// MatMulInto computes dst = A·B, reusing dst's storage. dst must be m×n.
func MatMulInto(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch dst=%v a=%v b=%v", dst.shape, a.shape, b.shape))
	}
	matMulInto(dst.Data, a.Data, b.Data, m, k, n)
}

// parallelThreshold is the minimum number of multiply-adds before MatMul
// fans out across goroutines; below it the goroutine overhead dominates.
const parallelThreshold = 1 << 16

func matMulInto(dst, a, b []float64, m, k, n int) {
	if m*k*n < parallelThreshold {
		matMulRange(dst, a, b, 0, m, k, n)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRange(dst, a, b, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulRange computes rows [lo,hi) of dst = a·b using an ikj loop order so
// the inner loop streams through b and dst rows sequentially.
func matMulRange(dst, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		drow := dst[i*n : (i+1)*n]
		for x := range drow {
			drow[x] = 0
		}
		arow := a[i*k : (i+1)*k]
		for p, av := range arow {
			//lint:ignore floateq pruning writes exact zeros; skipping them changes no sum, only work
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatVec computes y = A·x for a 2-d tensor A (m×k) and 1-d x (k), returning
// a 1-d tensor of length m.
func MatVec(a, x *Tensor) *Tensor {
	if a.NumDims() != 2 || x.NumDims() != 1 {
		panic(fmt.Sprintf("tensor: MatVec requires 2-d × 1-d, got %v and %v", a.shape, x.shape))
	}
	m, k := a.shape[0], a.shape[1]
	if x.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch: %v · %v", a.shape, x.shape))
	}
	y := New(m)
	for i := 0; i < m; i++ {
		s := 0.0
		row := a.Data[i*k : (i+1)*k]
		for j, v := range row {
			s += v * x.Data[j]
		}
		y.Data[i] = s
	}
	return y
}

// Transpose returns the transpose of a 2-d tensor as a new tensor.
func Transpose(a *Tensor) *Tensor {
	if a.NumDims() != 2 {
		panic(fmt.Sprintf("tensor: Transpose requires a 2-d tensor, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	t := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			t.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return t
}
