package huffduff

import (
	"fmt"
	"math/rand"

	"github.com/huffduff/huffduff/internal/symconv"
	"github.com/huffduff/huffduff/internal/tensor"
	"github.com/huffduff/huffduff/internal/trace"
)

// Config is the end-to-end attack configuration.
type Config struct {
	Probe    ProbeConfig
	Finalize FinalizeConfig
	// BlockBytes is the DRAM transaction granularity, used to correct the
	// truncated head of the encoding interval (§7.2's "small inaccuracy").
	BlockBytes int
}

// DefaultConfig matches the paper's evaluation setup.
func DefaultConfig() Config {
	return Config{
		Probe:      DefaultProbeConfig(),
		Finalize:   DefaultFinalizeConfig(),
		BlockBytes: 64,
	}
}

// Result is everything the attack recovers.
type Result struct {
	Graph  *ObsGraph
	Data   *ProbeData
	Probe  *ProbeResult
	Dims   *SpatialDims
	Timing *TimingResult
	Space  *SolutionSpace
}

// Attack runs the full HuffDuff pipeline against a victim device:
//
//  1. one calibration inference recovers the dataflow graph, footprints,
//     and encoding intervals from RAW dependencies (§3.2);
//  2. the boundary-effect probing campaign recovers every conv layer's
//     kernel/stride/pool via the symbolic engine (§5–6);
//  3. the psum-encoding timing channel recovers output-channel ratios (§7);
//  4. the first-layer sparsity bound pins the ratios to absolute channel
//     counts, yielding the final candidate set (§8.2).
func Attack(victim Victim, cfg Config) (*Result, error) {
	fin := cfg.Finalize
	// The solver's consistency filters and the finalizer must agree on the
	// device model.
	cfg.Probe.Consistency = &fin
	cfg.Probe.BlockBytes = cfg.BlockBytes
	// 1. Calibration.
	rng := newRNG(cfg.Probe.Seed + 7919)
	img := tensor.New(fin.InC, fin.InH, fin.InW)
	img.Uniform(rng, 0.05, 0.95)
	tr, err := victim.Run(img)
	if err != nil {
		return nil, fmt.Errorf("huffduff: calibration inference: %w", err)
	}
	segs, err := trace.Analyze(tr)
	if err != nil {
		return nil, err
	}
	g, err := BuildGraph(segs)
	if err != nil {
		return nil, err
	}

	// 2. Probing. All collected trials inform the solve: observed patterns
	// only get finer with more trials (§5.4's one-sided error), so the
	// full-trial solve dominates any early-stopping variant. SameGeometry
	// with Solve(t) for t < Trials exposes the paper's convergence-vs-T
	// curve (§8.2) to benches and tools.
	data, err := Collect(victim, g, fin.InC, fin.InH, fin.InW, cfg.Probe)
	if err != nil {
		return nil, err
	}
	pr, err := data.Solve(cfg.Probe.Trials)
	if err != nil {
		return nil, err
	}

	// 3. Timing channel.
	dims, err := PropagateDims(g, pr, fin.InH)
	if err != nil {
		return nil, err
	}
	tm, err := TimingChannel(g, dims, cfg.BlockBytes)
	if err != nil {
		return nil, err
	}

	// 4. Solution space.
	space, err := Finalize(g, pr, dims, tm, fin)
	if err != nil {
		return nil, err
	}
	return &Result{Graph: g, Data: data, Probe: pr, Dims: dims, Timing: tm, Space: space}, nil
}

// SameGeometry reports whether two probe results agree on every conv
// geometry and pool factor — the convergence criterion of §8.2's
// trial-escalation loop.
func SameGeometry(a, b *ProbeResult) bool {
	if len(a.Geoms) != len(b.Geoms) || len(a.PoolFactors) != len(b.PoolFactors) {
		return false
	}
	for id, g := range a.Geoms {
		if b.Geoms[id] != g {
			return false
		}
	}
	for id, f := range a.PoolFactors {
		if b.PoolFactors[id] != f {
			return false
		}
	}
	return true
}

// SampleSolutions draws n distinct candidates uniformly from the solution
// space (the paper samples 8 per victim for retraining).
func SampleSolutions(space *SolutionSpace, n int, rng *rand.Rand) []Solution {
	if n >= len(space.Solutions) {
		return append([]Solution(nil), space.Solutions...)
	}
	idx := rng.Perm(len(space.Solutions))[:n]
	out := make([]Solution, 0, n)
	for _, i := range idx {
		out = append(out, space.Solutions[i])
	}
	return out
}

// ObservabilityRate estimates §5.2's single-probe observability: the
// fraction of (trial, conv-layer) pairs whose observed single-trial pattern
// already distinguishes more than one class where the true geometry says it
// should. The paper measures 77% on random pruned kernels.
func ObservabilityRate(data *ProbeData, pr *ProbeResult) float64 {
	observable, total := 0, 0
	for _, id := range data.Graph.ConvNodes() {
		if pr.Geoms[id].Kernel == 1 {
			continue // no boundary effect exists for pointwise layers
		}
		for t := 0; t < data.Cfg.Trials; t++ {
			total++
			// Single-trial pattern from family 0 only.
			vals := make([]int, data.Cfg.Q)
			for q := 0; q < data.Cfg.Q; q++ {
				vals[q] = data.Bytes[id][0][q][t]
			}
			if symconv.NumClasses(symconv.ClassPattern(vals)) > 1 {
				observable++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(observable) / float64(total)
}
