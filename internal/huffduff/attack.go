package huffduff

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"github.com/huffduff/huffduff/internal/converge"
	"github.com/huffduff/huffduff/internal/faults"
	"github.com/huffduff/huffduff/internal/obs"
	"github.com/huffduff/huffduff/internal/prof"
	"github.com/huffduff/huffduff/internal/symconv"
	"github.com/huffduff/huffduff/internal/tensor"
	"github.com/huffduff/huffduff/internal/trace"
)

// Config is the end-to-end attack configuration.
type Config struct {
	Probe    ProbeConfig
	Finalize FinalizeConfig
	// BlockBytes is the DRAM transaction granularity, used to correct the
	// truncated head of the encoding interval (§7.2's "small inaccuracy").
	BlockBytes int
	// Converge enables §8.2's trial-escalation loop: the geometry solve is
	// repeated on a doubling trial schedule and convergence is declared
	// when two consecutive solves agree on every geometry (SameGeometry).
	// The full-trial solve always decides the returned result — observed
	// patterns only get finer with more trials (§5.4's one-sided error) —
	// while the loop feeds Result.Converged/TrialsConverged and the
	// per-layer confidence scores.
	Converge bool
	// ConvergeStart is the first trial count of the escalation schedule
	// (0 selects Trials/4, with a minimum of 2).
	ConvergeStart int
	// TimingTolerance is the maximum robust relative dispersion
	// (1.4826·MAD/median) tolerated in a conv layer's Δt samples before the
	// timing channel is declared unusable (0 disables the check).
	TimingTolerance float64
	// DegradeOnTimingFault turns an unusable timing channel (or a timing-
	// driven finalization failure) into a degraded, sparse-bound-only
	// solution space — Result.Degraded with a reason — instead of a failed
	// attack.
	DegradeOnTimingFault bool
	// EscalateNoiseTolerant re-collects in the §9.2 repeated-measurement
	// mode when the pattern solve finds no consistent geometry, before
	// giving up.
	EscalateNoiseTolerant bool
	// Obs, when set, receives the campaign's spans and metrics: hierarchical
	// wall-clock spans for every pipeline stage down to individual probe
	// positions, victim-query and retry counters, per-stage wall time, and
	// convergence diagnostics. Nil (the default) disables instrumentation at
	// the cost of one nil-check per site.
	Obs obs.Recorder
	// Progress, when set, receives coarse live progress: each pipeline
	// stage as it begins (calibrate, probe, solve, geometry, timing,
	// finalize) with done=total=0, and — during the probing campaign —
	// per-position counts (done positions, campaign total). It runs on the
	// attack goroutine; keep it cheap and non-blocking. Long-running
	// services (cmd/huffduffd) use it to report live campaign state.
	Progress func(stage string, done, total int)
	// Ledger, when set, receives a convergence Snapshot after every
	// knowledge-changing step: calibration, throttled probe progress, each
	// scheduled solve, the timing channel, and finalization (including the
	// degraded and budget-aborted paths, which append a final snapshot
	// before returning). The ledger also counts every victim inference.
	Ledger *converge.Ledger
}

// DefaultConfig matches the paper's evaluation setup: a clean simulated
// victim, no retries beyond the ProbeConfig default, fail-fast semantics.
func DefaultConfig() Config {
	return Config{
		Probe:      DefaultProbeConfig(),
		Finalize:   DefaultFinalizeConfig(),
		BlockBytes: 64,
	}
}

// DefaultRobustConfig returns the hardened pipeline configuration used
// against faulty victims (see internal/chaos): min-over-repeats collection
// with bounded retries, the §8.2 convergence loop, timing-dispersion checks
// with graceful degradation, and noise-tolerant escalation on solve failure.
func DefaultRobustConfig() Config {
	cfg := DefaultConfig()
	cfg.Probe.Robust = true
	// Re-running an inference is ~1000x cheaper than a solve, and at the
	// default chaos intensities roughly a third of traces are detectably
	// corrupt, so a deep retry budget is the right trade: 15 retries push
	// the chance of wrongly giving up on one observation below 1e-7.
	cfg.Probe.MaxRetries = 15
	cfg.Converge = true
	// A clean device's Δt is input-invariant, so any sample dispersion is
	// measurement jitter; the clamped-jitter median bias runs at roughly
	// half the dispersion, and pinning a 16-channel layer needs ratio
	// error under ~3%, so degrade once dispersion exceeds 5%.
	cfg.TimingTolerance = 0.05
	cfg.DegradeOnTimingFault = true
	cfg.EscalateNoiseTolerant = true
	return cfg
}

// Validate rejects configurations that would panic or silently misbehave
// downstream. Errors wrap faults.ErrBadConfig.
func (cfg Config) Validate() error {
	if cfg.BlockBytes <= 0 {
		return fmt.Errorf("huffduff: BlockBytes = %d, need a positive DRAM transaction size: %w", cfg.BlockBytes, faults.ErrBadConfig)
	}
	if cfg.ConvergeStart < 0 {
		return fmt.Errorf("huffduff: ConvergeStart = %d is negative: %w", cfg.ConvergeStart, faults.ErrBadConfig)
	}
	if cfg.TimingTolerance < 0 {
		return fmt.Errorf("huffduff: TimingTolerance = %g is negative: %w", cfg.TimingTolerance, faults.ErrBadConfig)
	}
	if err := cfg.Probe.Validate(); err != nil {
		return err
	}
	return cfg.Finalize.Validate()
}

// Result is everything the attack recovers.
type Result struct {
	Graph  *ObsGraph
	Data   *ProbeData
	Probe  *ProbeResult
	Dims   *SpatialDims
	Timing *TimingResult
	Space  *SolutionSpace
	// Confidence maps each conv and pool node to a (0,1] score combining
	// pattern-match exactness, hypothesis ties, and stability across the
	// convergence loop's solves (1 when Converge is off and the match was
	// exact and untied).
	Confidence map[int]float64
	// Converged reports whether two consecutive solves of the escalation
	// schedule agreed on every geometry (§8.2's criterion); TrialsConverged
	// is the smallest trial count from which every scheduled solve agreed
	// with the final geometry. Only populated when Config.Converge is set.
	Converged       bool
	TrialsConverged int
	// Degraded marks a sparse-bound-only solution space produced because
	// the timing channel was unusable; DegradedReason says why.
	Degraded       bool
	DegradedReason string
	// VictimRetries counts inferences re-run due to transient device
	// failures or corrupt traces.
	VictimRetries int
}

// Attack runs the full HuffDuff pipeline against a victim device:
//
//  1. replicated calibration inferences recover the dataflow graph,
//     footprints, and encoding intervals from RAW dependencies (§3.2),
//     cross-checked against each other to reject corrupted observations;
//  2. the boundary-effect probing campaign recovers every conv layer's
//     kernel/stride/pool via the symbolic engine (§5–6), retrying
//     transient failures and corrupt traces;
//  3. the psum-encoding timing channel recovers output-channel ratios
//     (§7) from the median of per-inference encoding intervals;
//  4. the first-layer sparsity bound pins the ratios to absolute channel
//     counts, yielding the final candidate set (§8.2).
//
// Failures carry the pipeline stage that died (faults.StageOf) and a
// sentinel class (errors.Is against faults.ErrTransient etc.). When the
// timing channel is unusable and Config.DegradeOnTimingFault is set, the
// attack degrades instead of failing: the returned Result has Degraded set
// and a sparse-bound-only solution space that still contains the truth.
func Attack(victim Victim, cfg Config) (*Result, error) {
	//lint:ignore ctxflow compatibility wrapper: Attack is the documented no-context entry point
	return AttackContext(context.Background(), victim, cfg)
}

// stageSpan opens a cost-attributed pipeline-stage region (obs span, pprof
// stage label, runtime sampling) and returns (stage ctx, closer); the closer
// ends the span and records the stage's host wall time into the
// `stage.seconds{stage=...}` histogram plus the `prof.stage.*` resource
// counters. See internal/prof.
func stageSpan(ctx context.Context, name string) (context.Context, func()) {
	return prof.Stage(ctx, name)
}

// AttackContext is Attack with a caller-supplied context. Config.Obs (when
// set) is attached to the context, so spans and metrics flow to it; a
// recorder already present in ctx is used otherwise.
func AttackContext(ctx context.Context, victim Victim, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, faults.Stage("config", err)
	}
	if cfg.Obs != nil {
		ctx = obs.WithRecorder(ctx, cfg.Obs)
	}
	ctx = converge.WithLedger(ctx, cfg.Ledger)
	ctx, root := obs.Start(ctx, "attack")
	defer root.End()
	hook := ledgerHook{led: cfg.Ledger, cfg: cfg}

	fin := cfg.Finalize
	// The solver's consistency filters and the finalizer must agree on the
	// device model.
	cfg.Probe.Consistency = &fin
	cfg.Probe.BlockBytes = cfg.BlockBytes
	if cfg.Progress != nil && cfg.Probe.Progress == nil {
		report := cfg.Progress
		cfg.Probe.Progress = func(done, total int) { report("probe", done, total) }
	}
	stage := func(ctx context.Context, name string) (context.Context, func()) {
		if cfg.Progress != nil {
			cfg.Progress(name, 0, 0)
		}
		return stageSpan(ctx, name)
	}

	res := &Result{}

	// 1. Calibration.
	cctx, endCal := stage(ctx, "calibrate")
	g, err := calibrate(cctx, victim, cfg, res)
	endCal()
	if err != nil {
		return nil, faults.Stage("calibration", err)
	}
	res.Graph = g
	hook.g = g
	hook.snap("calibrate", nil, nil, nil, nil, nil)

	// Ledger probe snapshots: the per-position callback fires thousands of
	// times per campaign, so snapshots are throttled to ~8 per probe stage
	// (plus the final position). The volume is flat here — probing gathers
	// evidence, the solve spends it — which is exactly what the queries-vs-
	// volume curve should show.
	if cfg.Ledger != nil {
		prev := cfg.Probe.Progress
		hk := hook
		cfg.Probe.Progress = func(done, total int) {
			if prev != nil {
				prev(done, total)
			}
			step := total / 8
			if step < 1 {
				step = 1
			}
			if done%step == 0 || done == total {
				hk.snap("probe", nil, nil, nil, nil, nil)
			}
		}
	}

	// 2. Probing campaign.
	pctx, endProbe := stage(ctx, "probe")
	data, err := CollectContext(pctx, victim, g, fin.InC, fin.InH, fin.InW, cfg.Probe)
	endProbe()
	if err != nil {
		return nil, faults.Stage("probe", err)
	}
	res.VictimRetries += data.Retries

	// 3. Geometry solve, with the §8.2 convergence loop and — if the solve
	// finds no consistent geometry — one escalation into the §9.2
	// repeated-measurement mode.
	sctx, endSolve := stage(ctx, "solve")
	pr, conv, serr := solveConverged(sctx, data, cfg)
	endSolve()
	if serr != nil && pr != nil && pr.Partial && errors.Is(serr, faults.ErrSymBudget) {
		// The sym watchdog aborted the solve: escalation would re-collect
		// only to blow the same budget again, so salvage what the solved
		// prefix pins — a partial, degraded solution space — and finish
		// with a complete ledger instead of an OOM.
		res.Data, res.Probe = data, pr
		fctx, endFin := stage(ctx, "finalize")
		space := FinalizePartial(g, pr, fin)
		res.Space = space
		res.Degraded = true
		res.DegradedReason = serr.Error()
		res.recordSpace(fctx)
		note := serr.Error()
		hook.snap("finalize", pr, nil, space, nil, func(s *converge.Snapshot) {
			s.Done = true
			s.Note = note
		})
		endFin()
		return res, nil
	}
	if serr != nil && cfg.EscalateNoiseTolerant && !cfg.Probe.NoiseTolerant {
		ncfg := cfg.Probe
		ncfg.NoiseTolerant = true
		pctx, endProbe := stage(ctx, "probe")
		nd, nerr := CollectContext(pctx, victim, g, fin.InC, fin.InH, fin.InW, ncfg)
		endProbe()
		if nerr != nil {
			return nil, faults.Stage("probe", fmt.Errorf("noise-tolerant escalation after solve failure (%v): %w", serr, nerr))
		}
		res.VictimRetries += nd.Retries
		sctx, endSolve := stage(ctx, "solve")
		pr2, conv2, serr2 := solveConverged(sctx, nd, cfg)
		endSolve()
		if serr2 == nil {
			data, pr, conv, serr = nd, pr2, conv2, nil
		} else {
			serr = fmt.Errorf("pattern solve failed in plain (%v) and noise-tolerant (%w) modes", serr, serr2)
		}
	}
	if serr != nil {
		return nil, faults.Stage("solve", serr)
	}
	res.Data, res.Probe = data, pr
	res.Converged, res.TrialsConverged, res.Confidence = conv.converged, conv.trialsConverged, conv.confidence

	// 4. Spatial propagation.
	_, endGeom := stage(ctx, "geometry")
	dims, err := PropagateDims(g, pr, fin.InH)
	endGeom()
	if err != nil {
		return nil, faults.Stage("geometry", err)
	}
	res.Dims = dims

	// 5. Timing channel — from the per-inference Δt samples the campaign
	// gathered, falling back to the calibration interval if none exist.
	var terr error
	_, endTiming := stage(ctx, "timing")
	if len(data.Enc) > 0 {
		res.Timing, terr = TimingChannelFromSamples(g, dims, data.Enc, cfg.TimingTolerance)
	} else {
		res.Timing, terr = TimingChannel(g, dims, cfg.BlockBytes)
	}
	res.Timing.Record(obs.RecorderFrom(ctx))
	if terr == nil {
		hook.snap("timing", pr, res.Timing, nil, conv.confidence, nil)
	}
	endTiming()

	// 6. Solution space, with graceful degradation when the timing channel
	// cannot be trusted.
	fctx, endFinalize := stage(ctx, "finalize")
	defer endFinalize()
	if terr == nil {
		space, ferr := Finalize(g, pr, dims, res.Timing, fin)
		if ferr == nil {
			res.Space = space
			res.recordSpace(fctx)
			hook.snap("finalize", pr, res.Timing, space, conv.confidence, func(s *converge.Snapshot) {
				s.Done = true
			})
			return res, nil
		}
		if !cfg.DegradeOnTimingFault {
			return nil, faults.Stage("finalize", ferr)
		}
		terr = fmt.Errorf("finalize rejected the timing-pinned space (%v): %w", ferr, faults.ErrTimingUnusable)
	} else if !cfg.DegradeOnTimingFault || !errors.Is(terr, faults.ErrTimingUnusable) {
		return nil, faults.Stage("timing", terr)
	}
	// Degraded path: report it through the same progress/ledger hooks as
	// every other stage so degraded campaigns stay observable (operators
	// see *why* the space got wider, not just that finalize ran twice).
	if cfg.Progress != nil {
		cfg.Progress("finalize_degraded", 0, 0)
	}
	space, derr := FinalizeDegraded(g, pr, dims, fin)
	if derr != nil {
		return nil, faults.Stage("finalize", fmt.Errorf("degraded fallback after %v: %w", terr, derr))
	}
	res.Space = space
	res.Degraded = true
	res.DegradedReason = terr.Error()
	res.recordSpace(fctx)
	note := terr.Error()
	hook.snap("finalize_degraded", pr, nil, space, conv.confidence, func(s *converge.Snapshot) {
		s.Done = true
		s.Degraded = true
		s.Note = note
	})
	return res, nil
}

// recordSpace publishes the finalized solution space's headline numbers.
func (res *Result) recordSpace(ctx context.Context) {
	if res.Space == nil {
		return
	}
	obs.Gauge(ctx, "solution.space.count", "", float64(res.Space.Count()))
	obs.Gauge(ctx, "solution.space.k1min", "", float64(res.Space.K1Min))
	obs.Gauge(ctx, "solution.space.k1max", "", float64(res.Space.K1Max))
	obs.Gauge(ctx, "solution.space.geom_ambiguity", "", float64(res.Space.GeomAmbiguity))
	degraded := 0.0
	if res.Degraded {
		degraded = 1
	}
	obs.Gauge(ctx, "attack.degraded", "", degraded)
}

// calibrationReplicas is how many independent calibration inferences are
// cross-checked against each other. Graph structure, dependencies, and
// weight footprints are input-invariant, so replicas must agree exactly on
// them; per-segment volumes keep the minimum across replicas, since every
// surviving noise source (padding-style inflation) is strictly additive.
const calibrationReplicas = 2

func calibrate(ctx context.Context, victim Victim, cfg Config, res *Result) (*ObsGraph, error) {
	fin := cfg.Probe.Consistency
	rng := newRNG(cfg.Probe.Seed + 7919)
	img := tensor.New(fin.InC, fin.InH, fin.InW)
	img.Uniform(rng, 0.05, 0.95)
	run := func() ([]trace.SegmentObs, error) {
		rctx, sp := obs.Start(ctx, "calibrate.replica")
		segs, retries, err := runObserved(rctx, victim, img, cfg.Probe, nil)
		sp.End()
		res.VictimRetries += retries
		return segs, err
	}
	var lastErr error
	for attempt := 0; attempt <= cfg.Probe.MaxRetries; attempt++ {
		merged, err := run()
		if err != nil {
			return nil, err // runObserved already spent the retry budget
		}
		ok := true
		for r := 1; r < calibrationReplicas; r++ {
			b, err := run()
			if err != nil {
				return nil, err
			}
			if merged, err = mergeCalibration(merged, b); err != nil {
				lastErr, ok = err, false
				break
			}
		}
		if !ok {
			continue
		}
		g, err := BuildGraph(merged)
		if err == nil {
			return g, nil
		}
		if !faults.Retryable(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("calibration replicas never agreed: %w", lastErr)
}

// mergeCalibration reconciles two calibration replicas: structure must
// match, volumes keep the minimum, and the encoding interval keeps the
// shorter observation (jitter clamping only stretches intervals).
func mergeCalibration(a, b []trace.SegmentObs) ([]trace.SegmentObs, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("huffduff: calibration replicas disagree: %d vs %d segments: %w", len(a), len(b), faults.ErrTraceCorrupt)
	}
	out := append([]trace.SegmentObs(nil), a...)
	for i := range a {
		if a[i].WeightBytes != b[i].WeightBytes {
			return nil, fmt.Errorf("huffduff: calibration replicas disagree on segment %d weight bytes (%d vs %d): %w",
				i, a[i].WeightBytes, b[i].WeightBytes, faults.ErrTraceCorrupt)
		}
		if !equalInts(a[i].Deps, b[i].Deps) {
			return nil, fmt.Errorf("huffduff: calibration replicas disagree on segment %d deps (%v vs %v): %w",
				i, a[i].Deps, b[i].Deps, faults.ErrTraceCorrupt)
		}
		if b[i].OutputBytes < out[i].OutputBytes {
			out[i].OutputBytes = b[i].OutputBytes
		}
		if b[i].InputBytes < out[i].InputBytes {
			out[i].InputBytes = b[i].InputBytes
		}
		if b[i].EncodingTime() < out[i].EncodingTime() {
			out[i].FirstWrite, out[i].LastWrite = b[i].FirstWrite, b[i].LastWrite
		}
	}
	return out, nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// convergence is the §8.2 trial-escalation report.
type convergence struct {
	converged       bool
	trialsConverged int
	confidence      map[int]float64
}

// solveConverged runs the solve schedule: with Config.Converge, a doubling
// sequence of trial counts ending at the full collected count; otherwise
// the single full-trial solve. The full-trial result is always the answer;
// the earlier solves feed the convergence report and per-layer confidence.
func solveConverged(ctx context.Context, data *ProbeData, cfg Config) (*ProbeResult, convergence, error) {
	total := data.Cfg.Trials
	var schedule []int
	if cfg.Converge {
		start := cfg.ConvergeStart
		if start == 0 {
			start = total / 4
		}
		if start < 2 {
			start = 2
		}
		for t := start; t < total; t *= 2 {
			schedule = append(schedule, t)
		}
	}
	schedule = append(schedule, total)

	hook := ledgerHook{led: cfg.Ledger, g: data.Graph, cfg: cfg}
	results := make([]*ProbeResult, len(schedule))
	var lastErr error
	for i, t := range schedule {
		ictx, sp := obs.Startf(ctx, "solve.trials=%d", t)
		obs.Count(ictx, "solve.iterations", "", 1)
		pr, err := data.Solve(t)
		if err != nil {
			lastErr = err
			if pr != nil && pr.Partial && errors.Is(err, faults.ErrSymBudget) {
				// Budget abort: a later solve with more trials would only
				// blow the budget sooner. Snapshot the partial knowledge
				// and surface it to the caller's salvage path.
				note := err.Error()
				hook.snap("solve", pr, nil, nil, nil, func(s *converge.Snapshot) {
					s.Note = note
				})
				sp.End()
				return pr, convergence{}, err
			}
			sp.End()
			continue
		}
		note := fmt.Sprintf("trials=%d", t)
		hook.snap("solve", pr, nil, nil, nil, func(s *converge.Snapshot) { s.Note = note })
		obs.Gauge(ictx, "solve.ambiguity", fmt.Sprintf("trials=%d", t), float64(solveAmbiguity(pr)))
		// Interner cost attribution: each scheduled solve builds a fresh
		// engine, so the per-solve expression count and hit rate localize
		// where symbolic blowup (the VGG-S failure mode) comes from.
		obs.Gauge(ictx, "sym.interned_exprs", fmt.Sprintf("trials=%d", t), float64(pr.Sym.Exprs))
		obs.Gauge(ictx, "sym.intern_hit_rate", fmt.Sprintf("trials=%d", t), pr.Sym.HitRate())
		results[i] = pr
		sp.End()
	}
	final := results[len(results)-1]
	if final == nil {
		return nil, convergence{}, lastErr
	}

	out := convergence{confidence: map[int]float64{}}
	stableFrom := len(results) - 1
	for i := len(results) - 1; i >= 0; i-- {
		if results[i] == nil || !SameGeometry(results[i], final) {
			break
		}
		stableFrom = i
	}
	out.trialsConverged = schedule[stableFrom]
	out.converged = stableFrom < len(results)-1

	solved := 0
	for _, r := range results {
		if r != nil {
			solved++
		}
	}
	stability := func(agree func(r *ProbeResult) bool) float64 {
		n := 0
		for _, r := range results {
			if r != nil && agree(r) {
				n++
			}
		}
		return float64(n) / float64(solved)
	}
	for id, geom := range final.Geoms {
		c := stability(func(r *ProbeResult) bool { return r.Geoms[id] == geom })
		if n := len(final.Candidates[id]); n > 1 {
			c /= float64(n)
		}
		if !final.Exact[id] {
			c *= 0.5
		}
		out.confidence[id] = c
	}
	for id, f := range final.PoolFactors {
		out.confidence[id] = stability(func(r *ProbeResult) bool { return r.PoolFactors[id] == f })
	}
	return final, out, nil
}

// solveAmbiguity is the capped product of every node's pattern-tie count —
// how many architectures one solve left indistinguishable.
func solveAmbiguity(pr *ProbeResult) int {
	const ambCap = 1 << 30
	// Sorted node order: once the product saturates the cap, the value
	// depends on multiplication order, and this number lands in the
	// convergence-ledger JSONL that must not differ between identical runs.
	ids := make([]int, 0, len(pr.Candidates))
	for id := range pr.Candidates {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	amb := 1
	for _, id := range ids {
		if n := len(pr.Candidates[id]); n > 1 && amb < ambCap {
			amb *= n
		}
	}
	return amb
}

// SameGeometry reports whether two probe results agree on every conv
// geometry and pool factor — the convergence criterion of §8.2's
// trial-escalation loop.
func SameGeometry(a, b *ProbeResult) bool {
	if len(a.Geoms) != len(b.Geoms) || len(a.PoolFactors) != len(b.PoolFactors) {
		return false
	}
	for id, g := range a.Geoms {
		if b.Geoms[id] != g {
			return false
		}
	}
	for id, f := range a.PoolFactors {
		if b.PoolFactors[id] != f {
			return false
		}
	}
	return true
}

// SampleSolutions draws n distinct candidates uniformly from the solution
// space (the paper samples 8 per victim for retraining).
func SampleSolutions(space *SolutionSpace, n int, rng *rand.Rand) []Solution {
	if n >= len(space.Solutions) {
		return append([]Solution(nil), space.Solutions...)
	}
	idx := rng.Perm(len(space.Solutions))[:n]
	out := make([]Solution, 0, n)
	for _, i := range idx {
		out = append(out, space.Solutions[i])
	}
	return out
}

// ObservabilityRate estimates §5.2's single-probe observability: the
// fraction of (trial, conv-layer) pairs whose observed single-trial pattern
// already distinguishes more than one class where the true geometry says it
// should. The paper measures 77% on random pruned kernels.
func ObservabilityRate(data *ProbeData, pr *ProbeResult) float64 {
	observable, total := 0, 0
	for _, id := range data.Graph.ConvNodes() {
		if pr.Geoms[id].Kernel == 1 {
			continue // no boundary effect exists for pointwise layers
		}
		for t := 0; t < data.Cfg.Trials; t++ {
			total++
			// Single-trial pattern from family 0 only.
			vals := make([]int, data.Cfg.Q)
			for q := 0; q < data.Cfg.Q; q++ {
				vals[q] = data.Bytes[id][0][q][t]
			}
			if symconv.NumClasses(symconv.ClassPattern(vals)) > 1 {
				observable++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(observable) / float64(total)
}
