package huffduff

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/huffduff/huffduff/internal/converge"
	"github.com/huffduff/huffduff/internal/faults"
	"github.com/huffduff/huffduff/internal/models"
)

// TestSymBudgetAbortsToPartialSpace is the watchdog acceptance test: with a
// symbolic-expression budget far too small for even the first conv layer,
// the attack must not panic or grow without bound — it aborts the solve,
// salvages whatever geometry was pinned into a Partial degraded solution
// space, and leaves a complete convergence ledger ending in a Done snapshot
// that names the budget abort.
func TestSymBudgetAbortsToPartialSpace(t *testing.T) {
	if raceEnabled {
		t.Skip("full attack campaign; the race-instrumented simulator is an order of magnitude slower")
	}
	m, _ := deployVictim(t, models.SmallCNN(), 1)
	cfg := DefaultConfig()
	cfg.Probe.SymMaxExprs = 100
	led := converge.NewLedger(nil)
	cfg.Ledger = led
	res, err := Attack(m, cfg)
	if err != nil {
		t.Fatalf("budget abort must degrade, not fail: %v", err)
	}
	if !res.Degraded || res.DegradedReason == "" {
		t.Fatalf("result not marked degraded: %+v", res)
	}
	if !strings.Contains(res.DegradedReason, "budget") {
		t.Fatalf("DegradedReason does not name the budget: %q", res.DegradedReason)
	}
	if res.Space == nil || !res.Space.Partial || !res.Space.Degraded {
		t.Fatalf("space not partial+degraded: %+v", res.Space)
	}
	if res.Probe == nil || !res.Probe.Partial {
		t.Fatal("probe result not marked partial")
	}
	if len(res.Probe.Sites) == 0 {
		t.Fatal("budget abort carries no per-site growth attribution")
	}
	if res.Probe.Sym.Exprs == 0 {
		t.Fatal("partial probe result lost interner stats")
	}

	snaps := led.Snapshots()
	if len(snaps) < 2 {
		t.Fatalf("ledger has %d snapshots, want calibrate + probe + abort trail", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if !last.Done || !last.Degraded || !last.Partial {
		t.Fatalf("final snapshot flags: %+v", last)
	}
	if !strings.Contains(last.Note, "budget") {
		t.Fatalf("final snapshot note does not name the budget abort: %q", last.Note)
	}
	if last.Queries == 0 {
		t.Fatal("final snapshot lost the victim-query count")
	}
	for _, s := range snaps {
		if !s.VolumeKnown {
			t.Fatalf("snapshot %d (stage %s) has no volume accounting", s.Seq, s.Stage)
		}
	}
	// A budget abort still shows collapse bookkeeping: the partial space is
	// no larger than the initial one.
	if last.Log10Volume > snaps[0].Log10Volume {
		t.Fatalf("volume grew across the abort: %v -> %v", snaps[0].Log10Volume, last.Log10Volume)
	}
}

// TestSymBudgetErrorClass checks the taxonomy plumbing: a watchdog abort
// wraps faults.ErrSymBudget, classifies as "budget", and is not retryable
// (re-running the identical solve would blow the identical budget).
func TestSymBudgetErrorClass(t *testing.T) {
	err := fmt.Errorf("huffduff: solve aborted by watchdog: boom: %w", faults.ErrSymBudget)
	if !errors.Is(err, faults.ErrSymBudget) {
		t.Fatalf("error does not wrap ErrSymBudget: %v", err)
	}
	if got := faults.Class(err); got != faults.ClassBudget {
		t.Fatalf("faults.Class = %q, want %q", got, faults.ClassBudget)
	}
	if faults.Retryable(err) {
		t.Fatal("budget aborts must not be retryable")
	}
}

func TestNegativeSymBudgetRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Probe.SymMaxExprs = -1
	if err := cfg.Probe.Validate(); err == nil {
		t.Fatal("negative expression budget accepted")
	}
	cfg = DefaultConfig()
	cfg.Probe.SymMaxBytes = -1
	if err := cfg.Probe.Validate(); err == nil {
		t.Fatal("negative byte budget accepted")
	}
}
