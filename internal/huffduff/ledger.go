package huffduff

import (
	"math"

	"github.com/huffduff/huffduff/internal/converge"
)

// channelSpan is the per-conv channel-count uncertainty factor used for
// solution-space volume accounting before finalization produces real
// bounds: absent any measurement, a conv layer's output channel count is
// only known to be a plausible hardware value, and 1024 covers every
// workload in the paper. The ledger's log10 volumes are bookkeeping over
// this model — their value is the *collapse curve*, not the absolute
// count, and the convention is fixed so curves compare across runs.
const channelSpan = 1024

// ledgerHook builds and appends convergence snapshots for one attack. The
// zero hook (nil ledger or graph) is inert, so call sites need no checks.
type ledgerHook struct {
	led *converge.Ledger
	g   *ObsGraph
	cfg Config
}

// snap appends one snapshot reflecting the current knowledge state: pr, tm,
// space, and conf may each be nil (pre-solve, pre-timing, pre-finalize).
// mut, when set, adjusts the snapshot (stage notes, Done/Degraded flags)
// before it is appended.
func (h ledgerHook) snap(stage string, pr *ProbeResult, tm *TimingResult, space *SolutionSpace, conf map[int]float64, mut func(*converge.Snapshot)) {
	if h.led == nil || h.g == nil {
		return
	}
	s := converge.Snapshot{
		Stage:       stage,
		Log10Volume: h.volume(pr, space),
		VolumeKnown: true,
		Layers:      h.layers(pr, tm, space, conf),
	}
	switch {
	case space != nil:
		s.GeomAmbiguity = space.GeomAmbiguity
		s.Degraded = space.Degraded
		s.Partial = space.Partial
	case pr != nil:
		s.GeomAmbiguity = solveAmbiguity(pr)
	}
	if pr != nil {
		s.SymExprs = pr.Sym.Exprs
		s.SymHitRate = pr.Sym.HitRate()
		if pr.Partial {
			s.Partial = true
			s.Degraded = true
		}
	}
	if mut != nil {
		mut(&s)
	}
	h.led.Append(s)
}

// volume computes log10 of the remaining solution-space volume under the
// ledger's accounting model:
//
//   - a finalized exact space is GeomAmbiguity × Count() candidates;
//   - a degraded/partial space contributes each conv's KBounds interval
//     width (unconstrained convs fall back to hypotheses × channelSpan);
//   - pre-finalize, each conv contributes its live geometry-candidate
//     count (the full hypothesis list before its solve) times channelSpan,
//     and each unresolved standalone pool its factor-hypothesis count.
func (h ledgerHook) volume(pr *ProbeResult, space *SolutionSpace) float64 {
	if space != nil && !space.Degraded {
		return log10i(space.GeomAmbiguity) + log10i(space.Count())
	}
	hyp := len(h.cfg.Probe.hypotheses())
	vol := 0.0
	for _, n := range h.g.Nodes {
		switch n.Kind {
		case NodeConv:
			gf := hyp
			if pr != nil {
				if _, ok := pr.Geoms[n.ID]; ok {
					gf = len(pr.Candidates[n.ID])
				}
			}
			cf := channelSpan
			if space != nil {
				if b, ok := space.KBounds[n.ID]; ok {
					cf = b[1] - b[0] + 1
				}
			}
			vol += log10i(gf) + log10i(cf)
		case NodePool:
			pf := len(h.cfg.Probe.PoolNodeFactors) + 1
			if pr != nil {
				if _, ok := pr.PoolFactors[n.ID]; ok {
					pf = 1
				}
			}
			vol += log10i(pf)
		}
	}
	return vol
}

// layers builds the per-layer knowledge states, in node-ID order (the
// deterministic order the JSONL stream promises).
func (h ledgerHook) layers(pr *ProbeResult, tm *TimingResult, space *SolutionSpace, conf map[int]float64) []converge.LayerState {
	hyp := len(h.cfg.Probe.hypotheses())
	var out []converge.LayerState
	for _, n := range h.g.Nodes {
		switch n.Kind {
		case NodeConv:
			ls := converge.LayerState{Node: n.ID, Candidates: hyp}
			if pr != nil {
				if geom, ok := pr.Geoms[n.ID]; ok {
					ls.Kernel, ls.Stride, ls.Pool = geom.Kernel, geom.Stride, geom.Pool
					ls.Exact = pr.Exact[n.ID]
					ls.Candidates = len(pr.Candidates[n.ID])
					if ls.Candidates < 1 {
						ls.Candidates = 1
					}
				}
			}
			if tm != nil {
				ls.KRatio = tm.KRatio[n.ID]
			}
			if space != nil {
				if b, ok := space.KBounds[n.ID]; ok {
					ls.KMin, ls.KMax = b[0], b[1]
				}
			}
			if conf != nil {
				ls.Confidence = conf[n.ID]
			}
			out = append(out, ls)
		case NodePool:
			ls := converge.LayerState{Node: n.ID, Candidates: len(h.cfg.Probe.PoolNodeFactors) + 1}
			if pr != nil {
				if f, ok := pr.PoolFactors[n.ID]; ok {
					ls.Pool, ls.Candidates = f, 1
				}
			}
			if conf != nil {
				ls.Confidence = conf[n.ID]
			}
			out = append(out, ls)
		}
	}
	return out
}

// log10i is log10 over counts, clamped so empty or unit factors contribute
// nothing rather than -Inf.
func log10i(n int) float64 {
	if n < 2 {
		return 0
	}
	return math.Log10(float64(n))
}
