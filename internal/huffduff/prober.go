package huffduff

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/huffduff/huffduff/internal/converge"
	"github.com/huffduff/huffduff/internal/faults"
	"github.com/huffduff/huffduff/internal/obs"
	"github.com/huffduff/huffduff/internal/probe"
	"github.com/huffduff/huffduff/internal/sym"
	"github.com/huffduff/huffduff/internal/symconv"
	"github.com/huffduff/huffduff/internal/tensor"
	"github.com/huffduff/huffduff/internal/trace"
)

// Geom is one conv layer's geometry hypothesis/recovery.
type Geom struct {
	Kernel, Stride, Pool int
}

// ProbeConfig controls the boundary-effect prober.
type ProbeConfig struct {
	// Trials is T, the number of independent random value instantiations
	// (§5.4's probability amplification).
	Trials int
	// Q is the number of probe positions per family.
	Q int
	// Kernels/Strides/Pools span the per-layer hypothesis space.
	Kernels, Strides, Pools []int
	// PoolNodeFactors are the hypotheses for standalone pooling nodes.
	PoolNodeFactors []int
	// NoiseTolerant switches the prober into the repeated-measurement mode
	// that §9.2 anticipates against the randomized-padding defence: each
	// probe inference is repeated NoiseRepeats times, and probe positions
	// are related by comparing mean transfer volumes against a noise scale
	// estimated from the repeats. The defence's padding is additive with
	// a content-independent distribution, so the mean volume remains
	// strictly monotone in nnz and averaging recovers the signal.
	NoiseTolerant bool
	// NoiseRepeats is the per-probe repetition count in NoiseTolerant mode
	// (0 selects the default of 25).
	NoiseRepeats int
	// Consistency enables the §7-based tie-breaking filters during the
	// solve: weight-capacity bounds, transfer-header bounds, and timing-
	// implied channel consistency. Deep layers whose boundary patterns
	// never converge within the image width are unidentifiable from
	// patterns alone; these filters (plus the small-kernel prior) decide
	// them. Nil disables the filters (pattern-only matching).
	Consistency *FinalizeConfig
	// BlockBytes is the DRAM transaction size, for the Δt head correction.
	BlockBytes int
	// Seed drives probe value randomness.
	Seed int64
	// MaxRetries bounds per-inference retries on transient victim failures
	// and corrupt traces (faults.Retryable); 0 disables retry.
	MaxRetries int
	// RetryBackoff is the base sleep before a retry, doubling per attempt.
	// The simulated victim needs none (the default); a real probe rig
	// would set it to ride out device resets.
	RetryBackoff time.Duration
	// Robust enables the fault-hardened collection mode: each probe
	// inference runs at least RobustRepeats times and until the last two
	// runs agree on every node's volume (capped at RobustRepeats+3), with
	// per-node volumes aggregating by minimum — after trace-consistency
	// retries the surviving noise (§9.1-style padding) is strictly
	// additive, so the minimum over any clean run recovers the true value.
	Robust bool
	// RobustRepeats is the minimum per-probe repetition count in Robust
	// mode (0 selects the default of 2).
	RobustRepeats int
	// RobustMismatchBudget is how many (family, trial) disagreements two
	// probe positions may show and still be related by the partition
	// (default 0: strict equality). Leave it at 0 unless noise survives
	// the repeat-until-agreement aggregation — any tolerance also forgives
	// rare genuine boundary distinctions.
	RobustMismatchBudget int
	// Progress, when set, is invoked after every completed probe position
	// with the positions done so far and the campaign total
	// (Trials × families × Q). It runs on the collection goroutine between
	// victim inferences — keep it cheap and non-blocking.
	Progress func(done, total int)
	// SymMaxExprs/SymMaxBytes arm the symbolic interner's growth watchdog
	// for the solve: past either limit (0 = unlimited) the solve aborts
	// into a partial ProbeResult with per-site growth attribution instead
	// of growing toward OOM. The error wraps faults.ErrSymBudget.
	SymMaxExprs int
	SymMaxBytes int64
}

// DefaultProbeConfig returns the configuration used in the evaluation.
func DefaultProbeConfig() ProbeConfig {
	fin := DefaultFinalizeConfig()
	return ProbeConfig{
		Trials:          32,
		Q:               24,
		Kernels:         []int{1, 3, 5, 7},
		Strides:         []int{1, 2},
		Pools:           []int{1, 2},
		PoolNodeFactors: []int{2, 4, 8},
		Consistency:     &fin,
		BlockBytes:      64,
		Seed:            1,
		MaxRetries:      4,
	}
}

// Validate rejects configurations that would panic or silently misbehave
// downstream. Errors wrap faults.ErrBadConfig.
func (cfg ProbeConfig) Validate() error {
	bad := func(format string, args ...any) error {
		args = append(args, faults.ErrBadConfig)
		return fmt.Errorf("huffduff: "+format+": %w", args...)
	}
	if cfg.Trials < 1 {
		return bad("Trials = %d, need at least 1 probe trial", cfg.Trials)
	}
	if cfg.Q < 2 {
		return bad("Q = %d, need at least 2 probe positions", cfg.Q)
	}
	for _, l := range []struct {
		name string
		vals []int
		min  int
	}{
		{"Kernels", cfg.Kernels, 1},
		{"Strides", cfg.Strides, 1},
		{"Pools", cfg.Pools, 1},
	} {
		if len(l.vals) == 0 {
			return bad("empty %s hypothesis list", l.name)
		}
		for _, v := range l.vals {
			if v < l.min {
				return bad("%s hypothesis %d below minimum %d", l.name, v, l.min)
			}
		}
	}
	for _, v := range cfg.PoolNodeFactors {
		if v < 1 {
			return bad("PoolNodeFactors hypothesis %d below minimum 1", v)
		}
	}
	if cfg.BlockBytes < 0 {
		return bad("BlockBytes = %d is negative", cfg.BlockBytes)
	}
	if cfg.NoiseRepeats < 0 || cfg.RobustRepeats < 0 {
		return bad("negative repeat count (NoiseRepeats=%d, RobustRepeats=%d)", cfg.NoiseRepeats, cfg.RobustRepeats)
	}
	if cfg.MaxRetries < 0 || cfg.RetryBackoff < 0 {
		return bad("negative retry budget (MaxRetries=%d, RetryBackoff=%v)", cfg.MaxRetries, cfg.RetryBackoff)
	}
	if cfg.SymMaxExprs < 0 || cfg.SymMaxBytes < 0 {
		return bad("negative sym budget (SymMaxExprs=%d, SymMaxBytes=%d)", cfg.SymMaxExprs, cfg.SymMaxBytes)
	}
	if cfg.Consistency != nil {
		return cfg.Consistency.Validate()
	}
	return nil
}

// hypotheses enumerates the per-layer geometry space in canonical order
// (smallest kernel first — the tie-break prior for the conv3+pool2 /
// conv5+stride2 alias).
func (cfg ProbeConfig) hypotheses() []Geom {
	var hs []Geom
	for _, k := range cfg.Kernels {
		for _, s := range cfg.Strides {
			for _, p := range cfg.Pools {
				if k == 1 && p > 1 {
					// No boundary effect exists for pointwise convs, so
					// pooling behind them is unobservable; excluded by the
					// workload prior (pooling follows spatial convs).
					continue
				}
				hs = append(hs, Geom{k, s, p})
			}
		}
	}
	return hs
}

// ProbeData is the raw measurement matrix gathered from the device:
// output transfer volumes per graph node, probe family, probe position,
// and random trial.
type ProbeData struct {
	Graph    *ObsGraph
	Families []probe.Pattern
	InH, InW int
	// Bytes[node][family][probeIdx][trial]: in NoiseTolerant mode this is
	// the rounded mean over repeats; Means holds the exact values.
	Bytes [][][][]int
	// Means[node][family][probeIdx][trial] (NoiseTolerant mode only).
	Means [][][][]float64
	// Sigma[node] is the per-node standard deviation of one measurement's
	// defence noise, estimated from the repeats.
	Sigma   []float64
	Repeats int
	Cfg     ProbeConfig
	// Enc[node] holds one head-corrected encoding-interval sample per
	// accepted inference — the raw material for the robust timing channel
	// (§7 via the median instead of a single calibration observation).
	Enc [][]float64
	// Retries counts inferences re-run due to transient victim failures or
	// corrupt traces during this campaign.
	Retries int
}

// ctxVictim is the optional context-aware victim interface. accel.Machine
// implements it so per-layer pprof labels (and any future per-run context)
// flow into the simulator; victims that only implement Run work unchanged.
type ctxVictim interface {
	RunCtx(ctx context.Context, img *tensor.Tensor) (*trace.Trace, error)
}

// runVictim dispatches one inference, preferring the context-aware path.
func runVictim(ctx context.Context, victim Victim, img *tensor.Tensor) (*trace.Trace, error) {
	if cv, ok := victim.(ctxVictim); ok {
		return cv.RunCtx(ctx, img)
	}
	return victim.Run(img)
}

// runObserved runs one victim inference, analyzes the trace, and validates
// it (trace.Validate plus the optional caller check), retrying transient
// failures and corrupt traces up to cfg.MaxRetries times with exponential
// backoff from cfg.RetryBackoff. It returns the accepted observation and
// how many retries were spent. Every attempt increments victim.inferences;
// retries are counted per sentinel class under victim.retries{class=...}.
// With a recorder attached, the host cost of every attempt lands in the
// victim.run_seconds and victim.analyze_seconds histograms — the per-query
// price the cost-attribution report summarizes.
func runObserved(ctx context.Context, victim Victim, img *tensor.Tensor, cfg ProbeConfig, check func([]trace.SegmentObs) error) ([]trace.SegmentObs, int, error) {
	rec := obs.RecorderFrom(ctx)
	runOnce := func() ([]trace.SegmentObs, error) {
		obs.Count(ctx, "victim.inferences", "", 1)
		converge.FromContext(ctx).AddQueries(1)
		var runStart time.Time
		if rec != nil {
			runStart = time.Now()
		}
		tr, err := runVictim(ctx, victim, img)
		if rec != nil {
			rec.Observe("victim.run_seconds", "", time.Since(runStart).Seconds())
		}
		if err != nil {
			return nil, fmt.Errorf("huffduff: victim inference: %w", err)
		}
		var anaStart time.Time
		if rec != nil {
			anaStart = time.Now()
		}
		segs, err := trace.Analyze(tr)
		if rec != nil {
			rec.Observe("victim.analyze_seconds", "", time.Since(anaStart).Seconds())
		}
		if err != nil {
			return nil, fmt.Errorf("huffduff: trace analysis: %w", err)
		}
		if err := trace.Validate(segs); err != nil {
			return nil, fmt.Errorf("huffduff: trace validation: %w", err)
		}
		if check != nil {
			if err := check(segs); err != nil {
				return nil, err
			}
		}
		return segs, nil
	}
	retries := 0
	backoff := cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		segs, err := runOnce()
		if err == nil {
			return segs, retries, nil
		}
		if !faults.Retryable(err) || attempt >= cfg.MaxRetries {
			if attempt > 0 {
				err = fmt.Errorf("%w (after %d attempts)", err, attempt+1)
			}
			return nil, retries, err
		}
		retries++
		obs.Count(ctx, "victim.retries", "class="+retryClass(err), 1)
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
	}
}

// retryClass maps a retryable error to its faults sentinel class, labelling
// the victim.retries counter series.
func retryClass(err error) string {
	switch {
	case errors.Is(err, faults.ErrTransient):
		return "transient"
	case errors.Is(err, faults.ErrTraceCorrupt):
		return "trace_corrupt"
	default:
		return "other"
	}
}

// Collect runs the probing campaign: Trials × families × Q inferences
// (times the per-probe repeat count in Robust or NoiseTolerant mode). Every
// trace is cross-checked against the calibration graph — segment count and
// weight footprints are input-invariant — and against trace.Validate's byte
// accounting; failing inferences are retried within cfg.MaxRetries.
func Collect(victim Victim, g *ObsGraph, inC, inH, inW int, cfg ProbeConfig) (*ProbeData, error) {
	//lint:ignore ctxflow compatibility wrapper: Collect is the documented no-context entry point
	return CollectContext(context.Background(), victim, g, inC, inH, inW, cfg)
}

// CollectContext is Collect with a caller-supplied context; an obs.Recorder
// attached to ctx receives per-trial and per-position spans plus the
// victim-query and retry counters.
func CollectContext(ctx context.Context, victim Victim, g *ObsGraph, inC, inH, inW int, cfg ProbeConfig) (*ProbeData, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	families := []probe.Pattern{
		{M: 0, N: 1, Q: cfg.Q, FeatRow: inH / 2},
		{M: 0, N: 2, Q: cfg.Q, FeatRow: inH/2 - 1},
		{M: 0, N: 1, Q: cfg.Q, FeatRow: inH / 2, FromRight: true},
		{M: 0, N: 2, Q: cfg.Q, FeatRow: inH/2 - 1, FromRight: true},
	}
	for _, f := range families {
		if err := f.Validate(inH, inW); err != nil {
			return nil, fmt.Errorf("huffduff: probe family: %w", err)
		}
	}
	pd := &ProbeData{Graph: g, Families: families, InH: inH, InW: inW, Cfg: cfg}
	pd.Bytes = make([][][][]int, len(g.Nodes))
	for n := range pd.Bytes {
		pd.Bytes[n] = make([][][]int, len(families))
		for f := range families {
			pd.Bytes[n][f] = make([][]int, cfg.Q)
			for q := range pd.Bytes[n][f] {
				pd.Bytes[n][f][q] = make([]int, cfg.Trials)
			}
		}
	}
	pd.Repeats = 1
	aggMin := false
	switch {
	case cfg.NoiseTolerant:
		pd.Repeats = cfg.NoiseRepeats
		if pd.Repeats < 2 {
			pd.Repeats = 25
		}
		pd.Means = make([][][][]float64, len(g.Nodes))
		for n := range pd.Means {
			pd.Means[n] = make([][][]float64, len(families))
			for f := range families {
				pd.Means[n][f] = make([][]float64, cfg.Q)
				for q := range pd.Means[n][f] {
					pd.Means[n][f][q] = make([]float64, cfg.Trials)
				}
			}
		}
	case cfg.Robust:
		pd.Repeats = cfg.RobustRepeats
		if pd.Repeats < 2 {
			pd.Repeats = 2
		}
		aggMin = true
	}
	pd.Sigma = make([]float64, len(g.Nodes))
	pd.Enc = make([][]float64, len(g.Nodes))
	varSum := make([]float64, len(g.Nodes))
	varCnt := 0
	rng := newRNG(cfg.Seed)
	// Weight footprints and segmentation are input-invariant, so every
	// probe trace must reproduce the calibration structure exactly; a
	// mismatch means a corrupted observation, not a different victim.
	check := func(obs []trace.SegmentObs) error {
		if len(obs) != len(g.Nodes) {
			return fmt.Errorf("huffduff: probe trace has %d segments, calibration had %d: %w",
				len(obs), len(g.Nodes), faults.ErrTraceCorrupt)
		}
		for n := range obs {
			if obs[n].WeightBytes != g.Nodes[n].WeightBytes {
				return fmt.Errorf("huffduff: probe trace segment %d weight bytes %d, calibration had %d: %w",
					n, obs[n].WeightBytes, g.Nodes[n].WeightBytes, faults.ErrTraceCorrupt)
			}
		}
		return nil
	}
	runOne := func(ctx context.Context, fam probe.Pattern, vals probe.Values, q int) ([]trace.SegmentObs, error) {
		img := probe.Image(fam, vals, q, inC, inH, inW)
		segs, retries, err := runObserved(ctx, victim, img, cfg, check)
		pd.Retries += retries
		return segs, err
	}
	sums := make([]float64, len(g.Nodes))
	sqs := make([]float64, len(g.Nodes))
	mins := make([]int, len(g.Nodes))
	cur := make([]int, len(g.Nodes))
	prev := make([]int, len(g.Nodes))
	// In Robust mode, repeat beyond RobustRepeats until two consecutive
	// runs agree on every node volume: residual consistent padding (which
	// passes byte accounting) then has to inflate the same node by the
	// same amount twice in a row to be believed, and the minimum over all
	// runs recovers the clean value whenever any single run was clean.
	maxRep := pd.Repeats
	if aggMin {
		maxRep += 3
	}
	for t := 0; t < cfg.Trials; t++ {
		tctx, tspan := obs.Start(ctx, "probe.trial")
		for fi, fam := range families {
			vals := probe.RandomValues(rng, fam)
			for q := 0; q < cfg.Q; q++ {
				qctx, qspan := obs.Start(tctx, "probe.pos")
				obs.Count(qctx, "probe.positions", "", 1)
				for n := range sums {
					sums[n], sqs[n] = 0, 0
				}
				reps := 0
				for r := 0; r < maxRep; r++ {
					segs, err := runOne(qctx, fam, vals, q)
					if err != nil {
						qspan.End()
						tspan.End()
						return nil, err
					}
					agreed := r > 0
					for n := 1; n < len(segs); n++ {
						bytes := segs[n].OutputBytes
						b := float64(bytes)
						sums[n] += b
						sqs[n] += b * b
						if r == 0 || bytes < mins[n] {
							mins[n] = bytes
						}
						if bytes != prev[n] {
							agreed = false
						}
						cur[n] = bytes
						if dt := segs[n].EncodingTime(); dt > 0 && bytes > cfg.BlockBytes {
							if cfg.BlockBytes > 0 {
								dt = dt * b / (b - float64(cfg.BlockBytes))
							}
							pd.Enc[n] = append(pd.Enc[n], dt)
						}
					}
					prev, cur = cur, prev
					reps++
					if reps >= pd.Repeats && (!aggMin || agreed) {
						break
					}
				}
				rr := float64(reps)
				for n := 1; n < len(g.Nodes); n++ {
					mean := sums[n] / rr
					if aggMin {
						pd.Bytes[n][fi][q][t] = mins[n]
					} else {
						pd.Bytes[n][fi][q][t] = int(mean + 0.5)
					}
					if pd.Means != nil {
						pd.Means[n][fi][q][t] = mean
					}
					if reps > 1 {
						varSum[n] += sqs[n]/rr - mean*mean
					}
				}
				if reps > 1 {
					varCnt++
				}
				qspan.End()
				if cfg.Progress != nil {
					done := (t*len(families)+fi)*cfg.Q + q + 1
					cfg.Progress(done, cfg.Trials*len(families)*cfg.Q)
				}
			}
		}
		tspan.End()
	}
	if varCnt > 0 {
		for n := range pd.Sigma {
			v := varSum[n] / float64(varCnt)
			if v > 0 {
				pd.Sigma[n] = math.Sqrt(v)
			}
		}
	}
	return pd, nil
}

// observedPartition builds the class pattern over probe positions for one
// node using the first `trials` trials of every family.
func (pd *ProbeData) observedPartition(node, trials int) []int {
	if pd.Cfg.NoiseTolerant {
		return pd.noiseTolerantPartition(node, trials)
	}
	if pd.Cfg.Robust {
		return pd.tolerantExactPartition(node, trials)
	}
	keys := make([]string, pd.Cfg.Q)
	for q := 0; q < pd.Cfg.Q; q++ {
		key := ""
		for f := range pd.Families {
			for t := 0; t < trials; t++ {
				key += fmt.Sprintf("%d,", pd.Bytes[node][f][q][t])
			}
			key += ";"
		}
		keys[q] = key
	}
	return symconv.ClassPattern(keys)
}

// noiseTolerantPartition relates two probe positions when their mean
// volumes agree within the estimated noise of an R-repeat average in a
// majority of (family, trial) draws, then takes the transitive closure —
// the repeated-trials counter-measure §9.2 anticipates against the
// randomized-padding defence.
func (pd *ProbeData) noiseTolerantPartition(node, trials int) []int {
	q := pd.Cfg.Q
	// Two R-averaged means differ by noise with std σ·sqrt(2/R); use a 3σ
	// acceptance band.
	tol := 3 * pd.Sigma[node] * math.Sqrt(2/float64(pd.Repeats))
	uf := newUnionFind(q)
	for i := 0; i < q; i++ {
		for j := i + 1; j < q; j++ {
			agree, total := 0, 0
			for f := range pd.Families {
				for t := 0; t < trials; t++ {
					total++
					diff := pd.Means[node][f][i][t] - pd.Means[node][f][j][t]
					if diff < 0 {
						diff = -diff
					}
					if diff <= tol {
						agree++
					}
				}
			}
			if agree*2 > total {
				uf.union(i, j)
			}
		}
	}
	return symconv.ClassPattern(uf.labels())
}

// tolerantExactPartition is the Robust-mode partition: two probe positions
// are related unless their (integer) volumes disagree in more than
// RobustMismatchBudget of the (family, trial) draws, then the transitive
// closure is taken. With the default budget of 0 this is the exact
// partition — any nonzero tolerance also forgives the *rare genuine*
// distinctions that §5.4 trial escalation exists to amplify (one draw can
// be the only evidence separating conv3+pool2 from conv3+stride2), so
// residual noise is scrubbed upstream by repeat-until-agreement
// aggregation instead, and the budget is an explicit opt-in for rigs
// whose noise survives even that.
func (pd *ProbeData) tolerantExactPartition(node, trials int) []int {
	q := pd.Cfg.Q
	budget := pd.Cfg.RobustMismatchBudget
	if budget < 0 {
		budget = 0
	}
	uf := newUnionFind(q)
	for i := 0; i < q; i++ {
		for j := i + 1; j < q; j++ {
			mismatch := 0
			for f := range pd.Families {
				for t := 0; t < trials && mismatch <= budget; t++ {
					if pd.Bytes[node][f][i][t] != pd.Bytes[node][f][j][t] {
						mismatch++
					}
				}
			}
			if mismatch <= budget {
				uf.union(i, j)
			}
		}
	}
	return symconv.ClassPattern(uf.labels())
}

// unionFind is a small disjoint-set forest used by the noise-tolerant
// partition builders.
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

func (u *unionFind) find(x int) int {
	if u.parent[x] != x {
		u.parent[x] = u.find(u.parent[x])
	}
	return u.parent[x]
}

func (u *unionFind) union(a, b int) { u.parent[u.find(a)] = u.find(b) }

// labels returns each element's representative, suitable for ClassPattern.
func (u *unionFind) labels() []int {
	out := make([]int, len(u.parent))
	for i := range out {
		out[i] = u.find(i)
	}
	return out
}

// ProbeResult is the prober's output: per-node geometry.
type ProbeResult struct {
	// Geoms is the chosen geometry per conv node.
	Geoms map[int]Geom
	// Candidates lists every hypothesis that matched the observed pattern
	// as well as the chosen one at that node, given the chosen prefix
	// (>1 entries mean a genuine ambiguity carried into the solution
	// space).
	Candidates map[int][]Geom
	// PoolFactors is the recovered factor per standalone pooling node.
	PoolFactors map[int]int
	// Exact[node] reports whether the chosen hypothesis matched the
	// observation exactly (vs merely refining it).
	Exact map[int]bool
	// TrialsUsed is how many trials the result was computed from.
	TrialsUsed int
	// Sym snapshots the symbolic engine's interner after the solve:
	// distinct-expression count and intern hit/miss split. This is the
	// solver's cost attribution — a VGG-S-style expression blowup is visible
	// here long before the process runs out of memory.
	Sym sym.Stats
	// Partial marks a solve aborted by the sym budget watchdog: the maps
	// above hold whatever prefix of the graph had been assigned when the
	// budget blew, and Sites attributes the interner growth per expression
	// family (largest first).
	Partial bool
	Sites   []sym.SiteStats
}

// solver carries the state of the backtracking geometry search.
type solver struct {
	pd     *ProbeData
	eng    *symconv.Engine
	trials int

	observed map[int][]int // per node, memoized observed pattern

	// Per-node assignment state (indexed by node ID).
	grids [][][]symconv.Grid // [node][family][probe]
	geom  map[int]Geom
	exact map[int]bool
	cand  map[int][]Geom
	pools map[int]int
	outH  map[int]int
	psumH map[int]int

	firstConv int
	failNote  string
}

func (s *solver) observedOf(node int) []int {
	if p, ok := s.observed[node]; ok {
		return p
	}
	p := s.pd.observedPartition(node, s.trials)
	s.observed[node] = p
	return p
}

func (s *solver) predictedPattern(gs [][]symconv.Grid) []int {
	keys := make([]string, s.pd.Cfg.Q)
	for q := 0; q < s.pd.Cfg.Q; q++ {
		key := ""
		for f := range s.pd.Families {
			key += symconv.Signature(gs[f][q]) + "|"
		}
		keys[q] = key
	}
	return symconv.ClassPattern(keys)
}

// correctedDt rescales the observed encoding interval to cover the whole
// layer: the first DRAM write lands only after the psums behind the first
// block were consumed (§7.2's head inaccuracy), and the attacker knows both
// byte quantities.
func (s *solver) correctedDt(n ObsNode) float64 {
	dt := n.EncTime
	bb := s.pd.Cfg.BlockBytes
	if bb > 0 && n.OutputBytes > bb {
		dt = dt * float64(n.OutputBytes) / float64(n.OutputBytes-bb)
	}
	return dt
}

// kRatioOf returns K_node/K_firstConv implied by the timing channel under
// the current dims assignment.
func (s *solver) kRatioOf(node int) float64 {
	first := s.pd.Graph.Nodes[s.firstConv]
	n := s.pd.Graph.Nodes[node]
	p1 := float64(s.psumH[s.firstConv])
	pu := float64(s.psumH[node])
	perK1 := s.correctedDt(first) / (p1 * p1)
	perKu := s.correctedDt(n) / (pu * pu)
	if perK1 <= 0 {
		return 1
	}
	return perKu / perK1
}

// chanRatio returns the node's channel count as a multiple of k1 (and a
// flag for the constant input-channel case).
func (s *solver) chanRatio(node int) (ratio float64, constant int) {
	if node == 0 {
		return 0, s.pd.Cfg.Consistency.InC
	}
	n := s.pd.Graph.Nodes[node]
	switch n.Kind {
	case NodeConv:
		return s.kRatioOf(node), 0
	case NodeAdd, NodePool:
		return s.chanRatio(n.Deps[0])
	}
	return 0, s.pd.Cfg.Consistency.Classes
}

func chanAt(ratio float64, constant, k1 int) float64 {
	if constant > 0 {
		return float64(constant)
	}
	k := mathRound(ratio * float64(k1))
	if k < 1 {
		k = 1
	}
	return float64(k)
}

func mathRound(x float64) int {
	if x < 0 {
		return int(x - 0.5)
	}
	return int(x + 0.5)
}

// k1Bounds derives the admissible first-layer channel range from the first
// conv's weight footprint and the empirical first-layer sparsity bound.
func (s *solver) k1Bounds() (int, int, bool) {
	n := s.pd.Graph.Nodes[s.firstConv]
	return s.pd.Cfg.Consistency.k1SparseRange(s.geom[s.firstConv], n.WeightBytes)
}

// consistent applies the §7 tie-breaking filters to a conv or pool node
// under the current partial assignment. It returns false when no k1 in the
// admissible range can explain the observed weight and output footprints.
func (s *solver) consistent(node int) bool {
	fin := s.pd.Cfg.Consistency
	if fin == nil {
		return true
	}
	k1min, k1max, ok := s.k1Bounds()
	if !ok {
		s.failNote = "empty k1 range"
		return false
	}
	n := s.pd.Graph.Nodes[node]
	oh := float64(s.outH[node])
	kr, kc := s.chanRatio(node)
	elems := func(k1 int) float64 { return oh * oh * chanAt(kr, kc, k1) }
	// Transfer-header bounds: bytes = ceil(n/8) + nnz·1 with nnz ∈ [0, n],
	// so n/8 ≤ bytes ≤ 9n/8 must be satisfiable for some admissible k1.
	b := float64(n.OutputBytes)
	if elems(k1min)/8 > b {
		s.failNote = fmt.Sprintf("node %d: implied output of %d×%d×k elements exceeds %d observed bytes", node, s.outH[node], s.outH[node], n.OutputBytes)
		return false
	}
	if elems(k1max)*9/8 < b {
		s.failNote = fmt.Sprintf("node %d: implied output too small for %d observed bytes", node, n.OutputBytes)
		return false
	}
	if n.Kind == NodeConv {
		// Weight-capacity bound (Eq. 10): r²·c·k ≥ observed nonzeros for
		// the largest admissible k1.
		g := s.geom[node]
		cr, cc := s.chanRatio(n.Deps[0])
		capacity := float64(g.Kernel*g.Kernel) * chanAt(cr, cc, k1max) * chanAt(kr, kc, k1max)
		if capacity < float64(fin.WeightNNZ(n.WeightBytes)) {
			s.failNote = fmt.Sprintf("node %d: kernel %d cannot hold %d weight nonzeros", node, g.Kernel, fin.WeightNNZ(n.WeightBytes))
			return false
		}
	}
	return true
}

// solveFrom assigns geometry to nodes[i:] by depth-first search; it returns
// true when a fully consistent assignment exists.
func (s *solver) solveFrom(i int) bool {
	g := s.pd.Graph
	if i == len(g.Nodes) {
		return true
	}
	n := g.Nodes[i]
	switch n.Kind {
	case NodeInput:
		gs := make([][]symconv.Grid, len(s.pd.Families))
		for f, fam := range s.pd.Families {
			gs[f] = s.eng.ProbeGrids(fam, s.pd.InH, s.pd.InW)
		}
		s.grids[n.ID] = gs
		s.outH[0] = s.pd.InH
		return s.solveFrom(i + 1)

	case NodeConv:
		in := s.grids[n.Deps[0]]
		inH := s.outH[n.Deps[0]]
		observed := s.observedOf(n.ID)
		type scored struct {
			g     Geom
			exact bool
			gs    [][]symconv.Grid
		}
		var exactM, refineM []scored
		for _, h := range s.pd.Cfg.hypotheses() {
			if inH < h.Kernel {
				continue // kernels larger than the map are out of scope
			}
			pad := (h.Kernel - 1) / 2
			p := (inH+2*pad-h.Kernel)/h.Stride + 1
			if p < h.Pool || (h.Pool > 1 && p%h.Pool != 0) {
				continue
			}
			gs := make([][]symconv.Grid, len(s.pd.Families))
			for f := range s.pd.Families {
				gs[f] = make([]symconv.Grid, s.pd.Cfg.Q)
				for q := 0; q < s.pd.Cfg.Q; q++ {
					c := s.eng.Conv(in[f][q], fmt.Sprintf("n%d_k%d_s%d", n.ID, h.Kernel, h.Stride), h.Kernel, h.Stride)
					gs[f][q] = s.eng.MaxPool(c, h.Pool)
				}
			}
			pred := s.predictedPattern(gs)
			if !symconv.Refines(pred, observed) {
				continue
			}
			m := scored{g: h, exact: symconv.SamePartition(pred, observed), gs: gs}
			if m.exact {
				exactM = append(exactM, m)
			} else {
				refineM = append(refineM, m)
			}
		}
		ordered := append(exactM, refineM...)
		if len(ordered) == 0 {
			s.failNote = fmt.Sprintf("node %d: no geometry hypothesis consistent with observed pattern %s (defence active or hypothesis space too small)",
				n.ID, symconv.PatternString(observed))
			return false
		}
		wasFirst := s.firstConv == 0
		if wasFirst {
			s.firstConv = n.ID
		}
		for _, m := range ordered {
			s.geom[n.ID] = m.g
			s.exact[n.ID] = m.exact
			s.grids[n.ID] = m.gs
			pad := (m.g.Kernel - 1) / 2
			p := (inH+2*pad-m.g.Kernel)/m.g.Stride + 1
			s.psumH[n.ID] = p
			s.outH[n.ID] = p / m.g.Pool
			if s.consistent(n.ID) && s.solveFrom(i+1) {
				// Record the peers that matched at the same level, the
				// ambiguity carried into the solution space.
				for _, peer := range ordered {
					if peer.exact == m.exact {
						s.cand[n.ID] = append(s.cand[n.ID], peer.g)
					}
				}
				return true
			}
		}
		delete(s.geom, n.ID)
		delete(s.psumH, n.ID)
		delete(s.outH, n.ID)
		s.grids[n.ID] = nil
		if wasFirst {
			s.firstConv = 0
		}
		return false

	case NodeAdd:
		a, b := s.grids[n.Deps[0]], s.grids[n.Deps[1]]
		if s.outH[n.Deps[0]] != s.outH[n.Deps[1]] {
			s.failNote = fmt.Sprintf("node %d: residual branches have different spatial dims (%d vs %d)",
				n.ID, s.outH[n.Deps[0]], s.outH[n.Deps[1]])
			return false
		}
		gs := make([][]symconv.Grid, len(s.pd.Families))
		for f := range s.pd.Families {
			gs[f] = make([]symconv.Grid, s.pd.Cfg.Q)
			for q := 0; q < s.pd.Cfg.Q; q++ {
				gs[f][q] = s.eng.Add(a[f][q], b[f][q])
			}
		}
		s.grids[n.ID] = gs
		s.outH[n.ID] = s.outH[n.Deps[0]]
		if ok := s.solveFrom(i + 1); ok {
			return true
		}
		s.grids[n.ID] = nil
		delete(s.outH, n.ID)
		return false

	case NodePool:
		in := s.grids[n.Deps[0]]
		inH := s.outH[n.Deps[0]]
		observed := s.observedOf(n.ID)
		factors := append([]int(nil), s.pd.Cfg.PoolNodeFactors...)
		factors = append(factors, inH) // global pooling
		// Descending order encodes the global-pool prior: standalone
		// average pools before the classifier are global in the paper's
		// workloads, and nnz saturation at the tail often leaves several
		// factors pattern-consistent.
		sort.Sort(sort.Reverse(sort.IntSlice(factors)))
		for _, f := range dedupInts(factors) {
			if f < 1 || inH%f != 0 {
				continue
			}
			gs := make([][]symconv.Grid, len(s.pd.Families))
			for fi := range s.pd.Families {
				gs[fi] = make([]symconv.Grid, s.pd.Cfg.Q)
				for q := 0; q < s.pd.Cfg.Q; q++ {
					gs[fi][q] = s.eng.AvgPool(in[fi][q], f)
				}
			}
			if !symconv.Refines(s.predictedPattern(gs), observed) {
				continue
			}
			s.pools[n.ID] = f
			s.grids[n.ID] = gs
			s.outH[n.ID] = inH / f
			if s.consistent(n.ID) && s.solveFrom(i+1) {
				return true
			}
			delete(s.pools, n.ID)
			s.grids[n.ID] = nil
			delete(s.outH, n.ID)
		}
		if s.failNote == "" {
			s.failNote = fmt.Sprintf("node %d: no pool factor consistent with observation", n.ID)
		}
		return false

	case NodeLinear:
		// The boundary effect ends here; nothing spatial to recover.
		s.outH[n.ID] = 1
		return s.solveFrom(i + 1)
	}
	return false
}

// Solve runs Algorithm 1 over the first `trials` trials: a backtracking
// walk of the recovered graph that, per conv node, matches each geometry
// hypothesis's symbolically predicted nnz pattern against the observed one
// (keeping refinements — the one-sided error — and preferring exact
// matches), and prunes assignments that violate residual-dimension,
// weight-capacity, transfer-header, or timing consistency (§7).
func (pd *ProbeData) Solve(trials int) (res *ProbeResult, err error) {
	if trials < 1 || trials > pd.Cfg.Trials {
		return nil, fmt.Errorf("huffduff: %d trials requested, %d collected", trials, pd.Cfg.Trials)
	}
	s := &solver{
		pd:       pd,
		eng:      symconv.NewEngine(),
		trials:   trials,
		observed: map[int][]int{},
		grids:    make([][][]symconv.Grid, len(pd.Graph.Nodes)),
		geom:     map[int]Geom{},
		exact:    map[int]bool{},
		cand:     map[int][]Geom{},
		pools:    map[int]int{},
		outH:     map[int]int{},
		psumH:    map[int]int{},
	}
	if pd.Cfg.SymMaxExprs > 0 || pd.Cfg.SymMaxBytes > 0 {
		s.eng.In.SetBudget(pd.Cfg.SymMaxExprs, pd.Cfg.SymMaxBytes)
		// The watchdog aborts via panic from deep inside the backtracking
		// search; recover it into a partial result carrying whatever prefix
		// of the graph had been assigned, plus the per-site attribution that
		// names the expression family that exploded.
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			be, ok := r.(*sym.BudgetExceeded)
			if !ok {
				panic(r)
			}
			res = &ProbeResult{
				Geoms:       s.geom,
				Candidates:  s.cand,
				PoolFactors: s.pools,
				Exact:       s.exact,
				TrialsUsed:  trials,
				Sym:         s.eng.In.Stats(),
				Partial:     true,
				Sites:       s.eng.In.Sites(),
			}
			err = fmt.Errorf("huffduff: solve aborted by watchdog: %v: %w", be, faults.ErrSymBudget)
		}()
	}
	if !s.solveFrom(0) {
		return nil, fmt.Errorf("huffduff: no consistent geometry assignment: %s", s.failNote)
	}
	return &ProbeResult{
		Geoms:       s.geom,
		Candidates:  s.cand,
		PoolFactors: s.pools,
		Exact:       s.exact,
		TrialsUsed:  trials,
		Sym:         s.eng.In.Stats(),
		Sites:       s.eng.In.Sites(),
	}, nil
}

func dedupInts(xs []int) []int {
	out := xs[:0:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
