package huffduff

import (
	"math"
	"testing"
)

func chainGraph(kinds ...NodeKind) *ObsGraph {
	g := &ObsGraph{}
	for i, k := range kinds {
		n := ObsNode{ID: i, Kind: k}
		if i > 0 {
			n.Deps = []int{i - 1}
		}
		g.Nodes = append(g.Nodes, n)
	}
	return g
}

func TestPropagateDims(t *testing.T) {
	g := chainGraph(NodeInput, NodeConv, NodeConv, NodePool, NodeLinear)
	pr := &ProbeResult{
		Geoms: map[int]Geom{
			1: {Kernel: 3, Stride: 1, Pool: 2},
			2: {Kernel: 3, Stride: 2, Pool: 1},
		},
		PoolFactors: map[int]int{3: 8},
	}
	dims, err := PropagateDims(g, pr, 32)
	if err != nil {
		t.Fatal(err)
	}
	if dims.PsumH[1] != 32 || dims.OutH[1] != 16 {
		t.Fatalf("node1 dims %d/%d", dims.PsumH[1], dims.OutH[1])
	}
	if dims.PsumH[2] != 8 || dims.OutH[2] != 8 {
		t.Fatalf("node2 dims %d/%d", dims.PsumH[2], dims.OutH[2])
	}
	if dims.OutH[3] != 1 {
		t.Fatalf("pool out %d", dims.OutH[3])
	}
	if dims.OutH[4] != 1 {
		t.Fatalf("linear out %d", dims.OutH[4])
	}
}

func TestPropagateDimsMissingGeometry(t *testing.T) {
	g := chainGraph(NodeInput, NodeConv)
	if _, err := PropagateDims(g, &ProbeResult{Geoms: map[int]Geom{}}, 32); err == nil {
		t.Fatal("expected error for missing geometry")
	}
}

func TestPropagateDimsAddMismatch(t *testing.T) {
	g := &ObsGraph{Nodes: []ObsNode{
		{ID: 0, Kind: NodeInput},
		{ID: 1, Kind: NodeConv, Deps: []int{0}},
		{ID: 2, Kind: NodeConv, Deps: []int{0}},
		{ID: 3, Kind: NodeAdd, Deps: []int{1, 2}},
	}}
	pr := &ProbeResult{Geoms: map[int]Geom{
		1: {Kernel: 3, Stride: 1, Pool: 1},
		2: {Kernel: 3, Stride: 2, Pool: 1},
	}}
	if _, err := PropagateDims(g, pr, 32); err == nil {
		t.Fatal("expected branch-dims error")
	}
}

func TestTimingChannelRatios(t *testing.T) {
	// Two convs: psum 32² k=4 and psum 16² k=8; GLB-bound Δt ∝ psums·k.
	g := chainGraph(NodeInput, NodeConv, NodeConv)
	g.Nodes[1].EncTime = 1024 * 4 * 1e-9
	g.Nodes[1].OutputBytes = 100000 // make head correction negligible
	g.Nodes[2].EncTime = 256 * 8 * 1e-9
	g.Nodes[2].OutputBytes = 100000
	dims := &SpatialDims{PsumH: map[int]int{1: 32, 2: 16}, OutH: map[int]int{}}
	tm, err := TimingChannel(g, dims, 64)
	if err != nil {
		t.Fatal(err)
	}
	if tm.RefNode != 1 {
		t.Fatalf("ref node %d", tm.RefNode)
	}
	if math.Abs(tm.KRatio[1]-1) > 1e-9 {
		t.Fatalf("ref ratio %g", tm.KRatio[1])
	}
	if math.Abs(tm.KRatio[2]-2) > 1e-6 {
		t.Fatalf("ratio = %g, want 2", tm.KRatio[2])
	}
}

func TestTimingChannelHeadCorrection(t *testing.T) {
	g := chainGraph(NodeInput, NodeConv)
	g.Nodes[1].EncTime = 0.9 // observed Δt covers 90% of the layer
	g.Nodes[1].OutputBytes = 640
	dims := &SpatialDims{PsumH: map[int]int{1: 10}}
	tm, err := TimingChannel(g, dims, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Corrected Δt = 0.9·640/576 = 1.0; ratio to itself is 1 regardless,
	// but the corrected perK is what later layers normalize against: check
	// via a second run with no correction applied (block=0).
	tm0, err := TimingChannel(g, dims, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tm.KRatio[1] != 1 || tm0.KRatio[1] != 1 {
		t.Fatal("self ratio must be 1")
	}
}

func TestTimingChannelErrors(t *testing.T) {
	g := chainGraph(NodeInput)
	if _, err := TimingChannel(g, &SpatialDims{}, 64); err == nil {
		t.Fatal("expected no-conv error")
	}
	g2 := chainGraph(NodeInput, NodeConv)
	if _, err := TimingChannel(g2, &SpatialDims{PsumH: map[int]int{}}, 64); err == nil {
		t.Fatal("expected missing-psum-dims error")
	}
	g3 := chainGraph(NodeInput, NodeConv)
	g3.Nodes[1].EncTime = 0
	if _, err := TimingChannel(g3, &SpatialDims{PsumH: map[int]int{1: 8}}, 0); err == nil {
		t.Fatal("expected zero-encoding-time error")
	}
}

func TestFinalizeErrors(t *testing.T) {
	g := chainGraph(NodeInput)
	fin := DefaultFinalizeConfig()
	if _, err := Finalize(g, &ProbeResult{}, &SpatialDims{}, &TimingResult{}, fin); err == nil {
		t.Fatal("expected nothing-to-finalize error")
	}
}

func TestMathRound(t *testing.T) {
	for in, want := range map[float64]int{0.4: 0, 0.5: 1, 1.49: 1, 2.5: 3, -0.6: -1} {
		if got := mathRound(in); got != want {
			t.Fatalf("mathRound(%g) = %d, want %d", in, got, want)
		}
	}
}

func TestChanAt(t *testing.T) {
	if chanAt(0, 3, 100) != 3 {
		t.Fatal("constant channels ignored")
	}
	if chanAt(2.0, 0, 8) != 16 {
		t.Fatal("ratio channels wrong")
	}
	if chanAt(0.001, 0, 1) != 1 {
		t.Fatal("channels must floor at 1")
	}
}
