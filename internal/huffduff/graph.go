// Package huffduff implements the paper's attack: boundary-effect probing
// with a symbolic convolution engine (§5–6), the psum-encoding timing side
// channel (§7), and solution-space finalization (§8.2). All victim
// information flows through trace.Trace values — the DRAM access volumes,
// addresses, and timestamps the threat model exposes.
package huffduff

import (
	"fmt"

	"github.com/huffduff/huffduff/internal/faults"
	"github.com/huffduff/huffduff/internal/tensor"
	"github.com/huffduff/huffduff/internal/trace"
)

// Victim is the attacker's handle on the device: feed an input, observe the
// DRAM trace. accel.Machine implements it; so would a real probe rig.
type Victim interface {
	Run(img *tensor.Tensor) (*trace.Trace, error)
}

// NodeKind classifies a recovered execution node.
type NodeKind int

// Recovered node kinds.
const (
	NodeInput NodeKind = iota
	NodeConv
	NodeAdd
	NodePool
	NodeLinear
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case NodeInput:
		return "input"
	case NodeConv:
		return "conv"
	case NodeAdd:
		return "add"
	case NodePool:
		return "pool"
	case NodeLinear:
		return "linear"
	}
	return "?"
}

// ObsNode is one node of the recovered dataflow graph.
type ObsNode struct {
	ID   int
	Kind NodeKind
	// Deps are producing node IDs (recovered via RAW dependencies).
	Deps []int
	// Footprints in bytes, as observed on the bus.
	WeightBytes, InputBytes, OutputBytes int
	// EncTime is the Δt between first and last output write (§7.2).
	EncTime float64
}

// ObsGraph is the dataflow graph the attacker reconstructs from one trace.
// Node 0 is the attacker's own input.
type ObsGraph struct {
	Nodes []ObsNode
}

// BuildGraph classifies trace segments into graph nodes:
//
//   - segment 0 (writes only) is the attacker's input DMA;
//   - segments with weight traffic are conv passes — except the final one,
//     which is the classifier (linear) head;
//   - weightless segments with two producers are residual adds;
//   - weightless segments with one producer are pooling passes.
func BuildGraph(obs []trace.SegmentObs) (*ObsGraph, error) {
	// Structural failures here mean the observed trace does not describe a
	// layerwise CNN execution — on a known-good victim that is a corrupted
	// observation, so the errors wrap faults.ErrTraceCorrupt and callers may
	// re-run the inference.
	if len(obs) < 2 {
		return nil, fmt.Errorf("huffduff: trace has %d segments; no layers to attack: %w", len(obs), faults.ErrTraceCorrupt)
	}
	g := &ObsGraph{}
	for i, o := range obs {
		n := ObsNode{
			ID:          i,
			Deps:        append([]int(nil), o.Deps...),
			WeightBytes: o.WeightBytes,
			InputBytes:  o.InputBytes,
			OutputBytes: o.OutputBytes,
			EncTime:     o.EncodingTime(),
		}
		switch {
		case i == 0:
			if o.InputBytes != 0 || o.WeightBytes != 0 {
				return nil, fmt.Errorf("huffduff: segment 0 reads data; not an input DMA: %w", faults.ErrTraceCorrupt)
			}
			n.Kind = NodeInput
		case o.WeightBytes > 0 && i == len(obs)-1:
			n.Kind = NodeLinear
		case o.WeightBytes > 0:
			n.Kind = NodeConv
		case len(o.Deps) == 2:
			n.Kind = NodeAdd
		case len(o.Deps) == 1:
			n.Kind = NodePool
		default:
			return nil, fmt.Errorf("huffduff: segment %d unclassifiable (%d deps, no weights): %w", i, len(o.Deps), faults.ErrTraceCorrupt)
		}
		g.Nodes = append(g.Nodes, n)
	}
	return g, nil
}

// ConvNodes returns conv node IDs in execution order.
func (g *ObsGraph) ConvNodes() []int {
	var ids []int
	for _, n := range g.Nodes {
		if n.Kind == NodeConv {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// String renders the recovered graph.
func (g *ObsGraph) String() string {
	s := ""
	for _, n := range g.Nodes {
		s += fmt.Sprintf("%2d %-6s deps=%v W=%dB I=%dB O=%dB Δt=%.3gus\n",
			n.ID, n.Kind, n.Deps, n.WeightBytes, n.InputBytes, n.OutputBytes, n.EncTime*1e6)
	}
	return s
}
