package huffduff

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/huffduff/huffduff/internal/accel"
	"github.com/huffduff/huffduff/internal/chaos"
	"github.com/huffduff/huffduff/internal/faults"
	"github.com/huffduff/huffduff/internal/models"
	"github.com/huffduff/huffduff/internal/tensor"
	"github.com/huffduff/huffduff/internal/trace"
)

// smallCNNTruth is the ground truth the robustness tests recover:
// SmallCNN's conv geometry and channel counts per graph node.
var smallCNNGeoms = map[int]Geom{
	1: {Kernel: 5, Stride: 1, Pool: 1},
	2: {Kernel: 3, Stride: 1, Pool: 2},
	3: {Kernel: 3, Stride: 2, Pool: 1},
}

var smallCNNChans = map[int]int{1: 8, 2: 16, 3: 16}

// robustTestConfig trims the trial budget and runs a single solve (each
// solve costs ~10s; TestConvergenceReporting covers the escalation
// schedule) so each faulty campaign stays test-sized; the hardened
// defaults are otherwise unchanged.
func robustTestConfig() Config {
	cfg := DefaultRobustConfig()
	cfg.Probe.Trials = 8
	cfg.Converge = false
	// A slimmer (still wrong-inclusive) hypothesis grid: solver time, not
	// inference time, dominates these campaigns, and fault tolerance is
	// about surviving noise, not searching the widest geometry space.
	cfg.Probe.Kernels = []int{1, 3, 5}
	cfg.Probe.PoolNodeFactors = []int{2, 4}
	return cfg
}

// checkRecoveredOrDegraded applies the acceptance criterion: the attack
// either recovers the exact clean-run geometry with a timing-pinned space
// containing the truth, or returns a flagged degraded space whose bounds
// admit the true architecture.
func checkRecoveredOrDegraded(t *testing.T, res *Result) {
	t.Helper()
	for node, want := range smallCNNGeoms {
		if got := res.Probe.Geoms[node]; got != want {
			t.Fatalf("node %d geometry = %+v, want %+v (degraded=%v)", node, got, want, res.Degraded)
		}
	}
	if !res.Space.Admits(smallCNNChans) {
		t.Fatalf("space does not admit the true channels %v (degraded=%v, k1 range [%d,%d])",
			smallCNNChans, res.Degraded, res.Space.K1Min, res.Space.K1Max)
	}
	if res.Degraded {
		if res.DegradedReason == "" {
			t.Fatal("degraded result carries no reason")
		}
		if !res.Space.Degraded || len(res.Space.KBounds) == 0 {
			t.Fatal("degraded result without a degraded space")
		}
		for node, k := range smallCNNChans {
			b, ok := res.Space.KBounds[node]
			if !ok || k < b[0] || k > b[1] {
				t.Fatalf("true K=%d for node %d outside degraded bounds %v", k, node, b)
			}
		}
		return
	}
	if res.Space.K1Min > 8 || res.Space.K1Max < 8 {
		t.Fatalf("true k1=8 outside [%d,%d]", res.Space.K1Min, res.Space.K1Max)
	}
}

// TestRobustAttackUnderSingleFaults runs the hardened pipeline with one
// fault class at a time at its default intensity.
func TestRobustAttackUnderSingleFaults(t *testing.T) {
	def := chaos.DefaultConfig()
	cases := []struct {
		name string
		cfg  chaos.Config
	}{
		{"transient", chaos.Config{Seed: 11, TransientProb: def.TransientProb}},
		{"jitter", chaos.Config{Seed: 12, JitterStd: def.JitterStd}},
		{"drop", chaos.Config{Seed: 13, DropProb: def.DropProb}},
		{"duplicate", chaos.Config{Seed: 14, DupProb: def.DupProb}},
		{"swap", chaos.Config{Seed: 15, SwapProb: def.SwapProb}},
		{"truncate", chaos.Config{Seed: 16, TruncateProb: def.TruncateProb, TruncateFracMax: def.TruncateFracMax}},
		{"padding", chaos.Config{Seed: 17, PadProb: def.PadProb, PadMaxBytes: def.PadMaxBytes}},
	}
	if raceEnabled {
		t.Skip("heavy end-to-end campaign; TestRobustAttackAllFaults covers the robust path under -race")
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, _ := deployVictim(t, models.SmallCNN(), 1)
			fv := chaos.Wrap(m, tc.cfg)
			res, err := Attack(fv, robustTestConfig())
			if err != nil {
				t.Fatalf("robust attack failed under %s faults: %v", tc.name, err)
			}
			checkRecoveredOrDegraded(t, res)
		})
	}
}

// TestRobustAttackAllFaults is the headline acceptance test: every fault
// class on at once, at default intensity, against the hardened pipeline.
func TestRobustAttackAllFaults(t *testing.T) {
	m, _ := deployVictim(t, models.SmallCNN(), 1)
	fv := chaos.Wrap(m, chaos.DefaultConfig())
	res, err := Attack(fv, robustTestConfig())
	if err != nil {
		t.Fatalf("robust attack failed under all fault classes: %v", err)
	}
	checkRecoveredOrDegraded(t, res)
	if res.VictimRetries == 0 {
		t.Error("expected at least one victim retry under the full fault load")
	}
	s := fv.Stats()
	t.Logf("chaos: %d runs, %d transients, %d dropped, %d duplicated, %d swapped, %d truncated, %d padded; %d retries; degraded=%v",
		s.Runs, s.Transients, s.Dropped, s.Duplicated, s.Swapped, s.Truncated, s.Padded, res.VictimRetries, res.Degraded)
}

// TestFailFastPipelineDiesUnderFaults documents why the hardening exists:
// the paper's fail-fast configuration cannot survive the same fault load.
func TestFailFastPipelineDiesUnderFaults(t *testing.T) {
	m, _ := deployVictim(t, models.SmallCNN(), 1)
	fv := chaos.Wrap(m, chaos.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Probe.MaxRetries = 0
	cfg.Probe.Trials = 8
	if _, err := Attack(fv, cfg); err == nil {
		t.Fatal("fail-fast attack should not survive the full fault load")
	}
}

// TestHeavyJitterDegradesGracefully forces the timing channel out of
// tolerance: the attack must not fail, but return a flagged degraded space
// that still contains the truth.
func TestHeavyJitterDegradesGracefully(t *testing.T) {
	if raceEnabled {
		t.Skip("heavy end-to-end campaign; skipped under -race")
	}
	m, _ := deployVictim(t, models.SmallCNN(), 1)
	fv := chaos.Wrap(m, chaos.Config{Seed: 21, JitterStd: 40})
	cfg := robustTestConfig()
	cfg.TimingTolerance = 0.02
	res, err := Attack(fv, cfg)
	if err != nil {
		t.Fatalf("attack failed instead of degrading: %v", err)
	}
	if !res.Degraded {
		t.Skip("jitter stayed within tolerance at this seed; degradation not exercised")
	}
	checkRecoveredOrDegraded(t, res)
	if res.Space.Admits(map[int]int{1: res.Space.KBounds[1][1] + 1}) {
		t.Fatal("degraded space admits channels above its own bounds")
	}
}

// cleanSmallCNNAttack runs one clean default-config attack and shares the
// result across the space tests (each full attack costs ~20s).
var (
	cleanAttackOnce sync.Once
	cleanAttackRes  *Result
	cleanAttackErr  error
)

func cleanSmallCNNAttack(t *testing.T) *Result {
	t.Helper()
	cleanAttackOnce.Do(func() {
		arch := models.SmallCNN()
		bind, err := arch.Build(rand.New(rand.NewSource(1234)))
		if err != nil {
			cleanAttackErr = err
			return
		}
		m := accel.NewMachine(accel.DefaultConfig(), arch, bind)
		cleanAttackRes, cleanAttackErr = Attack(m, DefaultConfig())
	})
	if cleanAttackErr != nil {
		t.Fatal(cleanAttackErr)
	}
	return cleanAttackRes
}

// TestDegradedSpaceDirect exercises FinalizeDegraded against a clean run's
// intermediates, independent of chaos randomness.
func TestDegradedSpaceDirect(t *testing.T) {
	if raceEnabled {
		t.Skip("heavy end-to-end campaign; skipped under -race")
	}
	res := cleanSmallCNNAttack(t)
	sp, err := FinalizeDegraded(res.Graph, res.Probe, res.Dims, DefaultFinalizeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Degraded {
		t.Fatal("space not flagged degraded")
	}
	if !sp.Admits(smallCNNChans) {
		t.Fatalf("degraded space rejects the truth; bounds %v", sp.KBounds)
	}
	if sp.Admits(map[int]int{2: 1000}) {
		t.Fatal("degraded space admits an absurd channel count")
	}
	// The degraded space must be no tighter than the timing-pinned one on
	// the first layer, and every solution must stay buildable.
	if sp.K1Min > 8 || sp.K1Max < 8 {
		t.Fatalf("true k1=8 outside degraded range [%d,%d]", sp.K1Min, sp.K1Max)
	}
	for _, sol := range sp.Solutions {
		if _, err := sol.Arch.Shapes(); err != nil {
			t.Fatalf("degraded candidate k1=%d not buildable: %v", sol.K1, err)
		}
	}
}

// TestExactSpaceAdmits checks Admits on a timing-pinned space.
func TestExactSpaceAdmits(t *testing.T) {
	if raceEnabled {
		t.Skip("heavy end-to-end campaign; skipped under -race")
	}
	res := cleanSmallCNNAttack(t)
	if !res.Space.Admits(smallCNNChans) {
		t.Fatal("exact space rejects the true channels")
	}
	if res.Space.Admits(map[int]int{1: 8, 2: 17, 3: 16}) {
		t.Fatal("exact space admits channels no solution carries")
	}
}

// TestConvergenceReporting runs the §8.2 escalation loop on a clean victim.
func TestConvergenceReporting(t *testing.T) {
	if raceEnabled {
		t.Skip("heavy end-to-end campaign; skipped under -race")
	}
	m, _ := deployVictim(t, models.SmallCNN(), 1)
	cfg := DefaultRobustConfig()
	cfg.Probe.Trials = 16
	cfg.ConvergeStart = 8 // schedule {8, 16}: two solves keep the test fast
	res, err := Attack(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("clean run did not converge (stable from %d trials)", res.TrialsConverged)
	}
	if res.TrialsConverged < 2 || res.TrialsConverged > cfg.Probe.Trials {
		t.Fatalf("TrialsConverged = %d out of range", res.TrialsConverged)
	}
	for node := range smallCNNGeoms {
		c, ok := res.Confidence[node]
		if !ok {
			t.Fatalf("no confidence score for node %d", node)
		}
		if c <= 0 || c > 1 {
			t.Fatalf("confidence[%d] = %g out of (0,1]", node, c)
		}
	}
}

// TestAttackConfigValidation rejects broken configurations up front with
// ErrBadConfig and stage "config".
func TestAttackConfigValidation(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero trials", func(c *Config) { c.Probe.Trials = 0 }},
		{"one probe position", func(c *Config) { c.Probe.Q = 1 }},
		{"empty kernels", func(c *Config) { c.Probe.Kernels = nil }},
		{"zero stride hypothesis", func(c *Config) { c.Probe.Strides = []int{0} }},
		{"zero block bytes", func(c *Config) { c.BlockBytes = 0 }},
		{"negative retries", func(c *Config) { c.Probe.MaxRetries = -1 }},
		{"negative tolerance", func(c *Config) { c.TimingTolerance = -0.1 }},
		{"zero classes", func(c *Config) { c.Finalize.Classes = 0 }},
		{"full sparsity bound", func(c *Config) { c.Finalize.MaxFirstLayerSparsity = 1 }},
		{"zero input dims", func(c *Config) { c.Finalize.InH = 0 }},
	}
	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			_, err := Attack(failingVictim{}, cfg)
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if !errors.Is(err, faults.ErrBadConfig) {
				t.Fatalf("error %v does not wrap ErrBadConfig", err)
			}
			if stage, ok := faults.StageOf(err); !ok || stage != "config" {
				t.Fatalf("error %v not attributed to the config stage", err)
			}
		})
	}
}

// failingVictim always reports a transient device failure.
type failingVictim struct{}

func (failingVictim) Run(*tensor.Tensor) (*trace.Trace, error) {
	return nil, fmt.Errorf("device busy: %w", faults.ErrTransient)
}

// TestStageContextOnVictimFailure: a victim that never answers exhausts the
// retry budget and the error names the stage that died plus the transient
// sentinel.
func TestStageContextOnVictimFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Probe.MaxRetries = 2
	_, err := Attack(failingVictim{}, cfg)
	if err == nil {
		t.Fatal("attack succeeded against a dead victim")
	}
	if !errors.Is(err, faults.ErrTransient) {
		t.Fatalf("error %v does not wrap ErrTransient", err)
	}
	if stage, ok := faults.StageOf(err); !ok || stage != "calibration" {
		t.Fatalf("error %v not attributed to the calibration stage (got %q)", err, stage)
	}
}
