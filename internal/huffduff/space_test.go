package huffduff

import "testing"

// Satellite coverage for the solution-space primitives the convergence
// ledger leans on: interval intersection and Admits across exact, degraded,
// and empty spaces.

func TestIntersect(t *testing.T) {
	cases := []struct {
		name   string
		a, b   [2]int
		want   [2]int
		wantOK bool
	}{
		{"overlap", [2]int{1, 10}, [2]int{5, 20}, [2]int{5, 10}, true},
		{"containment", [2]int{1, 100}, [2]int{40, 60}, [2]int{40, 60}, true},
		{"identical", [2]int{3, 7}, [2]int{3, 7}, [2]int{3, 7}, true},
		{"touching endpoints", [2]int{1, 5}, [2]int{5, 9}, [2]int{5, 5}, true},
		{"disjoint", [2]int{1, 4}, [2]int{6, 9}, [2]int{}, false},
		{"disjoint reversed", [2]int{6, 9}, [2]int{1, 4}, [2]int{}, false},
		{"point vs interval", [2]int{5, 5}, [2]int{1, 10}, [2]int{5, 5}, true},
		{"point miss", [2]int{5, 5}, [2]int{6, 10}, [2]int{}, false},
	}
	for _, c := range cases {
		got, ok := intersect(c.a, c.b)
		if ok != c.wantOK {
			t.Errorf("%s: intersect(%v, %v) ok = %v, want %v", c.name, c.a, c.b, ok, c.wantOK)
			continue
		}
		if ok && got != c.want {
			t.Errorf("%s: intersect(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
}

func TestAdmitsDegraded(t *testing.T) {
	s := &SolutionSpace{
		Degraded: true,
		KBounds:  map[int][2]int{1: {10, 20}, 3: {5, 5}},
	}
	if !s.Admits(map[int]int{1: 15, 3: 5}) {
		t.Fatal("in-bounds assignment rejected")
	}
	if !s.Admits(map[int]int{1: 10}) && !s.Admits(map[int]int{1: 20}) {
		t.Fatal("interval endpoints rejected")
	}
	if s.Admits(map[int]int{1: 9}) || s.Admits(map[int]int{1: 21}) {
		t.Fatal("out-of-bounds channel admitted")
	}
	if s.Admits(map[int]int{3: 6}) {
		t.Fatal("point interval admitted a different value")
	}
	// Nodes without bounds are unconstrained, as is the empty assignment.
	if !s.Admits(map[int]int{99: 123456}) {
		t.Fatal("unconstrained node rejected")
	}
	if !s.Admits(nil) {
		t.Fatal("empty assignment rejected")
	}
}

func TestAdmitsDegradedEmptyBounds(t *testing.T) {
	// A degraded space with no KBounds at all (e.g. a budget abort before
	// any geometry was pinned) constrains nothing: every assignment is
	// admissible, which is exactly what "we learned nothing" means.
	s := &SolutionSpace{Degraded: true, Partial: true}
	if !s.Admits(map[int]int{1: 7, 2: 9999}) {
		t.Fatal("unconstrained partial space rejected an assignment")
	}
}

func TestAdmitsExactEmptySpace(t *testing.T) {
	// An exact space with zero enumerated solutions admits nothing — the
	// opposite polarity from the degraded empty space, because exact spaces
	// enumerate rather than bound.
	s := &SolutionSpace{}
	if s.Admits(nil) {
		t.Fatal("empty exact space admitted the empty assignment")
	}
	if s.Admits(map[int]int{1: 16}) {
		t.Fatal("empty exact space admitted an assignment")
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d", s.Count())
	}
}
