//go:build !race

package huffduff

// raceEnabled reports whether the race detector is compiled in; heavy
// end-to-end campaigns skip under -race to stay inside the package test
// timeout (the instrumentation slows the simulator several-fold).
const raceEnabled = false
