package huffduff

import (
	"math"
	"math/rand"
	"testing"

	"github.com/huffduff/huffduff/internal/accel"
	"github.com/huffduff/huffduff/internal/models"
	"github.com/huffduff/huffduff/internal/prune"
	"github.com/huffduff/huffduff/internal/tensor"
	"github.com/huffduff/huffduff/internal/trace"
)

// deployVictim builds, lightly prunes, and deploys an architecture on the
// simulated accelerator.
func deployVictim(t *testing.T, arch *models.Arch, keep float64) (*accel.Machine, *models.Binding) {
	t.Helper()
	rng := rand.New(rand.NewSource(1234))
	bind, err := arch.Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	if keep < 1 {
		prune.GlobalMagnitude(bind.Net.Params(), keep)
	}
	m := accel.NewMachine(accel.DefaultConfig(), arch, bind)
	return m, bind
}

func attackVictim(t *testing.T, arch *models.Arch, keep float64, cfg Config) (*Result, *models.Binding) {
	t.Helper()
	if raceEnabled {
		t.Skip("full attack campaign; the race-instrumented simulator is an order of magnitude slower")
	}
	m, bind := deployVictim(t, arch, keep)
	res, err := Attack(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, bind
}

func TestGraphRecoverySmallCNN(t *testing.T) {
	arch := models.SmallCNN()
	res, _ := attackVictim(t, arch, 1, DefaultConfig())
	g := res.Graph
	if len(g.Nodes) != len(arch.Units)+1 {
		t.Fatalf("graph nodes = %d, want %d", len(g.Nodes), len(arch.Units)+1)
	}
	wantKinds := []NodeKind{NodeInput, NodeConv, NodeConv, NodeConv, NodeLinear}
	for i, k := range wantKinds {
		if g.Nodes[i].Kind != k {
			t.Fatalf("node %d kind = %s, want %s\n%s", i, g.Nodes[i].Kind, k, g)
		}
	}
}

func TestProberRecoversSmallCNNGeometry(t *testing.T) {
	arch := models.SmallCNN()
	res, _ := attackVictim(t, arch, 1, DefaultConfig())
	want := map[int]Geom{
		1: {Kernel: 5, Stride: 1, Pool: 1},
		2: {Kernel: 3, Stride: 1, Pool: 2},
		3: {Kernel: 3, Stride: 2, Pool: 1},
	}
	for node, g := range want {
		got := res.Probe.Geoms[node]
		if got != g {
			t.Fatalf("node %d geometry = %+v, want %+v", node, got, g)
		}
		if !res.Probe.Exact[node] {
			t.Fatalf("node %d matched only by refinement", node)
		}
	}
}

func TestTimingChannelRecoversKRatios(t *testing.T) {
	arch := models.SmallCNN() // true K: 8, 16, 16
	res, _ := attackVictim(t, arch, 1, DefaultConfig())
	wantRatios := map[int]float64{1: 1, 2: 2, 3: 2}
	for node, want := range wantRatios {
		got := res.Timing.KRatio[node]
		if math.Abs(got-want)/want > 0.15 {
			t.Fatalf("node %d k-ratio = %.3f, want ~%.1f", node, got, want)
		}
	}
}

func TestSolutionSpaceContainsTruth(t *testing.T) {
	arch := models.SmallCNN() // first conv K = 8
	res, _ := attackVictim(t, arch, 1, DefaultConfig())
	sp := res.Space
	if sp.K1Min > 8 || sp.K1Max < 8 {
		t.Fatalf("true k1=8 outside recovered range [%d,%d]", sp.K1Min, sp.K1Max)
	}
	foundTruth := false
	for _, sol := range sp.Solutions {
		if sol.K1 != 8 {
			continue
		}
		foundTruth = true
		// The k1=8 candidate must reproduce the victim's conv geometry and
		// channel counts exactly.
		convIdx := 0
		for _, u := range sol.Arch.Units {
			if u.Kind != models.UnitConv {
				continue
			}
			truth := arch.Units[arch.ConvUnits()[convIdx]]
			if u.OutC != truth.OutC || u.Kernel != truth.Kernel || u.Stride != truth.Stride || u.Pool != truth.Pool {
				t.Fatalf("candidate conv %d = %+v, truth %+v", convIdx, u, truth)
			}
			convIdx++
		}
		// Architecture must be buildable.
		if _, err := sol.Arch.Shapes(); err != nil {
			t.Fatalf("candidate arch invalid: %v", err)
		}
	}
	if !foundTruth {
		t.Fatal("no k1=8 candidate in solution space")
	}
	// The space stays small (paper: < 100).
	if sp.Count() > 100 {
		t.Fatalf("solution space %d too large", sp.Count())
	}
}

func TestSolutionDensityRecovered(t *testing.T) {
	arch := models.SmallCNN()
	res, bind := attackVictim(t, arch, 0.4, DefaultConfig())
	// Find the k1=8 candidate and compare recovered density with the
	// victim's true first-layer density.
	for _, sol := range res.Space.Solutions {
		if sol.K1 != 8 {
			continue
		}
		trueDensity := 1 - bind.Conv[0].Weight.W.Sparsity(0)
		got := sol.Density[0]
		if math.Abs(got-trueDensity) > 0.1 {
			t.Fatalf("recovered density %.3f, true %.3f", got, trueDensity)
		}
		return
	}
	t.Fatal("k1=8 candidate missing")
}

func TestAttackResNetStyleGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("full-graph attack")
	}
	arch := models.ResNet18(16)
	cfg := DefaultConfig()
	cfg.Probe.Trials = 6
	res, bind := attackVictim(t, arch, 0.6, cfg)
	_ = bind

	// Kinds: adds and the global pool must be classified correctly.
	for i, u := range arch.Units {
		node := res.Graph.Nodes[i+1]
		switch u.Kind {
		case models.UnitConv:
			if node.Kind != NodeConv {
				t.Fatalf("unit %d (%s): kind %s", i, u.Name, node.Kind)
			}
		case models.UnitAdd:
			if node.Kind != NodeAdd {
				t.Fatalf("unit %d (%s): kind %s", i, u.Name, node.Kind)
			}
		case models.UnitAvgPool:
			if node.Kind != NodePool {
				t.Fatalf("unit %d (%s): kind %s", i, u.Name, node.Kind)
			}
		case models.UnitLinear:
			if node.Kind != NodeLinear {
				t.Fatalf("unit %d (%s): kind %s", i, u.Name, node.Kind)
			}
		}
	}

	// Geometry recovery across all 20 convs (17 main + 3 shortcuts).
	// Kernels and pooling must be exact everywhere. Stride *placement*
	// within the deepest blocks (4×4/8×8 maps) is a documented blind spot:
	// once every probe grid is pairwise distinct, (s2,s1) and (s1,s2)
	// orderings inside a residual block predict identical partitions and
	// identical block output dims, so they are observationally equivalent.
	// We therefore require exact strides on all but the deepest two stages
	// and dimension-equivalence everywhere.
	strideMiss := 0
	for i, u := range arch.Units {
		if u.Kind != models.UnitConv {
			continue
		}
		got := res.Probe.Geoms[i+1]
		if got.Kernel != u.Kernel || got.Pool != u.Pool {
			t.Fatalf("unit %d (%s): recovered %+v, true k=%d s=%d p=%d", i, u.Name, got, u.Kernel, u.Stride, u.Pool)
		}
		if got.Stride != u.Stride {
			strideMiss++
			t.Logf("stride swap at unit %d (%s): recovered s=%d, true s=%d", i, u.Name, got.Stride, u.Stride)
		}
	}
	if strideMiss > 4 {
		t.Fatalf("%d stride misses; only deep-block swaps are acceptable", strideMiss)
	}
	// Dimension equivalence at block boundaries: stride swaps move where
	// the downsampling happens inside a block but must preserve every
	// residual join and pooling input (checked by the solver); verify
	// against ground truth.
	shapes, err := arch.Shapes()
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range arch.Units {
		if u.Kind != models.UnitAdd && u.Kind != models.UnitAvgPool {
			continue
		}
		if got := res.Dims.OutH[i+1]; got != shapes[i].H {
			t.Fatalf("unit %d (%s): recovered outH %d, true %d", i, u.Name, got, shapes[i].H)
		}
	}

	// Global pool factor.
	for i, u := range arch.Units {
		if u.Kind == models.UnitAvgPool {
			if got := res.Probe.PoolFactors[i+1]; got != u.Pool {
				t.Fatalf("pool factor %d, want %d", got, u.Pool)
			}
		}
	}

	// Timing channel: the measured psum-volume ratio (Δt-derived) must
	// match the true P·Q·K ratio for every conv. Comparing volumes rather
	// than bare k-ratios keeps the check valid at stride-swapped layers.
	truePsumH := map[int]int{}
	kTrue := map[int]int{}
	for i, u := range arch.Units {
		if u.Kind != models.UnitConv {
			continue
		}
		inH := 32
		if u.In[0] != models.InputID {
			inH = shapes[u.In[0]].H
		}
		pad := (u.Kernel - 1) / 2
		truePsumH[i+1] = (inH+2*pad-u.Kernel)/u.Stride + 1
		kTrue[i+1] = u.OutC
	}
	ref := res.Timing.RefNode
	for node, k := range kTrue {
		wantVol := float64(k*truePsumH[node]*truePsumH[node]) / float64(kTrue[ref]*truePsumH[ref]*truePsumH[ref])
		p := res.Dims.PsumH[node]
		pr := res.Dims.PsumH[ref]
		gotVol := res.Timing.KRatio[node] * float64(p*p) / float64(pr*pr)
		if math.Abs(gotVol-wantVol)/wantVol > 0.2 {
			t.Fatalf("node %d psum volume ratio %.3f, want %.3f", node, gotVol, wantVol)
		}
	}
}

// TestTrialEscalationResolvesAlias reproduces §5.4's probability
// amplification: at a harder pruning level, few trials leave the conv3+pool2
// layer's pattern partially observed, which the conv3+stride2 alias matches
// exactly; enough independent trials reveal the missing distinction and flip
// the solve to the true geometry.
func TestTrialEscalationResolvesAlias(t *testing.T) {
	if testing.Short() {
		t.Skip("long amplification experiment")
	}
	arch := models.SmallCNN()
	m, _ := deployVictim(t, arch, 0.5)
	rng := rand.New(rand.NewSource(4242))
	img := tensor.New(1, 3, 32, 32)
	img.Uniform(rng, 0.05, 0.95)
	tr, err := m.Run(img)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := trace.Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(segs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultProbeConfig()
	cfg.Trials = 128
	data, err := Collect(m, g, 3, 32, 32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	final, err := data.Solve(128)
	if err != nil {
		t.Fatal(err)
	}
	want := Geom{Kernel: 3, Stride: 1, Pool: 2}
	if final.Geoms[2] != want {
		t.Fatalf("node 2 at T=128: %+v, want %+v", final.Geoms[2], want)
	}
	// With few trials the solve may land on the alias; by T=128 it must
	// have converged, and convergence must be monotone-stable afterwards.
	prev, err := data.Solve(64)
	if err == nil && SameGeometry(prev, final) {
		t.Log("geometry already converged by T=64")
	}
}

func TestObservabilityRate(t *testing.T) {
	arch := models.SmallCNN()
	res, _ := attackVictim(t, arch, 0.5, DefaultConfig())
	rate := ObservabilityRate(res.Data, res.Probe)
	// The paper reports ~77% for single random probes; anything clearly
	// above chance confirms the channel works. Our pruned random-weight
	// victims are usually near 100%.
	if rate < 0.5 {
		t.Fatalf("observability rate %.2f too low", rate)
	}
	if rate > 1 {
		t.Fatalf("rate %.2f out of range", rate)
	}
}

func TestSampleSolutions(t *testing.T) {
	arch := models.SmallCNN()
	res, _ := attackVictim(t, arch, 0.5, DefaultConfig())
	rng := rand.New(rand.NewSource(9))
	n := 3
	if len(res.Space.Solutions) < n {
		n = len(res.Space.Solutions)
	}
	got := SampleSolutions(res.Space, n, rng)
	if len(got) != n {
		t.Fatalf("sampled %d, want %d", len(got), n)
	}
	seen := map[int]bool{}
	for _, s := range got {
		if seen[s.K1] {
			t.Fatal("duplicate sample")
		}
		seen[s.K1] = true
	}
	all := SampleSolutions(res.Space, 10000, rng)
	if len(all) != len(res.Space.Solutions) {
		t.Fatal("oversampling should return everything")
	}
}

func TestDefenceBreaksNaiveProber(t *testing.T) {
	if raceEnabled {
		t.Skip("full attack campaign; the race-instrumented simulator is an order of magnitude slower")
	}
	arch := models.SmallCNN()
	rng := rand.New(rand.NewSource(55))
	bind, err := arch.Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := accel.DefaultConfig()
	cfg.ZeroPadProb = 0.02 // §9.2: randomly leave zeros uncompressed
	m := accel.NewMachine(cfg, arch, bind)
	_, err = Attack(m, DefaultConfig())
	if err == nil {
		t.Fatal("attack should fail against the randomized-padding defence")
	}
}

func TestNoiseTolerantProberDefeatsWeakDefence(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated-trials experiment")
	}
	arch := models.SmallCNN()
	rng := rand.New(rand.NewSource(56))
	bind, err := arch.Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	acfg := accel.DefaultConfig()
	acfg.ZeroPadProb = 0.0005 // a weak deployment of the defence
	m := accel.NewMachine(acfg, arch, bind)
	cfg := DefaultConfig()
	cfg.Probe.NoiseTolerant = true
	cfg.Probe.Trials = 4
	cfg.Probe.NoiseRepeats = 25
	res, err := Attack(m, cfg)
	if err != nil {
		t.Fatalf("noise-tolerant attack failed: %v", err)
	}
	if res.Probe.Geoms[1].Kernel != 5 {
		t.Fatalf("first-layer kernel %d, want 5", res.Probe.Geoms[1].Kernel)
	}
}

func TestBuildGraphErrors(t *testing.T) {
	if _, err := BuildGraph(nil); err == nil {
		t.Fatal("expected error for empty obs")
	}
	// Segment 0 that reads data is not an input DMA.
	bad := []trace.SegmentObs{{Index: 0, InputBytes: 4}, {Index: 1, WeightBytes: 2}}
	if _, err := BuildGraph(bad); err == nil {
		t.Fatal("expected error for non-DMA segment 0")
	}
	// Weightless, dep-less middle segment is unclassifiable.
	bad2 := []trace.SegmentObs{{Index: 0}, {Index: 1}, {Index: 2, WeightBytes: 1}}
	if _, err := BuildGraph(bad2); err == nil {
		t.Fatal("expected error for unclassifiable segment")
	}
}

func TestWeightNNZInversion(t *testing.T) {
	cfg := DefaultFinalizeConfig()
	// 12 bits per entry: 100 entries = 150 bytes.
	if got := cfg.WeightNNZ(150); got != 100 {
		t.Fatalf("WeightNNZ = %d, want 100", got)
	}
}

func TestNodeKindString(t *testing.T) {
	for k, want := range map[NodeKind]string{NodeInput: "input", NodeConv: "conv", NodeAdd: "add", NodePool: "pool", NodeLinear: "linear"} {
		if k.String() != want {
			t.Fatalf("%v", k)
		}
	}
}
