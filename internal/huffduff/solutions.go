package huffduff

import (
	"fmt"
	"math"

	"github.com/huffduff/huffduff/internal/models"
)

// FinalizeConfig controls solution-space construction (§8.2).
type FinalizeConfig struct {
	// MaxFirstLayerSparsity is the empirical bound on first-layer weight
	// sparsity (the paper observes it rarely exceeds 60%).
	MaxFirstLayerSparsity float64
	// WeightIdxBits/WeightElemBytes describe the accelerator's weight
	// compression format so observed byte counts invert to nonzero counts.
	WeightIdxBits, WeightElemBytes int
	// Classes is the task's output count (known to the attacker).
	Classes int
	// InC/InH/InW describe the input tensor (the attacker crafts it).
	InC, InH, InW int
}

// DefaultFinalizeConfig matches the evaluation setup.
func DefaultFinalizeConfig() FinalizeConfig {
	return FinalizeConfig{
		MaxFirstLayerSparsity: 0.6,
		WeightIdxBits:         4,
		WeightElemBytes:       1,
		Classes:               10,
		InC:                   3,
		InH:                   32,
		InW:                   32,
	}
}

// WeightNNZ inverts the weight codec's size model: an EIE-style format
// spends IdxBits+8·ElemBytes bits per stored entry, so the entry count —
// a close upper bound on the true nonzero count (padding entries are rare)
// — follows directly from the observed byte volume.
func (cfg FinalizeConfig) WeightNNZ(bytes int) int {
	bitsPer := cfg.WeightIdxBits + 8*cfg.WeightElemBytes
	return bytes * 8 / bitsPer
}

// Solution is one candidate architecture.
type Solution struct {
	// K1 is the first conv layer's output channel count this candidate
	// assumes; all other channel counts follow from the timing ratios.
	K1 int
	// Arch is the reconstructed architecture, buildable and trainable.
	Arch *models.Arch
	// Density maps arch unit index → recovered weight density (1−β), the
	// iso-footprint pruning target for retraining.
	Density map[int]float64
}

// SolutionSpace is the finalized search space: one candidate per admissible
// first-layer channel count (the paper's "44 and 66 solutions").
type SolutionSpace struct {
	K1Min, K1Max int
	Solutions    []Solution
	// GeomAmbiguity is the product of per-layer pattern-tie candidate
	// counts — an *upper bound* on how many alternative geometries would
	// also be worth testing if the solver's consistency filters and priors
	// were distrusted. It is a diagnostic, not part of Count: most tied
	// peers die to global consistency, and the paper's solution counts
	// likewise cover only channel ambiguity.
	GeomAmbiguity int
}

// Count returns the number of candidate architectures (one per admissible
// first-layer channel count, matching the paper's accounting).
func (s *SolutionSpace) Count() int { return len(s.Solutions) }

// Finalize combines the prober's geometry, the timing channel's k-ratios,
// and the first-layer sparsity bound into the final solution space.
func Finalize(g *ObsGraph, pr *ProbeResult, dims *SpatialDims, tm *TimingResult, cfg FinalizeConfig) (*SolutionSpace, error) {
	convs := g.ConvNodes()
	if len(convs) == 0 {
		return nil, fmt.Errorf("huffduff: nothing to finalize")
	}
	first := tm.RefNode
	geom1 := pr.Geoms[first]
	nnz1 := cfg.WeightNNZ(g.Nodes[first].WeightBytes)
	denom := geom1.Kernel * geom1.Kernel * cfg.InC
	k1min := (nnz1 + denom - 1) / denom
	if k1min < 1 {
		k1min = 1
	}
	k1max := int(float64(nnz1) / ((1 - cfg.MaxFirstLayerSparsity) * float64(denom)))
	if k1max < k1min {
		return nil, fmt.Errorf("huffduff: empty first-layer channel range [%d,%d]", k1min, k1max)
	}

	space := &SolutionSpace{K1Min: k1min, K1Max: k1max, GeomAmbiguity: 1}
	const ambiguityCap = 1 << 30
	for _, id := range convs {
		if n := len(pr.Candidates[id]); n > 1 && space.GeomAmbiguity < ambiguityCap {
			space.GeomAmbiguity *= n
		}
	}

	for k1 := k1min; k1 <= k1max; k1++ {
		sol, err := buildSolution(g, pr, tm, cfg, k1)
		if err != nil {
			// A k1 that produces an inconsistent architecture (e.g. branch
			// channel mismatch after rounding) is not a solution.
			continue
		}
		space.Solutions = append(space.Solutions, *sol)
	}
	if len(space.Solutions) == 0 {
		return nil, fmt.Errorf("huffduff: no consistent candidate architectures in k1 range [%d,%d]", k1min, k1max)
	}
	return space, nil
}

// buildSolution reconstructs a full architecture for one k1 candidate.
func buildSolution(g *ObsGraph, pr *ProbeResult, tm *TimingResult, cfg FinalizeConfig, k1 int) (*Solution, error) {
	// Channel counts per node.
	chans := map[int]int{0: cfg.InC}
	for _, n := range g.Nodes {
		switch n.Kind {
		case NodeConv:
			k := int(math.Round(float64(k1) * tm.KRatio[n.ID]))
			if k < 1 {
				k = 1
			}
			chans[n.ID] = k
		case NodeAdd:
			a, b := chans[n.Deps[0]], chans[n.Deps[1]]
			if a != b {
				return nil, fmt.Errorf("huffduff: k1=%d: add node %d branches disagree (%d vs %d)", k1, n.ID, a, b)
			}
			chans[n.ID] = a
		case NodePool:
			chans[n.ID] = chans[n.Deps[0]]
		case NodeLinear:
			chans[n.ID] = cfg.Classes
		}
	}

	arch := &models.Arch{
		Name:       fmt.Sprintf("huffduff-candidate-k1=%d", k1),
		InC:        cfg.InC,
		InH:        cfg.InH,
		InW:        cfg.InW,
		NumClasses: cfg.Classes,
	}
	density := map[int]float64{}
	toUnit := func(node int) int { return node - 1 } // node 0 is the input
	for _, n := range g.Nodes[1:] {
		ins := make([]int, len(n.Deps))
		for i, d := range n.Deps {
			ins[i] = toUnit(d)
			if d == 0 {
				ins[i] = models.InputID
			}
		}
		switch n.Kind {
		case NodeConv:
			geom := pr.Geoms[n.ID]
			u := models.Unit{
				Kind: models.UnitConv, Name: fmt.Sprintf("rec%d", n.ID), In: ins[:1],
				OutC: chans[n.ID], Kernel: geom.Kernel, Stride: geom.Stride, Pool: geom.Pool,
				BN: true, ReLU: true,
			}
			arch.Units = append(arch.Units, u)
			inC := chans[n.Deps[0]]
			total := chans[n.ID] * inC * geom.Kernel * geom.Kernel
			d := float64(cfg.WeightNNZ(n.WeightBytes)) / float64(total)
			if d > 1 {
				d = 1
			}
			density[len(arch.Units)-1] = d
		case NodeAdd:
			arch.Units = append(arch.Units, models.Unit{
				Kind: models.UnitAdd, Name: fmt.Sprintf("rec%d", n.ID), In: ins, ReLU: true,
			})
		case NodePool:
			arch.Units = append(arch.Units, models.Unit{
				Kind: models.UnitAvgPool, Name: fmt.Sprintf("rec%d", n.ID), In: ins[:1], Pool: pr.PoolFactors[n.ID],
			})
		case NodeLinear:
			arch.Units = append(arch.Units, models.Unit{
				Kind: models.UnitLinear, Name: fmt.Sprintf("rec%d", n.ID), In: ins[:1], OutC: cfg.Classes,
			})
		}
	}
	return &Solution{K1: k1, Arch: arch, Density: density}, nil
}
