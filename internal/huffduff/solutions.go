package huffduff

import (
	"fmt"
	"math"

	"github.com/huffduff/huffduff/internal/faults"
	"github.com/huffduff/huffduff/internal/models"
)

// FinalizeConfig controls solution-space construction (§8.2).
type FinalizeConfig struct {
	// MaxFirstLayerSparsity is the empirical bound on first-layer weight
	// sparsity (the paper observes it rarely exceeds 60%).
	MaxFirstLayerSparsity float64
	// WeightIdxBits/WeightElemBytes describe the accelerator's weight
	// compression format so observed byte counts invert to nonzero counts.
	WeightIdxBits, WeightElemBytes int
	// Classes is the task's output count (known to the attacker).
	Classes int
	// InC/InH/InW describe the input tensor (the attacker crafts it).
	InC, InH, InW int
}

// DefaultFinalizeConfig matches the evaluation setup.
func DefaultFinalizeConfig() FinalizeConfig {
	return FinalizeConfig{
		MaxFirstLayerSparsity: 0.6,
		WeightIdxBits:         4,
		WeightElemBytes:       1,
		Classes:               10,
		InC:                   3,
		InH:                   32,
		InW:                   32,
	}
}

// Validate rejects finalization parameters that would divide by zero or
// build nonsensical architectures downstream. Errors wrap faults.ErrBadConfig.
func (cfg FinalizeConfig) Validate() error {
	bad := func(format string, args ...any) error {
		args = append(args, faults.ErrBadConfig)
		return fmt.Errorf("huffduff: "+format+": %w", args...)
	}
	if cfg.MaxFirstLayerSparsity < 0 || cfg.MaxFirstLayerSparsity >= 1 {
		return bad("MaxFirstLayerSparsity = %g, need [0, 1)", cfg.MaxFirstLayerSparsity)
	}
	if cfg.WeightIdxBits < 0 || cfg.WeightElemBytes < 1 {
		return bad("weight codec: %d index bits, %d element bytes", cfg.WeightIdxBits, cfg.WeightElemBytes)
	}
	if cfg.Classes < 1 {
		return bad("Classes = %d, need at least 1 output", cfg.Classes)
	}
	if cfg.InC < 1 || cfg.InH < 1 || cfg.InW < 1 {
		return bad("input tensor %d×%d×%d has an empty dimension", cfg.InC, cfg.InH, cfg.InW)
	}
	return nil
}

// k1SparseRange derives the admissible first-layer channel range from the
// first conv's weight footprint and the empirical first-layer sparsity bound
// (§8.2): nnz = K·k²·C·density with density ∈ [1−MaxFirstLayerSparsity, 1].
// This bound needs no timing information, so both the solver's consistency
// filters and the degraded finalizer share it.
func (cfg FinalizeConfig) k1SparseRange(geom Geom, weightBytes int) (k1min, k1max int, ok bool) {
	nnz := cfg.WeightNNZ(weightBytes)
	denom := geom.Kernel * geom.Kernel * cfg.InC
	k1min = (nnz + denom - 1) / denom
	if k1min < 1 {
		k1min = 1
	}
	k1max = int(float64(nnz) / ((1 - cfg.MaxFirstLayerSparsity) * float64(denom)))
	return k1min, k1max, k1max >= k1min
}

// WeightNNZ inverts the weight codec's size model: an EIE-style format
// spends IdxBits+8·ElemBytes bits per stored entry, so the entry count —
// a close upper bound on the true nonzero count (padding entries are rare)
// — follows directly from the observed byte volume.
func (cfg FinalizeConfig) WeightNNZ(bytes int) int {
	bitsPer := cfg.WeightIdxBits + 8*cfg.WeightElemBytes
	return bytes * 8 / bitsPer
}

// Solution is one candidate architecture.
type Solution struct {
	// K1 is the first conv layer's output channel count this candidate
	// assumes; all other channel counts follow from the timing ratios.
	K1 int
	// Arch is the reconstructed architecture, buildable and trainable.
	Arch *models.Arch
	// Density maps arch unit index → recovered weight density (1−β), the
	// iso-footprint pruning target for retraining.
	Density map[int]float64
}

// SolutionSpace is the finalized search space: one candidate per admissible
// first-layer channel count (the paper's "44 and 66 solutions").
type SolutionSpace struct {
	K1Min, K1Max int
	Solutions    []Solution
	// GeomAmbiguity is the product of per-layer pattern-tie candidate
	// counts — an *upper bound* on how many alternative geometries would
	// also be worth testing if the solver's consistency filters and priors
	// were distrusted. It is a diagnostic, not part of Count: most tied
	// peers die to global consistency, and the paper's solution counts
	// likewise cover only channel ambiguity.
	GeomAmbiguity int
	// Degraded marks a space built without the timing channel: when the
	// encoding-interval measurements are too noisy to trust, the attack
	// falls back to the hard constraints alone (transfer-header element
	// bounds, the first-layer sparse weight bound, residual equal-channel
	// joins). The space is wider but still contains the true architecture.
	Degraded bool
	// KBounds maps each conv node to its admissible [min, max] channel
	// interval in a Degraded space; empty for exact spaces.
	KBounds map[int][2]int
	// Partial marks a space built from a budget-aborted solve
	// (FinalizePartial): only the prefix of conv nodes whose geometry was
	// pinned before the sym watchdog fired carry KBounds entries; the rest
	// are unconstrained. Partial spaces are always Degraded.
	Partial bool
}

// Count returns the number of candidate architectures (one per admissible
// first-layer channel count, matching the paper's accounting).
func (s *SolutionSpace) Count() int { return len(s.Solutions) }

// Admits reports whether a per-conv-node channel assignment lies inside the
// space. Degraded spaces check the assignment against the KBounds intervals;
// exact spaces check it against the enumerated solutions' channel counts.
// Conv nodes absent from the assignment are unconstrained.
func (s *SolutionSpace) Admits(chans map[int]int) bool {
	if s.Degraded {
		for id, k := range chans {
			if b, ok := s.KBounds[id]; ok && (k < b[0] || k > b[1]) {
				return false
			}
		}
		return true
	}
	for _, sol := range s.Solutions {
		match := true
		for id, k := range chans {
			u := id - 1 // node 0 is the input; unit i reconstructs node i+1
			if u < 0 || u >= len(sol.Arch.Units) {
				continue
			}
			if unit := sol.Arch.Units[u]; unit.Kind == models.UnitConv && unit.OutC != k {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// Finalize combines the prober's geometry, the timing channel's k-ratios,
// and the first-layer sparsity bound into the final solution space.
func Finalize(g *ObsGraph, pr *ProbeResult, dims *SpatialDims, tm *TimingResult, cfg FinalizeConfig) (*SolutionSpace, error) {
	convs := g.ConvNodes()
	if len(convs) == 0 {
		return nil, fmt.Errorf("huffduff: nothing to finalize")
	}
	first := tm.RefNode
	k1min, k1max, ok := cfg.k1SparseRange(pr.Geoms[first], g.Nodes[first].WeightBytes)
	if !ok {
		return nil, fmt.Errorf("huffduff: empty first-layer channel range [%d,%d]", k1min, k1max)
	}

	space := &SolutionSpace{K1Min: k1min, K1Max: k1max, GeomAmbiguity: geomAmbiguity(convs, pr)}

	for k1 := k1min; k1 <= k1max; k1++ {
		sol, err := buildSolution(g, pr, tm, cfg, k1)
		if err != nil {
			// A k1 that produces an inconsistent architecture (e.g. branch
			// channel mismatch after rounding) is not a solution.
			continue
		}
		space.Solutions = append(space.Solutions, *sol)
	}
	if len(space.Solutions) == 0 {
		return nil, fmt.Errorf("huffduff: no consistent candidate architectures in k1 range [%d,%d]", k1min, k1max)
	}
	return space, nil
}

// geomAmbiguity is the capped product of per-layer pattern-tie counts.
func geomAmbiguity(convs []int, pr *ProbeResult) int {
	const ambiguityCap = 1 << 30
	amb := 1
	for _, id := range convs {
		if n := len(pr.Candidates[id]); n > 1 && amb < ambiguityCap {
			amb *= n
		}
	}
	return amb
}

// buildSolution reconstructs a full architecture for one k1 candidate by
// scaling the timing channel's K ratios.
func buildSolution(g *ObsGraph, pr *ProbeResult, tm *TimingResult, cfg FinalizeConfig, k1 int) (*Solution, error) {
	// Channel counts per node.
	chans := map[int]int{0: cfg.InC}
	for _, n := range g.Nodes {
		switch n.Kind {
		case NodeConv:
			k := int(math.Round(float64(k1) * tm.KRatio[n.ID]))
			if k < 1 {
				k = 1
			}
			chans[n.ID] = k
		case NodeAdd:
			a, b := chans[n.Deps[0]], chans[n.Deps[1]]
			if a != b {
				return nil, fmt.Errorf("huffduff: k1=%d: add node %d branches disagree (%d vs %d)", k1, n.ID, a, b)
			}
			chans[n.ID] = a
		case NodePool:
			chans[n.ID] = chans[n.Deps[0]]
		case NodeLinear:
			chans[n.ID] = cfg.Classes
		}
	}
	return assembleSolution(g, pr, cfg, chans, k1)
}

// assembleSolution turns a per-node channel assignment into a buildable,
// trainable architecture plus per-unit density targets.
func assembleSolution(g *ObsGraph, pr *ProbeResult, cfg FinalizeConfig, chans map[int]int, k1 int) (*Solution, error) {
	arch := &models.Arch{
		Name:       fmt.Sprintf("huffduff-candidate-k1=%d", k1),
		InC:        cfg.InC,
		InH:        cfg.InH,
		InW:        cfg.InW,
		NumClasses: cfg.Classes,
	}
	density := map[int]float64{}
	toUnit := func(node int) int { return node - 1 } // node 0 is the input
	for _, n := range g.Nodes[1:] {
		ins := make([]int, len(n.Deps))
		for i, d := range n.Deps {
			ins[i] = toUnit(d)
			if d == 0 {
				ins[i] = models.InputID
			}
		}
		switch n.Kind {
		case NodeConv:
			geom := pr.Geoms[n.ID]
			u := models.Unit{
				Kind: models.UnitConv, Name: fmt.Sprintf("rec%d", n.ID), In: ins[:1],
				OutC: chans[n.ID], Kernel: geom.Kernel, Stride: geom.Stride, Pool: geom.Pool,
				BN: true, ReLU: true,
			}
			arch.Units = append(arch.Units, u)
			inC := chans[n.Deps[0]]
			total := chans[n.ID] * inC * geom.Kernel * geom.Kernel
			d := float64(cfg.WeightNNZ(n.WeightBytes)) / float64(total)
			if d > 1 {
				d = 1
			}
			density[len(arch.Units)-1] = d
		case NodeAdd:
			arch.Units = append(arch.Units, models.Unit{
				Kind: models.UnitAdd, Name: fmt.Sprintf("rec%d", n.ID), In: ins, ReLU: true,
			})
		case NodePool:
			arch.Units = append(arch.Units, models.Unit{
				Kind: models.UnitAvgPool, Name: fmt.Sprintf("rec%d", n.ID), In: ins[:1], Pool: pr.PoolFactors[n.ID],
			})
		case NodeLinear:
			arch.Units = append(arch.Units, models.Unit{
				Kind: models.UnitLinear, Name: fmt.Sprintf("rec%d", n.ID), In: ins[:1], OutC: cfg.Classes,
			})
		}
	}
	return &Solution{K1: k1, Arch: arch, Density: density}, nil
}

// intersect returns the overlap of two closed intervals.
func intersect(a, b [2]int) ([2]int, bool) {
	lo, hi := a[0], a[1]
	if b[0] > lo {
		lo = b[0]
	}
	if b[1] < hi {
		hi = b[1]
	}
	return [2]int{lo, hi}, lo <= hi
}

// FinalizeDegraded builds the graceful-degradation solution space: when the
// timing channel is unusable (jitter too wide, no samples), the attacker
// still holds hard constraints that need no Δt measurements —
//
//   - each conv's output transfer volume bounds its element count: with
//     bytes = ceil(n/8) + nnz and nnz ∈ [0, n], n ∈ [8·bytes/9, 8·bytes],
//     so K ∈ [ceil(8·bytes/(9·oh²)), floor(8·bytes/oh²)];
//   - the first layer's sparse weight bound (§8.2) holds regardless;
//   - residual adds force their branch convs to equal channel counts, so
//     joined convs share the intersection of their intervals.
//
// The space is flagged Degraded and carries the per-conv KBounds; its
// Solutions enumerate the first layer's interval (midpoints elsewhere) so
// downstream retraining tooling keeps working unchanged. Wider than the
// timing-informed space, but guaranteed to contain the true architecture.
func FinalizeDegraded(g *ObsGraph, pr *ProbeResult, dims *SpatialDims, cfg FinalizeConfig) (*SolutionSpace, error) {
	convs := g.ConvNodes()
	if len(convs) == 0 {
		return nil, fmt.Errorf("huffduff: nothing to finalize")
	}
	bounds := map[int][2]int{}
	for _, id := range convs {
		oh := dims.OutH[id]
		if oh <= 0 {
			return nil, fmt.Errorf("huffduff: conv node %d has no output dims", id)
		}
		area := oh * oh
		b := g.Nodes[id].OutputBytes
		lo := (8*b + 9*area - 1) / (9 * area)
		hi := 8 * b / area
		if lo < 1 {
			lo = 1
		}
		if hi < lo {
			return nil, fmt.Errorf("huffduff: conv node %d has empty channel interval [%d,%d]", id, lo, hi)
		}
		bounds[id] = [2]int{lo, hi}
	}
	first := convs[0]
	if k1lo, k1hi, ok := cfg.k1SparseRange(pr.Geoms[first], g.Nodes[first].WeightBytes); ok {
		iv, ok := intersect(bounds[first], [2]int{k1lo, k1hi})
		if !ok {
			return nil, fmt.Errorf("huffduff: first conv sparse bound [%d,%d] excludes transfer bound [%d,%d]",
				k1lo, k1hi, bounds[first][0], bounds[first][1])
		}
		bounds[first] = iv
	}

	// Trace each node's channel count back to its source conv; residual adds
	// join two sources, forcing their intervals to agree.
	uf := newUnionFind(len(g.Nodes))
	src := map[int]int{}
	for _, n := range g.Nodes {
		switch n.Kind {
		case NodeConv:
			src[n.ID] = n.ID
		case NodeAdd:
			a, okA := src[n.Deps[0]]
			b, okB := src[n.Deps[1]]
			if okA && okB {
				uf.union(a, b)
			}
			if okA {
				src[n.ID] = a
			} else if okB {
				src[n.ID] = b
			}
		case NodePool:
			if s, ok := src[n.Deps[0]]; ok {
				src[n.ID] = s
			}
		}
	}
	group := map[int][2]int{}
	for _, id := range convs {
		r := uf.find(id)
		if prev, ok := group[r]; ok {
			iv, ok := intersect(prev, bounds[id])
			if !ok {
				return nil, fmt.Errorf("huffduff: residual join leaves conv node %d with an empty channel interval", id)
			}
			group[r] = iv
		} else {
			group[r] = bounds[id]
		}
	}
	for _, id := range convs {
		bounds[id] = group[uf.find(id)]
	}

	space := &SolutionSpace{
		K1Min: bounds[first][0], K1Max: bounds[first][1],
		GeomAmbiguity: geomAmbiguity(convs, pr),
		Degraded:      true,
		KBounds:       bounds,
	}
	firstRoot := uf.find(first)
	for k1 := bounds[first][0]; k1 <= bounds[first][1]; k1++ {
		chans := map[int]int{0: cfg.InC}
		for _, n := range g.Nodes {
			switch n.Kind {
			case NodeConv:
				if uf.find(n.ID) == firstRoot {
					chans[n.ID] = k1
				} else {
					b := bounds[n.ID]
					chans[n.ID] = (b[0] + b[1]) / 2
				}
			case NodeAdd, NodePool:
				chans[n.ID] = chans[n.Deps[0]]
			case NodeLinear:
				chans[n.ID] = cfg.Classes
			}
		}
		sol, err := assembleSolution(g, pr, cfg, chans, k1)
		if err != nil {
			continue
		}
		space.Solutions = append(space.Solutions, *sol)
	}
	if len(space.Solutions) == 0 {
		return nil, fmt.Errorf("huffduff: degraded finalization produced no candidates in [%d,%d]",
			bounds[first][0], bounds[first][1])
	}
	return space, nil
}

// FinalizePartial salvages a solution space from a budget-aborted solve: the
// sym watchdog fired mid-search, so pr holds geometry only for a prefix of
// the graph. Spatial dims are propagated while geometry is known, each
// pinned conv gets its transfer-header channel interval, and the first conv
// (when pinned) additionally gets the sparse weight bound — the same hard
// constraints as FinalizeDegraded, restricted to the solved prefix. Convs
// past the abort point stay unconstrained (no KBounds entry), which Admits
// treats as "anything goes". The space enumerates no Solutions: a partial
// geometry has no buildable candidates, only bounds. It never fails — zero
// solved layers yield an unconstrained (but well-formed) space, so a
// budgeted campaign always ends with a ledger and a space instead of an OOM.
func FinalizePartial(g *ObsGraph, pr *ProbeResult, cfg FinalizeConfig) *SolutionSpace {
	convs := g.ConvNodes()
	outH := map[int]int{0: cfg.InH}
	bounds := map[int][2]int{}
	for _, n := range g.Nodes {
		switch n.Kind {
		case NodeConv:
			geom, ok := pr.Geoms[n.ID]
			if !ok {
				continue // abort point reached: downstream dims unknown
			}
			inH, haveIn := outH[n.Deps[0]]
			if !haveIn {
				continue
			}
			pad := (geom.Kernel - 1) / 2
			p := (inH+2*pad-geom.Kernel)/geom.Stride + 1
			pool := geom.Pool
			if pool < 1 {
				pool = 1
			}
			oh := p / pool
			if oh <= 0 {
				continue
			}
			outH[n.ID] = oh
			area := oh * oh
			b := g.Nodes[n.ID].OutputBytes
			lo := (8*b + 9*area - 1) / (9 * area)
			hi := 8 * b / area
			if lo < 1 {
				lo = 1
			}
			if hi >= lo {
				bounds[n.ID] = [2]int{lo, hi}
			}
		case NodeAdd:
			a, okA := outH[n.Deps[0]]
			if _, okB := outH[n.Deps[1]]; okA && okB {
				outH[n.ID] = a
			}
		case NodePool:
			f, okF := pr.PoolFactors[n.ID]
			if inH, okIn := outH[n.Deps[0]]; okF && okIn && f >= 1 && inH%f == 0 {
				outH[n.ID] = inH / f
			}
		case NodeLinear:
			outH[n.ID] = 1
		}
	}
	space := &SolutionSpace{
		GeomAmbiguity: geomAmbiguity(convs, pr),
		Degraded:      true,
		Partial:       true,
		KBounds:       bounds,
	}
	if len(convs) > 0 {
		first := convs[0]
		if b, okB := bounds[first]; okB {
			if geom, okG := pr.Geoms[first]; okG {
				if k1lo, k1hi, ok := cfg.k1SparseRange(geom, g.Nodes[first].WeightBytes); ok {
					if iv, ok := intersect(b, [2]int{k1lo, k1hi}); ok {
						bounds[first] = iv
					}
				}
			}
			space.K1Min, space.K1Max = bounds[first][0], bounds[first][1]
		}
	}
	return space
}
