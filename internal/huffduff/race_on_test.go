//go:build race

package huffduff

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
