package huffduff

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/huffduff/huffduff/internal/faults"
	"github.com/huffduff/huffduff/internal/obs"
)

// newRNG centralizes seeding so the attack is reproducible end to end.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// SpatialDims propagates the input spatial size through the recovered
// geometry and returns, for each node, the output H (== W, symmetric) and —
// for conv nodes — the pre-pool psum spatial size.
type SpatialDims struct {
	OutH    map[int]int // per node, post-pool spatial size
	PsumH   map[int]int // per conv node, pre-pool spatial size
	PoolFac map[int]int
}

// PropagateDims walks the graph with the prober's recovered geometry.
func PropagateDims(g *ObsGraph, pr *ProbeResult, inH int) (*SpatialDims, error) {
	d := &SpatialDims{OutH: map[int]int{}, PsumH: map[int]int{}}
	d.OutH[0] = inH
	for _, n := range g.Nodes {
		switch n.Kind {
		case NodeInput:
		case NodeConv:
			geom, ok := pr.Geoms[n.ID]
			if !ok {
				return nil, fmt.Errorf("huffduff: no geometry for conv node %d", n.ID)
			}
			x, ok := d.OutH[n.Deps[0]]
			if !ok {
				return nil, fmt.Errorf("huffduff: conv node %d input %d has no dims", n.ID, n.Deps[0])
			}
			pad := (geom.Kernel - 1) / 2
			p := (x+2*pad-geom.Kernel)/geom.Stride + 1
			d.PsumH[n.ID] = p
			d.OutH[n.ID] = p / geom.Pool
		case NodeAdd:
			a, okA := d.OutH[n.Deps[0]]
			b, okB := d.OutH[n.Deps[1]]
			if !okA || !okB || a != b {
				return nil, fmt.Errorf("huffduff: add node %d branch dims %d vs %d", n.ID, a, b)
			}
			d.OutH[n.ID] = a
		case NodePool:
			f, ok := pr.PoolFactors[n.ID]
			if !ok {
				return nil, fmt.Errorf("huffduff: no pool factor for node %d", n.ID)
			}
			d.OutH[n.ID] = d.OutH[n.Deps[0]] / f
		case NodeLinear:
			d.OutH[n.ID] = 1
		}
	}
	return d, nil
}

// TimingResult carries the k-ratio recovery of §7: the encoding interval of
// a GLB-bound layer is proportional to its dense psum count P·Q·K, so with
// P, Q known from the prober, Δt ratios reveal K ratios.
type TimingResult struct {
	// KRatio maps each conv node to K_node / K_ref.
	KRatio map[int]float64
	// RefNode is the conv node ratios are normalized to (the first conv).
	RefNode int
	// Dispersion maps each conv node to the robust relative spread
	// (1.4826·MAD / median) of its per-inference Δt samples. Empty for
	// results built from a single calibration observation.
	Dispersion map[int]float64
	// SampleCount is how many accepted Δt samples backed each node's
	// estimate. Empty for single-observation results.
	SampleCount map[int]int
}

// Record publishes the timing channel's per-node diagnostics — recovered
// K ratios, robust dispersions, and sample counts — as gauges labelled by
// node ID. Safe on a nil result (a failed TimingChannel) and a nil recorder.
func (t *TimingResult) Record(rec obs.Recorder) {
	if t == nil || rec == nil {
		return
	}
	for _, id := range sortedIntKeys(t.KRatio) {
		rec.Gauge("timing.kratio", fmt.Sprintf("node=%d", id), t.KRatio[id])
	}
	for _, id := range sortedIntKeys(t.Dispersion) {
		rec.Gauge("timing.dispersion", fmt.Sprintf("node=%d", id), t.Dispersion[id])
	}
	for _, id := range sortedIntKeys(t.SampleCount) {
		rec.Gauge("timing.samples", fmt.Sprintf("node=%d", id), float64(t.SampleCount[id]))
	}
}

// TimingChannel converts observed encoding intervals into output-channel
// ratios. blockBytes corrects for the unobservable head of the interval:
// the first DRAM write happens after only the psums backing the first block
// were consumed, so Δt covers (1 − block/outBytes) of the layer's encoding
// and the attacker — who knows both byte counts — can rescale.
func TimingChannel(g *ObsGraph, dims *SpatialDims, blockBytes int) (*TimingResult, error) {
	convs := g.ConvNodes()
	if len(convs) == 0 {
		return nil, fmt.Errorf("huffduff: no conv nodes")
	}
	perK := map[int]float64{} // Δt per psum-spatial-element == time·rate ∝ K
	for _, id := range convs {
		n := g.Nodes[id]
		p := dims.PsumH[id]
		if p <= 0 {
			return nil, fmt.Errorf("huffduff: conv node %d has no psum dims", id)
		}
		dt := n.EncTime
		if blockBytes > 0 && n.OutputBytes > blockBytes {
			dt = dt * float64(n.OutputBytes) / float64(n.OutputBytes-blockBytes)
		}
		perK[id] = dt / float64(p*p)
	}
	ref := convs[0]
	if perK[ref] <= 0 {
		return nil, fmt.Errorf("huffduff: reference conv node %d has zero encoding time", ref)
	}
	res := &TimingResult{KRatio: map[int]float64{}, RefNode: ref}
	for _, id := range convs {
		res.KRatio[id] = perK[id] / perK[ref]
	}
	return res, nil
}

// TimingChannelFromSamples is the noise-resilient variant of TimingChannel:
// instead of trusting one calibration observation per layer, it takes the
// per-inference head-corrected Δt samples accumulated during the probing
// campaign (ProbeData.Enc, already rescaled for the unobservable interval
// head) and estimates each layer's encoding time by the sample median, which
// jitter, duplicated events, and occasional truncations cannot drag far.
//
// The per-node dispersion — 1.4826·MAD/median, a robust analogue of the
// coefficient of variation — is checked against tolerance: if any conv
// layer's samples spread wider than that, the ratios are not trustworthy
// and the function reports faults.ErrTimingUnusable. The partially filled
// TimingResult is still returned alongside the error so callers can degrade
// gracefully (Attack falls back to FinalizeDegraded) and report diagnostics.
func TimingChannelFromSamples(g *ObsGraph, dims *SpatialDims, samples [][]float64, tolerance float64) (*TimingResult, error) {
	convs := g.ConvNodes()
	if len(convs) == 0 {
		return nil, fmt.Errorf("huffduff: no conv nodes")
	}
	if tolerance <= 0 {
		tolerance = 0.25
	}
	res := &TimingResult{
		KRatio:      map[int]float64{},
		Dispersion:  map[int]float64{},
		SampleCount: map[int]int{},
	}
	perK := map[int]float64{}
	var unusable error
	for _, id := range convs {
		p := dims.PsumH[id]
		if p <= 0 {
			return nil, fmt.Errorf("huffduff: conv node %d has no psum dims", id)
		}
		var s []float64
		if id < len(samples) {
			s = samples[id]
		}
		res.SampleCount[id] = len(s)
		if len(s) == 0 {
			unusable = fmt.Errorf("huffduff: conv node %d has no timing samples: %w", id, faults.ErrTimingUnusable)
			continue
		}
		med := median(s)
		if med <= 0 {
			unusable = fmt.Errorf("huffduff: conv node %d has non-positive median encoding time: %w", id, faults.ErrTimingUnusable)
			continue
		}
		dev := make([]float64, len(s))
		for i, v := range s {
			dev[i] = math.Abs(v - med)
		}
		disp := 1.4826 * median(dev) / med
		res.Dispersion[id] = disp
		if disp > tolerance {
			unusable = fmt.Errorf("huffduff: conv node %d timing dispersion %.3f exceeds tolerance %.3f: %w",
				id, disp, tolerance, faults.ErrTimingUnusable)
			continue
		}
		perK[id] = med / float64(p*p)
	}
	if unusable != nil {
		return res, unusable
	}
	ref := convs[0]
	res.RefNode = ref
	if perK[ref] <= 0 {
		return res, fmt.Errorf("huffduff: reference conv node %d has zero encoding time: %w", ref, faults.ErrTimingUnusable)
	}
	for _, id := range convs {
		res.KRatio[id] = perK[id] / perK[ref]
	}
	return res, nil
}

// sortedIntKeys returns the map's keys in ascending order, so per-node
// diagnostics publish in a deterministic sequence.
func sortedIntKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// median returns the middle order statistic without mutating its argument.
func median(s []float64) float64 {
	c := append([]float64(nil), s...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}
