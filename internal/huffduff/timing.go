package huffduff

import (
	"fmt"
	"math/rand"
)

// newRNG centralizes seeding so the attack is reproducible end to end.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// SpatialDims propagates the input spatial size through the recovered
// geometry and returns, for each node, the output H (== W, symmetric) and —
// for conv nodes — the pre-pool psum spatial size.
type SpatialDims struct {
	OutH    map[int]int // per node, post-pool spatial size
	PsumH   map[int]int // per conv node, pre-pool spatial size
	PoolFac map[int]int
}

// PropagateDims walks the graph with the prober's recovered geometry.
func PropagateDims(g *ObsGraph, pr *ProbeResult, inH int) (*SpatialDims, error) {
	d := &SpatialDims{OutH: map[int]int{}, PsumH: map[int]int{}}
	d.OutH[0] = inH
	for _, n := range g.Nodes {
		switch n.Kind {
		case NodeInput:
		case NodeConv:
			geom, ok := pr.Geoms[n.ID]
			if !ok {
				return nil, fmt.Errorf("huffduff: no geometry for conv node %d", n.ID)
			}
			x, ok := d.OutH[n.Deps[0]]
			if !ok {
				return nil, fmt.Errorf("huffduff: conv node %d input %d has no dims", n.ID, n.Deps[0])
			}
			pad := (geom.Kernel - 1) / 2
			p := (x+2*pad-geom.Kernel)/geom.Stride + 1
			d.PsumH[n.ID] = p
			d.OutH[n.ID] = p / geom.Pool
		case NodeAdd:
			a, okA := d.OutH[n.Deps[0]]
			b, okB := d.OutH[n.Deps[1]]
			if !okA || !okB || a != b {
				return nil, fmt.Errorf("huffduff: add node %d branch dims %d vs %d", n.ID, a, b)
			}
			d.OutH[n.ID] = a
		case NodePool:
			f, ok := pr.PoolFactors[n.ID]
			if !ok {
				return nil, fmt.Errorf("huffduff: no pool factor for node %d", n.ID)
			}
			d.OutH[n.ID] = d.OutH[n.Deps[0]] / f
		case NodeLinear:
			d.OutH[n.ID] = 1
		}
	}
	return d, nil
}

// TimingResult carries the k-ratio recovery of §7: the encoding interval of
// a GLB-bound layer is proportional to its dense psum count P·Q·K, so with
// P, Q known from the prober, Δt ratios reveal K ratios.
type TimingResult struct {
	// KRatio maps each conv node to K_node / K_ref.
	KRatio map[int]float64
	// RefNode is the conv node ratios are normalized to (the first conv).
	RefNode int
}

// TimingChannel converts observed encoding intervals into output-channel
// ratios. blockBytes corrects for the unobservable head of the interval:
// the first DRAM write happens after only the psums backing the first block
// were consumed, so Δt covers (1 − block/outBytes) of the layer's encoding
// and the attacker — who knows both byte counts — can rescale.
func TimingChannel(g *ObsGraph, dims *SpatialDims, blockBytes int) (*TimingResult, error) {
	convs := g.ConvNodes()
	if len(convs) == 0 {
		return nil, fmt.Errorf("huffduff: no conv nodes")
	}
	perK := map[int]float64{} // Δt per psum-spatial-element == time·rate ∝ K
	for _, id := range convs {
		n := g.Nodes[id]
		p := dims.PsumH[id]
		if p <= 0 {
			return nil, fmt.Errorf("huffduff: conv node %d has no psum dims", id)
		}
		dt := n.EncTime
		if blockBytes > 0 && n.OutputBytes > blockBytes {
			dt = dt * float64(n.OutputBytes) / float64(n.OutputBytes-blockBytes)
		}
		perK[id] = dt / float64(p*p)
	}
	ref := convs[0]
	if perK[ref] <= 0 {
		return nil, fmt.Errorf("huffduff: reference conv node %d has zero encoding time", ref)
	}
	res := &TimingResult{KRatio: map[int]float64{}, RefNode: ref}
	for _, id := range convs {
		res.KRatio[id] = perK[id] / perK[ref]
	}
	return res, nil
}
