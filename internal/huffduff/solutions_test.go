package huffduff

import (
	"testing"

	"github.com/huffduff/huffduff/internal/models"
)

// residualGraph builds the attacker-view graph of a minimal residual
// network: input → conv1 → conv2 → add(conv2, conv1) → linear.
func residualGraph() *ObsGraph {
	return &ObsGraph{Nodes: []ObsNode{
		{ID: 0, Kind: NodeInput},
		{ID: 1, Kind: NodeConv, Deps: []int{0}, WeightBytes: 324, EncTime: 1},
		{ID: 2, Kind: NodeConv, Deps: []int{1}, WeightBytes: 3456, EncTime: 1},
		{ID: 3, Kind: NodeAdd, Deps: []int{2, 1}},
		{ID: 4, Kind: NodeLinear, Deps: []int{3}, WeightBytes: 10000},
	}}
}

func TestFinalizeBuildsResidualArch(t *testing.T) {
	g := residualGraph()
	pr := &ProbeResult{
		Geoms: map[int]Geom{
			1: {Kernel: 3, Stride: 1, Pool: 1},
			2: {Kernel: 3, Stride: 1, Pool: 1},
		},
		Candidates:  map[int][]Geom{1: {{3, 1, 1}}, 2: {{3, 1, 1}, {5, 2, 1}}},
		PoolFactors: map[int]int{},
	}
	dims := &SpatialDims{PsumH: map[int]int{1: 32, 2: 32}, OutH: map[int]int{}}
	tm := &TimingResult{RefNode: 1, KRatio: map[int]float64{1: 1, 2: 1}}
	cfg := DefaultFinalizeConfig()
	space, err := Finalize(g, pr, dims, tm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if space.K1Min < 1 || space.K1Max < space.K1Min {
		t.Fatalf("bad range [%d,%d]", space.K1Min, space.K1Max)
	}
	if space.GeomAmbiguity != 2 {
		t.Fatalf("GeomAmbiguity = %d, want 2", space.GeomAmbiguity)
	}
	if space.Count() != len(space.Solutions) {
		t.Fatal("Count must equal the candidate list length")
	}
	for _, sol := range space.Solutions {
		a := sol.Arch
		if err := a.Validate(); err != nil {
			t.Fatalf("k1=%d: invalid arch: %v", sol.K1, err)
		}
		if _, err := a.Shapes(); err != nil {
			t.Fatalf("k1=%d: bad shapes: %v", sol.K1, err)
		}
		// Structure: conv, conv, add, linear.
		kinds := []models.UnitKind{models.UnitConv, models.UnitConv, models.UnitAdd, models.UnitLinear}
		if len(a.Units) != len(kinds) {
			t.Fatalf("k1=%d: %d units", sol.K1, len(a.Units))
		}
		for i, k := range kinds {
			if a.Units[i].Kind != k {
				t.Fatalf("k1=%d unit %d kind %v", sol.K1, i, a.Units[i].Kind)
			}
		}
		// The residual add's branches must agree on channels (both convs
		// share the 1.0 ratio).
		if a.Units[0].OutC != a.Units[1].OutC {
			t.Fatalf("k1=%d: branch channels %d vs %d", sol.K1, a.Units[0].OutC, a.Units[1].OutC)
		}
		// Density recovered and within (0, 1].
		for u, d := range sol.Density {
			if d <= 0 || d > 1 {
				t.Fatalf("k1=%d unit %d density %g", sol.K1, u, d)
			}
		}
	}
}

func TestFinalizeSkipsInconsistentK1(t *testing.T) {
	g := residualGraph()
	pr := &ProbeResult{
		Geoms: map[int]Geom{
			1: {Kernel: 3, Stride: 1, Pool: 1},
			2: {Kernel: 3, Stride: 1, Pool: 1},
		},
		PoolFactors: map[int]int{},
	}
	dims := &SpatialDims{PsumH: map[int]int{1: 32, 2: 32}}
	// Branch ratio mismatch: conv2 claims 1.3x the channels of conv1, so
	// the residual add's channel counts disagree for most k1 and those
	// candidates are dropped. (For some k1 the rounding may coincide;
	// requiring at least one drop keeps the test robust.)
	tm := &TimingResult{RefNode: 1, KRatio: map[int]float64{1: 1, 2: 1.3}}
	cfg := DefaultFinalizeConfig()
	space, err := Finalize(g, pr, dims, tm, cfg)
	rangeSize := 0
	if err == nil {
		rangeSize = space.K1Max - space.K1Min + 1
		if len(space.Solutions) >= rangeSize {
			t.Fatalf("no inconsistent k1 was dropped (%d of %d)", len(space.Solutions), rangeSize)
		}
	}
}

func TestFinalizeEmptyRange(t *testing.T) {
	g := residualGraph()
	pr := &ProbeResult{Geoms: map[int]Geom{1: {Kernel: 3, Stride: 1, Pool: 1}, 2: {Kernel: 3, Stride: 1, Pool: 1}}}
	dims := &SpatialDims{PsumH: map[int]int{1: 32, 2: 32}}
	tm := &TimingResult{RefNode: 1, KRatio: map[int]float64{1: 1, 2: 1}}
	cfg := DefaultFinalizeConfig()
	cfg.MaxFirstLayerSparsity = 0.0000001 // k1max collapses below k1min
	g.Nodes[1].WeightBytes = 40           // tiny weights: kmin=1, kmax=0
	if _, err := Finalize(g, pr, dims, tm, cfg); err == nil {
		t.Fatal("expected empty-range error")
	}
}

func TestHypothesesExcludePointwisePooling(t *testing.T) {
	cfg := DefaultProbeConfig()
	for _, h := range cfg.hypotheses() {
		if h.Kernel == 1 && h.Pool > 1 {
			t.Fatalf("hypothesis space contains unobservable %+v", h)
		}
	}
	// Canonical ordering: kernels ascending (the small-kernel prior).
	hs := cfg.hypotheses()
	for i := 1; i < len(hs); i++ {
		if hs[i].Kernel < hs[i-1].Kernel {
			t.Fatal("hypotheses not kernel-ascending")
		}
	}
}

func TestDedupInts(t *testing.T) {
	got := dedupInts([]int{8, 8, 4, 4, 2, 1, 1})
	want := []int{8, 4, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("dedup = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dedup = %v", got)
		}
	}
}
