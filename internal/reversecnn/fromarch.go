package reversecnn

import (
	"fmt"
	"math"

	"github.com/huffduff/huffduff/internal/models"
)

// ArchObs is the per-CONV-layer footprint view of an architecture, used to
// size solution spaces analytically (Table 1) without training or running
// the full-size victim.
type ArchObs struct {
	// Obs holds footprints for every conv unit, in element counts
	// (dense) or nonzero counts (sparse), in arch unit order.
	Obs []LayerObs
	// Xs and Cs are each conv layer's input spatial size and channels.
	Xs, Cs []int
	// Units maps each entry back to its arch unit index.
	Units []int
	// MainChain lists the positions (indices into Obs) of the convs on the
	// input→output main path, the chain ReverseCNN's recursion follows.
	MainChain []int
}

// DensityProfile returns the weight density (1 − sparsity) of conv layer i
// of n. Profiles model unstructured LTH pruning: early layers stay dense,
// deep/wide layers are pruned hardest (§4.2, §8.2).
type DensityProfile func(i, n int) float64

// DenseProfile is the unpruned network (density 1 everywhere).
func DenseProfile(i, n int) float64 { return 1 }

// LTHProfile mimics a 10×-compressed lottery-ticket net: the first layer
// keeps ~45% of weights and density decays geometrically towards ~7% in the
// deepest (and widest, hence weight-dominating) layers, which lands the
// whole network near the paper's 10× overall compression.
func LTHProfile(i, n int) float64 {
	if n <= 1 {
		return 0.45
	}
	f := float64(i) / float64(n-1)
	return 0.45 * math.Pow(0.07/0.45, f)
}

// FromArch derives footprint observations for every conv unit of an
// architecture under the given weight-density profile and a uniform
// post-ReLU activation density.
func FromArch(a *models.Arch, wDensity DensityProfile, actDensity float64) (*ArchObs, error) {
	shapes, err := a.Shapes()
	if err != nil {
		return nil, err
	}
	if actDensity <= 0 || actDensity > 1 {
		return nil, fmt.Errorf("reversecnn: activation density %g out of (0,1]", actDensity)
	}
	convs := a.ConvUnits()
	ao := &ArchObs{}
	inShape := func(id int) models.UnitShape {
		if id == models.InputID {
			return models.UnitShape{C: a.InC, H: a.InH, W: a.InW}
		}
		return shapes[id]
	}
	for li, ui := range convs {
		u := a.Units[ui]
		in := inShape(u.In[0])
		out := shapes[ui]
		weights := u.OutC * in.C * u.Kernel * u.Kernel
		inDensity := actDensity
		if u.In[0] == models.InputID {
			inDensity = 1 // the attacker's input image is dense
		}
		ao.Obs = append(ao.Obs, LayerObs{
			I: int(float64(in.C*in.H*in.W) * inDensity),
			O: int(float64(out.C*out.H*out.W) * actDensity),
			W: int(float64(weights) * wDensity(li, len(convs))),
		})
		ao.Xs = append(ao.Xs, in.H)
		ao.Cs = append(ao.Cs, in.C)
		ao.Units = append(ao.Units, ui)
	}
	// Main chain: walk from the input through units whose first input is
	// the current chain head (adds and pools extend the head; shortcut
	// convs branch off it and are skipped).
	head := models.InputID
	pos := map[int]int{}
	for i, ui := range ao.Units {
		pos[ui] = i
	}
	for ui, u := range a.Units {
		onHead := false
		for _, in := range u.In {
			if in == head {
				onHead = true
			}
		}
		if !onHead {
			continue
		}
		switch u.Kind {
		case models.UnitConv:
			if u.In[0] == head {
				ao.MainChain = append(ao.MainChain, pos[ui])
				head = ui
			}
		case models.UnitAdd, models.UnitAvgPool:
			head = ui
		case models.UnitLinear:
			head = ui
		}
	}
	return ao, nil
}

// ChainObs extracts the main-chain observations in order, for SolveDense.
func (ao *ArchObs) ChainObs() (obs []LayerObs, xs, cs []int) {
	for _, i := range ao.MainChain {
		obs = append(obs, ao.Obs[i])
		xs = append(xs, ao.Xs[i])
		cs = append(cs, ao.Cs[i])
	}
	return obs, xs, cs
}
