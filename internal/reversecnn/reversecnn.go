// Package reversecnn implements the prior attack the paper compares against
// (§3, ReverseCNN, Hua et al. DAC'18): an analytical constraint solver that
// recovers dense CNN geometry from exact DRAM footprints — plus its naïve
// extension to sparse accelerators (§4.2), whose solution space explodes to
// astronomically many candidates (Table 1).
package reversecnn

import (
	"fmt"
	"math/big"
)

// LayerObs is the attacker's per-CONV-layer footprint observation, in
// elements. For a dense accelerator these are exact tensor sizes (Eqs. 1–3);
// for a sparse accelerator they are the nonzero counts, which only lower-
// bound the dimensions (Eqs. 8–10).
type LayerObs struct {
	I int // input activation footprint
	O int // output activation footprint
	W int // weight footprint
}

// Space is the hypothesis space for per-layer geometry, shared with the
// HuffDuff prober for comparability.
type Space struct {
	Kernels []int
	Strides []int
	Pools   []int
}

// DefaultSpace covers the geometries of CNNs for vision (§3.2's symmetric
// assumptions).
func DefaultSpace() Space {
	return Space{Kernels: []int{1, 3, 5, 7}, Strides: []int{1, 2}, Pools: []int{1, 2}}
}

// Geom is one layer's recovered geometry.
type Geom struct {
	R      int // kernel size (r = s)
	Stride int
	Pool   int
	K      int // output channels
}

// outSpatial returns the post-conv spatial size under "same" padding.
func outSpatial(x, r, stride int) int {
	pad := (r - 1) / 2
	return (x+2*pad-r)/stride + 1
}

// layerSolutions enumerates geometries consistent with exact dense
// footprints for one layer with known input spatial size x and channels c.
func layerSolutions(obs LayerObs, x, c int, sp Space) []Geom {
	var out []Geom
	if obs.I != x*x*c {
		// Inconsistent input footprint: no solutions (the caller's branch
		// dies, mirroring the recursive elimination in §3.2).
		return nil
	}
	for _, r := range sp.Kernels {
		if obs.W%(r*r*c) != 0 {
			continue
		}
		k := obs.W / (r * r * c)
		if k < 1 {
			continue
		}
		for _, stride := range sp.Strides {
			p := outSpatial(x, r, stride)
			if p < 1 {
				continue
			}
			for _, pool := range sp.Pools {
				if r == 1 && pool > 1 {
					continue // pooling follows spatial convs (shared prior)
				}
				if p%pool != 0 {
					continue
				}
				po := p / pool
				if po*po*k == obs.O {
					out = append(out, Geom{R: r, Stride: stride, Pool: pool, K: k})
				}
			}
		}
	}
	return out
}

// SolveDense recursively solves the whole network (Eq. 7 propagation):
// layer l+1's input spatial size and channel count follow from each layer-l
// candidate. It returns every full-network solution, up to limit (0 = no
// limit).
func SolveDense(obs []LayerObs, x0, c0 int, sp Space, limit int) ([][]Geom, error) {
	if x0 < 1 || c0 < 1 {
		return nil, fmt.Errorf("reversecnn: invalid input geometry %dx%d", x0, c0)
	}
	var solutions [][]Geom
	var rec func(layer, x, c int, acc []Geom) bool
	rec = func(layer, x, c int, acc []Geom) bool {
		if layer == len(obs) {
			solutions = append(solutions, append([]Geom(nil), acc...))
			return limit > 0 && len(solutions) >= limit
		}
		for _, g := range layerSolutions(obs[layer], x, c, sp) {
			nx := outSpatial(x, g.R, g.Stride) / g.Pool
			if rec(layer+1, nx, g.K, append(acc, g)) {
				return true
			}
		}
		return false
	}
	rec(0, x0, c0, nil)
	return solutions, nil
}

// CountDense returns the number of full-network dense solutions (Table 1's
// dense row).
func CountDense(obs []LayerObs, x0, c0 int, sp Space) (int, error) {
	sols, err := SolveDense(obs, x0, c0, sp, 0)
	if err != nil {
		return 0, err
	}
	return len(sols), nil
}

// SparseCount computes the size of the naïve sparse solution space (§4.2):
// per layer, every geometry hypothesis contributes the number of output-
// channel counts k admitted by Eqs. 10–11,
//
//	W_nnz ≤ r·s·c·k   and   r·s·c·k ≤ W_nnz / (1−α),
//
// and the per-layer counts multiply across the network. alpha is the assumed
// upper bound on weight sparsity (the paper uses α = 0.999 for 10×-pruned
// nets whose sparsest layers approach 99.9%). cs gives each layer's input
// channel count; using the true values makes this a *lower* bound on the
// attacker's actual space, which is the conservative direction for Table 1.
// xs gives each layer's input spatial size.
func SparseCount(obs []LayerObs, xs, cs []int, alpha float64, sp Space) (*big.Int, error) {
	if len(obs) != len(cs) || len(obs) != len(xs) {
		return nil, fmt.Errorf("reversecnn: %d observations, %d channel counts, %d spatial sizes", len(obs), len(cs), len(xs))
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("reversecnn: alpha %g out of (0,1)", alpha)
	}
	total := big.NewInt(1)
	for l, ob := range obs {
		c := cs[l]
		x := xs[l]
		layerCount := big.NewInt(0)
		for _, r := range sp.Kernels {
			denom := r * r * c
			kmin := (ob.W + denom - 1) / denom // ceil(W/(r²c)): Eq. 10
			if kmin < 1 {
				kmin = 1
			}
			kmax := int(float64(ob.W) / (1 - alpha) / float64(denom)) // Eq. 11
			if kmax < kmin {
				continue
			}
			for _, stride := range sp.Strides {
				p := outSpatial(x, r, stride)
				if p < 1 {
					continue
				}
				for _, pool := range sp.Pools {
					if r == 1 && pool > 1 {
						continue
					}
					if p%pool != 0 {
						continue
					}
					po := p / pool
					// Eq. 9 lower-bounds k by the observed output nnz.
					km := kmin
					if need := (ob.O + po*po - 1) / (po * po); need > km {
						km = need
					}
					if kmax >= km {
						layerCount.Add(layerCount, big.NewInt(int64(kmax-km+1)))
					}
				}
			}
		}
		if layerCount.Sign() == 0 {
			return nil, fmt.Errorf("reversecnn: layer %d admits no solutions", l)
		}
		total.Mul(total, layerCount)
	}
	return total, nil
}

// OrdersOfMagnitude returns log10 of a big count, for reporting solution-
// space sizes the way the paper does ("4×10⁹⁶").
func OrdersOfMagnitude(n *big.Int) int {
	return len(n.Text(10)) - 1
}
