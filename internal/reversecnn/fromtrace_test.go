package reversecnn

import (
	"math/rand"
	"testing"

	"github.com/huffduff/huffduff/internal/accel"
	"github.com/huffduff/huffduff/internal/models"
	"github.com/huffduff/huffduff/internal/tensor"
	"github.com/huffduff/huffduff/internal/trace"
)

func runVictim(t *testing.T, cfg accel.Config) *trace.Trace {
	t.Helper()
	arch := models.SmallCNN()
	rng := rand.New(rand.NewSource(17))
	bind, err := arch.Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	m := accel.NewMachine(cfg, arch, bind)
	img := tensor.New(arch.InC, arch.InH, arch.InW)
	img.Uniform(rng, 0, 1)
	tr, err := m.Run(img)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// The prior attack must fully succeed against a dense accelerator: the
// victim's exact geometry appears among a handful of solutions.
func TestAttackTraceDenseAccelerator(t *testing.T) {
	tr := runVictim(t, accel.DenseConfig())
	sols, err := AttackTrace(tr, 32, 3, 1, DefaultSpace(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) == 0 {
		t.Fatal("ReverseCNN found no solutions on a dense accelerator")
	}
	if len(sols) > 32 {
		t.Fatalf("dense solution count %d; expected a handful", len(sols))
	}
	truth := []Geom{
		{R: 5, Stride: 1, Pool: 1, K: 8},
		{R: 3, Stride: 1, Pool: 2, K: 16},
		{R: 3, Stride: 2, Pool: 1, K: 16},
	}
	found := false
	for _, s := range sols {
		ok := len(s) == len(truth)
		for i := range truth {
			if !ok || s[i] != truth[i] {
				ok = false
				break
			}
		}
		if ok {
			found = true
		}
	}
	if !found {
		t.Fatalf("victim geometry not among the %d dense solutions", len(sols))
	}
}

// Against the sparse accelerator the same attack collapses: compressed
// transfers no longer satisfy Eq. 1 and the solver finds nothing — the
// failure mode that motivates HuffDuff (Table 1).
func TestAttackTraceSparseAcceleratorFails(t *testing.T) {
	tr := runVictim(t, accel.DefaultConfig())
	sols, err := AttackTrace(tr, 32, 3, 1, DefaultSpace(), 0)
	if err != nil {
		return // segmentation anomalies also count as failure
	}
	for _, s := range sols {
		if len(s) == 3 && s[0] == (Geom{R: 5, Stride: 1, Pool: 1, K: 8}) {
			t.Fatal("ReverseCNN should not recover the victim from a sparse trace")
		}
	}
}

func TestFromTraceErrors(t *testing.T) {
	if _, err := FromTrace(nil, 0); err == nil {
		t.Fatal("expected element-width error")
	}
	if _, err := FromTrace([]trace.SegmentObs{{}, {}}, 1); err == nil {
		t.Fatal("expected too-few-segments error")
	}
	// Only weightless middle segments -> no conv observations.
	segs := []trace.SegmentObs{{}, {InputBytes: 8, OutputBytes: 8}, {WeightBytes: 4}}
	if _, err := FromTrace(segs, 1); err == nil {
		t.Fatal("expected no-conv-segments error")
	}
}

func TestFromTraceSkipsPoolingSegments(t *testing.T) {
	segs := []trace.SegmentObs{
		{}, // input DMA
		{WeightBytes: 27, InputBytes: 100, OutputBytes: 50}, // conv
		{InputBytes: 50, OutputBytes: 25},                   // pool (no weights)
		{WeightBytes: 10, InputBytes: 25, OutputBytes: 10},  // classifier (skipped as last)
	}
	obs, err := FromTrace(segs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 || obs[0].W != 27 {
		t.Fatalf("obs = %+v", obs)
	}
}
