package reversecnn

import (
	"fmt"

	"github.com/huffduff/huffduff/internal/trace"
)

// FromTrace extracts the per-layer element-count observations ReverseCNN
// needs from a *dense* accelerator's DRAM trace: with uncompressed transfers
// every byte count divides exactly by the element width, recovering tensor
// sizes (Eqs. 1–3). The final weighted segment (the classifier) is skipped,
// as is the attacker's own input DMA.
//
// On a sparse accelerator's trace the same division yields nonzero counts
// rather than tensor sizes, Eq. 1's equality fails, and the solver
// collapses — the Table 1 story, reproducible end to end.
func FromTrace(obs []trace.SegmentObs, elemBytes int) ([]LayerObs, error) {
	if elemBytes < 1 {
		return nil, fmt.Errorf("reversecnn: invalid element width %d", elemBytes)
	}
	if len(obs) < 3 {
		return nil, fmt.Errorf("reversecnn: trace has %d segments; nothing to attack", len(obs))
	}
	var out []LayerObs
	for _, o := range obs[1 : len(obs)-1] {
		if o.WeightBytes == 0 {
			// Pooling or elementwise segments carry no geometry equations
			// of their own in ReverseCNN's formulation.
			continue
		}
		out = append(out, LayerObs{
			I: o.InputBytes / elemBytes,
			O: o.OutputBytes / elemBytes,
			W: o.WeightBytes / elemBytes,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("reversecnn: no conv segments in trace")
	}
	return out, nil
}

// AttackTrace runs the full ReverseCNN pipeline on a captured trace: segment
// the accesses, recover footprints, and solve the constraint system for a
// victim with known input geometry (the attacker crafts the inputs).
func AttackTrace(tr *trace.Trace, x0, c0, elemBytes int, sp Space, limit int) ([][]Geom, error) {
	obs, err := trace.Analyze(tr)
	if err != nil {
		return nil, err
	}
	layerObs, err := FromTrace(obs, elemBytes)
	if err != nil {
		return nil, err
	}
	return SolveDense(layerObs, x0, c0, sp, limit)
}
