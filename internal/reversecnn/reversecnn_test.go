package reversecnn

import (
	"math/big"
	"testing"

	"github.com/huffduff/huffduff/internal/models"
)

// chainObsFor computes exact dense observations for a simple conv chain.
func chainObsFor(x0, c0 int, geoms []Geom) []LayerObs {
	var obs []LayerObs
	x, c := x0, c0
	for _, g := range geoms {
		p := outSpatial(x, g.R, g.Stride)
		po := p / g.Pool
		obs = append(obs, LayerObs{
			I: x * x * c,
			O: po * po * g.K,
			W: g.R * g.R * c * g.K,
		})
		x, c = po, g.K
	}
	return obs
}

func TestSolveDenseRecoversTruth(t *testing.T) {
	truth := []Geom{
		{R: 5, Stride: 1, Pool: 1, K: 8},
		{R: 3, Stride: 1, Pool: 2, K: 16},
		{R: 3, Stride: 2, Pool: 1, K: 16},
	}
	obs := chainObsFor(32, 3, truth)
	sols, err := SolveDense(obs, 32, 3, DefaultSpace(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) == 0 {
		t.Fatal("no solutions")
	}
	found := false
	for _, s := range sols {
		match := true
		for i := range truth {
			if s[i] != truth[i] {
				match = false
				break
			}
		}
		if match {
			found = true
		}
	}
	if !found {
		t.Fatalf("truth not among %d solutions", len(sols))
	}
	// Dense solving must stay tractable (Table 1: 8 solutions for a whole
	// ResNet-18).
	if len(sols) > 64 {
		t.Fatalf("dense solution count %d unreasonably large", len(sols))
	}
}

func TestSolveDenseLimit(t *testing.T) {
	truth := []Geom{{R: 3, Stride: 2, Pool: 1, K: 4}}
	obs := chainObsFor(16, 3, truth)
	sols, err := SolveDense(obs, 16, 3, DefaultSpace(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 {
		t.Fatalf("limit ignored: %d solutions", len(sols))
	}
}

func TestSolveDenseInvalidInput(t *testing.T) {
	if _, err := SolveDense(nil, 0, 3, DefaultSpace(), 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestSolveDenseInconsistentObsGivesNoSolutions(t *testing.T) {
	obs := []LayerObs{{I: 999, O: 10, W: 27}}
	sols, err := SolveDense(obs, 32, 3, DefaultSpace(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 0 {
		t.Fatal("expected zero solutions for inconsistent footprints")
	}
}

func TestStrideVsPoolAmbiguityIsCounted(t *testing.T) {
	// A stride-2 conv and a stride-1 conv followed by 2×2 pooling produce
	// identical dense footprints — a genuine ambiguity ReverseCNN reports
	// as multiple solutions.
	truth := []Geom{{R: 3, Stride: 2, Pool: 1, K: 4}}
	obs := chainObsFor(32, 3, truth)
	sols, err := SolveDense(obs, 32, 3, DefaultSpace(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) < 2 {
		t.Fatalf("expected stride/pool ambiguity, got %d solutions", len(sols))
	}
}

func TestSparseCountExplodes(t *testing.T) {
	truth := []Geom{
		{R: 3, Stride: 1, Pool: 1, K: 64},
		{R: 3, Stride: 1, Pool: 1, K: 64},
	}
	dense := chainObsFor(32, 3, truth)
	// Prune weights 10×, halve activations: observations shrink.
	sparseObs := make([]LayerObs, len(dense))
	for i, o := range dense {
		sparseObs[i] = LayerObs{I: o.I / 2, O: o.O / 2, W: o.W / 10}
	}
	xs := []int{32, 32}
	cs := []int{3, 64}
	count, err := SparseCount(sparseObs, xs, cs, 0.999, DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	// Per layer the k-range alone spans hundreds of candidates.
	if count.Cmp(big.NewInt(10000)) < 0 {
		t.Fatalf("sparse count %s suspiciously small", count.String())
	}
}

func TestSparseCountMonotoneInAlpha(t *testing.T) {
	truth := []Geom{{R: 3, Stride: 1, Pool: 1, K: 32}}
	obs := chainObsFor(32, 3, truth)
	obs[0].W /= 5
	xs, cs := []int{32}, []int{3}
	loose, err := SparseCount(obs, xs, cs, 0.99, DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	looser, err := SparseCount(obs, xs, cs, 0.999, DefaultSpace())
	if err != nil {
		t.Fatal(err)
	}
	if looser.Cmp(loose) <= 0 {
		t.Fatalf("count not monotone in alpha: %s vs %s", loose, looser)
	}
}

func TestSparseCountErrors(t *testing.T) {
	if _, err := SparseCount([]LayerObs{{}}, []int{1}, []int{1, 2}, 0.9, DefaultSpace()); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := SparseCount(nil, nil, nil, 1.5, DefaultSpace()); err == nil {
		t.Fatal("expected alpha error")
	}
}

func TestOrdersOfMagnitude(t *testing.T) {
	if OrdersOfMagnitude(big.NewInt(1)) != 0 {
		t.Fatal("1 -> 0")
	}
	if OrdersOfMagnitude(big.NewInt(999)) != 2 {
		t.Fatal("999 -> 2")
	}
	n := new(big.Int).Exp(big.NewInt(10), big.NewInt(96), nil)
	if OrdersOfMagnitude(n) != 96 {
		t.Fatal("10^96 -> 96")
	}
}

func TestFromArchChains(t *testing.T) {
	vgg := models.VGGS(1)
	ao, err := FromArch(vgg, DenseProfile, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ao.Obs) != 13 {
		t.Fatalf("VGG-S conv count %d, want 13", len(ao.Obs))
	}
	if len(ao.MainChain) != 13 {
		t.Fatalf("VGG-S main chain %d, want 13", len(ao.MainChain))
	}
	res := models.ResNet18(1)
	aor, err := FromArch(res, DenseProfile, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(aor.Obs) != 20 {
		t.Fatalf("ResNet-18 conv count %d, want 20 (17 main + 3 shortcut)", len(aor.Obs))
	}
	if len(aor.MainChain) != 17 {
		t.Fatalf("ResNet-18 main chain %d, want 17", len(aor.MainChain))
	}
	// First layer sees the full dense input image.
	if aor.Obs[0].I != 3*32*32 {
		t.Fatalf("first-layer I = %d", aor.Obs[0].I)
	}
}

func TestFromArchProfilesShrinkWeights(t *testing.T) {
	res := models.ResNet18(1)
	dense, err := FromArch(res, DenseProfile, 1)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := FromArch(res, LTHProfile, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	totalDense, totalSparse := 0, 0
	for i := range dense.Obs {
		if sparse.Obs[i].W > dense.Obs[i].W {
			t.Fatalf("layer %d: sparse W %d > dense %d", i, sparse.Obs[i].W, dense.Obs[i].W)
		}
		totalDense += dense.Obs[i].W
		totalSparse += sparse.Obs[i].W
	}
	ratio := float64(totalDense) / float64(totalSparse)
	if ratio < 5 || ratio > 40 {
		t.Fatalf("LTH profile compression ratio %.1f not in the ~10x regime", ratio)
	}
}

func TestFromArchBadActDensity(t *testing.T) {
	if _, err := FromArch(models.SmallCNN(), DenseProfile, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestLTHProfileShape(t *testing.T) {
	n := 17
	if LTHProfile(0, n) < LTHProfile(n-1, n) {
		t.Fatal("first layer should be densest")
	}
	if LTHProfile(0, n) > 0.5 || LTHProfile(n-1, n) < 0.003 {
		t.Fatalf("profile out of regime: %g .. %g", LTHProfile(0, n), LTHProfile(n-1, n))
	}
	if LTHProfile(0, 1) != 0.45 {
		t.Fatal("single-layer profile")
	}
}
