package trace

import "testing"

// FuzzAnalyze feeds arbitrary access sequences to the analyzer: it must
// never panic, and when it succeeds its outputs must satisfy basic
// accounting invariants.
func FuzzAnalyze(f *testing.F) {
	f.Add([]byte{0, 10, 1, 10, 0, 20})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		tr := &Trace{}
		tm := 0.0
		for i := 0; i+2 <= len(data); i += 2 {
			op := Read
			if data[i]%2 == 0 {
				op = Write
			}
			tr.Accesses = append(tr.Accesses, Access{
				Time:  tm,
				Op:    op,
				Addr:  uint64(data[i+1]) * 16,
				Bytes: int(data[i]%7) + 1,
			})
			tm += 0.001
		}
		obs, err := Analyze(tr)
		if err != nil {
			return
		}
		reads, writes := tr.TotalBytes()
		gotR, gotW := 0, 0
		for _, o := range obs {
			if o.WeightBytes < 0 || o.InputBytes < 0 || o.OutputBytes < 0 {
				t.Fatal("negative footprint")
			}
			gotR += o.WeightBytes + o.InputBytes
			gotW += o.OutputBytes
			for _, d := range o.Deps {
				if d < 0 || d >= len(obs) || d == o.Index {
					t.Fatalf("bad dep %d in segment %d", d, o.Index)
				}
			}
			if o.OutputBytes > 0 && o.LastWrite < o.FirstWrite {
				t.Fatal("write window inverted")
			}
		}
		if gotR != reads || gotW != writes {
			t.Fatalf("accounting mismatch: %d/%d vs %d/%d", gotR, gotW, reads, writes)
		}
	})
}
