package trace

import (
	"errors"
	"testing"

	"github.com/huffduff/huffduff/internal/faults"
)

// FuzzAnalyze feeds arbitrary access sequences to the analyzer: it must
// never panic, every rejection must carry the ErrTraceCorrupt sentinel, and
// when it succeeds its outputs must satisfy basic accounting invariants.
//
// Each event is two input bytes: the first selects op (bit 0), size, and the
// time step — values ≥ 192 rewind the clock, letting the fuzzer produce the
// reordered sequences a faulty bus sniffer emits — and the second selects
// the address.
func FuzzAnalyze(f *testing.F) {
	f.Add([]byte{0, 10, 1, 10, 0, 20})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	// A reordered event: 200 ≥ 192 steps time backwards mid-trace.
	f.Add([]byte{0, 10, 1, 10, 200, 12, 0, 20})
	// Duplicated events: the same (op, addr) pair emitted twice.
	f.Add([]byte{0, 10, 1, 10, 1, 10, 0, 20})
	// A duplicated write block feeding a later read.
	f.Add([]byte{0, 7, 0, 7, 1, 7, 0, 20})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		tr := &Trace{}
		tm := 0.0
		for i := 0; i+2 <= len(data); i += 2 {
			op := Read
			if data[i]%2 == 0 {
				op = Write
			}
			if data[i] >= 192 {
				tm -= 0.0005
			} else {
				tm += 0.001
			}
			tr.Accesses = append(tr.Accesses, Access{
				Time:  tm,
				Op:    op,
				Addr:  uint64(data[i+1]) * 16,
				Bytes: int(data[i]%7) + 1,
			})
		}
		obs, err := Analyze(tr)
		if err != nil {
			if !errors.Is(err, faults.ErrTraceCorrupt) {
				t.Fatalf("Analyze error %v does not wrap ErrTraceCorrupt", err)
			}
			return
		}
		reads, writes := tr.TotalBytes()
		gotR, gotW := 0, 0
		for _, o := range obs {
			if o.WeightBytes < 0 || o.InputBytes < 0 || o.OutputBytes < 0 {
				t.Fatal("negative footprint")
			}
			gotR += o.WeightBytes + o.InputBytes
			gotW += o.OutputBytes
			for _, d := range o.Deps {
				if d < 0 || d >= len(obs) || d == o.Index {
					t.Fatalf("bad dep %d in segment %d", d, o.Index)
				}
			}
			if o.OutputBytes > 0 && o.LastWrite < o.FirstWrite {
				t.Fatal("write window inverted")
			}
		}
		if gotR != reads || gotW != writes {
			t.Fatalf("accounting mismatch: %d/%d vs %d/%d", gotR, gotW, reads, writes)
		}
		// Validate must never panic on analyzed segments; rejections must
		// carry the corruption sentinel.
		if verr := Validate(obs); verr != nil && !errors.Is(verr, faults.ErrTraceCorrupt) {
			t.Fatalf("Validate error %v does not wrap ErrTraceCorrupt", verr)
		}
	})
}
