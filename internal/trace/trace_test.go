package trace

import (
	"errors"
	"testing"

	"github.com/huffduff/huffduff/internal/faults"
)

func mkTrace(accs ...Access) *Trace { return &Trace{Accesses: accs} }

func TestAnalyzeEmptyTrace(t *testing.T) {
	if _, err := Analyze(&Trace{}); err == nil {
		t.Fatal("expected error for empty trace")
	}
}

func TestAnalyzeOutOfOrder(t *testing.T) {
	tr := mkTrace(
		Access{Time: 1, Op: Write, Addr: 0, Bytes: 4},
		Access{Time: 0.5, Op: Read, Addr: 0, Bytes: 4},
	)
	if _, err := Analyze(tr); err == nil {
		t.Fatal("expected error for out-of-order trace")
	}
}

func TestAnalyzeSegmentsSimpleChain(t *testing.T) {
	// Segment 0: input DMA write at 0x100 (8 bytes).
	// Segment 1: read input + read weights (0x10, never written), write 0x200.
	// Segment 2: read 0x200, write 0x300.
	tr := mkTrace(
		Access{Time: 0, Op: Write, Addr: 0x100, Bytes: 8},
		Access{Time: 1, Op: Read, Addr: 0x100, Bytes: 8},
		Access{Time: 2, Op: Read, Addr: 0x10, Bytes: 16},
		Access{Time: 3, Op: Write, Addr: 0x200, Bytes: 4},
		Access{Time: 4, Op: Write, Addr: 0x204, Bytes: 4},
		Access{Time: 5, Op: Read, Addr: 0x200, Bytes: 8},
		Access{Time: 6, Op: Write, Addr: 0x300, Bytes: 8},
	)
	obs, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 3 {
		t.Fatalf("segments = %d, want 3", len(obs))
	}
	s1 := obs[1]
	if s1.InputBytes != 8 || s1.WeightBytes != 16 || s1.OutputBytes != 8 {
		t.Fatalf("segment 1 = %+v", s1)
	}
	if len(s1.Deps) != 1 || s1.Deps[0] != 0 {
		t.Fatalf("segment 1 deps = %v", s1.Deps)
	}
	s2 := obs[2]
	if len(s2.Deps) != 1 || s2.Deps[0] != 1 {
		t.Fatalf("segment 2 deps = %v", s2.Deps)
	}
	if s1.FirstWrite != 3 || s1.LastWrite != 4 {
		t.Fatalf("segment 1 write window = [%g,%g]", s1.FirstWrite, s1.LastWrite)
	}
	if s1.EncodingTime() != 1 {
		t.Fatalf("encoding time = %g", s1.EncodingTime())
	}
}

func TestAnalyzeResidualDeps(t *testing.T) {
	// seg1 writes A, seg2 reads A writes B, seg3 reads B writes C,
	// seg4 reads B and C (residual add) writes D.
	tr := mkTrace(
		Access{Time: 0, Op: Write, Addr: 0x100, Bytes: 8}, // input
		Access{Time: 1, Op: Read, Addr: 0x100, Bytes: 8},
		Access{Time: 2, Op: Write, Addr: 0x200, Bytes: 8}, // A (seg1)
		Access{Time: 3, Op: Read, Addr: 0x200, Bytes: 8},
		Access{Time: 4, Op: Write, Addr: 0x300, Bytes: 8}, // B (seg2)
		Access{Time: 5, Op: Read, Addr: 0x300, Bytes: 8},
		Access{Time: 6, Op: Write, Addr: 0x400, Bytes: 8}, // C (seg3)
		Access{Time: 7, Op: Read, Addr: 0x300, Bytes: 8},  // skip connection
		Access{Time: 8, Op: Read, Addr: 0x400, Bytes: 8},
		Access{Time: 9, Op: Write, Addr: 0x500, Bytes: 8}, // D (seg4)
	)
	obs, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 5 {
		t.Fatalf("segments = %d, want 5", len(obs))
	}
	add := obs[4]
	if len(add.Deps) != 2 || add.Deps[0] != 2 || add.Deps[1] != 3 {
		t.Fatalf("residual deps = %v, want [2 3]", add.Deps)
	}
}

func TestTotalBytes(t *testing.T) {
	tr := mkTrace(
		Access{Time: 0, Op: Write, Addr: 0, Bytes: 10},
		Access{Time: 1, Op: Read, Addr: 0, Bytes: 6},
		Access{Time: 2, Op: Read, Addr: 32, Bytes: 4},
	)
	r, w := tr.TotalBytes()
	if r != 10 || w != 10 {
		t.Fatalf("reads=%d writes=%d", r, w)
	}
}

func TestOutputSignatureSkipsInputDMA(t *testing.T) {
	tr := mkTrace(
		Access{Time: 0, Op: Write, Addr: 0x100, Bytes: 8},
		Access{Time: 1, Op: Read, Addr: 0x100, Bytes: 8},
		Access{Time: 2, Op: Write, Addr: 0x200, Bytes: 20},
		Access{Time: 3, Op: Read, Addr: 0x200, Bytes: 20},
		Access{Time: 4, Op: Write, Addr: 0x300, Bytes: 12},
	)
	obs, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	sig := OutputSignature(obs)
	if len(sig) != 2 || sig[0] != 20 || sig[1] != 12 {
		t.Fatalf("signature = %v", sig)
	}
}

// chainObs builds the analyzed form of a clean 3-segment chain for Validate
// tests: input DMA (8B) → layer 1 (reads 8B input + 16B weights, writes 20B)
// → layer 2 (reads 20B, writes 12B).
func chainObs(t *testing.T) []SegmentObs {
	t.Helper()
	tr := mkTrace(
		Access{Time: 0, Op: Write, Addr: 0x100, Bytes: 8},
		Access{Time: 1, Op: Read, Addr: 0x100, Bytes: 8},
		Access{Time: 2, Op: Read, Addr: 0x10, Bytes: 16},
		Access{Time: 3, Op: Write, Addr: 0x200, Bytes: 20},
		Access{Time: 4, Op: Read, Addr: 0x200, Bytes: 20},
		Access{Time: 5, Op: Write, Addr: 0x300, Bytes: 12},
	)
	obs, err := Analyze(tr)
	if err != nil {
		t.Fatal(err)
	}
	return obs
}

func TestValidateAcceptsCleanChain(t *testing.T) {
	if err := Validate(chainObs(t)); err != nil {
		t.Fatalf("clean chain rejected: %v", err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(obs []SegmentObs) []SegmentObs
	}{
		{"dropped read", func(obs []SegmentObs) []SegmentObs {
			obs[1].InputBytes -= 8 // an input-read event vanished
			return obs
		}},
		{"duplicated write", func(obs []SegmentObs) []SegmentObs {
			obs[1].OutputBytes += 20 // producer volume inflated, reads not
			return obs
		}},
		{"truncated to input DMA", func(obs []SegmentObs) []SegmentObs {
			return obs[:1]
		}},
		{"reads in segment 0", func(obs []SegmentObs) []SegmentObs {
			obs[0].InputBytes = 4
			return obs
		}},
		{"inverted write window", func(obs []SegmentObs) []SegmentObs {
			obs[1].FirstWrite, obs[1].LastWrite = 5, 3
			return obs
		}},
	} {
		err := Validate(tc.mutate(chainObs(t)))
		if err == nil {
			t.Fatalf("%s: corruption not detected", tc.name)
		}
		if !errors.Is(err, faults.ErrTraceCorrupt) {
			t.Fatalf("%s: error %v does not wrap ErrTraceCorrupt", tc.name, err)
		}
	}
}

// Consistent padding — the producer write and every consumer read inflated
// by the same amount, as both the §9.2 defence and the chaos pad fault do —
// must pass Validate: it is measurement noise handled statistically, not
// trace corruption worth a re-run.
func TestValidateAcceptsConsistentPadding(t *testing.T) {
	obs := chainObs(t)
	obs[1].OutputBytes += 5
	obs[2].InputBytes += 5
	if err := Validate(obs); err != nil {
		t.Fatalf("consistent padding rejected: %v", err)
	}
}

func TestAnalyzeErrorsWrapTraceCorrupt(t *testing.T) {
	if _, err := Analyze(&Trace{}); !errors.Is(err, faults.ErrTraceCorrupt) {
		t.Fatalf("empty-trace error %v does not wrap ErrTraceCorrupt", err)
	}
	tr := mkTrace(
		Access{Time: 1, Op: Write, Addr: 0, Bytes: 4},
		Access{Time: 0.5, Op: Read, Addr: 0, Bytes: 4},
	)
	if _, err := Analyze(tr); !errors.Is(err, faults.ErrTraceCorrupt) {
		t.Fatalf("out-of-order error %v does not wrap ErrTraceCorrupt", err)
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatal("Op.String broken")
	}
}
