// Package trace defines the DRAM access trace the accelerator simulator
// emits and the attacker-side analysis that recovers layer structure from
// it. The analysis uses only information the threat model grants: access
// times, operation types, addresses, and sizes — never tensor contents.
package trace

import (
	"fmt"
	"sort"

	"github.com/huffduff/huffduff/internal/faults"
)

// Op is a DRAM operation type.
type Op int

// Operation types.
const (
	Read Op = iota
	Write
)

// String implements fmt.Stringer.
func (o Op) String() string {
	if o == Read {
		return "R"
	}
	return "W"
}

// Access is one observed DRAM transfer.
type Access struct {
	Time  float64 // seconds since trace start
	Op    Op
	Addr  uint64
	Bytes int
}

// Trace is a time-ordered sequence of DRAM accesses for one inference.
type Trace struct {
	Accesses []Access
}

// TotalBytes returns the total read and written byte counts.
func (t *Trace) TotalBytes() (reads, writes int) {
	for _, a := range t.Accesses {
		if a.Op == Read {
			reads += a.Bytes
		} else {
			writes += a.Bytes
		}
	}
	return reads, writes
}

// SegmentObs is what the attacker learns about one execution segment
// (one accelerator layer pass) from the trace.
type SegmentObs struct {
	Index int
	// WeightBytes is traffic read from read-only addresses (never written
	// in the trace): the compressed weight tensor.
	WeightBytes int
	// InputBytes is traffic read from previously written addresses: the
	// compressed input activations.
	InputBytes int
	// OutputBytes is the compressed output activation traffic.
	OutputBytes int
	// Deps lists the segment indices that produced the data this segment
	// reads (0 = the attacker-supplied input DMA segment). This is the
	// recovered dataflow graph.
	Deps []int
	// FirstWrite/LastWrite bound the output encoding interval; their
	// difference is the timing side channel of §7.
	FirstWrite, LastWrite float64
}

// EncodingTime returns the observed psum-encoding duration (the Δt between
// the first and last output DRAM transfer).
func (s SegmentObs) EncodingTime() float64 { return s.LastWrite - s.FirstWrite }

// Analyze segments a trace into layer passes and extracts per-segment
// footprints, dependencies, and encoding times.
//
// Segmentation exploits layerwise execution: within one pass all input/weight
// reads precede the output writeback, so a Read that follows a Write starts a
// new segment. Segment 0 is the attacker's own input DMA (writes only).
// Dependencies are recovered by matching read addresses against earlier
// segments' write ranges (the read-after-write rule of §3.2).
func Analyze(t *Trace) ([]SegmentObs, error) {
	if len(t.Accesses) == 0 {
		return nil, fmt.Errorf("trace: empty trace: %w", faults.ErrTraceCorrupt)
	}
	// Pass 1: which addresses are ever written (weights are read-only).
	type span struct {
		lo, hi  uint64 // [lo, hi)
		segment int
	}
	var writeSpans []span

	// Split into segments.
	var segments [][]Access
	cur := []Access{t.Accesses[0]}
	for _, a := range t.Accesses[1:] {
		prev := cur[len(cur)-1]
		if a.Time < prev.Time {
			return nil, fmt.Errorf("trace: accesses out of order at t=%g: %w", a.Time, faults.ErrTraceCorrupt)
		}
		if a.Op == Read && prev.Op == Write {
			segments = append(segments, cur)
			cur = nil
		}
		cur = append(cur, a)
	}
	segments = append(segments, cur)

	// Collect write spans per segment (coalescing is unnecessary; spans are
	// matched by containment).
	writtenEver := func(addr uint64) (int, bool) {
		for _, s := range writeSpans {
			if addr >= s.lo && addr < s.hi {
				return s.segment, true
			}
		}
		return 0, false
	}
	obs := make([]SegmentObs, len(segments))
	for i, seg := range segments {
		for _, a := range seg {
			if a.Op == Write {
				writeSpans = append(writeSpans, span{a.Addr, a.Addr + uint64(a.Bytes), i})
			}
		}
	}
	// Keep spans sorted for deterministic dep ordering (search is linear;
	// traces are small).
	sort.Slice(writeSpans, func(i, j int) bool { return writeSpans[i].lo < writeSpans[j].lo })

	for i, seg := range segments {
		o := &obs[i]
		o.Index = i
		o.FirstWrite = -1
		depSet := map[int]bool{}
		for _, a := range seg {
			switch a.Op {
			case Read:
				if producer, ok := writtenEver(a.Addr); ok {
					o.InputBytes += a.Bytes
					if producer != i {
						depSet[producer] = true
					}
				} else {
					o.WeightBytes += a.Bytes
				}
			case Write:
				o.OutputBytes += a.Bytes
				if o.FirstWrite < 0 {
					o.FirstWrite = a.Time
				}
				o.LastWrite = a.Time
			}
		}
		o.Deps = make([]int, 0, len(depSet))
		for d := range depSet {
			o.Deps = append(o.Deps, d)
		}
		sort.Ints(o.Deps)
	}
	return obs, nil
}

// Validate cross-checks analyzed segments against the byte-accounting
// invariants of layerwise streaming execution: segment 0 is a write-only
// input DMA, and every later segment reads each producer tensor exactly once
// and in full, so its InputBytes must equal the sum of its producers'
// OutputBytes. A dropped, duplicated, or mis-ordered DRAM event almost
// always breaks one of these equalities (only the final segment's output,
// which nothing consumes, escapes the check), which makes Validate the
// attacker's cheap detector for corrupted observations: on failure it
// returns an error wrapping faults.ErrTraceCorrupt and the caller re-runs
// the inference.
//
// Content-dependent noise that inflates a tensor consistently on both the
// producing write and the consuming reads — e.g. the §9.2 randomized-padding
// defence — passes Validate by design; it is measurement noise, not trace
// corruption, and is handled statistically upstream.
func Validate(obs []SegmentObs) error {
	if len(obs) < 2 {
		return fmt.Errorf("trace: %d segments, need an input DMA and at least one layer: %w", len(obs), faults.ErrTraceCorrupt)
	}
	if obs[0].InputBytes != 0 || obs[0].WeightBytes != 0 || obs[0].OutputBytes == 0 {
		return fmt.Errorf("trace: segment 0 is not a write-only input DMA: %w", faults.ErrTraceCorrupt)
	}
	for _, o := range obs[1:] {
		want := 0
		for _, d := range o.Deps {
			want += obs[d].OutputBytes
		}
		if o.InputBytes != want {
			return fmt.Errorf("trace: segment %d reads %d bytes but its producers %v wrote %d: %w",
				o.Index, o.InputBytes, o.Deps, want, faults.ErrTraceCorrupt)
		}
		if o.OutputBytes > 0 && o.LastWrite < o.FirstWrite {
			return fmt.Errorf("trace: segment %d write window inverted: %w", o.Index, faults.ErrTraceCorrupt)
		}
	}
	return nil
}

// OutputSignature extracts the per-layer output byte counts from analyzed
// segments, skipping the input DMA segment. This is the observation vector
// the boundary-effect prober compares across probe images.
func OutputSignature(obs []SegmentObs) []int {
	sig := make([]int, 0, len(obs)-1)
	for _, o := range obs[1:] {
		sig = append(sig, o.OutputBytes)
	}
	return sig
}
