package symconv

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/huffduff/huffduff/internal/nn"
	"github.com/huffduff/huffduff/internal/probe"
)

// TestSoundnessRandomStacks is the engine's central property: for random
// layer stacks with random weights, probe positions predicted equal by the
// symbolic engine must observe exactly equal nnz, for every layer of the
// stack (the one-sided-error guarantee of §5.4 that the whole attack rests
// on).
func TestSoundnessRandomStacks(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized soundness sweep")
	}
	geoms := []struct{ k, s, p int }{
		{1, 1, 1}, {3, 1, 1}, {3, 1, 2}, {3, 2, 1}, {5, 1, 1}, {5, 2, 1}, {7, 1, 1},
	}
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		depth := 1 + rng.Intn(3)
		var stack []struct{ k, s, p int }
		h := 32
		for d := 0; d < depth; d++ {
			g := geoms[rng.Intn(len(geoms))]
			pad := (g.k - 1) / 2
			nh := ((h+2*pad-g.k)/g.s + 1) / g.p
			if nh < 4 {
				break
			}
			stack = append(stack, g)
			h = nh
		}
		if len(stack) == 0 {
			continue
		}
		pat := probe.Pattern{M: 0, N: 1 + rng.Intn(2), Q: 8, FeatRow: 14}
		if pat.Validate(32, 32) != nil {
			continue
		}

		// Symbolic per-layer predictions.
		eng := NewEngine()
		predPerLayer := make([][]string, len(stack))
		for q := 0; q < pat.Q; q++ {
			g := eng.ProbeGrid(pat, q, 32, 32)
			for li, l := range stack {
				g = eng.MaxPool(eng.Conv(g, fmt.Sprintf("t%d_l%d", trial, li), l.k, l.s), l.p)
				predPerLayer[li] = append(predPerLayer[li], Signature(g))
			}
		}

		// Numeric observation with random multichannel weights.
		channels := 2 + rng.Intn(4)
		var layers []nn.Layer
		inC := 1
		for _, l := range stack {
			conv := nn.NewConv2D(rng, inC, channels, l.k, l.s, nn.SamePad(l.k), 1, true)
			conv.Bias.W.Uniform(rng, -0.2, 0.2)
			layers = append(layers, conv, nn.NewReLU())
			if l.p > 1 {
				layers = append(layers, nn.NewMaxPool2D(l.p))
			}
			inC = channels
		}
		vals := probe.RandomValues(rng, pat)
		nnzPerLayer := make([][]int, len(stack))
		for q := 0; q < pat.Q; q++ {
			x := probe.Image(pat, vals, q, 1, 32, 32).Reshape(1, 1, 32, 32)
			unit := 0
			for i := 0; i < len(layers); {
				x = layers[i].Forward(x, false) // conv
				i++
				x = layers[i].Forward(x, false) // relu
				i++
				if i < len(layers) {
					if mp, ok := layers[i].(*nn.MaxPool2D); ok {
						x = mp.Forward(x, false)
						i++
					}
				}
				nnzPerLayer[unit] = append(nnzPerLayer[unit], x.NNZ(0))
				unit++
			}
		}

		for li := range stack {
			pred := ClassPattern(predPerLayer[li])
			obs := ClassPattern(nnzPerLayer[li])
			if !Refines(pred, obs) {
				t.Fatalf("trial %d layer %d (%+v): prediction %s does not refine observation %s",
					trial, li, stack[li], PatternString(pred), PatternString(obs))
			}
		}
	}
}
