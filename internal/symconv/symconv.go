// Package symconv is the symbolic convolution engine of §6.2. It evaluates a
// hypothesized layer geometry on symbolic probe inputs and predicts the
// pattern of output nnz equivalence classes (the ABCC… patterns of §5.4),
// which the prober compares against the classes observed on the DRAM bus.
//
// The engine works on single-channel symbolic grids: the boundary effect is
// agnostic to channel counts (§6.4), so one generic channel predicts the
// same equivalence classes as the victim's many.
package symconv

import (
	"fmt"
	"sort"
	"strings"

	"github.com/huffduff/huffduff/internal/probe"
	"github.com/huffduff/huffduff/internal/sym"
)

// Grid is a single-channel symbolic feature map.
type Grid struct {
	H, W  int
	Cells []sym.ID
}

// At returns the cell at (y, x).
func (g Grid) At(y, x int) sym.ID { return g.Cells[y*g.W+x] }

// Engine evaluates symbolic layers. All grids produced by one engine share
// its interner, so cross-grid cell equality is ID equality.
type Engine struct {
	In *sym.Interner
}

// NewEngine returns a fresh engine.
func NewEngine() *Engine { return &Engine{In: sym.NewInterner()} }

// ProbeGrid builds the symbolic input grid for probe i of pattern p on an
// h×w image: boundary-constant columns s_j, an n×n feature patch f_dy_dx at
// column m+i, background b elsewhere. The same variables are used for every
// probe in the set, mirroring how one Values instantiation is shared.
func (e *Engine) ProbeGrid(p probe.Pattern, i, h, w int) Grid {
	g := Grid{H: h, W: w, Cells: make([]sym.ID, h*w)}
	b := e.In.Var("b")
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := b
			if !p.FromRight && x < p.M {
				v = e.In.Var(fmt.Sprintf("s%d", x))
			}
			if p.FromRight && x >= w-p.M {
				v = e.In.Var(fmt.Sprintf("s%d", w-1-x))
			}
			g.Cells[y*w+x] = v
		}
	}
	fc := p.FeatureCol(i, w)
	for dy := 0; dy < p.N; dy++ {
		for dx := 0; dx < p.N; dx++ {
			g.Cells[(p.FeatRow+dy)*w+fc+dx] = e.In.Var(fmt.Sprintf("f%d_%d", dy, dx))
		}
	}
	return g
}

// ProbeGrids builds the full set of Q symbolic probe grids.
func (e *Engine) ProbeGrids(p probe.Pattern, h, w int) []Grid {
	grids := make([]Grid, p.Q)
	for i := 0; i < p.Q; i++ {
		grids[i] = e.ProbeGrid(p, i, h, w)
	}
	return grids
}

// Conv applies a same-padded convolution with generic weights w_tag_dy_dx
// and bias b_tag. BatchNorm's affine and ReLU are omitted: both are
// injective on generic values per-position, so they never change the
// equivalence classes the engine predicts (§5.2 shows how the numeric side
// separates them).
func (e *Engine) Conv(g Grid, tag string, kernel, stride int) Grid {
	// Attribute interner growth to this layer hypothesis: when the sym
	// budget watchdog aborts a runaway solve, the panic names the tag of
	// the expression family that exploded.
	e.In.SetSite(tag)
	pad := (kernel - 1) / 2
	oh := (g.H+2*pad-kernel)/stride + 1
	ow := (g.W+2*pad-kernel)/stride + 1
	out := Grid{H: oh, W: ow, Cells: make([]sym.ID, oh*ow)}
	// Weight variables are shared across all positions and probes.
	wv := make([]sym.ID, kernel*kernel)
	for dy := 0; dy < kernel; dy++ {
		for dx := 0; dx < kernel; dx++ {
			wv[dy*kernel+dx] = e.In.Var(fmt.Sprintf("%s_w%d_%d", tag, dy, dx))
		}
	}
	bias := e.In.Var(tag + "_b")
	terms := make([]sym.Term, 0, kernel*kernel+1)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			terms = terms[:0]
			for dy := 0; dy < kernel; dy++ {
				iy := oy*stride + dy - pad
				if iy < 0 || iy >= g.H {
					continue
				}
				for dx := 0; dx < kernel; dx++ {
					ix := ox*stride + dx - pad
					if ix < 0 || ix >= g.W {
						continue
					}
					terms = append(terms, sym.Term{Coef: wv[dy*kernel+dx], X: g.At(iy, ix)})
				}
			}
			terms = append(terms, sym.Term{Coef: bias, X: e.In.One()})
			out.Cells[oy*ow+ox] = e.In.Sum(terms)
		}
	}
	return out
}

// MaxPool applies max pooling with window == stride.
func (e *Engine) MaxPool(g Grid, window int) Grid {
	if window <= 1 {
		return g
	}
	e.In.SetSite(fmt.Sprintf("maxpool%d", window))
	oh, ow := g.H/window, g.W/window
	out := Grid{H: oh, W: ow, Cells: make([]sym.ID, oh*ow)}
	args := make([]sym.ID, 0, window*window)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			args = args[:0]
			for dy := 0; dy < window; dy++ {
				for dx := 0; dx < window; dx++ {
					args = append(args, g.At(oy*window+dy, ox*window+dx))
				}
			}
			out.Cells[oy*ow+ox] = e.In.Max(args)
		}
	}
	return out
}

// AvgPool applies average pooling. For class prediction the 1/w² factor is
// irrelevant (it is a global injective map), so the cell is the plain sum.
func (e *Engine) AvgPool(g Grid, window int) Grid {
	if window <= 1 {
		return g
	}
	e.In.SetSite(fmt.Sprintf("avgpool%d", window))
	oh, ow := g.H/window, g.W/window
	out := Grid{H: oh, W: ow, Cells: make([]sym.ID, oh*ow)}
	terms := make([]sym.Term, 0, window*window)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			terms = terms[:0]
			for dy := 0; dy < window; dy++ {
				for dx := 0; dx < window; dx++ {
					terms = append(terms, sym.Term{Coef: e.In.One(), X: g.At(oy*window+dy, ox*window+dx)})
				}
			}
			out.Cells[oy*ow+ox] = e.In.Sum(terms)
		}
	}
	return out
}

// Add sums two grids elementwise (a residual connection).
func (e *Engine) Add(a, b Grid) Grid {
	if a.H != b.H || a.W != b.W {
		panic(fmt.Sprintf("symconv: Add shape mismatch %dx%d vs %dx%d", a.H, a.W, b.H, b.W))
	}
	out := Grid{H: a.H, W: a.W, Cells: make([]sym.ID, len(a.Cells))}
	for i := range a.Cells {
		out.Cells[i] = e.In.Add(a.Cells[i], b.Cells[i])
	}
	return out
}

// Signature returns a canonical fingerprint of the multiset of cell
// expressions: grids with equal signatures have (generically) equal nnz.
func Signature(g Grid) string {
	ids := append([]sym.ID(nil), g.Cells...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d:", g.H, g.W)
	for _, id := range ids {
		fmt.Fprintf(&b, "%d,", id)
	}
	return b.String()
}

// ClassPattern converts a sequence of comparable observations into a
// canonical class-label pattern: the first distinct value becomes class 0,
// the next class 1, and so on (ABCC → [0 1 2 2]).
func ClassPattern[T comparable](vals []T) []int {
	classes := make(map[T]int)
	out := make([]int, len(vals))
	for i, v := range vals {
		c, ok := classes[v]
		if !ok {
			c = len(classes)
			classes[v] = c
		}
		out[i] = c
	}
	return out
}

// Refines reports whether partition p refines partition q (p makes at least
// q's distinctions: p_i == p_j implies q_i == q_j). A hypothesis's predicted
// pattern must refine the observed one, because expression equality forces
// nnz equality but not vice versa (the one-sided error of §5.4).
func Refines(p, q []int) bool {
	if len(p) != len(q) {
		return false
	}
	// For each p-class remember the q-class of its first member.
	rep := make(map[int]int)
	for i := range p {
		if qc, ok := rep[p[i]]; ok {
			if qc != q[i] {
				return false
			}
		} else {
			rep[p[i]] = q[i]
		}
	}
	return true
}

// SamePartition reports whether two label sequences induce the same
// partition.
func SamePartition(p, q []int) bool { return Refines(p, q) && Refines(q, p) }

// NumClasses returns the number of distinct classes in a pattern.
func NumClasses(p []int) int {
	seen := make(map[int]bool)
	for _, c := range p {
		seen[c] = true
	}
	return len(seen)
}

// PatternString renders a class pattern as letters (ABCC…), the notation
// used throughout the paper.
func PatternString(p []int) string {
	var b strings.Builder
	for _, c := range p {
		if c < 26 {
			b.WriteByte(byte('A' + c))
		} else {
			fmt.Fprintf(&b, "<%d>", c)
		}
	}
	return b.String()
}
