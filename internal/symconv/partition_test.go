package symconv

import "testing"

func TestClassPattern(t *testing.T) {
	cases := []struct {
		name string
		vals []int
		want []int
	}{
		{"empty", nil, []int{}},
		{"single", []int{7}, []int{0}},
		{"single class", []int{5, 5, 5}, []int{0, 0, 0}},
		{"abcc", []int{9, 4, 2, 2}, []int{0, 1, 2, 2}},
		{"first occurrence orders classes", []int{3, 1, 3, 1}, []int{0, 1, 0, 1}},
	}
	for _, c := range cases {
		got := ClassPattern(c.vals)
		if len(got) != len(c.want) {
			t.Fatalf("%s: ClassPattern = %v, want %v", c.name, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%s: ClassPattern = %v, want %v", c.name, got, c.want)
			}
		}
	}
}

func TestClassPatternGenericOverStrings(t *testing.T) {
	got := ClassPattern([]string{"x", "y", "x"})
	want := []int{0, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ClassPattern(strings) = %v, want %v", got, want)
		}
	}
}

func TestRefinesTable(t *testing.T) {
	cases := []struct {
		name string
		p, q []int
		want bool
	}{
		{"empty refines empty", []int{}, []int{}, true},
		{"equal partitions", []int{0, 1, 1}, []int{0, 1, 1}, true},
		{"strictly finer", []int{0, 1, 2}, []int{0, 1, 1}, true},
		{"strictly coarser", []int{0, 1, 1}, []int{0, 1, 2}, false},
		{"single class refines nothing finer", []int{0, 0, 0}, []int{0, 0, 1}, false},
		{"everything refines single class", []int{0, 1, 2}, []int{0, 0, 0}, true},
		{"length mismatch", []int{0, 1}, []int{0, 1, 1}, false},
		{"incomparable", []int{0, 0, 1}, []int{0, 1, 1}, false},
		{"labels irrelevant", []int{5, 5, 9}, []int{1, 1, 0}, true},
	}
	for _, c := range cases {
		if got := Refines(c.p, c.q); got != c.want {
			t.Errorf("%s: Refines(%v, %v) = %v, want %v", c.name, c.p, c.q, got, c.want)
		}
	}
}

func TestSamePartition(t *testing.T) {
	cases := []struct {
		name string
		p, q []int
		want bool
	}{
		{"empty", []int{}, []int{}, true},
		{"identical", []int{0, 1, 1}, []int{0, 1, 1}, true},
		{"relabelled", []int{0, 1, 1}, []int{1, 0, 0}, true},
		{"finer is not same", []int{0, 1, 2}, []int{0, 1, 1}, false},
		{"single class both", []int{0, 0}, []int{3, 3}, true},
		{"length mismatch", []int{0}, []int{0, 0}, false},
	}
	for _, c := range cases {
		if got := SamePartition(c.p, c.q); got != c.want {
			t.Errorf("%s: SamePartition(%v, %v) = %v, want %v", c.name, c.p, c.q, got, c.want)
		}
	}
}

func TestNumClasses(t *testing.T) {
	cases := []struct {
		p    []int
		want int
	}{
		{nil, 0},
		{[]int{0}, 1},
		{[]int{0, 0, 0}, 1},
		{[]int{0, 1, 2, 2}, 3},
	}
	for _, c := range cases {
		if got := NumClasses(c.p); got != c.want {
			t.Errorf("NumClasses(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestPatternString(t *testing.T) {
	if got := PatternString([]int{0, 1, 2, 2}); got != "ABCC" {
		t.Fatalf("PatternString = %q, want ABCC", got)
	}
	if got := PatternString(nil); got != "" {
		t.Fatalf("PatternString(nil) = %q, want empty", got)
	}
	// Classes past Z render as explicit indices rather than wrapping.
	if got := PatternString([]int{26}); got != "<26>" {
		t.Fatalf("PatternString([26]) = %q", got)
	}
}
