package symconv

import (
	"math/rand"
	"testing"

	"github.com/huffduff/huffduff/internal/nn"
	"github.com/huffduff/huffduff/internal/probe"
	"github.com/huffduff/huffduff/internal/tensor"
)

// predict runs the engine over a chain of (kernel, stride, pool) layers and
// returns the predicted class pattern across probes.
func predict(t *testing.T, pat probe.Pattern, h, w int, layers [][3]int) []int {
	t.Helper()
	e := NewEngine()
	grids := e.ProbeGrids(pat, h, w)
	for li, l := range layers {
		for i := range grids {
			g := e.Conv(grids[i], tag(li), l[0], l[1])
			g = e.MaxPool(g, l[2])
			grids[i] = g
		}
	}
	sigs := make([]string, len(grids))
	for i, g := range grids {
		sigs[i] = Signature(g)
	}
	return ClassPattern(sigs)
}

func tag(i int) string { return string(rune('L')) + string(rune('0'+i)) }

// The paper's running example: a 3-wide filter with bias on a 1-d input
// gives the nnz pattern ABCC (§5.4).
func TestKernel3PatternABCC(t *testing.T) {
	pat := probe.Pattern{M: 0, N: 1, Q: 4, FeatRow: 0}
	got := predict(t, pat, 1, 12, [][3]int{{3, 1, 1}})
	want := []int{0, 1, 2, 2}
	if !SamePartition(got, want) {
		t.Fatalf("pattern = %s, want ABCC", PatternString(got))
	}
}

// A pointwise 1×1 layer is shift-equivariant everywhere: AAAA (§6.2).
func TestKernel1PatternAAAA(t *testing.T) {
	pat := probe.Pattern{M: 0, N: 1, Q: 4, FeatRow: 0}
	got := predict(t, pat, 1, 12, [][3]int{{1, 1, 1}})
	if NumClasses(got) != 1 {
		t.Fatalf("pattern = %s, want AAAA", PatternString(got))
	}
}

// A 5-wide same-padded filter has a two-cell boundary zone whose influence
// extends four probe positions before the pattern converges: ABCDEE.
func TestKernel5PatternABCDEE(t *testing.T) {
	pat := probe.Pattern{M: 0, N: 1, Q: 6, FeatRow: 0}
	got := predict(t, pat, 1, 16, [][3]int{{5, 1, 1}})
	want := []int{0, 1, 2, 3, 4, 4}
	if !SamePartition(got, want) {
		t.Fatalf("pattern = %s, want ABCDEE", PatternString(got))
	}
}

// 3-wide conv followed by 2-wide max pooling alternates with period 2:
// the paper's §6.2 example expects ABCDCD….
func TestKernel3Pool2PatternPeriodTwo(t *testing.T) {
	pat := probe.Pattern{M: 0, N: 1, Q: 8, FeatRow: 6}
	got := predict(t, pat, 16, 20, [][3]int{{3, 1, 2}})
	// After convergence classes must alternate with period 2 and adjacent
	// probes must differ (the pooling phase).
	for i := 6; i < 8; i++ {
		if got[i] != got[i-2] {
			t.Fatalf("pattern %s: no period-2 convergence", PatternString(got))
		}
	}
	if got[6] == got[7] {
		t.Fatalf("pattern %s: pooling phases collapsed", PatternString(got))
	}
	if SamePartition(got, predict(t, pat, 16, 20, [][3]int{{3, 1, 1}})) {
		t.Fatal("pool=2 and pool=1 predictions identical")
	}
}

// Stride-2 convolutions alias adjacent probes into the same output phase.
func TestStride2PatternDiffersFromStride1(t *testing.T) {
	pat := probe.Pattern{M: 0, N: 1, Q: 8, FeatRow: 0}
	s1 := predict(t, pat, 1, 20, [][3]int{{3, 1, 1}})
	s2 := predict(t, pat, 1, 20, [][3]int{{3, 2, 1}})
	if SamePartition(s1, s2) {
		t.Fatal("stride 1 and 2 predictions identical")
	}
}

// Hypotheses must be pairwise distinguishable for the 2-d probe geometry the
// attack actually uses; otherwise the prober cannot converge.
func TestHypothesesDistinguishable2D(t *testing.T) {
	// A single-impulse family alone cannot separate conv3+pool2 from
	// conv5+stride2 (both are ABCDEDED…); combining two feature widths —
	// "multiple carefully constructed images collectively" (§1) — breaks
	// the aliasing.
	fams := []probe.Pattern{
		{M: 0, N: 1, Q: 10, FeatRow: 16},
		{M: 0, N: 2, Q: 10, FeatRow: 16},
	}
	combined := func(layers [][3]int) []int {
		var joint []string
		for fi, pat := range fams {
			p := predict(t, pat, 32, 32, layers)
			for i, c := range p {
				for len(joint) <= i {
					joint = append(joint, "")
				}
				joint[i] += string(rune('a'+fi)) + PatternString([]int{c})
			}
		}
		return ClassPattern(joint)
	}
	type hyp struct{ k, s, p int }
	var hyps []hyp
	var pats [][]int
	for _, k := range []int{1, 3, 5, 7} {
		for _, s := range []int{1, 2} {
			for _, p := range []int{1, 2} {
				if k == 1 && p > 1 {
					// Pooling after a pointwise conv produces no boundary
					// effect and is excluded from the hypothesis space by
					// prior (pooling follows spatial convolutions in the
					// paper's workloads).
					continue
				}
				hyps = append(hyps, hyp{k, s, p})
				pats = append(pats, combined([][3]int{{k, s, p}}))
			}
		}
	}
	for i := range hyps {
		for j := i + 1; j < len(hyps); j++ {
			if SamePartition(pats[i], pats[j]) {
				// The single known alias under "same" padding: conv3+pool2
				// and conv5+stride2 share shift group and boundary span.
				// The attack carries both candidates and breaks the tie
				// with a smaller-kernel prior (see huffduff).
				if hyps[i] == (hyp{3, 1, 2}) && hyps[j] == (hyp{5, 2, 1}) {
					continue
				}
				t.Fatalf("hypotheses %+v and %+v indistinguishable (pattern %s)",
					hyps[i], hyps[j], PatternString(pats[i]))
			}
		}
	}
}

// Second-layer geometry must be distinguishable after a known first layer
// (the downstream-probing claim of §5.3).
func TestDownstreamLayerDistinguishable(t *testing.T) {
	pat := probe.Pattern{M: 0, N: 1, Q: 12, FeatRow: 16}
	first := [3]int{3, 1, 1}
	a := predict(t, pat, 32, 32, [][3]int{first, {3, 1, 1}})
	b := predict(t, pat, 32, 32, [][3]int{first, {1, 1, 1}})
	c := predict(t, pat, 32, 32, [][3]int{first, {5, 1, 1}})
	d := predict(t, pat, 32, 32, [][3]int{first, {3, 2, 1}})
	pats := [][]int{a, b, c, d}
	for i := range pats {
		for j := i + 1; j < len(pats); j++ {
			if SamePartition(pats[i], pats[j]) {
				t.Fatalf("downstream hypotheses %d and %d indistinguishable", i, j)
			}
		}
	}
}

// The symbolic prediction must refine the numerically observed partition on
// a real (random-weight) network — the engine's soundness property: rows
// predicted equal are always observed equal.
func TestPredictionRefinesNumericObservation(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	pat := probe.Pattern{M: 0, N: 1, Q: 8, FeatRow: 16}
	h, w := 32, 32

	for trial := 0; trial < 5; trial++ {
		kernel := []int{1, 3, 5}[trial%3]
		// Numeric single-channel conv + bias + ReLU.
		conv := nn.NewConv2D(rng, 1, 4, kernel, 1, nn.SamePad(kernel), 1, true)
		conv.Bias.W.Uniform(rng, -0.1, 0.1)
		relu := nn.NewReLU()

		vals := probe.RandomValues(rng, pat)
		var nnzs []int
		for i := 0; i < pat.Q; i++ {
			img := probe.Image(pat, vals, i, 1, h, w)
			out := relu.Forward(conv.Forward(img.Reshape(1, 1, h, w), false), false)
			nnzs = append(nnzs, out.NNZ(0))
		}
		observed := ClassPattern(nnzs)
		predicted := predict(t, pat, h, w, [][3]int{{kernel, 1, 1}})
		if !Refines(predicted, observed) {
			t.Fatalf("kernel %d: predicted %s does not refine observed %s",
				kernel, PatternString(predicted), PatternString(observed))
		}
	}
}

func TestAddGrids(t *testing.T) {
	e := NewEngine()
	pat := probe.Pattern{M: 0, N: 1, Q: 2, FeatRow: 0}
	g := e.ProbeGrids(pat, 1, 6)
	sum := e.Add(g[0], g[0])
	if Signature(sum) == Signature(g[0]) {
		t.Fatal("a+a should differ from a")
	}
	sum2 := e.Add(g[0], g[1])
	sum3 := e.Add(g[1], g[0])
	if Signature(sum2) != Signature(sum3) {
		t.Fatal("grid addition not commutative")
	}
}

func TestAddShapeMismatchPanics(t *testing.T) {
	e := NewEngine()
	pat := probe.Pattern{M: 0, N: 1, Q: 1, FeatRow: 0}
	a := e.ProbeGrid(pat, 0, 1, 4)
	b := e.ProbeGrid(pat, 0, 1, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Add(a, b)
}

func TestClassPatternAndHelpers(t *testing.T) {
	p := ClassPattern([]int{7, 7, 3, 7, 9})
	want := []int{0, 0, 1, 0, 2}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("ClassPattern = %v", p)
		}
	}
	if NumClasses(p) != 3 {
		t.Fatalf("NumClasses = %d", NumClasses(p))
	}
	if PatternString(p) != "AABAC" {
		t.Fatalf("PatternString = %s", PatternString(p))
	}
}

func TestRefines(t *testing.T) {
	fine := []int{0, 1, 2, 2}
	coarse := []int{0, 0, 1, 1}
	if !Refines(fine, coarse) {
		t.Fatal("ABCC should refine AABB")
	}
	if Refines(coarse, fine) {
		t.Fatal("AABB should not refine ABCC")
	}
	if !SamePartition(fine, []int{5, 9, 1, 1}) {
		t.Fatal("relabelled partitions should match")
	}
	if Refines([]int{0}, []int{0, 1}) {
		t.Fatal("length mismatch should not refine")
	}
}

// sanity: AvgPool collapses like a linear map (period behaviour similar to
// maxpool for class prediction).
func TestAvgPoolChangesPattern(t *testing.T) {
	pat := probe.Pattern{M: 0, N: 1, Q: 8, FeatRow: 0}
	e := NewEngine()
	grids := e.ProbeGrids(pat, 1, 20)
	var sigsPool, sigsNo []string
	for _, g := range grids {
		c := e.Conv(g, "l0", 3, 1)
		sigsNo = append(sigsNo, Signature(c))
		sigsPool = append(sigsPool, Signature(e.AvgPool(c, 2)))
	}
	if SamePartition(ClassPattern(sigsNo), ClassPattern(sigsPool)) {
		t.Fatal("avg pooling did not change the predicted pattern")
	}
}

// tensor import is needed for the numeric cross-check helper types.
var _ = tensor.New
