// Quickstart: deploy a small pruned CNN on the simulated sparse accelerator
// and steal its architecture through the DRAM side channel — in under a
// minute.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/huffduff/huffduff"
)

func main() {
	log.SetFlags(0)

	// 1. The vendor: build a secret model and prune it for the edge.
	rng := rand.New(rand.NewSource(7))
	secret := huffduff.SmallCNN()
	bind, err := secret.Build(rng)
	if err != nil {
		log.Fatal(err)
	}
	huffduff.PruneGlobal(bind.Net.Params(), 0.5)
	fmt.Printf("victim deployed: %s (%.0f%% pruned)\n",
		secret.Name, 100*huffduff.OverallSparsity(bind.Net.Params()))

	// 2. Deploy on a sparse accelerator. The attacker can only feed inputs
	// and watch encrypted DRAM traffic volumes and timing.
	device := huffduff.NewMachine(huffduff.DefaultAccelConfig(), secret, bind)

	// 3. The attacker: run HuffDuff.
	res, err := huffduff.Attack(device, huffduff.DefaultAttackConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nrecovered dataflow graph:")
	fmt.Print(res.Graph.String())

	fmt.Println("recovered conv geometry:")
	for node := 1; node <= 3; node++ {
		geom := res.Probe.Geoms[node]
		fmt.Printf("  c%d: kernel %dx%d, stride %d, pool %d (k-ratio %.2f)\n",
			node, geom.Kernel, geom.Kernel, geom.Stride, geom.Pool, res.Timing.KRatio[node])
	}

	sp := res.Space
	fmt.Printf("\nsolution space: first-layer channels in [%d,%d] -> %d candidates\n",
		sp.K1Min, sp.K1Max, sp.Count())
	fmt.Printf("(the victim's true first-layer channel count is %d)\n", secret.Units[0].OutC)

	best := huffduff.SampleSolutions(sp, 1, rng)[0]
	fmt.Printf("\none sampled candidate (k1=%d):\n%s", best.K1, best.Arch.String())
}
