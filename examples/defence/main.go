// Evaluate the §9.2 defence: the accelerator randomly leaves zero
// activations uncompressed, randomizing transfer volumes to obfuscate the
// boundary effect. The example sweeps the defence strength against (a) the
// naive prober and (b) the repeated-measurement counter-attack the paper
// anticipates ("this kind of noise could be overcome with repeated trials"),
// and reports the extra inference cost the counter-attack pays.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/huffduff/huffduff"
	"github.com/huffduff/huffduff/internal/accel"
	"github.com/huffduff/huffduff/internal/models"
)

func main() {
	log.SetFlags(0)
	arch := models.SmallCNN()
	rng := rand.New(rand.NewSource(55))
	bind, err := arch.Build(rng)
	if err != nil {
		log.Fatal(err)
	}
	huffduff.PruneGlobal(bind.Net.Params(), 0.5)

	fmt.Printf("%-12s %14s %22s\n", "defence p", "naive attack", "repeated-measurement")
	for _, p := range []float64{0, 0.0002, 0.001, 0.01} {
		naive := tryAttack(arch, bind, p, false)
		tolerant := tryAttack(arch, bind, p, true)
		fmt.Printf("%-12g %14s %22s\n", p, naive, tolerant)
	}
	fmt.Println("\nThe naive prober dies at any nonzero noise (a single spurious byte")
	fmt.Println("breaks nnz-equality), while averaging 25 repeats per probe recovers")
	fmt.Println("the signal until the noise scale approaches the boundary-effect")
	fmt.Println("signal itself — at ~25x the query cost.")
}

func tryAttack(arch *models.Arch, bind *models.Binding, p float64, tolerant bool) string {
	acfg := accel.DefaultConfig()
	acfg.ZeroPadProb = p
	device := huffduff.NewMachine(acfg, arch, bind)
	cfg := huffduff.DefaultAttackConfig()
	cfg.Probe.Trials = 8
	if tolerant {
		cfg.Probe.NoiseTolerant = true
		cfg.Probe.Trials = 4
		cfg.Probe.NoiseRepeats = 25
	}
	res, err := huffduff.Attack(device, cfg)
	if err != nil {
		return "FAILS"
	}
	// Correct iff the first layer's 5x5 kernel was recovered.
	if res.Probe.Geoms[1].Kernel == 5 {
		return fmt.Sprintf("ok (%d candidates)", res.Space.Count())
	}
	return "wrong geometry"
}
