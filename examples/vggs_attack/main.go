// The full pipeline of the paper's evaluation on a width-scaled VGG-S
// victim: train, prune (lottery-ticket style), deploy on the simulated
// accelerator, steal the architecture with HuffDuff, then retrain a sampled
// candidate under the iso-footprint constraint and compare accuracy with
// the victim (a miniature Fig. 4 experiment).
//
// Takes a few minutes on a laptop-class CPU.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/huffduff/huffduff"
)

func main() {
	log.SetFlags(0)
	const scale = 16 // width divisor; lower = closer to the paper, slower

	tr, te := huffduff.Synthetic(11, 1500, 500, 0.08)

	// ---- Vendor side -----------------------------------------------------
	rng := rand.New(rand.NewSource(3))
	victimArch := huffduff.VGGS(scale)
	victim, err := victimArch.Build(rng)
	if err != nil {
		log.Fatal(err)
	}
	cfg := huffduff.DefaultTrainConfig()
	cfg.Epochs = 3
	cfg.Logf = log.Printf
	fmt.Println("training the victim...")
	huffduff.Fit(victim.Net, tr, cfg)
	huffduff.PruneGlobal(victim.Net.Params(), 0.25) // 4x compression
	cfg.Epochs = 2
	huffduff.Fit(victim.Net, tr, cfg) // fine-tune the pruned net
	victimAcc := huffduff.Accuracy(victim.Net, te, 64)
	footprint := victim.Net.NNZParams()
	fmt.Printf("victim: %s, accuracy %.1f%%, %d nonzero weights\n\n",
		victimArch.Name, 100*victimAcc, footprint)

	// ---- Attacker side ---------------------------------------------------
	device := huffduff.NewMachine(huffduff.DefaultAccelConfig(), victimArch, victim)
	atk := huffduff.DefaultAttackConfig()
	atk.Probe.Trials = 24
	fmt.Println("running HuffDuff against the deployed device...")
	res, err := huffduff.Attack(device, atk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solution space: k1 in [%d,%d], %d candidates\n\n",
		res.Space.K1Min, res.Space.K1Max, res.Space.Count())

	// ---- Retrain one sampled candidate, iso-footprint --------------------
	sol := huffduff.SampleSolutions(res.Space, 1, rng)[0]
	fmt.Printf("retraining candidate k1=%d...\n", sol.K1)
	cand, err := sol.Arch.Build(rng)
	if err != nil {
		log.Fatal(err)
	}
	cfg2 := huffduff.DefaultTrainConfig()
	cfg2.Epochs = 3
	cfg2.Logf = log.Printf
	huffduff.Fit(cand.Net, tr, cfg2)
	// Iso-footprint: prune the candidate to the victim's observed nonzero
	// budget, then fine-tune.
	keep := float64(footprint) / float64(cand.Net.NumParams())
	if keep < 1 {
		huffduff.PruneGlobal(cand.Net.Params(), keep)
		cfg2.Epochs = 2
		huffduff.Fit(cand.Net, tr, cfg2)
	}
	candAcc := huffduff.Accuracy(cand.Net, te, 64)
	fmt.Printf("\ncandidate: accuracy %.1f%% with %d nonzero weights\n", 100*candAcc, cand.Net.NNZParams())
	fmt.Printf("victim:    accuracy %.1f%% with %d nonzero weights\n", 100*victimAcc, footprint)
	if candAcc >= victimAcc-0.05 {
		fmt.Println("=> the stolen architecture reaches the victim's accuracy class (Fig. 4).")
	} else {
		fmt.Println("=> candidate below victim accuracy; try more epochs or another sample.")
	}
}
