// Visualize the psum-encoding timing side channel (§7): per-layer encoding
// intervals on the DRAM bus, their proportionality to dense psum volumes
// when the pipeline is GLB-bound, and how the proportionality degrades on a
// bandwidth-starved memory.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"github.com/huffduff/huffduff"
	"github.com/huffduff/huffduff/internal/accel"
	"github.com/huffduff/huffduff/internal/dram"
	"github.com/huffduff/huffduff/internal/models"
	"github.com/huffduff/huffduff/internal/tensor"
	"github.com/huffduff/huffduff/internal/trace"
)

func main() {
	log.SetFlags(0)
	arch := models.ResNet18(16)
	rng := rand.New(rand.NewSource(5))
	bind, err := arch.Build(rng)
	if err != nil {
		log.Fatal(err)
	}
	huffduff.PruneGlobal(bind.Net.Params(), 0.3)

	img := tensor.New(arch.InC, arch.InH, arch.InW)
	img.Uniform(rng, 0, 1)

	for _, mem := range []dram.Spec{dram.LPDDR4(2), {Name: "starved", MTps: 120, BusBytes: 2, Channels: 1, Efficiency: 1}} {
		cfg := accel.DefaultConfig()
		cfg.Mem = mem
		m := accel.NewMachine(cfg, arch, bind)
		tr, err := m.Run(img)
		if err != nil {
			log.Fatal(err)
		}
		obs, err := trace.Analyze(tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== memory: %s ===\n", mem)
		fmt.Printf("%-8s %10s %12s %14s  %s\n", "unit", "psums", "Δt (us)", "Δt/psum (ns)", "Δt scaled")
		for i, u := range arch.Units {
			if u.Kind != models.UnitConv {
				continue
			}
			ps := bind.PsumOut(i).Size()
			dt := obs[i+1].EncodingTime()
			perPsum := dt / float64(ps) * 1e9
			bars := int(perPsum * 8)
			if bars > 60 {
				bars = 60
			}
			fmt.Printf("%-8s %10d %12.2f %14.3f  %s\n",
				u.Name, ps, dt*1e6, perPsum, strings.Repeat("#", bars))
		}
		fmt.Println("GLB-bound encoding keeps Δt/psum flat across layers — that flat")
		fmt.Println("line is the side channel: Δt ratios reveal K ratios.")
	}
}
