// Benchmark harness regenerating every table and figure of the paper's
// evaluation (§8). Each benchmark prints the rows/series the paper reports;
// absolute numbers differ (synthetic dataset, width-scaled victims, CPU
// training — see DESIGN.md), but the shape — who wins, by what factor,
// where crossovers fall — is the reproduction target. EXPERIMENTS.md records
// paper-vs-measured for every row.
//
// Run with: go test -bench=. -benchmem -benchtime=1x
package huffduff_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/huffduff/huffduff"
	"github.com/huffduff/huffduff/internal/accel"
	"github.com/huffduff/huffduff/internal/adv"
	"github.com/huffduff/huffduff/internal/dataset"
	"github.com/huffduff/huffduff/internal/dram"
	attack "github.com/huffduff/huffduff/internal/huffduff"
	"github.com/huffduff/huffduff/internal/models"
	"github.com/huffduff/huffduff/internal/nn"
	"github.com/huffduff/huffduff/internal/obs"
	"github.com/huffduff/huffduff/internal/probe"
	"github.com/huffduff/huffduff/internal/prune"
	"github.com/huffduff/huffduff/internal/reversecnn"
	"github.com/huffduff/huffduff/internal/symconv"
	"github.com/huffduff/huffduff/internal/tensor"
	"github.com/huffduff/huffduff/internal/trace"
	"github.com/huffduff/huffduff/internal/train"
)

// ---------------------------------------------------------------------------
// Table 1 (+ §4.2 in-text): solution-space size, dense vs naïve sparse.
// ---------------------------------------------------------------------------

func BenchmarkTable1SolutionSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Printf("\n[Table 1] solution-space size (paper: dense ResNet-18 = 8; sparse ResNet-18 = 4e96; sparse VGG-S = 2.6e74)\n")
		fmt.Printf("%-12s %16s %14s\n", "network", "dense solutions", "sparse log10")
		for _, arch := range []*models.Arch{models.ResNet18(1), models.VGGS(1)} {
			denseObs, err := reversecnn.FromArch(arch, reversecnn.DenseProfile, 1)
			if err != nil {
				b.Fatal(err)
			}
			chain, _, _ := denseObs.ChainObs()
			sols, err := reversecnn.SolveDense(chain, arch.InH, arch.InC, reversecnn.DefaultSpace(), 0)
			if err != nil {
				b.Fatal(err)
			}
			sparseObs, err := reversecnn.FromArch(arch, reversecnn.LTHProfile, 0.5)
			if err != nil {
				b.Fatal(err)
			}
			count, err := reversecnn.SparseCount(sparseObs.Obs, sparseObs.Xs, sparseObs.Cs, 0.999, reversecnn.DefaultSpace())
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("%-12s %16d %14d\n", arch.Name, len(sols), reversecnn.OrdersOfMagnitude(count))
		}
	}
}

// ---------------------------------------------------------------------------
// §5.2: single-probe boundary-effect observability (paper: ~77%).
// ---------------------------------------------------------------------------

func BenchmarkBoundaryObservability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		arch := models.SmallCNN()
		rng := rand.New(rand.NewSource(21))
		bind, err := arch.Build(rng)
		if err != nil {
			b.Fatal(err)
		}
		prune.GlobalMagnitude(bind.Net.Params(), 0.3)
		m := accel.NewMachine(accel.DefaultConfig(), arch, bind)
		cfg := attack.DefaultConfig()
		cfg.Probe.Trials = 16
		res, err := attack.Attack(m, cfg)
		if err != nil {
			b.Fatal(err)
		}
		rate := attack.ObservabilityRate(res.Data, res.Probe)
		fmt.Printf("\n[§5.2] single-probe boundary-effect observability: %.0f%% (paper: 77%% on pruned kernels)\n", 100*rate)
	}
}

// ---------------------------------------------------------------------------
// §8.2 Prober: geometry convergence vs trial count (paper: 2048 trials
// always sufficient; most layers converge far earlier).
// ---------------------------------------------------------------------------

func BenchmarkProberConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		arch := models.SmallCNN()
		rng := rand.New(rand.NewSource(1234))
		bind, err := arch.Build(rng)
		if err != nil {
			b.Fatal(err)
		}
		prune.GlobalMagnitude(bind.Net.Params(), 0.5)
		m := accel.NewMachine(accel.DefaultConfig(), arch, bind)

		img := tensor.New(arch.InC, arch.InH, arch.InW)
		img.Uniform(rng, 0.05, 0.95)
		tr, err := m.Run(img)
		if err != nil {
			b.Fatal(err)
		}
		segs, err := traceAnalyze(tr)
		if err != nil {
			b.Fatal(err)
		}
		g, err := attack.BuildGraph(segs)
		if err != nil {
			b.Fatal(err)
		}
		cfg := attack.DefaultProbeConfig()
		cfg.Trials = 128
		data, err := attack.Collect(m, g, arch.InC, arch.InH, arch.InW, cfg)
		if err != nil {
			b.Fatal(err)
		}
		truth := map[int]attack.Geom{
			1: {Kernel: 5, Stride: 1, Pool: 1},
			2: {Kernel: 3, Stride: 1, Pool: 2},
			3: {Kernel: 3, Stride: 2, Pool: 1},
		}
		fmt.Printf("\n[§8.2 prober] correct conv geometries vs trial count (3 layers total):\n")
		fmt.Printf("%8s %8s\n", "trials", "correct")
		for _, t := range []int{2, 4, 8, 16, 32, 64, 128} {
			pr, err := data.Solve(t)
			correct := 0
			if err == nil {
				for node, want := range truth {
					if pr.Geoms[node] == want {
						correct++
					}
				}
			}
			fmt.Printf("%8d %8d\n", t, correct)
		}
	}
}

// ---------------------------------------------------------------------------
// §8.2 GLB-bound table: extra GLB bandwidth before the first DRAM-bound
// layer, per memory configuration.
// ---------------------------------------------------------------------------

func BenchmarkGLBBoundTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Printf("\n[§8.2 table] GLB headroom multiplier before a layer becomes DRAM-bound\n")
		fmt.Printf("(paper: VGG-S 2/4/2.3/4.6/2.7/5.3; ResNet-18 1.8/3.5/2/4.1/2.3/4.7)\n")
		fmt.Printf("%-12s", "network")
		for _, mem := range dram.EvaluatedSpecs() {
			fmt.Printf(" %9s-%d", strings.SplitN(mem.Name, "-", 2)[0], mem.Channels)
		}
		fmt.Println()
		for _, mk := range []func(int) *models.Arch{models.VGGS, models.ResNet18} {
			arch := mk(8)
			rng := rand.New(rand.NewSource(2))
			bind, err := arch.Build(rng)
			if err != nil {
				b.Fatal(err)
			}
			prune.GlobalMagnitude(bind.Net.Params(), 0.1)
			cfg := accel.DefaultConfig()
			m := accel.NewMachine(cfg, arch, bind)
			img := tensor.New(arch.InC, arch.InH, arch.InW)
			img.Uniform(rng, 0, 1)
			if _, err := m.Run(img); err != nil {
				b.Fatal(err)
			}
			fmt.Printf("%-12s", arch.Name)
			for _, mem := range dram.EvaluatedSpecs() {
				c := cfg
				c.Mem = mem
				headroom := 1e18
				for u, unit := range arch.Units {
					if unit.Kind != models.UnitConv {
						continue
					}
					psums := bind.PsumOut(u).Size()
					out := bind.UnitTensor(u)
					outBytes := c.ActCodec.Size(out.Data)
					glb, dr := accel.EncodingBounds(c, psums, outBytes)
					if h := glb / dr; h < headroom {
						headroom = h
					}
				}
				fmt.Printf(" %11.1f", headroom)
			}
			fmt.Println()
		}
	}
}

// ---------------------------------------------------------------------------
// §8.2 Finalizing: first-layer channel range and final solution count
// (paper: ResNet-18 [30,73] → 44 solutions; VGG-S [58,123] → 66).
// ---------------------------------------------------------------------------

func BenchmarkSolutionSpaceFinal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fmt.Printf("\n[§8.2 finalizing] first-layer channel range and solution count\n")
		fmt.Printf("(paper, full-size victims: ResNet-18 [30,73] -> 44; VGG-S [58,123] -> 66)\n")
		fmt.Printf("%-14s %8s %12s %10s %10s\n", "victim", "true k1", "k1 range", "solutions", "truth in")
		for _, mk := range []func(int) *models.Arch{models.ResNet18, models.VGGS} {
			arch := mk(8)
			rng := rand.New(rand.NewSource(3))
			bind, err := arch.Build(rng)
			if err != nil {
				b.Fatal(err)
			}
			prune.GlobalMagnitude(bind.Net.Params(), 0.4)
			m := accel.NewMachine(accel.DefaultConfig(), arch, bind)
			cfg := attack.DefaultConfig()
			cfg.Probe.Trials = 16
			res, err := attack.Attack(m, cfg)
			if err != nil {
				b.Fatalf("%s: %v", arch.Name, err)
			}
			trueK1 := arch.Units[arch.ConvUnits()[0]].OutC
			in := trueK1 >= res.Space.K1Min && trueK1 <= res.Space.K1Max
			fmt.Printf("%-14s %8d [%4d,%4d] %10d %10v\n",
				arch.Name, trueK1, res.Space.K1Min, res.Space.K1Max, res.Space.Count(), in)
		}
	}
}

// ---------------------------------------------------------------------------
// Shared setup for the accuracy/transfer figures: trained victim, candidate
// architectures from the attack, and baselines.
// ---------------------------------------------------------------------------

type surrogate struct {
	name string
	bind *models.Binding
	acc  float64
}

type figSetup struct {
	once sync.Once
	err  error

	tr, te    *dataset.Dataset
	victimAcc float64
	victim    *models.Binding
	varch     *models.Arch
	footprint int
	space     *attack.SolutionSpace

	baseline   surrogate   // Fig. 4 prior-generation baseline
	transfers  []surrogate // Fig. 5/6 baselines B1–B4
	candidates []surrogate // sampled HuffDuff candidates
	oracle     surrogate
}

var figs figSetup

// init trains the victim, runs the attack, and trains every surrogate the
// accuracy/transfer figures share — once for all figure benchmarks.
func (f *figSetup) init(b *testing.B) {
	f.once.Do(func() {
		// This exact recipe (1200 samples, 3 epochs + prune + 2 fine-tune
		// epochs, seed 10) trains the scaled ResNet victim to ~70 %;
		// trimming samples or the fine-tune destabilizes SGD at this width
		// and collapses the victim, voiding the transfer figures.
		f.tr, f.te = dataset.Synthetic(77, 1200, 400, 0.1)
		rng := rand.New(rand.NewSource(10))
		f.varch = models.ResNet18(16)
		bind, err := f.varch.Build(rng)
		if err != nil {
			f.err = err
			return
		}
		cfg := train.DefaultConfig()
		cfg.Epochs = 3
		train.Fit(bind.Net, f.tr, cfg)
		prune.GlobalMagnitude(bind.Net.Params(), 0.3)
		cfg.Epochs = 2
		train.Fit(bind.Net, f.tr, cfg)
		f.victim = bind
		f.victimAcc = train.Accuracy(bind.Net, f.te, 64)
		f.footprint = bind.Net.NNZParams()

		m := accel.NewMachine(accel.DefaultConfig(), f.varch, bind)
		acfg := attack.DefaultConfig()
		acfg.Probe.Trials = 16
		res, err := attack.Attack(m, acfg)
		if err != nil {
			f.err = fmt.Errorf("attack on trained victim: %w", err)
			return
		}
		f.space = res.Space

		// keep is relative to the surrogate's own weight count (the paper
		// prunes baselines "2x" and "5x"); 1 disables pruning.
		mk := func(name string, arch *models.Arch, keep float64, seed int64) surrogate {
			footprint := 0
			if keep < 1 {
				wc, err := arch.WeightCount()
				if err != nil {
					f.err = err
					return surrogate{}
				}
				footprint = int(float64(wc) * keep)
			}
			bind, err := trainCandidate(arch, seed, f.tr, footprint)
			if err != nil {
				f.err = err
				return surrogate{}
			}
			return surrogate{name: name, bind: bind, acc: train.Accuracy(bind.Net, f.te, 64)}
		}
		f.baseline = mk("baseline (vgg-s)", models.VGGS(16), 1, 100)
		f.transfers = []surrogate{
			mk("B1 vgg-s 2x pruned", models.VGGS(16), 0.5, 301),
			mk("B2 vgg-s 5x pruned", models.VGGS(16), 0.2, 302),
			mk("B3 mobilenetv2 2x pruned", models.MobileNetV2(16), 0.5, 303),
			mk("B4 mobilenetv2 5x pruned", models.MobileNetV2(16), 0.2, 304),
		}
		rng2 := rand.New(rand.NewSource(45))
		for si, sol := range attack.SampleSolutions(f.space, 2, rng2) {
			name := fmt.Sprintf("huffduff candidate k1=%d", sol.K1)
			f.candidates = append(f.candidates, mk(name, sol.Arch, 1, int64(400+si)))
		}
		f.oracle = mk("oracle (true arch)", models.ResNet18(16), 1, 500)
	})
	if f.err != nil {
		b.Fatal(f.err)
	}
}

// trainCandidate builds, trains, and (when footprint > 0) prunes a network
// to the given absolute nonzero budget with a fine-tuning pass.
func trainCandidate(arch *models.Arch, seed int64, tr *dataset.Dataset, footprint int) (*models.Binding, error) {
	rng := rand.New(rand.NewSource(seed))
	bind, err := arch.Build(rng)
	if err != nil {
		return nil, err
	}
	cfg := train.DefaultConfig()
	cfg.Epochs = 3
	cfg.Seed = seed
	train.Fit(bind.Net, tr, cfg)
	if footprint > 0 {
		if keep := float64(footprint) / float64(bind.Net.NumParams()); keep < 1 {
			prune.GlobalMagnitude(bind.Net.Params(), keep)
			cfg.Epochs = 1
			train.Fit(bind.Net, tr, cfg)
		}
	}
	return bind, nil
}

// ---------------------------------------------------------------------------
// Fig. 4: accuracy of sampled candidates vs prior-generation baseline under
// the iso-footprint constraint.
// ---------------------------------------------------------------------------

func BenchmarkFig4Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs.init(b)
		fmt.Printf("\n[Fig. 4] accuracy, victim %s at %.1f%% (footprint %d nnz)\n",
			figs.varch.Name, 100*figs.victimAcc, figs.footprint)
		fmt.Printf("%-28s accuracy %5.1f%%\n", figs.baseline.name, 100*figs.baseline.acc)
		for _, c := range figs.candidates {
			fmt.Printf("%-28s accuracy %5.1f%%\n", c.name, 100*c.acc)
		}
		fmt.Printf("%-28s accuracy %5.1f%%  (paper: candidates beat the prior-generation baseline and approach the victim)\n",
			"victim", 100*figs.victimAcc)
	}
}

// ---------------------------------------------------------------------------
// Figs. 5 and 6: black-box targeted transfer success, ε = 32 and ε = 16.
// ---------------------------------------------------------------------------

func transferFigure(b *testing.B, eps float64) {
	figs.init(b)
	cfg := adv.DefaultBIM(eps)
	const evalN = 30

	fmt.Printf("\n[Fig. %d] targeted transfer success (least-likely label, eps=%g/255)\n", map[float64]int{32: 5, 16: 6}[eps], eps)
	report := func(s surrogate) {
		res, err := adv.EvaluateTransfer(figs.victim.Net, s.bind.Net, figs.te, evalN, cfg)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("%-28s %5.1f%% (%d/%d)\n", s.name, 100*res.Rate(), res.Successes, res.Total)
	}
	for _, s := range figs.transfers {
		report(s)
	}
	for _, s := range figs.candidates {
		report(s)
	}
	report(figs.oracle)
}

func BenchmarkFig5Transfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		transferFigure(b, 32)
	}
}

func BenchmarkFig6Transfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		transferFigure(b, 16)
	}
}

// ---------------------------------------------------------------------------
// Observability overhead: the same SmallCNN campaign with instrumentation
// disabled (nil Recorder), a no-op Recorder (full call dispatch, no
// storage), and the in-memory Collector. The nil path is the acceptance
// bar: ≤2% over the uninstrumented baseline.
// ---------------------------------------------------------------------------

func BenchmarkRecorderOverhead(b *testing.B) {
	campaign := func(rec huffduff.ObsRecorder) float64 {
		arch := models.SmallCNN()
		rng := rand.New(rand.NewSource(21))
		bind, err := arch.Build(rng)
		if err != nil {
			b.Fatal(err)
		}
		prune.GlobalMagnitude(bind.Net.Params(), 0.5)
		m := accel.NewMachine(accel.DefaultConfig(), arch, bind)
		cfg := attack.DefaultConfig()
		cfg.Probe.Trials = 8
		cfg.Obs = rec
		start := time.Now()
		if _, err := attack.Attack(m, cfg); err != nil {
			b.Fatal(err)
		}
		return time.Since(start).Seconds()
	}
	for i := 0; i < b.N; i++ {
		campaign(nil) // warm caches so the baseline isn't penalized
		base := campaign(nil)
		noop := campaign(obs.Noop())
		coll := campaign(obs.NewCollector())
		pct := func(v float64) float64 { return 100 * (v - base) / base }
		fmt.Printf("\n[obs overhead] SmallCNN campaign: nil %.3fs, Noop %.3fs (%+.1f%%), Collector %.3fs (%+.1f%%)\n",
			base, noop, pct(noop), coll, pct(coll))
		fmt.Println("acceptance: disabled instrumentation (nil Recorder) costs ≤2%.")
	}
}

// ---------------------------------------------------------------------------
// Ablation: exact hash-consed symbolic engine vs numeric random evaluation
// for pattern prediction (DESIGN.md design-choice ablation).
// ---------------------------------------------------------------------------

func BenchmarkAblationSymbolicVsNumeric(b *testing.B) {
	pat := probe.Pattern{M: 0, N: 1, Q: 16, FeatRow: 16}
	layers := [][3]int{{5, 1, 1}, {3, 1, 2}, {3, 2, 1}}
	for i := 0; i < b.N; i++ {
		// Symbolic prediction.
		eng := symconv.NewEngine()
		symKeys := make([]string, pat.Q)
		for q := 0; q < pat.Q; q++ {
			g := eng.ProbeGrid(pat, q, 32, 32)
			for li, l := range layers {
				g = eng.MaxPool(eng.Conv(g, fmt.Sprintf("l%d", li), l[0], l[1]), l[2])
			}
			symKeys[q] = symconv.Signature(g)
		}
		symPat := symconv.ClassPattern(symKeys)

		// Numeric random-evaluation surrogate: same structure, random
		// weights, exact float comparison of sorted outputs.
		rng := rand.New(rand.NewSource(9))
		numPat := numericPattern(rng, pat, layers)
		agree := symconv.SamePartition(symPat, numPat)
		if i == 0 {
			fmt.Printf("\n[ablation] symbolic %s vs numeric %s (agree: %v)\n",
				symconv.PatternString(symPat), symconv.PatternString(numPat), agree)
			fmt.Println("numeric evaluation reproduces the partition with high probability but")
			fmt.Println("carries a Schwartz-Zippel-style failure probability the exact engine avoids.")
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation: timing-channel k-ratio error with and without the Δt head
// correction, across DRAM block sizes.
// ---------------------------------------------------------------------------

func BenchmarkAblationTimingCorrection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		arch := models.SmallCNN() // true k-ratios 1 : 2 : 2
		rng := rand.New(rand.NewSource(12))
		bind, err := arch.Build(rng)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\n[ablation] timing k-ratio relative error vs DRAM block size\n")
		fmt.Printf("%8s %14s %14s\n", "block", "uncorrected", "corrected")
		for _, block := range []int{32, 64, 128, 256} {
			cfg := accel.DefaultConfig()
			cfg.BlockBytes = block
			m := accel.NewMachine(cfg, arch, bind)
			errU, errC := timingErrors(b, m, arch, block)
			fmt.Printf("%8d %13.1f%% %13.1f%%\n", block, 100*errU, 100*errC)
		}
	}
}

func timingErrors(b *testing.B, m *accel.Machine, arch *models.Arch, block int) (uncorrected, corrected float64) {
	rng := rand.New(rand.NewSource(13))
	img := tensor.New(arch.InC, arch.InH, arch.InW)
	img.Uniform(rng, 0.05, 0.95)
	tr, err := m.Run(img)
	if err != nil {
		b.Fatal(err)
	}
	segs, err := traceAnalyze(tr)
	if err != nil {
		b.Fatal(err)
	}
	trueRatio := map[int]float64{1: 1, 2: 2, 3: 2}
	// Pre-pool psum spatial sizes: c1 32², c2 32² (pool follows), c3 8²
	// (16×16 input, stride 2).
	truePsum := map[int]int{1: 32 * 32, 2: 32 * 32, 3: 8 * 8}
	measure := func(correct bool) float64 {
		perK := map[int]float64{}
		for node := 1; node <= 3; node++ {
			dt := segs[node].EncodingTime()
			if correct && segs[node].OutputBytes > block {
				dt = dt * float64(segs[node].OutputBytes) / float64(segs[node].OutputBytes-block)
			}
			perK[node] = dt / float64(truePsum[node])
		}
		worst := 0.0
		for node, want := range trueRatio {
			got := perK[node] / perK[1]
			if e := abs(got-want) / want; e > worst {
				worst = e
			}
		}
		return worst
	}
	return measure(false), measure(true)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// traceAnalyze is a tiny alias keeping call sites readable.
func traceAnalyze(tr *huffduff.Trace) ([]trace.SegmentObs, error) { return trace.Analyze(tr) }

// numericPattern is the random-evaluation surrogate of the symbolic engine:
// it instantiates the same probe structure with random values and random
// weights and classifies probes by the exact multiset of output values.
func numericPattern(rng *rand.Rand, pat probe.Pattern, layers [][3]int) []int {
	vals := probe.RandomValues(rng, pat)
	var nets []nn.Layer
	for _, l := range layers {
		var inC int = 1
		conv := nn.NewConv2D(rng, inC, 1, l[0], l[1], nn.SamePad(l[0]), 1, true)
		conv.Bias.W.Uniform(rng, -0.2, 0.2)
		nets = append(nets, conv)
		if l[2] > 1 {
			nets = append(nets, nn.NewMaxPool2D(l[2]))
		}
	}
	keys := make([]string, pat.Q)
	for q := 0; q < pat.Q; q++ {
		x := probe.Image(pat, vals, q, 1, 32, 32).Reshape(1, 1, 32, 32)
		for _, l := range nets {
			x = l.Forward(x, false)
		}
		sorted := append([]float64(nil), x.Data...)
		sort.Float64s(sorted)
		keys[q] = fmt.Sprintf("%v", sorted)
	}
	return symconv.ClassPattern(keys)
}
