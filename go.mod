module github.com/huffduff/huffduff

go 1.22
