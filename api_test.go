package huffduff_test

import (
	"math/rand"
	"testing"

	"github.com/huffduff/huffduff"
)

// TestPublicAPIEndToEnd exercises the documented public facade exactly as
// the README quick start does.
func TestPublicAPIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end attack")
	}
	rng := rand.New(rand.NewSource(7))
	secret := huffduff.SmallCNN()
	bind, err := secret.Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	huffduff.PruneGlobal(bind.Net.Params(), 0.5)
	if sp := huffduff.OverallSparsity(bind.Net.Params()); sp < 0.45 || sp > 0.55 {
		t.Fatalf("sparsity = %g", sp)
	}
	device := huffduff.NewMachine(huffduff.DefaultAccelConfig(), secret, bind)
	res, err := huffduff.Attack(device, huffduff.DefaultAttackConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Space.Count() < 1 || res.Space.Count() > 100 {
		t.Fatalf("solution count %d out of the feasibly-testable range", res.Space.Count())
	}
	trueK1 := secret.Units[0].OutC
	if trueK1 < res.Space.K1Min || trueK1 > res.Space.K1Max {
		t.Fatalf("true k1 %d outside [%d,%d]", trueK1, res.Space.K1Min, res.Space.K1Max)
	}
	sols := huffduff.SampleSolutions(res.Space, 2, rng)
	for _, s := range sols {
		if _, err := s.Arch.Build(rng); err != nil {
			t.Fatalf("sampled arch unbuildable: %v", err)
		}
	}
}

// TestPublicAPITrainingPath covers the data/training/adversarial facade.
func TestPublicAPITrainingPath(t *testing.T) {
	if testing.Short() {
		t.Skip("training")
	}
	tr, te := huffduff.Synthetic(5, 200, 50, 0.05)
	rng := rand.New(rand.NewSource(9))
	bind, err := huffduff.SmallCNN().Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := huffduff.DefaultTrainConfig()
	cfg.Epochs = 2
	huffduff.Fit(bind.Net, tr, cfg)
	acc := huffduff.Accuracy(bind.Net, te, 32)
	// API smoke test, not a learning benchmark: two epochs on 200 samples
	// of the deliberately hard synthetic task just needs to beat chance.
	if acc < 0.15 {
		t.Fatalf("accuracy %.2f too low", acc)
	}
	res, err := huffduff.EvaluateTransfer(bind.Net, bind.Net, te, 10, huffduff.DefaultBIM(32))
	if err != nil {
		t.Fatal(err)
	}
	if res.Total == 0 {
		t.Fatal("no transfer evaluations ran")
	}
}

// TestModelZooScales ensures every public constructor produces valid archs
// across scales.
func TestModelZooScales(t *testing.T) {
	for _, mk := range []func(int) *huffduff.Arch{huffduff.VGGS, huffduff.ResNet18, huffduff.AlexNet, huffduff.MobileNetV2} {
		for _, scale := range []int{1, 4, 16} {
			a := mk(scale)
			if err := a.Validate(); err != nil {
				t.Fatalf("%s: %v", a.Name, err)
			}
		}
	}
}

// TestDRAMFacade covers the re-exported memory constructors.
func TestDRAMFacade(t *testing.T) {
	if huffduff.LPDDR3(1).Bandwidth() >= huffduff.LPDDR4X(1).Bandwidth() {
		t.Fatal("memory generations out of order")
	}
}

// TestCampaignStoreFacade covers the re-exported campaign-history store:
// both constructors satisfy the interface and serve an identical record.
func TestCampaignStoreFacade(t *testing.T) {
	rec := huffduff.StoredCampaign{
		ID: 1, Model: "smallcnn", State: "done",
		FinishedNS: 1_700_000_000_000_000_000, WallSeconds: 2.5, Queries: 120,
		Payload: []byte(`{"id":1}`),
	}
	stores := map[string]huffduff.CampaignStore{"memory": huffduff.NewMemoryCampaignStore()}
	seg, err := huffduff.OpenCampaignStore(t.TempDir(), huffduff.CampaignStoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	stores["segment"] = seg
	for name, s := range stores {
		if err := s.PutCampaign(rec); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := s.Campaigns(huffduff.CampaignQuery{Model: "smallcnn", State: "done"})
		if err != nil || len(got) != 1 || got[0].ID != 1 {
			t.Fatalf("%s: got %v, %v", name, got, err)
		}
		aggs, err := s.AggregateByModel()
		if err != nil || len(aggs) != 1 || aggs[0].Model != "smallcnn" || aggs[0].Done != 1 {
			t.Fatalf("%s aggregate: got %+v, %v", name, aggs, err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("%s close: %v", name, err)
		}
	}
}
