package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/huffduff/huffduff/internal/chaos"
	"github.com/huffduff/huffduff/internal/telemetry"
)

// daemonRestart benchmarks the crash-recovery path of the campaign daemon:
// three campaigns are journaled, the daemon is killed with one wedged
// mid-run (chaos stall), and a second daemon replays the journal and runs
// everything to completion. Wall time covers submit -> kill -> replay ->
// drain; the count metrics are ungated sanity signals (campaigns_resumed
// and campaigns_completed must both be 3 for the scenario to return at
// all), so the scenario is safe under -deterministic-only gating.
func daemonRestart() (Metrics, error) {
	const campaigns = 3
	dir, err := os.MkdirTemp("", "huffbench-daemon-*")
	if err != nil {
		return nil, fmt.Errorf("daemon_restart: %w", err)
	}
	defer os.RemoveAll(dir)
	spec := telemetry.JobSpec{Model: "smallcnn", Trials: 2, Q: 6}
	start := time.Now()

	// Phase 1: every victim run stalls, so the first campaign wedges and
	// the rest queue. Kill() simulates process death: nothing after the
	// kill reaches the journal.
	j1, err := telemetry.OpenJournal(dir, telemetry.JournalConfig{})
	if err != nil {
		return nil, fmt.Errorf("daemon_restart: %w", err)
	}
	stall := chaos.NewDaemonFaults(chaos.DaemonFaultsConfig{StallProb: 1})
	d1 := telemetry.NewDaemon(telemetry.DaemonConfig{
		Workers: 1, QueueDepth: campaigns, Journal: j1, Faults: stall,
	})
	for i := 0; i < campaigns; i++ {
		if _, err := d1.Submit(spec); err != nil {
			return nil, fmt.Errorf("daemon_restart submit: %w", err)
		}
	}
	deadline := time.Now().Add(time.Minute)
	for {
		if snap, ok := d1.CampaignByID(1); ok && snap.State == telemetry.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("daemon_restart: campaign 1 never reached running")
		}
		time.Sleep(5 * time.Millisecond)
	}
	d1.Kill()
	if err := j1.Close(); err != nil {
		return nil, fmt.Errorf("daemon_restart: %w", err)
	}

	// Phase 2: restart on the same journal directory and drain for real.
	j2, err := telemetry.OpenJournal(dir, telemetry.JournalConfig{})
	if err != nil {
		return nil, fmt.Errorf("daemon_restart replay: %w", err)
	}
	resumed := 0
	for _, rc := range j2.Replayed() {
		if !rc.Terminal() {
			resumed++
		}
	}
	d2 := telemetry.NewDaemon(telemetry.DaemonConfig{
		Workers: 2, QueueDepth: campaigns, Journal: j2,
	})
	deadline = time.Now().Add(5 * time.Minute)
	completed := 0
	for completed < campaigns {
		completed = 0
		for _, c := range d2.Campaigns() {
			if c.State == telemetry.StateDone {
				completed++
			} else if c.State == telemetry.StateFailed {
				return nil, fmt.Errorf("daemon_restart: resumed campaign %d failed: %s", c.ID, c.Error)
			}
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("daemon_restart: %d/%d campaigns finished before timeout", completed, campaigns)
		}
		time.Sleep(20 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := d2.Shutdown(ctx); err != nil {
		return nil, fmt.Errorf("daemon_restart shutdown: %w", err)
	}
	stats := j2.Stats()
	if err := j2.Close(); err != nil {
		return nil, fmt.Errorf("daemon_restart: %w", err)
	}
	return Metrics{
		"wall_seconds":        time.Since(start).Seconds(),
		"campaigns_resumed":   float64(resumed),
		"campaigns_completed": float64(completed),
		"journal_appends":     float64(stats.Appends),
	}, nil
}
