package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func discard(string, ...any) {}

// fakeScenarios returns instant scenarios with deterministic metrics so the
// append/gate logic can be tested without multi-second attack runs.
func fakeScenarios() []scenario {
	return []scenario{
		{"attack_fake", func() (Metrics, error) {
			return Metrics{
				"wall_seconds":   1.0,
				"victim_queries": 100,
				"device_seconds": 0.5,
				"device_cycles":  1e8,
				"solution_count": 4,
			}, nil
		}},
		{"encode_fake", func() (Metrics, error) {
			return Metrics{"values_per_second": 1e6, "bytes_per_second": 1e5}, nil
		}},
	}
}

func TestAppendsAndGates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_pipeline.json")

	// First run: no history, gate vacuously passes, record written.
	bad, err := runBench(path, fakeScenarios(), nil, true, false, discard)
	if err != nil || len(bad) != 0 {
		t.Fatalf("first run: regressions=%v err=%v", bad, err)
	}
	recs, err := loadRecords(path)
	if err != nil || len(recs) != 1 {
		t.Fatalf("after first run: %d records, err=%v", len(recs), err)
	}
	for _, m := range []string{"wall_seconds", "victim_queries", "device_cycles"} {
		if _, ok := recs[0].Scenarios["attack_fake"][m]; !ok {
			t.Errorf("record missing %s", m)
		}
	}
	if recs[0].Timestamp == "" || recs[0].GoVersion == "" {
		t.Errorf("record missing provenance: %+v", recs[0])
	}

	// Second run: appends rather than overwrites, identical metrics pass.
	bad, err = runBench(path, fakeScenarios(), nil, true, false, discard)
	if err != nil || len(bad) != 0 {
		t.Fatalf("second run: regressions=%v err=%v", bad, err)
	}
	if recs, _ = loadRecords(path); len(recs) != 2 {
		t.Fatalf("second run did not append: %d records", len(recs))
	}

	// Third run with an injected 2x slowdown: the wall-time gate trips.
	bad, err = runBench(path, fakeScenarios(), slowdowns{"attack_fake": 2}, true, false, discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || !strings.Contains(bad[0], "attack_fake: wall_seconds") {
		t.Fatalf("2x slowdown not caught: %v", bad)
	}
	// The regressed record is still appended — the trajectory keeps the
	// bad data point, the exit code carries the verdict.
	if recs, _ = loadRecords(path); len(recs) != 3 {
		t.Fatalf("regressed run not recorded: %d records", len(recs))
	}

	// Fourth run with -no-gate: same slowdown, no failure.
	bad, err = runBench(path, fakeScenarios(), slowdowns{"attack_fake": 4}, false, false, discard)
	if err != nil || len(bad) != 0 {
		t.Fatalf("no-gate run: regressions=%v err=%v", bad, err)
	}
}

func TestCompareRules(t *testing.T) {
	prev := Record{Scenarios: map[string]Metrics{
		"s": {"wall_seconds": 1, "victim_queries": 100, "values_per_second": 1e6, "unguarded": 1},
	}}
	cases := []struct {
		name string
		next Metrics
		want int
	}{
		{"identical", Metrics{"wall_seconds": 1, "victim_queries": 100, "values_per_second": 1e6}, 0},
		{"within wall threshold", Metrics{"wall_seconds": 1.5}, 0},
		{"wall regression", Metrics{"wall_seconds": 2.0}, 1},
		{"query regression", Metrics{"victim_queries": 120}, 1},
		{"throughput collapse", Metrics{"values_per_second": 4e5}, 1},
		{"throughput improvement", Metrics{"values_per_second": 5e6}, 0},
		{"unguarded metric ignored", Metrics{"unguarded": 100}, 0},
		{"new metric ignored", Metrics{"brand_new": 5}, 0},
	}
	for _, c := range cases {
		next := Record{Scenarios: map[string]Metrics{"s": c.next}}
		if got := compare(prev, next, false); len(got) != c.want {
			t.Errorf("%s: got %d regressions (%v), want %d", c.name, len(got), got, c.want)
		}
	}
	// A scenario missing from the previous record is not gated.
	if got := compare(Record{}, Record{Scenarios: map[string]Metrics{"s": {"wall_seconds": 99}}}, false); len(got) != 0 {
		t.Errorf("new scenario gated against nothing: %v", got)
	}
}

func TestSlowdownsFlag(t *testing.T) {
	s := slowdowns{}
	if err := s.Set("attack_smallcnn=2"); err != nil {
		t.Fatal(err)
	}
	if s["attack_smallcnn"] != 2 {
		t.Fatalf("parsed %v", s)
	}
	for _, bad := range []string{"nofactor", "x=", "x=-1", "x=zero"} {
		if err := s.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
}

// TestRealScenariosProduceRequiredMetrics runs the true benchmark suite
// once (tens of seconds) and checks every acceptance-relevant metric is
// present and sane in the appended record.
func TestRealScenariosProduceRequiredMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark scenarios")
	}
	path := filepath.Join(t.TempDir(), "BENCH_pipeline.json")
	bad, err := runBench(path, scenarios(), nil, true, false, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("first run cannot regress: %v", bad)
	}
	recs, err := loadRecords(path)
	if err != nil || len(recs) != 1 {
		t.Fatalf("records=%d err=%v", len(recs), err)
	}
	for _, name := range []string{"attack_smallcnn", "attack_resnet18"} {
		m := recs[0].Scenarios[name]
		for _, k := range []string{"wall_seconds", "victim_queries", "device_seconds", "device_cycles", "solution_count"} {
			if m[k] <= 0 {
				t.Errorf("%s: %s = %v, want > 0", name, k, m[k])
			}
		}
		if m["device_cycles"] < m["device_seconds"] {
			t.Errorf("%s: cycles %v below seconds %v (clock rate lost?)", name, m["device_cycles"], m["device_seconds"])
		}
	}
	if recs[0].Scenarios["encode_micro"]["values_per_second"] <= 0 {
		t.Errorf("encoder throughput missing: %v", recs[0].Scenarios["encode_micro"])
	}
	dm := recs[0].Scenarios["daemon_restart"]
	if dm["campaigns_resumed"] != 3 || dm["campaigns_completed"] != 3 {
		t.Errorf("daemon_restart recovery counts: %v", dm)
	}
	if dm["journal_appends"] <= 0 || dm["wall_seconds"] <= 0 {
		t.Errorf("daemon_restart journal metrics missing: %v", dm)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicOnlyGate(t *testing.T) {
	prev := Record{Scenarios: map[string]Metrics{
		"s": {"wall_seconds": 1, "victim_queries": 100, "values_per_second": 1e6},
	}}
	// A 3x wall slowdown and throughput collapse on different hardware are
	// forgiven; a victim-query increase is code drift and still fails.
	next := Record{Scenarios: map[string]Metrics{
		"s": {"wall_seconds": 3, "victim_queries": 100, "values_per_second": 2e5},
	}}
	if got := compare(prev, next, true); len(got) != 0 {
		t.Errorf("machine-dependent metrics gated in deterministic-only mode: %v", got)
	}
	next.Scenarios["s"]["victim_queries"] = 150
	if got := compare(prev, next, true); len(got) != 1 {
		t.Errorf("deterministic regression missed: %v", got)
	}

	// The daemon_restart scenario's only gated metric is wall_seconds
	// (machine-dependent), so a cross-machine -deterministic-only gate
	// must tolerate it no matter how much its timing drifts.
	prev = Record{Scenarios: map[string]Metrics{
		"daemon_restart": {"wall_seconds": 2, "campaigns_resumed": 3, "campaigns_completed": 3, "journal_appends": 20},
	}}
	next = Record{Scenarios: map[string]Metrics{
		"daemon_restart": {"wall_seconds": 10, "campaigns_resumed": 3, "campaigns_completed": 3, "journal_appends": 27},
	}}
	if got := compare(prev, next, true); len(got) != 0 {
		t.Errorf("daemon_restart tripped the deterministic-only gate: %v", got)
	}
}
